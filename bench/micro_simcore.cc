/**
 * @file
 * Microbenchmarks of the simulator substrate itself (google-benchmark):
 * event-queue throughput, disk-model service-time evaluation, and a
 * full small simulation per iteration. These guard the simulator's
 * own performance — the experiment harnesses run hundreds of
 * simulated seconds and need the core loops tight.
 */

#include <benchmark/benchmark.h>

#include "src/piso.hh"

using namespace piso;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const int batch = static_cast<int>(state.range(0));
    for (auto _ : state) {
        EventQueue q;
        std::uint64_t fired = 0;
        for (int i = 0; i < batch; ++i) {
            q.schedule(static_cast<Time>((i * 7919) % 100000),
                       [&fired] { ++fired; });
        }
        q.runAll();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000);

void
BM_EventQueueCancel(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue q;
        std::vector<EventId> ids;
        ids.reserve(1000);
        for (int i = 0; i < 1000; ++i)
            ids.push_back(q.schedule(static_cast<Time>(i), [] {}));
        for (EventId id : ids)
            q.cancel(id);
        q.runAll();
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueCancel);

void
BM_DiskModelService(benchmark::State &state)
{
    DiskModel model{DiskParams{}};
    Rng rng(1);
    std::uint64_t head = 0;
    for (auto _ : state) {
        const std::uint64_t target =
            (head * 16807 + 12345) % (model.totalSectors() - 64);
        const DiskServiceTime st = model.service(head, target, 64, rng);
        benchmark::DoNotOptimize(st.total());
        head = target + 64;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiskModelService);

void
BM_RngExponential(benchmark::State &state)
{
    Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.exponentialTime(3 * kMs));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngExponential);

void
BM_FullSmallSimulation(benchmark::State &state)
{
    const Scheme scheme = static_cast<Scheme>(state.range(0));
    for (auto _ : state) {
        SystemConfig cfg;
        cfg.cpus = 4;
        cfg.memoryBytes = 24 * kMiB;
        cfg.diskCount = 2;
        cfg.scheme = scheme;
        cfg.seed = 5;
        Simulation sim(cfg);
        const SpuId a = sim.addSpu({.name = "a", .homeDisk = 0});
        const SpuId b = sim.addSpu({.name = "b", .homeDisk = 1});
        PmakeConfig pm;
        pm.parallelism = 2;
        pm.filesPerWorker = 6;
        sim.addJob(a, makePmake("pm", pm));
        FileCopyConfig cc;
        cc.bytes = 4 * kMiB;
        sim.addJob(b, makeFileCopy("cp", cc));
        const SimResults r = sim.run();
        benchmark::DoNotOptimize(r.simulatedTime);
    }
}
BENCHMARK(BM_FullSmallSimulation)
    ->Arg(static_cast<int>(Scheme::Smp))
    ->Arg(static_cast<int>(Scheme::Quota))
    ->Arg(static_cast<int>(Scheme::PIso))
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
