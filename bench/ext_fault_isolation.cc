/**
 * @file
 * Extension bench: isolation under injected hardware faults.
 *
 * A victim SPU runs an interactive read workload (small periodic
 * reads, think time between them); an aggressor SPU streams a large
 * file copy through the same disk. Mid-run the disk enters a
 * slowdown window (service times multiplied — a failing drive
 * remapping sectors). The question is who absorbs the degradation:
 *
 *  - Under SMP the victim's reads queue behind the aggressor's deep
 *    pipeline on the now-slow disk and its response time blows up.
 *  - Under PIso the fair disk policy keeps charging the aggressor
 *    for its bandwidth, so the victim still gets its entitled share
 *    of the (degraded) device and stays near its no-fault response.
 *
 * Reported slowdowns are relative to the no-fault PIso run — the
 * victim's entitled response on healthy hardware.
 */

#include <cstdio>

#include "src/piso.hh"

using namespace piso;

namespace {

constexpr int kReads = 40;

double
run(Scheme scheme, bool faulty, std::uint64_t seed)
{
    SystemConfig cfg;
    cfg.cpus = 2;
    cfg.memoryBytes = 44 * kMiB;
    cfg.diskCount = 1;
    cfg.scheme = scheme;
    cfg.seed = seed;
    if (faulty) {
        // Slow window spanning the victim's whole run.
        cfg.faults.diskSlow(500 * kMs, /*disk=*/0,
                            /*duration=*/40 * kSec, /*factor=*/3.0);
    }

    Simulation sim(cfg);
    const SpuId victim = sim.addSpu({.name = "victim", .homeDisk = 0});
    const SpuId aggr = sim.addSpu({.name = "aggressor", .homeDisk = 0});
    (void)aggr;

    JobSpec v;
    v.name = "victim";
    v.build = [](Kernel &, WorkloadEnv &env) {
        const FileId f = env.fs.createFile("victim.dat", env.disk,
                                           kReads * 16 * 1024);
        std::vector<Action> script;
        for (int i = 0; i < kReads; ++i) {
            script.push_back(ReadAction{f, i * 16ull * 1024, 16 * 1024});
            script.push_back(SleepAction{150 * kMs});
        }
        std::vector<ProcessSpec> procs;
        procs.push_back(ProcessSpec{
            "victim",
            std::make_unique<ScriptBehavior>(std::move(script))});
        return procs;
    };
    sim.addJob(victim, std::move(v));

    FileCopyConfig cc;
    cc.bytes = 64 * kMiB;
    sim.addJob(aggr, makeFileCopy("copy", cc));

    const SimResults r = sim.run();
    return r.job("victim").responseSec();
}

double
mean(Scheme scheme, bool faulty)
{
    double sum = 0.0;
    for (std::uint64_t seed : {1, 2, 3})
        sum += run(scheme, faulty, seed);
    return sum / 3;
}

} // namespace

int
main()
{
    printBanner("Extension: isolation under a disk-slowdown fault "
                "(victim reads vs aggressor copy)");

    const double entitled = mean(Scheme::PIso, false);
    TextTable table({"scheme", "victim (s)", "slowdown vs entitled"});
    for (Scheme s : {Scheme::Smp, Scheme::Quota, Scheme::PIso}) {
        const double resp = mean(s, true);
        table.addRow({schemeName(s), TextTable::num(resp, 2),
                      TextTable::num(resp / entitled, 2) + "x"});
    }
    table.addRow({"PIso (no fault)", TextTable::num(entitled, 2),
                  "1.00x"});
    table.print();

    std::printf("\nThe slow disk triples every service time. PIso "
                "still gives the victim its\nentitled share of the "
                "degraded device, so its response stays near the\n"
                "no-fault level; under SMP the victim queues behind "
                "the aggressor's copy\ntraffic on the slow disk.\n");
    return 0;
}
