/**
 * @file
 * Table 4 reproduction: the big-and-small-copy workload (Section 4.5).
 *
 * Two SPUs copy files on one shared disk: a 500 KB copy and a 5 MB
 * copy, both accessing contiguous sectors. This workload shows why
 * head position must stay a factor: both jobs benefit from C-SCAN, so
 * the blind Iso policy pays ~30% extra positioning latency while PIso
 * keeps it near the Pos level.
 *
 * Paper values (response s / wait ms / latency ms):
 *   Pos : small 0.93, big 0.81 | 155.8 / 12.1 | 6.4
 *   Iso : small 0.56, big 1.22 |  68.9 / 23.7 | 8.2
 *   PIso: small 0.28, big 0.96 |  31.9 / 16.6 | 6.6
 *
 * Shape to hold: Pos lets the big copy lock out the small one (the
 * small copy finishes *after* the big); both fair policies rescue the
 * small copy; PIso beats Iso on both jobs because it keeps C-SCAN
 * inside the fair subset.
 */

#include <cstdio>

#include "src/piso.hh"

using namespace piso;

namespace {

struct Table4Row
{
    double smallSec = 0.0;
    double bigSec = 0.0;
    double smallWaitMs = 0.0;
    double bigWaitMs = 0.0;
    double latencyMs = 0.0;
};

Table4Row
runPolicy(DiskPolicy policy, std::uint64_t seed)
{
    SystemConfig cfg;
    cfg.cpus = 2;
    cfg.memoryBytes = 44 * kMiB;
    cfg.diskCount = 1;
    cfg.scheme = Scheme::PIso;
    cfg.diskPolicy = policy;
    cfg.diskParams.seekScale = 0.5;
    cfg.bwThresholdSectors = 256.0;
    // Plenty of delayed-write headroom: the copies are paced by their
    // reads, as in the paper (responses exclude the final flush).
    cfg.kernel.writeThrottleSectors = 64 * 1024;
    cfg.seed = seed;

    Simulation sim(cfg);
    const SpuId sSmall = sim.addSpu({.name = "small", .homeDisk = 0});
    const SpuId sBig = sim.addSpu({.name = "big", .homeDisk = 0});

    // "The larger copy, by happening to issue requests to the disk
    // earlier, is able to lock out the requests of the smaller copy":
    // the big copy's files sit below the small copy's on the disk, so
    // the C-SCAN head camps on the big stream first.
    FileCopyConfig big;
    big.bytes = 5 * kMiB;
    sim.addJob(sBig, makeFileCopy("big", big));

    FileCopyConfig small;
    small.bytes = 500 * 1024;
    sim.addJob(sSmall, makeFileCopy("small", small));

    const SimResults r = sim.run();
    Table4Row row;
    row.smallSec = r.job("small").responseSec();
    row.bigSec = r.job("big").responseSec();
    const auto &perSpu = r.disks[0].perSpu;
    if (perSpu.count(sSmall))
        row.smallWaitMs = perSpu.at(sSmall).avgWaitMs;
    if (perSpu.count(sBig))
        row.bigWaitMs = perSpu.at(sBig).avgWaitMs;
    row.latencyMs = r.disks[0].avgPositionMs;
    return row;
}

Table4Row
runMean(DiskPolicy policy)
{
    Table4Row sum;
    int n = 0;
    for (std::uint64_t seed : {1, 2, 3}) {
        const Table4Row r = runPolicy(policy, seed);
        sum.smallSec += r.smallSec;
        sum.bigSec += r.bigSec;
        sum.smallWaitMs += r.smallWaitMs;
        sum.bigWaitMs += r.bigWaitMs;
        sum.latencyMs += r.latencyMs;
        ++n;
    }
    sum.smallSec /= n;
    sum.bigSec /= n;
    sum.smallWaitMs /= n;
    sum.bigWaitMs /= n;
    sum.latencyMs /= n;
    return sum;
}

} // namespace

int
main()
{
    printBanner("Table 4: big-and-small copy (shared HP97560, "
                "seek x0.5)");

    const Table4Row pos = runMean(DiskPolicy::HeadPosition);
    const Table4Row iso = runMean(DiskPolicy::BlindFair);
    const Table4Row piso = runMean(DiskPolicy::FairPosition);

    TextTable table({"conf", "Small resp (s)", "Big resp (s)",
                     "Small wait (ms)", "Big wait (ms)",
                     "avg latency (ms)"});
    for (const auto &[name, row] :
         {std::pair<const char *, const Table4Row &>{"Pos", pos},
          {"Iso", iso},
          {"PIso", piso}}) {
        table.addRow({name, TextTable::num(row.smallSec, 2),
                      TextTable::num(row.bigSec, 2),
                      TextTable::num(row.smallWaitMs, 1),
                      TextTable::num(row.bigWaitMs, 1),
                      TextTable::num(row.latencyMs, 1)});
    }
    table.print();

    std::printf("\npaper: Pos 0.93/0.81 (155.8/12.1) 6.4 | "
                "Iso 0.56/1.22 (68.9/23.7) 8.2 | "
                "PIso 0.28/0.96 (31.9/16.6) 6.6\n");
    std::printf("shape checks: small copy slower than big under Pos: "
                "%s; PIso small fastest: %s;\n"
                "Iso latency worst: %s\n",
                pos.smallSec > pos.bigSec ? "yes" : "NO",
                piso.smallSec < iso.smallSec &&
                        piso.smallSec < pos.smallSec
                    ? "yes"
                    : "NO",
                iso.latencyMs > piso.latencyMs &&
                        iso.latencyMs > pos.latencyMs
                    ? "yes"
                    : "NO");
    return 0;
}
