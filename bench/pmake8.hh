#ifndef PISO_BENCH_PMAKE8_HH
#define PISO_BENCH_PMAKE8_HH

/**
 * @file
 * The Pmake8 workload of Section 4.2 (Figures 1-3).
 *
 * Machine: 8 CPUs, 44 MB memory, separate fast disks (one per SPU).
 * Eight SPUs share the machine equally; a pmake job is two parallel
 * compiles. Balanced: one job per SPU (8 jobs). Unbalanced: SPUs 1-4
 * run one job, SPUs 5-8 run two (12 jobs).
 */

#include <vector>

#include "src/piso.hh"

namespace piso::bench {

struct Pmake8Run
{
    SimResults results;
    std::vector<SpuId> lightSpus;  //!< SPUs 1-4
    std::vector<SpuId> heavySpus;  //!< SPUs 5-8
};

/** Seeds averaged by every figure bench (scheduling noise between
 *  otherwise-identical runs is a few percent). */
inline constexpr std::uint64_t kBenchSeeds[] = {1, 2, 3};

/** The Pmake8 machine. Split from populatePmake8() so callers that
 *  need identical setup on two Simulations (checkpoint/restore replays
 *  the setup on a fresh instance; see docs/checkpoint.md) can reuse
 *  both halves. */
inline SystemConfig
pmake8Config(Scheme scheme, std::uint64_t seed = 1)
{
    SystemConfig cfg;
    cfg.cpus = 8;
    cfg.memoryBytes = 44 * kMiB;
    cfg.diskCount = 8;
    cfg.scheme = scheme;
    cfg.seed = seed;
    return cfg;
}

/** Add the eight SPUs and their pmake jobs to @p sim. @p run (when
 *  given) receives the light/heavy SPU ids. */
inline void
populatePmake8(Simulation &sim, bool unbalanced, Pmake8Run *run = nullptr)
{
    // A pmake job: two parallel compiles, ~2.6 MB of compiler heap.
    // 12 jobs (unbalanced) keep the 44 MB machine near but not past
    // its memory capacity, so CPU dominates and paging contributes a
    // few percent — matching the paper's modest Figure 2/3 deltas.
    PmakeConfig pmake;
    pmake.parallelism = 2;   // "two parallel compiles each"
    pmake.filesPerWorker = 8;
    pmake.compileCpu = 220 * kMs;
    pmake.workerWsPages = 330;

    // The shared file-system inode lock of Section 3.4 (already in
    // its fixed readers-writer form); metadata operations of every
    // job contend on it.
    pmake.inodeLock = sim.kernel().createLock(true);

    for (int u = 0; u < 8; ++u) {
        const SpuId spu = sim.addSpu(
            {.name = "user" + std::to_string(u + 1),
             .homeDisk = static_cast<DiskId>(u)});
        if (run != nullptr)
            (u < 4 ? run->lightSpus : run->heavySpus).push_back(spu);

        const int jobs = (unbalanced && u >= 4) ? 2 : 1;
        for (int j = 0; j < jobs; ++j) {
            sim.addJob(spu, makePmake("pm-u" + std::to_string(u + 1) +
                                          "-j" + std::to_string(j),
                                      pmake));
        }
    }
}

inline Pmake8Run
runPmake8(Scheme scheme, bool unbalanced, std::uint64_t seed = 1)
{
    Simulation sim(pmake8Config(scheme, seed));
    Pmake8Run run;
    populatePmake8(sim, unbalanced, &run);
    run.results = sim.run();
    return run;
}

/**
 * Mean of @p metric(scheme, unbalanced) over the bench seeds.
 * @p metric maps a finished run to one number (e.g. the mean light-SPU
 * response).
 */
template <typename Fn>
double
pmake8Mean(Scheme scheme, bool unbalanced, Fn metric)
{
    double sum = 0.0;
    int n = 0;
    for (std::uint64_t seed : kBenchSeeds) {
        sum += metric(runPmake8(scheme, unbalanced, seed));
        ++n;
    }
    return sum / n;
}

} // namespace piso::bench

#endif // PISO_BENCH_PMAKE8_HH
