/**
 * @file
 * Table 3 reproduction: the pmake-copy disk workload (Section 4.5).
 *
 * Two SPUs share one HP 97560 disk (seek latency halved, as in the
 * paper): one runs a pmake (hundreds of scattered requests, repeated
 * single-sector metadata writes), the other copies a 20 MB file
 * (contiguous requests, kernel read-ahead, delayed writes). Cold
 * buffer caches.
 *
 * Paper shape (Pos -> PIso): pmake response falls ~39% and its mean
 * request wait ~76% (the copy no longer locks it out); the copy pays
 * ~23%; average disk positioning latency barely changes. The blind
 * Iso policy performs like PIso *on this workload* because pmake's
 * requests are irregular anyway.
 */

#include <cstdio>

#include "src/piso.hh"

using namespace piso;

namespace {

struct Table3Row
{
    double pmakeSec = 0.0;
    double copySec = 0.0;
    double pmakeWaitMs = 0.0;
    double copyWaitMs = 0.0;
    double latencyMs = 0.0;  //!< mean seek+rotation per request
    std::uint64_t requests = 0;
};

Table3Row
runPolicy(DiskPolicy policy, std::uint64_t seed)
{
    SystemConfig cfg;
    cfg.cpus = 2;
    cfg.memoryBytes = 44 * kMiB;
    cfg.diskCount = 1;
    cfg.scheme = Scheme::PIso;
    cfg.diskPolicy = policy;
    cfg.diskParams.seekScale = 0.5;  // the paper's scaling factor 2
    // BW difference threshold calibrated so fairness alternates in
    // long runs (amortised seeks), matching the paper's "latency
    // roughly unchanged" observation.
    cfg.bwThresholdSectors = 1024.0;
    cfg.seed = seed;

    Simulation sim(cfg);
    const SpuId pmk = sim.addSpu({.name = "pmk", .homeDisk = 0});
    const SpuId cpy = sim.addSpu({.name = "cpy", .homeDisk = 0});

    PmakeConfig pm;
    pm.parallelism = 2;
    pm.filesPerWorker = 40;   // ~300 scattered requests in total
    pm.compileCpu = 25 * kMs; // disk-bound build
    pm.workerWsPages = 200;
    sim.addJob(pmk, makePmake("pmake", pm));

    FileCopyConfig cc;
    cc.bytes = 20 * kMiB;     // the paper's 20 MB copy
    sim.addJob(cpy, makeFileCopy("copy", cc));

    const SimResults r = sim.run();
    Table3Row row;
    row.pmakeSec = r.job("pmake").responseSec();
    row.copySec = r.job("copy").responseSec();
    const auto &perSpu = r.disks[0].perSpu;
    if (perSpu.count(pmk))
        row.pmakeWaitMs = perSpu.at(pmk).avgWaitMs;
    if (perSpu.count(cpy))
        row.copyWaitMs = perSpu.at(cpy).avgWaitMs;
    row.latencyMs = r.disks[0].avgPositionMs;
    row.requests = r.disks[0].requests;
    return row;
}

Table3Row
runMean(DiskPolicy policy)
{
    Table3Row sum;
    int n = 0;
    for (std::uint64_t seed : {1, 2, 3}) {
        const Table3Row r = runPolicy(policy, seed);
        sum.pmakeSec += r.pmakeSec;
        sum.copySec += r.copySec;
        sum.pmakeWaitMs += r.pmakeWaitMs;
        sum.copyWaitMs += r.copyWaitMs;
        sum.latencyMs += r.latencyMs;
        sum.requests += r.requests;
        ++n;
    }
    sum.pmakeSec /= n;
    sum.copySec /= n;
    sum.pmakeWaitMs /= n;
    sum.copyWaitMs /= n;
    sum.latencyMs /= n;
    sum.requests /= static_cast<std::uint64_t>(n);
    return sum;
}

} // namespace

int
main()
{
    printBanner("Table 3: pmake-copy disk workload "
                "(shared HP97560, seek x0.5)");

    const Table3Row pos = runMean(DiskPolicy::HeadPosition);
    const Table3Row iso = runMean(DiskPolicy::BlindFair);
    const Table3Row piso = runMean(DiskPolicy::FairPosition);

    TextTable table({"conf", "Pmk resp (s)", "Cpy resp (s)",
                     "Pmk wait (ms)", "Cpy wait (ms)",
                     "avg latency (ms)"});
    for (const auto &[name, row] :
         {std::pair<const char *, const Table3Row &>{"Pos", pos},
          {"Iso", iso},
          {"PIso", piso}}) {
        table.addRow({name, TextTable::num(row.pmakeSec, 2),
                      TextTable::num(row.copySec, 2),
                      TextTable::num(row.pmakeWaitMs, 1),
                      TextTable::num(row.copyWaitMs, 1),
                      TextTable::num(row.latencyMs, 1)});
    }
    table.print();

    std::printf("\npaper deltas (Pos -> PIso): pmake response -39%%, "
                "pmake wait -76%%, copy response +23%%,\n"
                "latency ~unchanged; ours: pmake %+.0f%%, wait %+.0f%%, "
                "copy %+.0f%%, latency %+.0f%%\n",
                100.0 * (piso.pmakeSec / pos.pmakeSec - 1.0),
                100.0 * (piso.pmakeWaitMs / pos.pmakeWaitMs - 1.0),
                100.0 * (piso.copySec / pos.copySec - 1.0),
                100.0 * (piso.latencyMs / pos.latencyMs - 1.0));
    std::printf("(disk requests per run: ~%llu; paper: ~1350 "
                "[300 pmake + 1050 copy])\n",
                static_cast<unsigned long long>(pos.requests));
    return 0;
}
