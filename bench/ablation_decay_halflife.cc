/**
 * @file
 * Ablation A5: disk bandwidth decay half-life (Section 3.3).
 *
 * "The decay period is configurable, and we currently decay the count
 * by half every 500 milliseconds. A finer grain decay of the count
 * would better approximate an instantaneous rate, but would have a
 * higher overhead to maintain."
 *
 * Sweeps the half-life on the big-and-small copy workload: very short
 * half-lives forget the hog's history (weaker fairness); very long
 * ones punish it for ancient usage after the contention has ended.
 */

#include <cstdio>

#include "src/piso.hh"

using namespace piso;

namespace {

struct Point
{
    double smallSec = 0.0;
    double bigSec = 0.0;
};

Point
run(Time halfLife)
{
    Point sum;
    int n = 0;
    for (std::uint64_t seed : {1, 2, 3}) {
        SystemConfig cfg;
        cfg.cpus = 2;
        cfg.memoryBytes = 44 * kMiB;
        cfg.diskCount = 1;
        cfg.scheme = Scheme::PIso;
        cfg.diskPolicy = DiskPolicy::FairPosition;
        cfg.bwHalfLife = halfLife;
        cfg.diskParams.seekScale = 0.5;
        cfg.kernel.writeThrottleSectors = 64 * 1024;
        cfg.seed = seed;

        Simulation sim(cfg);
        const SpuId sBig = sim.addSpu({.name = "big", .homeDisk = 0});
        const SpuId sSmall =
            sim.addSpu({.name = "small", .homeDisk = 0});
        FileCopyConfig big;
        big.bytes = 5 * kMiB;
        sim.addJob(sBig, makeFileCopy("big", big));
        FileCopyConfig small;
        small.bytes = 500 * 1024;
        sim.addJob(sSmall, makeFileCopy("small", small));

        const SimResults r = sim.run();
        sum.smallSec += r.job("small").responseSec();
        sum.bigSec += r.job("big").responseSec();
        ++n;
    }
    sum.smallSec /= n;
    sum.bigSec /= n;
    return sum;
}

} // namespace

int
main()
{
    printBanner("Ablation A5: bandwidth decay half-life sweep "
                "(big-and-small copy)");

    TextTable table({"half-life", "small (s)", "big (s)"});
    for (Time hl : {50 * kMs, 150 * kMs, 500 * kMs, 1500 * kMs,
                    5000 * kMs}) {
        const Point p = run(hl);
        table.addRow({formatTime(hl), TextTable::num(p.smallSec, 2),
                      TextTable::num(p.bigSec, 2)});
    }
    table.print();

    std::printf("\nexpected: the small copy is protected across the "
                "sweep; very short\nhalf-lives weaken fairness (usage "
                "history forgotten between requests).\nThe paper picks "
                "500 ms.\n");
    return 0;
}
