/**
 * @file
 * Ablation A5: disk bandwidth decay half-life (Section 3.3).
 *
 * "The decay period is configurable, and we currently decay the count
 * by half every 500 milliseconds. A finer grain decay of the count
 * would better approximate an instantaneous rate, but would have a
 * higher overhead to maintain."
 *
 * Sweeps the half-life on the big-and-small copy workload: very short
 * half-lives forget the hog's history (weaker fairness); very long
 * ones punish it for ancient usage after the contention has ended.
 */

#include <cstdio>

#include "src/exp/pool.hh"
#include "src/piso.hh"

using namespace piso;

namespace {

constexpr std::uint64_t kSeeds[] = {1, 2, 3};

struct Point
{
    double smallSec = 0.0;
    double bigSec = 0.0;
};

Point
run(Time halfLife)
{
    // One simulation per seed, in parallel on the sweep engine's pool.
    const auto points = exp::parallelMap<Point>(
        std::size(kSeeds), 0, [&](std::size_t s) {
            SystemConfig cfg;
            cfg.cpus = 2;
            cfg.memoryBytes = 44 * kMiB;
            cfg.diskCount = 1;
            cfg.scheme = Scheme::PIso;
            cfg.diskPolicy = DiskPolicy::FairPosition;
            cfg.bwHalfLife = halfLife;
            cfg.diskParams.seekScale = 0.5;
            cfg.kernel.writeThrottleSectors = 64 * 1024;
            cfg.seed = kSeeds[s];

            Simulation sim(cfg);
            const SpuId sBig =
                sim.addSpu({.name = "big", .homeDisk = 0});
            const SpuId sSmall =
                sim.addSpu({.name = "small", .homeDisk = 0});
            FileCopyConfig big;
            big.bytes = 5 * kMiB;
            sim.addJob(sBig, makeFileCopy("big", big));
            FileCopyConfig small;
            small.bytes = 500 * 1024;
            sim.addJob(sSmall, makeFileCopy("small", small));

            const SimResults r = sim.run();
            return Point{r.job("small").responseSec(),
                         r.job("big").responseSec()};
        });

    Point sum;
    for (const Point &p : points) {
        sum.smallSec += p.smallSec;
        sum.bigSec += p.bigSec;
    }
    const auto n = static_cast<double>(points.size());
    sum.smallSec /= n;
    sum.bigSec /= n;
    return sum;
}

} // namespace

int
main()
{
    printBanner("Ablation A5: bandwidth decay half-life sweep "
                "(big-and-small copy)");

    TextTable table({"half-life", "small (s)", "big (s)"});
    for (Time hl : {50 * kMs, 150 * kMs, 500 * kMs, 1500 * kMs,
                    5000 * kMs}) {
        const Point p = run(hl);
        table.addRow({formatTime(hl), TextTable::num(p.smallSec, 2),
                      TextTable::num(p.bigSec, 2)});
    }
    table.print();

    std::printf("\nexpected: the small copy is protected across the "
                "sweep; very short\nhalf-lives weaken fairness (usage "
                "history forgotten between requests).\nThe paper picks "
                "500 ms.\n");
    return 0;
}
