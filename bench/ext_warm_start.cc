/**
 * @file
 * Warm-start sweep speedup (google-benchmark): the numbers behind the
 * docs/checkpoint.md claim that forking a fault-axis sweep from one
 * checkpointed prefix beats re-simulating every grid point from time
 * zero by >= 2x.
 *
 * The plan is the warm-start engine's best case, which is also the
 * common what-if shape: one compute-heavy base workload (dense
 * quiescent boundaries) swept over a late-fault axis, so every grid
 * point shares the long undisturbed prefix and differs only in its
 * tail. Cold cost ~ N runs; warm cost ~ one prefix run + N tails.
 *
 * BM_SweepCold / BM_SweepWarm share one plan; compare their times for
 * the speedup. BM_TemplateCheckpoint isolates the fixed cost warm
 * start adds (grouping + the template run + one image).
 */

#include <benchmark/benchmark.h>

#include "src/config/workload_spec.hh"
#include "src/exp/experiment.hh"
#include "src/exp/runner.hh"
#include "src/piso.hh"

using namespace piso;

namespace {

/**
 * Compute-dominated base: the hogs run ~5s of simulated time, and the
 * disk is quiet after the startup page-ins, so quiescent boundaries
 * stay dense right up to the fault axis' divergence times below.
 */
const char *kSpec = R"(
machine cpus=4 memory_mb=32 disks=2 scheme=piso seed=3
spu ocean share=1 disk=0
spu eng share=1 disk=1
job ocean ocean name=sim procs=2 iters=60 grain_ms=20 ws_pages=400
job eng compute name=hog1 cpu_ms=5000 ws_pages=300
job eng compute name=hog2 cpu_ms=5000 ws_pages=300
)";

/**
 * Eight what-if scenarios diverging at t=4s: the shared prefix is
 * ~4/5 of the run. All grid points have one digest, so warm start
 * folds them into a single group.
 */
exp::ExperimentPlan
faultAxisPlan()
{
    exp::ExperimentPlan plan;
    plan.base = parseWorkloadSpec(kSpec);
    plan.axes.push_back(exp::parseGridAxis(
        "fault_disk_slow=none,4:0.5:0:2,4:0.5:0:4,4:0.5:0:8,"
        "4:0.5:1:4,4:1:0:4,4:1:1:8,4.2:0.5:0:4"));
    return plan;
}

void
runSweep(benchmark::State &state, bool warmStart)
{
    const exp::ExperimentPlan plan = faultAxisPlan();
    exp::SweepOptions opts;
    opts.jobs = 1; // serial: measure work, not parallel fan-out
    opts.warmStart = warmStart;
    for (auto _ : state) {
        const exp::SweepOutcome outcome = exp::runPlan(plan, opts);
        if (outcome.failures() != 0)
            state.SkipWithError("sweep task failed");
        benchmark::DoNotOptimize(outcome.runs.size());
    }
}

void
BM_SweepCold(benchmark::State &state)
{
    runSweep(state, false);
}
BENCHMARK(BM_SweepCold)->Unit(benchmark::kMillisecond);

void
BM_SweepWarm(benchmark::State &state)
{
    runSweep(state, true);
}
BENCHMARK(BM_SweepWarm)->Unit(benchmark::kMillisecond);

void
BM_TemplateCheckpoint(benchmark::State &state)
{
    // The fixed cost warm start adds on top of the forked tails: run
    // the shared prefix to its checkpoint and serialise the image.
    WorkloadSpec spec = parseWorkloadSpec(kSpec);
    spec.config.checkpointAt = 3 * kSec;
    spec.config.checkpointDeadline = 4 * kSec;
    spec.config.checkpointStop = true;
    for (auto _ : state) {
        std::string image;
        spec.config.checkpointSink = [&image](std::string img) {
            image = std::move(img);
        };
        Simulation sim(spec.config);
        populateWorkloadSpec(sim, spec);
        sim.run();
        if (image.empty())
            state.SkipWithError("no checkpoint fired");
        benchmark::DoNotOptimize(image.size());
    }
}
BENCHMARK(BM_TemplateCheckpoint)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
