/**
 * @file
 * Containment-layer overhead (google-benchmark): the fault-contained
 * execution layer must be close to free on the hot path. Three
 * measurements back the docs/robustness.md claims:
 *
 *   - an unguarded run vs the same run with watchdog budgets armed
 *     (the per-event checkBudgets probe that never trips);
 *   - a contained sweep vs the raw simulation cost it wraps
 *     (TaskOutcome bookkeeping, manifest-ready result capture);
 *   - a sweep where every task fails fast, measuring the quarantine
 *     path itself (throw, classify, record) rather than simulation.
 */

#include <benchmark/benchmark.h>

#include "src/config/workload_spec.hh"
#include "src/exp/runner.hh"
#include "src/piso.hh"

using namespace piso;

namespace {

const char *kSpec = R"(
machine cpus=2 memory_mb=16 disks=1 scheme=piso seed=7
spu a share=1 disk=0
spu b share=1 disk=0
job a compute name=spin cpu_ms=100 ws_pages=50
job b copy    name=cp bytes_kb=256
)";

void
BM_RunUnguarded(benchmark::State &state)
{
    const WorkloadSpec spec = parseWorkloadSpec(kSpec);
    for (auto _ : state) {
        const SimResults r = runWorkloadSpec(spec);
        benchmark::DoNotOptimize(r.simulatedTime);
    }
}
BENCHMARK(BM_RunUnguarded)->Unit(benchmark::kMillisecond);

void
BM_RunWatchdogArmed(benchmark::State &state)
{
    // Budgets far above what the run needs: pays the per-event probe,
    // never trips. The delta against BM_RunUnguarded is the whole
    // watchdog cost.
    WorkloadSpec spec = parseWorkloadSpec(kSpec);
    spec.config.watchdogSimTime = 3600 * kSec;
    spec.config.watchdogEvents = ~0ull;
    for (auto _ : state) {
        const SimResults r = runWorkloadSpec(spec);
        benchmark::DoNotOptimize(r.simulatedTime);
    }
}
BENCHMARK(BM_RunWatchdogArmed)->Unit(benchmark::kMillisecond);

void
BM_ContainedSweep(benchmark::State &state)
{
    // Six tasks through the full containment path (runContained,
    // TaskOutcome, manifest formatting) on one worker: the per-task
    // orchestration overhead on top of six raw runs.
    exp::ExperimentPlan plan;
    plan.base = parseWorkloadSpec(kSpec);
    plan.axes.push_back(exp::parseGridAxis("scheme=smp,quota,piso"));
    plan.seeds = {1, 2};
    const std::vector<exp::ExperimentTask> tasks =
        exp::expandPlan(plan);
    for (auto _ : state) {
        const exp::SweepOutcome out =
            exp::runTasks(tasks, {.jobs = 1});
        benchmark::DoNotOptimize(out.runs.size());
        const std::string jsonl = exp::formatSweepJsonl(out);
        benchmark::DoNotOptimize(jsonl.size());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(tasks.size()));
}
BENCHMARK(BM_ContainedSweep)->Unit(benchmark::kMillisecond);

void
BM_QuarantinePath(benchmark::State &state)
{
    // Every task fails up front with injected resource pressure that
    // outlasts the retry budget: measures throw -> classify -> retry
    // x2 -> TaskOutcome -> failure record, with almost no simulation
    // underneath (and none of PISO_FATAL's stderr output).
    exp::ExperimentPlan plan;
    plan.base = parseWorkloadSpec(kSpec);
    plan.base.config.chaos.resourceUntilAttempt = 100;
    plan.seeds = {1, 2, 3, 4, 5, 6, 7, 8};
    const std::vector<exp::ExperimentTask> tasks =
        exp::expandPlan(plan);
    for (auto _ : state) {
        const exp::SweepOutcome out =
            exp::runTasks(tasks, {.jobs = 1});
        benchmark::DoNotOptimize(out.failures());
        const std::string jsonl = exp::formatSweepJsonl(out);
        benchmark::DoNotOptimize(jsonl.size());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(tasks.size()));
}
BENCHMARK(BM_QuarantinePath);

} // namespace

BENCHMARK_MAIN();
