/**
 * @file
 * Extension bench: hierarchical SPUs bound interference at the group
 * boundary.
 *
 * Two departments share a machine 50/50: `eng` (sub-tenants good and
 * hog) and `ops` (sub-tenant web). The hog floods the shared disk.
 * Because usage accrues to the enclosing group and the disk policies
 * schedule on the worst ratio along the path (hierarchicalRatio), the
 * hog can only spend *eng's* bandwidth share: its sibling `eng.good`
 * absorbs the squeeze inside the group, while the cousin `ops.web`
 * keeps its department's half of the disk. The SMP baseline has no
 * such boundary — the flood hits sibling and cousin alike.
 *
 * Reported per scheme: the slowdown of the sibling's and the cousin's
 * identical copy jobs relative to a run where the hog is idle.
 */

#include <cstdio>
#include <string>

#include "src/config/workload_spec.hh"
#include "src/piso.hh"

using namespace piso;

namespace {

std::string
spec(Scheme scheme, bool hogActive, std::uint64_t seed)
{
    std::string s =
        "machine cpus=4 memory_mb=64 disks=1 bw_threshold=64 scheme=";
    s += scheme == Scheme::PIso ? "piso"
         : scheme == Scheme::Quota ? "quota"
                                   : "smp";
    s += " seed=" + std::to_string(seed) + "\n";
    // Latency-sensitive victims (random OLTP reads) against sequential
    // hog streams: the workload mix of the paper's Table 3.
    s += "[spus]\n"
         "eng      share=1\n"
         "eng.good share=1 disk=0\n"
         "eng.hog  share=1 disk=0\n"
         "ops      share=1\n"
         "ops.web  share=1 disk=0\n"
         "job eng.good oltp name=sib    servers=1 txns=200 table_mb=4\n"
         "job ops.web  oltp name=cousin servers=1 txns=200 table_mb=4\n";
    if (hogActive) {
        s += "job eng.hog copy name=hog0 bytes_kb=16384\n"
             "job eng.hog copy name=hog1 bytes_kb=16384\n";
    }
    return s;
}

struct Point
{
    double sib = 0.0;
    double cousin = 0.0;
};

Point
slowdown(Scheme scheme)
{
    Point sum;
    const std::uint64_t seeds[] = {1, 2, 3};
    for (std::uint64_t seed : seeds) {
        const SimResults quiet =
            runWorkloadSpec(parseWorkloadSpec(spec(scheme, false, seed)));
        const SimResults loud =
            runWorkloadSpec(parseWorkloadSpec(spec(scheme, true, seed)));
        sum.sib += loud.job("sib").responseSec() /
                   quiet.job("sib").responseSec();
        sum.cousin += loud.job("cousin").responseSec() /
                      quiet.job("cousin").responseSec();
    }
    sum.sib /= 3;
    sum.cousin /= 3;
    return sum;
}

} // namespace

int
main()
{
    printBanner("Extension: hierarchical SPUs — a disk hog inside "
                "`eng` vs its sibling and its cousin in `ops`");

    TextTable table({"scheme", "sibling slowdown", "cousin slowdown"});
    for (Scheme s : {Scheme::Smp, Scheme::PIso}) {
        const Point p = slowdown(s);
        table.addRow({schemeName(s), TextTable::num(p.sib, 2) + "x",
                      TextTable::num(p.cousin, 2) + "x"});
    }
    table.print();

    std::printf("\nslowdown = response with the hog flooding the disk "
                "/ response with the hog idle.\nPIso charges the "
                "flood to the whole `eng` group, so `ops.web` keeps "
                "its\ndepartment's half of the disk; `eng.good` pays "
                "inside the group boundary.\n");
    return 0;
}
