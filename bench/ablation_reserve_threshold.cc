/**
 * @file
 * Ablation A2: the Reserve Threshold (Section 3.2).
 *
 * The Reserve hides the revocation cost of lent memory: a lender that
 * suddenly needs pages takes them from the free reserve instantly
 * while the policy claws lent pages back from borrowers. Too small a
 * reserve breaks isolation (the lender blocks on the borrower's dirty
 * pageouts); too large a reserve wastes memory that could have been
 * lent. The paper picks 8%.
 *
 * Workload: SPU A idles then suddenly grows a working set; SPU B
 * borrows heavily in the meantime. We report A's ramp job response
 * (isolation under revocation) and B's hog response (sharing yield).
 */

#include <cstdio>

#include "src/exp/pool.hh"
#include "src/piso.hh"

using namespace piso;

namespace {

constexpr std::uint64_t kSeeds[] = {1, 2, 3};

struct Point
{
    double lenderSec = 0.0;
    double borrowerSec = 0.0;
};

Point
run(double reserveFraction)
{
    // One simulation per seed, in parallel on the sweep engine's pool.
    const auto points = exp::parallelMap<Point>(
        std::size(kSeeds), 0, [&](std::size_t s) {
            SystemConfig cfg;
            cfg.cpus = 4;
            cfg.memoryBytes = 16 * kMiB;
            cfg.diskCount = 2;
            cfg.scheme = Scheme::PIso;
            cfg.memPolicy.reserveFraction = reserveFraction;
            cfg.seed = kSeeds[s];

            Simulation sim(cfg);
            const SpuId lender =
                sim.addSpu({.name = "lender", .homeDisk = 0});
            const SpuId borrower =
                sim.addSpu({.name = "borrower", .homeDisk = 1});

            // The borrower wants far more than its half for four
            // seconds.
            ComputeSpec hog;
            hog.totalCpu = 4 * kSec;
            hog.wsPages = 2600;
            sim.addJob(borrower, makeComputeJob("hog", hog));

            // The lender wakes at t=1s and ramps a 1200-page working
            // set.
            std::vector<Action> ramp;
            ramp.push_back(GrowMemAction{1200});
            ramp.push_back(ComputeAction{1500 * kMs});
            JobSpec rampJob =
                makeScriptJob("ramp", std::move(ramp), kSec);
            sim.addJob(lender, std::move(rampJob));

            const SimResults r = sim.run();
            return Point{r.job("ramp").responseSec(),
                         r.job("hog").responseSec()};
        });

    Point sum;
    for (const Point &p : points) {
        sum.lenderSec += p.lenderSec;
        sum.borrowerSec += p.borrowerSec;
    }
    const auto n = static_cast<double>(points.size());
    sum.lenderSec /= n;
    sum.borrowerSec /= n;
    return sum;
}

} // namespace

int
main()
{
    printBanner("Ablation A2: Reserve Threshold sweep "
                "(lender ramps while borrower holds its pages)");

    TextTable table({"reserve", "lender ramp (s)", "borrower hog (s)"});
    for (double f : {0.0, 0.02, 0.04, 0.08, 0.16, 0.30}) {
        const Point p = run(f);
        table.addRow({TextTable::num(100.0 * f, 0) + "%",
                      TextTable::num(p.lenderSec, 2),
                      TextTable::num(p.borrowerSec, 2)});
    }
    table.print();

    std::printf("\nexpected: tiny reserves slow the lender's ramp (it "
                "waits on revocation\npageouts); huge reserves slow the "
                "borrower (less memory lent). The paper's\n8%% sits in "
                "the flat middle.\n");
    return 0;
}
