/**
 * @file
 * Extension bench: network-bandwidth isolation (Section 5 sketch).
 *
 * "Though we do not discuss performance isolation for network
 * bandwidth, the implementation would be similar to that of disk
 * bandwidth, without the complication of head position."
 *
 * One SPU runs bulk transfers; another runs an interactive
 * request/response workload on the same 10 Mbit/s link. FIFO (the
 * SMP-style baseline) queues the interactive messages behind the bulk
 * flood; the fair link applies the decayed per-SPU byte counts.
 */

#include <cstdio>

#include "src/piso.hh"

using namespace piso;

namespace {

struct Point
{
    double chatSec = 0.0;
    double chatWaitMs = 0.0;
    double bulkSec = 0.0;
};

Point
run(Scheme scheme, std::uint64_t seed)
{
    SystemConfig cfg;
    cfg.cpus = 2;
    cfg.memoryBytes = 32 * kMiB;
    cfg.scheme = scheme;
    cfg.networkBitsPerSec = 10e6;
    cfg.seed = seed;

    Simulation sim(cfg);
    const SpuId bulk = sim.addSpu({.name = "bulk"});
    const SpuId inter = sim.addSpu({.name = "interactive"});

    for (int j = 0; j < 4; ++j) {
        std::vector<Action> flood;
        for (int i = 0; i < 24; ++i)
            flood.push_back(SendAction{256 * 1024});
        sim.addJob(bulk, makeScriptJob("bulk" + std::to_string(j),
                                       std::move(flood)));
    }

    std::vector<Action> chat;
    for (int i = 0; i < 40; ++i) {
        chat.push_back(SendAction{2 * 1024});
        chat.push_back(SleepAction{25 * kMs});
    }
    sim.addJob(inter, makeScriptJob("chat", std::move(chat)));

    const SimResults r = sim.run();
    Point p;
    p.chatSec = r.job("chat").responseSec();
    p.bulkSec = r.meanResponseSecByPrefix("bulk");
    p.chatWaitMs = sim.network()->spuStats(inter).waitMs.mean();
    return p;
}

Point
mean(Scheme scheme)
{
    Point sum;
    for (std::uint64_t seed : {1, 2, 3}) {
        const Point p = run(scheme, seed);
        sum.chatSec += p.chatSec;
        sum.chatWaitMs += p.chatWaitMs;
        sum.bulkSec += p.bulkSec;
    }
    sum.chatSec /= 3;
    sum.chatWaitMs /= 3;
    sum.bulkSec /= 3;
    return sum;
}

} // namespace

int
main()
{
    printBanner("Extension: network bandwidth isolation "
                "(10 Mbit/s link, bulk flood vs interactive)");

    TextTable table({"link scheduling", "chat (s)", "chat wait (ms)",
                     "bulk (s)"});
    const Point fifo = mean(Scheme::Smp);
    const Point fair = mean(Scheme::PIso);
    table.addRow({"FIFO (SMP)", TextTable::num(fifo.chatSec, 2),
                  TextTable::num(fifo.chatWaitMs, 1),
                  TextTable::num(fifo.bulkSec, 2)});
    table.addRow({"fair (PIso)", TextTable::num(fair.chatSec, 2),
                  TextTable::num(fair.chatWaitMs, 1),
                  TextTable::num(fair.bulkSec, 2)});
    table.print();

    std::printf("\nideal chat response: 40 x (25 ms think + ~1.7 ms "
                "tx) ~ 1.07 s. The fair link\nbounds each chat "
                "message's wait to one bulk message's residual "
                "transmission;\nbulk pays only the bandwidth the "
                "interactive SPU actually uses.\n");
    return 0;
}
