/**
 * @file
 * Ablation A4: kernel-lock granularity (Section 3.4).
 *
 * The paper changed the inode semaphore from mutual exclusion to
 * multiple-readers/one-writer because "the dominant operation is
 * lookups", improving base-IRIX response time by 20-30% on a
 * four-processor system for some workloads — and the fix was
 * *required* for performance isolation (a contended mutex lets one
 * SPU stall another inside the kernel).
 *
 * We run parallel pmakes whose metadata operations contend on the
 * inode lock in both modes, under SMP (the base-system improvement)
 * and under PIso (the isolation leak).
 */

#include <cstdio>

#include "src/exp/pool.hh"
#include "src/piso.hh"

using namespace piso;

namespace {

double
runPmakes(Scheme scheme, bool readersWriter, std::uint64_t seed,
          double *lightOut = nullptr)
{
    SystemConfig cfg;
    cfg.cpus = 4;
    cfg.memoryBytes = 44 * kMiB;
    cfg.diskCount = 4;
    cfg.scheme = scheme;
    cfg.seed = seed;

    Simulation sim(cfg);
    const int inode = sim.kernel().createLock(readersWriter);

    // A metadata-heavy build: small sources, short compiles, and a
    // hot root-inode lookup path — the lock, not the disk, is the
    // scaling limit, as in the paper's contended workloads.
    PmakeConfig pm;
    pm.parallelism = 4;
    pm.filesPerWorker = 12;
    pm.compileCpu = 10 * kMs;
    pm.srcBytes = 4096;
    pm.objBytes = 4096;
    pm.metadataSync = false;
    pm.workerWsPages = 100;
    pm.inodeLock = inode;
    pm.lockHold = 8 * kMs;

    std::vector<SpuId> spus;
    for (int u = 0; u < 4; ++u) {
        const SpuId spu =
            sim.addSpu({.name = "u" + std::to_string(u),
                        .homeDisk = static_cast<DiskId>(u)});
        spus.push_back(spu);
        sim.addJob(spu, makePmake("pm" + std::to_string(u), pm));
    }

    const SimResults r = sim.run();
    if (lightOut)
        *lightOut = r.meanResponseSec({spus[0]});
    return r.meanResponseSecByPrefix("pm");
}

double
mean(Scheme scheme, bool rw)
{
    // One simulation per seed, in parallel on the sweep engine's pool.
    constexpr std::uint64_t seeds[] = {1, 2, 3};
    const auto responses = exp::parallelMap<double>(
        std::size(seeds), 0,
        [&](std::size_t s) { return runPmakes(scheme, rw, seeds[s]); });
    double sum = 0.0;
    for (double r : responses)
        sum += r;
    return sum / 3.0;
}

} // namespace

int
main()
{
    printBanner("Ablation A4: inode-lock granularity "
                "(4 parallel pmakes, 4 CPUs)");

    TextTable table({"scheme", "mutex (s)", "rw lock (s)",
                     "improvement"});
    for (Scheme s : {Scheme::Smp, Scheme::PIso}) {
        const double mtx = mean(s, false);
        const double rw = mean(s, true);
        table.addRow({schemeName(s), TextTable::num(mtx, 2),
                      TextTable::num(rw, 2),
                      TextTable::num(100.0 * (1.0 - rw / mtx), 0) + "%"});
    }
    table.print();

    std::printf("\npaper: the readers-writer fix improved base-IRIX "
                "response by 20-30%% on a\n4-CPU system and was "
                "required for isolation to hold at all.\n");
    return 0;
}
