/**
 * @file
 * Figure 3 reproduction: effect of resource sharing in the Pmake8
 * workload.
 *
 * Average response time of the jobs in the heavily-loaded SPUs (5-8)
 * in the unbalanced (12-job) configuration, normalised to SMP in the
 * balanced configuration (= 100).
 *
 * Paper shape: SMP 156 (ideal sharing), Quo 187 (idle resources
 * wasted), PIso 146 (isolation *and* borrowing of idle resources).
 */

#include <cstdio>

#include "bench/pmake8.hh"
#include "src/metrics/report.hh"

using namespace piso;
using namespace piso::bench;

int
main()
{
    printBanner("Figure 3: Pmake8 sharing — heavy SPUs (5-8), "
                "unbalanced, normalised response time");

    const double base =
        pmake8Mean(Scheme::Smp, false, [](const Pmake8Run &r) {
            return r.results.meanResponseSec(r.lightSpus);
        });

    TextTable table({"scheme", "unbalanced", "paper"});
    const char *paper[] = {"156", "187", "146"};
    int row = 0;
    for (Scheme scheme : {Scheme::Smp, Scheme::Quota, Scheme::PIso}) {
        const double uSec =
            pmake8Mean(scheme, true, [](const Pmake8Run &r) {
                return r.results.meanResponseSec(r.heavySpus);
            });
        table.addRow({schemeName(scheme),
                      TextTable::num(normalize(uSec, base), 0),
                      paper[row]});
        ++row;
    }
    table.print();
    std::printf("\n(response of jobs in SPUs 5-8; SMP balanced = 100; "
                "PIso should beat SMP slightly and Quo clearly)\n");
    return 0;
}
