/**
 * @file
 * Ablation A1: the BW difference threshold trade-off (Section 3.3).
 *
 * "Smaller values imply better isolation, with a choice of zero
 * resulting in round-robin scheduling. Larger values imply smaller
 * seek times, and a very large value results in the normal disk-
 * head-position scheduling."
 *
 * Sweeps the threshold on the pmake-copy workload and prints the
 * isolation metric (pmake response) against the efficiency metric
 * (positioning latency / copy response). The two ends must converge
 * to the Iso and Pos behaviours.
 */

#include <cstdio>

#include "src/exp/pool.hh"
#include "src/piso.hh"

using namespace piso;

namespace {

constexpr std::uint64_t kSeeds[] = {1, 2, 3};

struct Point
{
    double pmakeSec = 0.0;
    double copySec = 0.0;
    double latencyMs = 0.0;
};

Point
run(DiskPolicy policy, double threshold)
{
    // One simulation per seed, in parallel on the sweep engine's pool
    // (results come back in seed order, so the averages are exactly
    // the serial ones).
    const auto points = exp::parallelMap<Point>(
        std::size(kSeeds), 0, [&](std::size_t s) {
            SystemConfig cfg;
            cfg.cpus = 2;
            cfg.memoryBytes = 44 * kMiB;
            cfg.diskCount = 1;
            cfg.scheme = Scheme::PIso;
            cfg.diskPolicy = policy;
            cfg.bwThresholdSectors = threshold;
            cfg.diskParams.seekScale = 0.5;
            cfg.seed = kSeeds[s];

            Simulation sim(cfg);
            const SpuId pmk =
                sim.addSpu({.name = "pmk", .homeDisk = 0});
            const SpuId cpy =
                sim.addSpu({.name = "cpy", .homeDisk = 0});
            PmakeConfig pm;
            pm.parallelism = 2;
            pm.filesPerWorker = 40;
            pm.compileCpu = 25 * kMs;
            pm.workerWsPages = 200;
            sim.addJob(pmk, makePmake("pmake", pm));
            FileCopyConfig cc;
            cc.bytes = 20 * kMiB;
            sim.addJob(cpy, makeFileCopy("copy", cc));

            const SimResults r = sim.run();
            return Point{r.job("pmake").responseSec(),
                         r.job("copy").responseSec(),
                         r.disks[0].avgPositionMs};
        });

    Point sum;
    for (const Point &p : points) {
        sum.pmakeSec += p.pmakeSec;
        sum.copySec += p.copySec;
        sum.latencyMs += p.latencyMs;
    }
    const auto n = static_cast<double>(points.size());
    sum.pmakeSec /= n;
    sum.copySec /= n;
    sum.latencyMs /= n;
    return sum;
}

} // namespace

int
main()
{
    printBanner("Ablation A1: BW difference threshold sweep "
                "(pmake-copy workload)");

    TextTable table({"threshold (sectors)", "pmake (s)", "copy (s)",
                     "latency (ms)"});

    const Point iso = run(DiskPolicy::BlindFair, 0.0);
    table.addRow({"Iso (blind)", TextTable::num(iso.pmakeSec, 2),
                  TextTable::num(iso.copySec, 2),
                  TextTable::num(iso.latencyMs, 2)});

    for (double th : {0.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0}) {
        const Point p = run(DiskPolicy::FairPosition, th);
        table.addRow({TextTable::num(th, 0),
                      TextTable::num(p.pmakeSec, 2),
                      TextTable::num(p.copySec, 2),
                      TextTable::num(p.latencyMs, 2)});
    }

    const Point pos = run(DiskPolicy::HeadPosition, 0.0);
    table.addRow({"Pos (C-SCAN)", TextTable::num(pos.pmakeSec, 2),
                  TextTable::num(pos.copySec, 2),
                  TextTable::num(pos.latencyMs, 2)});
    table.print();

    std::printf("\nexpected: pmake response rises and copy response "
                "falls with the threshold;\nthe 0 end behaves like Iso, "
                "the large end like Pos.\n");
    return 0;
}
