/**
 * @file
 * Figure 2 reproduction: effect of isolation in the Pmake8 workload.
 *
 * Average response time of the jobs in the lightly-loaded SPUs (1-4)
 * in the balanced (B) and unbalanced (U) configurations, normalised
 * to SMP in the balanced configuration (= 100).
 *
 * Paper shape: SMP-U ~ 156 (no isolation: +56% from others' load);
 * Quo and PIso stay ~ 100 in both configurations.
 */

#include <cstdio>

#include "bench/pmake8.hh"
#include "src/metrics/report.hh"

using namespace piso;
using namespace piso::bench;

int
main()
{
    printBanner("Figure 2: Pmake8 isolation — light SPUs (1-4), "
                "normalised response time");

    double base = 0.0;
    TextTable table({"scheme", "balanced", "unbalanced", "paper B",
                     "paper U"});
    const char *paperB[] = {"100", "~100", "~100"};
    const char *paperU[] = {"156", "~100", "~100"};

    auto light = [](const Pmake8Run &r) {
        return r.results.meanResponseSec(r.lightSpus);
    };

    int row = 0;
    for (Scheme scheme : {Scheme::Smp, Scheme::Quota, Scheme::PIso}) {
        const double bSec = pmake8Mean(scheme, false, light);
        const double uSec = pmake8Mean(scheme, true, light);
        if (scheme == Scheme::Smp)
            base = bSec;
        table.addRow({schemeName(scheme),
                      TextTable::num(normalize(bSec, base), 0),
                      TextTable::num(normalize(uSec, base), 0),
                      paperB[row], paperU[row]});
        ++row;
    }
    table.print();
    std::printf("\n(response of jobs in SPUs 1-4; SMP balanced = 100; "
                "isolation holds when U stays near B)\n");
    return 0;
}
