/**
 * @file
 * Big-machine scaling bench: host cost per simulated event as the
 * configured machine grows from 8 CPUs x 8 SPUs to 256 CPUs x 512
 * SPUs (extension; the paper's machine stops at 8 CPUs).
 *
 * The workload holds the *active* set fixed — eight SPUs running the
 * Figure 2 pmake shape — while the configured SPU population grows, so
 * the bench isolates exactly what the O(active) policy loops claim:
 * per-event host cost must track the active set, not the population.
 * `SystemConfig::eagerPolicyLoops` re-enables the pre-PR-9 full scans
 * as the bit-exact baseline (same events, same results, more work).
 *
 * Not a google-benchmark target: the self-check contract (--check) is
 * part of the release-perf CI gate, and the sweep output is a plain
 * table.
 *
 *   ext_scale           full sweep table (a minute or so)
 *   ext_scale --quick   tiny structural run (ctest, label `scale`)
 *   ext_scale --check   assert the scaling contract:
 *                         - lazy == eager event counts (bit-exact)
 *                         - at 256 CPUs, 8 -> 512 SPUs raises host
 *                           ns/event by at most 2x
 *                         - 256 CPU x 512 SPU pmake runs >= 5x faster
 *                           than the eager baseline
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "src/piso.hh"

using namespace piso;

namespace {

struct Measured
{
    std::uint64_t events = 0;
    double wallSec = 0.0;
    std::uint64_t policyIters = 0;
    double simSec = 0.0;

    double nsPerEvent() const
    {
        return events ? wallSec * 1e9 / static_cast<double>(events)
                      : 0.0;
    }
};

/** One fixed-horizon run: @p spus SPUs configured, the first eight
 *  running the Figure 2 pmake shape (two parallel compiles each). */
Measured
runPoint(int cpus, int spus, Scheme scheme, bool eager, Time horizon)
{
    SystemConfig cfg;
    cfg.cpus = cpus;
    cfg.memoryBytes = 512 * kMiB;
    cfg.diskCount = 8;
    cfg.scheme = scheme;
    cfg.maxTime = horizon;
    cfg.eagerPolicyLoops = eager;

    Simulation sim(cfg);

    // Short compiles make the workload scheduling-bound: every segment
    // end parks the worker in disk I/O and forces a fresh pick, which
    // is exactly the path whose cost must not scale with the SPU
    // population. filesPerWorker keeps the active SPUs busy past every
    // horizon this bench uses.
    PmakeConfig pmake;
    pmake.parallelism = 2;
    pmake.filesPerWorker = 4096;
    pmake.compileCpu = 2 * kMs;
    pmake.workerWsPages = 330;
    pmake.inodeLock = sim.kernel().createLock(true);

    const int active = spus < 8 ? spus : 8;
    for (int u = 0; u < spus; ++u) {
        const SpuId spu = sim.addSpu(
            {.name = "u" + std::to_string(u),
             .homeDisk = static_cast<DiskId>(u % cfg.diskCount)});
        if (u < active) {
            sim.addJob(spu, makePmake("pm" + std::to_string(u) + "a",
                                      pmake));
            sim.addJob(spu, makePmake("pm" + std::to_string(u) + "b",
                                      pmake));
        }
        // Every SPU hosts a low-duty daemon (a big machine's idle
        // tenants are idle, not absent): 50 us of CPU roughly once a
        // second, staggered per SPU. This is what makes the
        // population visible to the policy loops — each daemon's SPU
        // enters the scheduler and memory registries, so the eager
        // baseline pays O(population) per pick while the O(active)
        // paths keep paying only for whoever is awake.
        std::vector<Action> script;
        const Time nap = 900 * kMs + static_cast<Time>(u) * kUs;
        for (int i = 0; i < 2 + static_cast<int>(toSeconds(horizon));
             ++i) {
            script.push_back(SleepAction{nap});
            script.push_back(ComputeAction{50 * kUs});
        }
        sim.addJob(spu, makeScriptJob("d" + std::to_string(u),
                                      std::move(script)));
    }

    const SimResults r = sim.run();
    return {r.perf.events, r.perf.wallSec,
            r.perf.policyItersCpu + r.perf.policyItersMem +
                r.perf.policyItersDisk + r.perf.policyItersNet,
            toSeconds(r.simulatedTime)};
}

void
printRow(int cpus, int spus, Scheme scheme, const char *mode,
         const Measured &m)
{
    std::printf("%5d %5d  %-5s %-6s %10llu %9.1f %8.0f %12llu\n",
                cpus, spus, schemeName(scheme), mode,
                static_cast<unsigned long long>(m.events),
                m.wallSec * 1e3, m.nsPerEvent(),
                static_cast<unsigned long long>(m.policyIters));
}

void
printHeader()
{
    std::printf("%5s %5s  %-5s %-6s %10s %9s %8s %12s\n", "cpus",
                "spus", "schm", "mode", "events", "wall ms",
                "ns/ev", "policy iters");
}

int
fail(const char *what, double got, double want)
{
    std::fprintf(stderr,
                 "ext_scale: FAIL %s (got %.3f, want %.3f)\n", what,
                 got, want);
    return 1;
}

/** The acceptance contract of the O(active) policy loops. */
int
check()
{
    const Time horizon = 10 * kSec;

    printHeader();
    const Measured small = runPoint(256, 8, Scheme::PIso, false,
                                    horizon);
    printRow(256, 8, Scheme::PIso, "lazy", small);
    const Measured big = runPoint(256, 512, Scheme::PIso, false,
                                  horizon);
    printRow(256, 512, Scheme::PIso, "lazy", big);
    const Measured eager = runPoint(256, 512, Scheme::PIso, true,
                                    horizon);
    printRow(256, 512, Scheme::PIso, "eager", eager);

    // Bit-exactness: the eager baseline replays the same simulation.
    if (eager.events != big.events)
        return fail("eager/lazy event divergence",
                    static_cast<double>(eager.events),
                    static_cast<double>(big.events));

    // Deterministic flatness: growing the population 64x may not blow
    // up the policy work against the same active set.
    if (static_cast<double>(big.policyIters) >
        8.0 * static_cast<double>(small.policyIters))
        return fail("policy iters vs population",
                    static_cast<double>(big.policyIters),
                    8.0 * static_cast<double>(small.policyIters));

    // Host flatness: 8 -> 512 configured SPUs at 256 CPUs costs at
    // most 2x per event.
    if (big.nsPerEvent() > 2.0 * small.nsPerEvent())
        return fail("ns/event flatness 8 -> 512 SPUs",
                    big.nsPerEvent(), 2.0 * small.nsPerEvent());

    // Headline speedup: the lazy loops beat the eager baseline >= 5x
    // on the big machine.
    if (eager.wallSec < 5.0 * big.wallSec)
        return fail("lazy speedup over eager baseline",
                    eager.wallSec / big.wallSec, 5.0);

    std::printf("ext_scale: OK (%.1fx over eager, ns/event %.0f -> "
                "%.0f)\n",
                eager.wallSec / big.wallSec, small.nsPerEvent(),
                big.nsPerEvent());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    bool doCheck = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--check") == 0) {
            doCheck = true;
        } else {
            std::fprintf(stderr,
                         "usage: ext_scale [--quick|--check]\n");
            return 2;
        }
    }

    if (doCheck)
        return check();

    const Time horizon = quick ? 2 * kSec : 10 * kSec;
    static const int kCpus[] = {8, 64, 256};
    static const int kSpus[] = {8, 64, 512};
    static const Scheme kSchemes[] = {Scheme::Smp, Scheme::Quota,
                                      Scheme::PIso};

    printHeader();
    for (int cpus : kCpus) {
        if (quick && cpus > 8)
            continue;
        for (int spus : kSpus) {
            if (quick && spus > 64)
                continue;
            for (Scheme scheme : kSchemes) {
                const Measured m =
                    runPoint(cpus, spus, scheme, false, horizon);
                printRow(cpus, spus, scheme, "lazy", m);
            }
        }
    }

    // The eager baseline on the biggest machine, for the table's sake.
    if (!quick) {
        const Measured m =
            runPoint(256, 512, Scheme::PIso, true, horizon);
        printRow(256, 512, Scheme::PIso, "eager", m);
    }
    return 0;
}
