/**
 * @file
 * Figure 5 reproduction: the CPU isolation workload (Section 4.3).
 *
 * Two SPUs, each entitled to half of an 8-CPU machine. SPU 1 runs a
 * four-process Ocean (spin barriers); SPU 2 runs three Flashlite and
 * three VCS jobs — six compute-bound processes on four CPUs. Memory
 * is ample (64 MB), so this isolates the CPU dimension.
 *
 * Paper shape (response normalised to SMP = 100 per application):
 *  - Ocean: better under PIso than SMP (isolation from the six
 *    hogs); Quo slightly better still.
 *  - Flashlite / VCS: much worse under Quo (~150: six processes on
 *    four CPUs with no sharing); PIso close to SMP because Ocean's
 *    CPUs are lent once Ocean finishes.
 */

#include <cstdio>
#include <map>
#include <string>

#include "src/piso.hh"

using namespace piso;

namespace {

struct Fig5Row
{
    double ocean = 0.0;
    double flashlite = 0.0;
    double vcs = 0.0;
};

Fig5Row
runScheme(Scheme scheme)
{
    SystemConfig cfg;
    cfg.cpus = 8;
    cfg.memoryBytes = 64 * kMiB;
    cfg.diskCount = 2;
    cfg.scheme = scheme;
    cfg.seed = 7;

    Simulation sim(cfg);
    const SpuId spu1 = sim.addSpu({.name = "ocean", .homeDisk = 0});
    const SpuId spu2 = sim.addSpu({.name = "eng", .homeDisk = 1});

    OceanConfig ocean;
    ocean.processes = 4;
    ocean.iterations = 80;
    ocean.grain = 100 * kMs;
    ocean.wsPagesPerProc = 700;
    sim.addJob(spu1, makeOcean("Ocean", ocean));

    for (int i = 0; i < 3; ++i) {
        sim.addJob(spu2, makeFlashlite(
                             "Flashlite" + std::to_string(i),
                             12 * kSec, 500));
        sim.addJob(spu2,
                   makeVcs("VCS" + std::to_string(i), 14 * kSec, 700));
    }

    const SimResults r = sim.run();
    Fig5Row row;
    row.ocean = r.meanResponseSecByPrefix("Ocean");
    row.flashlite = r.meanResponseSecByPrefix("Flashlite");
    row.vcs = r.meanResponseSecByPrefix("VCS");
    return row;
}

} // namespace

int
main()
{
    printBanner("Figure 5: CPU isolation workload — normalised "
                "response time (SMP = 100)");

    const Fig5Row smp = runScheme(Scheme::Smp);
    const Fig5Row quo = runScheme(Scheme::Quota);
    const Fig5Row piso = runScheme(Scheme::PIso);

    TextTable table({"app", "SMP", "Quo", "PIso", "paper shape"});
    table.addRow({"Ocean", "100",
                  TextTable::num(normalize(quo.ocean, smp.ocean), 0),
                  TextTable::num(normalize(piso.ocean, smp.ocean), 0),
                  "Quo <= PIso < 100"});
    table.addRow(
        {"Flashlite", "100",
         TextTable::num(normalize(quo.flashlite, smp.flashlite), 0),
         TextTable::num(normalize(piso.flashlite, smp.flashlite), 0),
         "Quo ~150, PIso ~100"});
    table.addRow({"VCS", "100",
                  TextTable::num(normalize(quo.vcs, smp.vcs), 0),
                  TextTable::num(normalize(piso.vcs, smp.vcs), 0),
                  "Quo ~150, PIso ~100"});
    table.print();

    std::printf("\n(absolute seconds, SMP: Ocean %.1f, Flashlite %.1f, "
                "VCS %.1f)\n",
                smp.ocean, smp.flashlite, smp.vcs);
    return 0;
}
