/**
 * @file
 * Figure 7 reproduction: the memory-isolation workload (Section 4.4).
 *
 * Two SPUs on a 4-CPU, 16 MB machine (deliberately small). A pmake
 * job is four parallel compiles; one job fits an SPU's half of
 * memory, two jobs in one SPU cause memory pressure.
 *
 * Balanced: one job per SPU. Unbalanced: SPU 2 runs two jobs.
 * All response times are normalised to balanced SMP (= 100).
 *
 * Paper shape:
 *  - Isolation (SPU 1): SMP degrades ~45% from B to U (global paging
 *    steals its pages); PIso only ~13%; Quo ~0.
 *  - Sharing (SPU 2, unbalanced): Quo +145% vs its balanced case
 *    (fixed quota thrashes: +100% CPU for two jobs, +45% memory);
 *    PIso close to SMP through careful sharing of memory and CPU.
 */

#include <cstdio>

#include "src/piso.hh"

using namespace piso;

namespace {

struct Fig7Run
{
    double spu1 = 0.0;  //!< mean response of SPU 1's job(s), seconds
    double spu2 = 0.0;  //!< mean response of SPU 2's job(s), seconds
};

Fig7Run
runConfig(Scheme scheme, bool unbalanced, std::uint64_t seed)
{
    SystemConfig cfg;
    cfg.cpus = 4;
    cfg.memoryBytes = 16 * kMiB;
    cfg.diskCount = 2;
    cfg.scheme = scheme;
    cfg.seed = seed;

    Simulation sim(cfg);
    const SpuId spu1 = sim.addSpu({.name = "user1", .homeDisk = 0});
    const SpuId spu2 = sim.addSpu({.name = "user2", .homeDisk = 1});

    PmakeConfig pmake;
    pmake.parallelism = 4;   // "four parallel compiles each"
    pmake.filesPerWorker = 5;
    pmake.compileCpu = 240 * kMs;
    pmake.workerWsPages = 340;  // one job ~5.3 MB: one fits an SPU's
                                // half of 16 MB, two thrash a quota
    pmake.touchInterval = 10 * kMs;
    // The shared inode readers-writer lock of Section 3.4: all jobs'
    // metadata operations contend on it across SPUs.
    pmake.inodeLock = sim.kernel().createLock(true);

    sim.addJob(spu1, makePmake("pm-u1-j0", pmake));
    sim.addJob(spu2, makePmake("pm-u2-j0", pmake));
    if (unbalanced)
        sim.addJob(spu2, makePmake("pm-u2-j1", pmake));

    const SimResults r = sim.run();
    return Fig7Run{r.meanResponseSec({spu1}), r.meanResponseSec({spu2})};
}

/** Mean over the bench seeds. */
Fig7Run
runMean(Scheme scheme, bool unbalanced)
{
    Fig7Run sum;
    int n = 0;
    for (std::uint64_t seed : {1, 2, 3}) {
        const Fig7Run r = runConfig(scheme, unbalanced, seed);
        sum.spu1 += r.spu1;
        sum.spu2 += r.spu2;
        ++n;
    }
    return Fig7Run{sum.spu1 / n, sum.spu2 / n};
}

} // namespace

int
main()
{
    printBanner("Figure 7: memory isolation workload — normalised "
                "response time (balanced SMP = 100)");

    const Fig7Run smpB = runMean(Scheme::Smp, false);
    const double base = smpB.spu1;

    std::printf("\n-- Isolation: SPU 1 (one job) --\n");
    TextTable iso({"scheme", "balanced", "unbalanced", "paper"});
    const char *paperIso[] = {"B 100 -> U ~145", "B ~100 -> U ~100",
                              "B ~100 -> U ~113"};
    int row = 0;
    for (Scheme s : {Scheme::Smp, Scheme::Quota, Scheme::PIso}) {
        const Fig7Run b = runMean(s, false);
        const Fig7Run u = runMean(s, true);
        iso.addRow({schemeName(s),
                    TextTable::num(normalize(b.spu1, base), 0),
                    TextTable::num(normalize(u.spu1, base), 0),
                    paperIso[row]});
        ++row;
    }
    iso.print();

    std::printf("\n-- Sharing: SPU 2 (two jobs when unbalanced) --\n");
    TextTable sh({"scheme", "balanced", "unbalanced", "paper"});
    const char *paperSh[] = {"U moderate (ideal sharing)",
                             "U ~245 (+145% vs balanced)",
                             "U close to SMP"};
    row = 0;
    for (Scheme s : {Scheme::Smp, Scheme::Quota, Scheme::PIso}) {
        const Fig7Run b = runMean(s, false);
        const Fig7Run u = runMean(s, true);
        sh.addRow({schemeName(s),
                   TextTable::num(normalize(b.spu2, base), 0),
                   TextTable::num(normalize(u.spu2, base), 0),
                   paperSh[row]});
        ++row;
    }
    sh.print();

    std::printf("\n(balanced SMP SPU-1 response: %.2f s)\n", base);
    return 0;
}
