/**
 * @file
 * Ablation A6: cache pollution and loan-churn (Section 3.1).
 *
 * "There are other hidden costs to reallocating CPUs, such as cache
 * pollution. A more sophisticated implementation of the sharing
 * policy could try to reduce these costs by preventing frequent
 * reallocation of CPUs for sharing, if the algorithm detects that the
 * allocation is being revoked frequently."
 *
 * With a per-migration cache-refill cost enabled, an I/O-punctuated
 * home workload whose CPUs are constantly borrowed and revoked pays
 * that cost on every bounce. The loan hold-off keeps a revoked CPU
 * home-only for a window, trading a little sharing for less churn.
 */

#include <cstdio>

#include "src/exp/pool.hh"
#include "src/piso.hh"

using namespace piso;

namespace {

struct Point
{
    double homeSec = 0.0;      //!< mean response of the home jobs
    double borrowerSec = 0.0;  //!< mean response of the foreign hogs
    std::uint64_t revocations = 0;
    std::uint64_t penalties = 0;
};

Point
run(Time holdoff, std::uint64_t seed)
{
    SystemConfig cfg;
    cfg.cpus = 4;
    cfg.memoryBytes = 32 * kMiB;
    cfg.diskCount = 2;
    cfg.scheme = Scheme::PIso;
    cfg.loanHoldoff = holdoff;
    cfg.kernel.cacheAffinityCost = 500 * kUs; // L2 refill after bounce
    cfg.seed = seed;

    Simulation sim(cfg);
    const SpuId home = sim.addSpu({.name = "home", .homeDisk = 0});
    const SpuId batch = sim.addSpu({.name = "batch", .homeDisk = 1});

    // Home: four I/O-punctuated jobs — short computes separated by
    // disk reads, so their CPUs go idle (and get borrowed) briefly
    // but constantly.
    PmakeConfig pm;
    pm.parallelism = 2;
    pm.filesPerWorker = 25;
    pm.compileCpu = 10 * kMs;
    pm.workerWsPages = 100;
    sim.addJob(home, makePmake("home0", pm));
    sim.addJob(home, makePmake("home1", pm));

    for (int i = 0; i < 6; ++i) {
        ComputeSpec hog;
        hog.totalCpu = 3 * kSec;
        hog.wsPages = 64;
        sim.addJob(batch,
                   makeComputeJob("hog" + std::to_string(i), hog));
    }

    const SimResults r = sim.run();
    Point p;
    p.homeSec = r.meanResponseSecByPrefix("home");
    p.borrowerSec = r.meanResponseSecByPrefix("hog");
    p.revocations =
        dynamic_cast<PisoScheduler &>(sim.scheduler()).revocations();
    p.penalties = r.kernel.affinityPenalties.value();
    return p;
}

Point
mean(Time holdoff)
{
    // One simulation per seed, in parallel on the sweep engine's pool.
    constexpr std::uint64_t seeds[] = {1, 2, 3};
    const auto points = exp::parallelMap<Point>(
        std::size(seeds), 0,
        [&](std::size_t s) { return run(holdoff, seeds[s]); });
    Point sum;
    for (const Point &p : points) {
        sum.homeSec += p.homeSec;
        sum.borrowerSec += p.borrowerSec;
        sum.revocations += p.revocations;
        sum.penalties += p.penalties;
    }
    sum.homeSec /= 3;
    sum.borrowerSec /= 3;
    sum.revocations /= 3;
    sum.penalties /= 3;
    return sum;
}

} // namespace

int
main()
{
    printBanner("Ablation A6: loan hold-off vs reallocation churn "
                "(cache refill 500 us)");

    TextTable table({"hold-off", "home jobs (s)", "hogs (s)",
                     "revocations", "affinity penalties"});
    for (Time h : {Time{0}, 10 * kMs, 50 * kMs, 200 * kMs, kSec}) {
        const Point p = mean(h);
        table.addRow({formatTime(h), TextTable::num(p.homeSec, 2),
                      TextTable::num(p.borrowerSec, 2),
                      std::to_string(p.revocations),
                      std::to_string(p.penalties)});
    }
    table.print();

    std::printf("\nexpected: hold-off cuts revocation churn and the "
                "home jobs' cache penalties;\npushed too far it "
                "approaches fixed quotas and the hogs lose their "
                "borrowed cycles.\n");
    return 0;
}
