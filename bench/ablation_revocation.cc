/**
 * @file
 * Ablation A3: CPU revocation latency (Section 3.1).
 *
 * A loaned CPU is revoked at the next clock tick (<= 10 ms) or, with
 * an inter-processor interrupt, immediately — the paper suggests the
 * IPI "might be needed to provide response time performance isolation
 * guarantees to interactive processes".
 *
 * Workload: SPU A runs an interactive-style job (short compute bursts
 * separated by sleeps); SPU B floods the machine so A's CPUs are
 * always loaned out when a burst arrives. We compare burst latency
 * under tick-based and IPI revocation, and with a coarser tick.
 */

#include <cstdio>

#include "src/exp/pool.hh"
#include "src/piso.hh"

using namespace piso;

namespace {

constexpr std::uint64_t kSeeds[] = {1, 2, 3};

struct Point
{
    double interactiveSec = 0.0;  //!< response of the bursty job
    double hogSec = 0.0;
    std::uint64_t revocations = 0;
};

Point
run(bool ipi, Time tick)
{
    // One simulation per seed, in parallel on the sweep engine's pool.
    const auto points = exp::parallelMap<Point>(
        std::size(kSeeds), 0, [&](std::size_t s) {
            SystemConfig cfg;
            cfg.cpus = 4;
            cfg.memoryBytes = 32 * kMiB;
            cfg.diskCount = 2;
            cfg.scheme = Scheme::PIso;
            cfg.ipiRevocation = ipi;
            cfg.tickPeriod = tick;
            cfg.seed = kSeeds[s];

            Simulation sim(cfg);
            const SpuId a =
                sim.addSpu({.name = "interactive", .homeDisk = 0});
            const SpuId b = sim.addSpu({.name = "batch", .homeDisk = 1});

            // 200 bursts of 2 ms separated by ~20 ms think time (varied
            // so the cycle cannot phase-lock to the slice quantum):
            // ~4.4 s of ideal wall-clock, exquisitely sensitive to
            // dispatch latency.
            std::vector<Action> bursts;
            for (int i = 0; i < 200; ++i) {
                bursts.push_back(ComputeAction{2 * kMs});
                bursts.push_back(
                    SleepAction{(15 + (i * 7) % 11) * kMs});
            }
            sim.addJob(a, makeScriptJob("bursty", std::move(bursts)));

            for (int i = 0; i < 8; ++i) {
                ComputeSpec hog;
                hog.totalCpu = 5 * kSec;
                hog.wsPages = 64;
                sim.addJob(b,
                           makeComputeJob("hog" + std::to_string(i), hog));
            }

            const SimResults r = sim.run();
            Point p;
            p.interactiveSec = r.job("bursty").responseSec();
            p.hogSec = r.meanResponseSecByPrefix("hog");
            p.revocations =
                dynamic_cast<PisoScheduler &>(sim.scheduler())
                    .revocations();
            return p;
        });

    Point sum;
    for (const Point &p : points) {
        sum.interactiveSec += p.interactiveSec;
        sum.hogSec += p.hogSec;
        sum.revocations += p.revocations;
    }
    const auto n = points.size();
    sum.interactiveSec /= static_cast<double>(n);
    sum.hogSec /= static_cast<double>(n);
    sum.revocations /= n;
    return sum;
}

} // namespace

int
main()
{
    printBanner("Ablation A3: loan revocation latency "
                "(bursty job vs borrowing flood)");

    // Ideal: 200 x (2 ms + ~20 ms think) = 4.4 s.
    TextTable table({"revocation", "bursty (s)", "hogs (s)",
                     "revocations"});
    struct Cfg
    {
        const char *name;
        bool ipi;
        Time tick;
    };
    for (const Cfg &c :
         {Cfg{"tick 10 ms (paper)", false, 10 * kMs},
          Cfg{"tick 30 ms", false, 30 * kMs},
          Cfg{"IPI (immediate)", true, 10 * kMs}}) {
        const Point p = run(c.ipi, c.tick);
        table.addRow({c.name, TextTable::num(p.interactiveSec, 2),
                      TextTable::num(p.hogSec, 2),
                      std::to_string(p.revocations)});
    }
    table.print();

    std::printf("\nideal bursty response: 4.40 s (zero dispatch "
                "latency). Tick-based revocation adds up to one tick "
                "per burst; IPI removes it.\n");
    return 0;
}
