/**
 * @file
 * Extension bench: a mixed per-resource profile, something the paper's
 * machine-wide schemes cannot express.
 *
 * Two SPUs on a small machine: "build" runs a four-worker pmake that
 * wants every CPU but fits its memory half; "stream" runs a large file
 * copy that is disk-bound (its CPUs sit mostly idle) while its pages
 * stream through the buffer cache. The mixed profile combines PIso's
 * CPU policy with Quota's memory policy:
 *
 *  - CPU sharing: under Quota the pmake is confined to its two-CPU
 *    partition while the stream's CPUs idle. PIso CPU loans them out,
 *    and the mixed run must match the uniform-PIso pmake response.
 *  - Memory isolation: under SMP's global replacement the stream's
 *    cache pages evict the pmake's working set (refaults). Quota
 *    memory caps the stream at its half, and the mixed run must match
 *    uniform Quo's refault level, far below SMP's.
 *
 * The checks at the bottom fail the bench (exit 1) if either dimension
 * drifts from the scheme it borrows.
 */

#include <cstdio>
#include <cstdlib>

#include "src/piso.hh"

using namespace piso;

namespace {

struct MixedRun
{
    double buildSec = 0.0;       //!< pmake response, seconds
    double streamSec = 0.0;      //!< copy response, seconds
    std::uint64_t refaults = 0;  //!< kernel-wide refaults
};

MixedRun
runProfile(const SchemeProfile &profile, std::uint64_t seed)
{
    SystemConfig cfg;
    cfg.cpus = 4;
    cfg.memoryBytes = 16 * kMiB;
    cfg.diskCount = 2;
    cfg.seed = seed;
    cfg.setProfile(profile);

    Simulation sim(cfg);
    const SpuId build = sim.addSpu({.name = "build", .homeDisk = 0});
    const SpuId stream = sim.addSpu({.name = "stream", .homeDisk = 1});

    PmakeConfig pmake;
    pmake.parallelism = 4;  // wants the whole machine, entitled to half
    pmake.filesPerWorker = 60;  // long enough to overlap the stream
    pmake.compileCpu = 200 * kMs;
    pmake.workerWsPages = 340;  // ~5.3 MB total: fits the SPU's half
    pmake.touchInterval = 10 * kMs;
    sim.addJob(build, makePmake("pmake", pmake));

    FileCopyConfig copy;
    copy.bytes = 32 * kMiB;  // streams 2x physical memory
    sim.addJob(stream, makeFileCopy("copy", copy));

    const SimResults r = sim.run();
    return MixedRun{r.job("pmake").responseSec(),
                    r.job("copy").responseSec(),
                    r.kernel.refaults.value()};
}

MixedRun
runMean(const SchemeProfile &profile)
{
    MixedRun sum;
    int n = 0;
    for (std::uint64_t seed : {1, 2, 3}) {
        const MixedRun r = runProfile(profile, seed);
        sum.buildSec += r.buildSec;
        sum.streamSec += r.streamSec;
        sum.refaults += r.refaults;
        ++n;
    }
    return MixedRun{sum.buildSec / n, sum.streamSec / n,
                    sum.refaults / n};
}

int failures = 0;

void
check(bool ok, const char *what)
{
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
    if (!ok)
        ++failures;
}

} // namespace

int
main()
{
    printBanner("Extension: mixed profile (PIso CPU + Quota memory) "
                "vs the uniform schemes");

    SchemeProfile mixed = SchemeProfile::uniform(Scheme::PIso);
    mixed.memory = MemoryPolicy::Quota;

    const MixedRun smp = runMean(SchemeProfile::uniform(Scheme::Smp));
    const MixedRun quo = runMean(SchemeProfile::uniform(Scheme::Quota));
    const MixedRun piso = runMean(SchemeProfile::uniform(Scheme::PIso));
    const MixedRun mix = runMean(mixed);

    TextTable table(
        {"profile", "pmake (s)", "copy (s)", "refaults"});
    table.addRow({"SMP", TextTable::num(smp.buildSec, 2),
                  TextTable::num(smp.streamSec, 2),
                  std::to_string(smp.refaults)});
    table.addRow({"Quo", TextTable::num(quo.buildSec, 2),
                  TextTable::num(quo.streamSec, 2),
                  std::to_string(quo.refaults)});
    table.addRow({"PIso", TextTable::num(piso.buildSec, 2),
                  TextTable::num(piso.streamSec, 2),
                  std::to_string(piso.refaults)});
    table.addRow({mixed.str(), TextTable::num(mix.buildSec, 2),
                  TextTable::num(mix.streamSec, 2),
                  std::to_string(mix.refaults)});
    table.print();

    std::printf("\nchecks:\n");
    // CPU dimension behaves like PIso: the loaned CPUs keep the pmake
    // near the uniform-PIso response, well ahead of the Quota cage.
    check(mix.buildSec <= piso.buildSec * 1.15 &&
              mix.buildSec >= piso.buildSec * 0.85,
          "pmake response matches uniform PIso (CPU loaning works)");
    check(mix.buildSec < quo.buildSec * 0.85,
          "pmake response beats uniform Quo (not CPU-caged)");
    // Memory dimension behaves like Quo: the stream cannot displace
    // the pmake's working set the way SMP's global replacement does.
    check(mix.refaults <= quo.refaults + 50,
          "refaults match uniform Quo (memory capped)");
    check(smp.refaults > quo.refaults + 50,
          "SMP global replacement visibly thrashes (scenario valid)");

    if (failures) {
        std::printf("\n%d check(s) failed\n", failures);
        return 1;
    }
    std::printf("\nThe profile borrows each dimension from a "
                "different column of Table 2 —\nexpressible only "
                "because the policies compose per resource.\n");
    return 0;
}
