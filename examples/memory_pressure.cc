/**
 * @file
 * Watching the entitled / allowed / used levels move (Section 2.3).
 *
 * A borrower SPU wants more memory than its half of the machine while
 * the lender idles; at t = 2 s the lender wakes and claims its own
 * pages back. The example samples the three levels every 250 ms so
 * you can watch the sharing policy lend idle pages and then revoke
 * them, with the Reserve Threshold hiding the revocation latency.
 */

#include <cstdio>
#include <functional>

#include "src/piso.hh"

using namespace piso;

int
main()
{
    printBanner("Memory lending timeline: entitled/allowed/used per "
                "SPU (16 MB machine)");

    SystemConfig cfg;
    cfg.cpus = 4;
    cfg.memoryBytes = 16 * kMiB;
    cfg.diskCount = 2;
    cfg.scheme = Scheme::PIso;
    cfg.seed = 2;

    Simulation sim(cfg);
    const SpuId lender = sim.addSpu({.name = "lender", .homeDisk = 0});
    const SpuId borrower =
        sim.addSpu({.name = "borrower", .homeDisk = 1});

    // Borrower: wants ~2600 pages, entitled to ~1700.
    ComputeSpec hungry;
    hungry.totalCpu = 5 * kSec;
    hungry.wsPages = 2600;
    sim.addJob(borrower, makeComputeJob("hungry", hungry));

    // Lender: sleeps 2 s, then builds a 1300-page working set.
    std::vector<Action> wake;
    wake.push_back(GrowMemAction{1300});
    wake.push_back(ComputeAction{2 * kSec});
    sim.addJob(lender, makeScriptJob("wakeup", std::move(wake), 2 * kSec));

    TextTable table({"t (s)", "lender E/A/U", "borrower E/A/U",
                     "free", "reserve"});
    std::function<void()> probe = [&] {
        const MemLevels &l = sim.vm().levels(lender);
        const MemLevels &b = sim.vm().levels(borrower);
        auto eau = [](const MemLevels &m) {
            return std::to_string(m.entitled) + "/" +
                   std::to_string(m.allowed) + "/" +
                   std::to_string(m.used);
        };
        table.addRow({TextTable::num(toSeconds(sim.events().now()), 2),
                      eau(l), eau(b),
                      std::to_string(sim.vm().freePages()),
                      std::to_string(sim.vm().reservePages())});
        sim.events().scheduleAfter(250 * kMs, probe);
    };
    sim.events().schedule(0, probe);

    const SimResults r = sim.run();
    table.print();

    std::printf("\nJobs: hungry %.2f s, wakeup ramp %.2f s "
                "(both complete: %s)\n",
                r.job("hungry").responseSec(),
                r.job("wakeup").responseSec(),
                r.completed ? "yes" : "no");
    std::printf(
        "\nTimeline reading: while the lender sleeps, the policy "
        "raises the borrower's\nallowed level above its entitlement "
        "(idle pages lent, reserve withheld). When\nthe lender wakes "
        "it allocates instantly from the reserve; the borrower's\n"
        "allowance falls back and the pageout daemon reclaims its "
        "excess pages.\n");
    return 0;
}
