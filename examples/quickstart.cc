/**
 * @file
 * Quickstart: two users share a 4-CPU machine. User A runs a small
 * pmake; user B runs a CPU hog. We run the same workload under the
 * three schemes of the paper (SMP / Quota / PIso) and print each
 * job's response time — the smallest possible demonstration of
 * isolation + sharing.
 */

#include <cstdio>

#include "src/piso.hh"

using namespace piso;

namespace {

SimResults
runScheme(Scheme scheme)
{
    SystemConfig cfg;
    cfg.cpus = 4;
    cfg.memoryBytes = 32 * kMiB;
    cfg.diskCount = 2;
    cfg.scheme = scheme;
    cfg.seed = 42;

    Simulation sim(cfg);
    const SpuId userA = sim.addSpu({.name = "alice", .homeDisk = 0});
    const SpuId userB = sim.addSpu({.name = "bob", .homeDisk = 1});

    PmakeConfig pmake;
    pmake.parallelism = 2;
    pmake.filesPerWorker = 8;
    sim.addJob(userA, makePmake("alice-build", pmake));

    // Bob oversubscribes his half of the machine with four hogs.
    for (int i = 0; i < 4; ++i) {
        ComputeSpec hog;
        hog.totalCpu = 4 * kSec;
        sim.addJob(userB, makeComputeJob("bob-hog" + std::to_string(i),
                                         hog));
    }
    return sim.run();
}

} // namespace

int
main()
{
    printBanner("Quickstart: pmake vs. CPU hogs under SMP / Quo / PIso");

    TextTable table({"job", "SMP (s)", "Quo (s)", "PIso (s)"});
    const SimResults smp = runScheme(Scheme::Smp);
    const SimResults quo = runScheme(Scheme::Quota);
    const SimResults piso = runScheme(Scheme::PIso);

    for (const JobResult &j : smp.jobs) {
        table.addRow({j.name, TextTable::num(j.responseSec(), 2),
                      TextTable::num(quo.job(j.name).responseSec(), 2),
                      TextTable::num(piso.job(j.name).responseSec(), 2)});
    }
    table.print();

    std::printf(
        "\nExpected shape: alice-build is slower under SMP (bob's hogs\n"
        "steal her CPUs) but equally fast under Quo and PIso; bob's\n"
        "hogs do better under PIso than Quo because they borrow\n"
        "alice's idle CPUs once her build finishes.\n");
    return 0;
}
