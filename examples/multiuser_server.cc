/**
 * @file
 * The paper's motivating scenario (Section 1): "project A owns a
 * third of the machine and project B owns two thirds" — an explicit
 * sharing contract enforced with weighted SPU shares.
 *
 * Project A runs interactive builds; project B runs batch simulation
 * sweeps. Under PIso the contract holds: A's builds see their third
 * of the machine no matter how hard B pushes, and B soaks up A's idle
 * capacity between builds.
 */

#include <cstdio>

#include "src/piso.hh"

using namespace piso;

namespace {

SimResults
run(Scheme scheme)
{
    SystemConfig cfg;
    cfg.cpus = 6;
    cfg.memoryBytes = 48 * kMiB;
    cfg.diskCount = 2;
    cfg.scheme = scheme;
    cfg.seed = 11;

    Simulation sim(cfg);

    // The contract: A owns 1/3, B owns 2/3.
    const SpuId projectA =
        sim.addSpu({.name = "projectA", .share = 1.0, .homeDisk = 0});
    const SpuId projectB =
        sim.addSpu({.name = "projectB", .share = 2.0, .homeDisk = 1});

    // Project A: three builds spread over the day (staggered starts).
    PmakeConfig build;
    build.parallelism = 2;
    build.filesPerWorker = 8;
    for (int i = 0; i < 3; ++i) {
        JobSpec job = makePmake("A-build" + std::to_string(i), build);
        job.startAt = static_cast<Time>(i) * 4 * kSec;
        sim.addJob(projectA, std::move(job));
    }

    // Project B: a batch sweep of eight simulations, submitted at once.
    for (int i = 0; i < 8; ++i) {
        ComputeSpec sims;
        sims.totalCpu = 5 * kSec;
        sims.wsPages = 400;
        sim.addJob(projectB,
                   makeComputeJob("B-sim" + std::to_string(i), sims));
    }
    return sim.run();
}

} // namespace

int
main()
{
    printBanner("Multi-user server: 1/3-2/3 contract between two "
                "projects (6 CPUs)");

    const SimResults smp = run(Scheme::Smp);
    const SimResults quo = run(Scheme::Quota);
    const SimResults piso = run(Scheme::PIso);

    TextTable table({"metric", "SMP", "Quo", "PIso"});
    table.addRow(
        {"A mean build (s)",
         TextTable::num(smp.meanResponseSecByPrefix("A-build"), 2),
         TextTable::num(quo.meanResponseSecByPrefix("A-build"), 2),
         TextTable::num(piso.meanResponseSecByPrefix("A-build"), 2)});
    table.addRow(
        {"B mean sim (s)",
         TextTable::num(smp.meanResponseSecByPrefix("B-sim"), 2),
         TextTable::num(quo.meanResponseSecByPrefix("B-sim"), 2),
         TextTable::num(piso.meanResponseSecByPrefix("B-sim"), 2)});
    table.print();

    std::printf(
        "\nReading the table: under SMP there is no contract — B's "
        "simulations take\nCPU from A's builds whenever they overlap. "
        "Under Quo, A is safe but B's\nsweep is ~35%% slower because "
        "A's idle CPUs are wasted between builds.\nPIso honours the "
        "contract both ways: builds stay at their Quo speed and\nB's "
        "sweep matches SMP.\n");
    return 0;
}
