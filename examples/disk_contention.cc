/**
 * @file
 * The core-dump story of Section 3.3: "a read or write to a large
 * file (e.g. a core dump) could monopolize the disk, causing all
 * requests from one SPU to a file to be serviced before requests from
 * other SPUs are scheduled."
 *
 * One user's process dumps an enormous core file while another user
 * runs an interactive, disk-dependent build on the same disk. We
 * show the build's per-request wait under the three disk policies.
 */

#include <cstdio>

#include "src/piso.hh"

using namespace piso;

namespace {

struct Outcome
{
    double buildSec = 0.0;
    double buildWaitMs = 0.0;
    double dumpSec = 0.0;
};

Outcome
run(DiskPolicy policy)
{
    SystemConfig cfg;
    cfg.cpus = 2;
    cfg.memoryBytes = 48 * kMiB;
    cfg.diskCount = 1;
    cfg.scheme = Scheme::PIso;
    cfg.diskPolicy = policy;
    cfg.diskParams.seekScale = 0.5;
    cfg.seed = 3;

    Simulation sim(cfg);
    const SpuId dev = sim.addSpu({.name = "developer", .homeDisk = 0});
    const SpuId victim = sim.addSpu({.name = "dumper", .homeDisk = 0});

    // The interactive build: lots of small scattered reads.
    PmakeConfig build;
    build.parallelism = 2;
    build.filesPerWorker = 20;
    build.compileCpu = 20 * kMs;
    build.workerWsPages = 150;
    sim.addJob(dev, makePmake("build", build));

    // The core dump: one process streams 24 MB to disk.
    FileCopyConfig dump;
    dump.bytes = 24 * kMiB;
    sim.addJob(victim, makeFileCopy("coredump", dump));

    const SimResults r = sim.run();
    Outcome out;
    out.buildSec = r.job("build").responseSec();
    out.dumpSec = r.job("coredump").responseSec();
    if (r.disks[0].perSpu.count(dev))
        out.buildWaitMs = r.disks[0].perSpu.at(dev).avgWaitMs;
    return out;
}

} // namespace

int
main()
{
    printBanner("Disk contention: interactive build vs a 24 MB core "
                "dump on one disk");

    TextTable table({"disk policy", "build (s)", "build wait (ms)",
                     "dump (s)"});
    for (DiskPolicy p : {DiskPolicy::HeadPosition, DiskPolicy::BlindFair,
                         DiskPolicy::FairPosition}) {
        const Outcome o = run(p);
        table.addRow({diskPolicyName(p), TextTable::num(o.buildSec, 2),
                      TextTable::num(o.buildWaitMs, 1),
                      TextTable::num(o.dumpSec, 2)});
    }
    table.print();

    std::printf("\nUnder plain C-SCAN (Pos) the dump's contiguous "
                "stream parks the head and\nthe build's requests wait "
                "behind it. The fair policies bound the dump's\n"
                "bandwidth share; PIso additionally keeps C-SCAN "
                "efficiency inside the fair set.\n");
    return 0;
}
