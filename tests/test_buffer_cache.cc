/**
 * @file
 * Unit tests for buffer-cache bookkeeping.
 */

#include <gtest/gtest.h>

#include "src/os/buffer_cache.hh"

using namespace piso;

namespace {
const BlockKey kA{1, 0};
const BlockKey kB{1, 1};
const BlockKey kC{2, 0};
} // namespace

TEST(BufferCache, FindMissReturnsNull)
{
    BufferCache c;
    EXPECT_EQ(c.find(kA), nullptr);
    EXPECT_EQ(c.size(), 0u);
}

TEST(BufferCache, InsertAndFind)
{
    BufferCache c;
    c.insert(kA, 2, true);
    CacheBlock *blk = c.find(kA);
    ASSERT_NE(blk, nullptr);
    EXPECT_TRUE(blk->valid);
    EXPECT_FALSE(blk->dirty);
    EXPECT_EQ(blk->owner, 2);
    EXPECT_EQ(c.size(), 1u);
    EXPECT_EQ(c.pagesOf(2), 1u);
}

TEST(BufferCache, RemoveUncounts)
{
    BufferCache c;
    c.insert(kA, 2, true);
    c.remove(kA);
    EXPECT_EQ(c.find(kA), nullptr);
    EXPECT_EQ(c.size(), 0u);
    EXPECT_EQ(c.pagesOf(2), 0u);
}

TEST(BufferCache, DirtyCountTransitions)
{
    BufferCache c;
    CacheBlock &a = c.insert(kA, 2, true);
    CacheBlock &b = c.insert(kB, 2, true);
    c.markDirty(a);
    c.markDirty(a); // idempotent
    c.markDirty(b);
    EXPECT_EQ(c.dirtyCount(), 2u);
    c.markClean(a);
    EXPECT_EQ(c.dirtyCount(), 1u);
    c.markClean(a); // idempotent
    EXPECT_EQ(c.dirtyCount(), 1u);
}

TEST(BufferCache, RemoveDirtyAdjustsCount)
{
    BufferCache c;
    CacheBlock &a = c.insert(kA, 2, true);
    c.markDirty(a);
    c.remove(kA);
    EXPECT_EQ(c.dirtyCount(), 0u);
}

TEST(BufferCache, StealCleanPicksLru)
{
    BufferCache c;
    c.insert(kA, 2, true);
    c.insert(kB, 2, true);
    c.touch(*c.find(kA)); // A is now most recent; B is LRU
    SpuId owner = kNoSpu;
    EXPECT_TRUE(c.stealClean(2, owner));
    EXPECT_EQ(owner, 2);
    EXPECT_EQ(c.find(kB), nullptr); // B was stolen
    EXPECT_NE(c.find(kA), nullptr);
}

TEST(BufferCache, StealCleanSkipsDirtyAndFlushing)
{
    BufferCache c;
    CacheBlock &a = c.insert(kA, 2, true);
    CacheBlock &b = c.insert(kB, 2, true);
    c.markDirty(a);
    b.flushing = true;
    SpuId owner = kNoSpu;
    EXPECT_FALSE(c.stealClean(2, owner));
}

TEST(BufferCache, StealCleanSkipsInvalid)
{
    BufferCache c;
    c.insert(kA, 2, false); // in flight
    SpuId owner = kNoSpu;
    EXPECT_FALSE(c.stealClean(2, owner));
}

TEST(BufferCache, StealCleanRespectsVictimSpu)
{
    BufferCache c;
    c.insert(kA, 2, true);
    c.insert(kC, 3, true);
    SpuId owner = kNoSpu;
    EXPECT_TRUE(c.stealClean(3, owner));
    EXPECT_EQ(owner, 3);
    EXPECT_NE(c.find(kA), nullptr);
    EXPECT_EQ(c.find(kC), nullptr);
}

TEST(BufferCache, StealCleanAnySpu)
{
    BufferCache c;
    c.insert(kA, 2, true);
    SpuId owner = kNoSpu;
    EXPECT_TRUE(c.stealClean(kNoSpu, owner));
    EXPECT_EQ(owner, 2);
}

TEST(BufferCache, MarkValidRunsWaiters)
{
    BufferCache c;
    CacheBlock &a = c.insert(kA, 2, false);
    int woken = 0;
    a.waiters.push_back([&] { ++woken; });
    a.waiters.push_back([&] { ++woken; });
    c.markValid(a);
    EXPECT_EQ(woken, 2);
    EXPECT_TRUE(a.valid);
    EXPECT_TRUE(a.waiters.empty());
}

TEST(BufferCache, SetOwnerMovesPerSpuCounts)
{
    BufferCache c;
    CacheBlock &a = c.insert(kA, 2, true);
    c.setOwner(a, kSharedSpu);
    EXPECT_EQ(c.pagesOf(2), 0u);
    EXPECT_EQ(c.pagesOf(kSharedSpu), 1u);
    EXPECT_EQ(a.owner, kSharedSpu);
}

TEST(BufferCache, ForEachDirtyVisitsOnlyFlushable)
{
    BufferCache c;
    CacheBlock &a = c.insert(kA, 2, true);
    CacheBlock &b = c.insert(kB, 2, true);
    CacheBlock &x = c.insert(kC, 3, false);
    c.markDirty(a);
    c.markDirty(b);
    b.flushing = true;
    c.markDirty(x); // dirty but invalid: not flushable
    int visited = 0;
    c.forEachDirty([&](CacheBlock &blk) {
        ++visited;
        EXPECT_EQ(blk.key, kA);
    });
    EXPECT_EQ(visited, 1);
}

TEST(BufferCache, DuplicateInsertPanics)
{
    BufferCache c;
    c.insert(kA, 2, true);
    EXPECT_DEATH(c.insert(kA, 2, true), "duplicate");
}

TEST(BufferCache, RemoveWithWaitersPanics)
{
    BufferCache c;
    CacheBlock &a = c.insert(kA, 2, false);
    a.waiters.push_back([] {});
    EXPECT_DEATH(c.remove(kA), "waiters");
}
