/**
 * @file
 * Tests for the EventQueue's generation-counted slab.
 *
 * EventIds encode (slot, generation); slots are recycled after a
 * cancel or an execution, and the generation bump is what makes a
 * stale id — one whose slot has since been reused — harmless. These
 * tests pin that lifecycle (reuse, stale rejection, the executed-event
 * counter) and fuzz the whole thing against the same sorted-list model
 * test_event_queue_fuzz uses, with extra stale-id probing.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/sim/event_queue.hh"
#include "src/sim/random.hh"

using namespace piso;

namespace {

/** Slot and generation halves of an id (mirrors the queue's private
 *  encoding — this file deliberately tests that representation). */
std::uint32_t
slotOf(EventId id)
{
    return static_cast<std::uint32_t>(id & 0xffffffffull);
}

std::uint32_t
genOf(EventId id)
{
    return static_cast<std::uint32_t>(id >> 32);
}

} // namespace

// ---------------------------------------------------------------------
// Slot recycling and generation bumps
// ---------------------------------------------------------------------

TEST(EventQueueSlab, CancelRecyclesTheSlotWithANewGeneration)
{
    EventQueue q;
    const EventId a = q.schedule(1, [] {});
    ASSERT_NE(a, kNoEvent);
    EXPECT_TRUE(q.cancel(a));

    // A single-slot queue must hand the same slot back, under a newer
    // generation, so the stale id can never alias the new event.
    const EventId b = q.schedule(2, [] {});
    EXPECT_NE(b, a);
    EXPECT_EQ(slotOf(b), slotOf(a));
    EXPECT_GT(genOf(b), genOf(a));

    EXPECT_FALSE(q.pendingEvent(a));
    EXPECT_TRUE(q.pendingEvent(b));
}

TEST(EventQueueSlab, ExecutionRecyclesTheSlotWithANewGeneration)
{
    EventQueue q;
    int fired = 0;
    const EventId a = q.schedule(1, [&] { ++fired; });
    EXPECT_TRUE(q.runOne());
    EXPECT_EQ(fired, 1);

    const EventId b = q.schedule(2, [&] { ++fired; });
    EXPECT_EQ(slotOf(b), slotOf(a));
    EXPECT_GT(genOf(b), genOf(a));

    // The stale id is inert: not pending, and cancelling it neither
    // succeeds nor disturbs the live event in the reused slot.
    EXPECT_FALSE(q.pendingEvent(a));
    EXPECT_FALSE(q.cancel(a));
    EXPECT_TRUE(q.pendingEvent(b));
    EXPECT_EQ(q.pending(), 1u);

    EXPECT_TRUE(q.runOne());
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueSlab, StaleIdSurvivesManyReuses)
{
    // Recycle one slot through many generations; every retired id must
    // stay rejected even as the generation counter climbs.
    EventQueue q;
    std::vector<EventId> retired;
    EventId live = q.schedule(1, [] {});
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(q.cancel(live));
        retired.push_back(live);
        live = q.schedule(static_cast<Time>(i + 2), [] {});
        EXPECT_EQ(slotOf(live), slotOf(retired.front()));
        for (const EventId id : retired) {
            EXPECT_FALSE(q.pendingEvent(id));
            EXPECT_FALSE(q.cancel(id));
        }
        EXPECT_TRUE(q.pendingEvent(live));
    }
}

TEST(EventQueueSlab, IdsAreNeverNoEvent)
{
    // kNoEvent (0) is the sentinel; the encoding (slot+1 in the low
    // half) must keep every real id distinct from it, including the
    // very first slot.
    EventQueue q;
    for (int i = 0; i < 64; ++i)
        EXPECT_NE(q.schedule(1, [] {}), kNoEvent);
    EXPECT_FALSE(q.pendingEvent(kNoEvent));
    EXPECT_FALSE(q.cancel(kNoEvent));
}

// ---------------------------------------------------------------------
// executedEvents() counts executions, not schedules or cancels
// ---------------------------------------------------------------------

TEST(EventQueueSlab, ExecutedEventsCountsOnlyRunCallbacks)
{
    EventQueue q;
    EXPECT_EQ(q.executedEvents(), 0u);

    std::vector<EventId> ids;
    for (int i = 0; i < 10; ++i)
        ids.push_back(q.schedule(static_cast<Time>(i + 1), [] {}));
    EXPECT_EQ(q.executedEvents(), 0u);  // scheduling doesn't count

    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(q.cancel(ids[static_cast<std::size_t>(i)]));
    EXPECT_EQ(q.executedEvents(), 0u);  // neither does cancelling

    EXPECT_TRUE(q.runOne());
    EXPECT_EQ(q.executedEvents(), 1u);

    q.runAll();
    EXPECT_EQ(q.executedEvents(), 6u);  // 10 scheduled - 4 cancelled

    // The counter is cumulative across the queue's life.
    q.schedule(q.now() + 1, [] {});
    q.runAll();
    EXPECT_EQ(q.executedEvents(), 7u);
}

// ---------------------------------------------------------------------
// Fuzz parity with the reference model, plus stale-id probing
// ---------------------------------------------------------------------

namespace {

struct ModelEvent
{
    Time when;
    std::uint64_t order;
    EventId id;
    int payload;
};

} // namespace

TEST(EventQueueSlab, FuzzReuseParityWithModel)
{
    Rng rng(77);
    for (int trial = 0; trial < 20; ++trial) {
        EventQueue q;
        std::vector<ModelEvent> model;    // pending per the model
        std::vector<EventId> retired;     // cancelled or fired ids
        std::vector<int> fired;
        std::uint64_t order = 0;
        int nextPayload = 0;

        for (int op = 0; op < 400; ++op) {
            switch (rng.uniformInt(4)) {
            case 0:
            case 1: { // schedule onto a few timestamps (forces both
                      // slot reuse and equal-time FIFO collisions)
                const Time when =
                    q.now() + static_cast<Time>(rng.uniformInt(3));
                const int payload = nextPayload++;
                const EventId id = q.schedule(
                    when,
                    [payload, &fired] { fired.push_back(payload); },
                    "slab-fuzz");
                EXPECT_NE(id, kNoEvent);
                model.push_back({when, order++, id, payload});
                break;
            }
            case 2: { // cancel a pending event
                if (model.empty())
                    break;
                const std::size_t i = rng.uniformInt(model.size());
                EXPECT_TRUE(q.cancel(model[i].id));
                retired.push_back(model[i].id);
                model.erase(model.begin() +
                            static_cast<std::ptrdiff_t>(i));
                break;
            }
            default: { // runOne
                const bool hadWork = !model.empty();
                EXPECT_EQ(q.runOne(), hadWork);
                if (hadWork) {
                    const auto head = std::min_element(
                        model.begin(), model.end(),
                        [](const ModelEvent &a, const ModelEvent &b) {
                            if (a.when != b.when)
                                return a.when < b.when;
                            return a.order < b.order;
                        });
                    ASSERT_FALSE(fired.empty());
                    EXPECT_EQ(fired.back(), head->payload);
                    retired.push_back(head->id);
                    model.erase(head);
                }
                break;
            }
            }

            EXPECT_EQ(q.pending(), model.size());
            EXPECT_EQ(q.executedEvents(),
                      static_cast<std::uint64_t>(fired.size()));
            for (const ModelEvent &e : model)
                EXPECT_TRUE(q.pendingEvent(e.id));

            // Every retired id stays dead no matter how often its slot
            // has been recycled since (probe a random sample).
            for (int probe = 0; probe < 4 && !retired.empty(); ++probe) {
                const EventId id =
                    retired[rng.uniformInt(retired.size())];
                EXPECT_FALSE(q.pendingEvent(id));
                EXPECT_FALSE(q.cancel(id));
            }
        }

        // Drain and verify the tail order one last time.
        std::stable_sort(model.begin(), model.end(),
                         [](const ModelEvent &a, const ModelEvent &b) {
                             if (a.when != b.when)
                                 return a.when < b.when;
                             return a.order < b.order;
                         });
        const std::size_t firedBefore = fired.size();
        q.runAll();
        ASSERT_EQ(fired.size(), firedBefore + model.size());
        for (std::size_t i = 0; i < model.size(); ++i)
            EXPECT_EQ(fired[firedBefore + i], model[i].payload);
        EXPECT_TRUE(q.empty());
        EXPECT_EQ(q.executedEvents(),
                  static_cast<std::uint64_t>(fired.size()));
    }
}
