/**
 * @file
 * Tests for the Simulation facade: configuration, scheme wiring,
 * results plumbing, and error handling.
 */

#include <gtest/gtest.h>

#include "src/piso.hh"

using namespace piso;

namespace {

SystemConfig
base(Scheme scheme)
{
    SystemConfig cfg;
    cfg.cpus = 4;
    cfg.memoryBytes = 32 * kMiB;
    cfg.diskCount = 2;
    cfg.scheme = scheme;
    cfg.seed = 9;
    return cfg;
}

} // namespace

TEST(Simulation, RunsEmptyScheme)
{
    for (Scheme s : {Scheme::Smp, Scheme::Quota, Scheme::PIso}) {
        Simulation sim(base(s));
        const SpuId u = sim.addSpu({.name = "u"});
        sim.addJob(u, makeScriptJob("j", {ComputeAction{kMs}}));
        const SimResults r = sim.run();
        EXPECT_TRUE(r.completed) << schemeName(s);
        EXPECT_EQ(r.jobs.size(), 1u);
    }
}

TEST(Simulation, SchemeNamesMatchPaper)
{
    EXPECT_STREQ(schemeName(Scheme::Smp), "SMP");
    EXPECT_STREQ(schemeName(Scheme::Quota), "Quo");
    EXPECT_STREQ(schemeName(Scheme::PIso), "PIso");
    EXPECT_STREQ(diskPolicyName(DiskPolicy::HeadPosition), "Pos");
    EXPECT_STREQ(diskPolicyName(DiskPolicy::BlindFair), "Iso");
    EXPECT_STREQ(diskPolicyName(DiskPolicy::FairPosition), "PIso");
}

TEST(Simulation, QuotaPartitionsCpus)
{
    Simulation sim(base(Scheme::Quota));
    const SpuId a = sim.addSpu({.name = "a"});
    const SpuId b = sim.addSpu({.name = "b"});
    sim.addJob(a, makeScriptJob("j", {ComputeAction{kMs}}));
    sim.run();
    int forA = 0, forB = 0;
    for (int i = 0; i < 4; ++i) {
        forA += sim.scheduler().cpu(i).homeSpu == a;
        forB += sim.scheduler().cpu(i).homeSpu == b;
    }
    EXPECT_EQ(forA, 2);
    EXPECT_EQ(forB, 2);
}

TEST(Simulation, SmpLeavesCpusUnpartitioned)
{
    Simulation sim(base(Scheme::Smp));
    const SpuId a = sim.addSpu({.name = "a"});
    sim.addJob(a, makeScriptJob("j", {ComputeAction{kMs}}));
    sim.run();
    EXPECT_EQ(sim.scheduler().cpu(0).homeSpu, kNoSpu);
}

TEST(Simulation, PisoSetsMemoryLevels)
{
    Simulation sim(base(Scheme::PIso));
    const SpuId a = sim.addSpu({.name = "a"});
    const SpuId b = sim.addSpu({.name = "b"});
    sim.addJob(a, makeScriptJob("j", {ComputeAction{kMs}}));
    sim.run();
    EXPECT_GT(sim.vm().levels(a).entitled, 0u);
    EXPECT_EQ(sim.vm().levels(a).entitled, sim.vm().levels(b).entitled);
    EXPECT_GT(sim.vm().reservePages(), 0u);
}

TEST(Simulation, QuotaMemoryIsFixed)
{
    Simulation sim(base(Scheme::Quota));
    const SpuId a = sim.addSpu({.name = "a"});
    sim.addSpu({.name = "b"});
    sim.addJob(a, makeScriptJob("j", {ComputeAction{kMs}}));
    sim.run();
    const MemLevels &l = sim.vm().levels(a);
    EXPECT_EQ(l.allowed, l.entitled);
    EXPECT_LT(l.allowed, sim.vm().totalPages());
}

TEST(Simulation, SmpMemoryIsUnlimited)
{
    Simulation sim(base(Scheme::Smp));
    const SpuId a = sim.addSpu({.name = "a"});
    sim.addJob(a, makeScriptJob("j", {ComputeAction{kMs}}));
    sim.run();
    EXPECT_EQ(sim.vm().levels(a).allowed, sim.vm().totalPages());
}

TEST(Simulation, KernelMemoryPinnedAtBoot)
{
    SystemConfig cfg = base(Scheme::Smp);
    cfg.kernelResidentBytes = 4 * kMiB;
    Simulation sim(cfg);
    sim.addJob(sim.addSpu({.name = "a"}),
               makeScriptJob("j", {ComputeAction{kMs}}));
    sim.run();
    EXPECT_EQ(sim.vm().levels(kKernelSpu).used, 1024u);
}

TEST(Simulation, ResultsCarryPerSpuCpuTime)
{
    Simulation sim(base(Scheme::Smp));
    const SpuId a = sim.addSpu({.name = "a"});
    const SpuId b = sim.addSpu({.name = "b"});
    ComputeSpec spec;
    spec.totalCpu = 100 * kMs;
    sim.addJob(a, makeComputeJob("ja", spec));
    ComputeSpec spec2;
    spec2.totalCpu = 200 * kMs;
    sim.addJob(b, makeComputeJob("jb", spec2));
    const SimResults r = sim.run();
    // Compute time plus zero-fill fault service for the working set.
    EXPECT_NEAR(toSeconds(r.spus.at(a).cpuTime), 0.1, 0.03);
    EXPECT_NEAR(toSeconds(r.spus.at(b).cpuTime), 0.2, 0.03);
    EXPECT_GT(r.spus.at(b).cpuTime, r.spus.at(a).cpuTime);
}

TEST(Simulation, ResultsCarryDiskStats)
{
    Simulation sim(base(Scheme::Smp));
    const SpuId a = sim.addSpu({.name = "a", .homeDisk = 1});
    FileCopyConfig cc;
    cc.bytes = kMiB;
    sim.addJob(a, makeFileCopy("cp", cc));
    const SimResults r = sim.run();
    ASSERT_EQ(r.disks.size(), 2u);
    EXPECT_EQ(r.disks[0].requests, 0u);  // disk 0 untouched
    EXPECT_GT(r.disks[1].requests, 0u);
    EXPECT_GT(r.disks[1].perSpu.at(a).requests, 0u);
}

TEST(Simulation, MaxTimeStopsRunawayRuns)
{
    SystemConfig cfg = base(Scheme::Smp);
    cfg.maxTime = 100 * kMs;
    Simulation sim(cfg);
    sim.addJob(sim.addSpu({.name = "a"}),
               makeScriptJob("long", {ComputeAction{10 * kSec}}));
    const SimResults r = sim.run();
    EXPECT_FALSE(r.completed);
    EXPECT_LE(r.simulatedTime, 120 * kMs);
}

TEST(Simulation, MeanResponseHelpers)
{
    Simulation sim(base(Scheme::Smp));
    const SpuId a = sim.addSpu({.name = "a"});
    const SpuId b = sim.addSpu({.name = "b"});
    sim.addJob(a, makeScriptJob("pm1", {ComputeAction{100 * kMs}}));
    sim.addJob(b, makeScriptJob("pm2", {ComputeAction{300 * kMs}}));
    const SimResults r = sim.run();
    EXPECT_NEAR(r.meanResponseSec({a}), 0.1, 0.02);
    EXPECT_NEAR(r.meanResponseSec({a, b}), 0.2, 0.03);
    EXPECT_NEAR(r.meanResponseSecByPrefix("pm"), 0.2, 0.03);
    EXPECT_EQ(r.meanResponseSec({}), 0.0);
}

TEST(Simulation, ErrorsOnMisuse)
{
    Simulation sim(base(Scheme::Smp));
    EXPECT_THROW(sim.addJob(99, makeScriptJob("j", {})),
                 std::runtime_error);
    EXPECT_THROW(sim.addSpu({.name = "x", .homeDisk = 9}),
                 std::runtime_error);
    EXPECT_THROW(sim.run(), std::runtime_error); // no SPUs
}

TEST(Simulation, RunTwiceIsAnError)
{
    Simulation sim(base(Scheme::Smp));
    sim.addJob(sim.addSpu({.name = "a"}),
               makeScriptJob("j", {ComputeAction{kMs}}));
    sim.run();
    EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Simulation, DeterministicAcrossRuns)
{
    auto once = [] {
        SystemConfig cfg;
        cfg.cpus = 4;
        cfg.memoryBytes = 24 * kMiB;
        cfg.scheme = Scheme::PIso;
        cfg.seed = 77;
        Simulation sim(cfg);
        const SpuId a = sim.addSpu({.name = "a"});
        const SpuId b = sim.addSpu({.name = "b"});
        PmakeConfig pm;
        pm.parallelism = 2;
        pm.filesPerWorker = 4;
        sim.addJob(a, makePmake("pm", pm));
        ComputeSpec hog;
        hog.totalCpu = kSec;
        sim.addJob(b, makeComputeJob("hog", hog));
        return sim.run();
    };
    const SimResults r1 = once();
    const SimResults r2 = once();
    EXPECT_EQ(r1.job("pm").end, r2.job("pm").end);
    EXPECT_EQ(r1.job("hog").end, r2.job("hog").end);
    EXPECT_EQ(r1.disks[0].requests, r2.disks[0].requests);
}

TEST(Simulation, SeedChangesOutcomeDetails)
{
    auto withSeed = [](std::uint64_t seed) {
        SystemConfig cfg;
        cfg.cpus = 2;
        cfg.memoryBytes = 24 * kMiB;
        cfg.scheme = Scheme::Smp;
        cfg.seed = seed;
        Simulation sim(cfg);
        PmakeConfig pm;
        pm.parallelism = 2;
        pm.filesPerWorker = 4;
        sim.addJob(sim.addSpu({.name = "a"}), makePmake("pm", pm));
        return sim.run().job("pm").end;
    };
    EXPECT_NE(withSeed(1), withSeed(2));
}
