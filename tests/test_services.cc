/**
 * @file
 * Tests for the service-style workloads (OLTP database, web server)
 * and their behaviour under the three schemes.
 */

#include <gtest/gtest.h>

#include "src/piso.hh"

using namespace piso;

namespace {

SystemConfig
machine(Scheme scheme)
{
    SystemConfig cfg;
    cfg.cpus = 4;
    cfg.memoryBytes = 48 * kMiB;
    cfg.diskCount = 2;
    cfg.scheme = scheme;
    cfg.networkBitsPerSec = 100e6;
    cfg.seed = 31;
    return cfg;
}

} // namespace

TEST(Oltp, CompletesAndTouchesAllResources)
{
    Simulation sim(machine(Scheme::PIso));
    const SpuId db = sim.addSpu({.name = "db", .homeDisk = 0});
    OltpConfig oc;
    oc.servers = 2;
    oc.transactionsPerServer = 40;
    oc.indexLock = sim.kernel().createLock(true);
    sim.addJob(db, makeOltp("db", oc));
    const SimResults r = sim.run();
    ASSERT_TRUE(r.completed);
    // Random reads hit the disk; log appends are synchronous writes.
    EXPECT_GT(r.kernel.readRequests.value(), 20u);
    EXPECT_GT(r.kernel.syncWriteRequests.value(), 5u);
    EXPECT_GT(sim.kernel().locks().stats(oc.indexLock)
                  .acquisitions.value(),
              70u);
}

TEST(Oltp, LogAppendsAreSequential)
{
    // The log walks forward: its writes land in one contiguous
    // region, unlike the scattered table reads.
    Simulation sim(machine(Scheme::PIso));
    const SpuId db = sim.addSpu({.name = "db", .homeDisk = 0});
    OltpConfig oc;
    oc.servers = 1;
    oc.transactionsPerServer = 60;
    oc.updateFraction = 1.0; // every transaction appends
    sim.addJob(db, makeOltp("db", oc));
    const SimResults r = sim.run();
    ASSERT_TRUE(r.completed);
    EXPECT_GE(r.kernel.syncWriteRequests.value(), 30u);
}

TEST(Oltp, UpdateFractionScalesLogTraffic)
{
    auto syncWrites = [](double frac) {
        Simulation sim(machine(Scheme::PIso));
        const SpuId db = sim.addSpu({.name = "db", .homeDisk = 0});
        OltpConfig oc;
        oc.servers = 2;
        oc.transactionsPerServer = 50;
        oc.updateFraction = frac;
        sim.addJob(db, makeOltp("db", oc));
        return sim.run().kernel.syncWriteRequests.value();
    };
    EXPECT_EQ(syncWrites(0.0), 0u);
    EXPECT_GT(syncWrites(0.8), syncWrites(0.2));
}

TEST(Oltp, InvalidConfigRejected)
{
    EXPECT_THROW(makeOltp("bad", OltpConfig{.servers = 0}),
                 std::runtime_error);
    OltpConfig uf;
    uf.updateFraction = 1.5;
    EXPECT_THROW(makeOltp("bad", uf), std::runtime_error);
}

TEST(WebServer, CompletesAndUsesTheNetwork)
{
    Simulation sim(machine(Scheme::PIso));
    const SpuId web = sim.addSpu({.name = "web", .homeDisk = 1});
    WebServerConfig wc;
    wc.workers = 2;
    wc.requestsPerWorker = 50;
    sim.addJob(web, makeWebServer("web", wc));
    const SimResults r = sim.run();
    ASSERT_TRUE(r.completed);
    ASSERT_NE(sim.network(), nullptr);
    EXPECT_EQ(sim.network()->spuStats(web).messages.value(), 100u);
    EXPECT_EQ(sim.network()->spuStats(web).bytes.value(),
              100u * 16 * 1024);
}

TEST(WebServer, HotSetGetsCacheHits)
{
    Simulation sim(machine(Scheme::PIso));
    const SpuId web = sim.addSpu({.name = "web", .homeDisk = 1});
    WebServerConfig wc;
    wc.workers = 2;
    wc.requestsPerWorker = 150;
    wc.hotFraction = 0.95;
    sim.addJob(web, makeWebServer("web", wc));
    const SimResults r = sim.run();
    ASSERT_TRUE(r.completed);
    // The hot 10% of the docroot stays cached: hits dominate misses.
    EXPECT_GT(r.kernel.cacheHits.value(),
              2 * r.kernel.cacheMisses.value());
}

TEST(WebServer, WorksWithoutNetwork)
{
    SystemConfig cfg = machine(Scheme::PIso);
    cfg.networkBitsPerSec = 0.0;
    Simulation sim(cfg);
    const SpuId web = sim.addSpu({.name = "web", .homeDisk = 1});
    WebServerConfig wc;
    wc.workers = 1;
    wc.requestsPerWorker = 20;
    wc.responseBytes = 0; // no NIC: skip the send
    sim.addJob(web, makeWebServer("web", wc));
    EXPECT_TRUE(sim.run().completed);
}

TEST(Consolidation, DbFloodCannotBuryWebUnderPiso)
{
    // The consolidation story: a database batch job and an
    // interactive web server share one machine (separate disks). The
    // structural guarantee PIso adds over SMP's priority heuristics:
    // the web tier stays at its *solo* latency no matter what the
    // neighbour does. (The web workers block constantly on network
    // sends, so their CPUs are out on loan whenever a request
    // arrives — the IPI revocation model the paper recommends for
    // interactive response recovers them instantly.)
    auto webResponse = [](Scheme scheme, bool withDb) {
        SystemConfig cfg = machine(scheme);
        cfg.ipiRevocation = true;
        Simulation sim(cfg);
        const SpuId db = sim.addSpu({.name = "db", .homeDisk = 0});
        const SpuId web = sim.addSpu({.name = "web", .homeDisk = 1});
        if (withDb) {
            OltpConfig oc;
            oc.servers = 8; // oversubscribes db's 2 CPUs
            oc.transactionsPerServer = 60;
            oc.txnCpu = 20 * kMs;
            oc.tableBytes = 1024 * 1024; // cached: CPU-bound flood
            oc.updateFraction = 0.1;
            sim.addJob(db, makeOltp("db", oc));
        }
        WebServerConfig wc;
        wc.workers = 2;
        wc.requestsPerWorker = 100;
        wc.requestCpu = 2 * kMs;    // CPU-sensitive service tier
        wc.responseBytes = 4 * 1024;
        wc.documents = 30;          // docroot fully cached after warmup:
        wc.hotFraction = 1.0;       // latency is CPU + network only
        sim.addJob(web, makeWebServer("web", wc));
        return sim.run().job("web").responseSec();
    };
    const double pisoSolo = webResponse(Scheme::PIso, false);
    const double pisoLoaded = webResponse(Scheme::PIso, true);
    const double smpLoaded = webResponse(Scheme::Smp, true);
    // Isolation: the db flood costs the web tier almost nothing.
    EXPECT_LT(pisoLoaded, 1.25 * pisoSolo);
    // And PIso is no worse than SMP's priority-boost heuristics.
    EXPECT_LE(pisoLoaded, 1.02 * smpLoaded);
}
