/**
 * @file
 * Tests for the per-resource policy layer: the PolicyRegistry, the
 * SchemeProfile/Scheme equivalence, the ResourceLedger invariants, and
 * the `.piso` machine keys that feed them.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/config/workload_spec.hh"
#include "src/metrics/report.hh"
#include "src/piso.hh"

using namespace piso;

// ---------------------------------------------------------------- registry

TEST(PolicyRegistry, RoundTripsCanonicalNames)
{
    for (CpuPolicy p :
         {CpuPolicy::Smp, CpuPolicy::Quota, CpuPolicy::PIso})
        EXPECT_EQ(parseCpuPolicy(policyName(p)), p);
    for (MemoryPolicy p : {MemoryPolicy::Smp, MemoryPolicy::Quota,
                           MemoryPolicy::PIso})
        EXPECT_EQ(parseMemoryPolicy(policyName(p)), p);
    for (NetPolicy p :
         {NetPolicy::Smp, NetPolicy::Quota, NetPolicy::PIso})
        EXPECT_EQ(parseNetPolicy(policyName(p)), p);
    for (DiskPolicy p : {DiskPolicy::HeadPosition, DiskPolicy::BlindFair,
                         DiskPolicy::FairPosition,
                         DiskPolicy::SchemeDefault})
        EXPECT_EQ(parseDiskPolicy(policySpecName(p)), p);
}

TEST(PolicyRegistry, AcceptsAliases)
{
    EXPECT_EQ(parseCpuPolicy("quo"), CpuPolicy::Quota);
    EXPECT_EQ(parseMemoryPolicy("quo"), MemoryPolicy::Quota);
    EXPECT_EQ(parseNetPolicy("fifo"), NetPolicy::Smp);
    // Disk accepts the generic scheme spellings on top of §4.5 names.
    EXPECT_EQ(parseDiskPolicy("smp"), DiskPolicy::HeadPosition);
    EXPECT_EQ(parseDiskPolicy("quota"), DiskPolicy::BlindFair);
    EXPECT_EQ(parseDiskPolicy("piso"), DiskPolicy::FairPosition);
}

TEST(PolicyRegistry, RejectsUnknownNames)
{
    EXPECT_THROW(parseCpuPolicy("fair"), std::runtime_error);
    EXPECT_THROW(parseMemoryPolicy("POS"), std::runtime_error);
    EXPECT_THROW(parseDiskPolicy("cscan"), std::runtime_error);
    EXPECT_THROW(parseNetPolicy(""), std::runtime_error);
}

TEST(PolicyRegistry, ListsNamesForErrorMessages)
{
    const auto names =
        PolicyRegistry::instance().names(PolicyResource::Cpu);
    EXPECT_NE(std::find(names.begin(), names.end(), "smp"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "piso"),
              names.end());
}

// ---------------------------------------------------------------- profile

TEST(SchemeProfile, UniformMatchesTable2)
{
    const SchemeProfile smp = SchemeProfile::uniform(Scheme::Smp);
    EXPECT_EQ(smp.cpu, CpuPolicy::Smp);
    EXPECT_EQ(smp.memory, MemoryPolicy::Smp);
    EXPECT_EQ(smp.disk, DiskPolicy::HeadPosition);
    EXPECT_EQ(smp.net, NetPolicy::Smp);

    const SchemeProfile quo = SchemeProfile::uniform(Scheme::Quota);
    EXPECT_EQ(quo.cpu, CpuPolicy::Quota);
    EXPECT_EQ(quo.disk, DiskPolicy::BlindFair);

    const SchemeProfile piso = SchemeProfile::uniform(Scheme::PIso);
    EXPECT_EQ(piso.memory, MemoryPolicy::PIso);
    EXPECT_EQ(piso.disk, DiskPolicy::FairPosition);
}

TEST(SchemeProfile, UniformRoundTripsThroughAsUniform)
{
    for (Scheme s : {Scheme::Smp, Scheme::Quota, Scheme::PIso}) {
        const SchemeProfile p = SchemeProfile::uniform(s);
        ASSERT_TRUE(p.asUniform().has_value());
        EXPECT_EQ(*p.asUniform(), s);
        EXPECT_FALSE(p.mixed());
    }
}

TEST(SchemeProfile, MixedProfileIsNotUniform)
{
    SchemeProfile p = SchemeProfile::uniform(Scheme::PIso);
    p.memory = MemoryPolicy::Quota;
    EXPECT_FALSE(p.asUniform().has_value());
    EXPECT_TRUE(p.mixed());
    EXPECT_EQ(p.str(),
              "cpu=piso memory=quota disk_policy=piso network=piso");
}

TEST(SchemeProfile, ConfigResolvesSchemeAndOverrides)
{
    SystemConfig cfg;
    cfg.scheme = Scheme::Quota;
    EXPECT_EQ(cfg.resolvedProfile(),
              SchemeProfile::uniform(Scheme::Quota));

    cfg.memoryPolicy = MemoryPolicy::PIso;
    cfg.diskPolicy = DiskPolicy::HeadPosition;
    const SchemeProfile p = cfg.resolvedProfile();
    EXPECT_EQ(p.cpu, CpuPolicy::Quota);
    EXPECT_EQ(p.memory, MemoryPolicy::PIso);
    EXPECT_EQ(p.disk, DiskPolicy::HeadPosition);
    EXPECT_TRUE(p.mixed());

    SystemConfig viaProfile;
    viaProfile.setProfile(p);
    EXPECT_EQ(viaProfile.resolvedProfile(), p);
}

// The scheme= path and the setProfile(uniform(scheme)) path must drive
// the simulation identically: same seed, same report, byte for byte.
TEST(SchemeProfile, UniformProfileReproducesSchemeRun)
{
    const char *kSpec = R"(
machine cpus=2 memory_mb=16 disks=1 seed=11 max_time_s=20
spu a share=1
spu b share=2
job a pmake name=build workers=2 files=3
job b copy name=cp bytes_kb=512
)";
    for (Scheme s : {Scheme::Smp, Scheme::Quota, Scheme::PIso}) {
        WorkloadSpec bySchemeField = parseWorkloadSpec(kSpec);
        bySchemeField.config.scheme = s;
        WorkloadSpec byProfile = parseWorkloadSpec(kSpec);
        byProfile.config.setProfile(SchemeProfile::uniform(s));
        EXPECT_EQ(formatResults(runWorkloadSpec(bySchemeField)),
                  formatResults(runWorkloadSpec(byProfile)))
            << "scheme " << schemeName(s);
    }
}

// ----------------------------------------------------------------- ledger

TEST(ResourceLedger, TryUseNeverExceedsAllowed)
{
    ResourceLedger l("test");
    l.registerSpu(2);
    l.setAllowed(2, 3);
    int charged = 0;
    for (int i = 0; i < 10; ++i)
        charged += l.tryUse(2) ? 1 : 0;
    EXPECT_EQ(charged, 3);
    EXPECT_EQ(l.levels(2).used, 3u);
    EXPECT_TRUE(l.atLimit(2));
    l.release(2);
    EXPECT_FALSE(l.atLimit(2));
    EXPECT_TRUE(l.tryUse(2));
}

TEST(ResourceLedger, TransferConservesUsedTotal)
{
    ResourceLedger l("test");
    l.setShare(2, 1.0);
    l.setShare(3, 1.0);
    l.setAllowed(2, 8);
    l.use(2, 5);
    l.transfer(2, 3, 2);
    EXPECT_EQ(l.levels(2).used, 3u);
    EXPECT_EQ(l.levels(3).used, 2u);
    EXPECT_EQ(l.usedTotal(), 5u);
}

TEST(ResourceLedger, EntitledFloorMatchesTruncation)
{
    EXPECT_EQ(ResourceLedger::entitledFloor(0.5, 101), 50u);
    EXPECT_EQ(ResourceLedger::entitledFloor(1.0 / 3.0, 100), 33u);
    EXPECT_EQ(ResourceLedger::entitledFloor(0.0, 100), 0u);
    EXPECT_EQ(ResourceLedger::entitledFloor(1.0, 100), 100u);
}

TEST(ResourceLedger, EntitleByShareSumsExactlyToDivisible)
{
    ResourceLedger l("test");
    l.setShare(2, 1.0);
    l.setShare(3, 1.0);
    l.setShare(4, 1.0);
    l.entitleByShare(100); // 100/3 does not divide evenly
    EXPECT_EQ(l.entitledTotal(), 100u);
    // Floor gives 33 each; the 1-unit residue goes to the lowest id.
    EXPECT_EQ(l.levels(2).entitled, 34u);
    EXPECT_EQ(l.levels(3).entitled, 33u);
    EXPECT_EQ(l.levels(4).entitled, 33u);

    // Rebalance after a share change: the sum invariant must hold for
    // any divisible and any share mix, zero shares getting nothing.
    l.setShare(3, 5.0);
    l.setShare(4, 0.0);
    for (std::uint64_t divisible : {0u, 1u, 7u, 100u, 4096u}) {
        l.entitleByShare(divisible);
        EXPECT_EQ(l.entitledTotal(), divisible);
        EXPECT_EQ(l.levels(4).entitled, 0u);
    }
}

TEST(ResourceLedger, ReleaseBelowZeroPanics)
{
    ResourceLedger l("test");
    l.registerSpu(2);
    EXPECT_DEATH(l.release(2), "zero used");
}

// ------------------------------------------------------------ spec keys

TEST(ProfileSpecKeys, MachineLineSetsPerResourcePolicies)
{
    const WorkloadSpec s = parseWorkloadSpec(R"(
machine cpus=2 memory_mb=16 scheme=piso cpu=smp memory=quota network=fifo disk_policy=iso
spu u
job u compute cpu_ms=1
)");
    const SchemeProfile p = s.config.resolvedProfile();
    EXPECT_EQ(p.cpu, CpuPolicy::Smp);
    EXPECT_EQ(p.memory, MemoryPolicy::Quota);
    EXPECT_EQ(p.disk, DiskPolicy::BlindFair);
    EXPECT_EQ(p.net, NetPolicy::Smp);
    EXPECT_TRUE(p.mixed());
}

TEST(ProfileSpecKeys, SchemeStillSetsAllFour)
{
    const WorkloadSpec s = parseWorkloadSpec(
        "machine scheme=quota\nspu u\njob u compute cpu_ms=1\n");
    EXPECT_EQ(s.config.resolvedProfile(),
              SchemeProfile::uniform(Scheme::Quota));
}

TEST(ProfileSpecKeys, UnknownPolicyNamesAreErrors)
{
    EXPECT_THROW(parseWorkloadSpec(
                     "machine cpu=bogus\nspu u\njob u compute\n"),
                 std::runtime_error);
    EXPECT_THROW(parseWorkloadSpec(
                     "machine memory=pos\nspu u\njob u compute\n"),
                 std::runtime_error);
    EXPECT_THROW(parseWorkloadSpec(
                     "machine network=cscan\nspu u\njob u compute\n"),
                 std::runtime_error);
    EXPECT_THROW(parseWorkloadSpec(
                     "machine disk_policy=nope\nspu u\njob u compute\n"),
                 std::runtime_error);
    // Error text names the offending line and the valid spellings.
    try {
        parseWorkloadSpec("machine cpu=bogus\nspu u\njob u compute\n");
        FAIL() << "expected parse failure";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("line 1"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("smp|quota|quo|piso"),
                  std::string::npos);
    }
}
