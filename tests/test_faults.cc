/**
 * @file
 * Fault injection and degraded-mode operation: deterministic replay,
 * bounded retry/backoff, graceful rebalance when hardware goes away,
 * and clean termination on permanent failures.
 */

#include <gtest/gtest.h>

#include "src/config/workload_spec.hh"
#include "src/piso.hh"

using namespace piso;

namespace {

/** Job of one process that reads @p reads blocks of @p bytes from a
 *  fresh file on the SPU's home disk. */
JobSpec
makeReadJob(std::string name, int reads, std::uint64_t bytes)
{
    JobSpec j;
    j.name = name;
    j.build = [name, reads, bytes](Kernel &, WorkloadEnv &env) {
        const FileId f =
            env.fs.createFile(name + ".dat", env.disk, reads * bytes);
        std::vector<Action> script;
        for (int i = 0; i < reads; ++i)
            script.push_back(ReadAction{f, i * bytes, bytes});
        std::vector<ProcessSpec> procs;
        procs.push_back(ProcessSpec{
            name, std::make_unique<ScriptBehavior>(std::move(script))});
        return procs;
    };
    return j;
}

SystemConfig
base(Scheme scheme)
{
    SystemConfig cfg;
    cfg.cpus = 4;
    cfg.memoryBytes = 32 * kMiB;
    cfg.diskCount = 2;
    cfg.scheme = scheme;
    cfg.seed = 11;
    return cfg;
}

} // namespace

TEST(Faults, RetryBackoffBoundedAndMonotone)
{
    const Time base = 20 * kMs;
    EXPECT_EQ(Kernel::retryBackoff(base, 1), base);
    EXPECT_EQ(Kernel::retryBackoff(base, 2), 2 * base);
    EXPECT_EQ(Kernel::retryBackoff(base, 3), 4 * base);
    Time prev = 0;
    for (int attempt = 1; attempt < 80; ++attempt) {
        const Time b = Kernel::retryBackoff(base, attempt);
        EXPECT_GE(b, prev) << "attempt " << attempt;
        prev = b;
    }
    // The shift is clamped: huge attempt counts neither overflow nor
    // grow past the cap.
    EXPECT_EQ(Kernel::retryBackoff(base, 21), Kernel::retryBackoff(base, 99));
}

TEST(Faults, RetryBackoffClampsInsteadOfOverflowing)
{
    // A large configured base used to overflow Time once the shifted
    // value wrapped; every (base, attempt) combination must now
    // saturate at the one-minute cap instead.
    const Time cap = 60 * kSec;
    const Time huge = kTimeNever / 2;
    for (int attempt = 1; attempt < 100; ++attempt) {
        EXPECT_EQ(Kernel::retryBackoff(huge, attempt), cap)
            << "attempt " << attempt;
    }
    EXPECT_EQ(Kernel::retryBackoff(30 * kSec, 2), cap);
    EXPECT_EQ(Kernel::retryBackoff(45 * kSec, 2), cap);
    EXPECT_EQ(Kernel::retryBackoff(0, 5), 0u);

    // The shared helper honors arbitrary caps and degenerate inputs.
    EXPECT_EQ(retryBackoffClamped(kMs, 4, 5 * kMs), 5 * kMs);
    EXPECT_EQ(retryBackoffClamped(kMs, 3, 5 * kMs), 4 * kMs);
    EXPECT_EQ(retryBackoffClamped(kMs, -7, 5 * kMs), kMs);
    EXPECT_EQ(retryBackoffClamped(kMs, 1000000, kSec), kSec);
    EXPECT_EQ(retryBackoffClamped(kMs, 3, 0), 0u);
}

TEST(Faults, TransientErrorsAreRetriedToCompletion)
{
    SystemConfig cfg = base(Scheme::PIso);
    // Every request issued in the first 50 ms fails; the retry
    // backoff (20/40/80 ms) carries the read past the window.
    cfg.faults.diskError(0, /*disk=*/0, /*duration=*/50 * kMs,
                         /*rate=*/1.0);
    Simulation sim(cfg);
    const SpuId u = sim.addSpu({.name = "u", .homeDisk = 0});
    sim.addJob(u, makeReadJob("rd", 4, 16 * 1024));
    const SimResults r = sim.run();

    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.job("rd").completed);
    EXPECT_FALSE(r.job("rd").failed);
    EXPECT_GT(r.spus.at(u).ioRetries, 0u);
    EXPECT_EQ(r.spus.at(u).failedOps, 0u);
    EXPECT_GT(r.kernel.diskErrors.value(), 0u);
}

TEST(Faults, RetriesNeverExceedTheCap)
{
    SystemConfig cfg = base(Scheme::PIso);
    // Permanent 100% error rate: every I/O exhausts its retries.
    cfg.faults.diskError(0, /*disk=*/0, /*duration=*/0, /*rate=*/1.0);
    Simulation sim(cfg);
    const SpuId u = sim.addSpu({.name = "u", .homeDisk = 0});
    sim.addJob(u, makeReadJob("rd", 2, 4096));
    const SimResults r = sim.run();

    const SpuResult &s = r.spus.at(u);
    EXPECT_GE(s.failedOps, 1u);
    // Each abandoned I/O was reissued exactly ioRetryLimit times.
    EXPECT_EQ(s.ioRetries,
              s.failedOps *
                  static_cast<std::uint64_t>(cfg.kernel.ioRetryLimit));
    EXPECT_TRUE(r.job("rd").failed);
    EXPECT_TRUE(r.completed);  // failed, but finished well before maxTime
    EXPECT_LT(r.simulatedTime, 10 * kSec);
}

TEST(Faults, DiskDeathTerminatesCleanly)
{
    SystemConfig cfg = base(Scheme::PIso);
    cfg.faults.diskDead(100 * kMs, /*disk=*/0);
    Simulation sim(cfg);
    const SpuId u = sim.addSpu({.name = "u", .homeDisk = 0});
    FileCopyConfig cc;
    cc.bytes = 8 * kMiB;
    sim.addJob(u, makeFileCopy("cp", cc));
    const SimResults r = sim.run();

    // The job is reported failed rather than hanging until maxTime.
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.job("cp").failed);
    EXPECT_LT(r.simulatedTime, 60 * kSec);
    EXPECT_GE(r.spus.at(u).failedOps, 1u);
}

TEST(Faults, CpuOfflineRebalancesThePartition)
{
    SystemConfig cfg = base(Scheme::Quota);
    cfg.faults.cpuOffline(500 * kMs, /*count=*/2);
    Simulation sim(cfg);
    const SpuId a = sim.addSpu({.name = "a"});
    const SpuId b = sim.addSpu({.name = "b"});
    ComputeSpec spec;
    spec.totalCpu = 2 * kSec;
    sim.addJob(a, makeComputeJob("ja", spec));
    sim.addJob(b, makeComputeJob("jb", spec));
    const SimResults r = sim.run();

    EXPECT_TRUE(r.completed);
    EXPECT_EQ(sim.scheduler().onlineCpus(), 2);
    // Equal shares over the remaining capacity: one online home each.
    int forA = 0, forB = 0;
    for (int i = 0; i < cfg.cpus; ++i) {
        const Cpu &c = sim.scheduler().cpu(i);
        if (!c.online) {
            EXPECT_EQ(c.homeSpu, kNoSpu);
            continue;
        }
        forA += c.homeSpu == a;
        forB += c.homeSpu == b;
    }
    EXPECT_EQ(forA, 1);
    EXPECT_EQ(forB, 1);
}

TEST(Faults, MemShrinkRecomputesEntitlements)
{
    SystemConfig cfg = base(Scheme::PIso);
    const std::uint64_t shrink = 2048;
    cfg.faults.memShrink(200 * kMs, shrink);
    Simulation sim(cfg);
    const SpuId a = sim.addSpu({.name = "a"});
    sim.addSpu({.name = "b"});
    ComputeSpec spec;
    spec.totalCpu = kSec;
    sim.addJob(a, makeComputeJob("j", spec));

    const std::uint64_t before = sim.vm().totalPages();
    const SimResults r = sim.run();

    EXPECT_TRUE(r.completed);
    EXPECT_EQ(sim.vm().totalPages(), before - shrink);
    // Entitlements were recomputed over the degraded pool.
    EXPECT_LT(sim.vm().levels(a).entitled, sim.vm().totalPages());
    EXPECT_GT(sim.vm().levels(a).entitled, 0u);
}

TEST(Faults, IdenticalSeedAndPlanReplayByteIdentical)
{
    const std::string spec =
        "machine cpus=2 memory_mb=24 disks=1 scheme=piso seed=42\n"
        "spu victim share=1 disk=0\n"
        "spu noisy  share=1 disk=0\n"
        "job victim copy name=v bytes_kb=2048\n"
        "job noisy  copy name=n bytes_kb=4096\n"
        "[faults]\n"
        "disk_error at_s=0.1 for_s=0.2 disk=0 rate=0.5\n"
        "disk_slow  at_s=0.5 for_s=1 disk=0 factor=3\n";
    const SimResults r1 = runWorkloadSpec(parseWorkloadSpec(spec));
    const SimResults r2 = runWorkloadSpec(parseWorkloadSpec(spec));
    EXPECT_EQ(formatResultsJson(r1), formatResultsJson(r2));
    EXPECT_EQ(formatResults(r1), formatResults(r2));
}

TEST(Faults, SpecSectionParsesEveryKind)
{
    const std::string text =
        "machine cpus=4 memory_mb=32 disks=2\n"
        "spu u share=1\n"
        "job u compute name=j cpu_ms=100\n"
        "[faults]\n"
        "disk_slow  at_s=2 for_s=4 disk=0 factor=4\n"
        "disk_error at_s=1 for_s=1 disk=1 rate=0.5\n"
        "disk_dead  at_s=8 disk=1\n"
        "cpu_offline at_s=3 count=2\n"
        "cpu_online  at_s=6 count=2\n"
        "mem_shrink at_s=2 mb=8\n"
        "mem_grow   at_s=5 mb=8\n";
    const WorkloadSpec spec = parseWorkloadSpec(text);
    const auto &evs = spec.config.faults.events();
    ASSERT_EQ(evs.size(), 7u);
    EXPECT_EQ(evs[0].kind, FaultKind::DiskSlow);
    EXPECT_EQ(evs[0].at, 2 * kSec);
    EXPECT_EQ(evs[0].duration, 4 * kSec);
    EXPECT_EQ(evs[0].factor, 4.0);
    EXPECT_EQ(evs[1].kind, FaultKind::DiskError);
    EXPECT_EQ(evs[1].disk, 1);
    EXPECT_EQ(evs[1].rate, 0.5);
    EXPECT_EQ(evs[2].kind, FaultKind::DiskDead);
    EXPECT_EQ(evs[3].kind, FaultKind::CpuOffline);
    EXPECT_EQ(evs[3].cpus, 2);
    EXPECT_EQ(evs[4].kind, FaultKind::CpuOnline);
    EXPECT_EQ(evs[5].kind, FaultKind::MemShrink);
    EXPECT_EQ(evs[5].pages, 8 * kMiB / 4096);
    EXPECT_EQ(evs[6].kind, FaultKind::MemGrow);
    EXPECT_EQ(spec.config.faults.maxDiskIndex(), 1);
}

TEST(Faults, SpecSectionRejectsNonsense)
{
    const std::string head =
        "machine cpus=2 memory_mb=16\n"
        "spu u\n"
        "job u compute name=j cpu_ms=10\n"
        "[faults]\n";
    EXPECT_THROW(parseWorkloadSpec(head + "disk_melt at_s=1\n"),
                 std::runtime_error);
    EXPECT_THROW(parseWorkloadSpec(head + "disk_slow factor=2\n"),
                 std::runtime_error);  // missing at_s
    EXPECT_THROW(parseWorkloadSpec(head + "disk_slow at_s=1 factor=0.5\n"),
                 std::runtime_error);
    EXPECT_THROW(parseWorkloadSpec(head + "disk_error at_s=1 rate=1.5\n"),
                 std::runtime_error);
    EXPECT_THROW(parseWorkloadSpec(head + "mem_shrink at_s=1\n"),
                 std::runtime_error);  // missing mb
    EXPECT_THROW(parseWorkloadSpec(head + "disk_slow at_s=1 typo=3\n"),
                 std::runtime_error);
}

TEST(Faults, PlanValidatesAndReferencingMissingDiskIsFatal)
{
    FaultPlan bad;
    EXPECT_THROW(bad.diskSlow(0, 0, 0, 0.5), std::runtime_error);
    EXPECT_THROW(bad.diskError(0, 0, 0, 1.5), std::runtime_error);
    EXPECT_THROW(bad.diskDead(0, -1), std::runtime_error);

    SystemConfig cfg = base(Scheme::Smp);
    cfg.diskCount = 1;
    cfg.faults.diskDead(kSec, /*disk=*/3);  // machine has one disk
    Simulation sim(cfg);
    sim.addJob(sim.addSpu({.name = "u"}),
               makeScriptJob("j", {ComputeAction{kMs}}));
    EXPECT_THROW(sim.run(), std::runtime_error);
}
