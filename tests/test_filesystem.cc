/**
 * @file
 * Unit tests for the extent-based file system layout.
 */

#include <gtest/gtest.h>

#include "src/os/filesystem.hh"

using namespace piso;

namespace {

FileSystem
makeFs()
{
    FileSystem fs;
    fs.addDisk(0, 2000000);
    return fs;
}

} // namespace

TEST(FileSystem, BlockGeometry)
{
    FileSystem fs;
    EXPECT_EQ(fs.blockBytes(), 4096u);
    EXPECT_EQ(fs.sectorsPerBlock(), 8u);
}

TEST(FileSystem, CreateFileRecordsSize)
{
    FileSystem fs = makeFs();
    const FileId id = fs.createFile("a", 0, 10000);
    const FileInfo &f = fs.file(id);
    EXPECT_EQ(f.bytes, 10000u);
    EXPECT_EQ(f.sectors, 3u * 8u); // 3 blocks
    EXPECT_EQ(f.disk, 0);
}

TEST(FileSystem, SequentialFilesAreAdjacent)
{
    FileSystem fs = makeFs();
    const FileId a = fs.createFile("a", 0, 4096);
    const FileId b = fs.createFile("b", 0, 4096);
    EXPECT_EQ(fs.file(b).startSector,
              fs.file(a).startSector + fs.file(a).sectors);
}

TEST(FileSystem, ScatteredFilesSpread)
{
    FileSystem fs = makeFs();
    std::vector<std::uint64_t> starts;
    for (int i = 0; i < 20; ++i) {
        const FileId id =
            fs.createFile("s" + std::to_string(i), 0, 4096,
                          FilePlacement::Scattered);
        starts.push_back(fs.file(id).startSector);
    }
    // The spread of scattered starts should cover a large span.
    const auto [mn, mx] = std::minmax_element(starts.begin(), starts.end());
    EXPECT_GT(*mx - *mn, 100000u);
}

TEST(FileSystem, ZeroByteFileStillGetsABlock)
{
    FileSystem fs = makeFs();
    const FileId id = fs.createFile("z", 0, 0);
    EXPECT_EQ(fs.file(id).sectors, 8u);
}

TEST(FileSystem, MetadataSectorInFrontZone)
{
    FileSystem fs = makeFs();
    const FileId a = fs.createFile("a", 0, 4096);
    const FileId b = fs.createFile("b", 0, 4096);
    EXPECT_LT(fs.file(a).metadataSector, 2000000u / 512 + 64);
    EXPECT_NE(fs.file(a).metadataSector, fs.file(b).metadataSector);
    // Data extents start past the metadata zone.
    EXPECT_GE(fs.file(a).startSector, fs.file(a).metadataSector);
}

TEST(FileSystem, BlockSectorMapsThroughExtent)
{
    FileSystem fs = makeFs();
    const FileId id = fs.createFile("a", 0, 5 * 4096);
    const FileInfo &f = fs.file(id);
    EXPECT_EQ(fs.blockSector(id, 0), f.startSector);
    EXPECT_EQ(fs.blockSector(id, 4), f.startSector + 32);
}

TEST(FileSystem, BlockCountSpansPartialBlocks)
{
    FileSystem fs = makeFs();
    const FileId id = fs.createFile("a", 0, 10 * 4096);
    EXPECT_EQ(fs.blockCount(id, 0, 4096), 1u);
    EXPECT_EQ(fs.blockCount(id, 0, 4097), 2u);
    EXPECT_EQ(fs.blockCount(id, 4095, 2), 2u); // straddles boundary
    EXPECT_EQ(fs.blockCount(id, 8192, 0), 0u);
}

TEST(FileSystem, CreateExtentHasNoMetadataChurn)
{
    FileSystem fs = makeFs();
    const FileId swap = fs.createExtent("swap", 0, 1 << 20);
    EXPECT_EQ(fs.file(swap).sectors, (1u << 20) / 512);
}

TEST(FileSystem, FreeSectorsDecrease)
{
    FileSystem fs = makeFs();
    const std::uint64_t before = fs.freeSectors(0);
    fs.createFile("a", 0, 1 << 20);
    EXPECT_EQ(fs.freeSectors(0), before - (1u << 20) / 512);
}

TEST(FileSystem, MultipleDisksIndependent)
{
    FileSystem fs;
    fs.addDisk(0, 1000000);
    fs.addDisk(1, 1000000);
    const FileId a = fs.createFile("a", 0, 4096);
    const FileId b = fs.createFile("b", 1, 4096);
    EXPECT_EQ(fs.file(a).disk, 0);
    EXPECT_EQ(fs.file(b).disk, 1);
    EXPECT_EQ(fs.file(a).startSector, fs.file(b).startSector);
}

TEST(FileSystem, ErrorsOnUnknownDiskOrFile)
{
    FileSystem fs = makeFs();
    EXPECT_THROW(fs.createFile("x", 9, 4096), std::runtime_error);
    EXPECT_THROW(fs.freeSectors(7), std::runtime_error);
    EXPECT_DEATH(fs.file(1234), "unknown file");
}

TEST(FileSystem, DiskFullIsFatal)
{
    FileSystem fs;
    fs.addDisk(0, 1024);
    EXPECT_THROW(fs.createFile("big", 0, 10 << 20), std::runtime_error);
}

TEST(FileSystem, AccessBeyondFilePanics)
{
    FileSystem fs = makeFs();
    const FileId id = fs.createFile("a", 0, 4096);
    EXPECT_DEATH(fs.blockCount(id, 0, 2 * 4096 + 1), "beyond");
    EXPECT_DEATH(fs.blockSector(id, 5), "beyond");
}

TEST(FileSystem, DuplicateDiskRejected)
{
    FileSystem fs = makeFs();
    EXPECT_THROW(fs.addDisk(0, 100), std::runtime_error);
}
