/**
 * @file
 * Unit tests for the discrete-event engine.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.hh"

using namespace piso;

TEST(EventQueue, StartsEmptyAtTimeZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_FALSE(q.runOne());
    EXPECT_EQ(q.nextEventTime(), kTimeNever);
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTimeEventsFireInScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.runAll();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NowAdvancesToFiringTime)
{
    EventQueue q;
    Time seen = 0;
    q.schedule(123, [&] { seen = q.now(); });
    q.runAll();
    EXPECT_EQ(seen, 123u);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue q;
    Time seen = 0;
    q.schedule(100, [&] {
        q.scheduleAfter(50, [&] { seen = q.now(); });
    });
    q.runAll();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    EventId id = q.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    q.runAll();
    EXPECT_FALSE(ran);
    EXPECT_EQ(q.now(), 0u); // cancelled events do not advance time
}

TEST(EventQueue, CancelIsIdempotent)
{
    EventQueue q;
    EventId id = q.schedule(10, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
    EXPECT_FALSE(q.cancel(kNoEvent));
}

TEST(EventQueue, CancelAfterFiringReturnsFalse)
{
    EventQueue q;
    EventId id = q.schedule(10, [] {});
    q.runAll();
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, PendingTracksLiveEvents)
{
    EventQueue q;
    EventId a = q.schedule(10, [] {});
    q.schedule(20, [] {});
    EXPECT_EQ(q.pending(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_TRUE(q.runOne());
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, PendingEventQuery)
{
    EventQueue q;
    EventId id = q.schedule(10, [] {});
    EXPECT_TRUE(q.pendingEvent(id));
    q.runAll();
    EXPECT_FALSE(q.pendingEvent(id));
    EXPECT_FALSE(q.pendingEvent(kNoEvent));
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue q;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5)
            q.scheduleAfter(10, chain);
    };
    q.schedule(0, chain);
    q.runAll();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(q.now(), 40u);
}

TEST(EventQueue, CallbackMayCancelSiblingAtSameTime)
{
    EventQueue q;
    bool second = false;
    EventId sibling = kNoEvent;
    q.schedule(10, [&] { q.cancel(sibling); });
    sibling = q.schedule(10, [&] { second = true; });
    q.runAll();
    EXPECT_FALSE(second);
}

TEST(EventQueue, RunAllHonoursLimit)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    q.schedule(30, [&] { ++fired; });
    EXPECT_EQ(q.runAll(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 20u);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, NextEventTimeSkipsCancelled)
{
    EventQueue q;
    EventId a = q.schedule(10, [] {});
    q.schedule(20, [] {});
    q.cancel(a);
    EXPECT_EQ(q.nextEventTime(), 20u);
}

TEST(EventQueue, SchedulingAtNowIsAllowed)
{
    EventQueue q;
    bool ran = false;
    q.schedule(10, [&] { q.schedule(q.now(), [&] { ran = true; }); });
    q.runAll();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue q;
    Time last = 0;
    bool monotonic = true;
    for (int i = 0; i < 5000; ++i) {
        const Time when = static_cast<Time>((i * 7919) % 1000);
        q.schedule(when, [&, when] {
            monotonic = monotonic && when >= last;
            last = when;
        });
    }
    q.runAll();
    EXPECT_TRUE(monotonic);
}
