/**
 * @file
 * Unit tests for the baseline SMP (global-queue) scheduler.
 */

#include <gtest/gtest.h>

#include "src/os/sched_smp.hh"
#include "tests/sched_test_util.hh"

using namespace piso;
using piso::test::FakeClient;

namespace {

struct SmpFixture : public ::testing::Test
{
    EventQueue events;
    SmpScheduler sched{events, 2};
    FakeClient client{events, sched};
};

} // namespace

TEST_F(SmpFixture, ReadyProcessDispatchesImmediately)
{
    sched.start();
    Process *p = client.createProcess(2, 100 * kMs);
    client.startProcess(p);
    EXPECT_EQ(p->state(), ProcState::Running);
    EXPECT_NE(p->runningOn, kNoCpu);
}

TEST_F(SmpFixture, TwoProcessesUseTwoCpus)
{
    sched.start();
    Process *a = client.createProcess(2, 100 * kMs);
    Process *b = client.createProcess(3, 100 * kMs);
    client.startProcess(a);
    client.startProcess(b);
    EXPECT_EQ(a->state(), ProcState::Running);
    EXPECT_EQ(b->state(), ProcState::Running);
    EXPECT_NE(a->runningOn, b->runningOn);
}

TEST_F(SmpFixture, ThirdProcessQueues)
{
    sched.start();
    for (int i = 0; i < 3; ++i)
        client.startProcess(client.createProcess(2, 100 * kMs));
    EXPECT_EQ(sched.readyCount(), 1u);
}

TEST_F(SmpFixture, CompletionRunsQueuedProcess)
{
    sched.start();
    Process *a = client.createProcess(2, 50 * kMs);
    Process *b = client.createProcess(2, 50 * kMs);
    Process *c = client.createProcess(2, 50 * kMs);
    for (Process *p : {a, b, c})
        client.startProcess(p);
    client.runToCompletion();
    EXPECT_EQ(c->state(), ProcState::Exited);
    // Two CPUs, 150 ms of work: perfect packing finishes at 75 ms,
    // strict FIFO at 100 ms; slice round-robin lands in between.
    EXPECT_GE(toMillis(events.now()), 74.0);
    EXPECT_LE(toMillis(events.now()), 101.0);
}

TEST_F(SmpFixture, EqualProcessesShareFairly)
{
    // Four identical CPU hogs on two CPUs: round-robin through slices
    // should give each about the same CPU time at any checkpoint.
    sched.start();
    std::vector<Process *> procs;
    for (int i = 0; i < 4; ++i) {
        procs.push_back(client.createProcess(2, 2 * kSec));
        client.startProcess(procs.back());
    }
    events.runAll(kSec); // run 1 simulated second
    Time minT = kTimeNever, maxT = 0;
    for (Process *p : procs) {
        Time t = p->cpuTime;
        if (p->state() == ProcState::Running)
            t += events.now() - p->segmentStart;
        minT = std::min(minT, t);
        maxT = std::max(maxT, t);
    }
    // Within 100 ms of each other after a second of competition.
    EXPECT_LT(toMillis(maxT - minT), 100.0);
}

TEST_F(SmpFixture, NoIsolationBetweenSpus)
{
    // The defining SMP property: SPU 3's extra load slows SPU 2.
    sched.start();
    Process *light = client.createProcess(2, 500 * kMs);
    client.startProcess(light);
    for (int i = 0; i < 5; ++i)
        client.startProcess(client.createProcess(3, 2 * kSec));
    client.runToCompletion();
    // With 6 equal processes on 2 CPUs, the light job takes ~3x its
    // solo time (500 ms work at 1/3 CPU rate).
    EXPECT_GT(light->endTime - light->startTime, 1200 * kMs);
}

TEST_F(SmpFixture, CpuTimeConservation)
{
    sched.start();
    std::vector<Process *> procs;
    for (int i = 0; i < 3; ++i) {
        procs.push_back(
            client.createProcess(2 + i, 300 * kMs));
        client.startProcess(procs.back());
    }
    client.runToCompletion();
    Time total = 0;
    for (Process *p : procs)
        total += p->cpuTime;
    EXPECT_NEAR(toMillis(total), 900.0, 1.0);
    // Busy+idle must cover the whole run on both CPUs.
    const Time busyPlusIdle =
        sched.totalIdleTime() + total;
    EXPECT_NEAR(toMillis(busyPlusIdle), toMillis(2 * events.now()), 1.0);
}

TEST_F(SmpFixture, SpuCpuTimeAccounting)
{
    sched.start();
    Process *a = client.createProcess(2, 200 * kMs);
    Process *b = client.createProcess(3, 400 * kMs);
    client.startProcess(a);
    client.startProcess(b);
    client.runToCompletion();
    EXPECT_NEAR(toMillis(sched.spuCpuTime(2)), 200.0, 1.0);
    EXPECT_NEAR(toMillis(sched.spuCpuTime(3)), 400.0, 1.0);
}

TEST_F(SmpFixture, DelayedStartDispatches)
{
    sched.start();
    Process *p = client.createProcess(2, 100 * kMs);
    events.schedule(250 * kMs, [&] { client.startProcess(p); });
    client.runToCompletion();
    EXPECT_EQ(p->state(), ProcState::Exited);
    EXPECT_NEAR(toMillis(p->endTime), 350.0, 1.0);
}

TEST(SmpScheduler, SingleCpuSerializes)
{
    EventQueue events;
    SmpScheduler sched(events, 1);
    FakeClient client(events, sched);
    sched.start();
    Process *a = client.createProcess(2, 100 * kMs);
    Process *b = client.createProcess(2, 100 * kMs);
    client.startProcess(a);
    client.startProcess(b);
    EXPECT_EQ(b->state(), ProcState::Ready);
    client.runToCompletion();
    EXPECT_NEAR(toMillis(events.now()), 200.0, 5.0);
}

TEST(SmpScheduler, RejectsZeroCpus)
{
    EventQueue events;
    EXPECT_THROW(SmpScheduler(events, 0), std::runtime_error);
}
