/**
 * @file
 * Unit tests for disk-bandwidth tracking and the Iso / PIso disk
 * schedulers (Section 3.3).
 */

#include <gtest/gtest.h>

#include "src/core/disk_fair.hh"

using namespace piso;

namespace {

DiskRequest
req(SpuId spu, std::uint64_t sector, Time issue = 0)
{
    DiskRequest r;
    r.spu = spu;
    r.startSector = sector;
    r.sectors = 8;
    r.issueTime = issue;
    return r;
}

} // namespace

TEST(BandwidthTracker, AccumulatesSectors)
{
    DiskBandwidthTracker t;
    t.addSectors(2, 100, 0);
    EXPECT_DOUBLE_EQ(t.usage(2, 0), 100.0);
    t.addSectors(2, 50, 0);
    EXPECT_DOUBLE_EQ(t.usage(2, 0), 150.0);
}

TEST(BandwidthTracker, UnknownSpuIsZero)
{
    DiskBandwidthTracker t;
    EXPECT_DOUBLE_EQ(t.usage(9, kSec), 0.0);
    EXPECT_DOUBLE_EQ(t.ratio(9, kSec), 0.0);
}

TEST(BandwidthTracker, DecaysByHalfPerHalfLife)
{
    DiskBandwidthTracker t(500 * kMs);
    t.addSectors(2, 100, 0);
    EXPECT_NEAR(t.usage(2, 500 * kMs), 50.0, 1e-9);
    EXPECT_NEAR(t.usage(2, 1000 * kMs), 25.0, 1e-9);
}

TEST(BandwidthTracker, DecayAppliedBeforeAdd)
{
    DiskBandwidthTracker t(500 * kMs);
    t.addSectors(2, 100, 0);
    t.addSectors(2, 10, 500 * kMs);
    EXPECT_NEAR(t.usage(2, 500 * kMs), 60.0, 1e-9);
}

TEST(BandwidthTracker, RatioDividesByShare)
{
    DiskBandwidthTracker t;
    t.setShare(2, 2.0);
    t.setShare(3, 1.0);
    t.addSectors(2, 100, 0);
    t.addSectors(3, 100, 0);
    EXPECT_DOUBLE_EQ(t.ratio(2, 0), 50.0);
    EXPECT_DOUBLE_EQ(t.ratio(3, 0), 100.0);
}

TEST(BandwidthTracker, CustomHalfLife)
{
    DiskBandwidthTracker t(100 * kMs);
    t.addSectors(2, 64, 0);
    EXPECT_NEAR(t.usage(2, 100 * kMs), 32.0, 1e-9);
}

TEST(BandwidthTracker, InvalidConfigRejected)
{
    EXPECT_THROW(DiskBandwidthTracker(0), std::runtime_error);
    DiskBandwidthTracker t;
    EXPECT_THROW(t.setShare(2, 0.0), std::runtime_error);
}

// ---------------------------------------------------------------------
// Iso (blind fairness)
// ---------------------------------------------------------------------

TEST(IsoScheduler, PicksLowestRatioSpu)
{
    IsoDiskScheduler s;
    s.tracker().addSectors(2, 1000, 0);
    s.tracker().addSectors(3, 10, 0);
    std::deque<DiskRequest> q{req(2, 100), req(3, 999999)};
    EXPECT_EQ(s.pick(q, 0, 0), 1u); // SPU 3 despite the distant sector
}

TEST(IsoScheduler, FifoWithinSpu)
{
    IsoDiskScheduler s;
    std::deque<DiskRequest> q{req(2, 500), req(2, 100)};
    EXPECT_EQ(s.pick(q, 0, 0), 0u);
}

TEST(IsoScheduler, AlternatesBetweenEqualSpus)
{
    IsoDiskScheduler s;
    std::deque<DiskRequest> q;
    for (int i = 0; i < 4; ++i) {
        q.push_back(req(2, static_cast<std::uint64_t>(i) * 1000));
        q.push_back(req(3, 500000 + static_cast<std::uint64_t>(i) * 1000));
    }
    std::vector<SpuId> serviced;
    Time now = 0;
    while (!q.empty()) {
        const std::size_t i = s.pick(q, 0, now);
        serviced.push_back(q[i].spu);
        s.onComplete(q[i], now);
        q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
        now += 10 * kMs;
    }
    // Strict alternation: each SPU's count is charged, so the other
    // becomes lowest next round.
    for (std::size_t i = 1; i < serviced.size(); ++i)
        EXPECT_NE(serviced[i], serviced[i - 1]);
}

TEST(IsoScheduler, SharedSpuLowestPriority)
{
    IsoDiskScheduler s;
    std::deque<DiskRequest> q{req(kSharedSpu, 100), req(2, 500)};
    EXPECT_EQ(s.pick(q, 0, 0), 1u); // user request first
}

TEST(IsoScheduler, SharedServicedWhenAlone)
{
    IsoDiskScheduler s;
    std::deque<DiskRequest> q{req(kSharedSpu, 100)};
    EXPECT_EQ(s.pick(q, 0, 0), 0u);
}

TEST(IsoScheduler, SharedStarvationGuard)
{
    IsoDiskScheduler s(500 * kMs, 300 * kMs);
    std::deque<DiskRequest> q{req(kSharedSpu, 100, 0),
                              req(2, 500, 350 * kMs)};
    // The shared request has waited 400 ms > 300 ms guard.
    EXPECT_EQ(s.pick(q, 0, 400 * kMs), 0u);
}

TEST(IsoScheduler, ChargesBreakdownOnSharedWrites)
{
    IsoDiskScheduler s;
    DiskRequest r = req(kSharedSpu, 0);
    r.sectors = 64;
    r.charges = {{2, 48}, {3, 16}};
    s.onComplete(r, 0);
    EXPECT_DOUBLE_EQ(s.tracker().usage(2, 0), 48.0);
    EXPECT_DOUBLE_EQ(s.tracker().usage(3, 0), 16.0);
    EXPECT_DOUBLE_EQ(s.tracker().usage(kSharedSpu, 0), 0.0);
}

// ---------------------------------------------------------------------
// PIso (fairness + head position)
// ---------------------------------------------------------------------

TEST(PisoDiskScheduler, UsesHeadPositionWhenFair)
{
    PisoDiskScheduler s(256.0);
    std::deque<DiskRequest> q{req(2, 5000), req(3, 1000), req(2, 2000)};
    // Nobody over threshold: pure C-SCAN from head 0 picks sector 1000.
    EXPECT_EQ(s.pick(q, 0, 0), 1u);
}

TEST(PisoDiskScheduler, ExcludesUnfairSpu)
{
    PisoDiskScheduler s(100.0);
    // SPU 2 has hogged: ratio 1000 vs avg (1000+0)/2 = 500; cutoff
    // 600 < 1000, so SPU 2 fails the criterion.
    s.tracker().addSectors(2, 1000, 0);
    std::deque<DiskRequest> q{req(2, 100), req(3, 900000)};
    EXPECT_EQ(s.pick(q, 0, 0), 1u);
}

TEST(PisoDiskScheduler, HugeThresholdDegeneratesToCscan)
{
    PisoDiskScheduler s(1e18);
    s.tracker().addSectors(2, 1000000, 0);
    std::deque<DiskRequest> q{req(2, 100), req(3, 900000)};
    EXPECT_EQ(s.pick(q, 0, 0), 0u); // head position wins regardless
}

TEST(PisoDiskScheduler, ZeroThresholdApproachesRoundRobin)
{
    PisoDiskScheduler s(0.0);
    std::deque<DiskRequest> q;
    for (int i = 0; i < 6; ++i) {
        q.push_back(req(2, 1000 + static_cast<std::uint64_t>(i) * 8));
        q.push_back(req(3,
                        800000 + static_cast<std::uint64_t>(i) * 8));
    }
    std::map<SpuId, int> first6;
    Time now = 0;
    std::uint64_t head = 0;
    for (int i = 0; i < 6; ++i) {
        const std::size_t k = s.pick(q, head, now);
        ++first6[q[k].spu];
        head = q[k].startSector + q[k].sectors;
        s.onComplete(q[k], now);
        q.erase(q.begin() + static_cast<std::ptrdiff_t>(k));
        now += 5 * kMs;
    }
    // With threshold 0 neither SPU can get far ahead: both serviced.
    EXPECT_GE(first6[2], 2);
    EXPECT_GE(first6[3], 2);
}

TEST(PisoDiskScheduler, MinRatioSpuAlwaysEligible)
{
    PisoDiskScheduler s(0.0);
    s.tracker().addSectors(2, 500, 0);
    s.tracker().addSectors(3, 100, 0);
    std::deque<DiskRequest> q{req(2, 100), req(3, 200)};
    // avg = 300; cutoff = 300; SPU 3 (100) passes, SPU 2 (500) fails.
    EXPECT_EQ(s.pick(q, 0, 0), 1u);
}

TEST(PisoDiskScheduler, SharedLowestPriorityButNotStarved)
{
    PisoDiskScheduler s(256.0, 500 * kMs, 300 * kMs);
    std::deque<DiskRequest> q{req(kSharedSpu, 50, 0), req(2, 100, 0)};
    EXPECT_EQ(s.pick(q, 0, 0), 1u);
    // After the guard expires, the shared request is serviced.
    EXPECT_EQ(s.pick(q, 0, 400 * kMs), 0u);
}

TEST(PisoDiskScheduler, OnlySharedQueuedGetsServiced)
{
    PisoDiskScheduler s;
    std::deque<DiskRequest> q{req(kSharedSpu, 700), req(kSharedSpu, 50)};
    // C-SCAN among shared from head 100: sector 700 next.
    EXPECT_EQ(s.pick(q, 100, 0), 0u);
}

TEST(PisoDiskScheduler, NegativeThresholdRejected)
{
    EXPECT_THROW(PisoDiskScheduler(-1.0), std::runtime_error);
}

TEST(PisoDiskScheduler, FairnessRecheckedAfterCompletions)
{
    // A hog streams sequential requests; a light SPU has one distant
    // request. With a small threshold the hog is cut off quickly.
    PisoDiskScheduler s(64.0);
    std::deque<DiskRequest> q;
    std::uint64_t hogSector = 1000;
    int hogServed = 0;
    bool lightServed = false;
    q.push_back(req(3, 600000));
    Time now = 0;
    std::uint64_t head = 1000;
    for (int i = 0; i < 10 && !lightServed; ++i) {
        q.push_back(req(2, hogSector));
        hogSector += 64;
        const std::size_t k = s.pick(q, head, now);
        if (q[k].spu == 3)
            lightServed = true;
        else
            ++hogServed;
        head = q[k].startSector + q[k].sectors;
        DiskRequest done = q[k];
        done.sectors = 64;
        s.onComplete(done, now);
        q.erase(q.begin() + static_cast<std::ptrdiff_t>(k));
        now += 5 * kMs;
    }
    EXPECT_TRUE(lightServed);
    EXPECT_LE(hogServed, 4); // cut off after a few wins
}

// ---------------------------------------------------------------------
// Lazy decay == eager periodic sweep (property; see decay_ref_util.hh)
// ---------------------------------------------------------------------

#include <random>

#include "tests/decay_ref_util.hh"

TEST(BandwidthTrackerProperty, LazyDecayMatchesEagerSweepTo1Ulp)
{
    // Randomized op sequences over several SPUs: the lazy (count,
    // last-update) fold must agree with the eager boundary-sweep
    // reference to 1 ulp at every observation point.
    for (std::uint64_t seed : {11u, 23u, 47u}) {
        const Time halfLife = 500 * kMs;
        DiskBandwidthTracker tracker(halfLife);
        piso::testutil::EagerDecayRef ref(halfLife);
        std::mt19937_64 rng(seed);
        std::uniform_int_distribution<int> spuDist(2, 6);
        std::uniform_int_distribution<std::uint64_t> gapDist(1,
                                                            1200 * kUs);
        std::uniform_int_distribution<std::uint64_t> sectDist(1, 4096);

        Time now = 0;
        for (int op = 0; op < 4000; ++op) {
            now += gapDist(rng);
            const SpuId spu = spuDist(rng);
            if (op % 3 != 2) {
                const std::uint64_t sectors = sectDist(rng);
                tracker.addSectors(spu, sectors, now);
                ref.add(spu, sectors, now);
            }
            const double lazy = tracker.usage(spu, now);
            const double eager = ref.usage(spu, now);
            ASSERT_LE(piso::testutil::ulpDistance(lazy, eager), 1)
                << "seed " << seed << " op " << op << ": lazy " << lazy
                << " vs eager " << eager;
        }
    }
}

TEST(BandwidthTrackerProperty, LongIdleGapsStayExact)
{
    // A count left alone for many half-lives must fold the missed
    // halvings exactly like a sweep that fired at every boundary
    // (whole halvings are exact binary scaling).
    const Time halfLife = 500 * kMs;
    DiskBandwidthTracker tracker(halfLife);
    piso::testutil::EagerDecayRef ref(halfLife);
    tracker.addSectors(2, 1 << 20, 7 * kMs);
    ref.add(2, 1 << 20, 7 * kMs);
    for (int k = 1; k <= 40; ++k) {
        const Time t = 7 * kMs + static_cast<Time>(k) * halfLife;
        ASSERT_LE(piso::testutil::ulpDistance(tracker.usage(2, t),
                                              ref.usage(2, t)),
                  1)
            << "after " << k << " half-lives";
    }
}
