/**
 * @file
 * Unit tests for Counter, Accumulator, and Histogram.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/sim/stats.hh"

using namespace piso;

TEST(Counter, StartsAtZeroAndAdds)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(9);
    EXPECT_EQ(c.value(), 10u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Accumulator, EmptyIsZero)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.min(), 0.0);
    EXPECT_EQ(a.max(), 0.0);
    EXPECT_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, SingleSample)
{
    Accumulator a;
    a.sample(5.0);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_EQ(a.mean(), 5.0);
    EXPECT_EQ(a.min(), 5.0);
    EXPECT_EQ(a.max(), 5.0);
    EXPECT_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, MeanMinMaxSum)
{
    Accumulator a;
    for (double v : {2.0, 4.0, 6.0, 8.0})
        a.sample(v);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 8.0);
    EXPECT_DOUBLE_EQ(a.sum(), 20.0);
}

TEST(Accumulator, StddevMatchesClosedForm)
{
    Accumulator a;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        a.sample(v);
    EXPECT_NEAR(a.stddev(), 2.0, 1e-12); // classic example, sigma = 2
}

TEST(Accumulator, NegativeValues)
{
    Accumulator a;
    a.sample(-3.0);
    a.sample(3.0);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), -3.0);
}

TEST(Accumulator, ResetClears)
{
    Accumulator a;
    a.sample(1.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.mean(), 0.0);
}

TEST(Accumulator, LargeStreamStable)
{
    Accumulator a;
    for (int i = 0; i < 1000000; ++i)
        a.sample(1000.0 + (i % 2 == 0 ? 0.5 : -0.5));
    EXPECT_NEAR(a.mean(), 1000.0, 1e-9);
    EXPECT_NEAR(a.stddev(), 0.5, 1e-9);
}

TEST(Histogram, BucketsFill)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.sample(i + 0.5);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_EQ(h.bucketCount(i), 1u);
    EXPECT_EQ(h.total(), 10u);
}

TEST(Histogram, UnderOverflow)
{
    Histogram h(0.0, 10.0, 5);
    h.sample(-1.0);
    h.sample(10.0);
    h.sample(99.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BoundaryGoesToLowerBucket)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(0.0);
    h.sample(9.999);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
}

TEST(Histogram, PercentileMedian)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(i + 0.5);
    EXPECT_NEAR(h.percentile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.percentile(0.9), 90.0, 1.5);
}

TEST(Histogram, PercentileEmpty)
{
    Histogram h(5.0, 10.0, 5);
    EXPECT_EQ(h.percentile(0.5), 5.0);
}

TEST(Histogram, PercentileClampsFraction)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(5.0);
    EXPECT_GE(h.percentile(-1.0), 0.0);
    EXPECT_LE(h.percentile(2.0), 10.0);
}
