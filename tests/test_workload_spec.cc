/**
 * @file
 * Tests for the workload-spec text format and runner.
 */

#include <gtest/gtest.h>

#include "src/config/workload_spec.hh"
#include "src/piso.hh"

using namespace piso;

namespace {

const char *kMinimal = R"(
machine cpus=2 memory_mb=16 scheme=smp seed=5
spu u
job u compute name=j cpu_ms=100
)";

} // namespace

TEST(WorkloadSpec, ParsesMinimal)
{
    const WorkloadSpec s = parseWorkloadSpec(kMinimal);
    EXPECT_EQ(s.config.cpus, 2);
    EXPECT_EQ(s.config.memoryBytes, 16 * kMiB);
    EXPECT_EQ(s.config.scheme, Scheme::Smp);
    EXPECT_EQ(s.config.seed, 5u);
    ASSERT_EQ(s.spus.size(), 1u);
    EXPECT_EQ(s.spus[0].name, "u");
    ASSERT_EQ(s.jobs.size(), 1u);
    EXPECT_EQ(s.jobs[0].kind, "compute");
    EXPECT_EQ(s.jobs[0].name, "j");
}

TEST(WorkloadSpec, DefaultsWithoutMachineLine)
{
    const WorkloadSpec s = parseWorkloadSpec(
        "spu u\njob u compute cpu_ms=10\n");
    EXPECT_EQ(s.config.cpus, 8);
    EXPECT_EQ(s.config.scheme, Scheme::PIso);
}

TEST(WorkloadSpec, CommentsAndBlankLinesIgnored)
{
    const WorkloadSpec s = parseWorkloadSpec(
        "# header\n\nspu u # trailing\n\njob u compute cpu_ms=1\n");
    EXPECT_EQ(s.spus.size(), 1u);
}

TEST(WorkloadSpec, ParsesAllMachineOptions)
{
    const WorkloadSpec s = parseWorkloadSpec(R"(
machine cpus=4 memory_mb=32 disks=3 scheme=quota disk_policy=iso seed=9 max_time_s=10 network_mbps=100 bw_threshold=512 seek_scale=0.5 ipi_revocation=1
spu u
job u compute cpu_ms=1
)");
    EXPECT_EQ(s.config.diskCount, 3);
    EXPECT_EQ(s.config.scheme, Scheme::Quota);
    EXPECT_EQ(s.config.diskPolicy, DiskPolicy::BlindFair);
    EXPECT_EQ(s.config.maxTime, 10 * kSec);
    EXPECT_DOUBLE_EQ(s.config.networkBitsPerSec, 100e6);
    EXPECT_DOUBLE_EQ(s.config.bwThresholdSectors, 512.0);
    EXPECT_DOUBLE_EQ(s.config.diskParams.seekScale, 0.5);
    EXPECT_TRUE(s.config.ipiRevocation);
}

TEST(WorkloadSpec, AutoNamesJobs)
{
    const WorkloadSpec s = parseWorkloadSpec(
        "spu u\njob u compute cpu_ms=1\njob u compute cpu_ms=1\n");
    EXPECT_NE(s.jobs[0].name, s.jobs[1].name);
}

TEST(WorkloadSpec, ErrorsCarryLineNumbers)
{
    try {
        parseWorkloadSpec("spu u\njob u compute bogus_key=1\n");
        (void)buildJob(parseWorkloadSpec(
                           "spu u\njob u compute bogus_key=1\n")
                           .jobs[0]);
        FAIL() << "expected a parse error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("bogus_key"),
                  std::string::npos);
    }
}

TEST(WorkloadSpec, RejectsMalformedInput)
{
    EXPECT_THROW(parseWorkloadSpec("bogus directive\n"),
                 std::runtime_error);
    EXPECT_THROW(parseWorkloadSpec("spu u\njob u compute notkv\n"),
                 std::runtime_error);
    EXPECT_THROW(parseWorkloadSpec("spu u\njob u mystery name=x\n"),
                 std::runtime_error);
    EXPECT_THROW(parseWorkloadSpec("spu u\njob ghost compute\n"),
                 std::runtime_error);
    EXPECT_THROW(parseWorkloadSpec("spu u\nspu u\njob u compute\n"),
                 std::runtime_error);
    EXPECT_THROW(parseWorkloadSpec(
                     "machine cpus=2\nmachine cpus=4\nspu u\n"
                     "job u compute\n"),
                 std::runtime_error);
    EXPECT_THROW(parseWorkloadSpec("machine cpus=two\nspu u\n"
                                   "job u compute\n"),
                 std::runtime_error);
    EXPECT_THROW(parseWorkloadSpec(""), std::runtime_error);
    EXPECT_THROW(parseWorkloadSpec("spu u\n"), std::runtime_error);
}

TEST(WorkloadSpec, UnknownMachineOptionRejected)
{
    EXPECT_THROW(parseWorkloadSpec(
                     "machine cpus=2 turbo=1\nspu u\njob u compute\n"),
                 std::runtime_error);
}

TEST(WorkloadSpec, BuildsEveryJobKind)
{
    const WorkloadSpec s = parseWorkloadSpec(R"(
machine cpus=2 memory_mb=32 network_mbps=10
spu u
job u pmake   name=a workers=1 files=2
job u copy    name=b bytes_kb=64
job u compute name=c cpu_ms=5
job u ocean   name=d procs=2 iters=3 grain_ms=1
job u oltp    name=e servers=1 txns=3 table_mb=1
job u web     name=f workers=1 requests=3 response_kb=1
)");
    for (const JobDecl &j : s.jobs)
        EXPECT_NO_THROW((void)buildJob(j)) << j.kind;
}

TEST(WorkloadSpec, EndToEndRun)
{
    const WorkloadSpec s = parseWorkloadSpec(R"(
machine cpus=2 memory_mb=32 scheme=piso seed=3
spu alice disk=0
spu bob share=2 disk=0
job alice compute name=light cpu_ms=200 ws_pages=32
job bob   compute name=heavy cpu_ms=400 ws_pages=32
)");
    const SimResults r = runWorkloadSpec(s);
    ASSERT_TRUE(r.completed);
    EXPECT_NEAR(r.job("light").responseSec(), 0.2, 0.05);
    EXPECT_NEAR(r.job("heavy").responseSec(), 0.4, 0.05);
}

TEST(WorkloadSpec, ParsesSpusTreeSection)
{
    const WorkloadSpec s = parseWorkloadSpec(R"(
machine cpus=4 memory_mb=32 scheme=piso seed=1
[spus]
eng       share=2
eng.build share=3 disk=0
eng.test  share=1
ops       share=1
ops.web   share=1
job eng.build compute name=b cpu_ms=10
job ops.web   compute name=w cpu_ms=10
)");
    ASSERT_EQ(s.spus.size(), 5u);
    EXPECT_EQ(s.spus[0].name, "eng");
    EXPECT_EQ(s.spus[0].parent, "");
    EXPECT_EQ(s.spus[1].name, "eng.build");
    EXPECT_EQ(s.spus[1].parent, "eng");
    EXPECT_DOUBLE_EQ(s.spus[1].share, 3.0);
    EXPECT_EQ(s.spus[4].parent, "ops");
    ASSERT_EQ(s.jobs.size(), 2u);
    EXPECT_EQ(s.jobs[0].spu, "eng.build");
}

TEST(WorkloadSpec, SpusTreeRunsEndToEnd)
{
    const WorkloadSpec s = parseWorkloadSpec(R"(
machine cpus=2 memory_mb=32 scheme=piso seed=3
[spus]
eng       share=2
eng.build share=1
ops       share=1
ops.web   share=1
job eng.build compute name=b cpu_ms=100 ws_pages=16
job ops.web   compute name=w cpu_ms=100 ws_pages=16
)");
    const SimResults r = runWorkloadSpec(s);
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.job("b").responseSec(), 0.0);
    // The per-SPU results carry the hierarchy: leaves name their
    // enclosing group, groups sit at the top level.
    bool sawLeaf = false;
    for (const auto &[id, sr] : r.spus) {
        if (sr.name == "eng.build") {
            sawLeaf = true;
            ASSERT_TRUE(r.spus.contains(sr.parent));
            EXPECT_EQ(r.spus.find(sr.parent)->name, "eng");
        }
    }
    EXPECT_TRUE(sawLeaf);
}

TEST(WorkloadSpec, SpusTreeRejectsMalformedHierarchies)
{
    // A child before its parent group.
    EXPECT_THROW(parseWorkloadSpec("[spus]\neng.build share=1\n"
                                   "job eng.build compute\n"),
                 std::runtime_error);
    // Duplicate node.
    EXPECT_THROW(parseWorkloadSpec("[spus]\neng\neng\n"
                                   "job eng compute\n"),
                 std::runtime_error);
    // Dotted names belong in a [spus] section, not `spu` lines.
    EXPECT_THROW(parseWorkloadSpec("spu eng.build\n"
                                   "job eng.build compute\n"),
                 std::runtime_error);
    // Jobs may only run on leaf SPUs, never on a group.
    EXPECT_THROW(parseWorkloadSpec("[spus]\neng\neng.build\n"
                                   "job eng compute\n"),
                 std::runtime_error);
    // Empty dotted segments are nonsense.
    EXPECT_THROW(parseWorkloadSpec("[spus]\neng\neng..build\n"
                                   "job eng compute\n"),
                 std::runtime_error);
}

TEST(WorkloadSpec, StartDelayOption)
{
    const WorkloadSpec s = parseWorkloadSpec(R"(
machine cpus=2 memory_mb=16 seed=3
spu u
job u compute name=late cpu_ms=10 start_s=1.5
)");
    const SimResults r = runWorkloadSpec(s);
    EXPECT_GE(r.job("late").start, 1500 * kMs);
}
