/**
 * @file
 * Unit tests for the deterministic random source.
 */

#include <gtest/gtest.h>

#include "src/sim/random.hh"

using namespace piso;

TEST(Rng, DeterministicFromSeed)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 10000; ++i) {
        const double v = r.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r(13);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng r(17);
    for (int i = 0; i < 1000; ++i) {
        const double v = r.uniformRange(3.0, 5.0);
        EXPECT_GE(v, 3.0);
        EXPECT_LT(v, 5.0);
    }
}

TEST(Rng, UniformIntCoversRange)
{
    Rng r(19);
    std::vector<int> seen(10, 0);
    for (int i = 0; i < 10000; ++i)
        ++seen[r.uniformInt(10)];
    for (int c : seen)
        EXPECT_GT(c, 700); // each bucket near 1000
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng r(23);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(42.0);
    EXPECT_NEAR(sum / n, 42.0, 1.0);
}

TEST(Rng, ExponentialNonNegative)
{
    Rng r(29);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GE(r.exponential(5.0), 0.0);
}

TEST(Rng, ExponentialTimeMeanMatches)
{
    Rng r(31);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.exponentialTime(10 * kMs));
    EXPECT_NEAR(sum / n, static_cast<double>(10 * kMs),
                static_cast<double>(kMs));
}

TEST(Rng, UniformTimeZeroSpan)
{
    Rng r(37);
    EXPECT_EQ(r.uniformTime(0), 0u);
}

TEST(Rng, UniformTimeWithinSpan)
{
    Rng r(41);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.uniformTime(kSec), kSec);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(43);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceFrequency)
{
    Rng r(47);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkIndependentOfParentDraws)
{
    // fork() then parent draws should not change the child's stream.
    Rng parent1(99);
    Rng child1 = parent1.fork();
    Rng parent2(99);
    Rng child2 = parent2.fork();
    (void)parent1.next(); // extra parent draw
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(child1.next(), child2.next());
}

TEST(Rng, ForkedStreamsDiffer)
{
    Rng parent(101);
    Rng a = parent.fork();
    Rng b = parent.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}
