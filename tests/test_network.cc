/**
 * @file
 * Tests for the network-bandwidth isolation extension (the paper's
 * Section 5 sketch: disk-style fairness without head position).
 */

#include <gtest/gtest.h>

#include <random>

#include "src/piso.hh"
#include "tests/decay_ref_util.hh"

using namespace piso;

namespace {

NetMessage
msg(SpuId spu, std::uint64_t bytes)
{
    NetMessage m;
    m.spu = spu;
    m.bytes = bytes;
    return m;
}

} // namespace

TEST(NetworkInterface, TransmitTimeMatchesBandwidth)
{
    EventQueue events;
    // 10 Mbit/s, zero overhead: 1250 bytes = 1 ms.
    NetworkInterface net(events, 10e6,
                         std::make_unique<FifoNetScheduler>(), "n", 0);
    EXPECT_EQ(net.transmitTime(1250), kMs);
}

TEST(NetworkInterface, OverheadAdds)
{
    EventQueue events;
    NetworkInterface net(events, 10e6,
                         std::make_unique<FifoNetScheduler>(), "n",
                         50 * kUs);
    EXPECT_EQ(net.transmitTime(1250), kMs + 50 * kUs);
}

TEST(NetworkInterface, SingleMessageCompletes)
{
    EventQueue events;
    NetworkInterface net(events, 10e6,
                         std::make_unique<FifoNetScheduler>());
    bool done = false;
    NetMessage m = msg(2, 1250);
    m.onComplete = [&](const NetMessage &) { done = true; };
    net.submit(std::move(m));
    EXPECT_TRUE(net.busy());
    events.runAll();
    EXPECT_TRUE(done);
    EXPECT_FALSE(net.busy());
    EXPECT_EQ(net.spuStats(2).bytes.value(), 1250u);
    EXPECT_EQ(net.totalMessages(), 1u);
}

TEST(NetworkInterface, FifoOrder)
{
    EventQueue events;
    NetworkInterface net(events, 10e6,
                         std::make_unique<FifoNetScheduler>());
    std::vector<int> order;
    for (int i = 0; i < 3; ++i) {
        NetMessage m = msg(2 + i, 1000);
        m.onComplete = [&order, i](const NetMessage &) {
            order.push_back(i);
        };
        net.submit(std::move(m));
    }
    events.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(NetworkInterface, RejectsBadConfig)
{
    EventQueue events;
    EXPECT_THROW(NetworkInterface(events, 0.0,
                                  std::make_unique<FifoNetScheduler>()),
                 std::runtime_error);
    EXPECT_THROW(NetworkInterface(events, 1e6, nullptr),
                 std::runtime_error);
}

TEST(FairNetScheduler, AlternatesBetweenEqualSpus)
{
    EventQueue events;
    auto sched = std::make_unique<FairNetScheduler>();
    FairNetScheduler *fair = sched.get();
    NetworkInterface net(events, 10e6, std::move(sched));
    fair->tracker().setShare(2, 1.0);
    fair->tracker().setShare(3, 1.0);

    std::vector<SpuId> order;
    for (int i = 0; i < 4; ++i) {
        for (SpuId spu : {SpuId{2}, SpuId{2}, SpuId{3}}) {
            // SPU 2 floods 2:1, but service should alternate ~1:1.
            NetMessage m = msg(spu, 2000);
            m.onComplete = [&order, spu](const NetMessage &) {
                order.push_back(spu);
            };
            net.submit(std::move(m));
        }
    }
    events.runAll();
    // Count SPU 3 messages in the first half of completions: strict
    // FIFO would leave most of them at the back.
    int spu3First = 0;
    for (std::size_t i = 0; i < order.size() / 2; ++i)
        spu3First += order[i] == 3 ? 1 : 0;
    EXPECT_GE(spu3First, 3); // nearly all of SPU 3 is served early
}

TEST(FairNetScheduler, SharesWeightService)
{
    EventQueue events;
    auto sched = std::make_unique<FairNetScheduler>();
    FairNetScheduler *fair = sched.get();
    NetworkInterface net(events, 10e6, std::move(sched));
    fair->tracker().setShare(2, 3.0);
    fair->tracker().setShare(3, 1.0);

    // Both SPUs keep 20 equal messages queued.
    std::vector<SpuId> order;
    for (int i = 0; i < 20; ++i) {
        for (SpuId spu : {SpuId{2}, SpuId{3}}) {
            NetMessage m = msg(spu, 4000);
            m.onComplete = [&order, spu](const NetMessage &) {
                order.push_back(spu);
            };
            net.submit(std::move(m));
        }
    }
    events.runAll();
    // In the first 12 services, the 3-share SPU should get about 3x.
    int a = 0, b = 0;
    for (std::size_t i = 0; i < 12; ++i)
        (order[i] == 2 ? a : b)++;
    EXPECT_GE(a, 7);
    EXPECT_GE(b, 2);
}

TEST(NetworkKernel, SendActionBlocksForTransmission)
{
    SystemConfig cfg;
    cfg.cpus = 2;
    cfg.memoryBytes = 16 * kMiB;
    cfg.scheme = Scheme::PIso;
    cfg.networkBitsPerSec = 10e6;
    cfg.seed = 3;
    Simulation sim(cfg);
    const SpuId u = sim.addSpu({.name = "u"});
    // 1 MB at 10 Mbit/s ~ 0.84 s on the wire.
    sim.addJob(u, makeScriptJob("send", {SendAction{1 << 20}}));
    const SimResults r = sim.run();
    ASSERT_TRUE(r.completed);
    EXPECT_NEAR(r.job("send").responseSec(), 0.84, 0.05);
    ASSERT_NE(sim.network(), nullptr);
    EXPECT_EQ(sim.network()->spuStats(u).bytes.value(), 1u << 20);
}

TEST(NetworkKernel, SendWithoutNetworkIsFatal)
{
    SystemConfig cfg;
    cfg.cpus = 2;
    cfg.memoryBytes = 16 * kMiB;
    cfg.scheme = Scheme::PIso;
    cfg.seed = 3;
    Simulation sim(cfg);
    const SpuId u = sim.addSpu({.name = "u"});
    sim.addJob(u, makeScriptJob("send", {SendAction{1024}}));
    EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(NetworkKernel, FairLinkProtectsInteractiveSender)
{
    // A bulk sender floods the link; an interactive sender pushes
    // small messages. FIFO (Smp) queues the small messages behind the
    // flood; the fair link (PIso) serves them promptly.
    auto run = [](Scheme scheme) {
        SystemConfig cfg;
        cfg.cpus = 2;
        cfg.memoryBytes = 16 * kMiB;
        cfg.scheme = scheme;
        cfg.networkBitsPerSec = 10e6;
        cfg.seed = 5;
        Simulation sim(cfg);
        const SpuId bulk = sim.addSpu({.name = "bulk"});
        const SpuId inter = sim.addSpu({.name = "inter"});

        // Four concurrent bulk streams keep the transmit queue deep.
        for (int j = 0; j < 4; ++j) {
            std::vector<Action> flood;
            for (int i = 0; i < 16; ++i)
                flood.push_back(SendAction{256 * 1024});
            sim.addJob(bulk, makeScriptJob("flood" + std::to_string(j),
                                           std::move(flood)));
        }

        std::vector<Action> chat;
        for (int i = 0; i < 20; ++i) {
            chat.push_back(SendAction{2 * 1024});
            chat.push_back(SleepAction{10 * kMs});
        }
        sim.addJob(inter, makeScriptJob("chat", std::move(chat)));
        return sim.run().job("chat").responseSec();
    };
    const double fifo = run(Scheme::Smp);
    const double fair = run(Scheme::PIso);
    EXPECT_LT(fair, 0.5 * fifo);
}

// ---------------------------------------------------------------------------
// Lazy-decay equivalence: the fair scheduler's per-SPU byte counters
// fold their exponential decay lazily on read; prove that equals the
// eager periodic-sweep reference to 1 ulp over randomized completion
// sequences (satellite of the big-machine scaling PR; the disk twin
// lives in test_disk_fair.cc).

TEST(FairNetSchedulerProperty, LazyDecayMatchesEagerSweepTo1Ulp)
{
    const Time halfLife = 500 * kMs;
    for (std::uint64_t seed : {5u, 17u, 71u}) {
        FairNetScheduler sched(halfLife);
        piso::testutil::EagerDecayRef ref(halfLife);
        std::mt19937_64 rng(seed);
        std::uniform_int_distribution<int> spuDist(2, 6);
        std::uniform_int_distribution<Time> gapDist(1, 1200 * kUs);
        std::uniform_int_distribution<std::uint64_t> byteDist(64,
                                                             65536);

        Time now = 0;
        for (int op = 0; op < 4000; ++op) {
            now += gapDist(rng);
            const SpuId spu = static_cast<SpuId>(spuDist(rng));
            if (op % 3 != 2) {
                const std::uint64_t bytes = byteDist(rng);
                sched.onComplete(msg(spu, bytes), now);
                ref.add(spu, bytes, now);
            }
            const double lazy = sched.tracker().usage(spu, now);
            const double eager = ref.usage(spu, now);
            ASSERT_LE(piso::testutil::ulpDistance(lazy, eager), 1)
                << "seed " << seed << " op " << op << ": lazy " << lazy
                << " vs eager " << eager;
        }
    }
}
