/**
 * @file
 * Unit tests for the SPU registry (Section 2.1 / 2.2).
 */

#include <gtest/gtest.h>

#include "src/core/spu.hh"

using namespace piso;

TEST(SpuManager, DefaultSpusExist)
{
    SpuManager m;
    EXPECT_TRUE(m.exists(kKernelSpu));
    EXPECT_TRUE(m.exists(kSharedSpu));
    EXPECT_EQ(m.spu(kKernelSpu).name, "kernel");
    EXPECT_EQ(m.spu(kSharedSpu).name, "shared");
    EXPECT_EQ(m.userCount(), 0u);
}

TEST(SpuManager, CreateAssignsAscendingUserIds)
{
    SpuManager m;
    const SpuId a = m.create({.name = "a"});
    const SpuId b = m.create({.name = "b"});
    EXPECT_EQ(a, kFirstUserSpu);
    EXPECT_EQ(b, kFirstUserSpu + 1);
    EXPECT_EQ(m.userCount(), 2u);
}

TEST(SpuManager, DefaultNameGenerated)
{
    SpuManager m;
    const SpuId a = m.create({});
    EXPECT_FALSE(m.spu(a).name.empty());
}

TEST(SpuManager, EqualSharesNormalise)
{
    SpuManager m;
    const SpuId a = m.create({.name = "a"});
    const SpuId b = m.create({.name = "b"});
    EXPECT_DOUBLE_EQ(m.shareOf(a), 0.5);
    EXPECT_DOUBLE_EQ(m.shareOf(b), 0.5);
}

TEST(SpuManager, WeightedShares)
{
    // "Project A owns a third of the machine and project B two
    // thirds" — the paper's motivating contract.
    SpuManager m;
    const SpuId a = m.create({.name = "a", .share = 1.0});
    const SpuId b = m.create({.name = "b", .share = 2.0});
    EXPECT_DOUBLE_EQ(m.shareOf(a), 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(m.shareOf(b), 2.0 / 3.0);
}

TEST(SpuManager, SuspendExcludesFromShares)
{
    SpuManager m;
    const SpuId a = m.create({.name = "a"});
    const SpuId b = m.create({.name = "b"});
    m.suspend(b);
    EXPECT_DOUBLE_EQ(m.shareOf(a), 1.0);
    EXPECT_DOUBLE_EQ(m.shareOf(b), 0.0);
    EXPECT_EQ(m.userCount(), 1u);
    m.resume(b);
    EXPECT_DOUBLE_EQ(m.shareOf(a), 0.5);
}

TEST(SpuManager, DestroyRemoves)
{
    SpuManager m;
    const SpuId a = m.create({.name = "a"});
    m.destroy(a);
    EXPECT_FALSE(m.exists(a));
    EXPECT_EQ(m.userCount(), 0u);
}

TEST(SpuManager, DestroyedIdNotReused)
{
    SpuManager m;
    const SpuId a = m.create({.name = "a"});
    m.destroy(a);
    const SpuId b = m.create({.name = "b"});
    EXPECT_NE(a, b);
}

TEST(SpuManager, CpuSharesMatchUserShares)
{
    SpuManager m;
    const SpuId a = m.create({.name = "a", .share = 3.0});
    const SpuId b = m.create({.name = "b", .share = 1.0});
    const auto shares = m.cpuShares();
    EXPECT_DOUBLE_EQ(shares.at(a), 0.75);
    EXPECT_DOUBLE_EQ(shares.at(b), 0.25);
}

TEST(SpuManager, HomeDiskStored)
{
    SpuManager m;
    const SpuId a = m.create({.name = "a", .homeDisk = 3});
    EXPECT_EQ(m.spu(a).homeDisk, 3);
}

TEST(SpuManager, DefaultSpusProtected)
{
    SpuManager m;
    EXPECT_THROW(m.destroy(kKernelSpu), std::runtime_error);
    EXPECT_THROW(m.destroy(kSharedSpu), std::runtime_error);
    EXPECT_THROW(m.suspend(kKernelSpu), std::runtime_error);
}

TEST(SpuManager, InvalidShareRejected)
{
    SpuManager m;
    EXPECT_THROW(m.create({.name = "bad", .share = 0.0}),
                 std::runtime_error);
    EXPECT_THROW(m.create({.name = "bad", .share = -1.0}),
                 std::runtime_error);
}

TEST(SpuManager, UnknownSpuQueriesFail)
{
    SpuManager m;
    EXPECT_THROW(m.spu(42), std::runtime_error);
    EXPECT_THROW(m.destroy(42), std::runtime_error);
    EXPECT_FALSE(m.exists(42));
}

TEST(SpuManager, UserSpusSortedAndFiltered)
{
    SpuManager m;
    const SpuId a = m.create({.name = "a"});
    const SpuId b = m.create({.name = "b"});
    const SpuId c = m.create({.name = "c"});
    m.suspend(b);
    const auto users = m.userSpus();
    ASSERT_EQ(users.size(), 2u);
    EXPECT_EQ(users[0], a);
    EXPECT_EQ(users[1], c);
}
