/**
 * @file
 * Tests for the reporting helpers: TextTable, normalisation, time
 * formatting, run summaries, and the SpuMonitor time series.
 */

#include <gtest/gtest.h>

#include "src/metrics/monitor.hh"
#include "src/piso.hh"

using namespace piso;

TEST(TextTable, AlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"long-name", "12345"});
    const std::string s = t.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("long-name"), std::string::npos);
    // All lines equal width (header, separator, rows).
    std::size_t width = s.find('\n');
    std::size_t pos = 0;
    while (pos < s.size()) {
        const std::size_t next = s.find('\n', pos);
        EXPECT_EQ(next - pos, width);
        pos = next + 1;
    }
}

TEST(TextTable, RowWidthMismatchIsFatal)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::runtime_error);
}

TEST(TextTable, EmptyHeaderIsFatal)
{
    EXPECT_THROW(TextTable({}), std::runtime_error);
}

TEST(TextTable, NumFormatsDecimals)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(10.0, 0), "10");
}

TEST(Normalize, PaperConvention)
{
    EXPECT_DOUBLE_EQ(normalize(1.56, 1.0), 156.0);
    EXPECT_DOUBLE_EQ(normalize(1.0, 1.0), 100.0);
    EXPECT_DOUBLE_EQ(normalize(5.0, 0.0), 0.0); // guarded
}

TEST(FormatTime, PicksUnits)
{
    EXPECT_EQ(formatTime(500), "500ns");
    EXPECT_EQ(formatTime(2 * kUs), "2.000us");
    EXPECT_EQ(formatTime(30 * kMs), "30.000ms");
    EXPECT_EQ(formatTime(2 * kSec), "2.000s");
}

TEST(TimeConversions, RoundTrip)
{
    EXPECT_DOUBLE_EQ(toSeconds(kSec), 1.0);
    EXPECT_DOUBLE_EQ(toMillis(kMs), 1.0);
    EXPECT_EQ(fromSeconds(1.5), 1500 * kMs);
    EXPECT_EQ(fromMillis(2.5), 2500 * kUs);
    EXPECT_EQ(fromSeconds(-1.0), 0u);
}

TEST(FormatResults, ContainsAllSections)
{
    SystemConfig cfg;
    cfg.cpus = 2;
    cfg.memoryBytes = 16 * kMiB;
    cfg.scheme = Scheme::PIso;
    cfg.seed = 3;
    Simulation sim(cfg);
    const SpuId u = sim.addSpu({.name = "alice"});
    PmakeConfig pm;
    pm.parallelism = 1;
    pm.filesPerWorker = 3;
    sim.addJob(u, makePmake("build", pm));
    const SimResults r = sim.run();

    const std::string s = formatResults(r);
    EXPECT_NE(s.find("simulated time"), std::string::npos);
    EXPECT_NE(s.find("build"), std::string::npos);
    EXPECT_NE(s.find("alice"), std::string::npos);
    EXPECT_NE(s.find("disk0"), std::string::npos);
    EXPECT_NE(s.find("kernel:"), std::string::npos);
    EXPECT_EQ(s.find("INCOMPLETE"), std::string::npos);
}

TEST(FormatResults, FlagsIncompleteRuns)
{
    SystemConfig cfg;
    cfg.cpus = 1;
    cfg.memoryBytes = 16 * kMiB;
    cfg.scheme = Scheme::Smp;
    cfg.maxTime = 50 * kMs;
    cfg.seed = 3;
    Simulation sim(cfg);
    const SpuId u = sim.addSpu({.name = "u"});
    sim.addJob(u, makeScriptJob("long", {ComputeAction{10 * kSec}}));
    const SimResults r = sim.run();
    EXPECT_NE(formatResults(r).find("INCOMPLETE"), std::string::npos);
}

TEST(FormatResultsJson, WellFormedAndComplete)
{
    SystemConfig cfg;
    cfg.cpus = 2;
    cfg.memoryBytes = 16 * kMiB;
    cfg.scheme = Scheme::PIso;
    cfg.seed = 3;
    Simulation sim(cfg);
    const SpuId u = sim.addSpu({.name = "user \"quoted\""});
    sim.addJob(u, makeScriptJob("job\tone", {ComputeAction{10 * kMs}}));
    const SimResults r = sim.run();

    const std::string j = formatResultsJson(r);
    // Structure: balanced braces/brackets, all sections present.
    EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
              std::count(j.begin(), j.end(), '}'));
    EXPECT_EQ(std::count(j.begin(), j.end(), '['),
              std::count(j.begin(), j.end(), ']'));
    EXPECT_NE(j.find("\"simulated_time_s\""), std::string::npos);
    EXPECT_NE(j.find("\"jobs\""), std::string::npos);
    EXPECT_NE(j.find("\"spus\""), std::string::npos);
    EXPECT_NE(j.find("\"disks\""), std::string::npos);
    EXPECT_NE(j.find("\"kernel\""), std::string::npos);
    // Escaping: the quote and tab in the names must be escaped.
    EXPECT_NE(j.find("user \\\"quoted\\\""), std::string::npos);
    EXPECT_NE(j.find("job\\tone"), std::string::npos);
    EXPECT_EQ(j.find('\t'), std::string::npos);
}

TEST(SpuMonitor, RecordsPeriodicSamples)
{
    SystemConfig cfg;
    cfg.cpus = 2;
    cfg.memoryBytes = 16 * kMiB;
    cfg.scheme = Scheme::PIso;
    cfg.seed = 5;
    Simulation sim(cfg);
    const SpuId u = sim.addSpu({.name = "u"});
    ComputeSpec job;
    job.totalCpu = kSec;
    job.wsPages = 200;
    sim.addJob(u, makeComputeJob("hog", job));

    SpuMonitor mon(sim.events(), sim.vm(), sim.scheduler(), {u},
                   100 * kMs);
    mon.start();
    sim.run();

    // ~1 s of run at 100 ms period: about 10 samples.
    EXPECT_GE(mon.samples().size(), 9u);
    EXPECT_EQ(mon.samples().front().when, 0u);
    // The working set shows up in the sampled usage.
    EXPECT_GE(mon.peakUsed(u), 190u);
    // Time strictly increases.
    for (std::size_t i = 1; i < mon.samples().size(); ++i)
        EXPECT_GT(mon.samples()[i].when, mon.samples()[i - 1].when);
}

TEST(SpuMonitor, CpuShareReflectsActivity)
{
    SystemConfig cfg;
    cfg.cpus = 1;
    cfg.memoryBytes = 16 * kMiB;
    cfg.scheme = Scheme::Smp;
    cfg.seed = 5;
    Simulation sim(cfg);
    const SpuId u = sim.addSpu({.name = "u"});
    // Busy for the first ~0.5 s, then nothing.
    sim.addJob(u, makeScriptJob("burst", {ComputeAction{500 * kMs},
                                          SleepAction{kSec}}));
    SpuMonitor mon(sim.events(), sim.vm(), sim.scheduler(), {u},
                   250 * kMs);
    mon.start();
    sim.run();

    ASSERT_GE(mon.samples().size(), 5u);
    EXPECT_GT(mon.cpuShareAt(1, u), 0.9);  // busy interval
    EXPECT_LT(mon.cpuShareAt(4, u), 0.1);  // sleeping interval
    EXPECT_EQ(mon.cpuShareAt(0, u), 0.0);
}

TEST(SpuMonitor, RejectsBadConfig)
{
    SystemConfig cfg;
    cfg.cpus = 1;
    cfg.memoryBytes = 16 * kMiB;
    Simulation sim(cfg);
    const SpuId u = sim.addSpu({.name = "u"});
    EXPECT_THROW(SpuMonitor(sim.events(), sim.vm(), sim.scheduler(),
                            {u}, 0),
                 std::runtime_error);
    EXPECT_THROW(SpuMonitor(sim.events(), sim.vm(), sim.scheduler(),
                            {}, kMs),
                 std::runtime_error);
}
