/**
 * @file
 * Unit tests for CpuScheduler base mechanics shared by all policies:
 * priority decay, slices, accounting, and time-partition ownership.
 */

#include <gtest/gtest.h>

#include "src/os/sched_smp.hh"
#include "tests/sched_test_util.hh"

using namespace piso;
using piso::test::FakeClient;

TEST(SchedulerBase, RecentCpuGrowsWhileRunning)
{
    EventQueue events;
    SmpScheduler sched(events, 1);
    FakeClient client(events, sched);
    sched.start();
    Process *p = client.createProcess(2, 10 * kSec);
    client.startProcess(p);
    events.runAll(500 * kMs);
    // ~50 ticks x 10 ms = 0.5 s of charged usage (minus decay at 1 s
    // boundaries, not yet reached).
    EXPECT_NEAR(p->recentCpu(), 0.5, 0.05);
}

TEST(SchedulerBase, RecentCpuDecaysByHalfEverySecond)
{
    EventQueue events;
    SmpScheduler sched(events, 2); // second CPU: nothing else runs
    FakeClient client(events, sched);
    sched.start();
    Process *busy = client.createProcess(2, 800 * kMs);
    client.startProcess(busy);
    events.runAll(2 * kSec);
    // busy exited at 0.8 s with recentCpu ~0.8; it no longer decays
    // after exit (removed from the registry), so instead watch a
    // process that stays alive:
    Process *idleish = client.createProcess(2, 5 * kSec);
    client.startProcess(idleish);
    events.runAll(3 * kSec);
    const double before = idleish->recentCpu();
    events.runAll(4 * kSec);
    // Ran one more second (+1.0) but decayed by half once: the value
    // stays bounded rather than growing linearly.
    EXPECT_LT(idleish->recentCpu(), before + 1.0);
}

TEST(SchedulerBase, BlockedProcessGainsPriority)
{
    // A process that blocked for a while has lower recentCpu than the
    // hog that kept running, so it wins the next dispatch.
    EventQueue events;
    SmpScheduler sched(events, 1);
    FakeClient client(events, sched);
    sched.start();
    Process *hogA = client.createProcess(2, 10 * kSec, "hogA");
    Process *hogB = client.createProcess(2, 10 * kSec, "hogB");
    client.startProcess(hogA);
    client.startProcess(hogB);
    events.runAll(2 * kSec);
    // Both alternate; their usage stays within one slice of each
    // other thanks to the shared queue and decay.
    const double diff = std::abs(hogA->recentCpu() - hogB->recentCpu());
    EXPECT_LT(diff, 0.1);
}

TEST(SchedulerBase, SliceExpiryRotatesEqualProcesses)
{
    EventQueue events;
    SmpScheduler sched(events, 1);
    FakeClient client(events, sched);
    sched.start();
    Process *a = client.createProcess(2, kSec, "a");
    Process *b = client.createProcess(2, kSec, "b");
    client.startProcess(a);
    client.startProcess(b);
    // After 100 ms, both have run: neither waits longer than ~2
    // slices at a stretch.
    events.runAll(100 * kMs);
    EXPECT_GT(a->cpuTime + (a->state() == ProcState::Running
                                ? events.now() - a->segmentStart
                                : 0),
              20 * kMs);
    EXPECT_GT(b->cpuTime + (b->state() == ProcState::Running
                                ? events.now() - b->segmentStart
                                : 0),
              20 * kMs);
}

TEST(SchedulerBase, SpuCpuTimeIncludesInFlightSegment)
{
    EventQueue events;
    SmpScheduler sched(events, 1);
    FakeClient client(events, sched);
    sched.start();
    Process *p = client.createProcess(7, 10 * kSec);
    client.startProcess(p);
    events.runAll(55 * kMs);
    // Mid-segment: accounting must still see the elapsed portion.
    EXPECT_GE(sched.spuCpuTime(7), 50 * kMs);
}

TEST(SchedulerBase, IdleTimeTracksUnusedCpus)
{
    EventQueue events;
    SmpScheduler sched(events, 2);
    FakeClient client(events, sched);
    sched.start();
    Process *p = client.createProcess(2, 100 * kMs);
    client.startProcess(p);
    client.runToCompletion();
    // One CPU busy 100 ms, the other idle the whole run: idle ~= one
    // full run plus the tail of the busy CPU.
    EXPECT_GE(sched.totalIdleTime(), 100 * kMs);
}

TEST(SchedulerBase, InvalidTransitionsPanic)
{
    EventQueue events;
    SmpScheduler sched(events, 1);
    FakeClient client(events, sched);
    sched.start();
    Process *p = client.createProcess(2, kSec);
    client.startProcess(p);
    EXPECT_DEATH(sched.processReady(p), "processReady on");
    Process *q = client.createProcess(2, kSec);
    EXPECT_DEATH(sched.processBlocked(q), "processBlocked on");
}

TEST(SchedulerBase, TimeShareOwnershipRotates)
{
    EventQueue events;
    SmpScheduler sched(events, 1);
    FakeClient client(events, sched);
    sched.partitionCpus({{2, 0.5}, {3, 0.5}});
    // currentOwner is protected; observe rotation through behaviour:
    // the share period is 100 ms, so over any 200 ms window each SPU
    // owns the CPU about half the time. (Covered functionally in
    // test_sched_quota's FractionalShareTimeMultiplexes; here we only
    // confirm the partition populated the share table.)
    EXPECT_FALSE(sched.cpu(0).timeShares.empty());
    double total = 0.0;
    for (const auto &[spu, frac] : sched.cpu(0).timeShares)
        total += frac;
    EXPECT_NEAR(total, 1.0, 1e-9);
}
