/**
 * @file
 * Randomized BufferCache testing against a reference model.
 *
 * The cache's open-addressed index and intrusive LRU list replaced a
 * std::map + std::list pair; this fuzz harness replays random
 * insert / find+touch / dirty / clean / remove / steal / reown
 * sequences against exactly that simple structure and checks every
 * observable after each step: lookup results, size and dirty counts,
 * per-SPU occupancy, LRU steal order, and forEachDirty's ascending key
 * order (the property flush clustering depends on).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <list>
#include <map>
#include <vector>

#include "src/os/buffer_cache.hh"
#include "src/sim/random.hh"

using namespace piso;

namespace {

/** What the model remembers about one cached block. */
struct ModelBlock
{
    bool valid = false;
    bool dirty = false;
    bool flushing = false;
    SpuId owner = kNoSpu;
};

/** The reference: ordered map for state, list for LRU (front = MRU). */
struct ModelCache
{
    std::map<BlockKey, ModelBlock> blocks;
    std::list<BlockKey> lru;

    void touch(const BlockKey &key)
    {
        lru.remove(key);
        lru.push_front(key);
    }

    void remove(const BlockKey &key)
    {
        blocks.erase(key);
        lru.remove(key);
    }

    std::size_t dirtyCount() const
    {
        std::size_t n = 0;
        for (const auto &[k, b] : blocks)
            n += b.dirty ? 1 : 0;
        return n;
    }

    std::size_t pagesOf(SpuId spu) const
    {
        std::size_t n = 0;
        for (const auto &[k, b] : blocks)
            n += b.owner == spu ? 1 : 0;
        return n;
    }

    /** LRU-most clean/valid/non-flushing block owned by @p victim
     *  (any owner when kNoSpu); nullptr when none qualifies. */
    const BlockKey *stealCandidate(SpuId victim) const
    {
        for (auto it = lru.rbegin(); it != lru.rend(); ++it) {
            const ModelBlock &b = blocks.at(*it);
            if (!b.valid || b.dirty || b.flushing)
                continue;
            if (victim != kNoSpu && b.owner != victim)
                continue;
            return &*it;
        }
        return nullptr;
    }
};

constexpr SpuId kSpus[] = {0, 1, 2, 3, 4};

BlockKey
randomKey(Rng &rng)
{
    // A small key universe so hits, collisions, reinsertion after
    // removal, and probe-chain shifts all happen constantly.
    return BlockKey{static_cast<FileId>(rng.uniformInt(4)),
                    rng.uniformInt(32)};
}

} // namespace

TEST(BufferCacheProperty, FuzzAgainstReferenceModel)
{
    Rng rng(2024);
    for (int trial = 0; trial < 10; ++trial) {
        BufferCache cache;
        ModelCache model;

        for (int op = 0; op < 2000; ++op) {
            const BlockKey key = randomKey(rng);
            CacheBlock *blk = cache.find(key);
            const auto mit = model.blocks.find(key);
            ASSERT_EQ(blk != nullptr, mit != model.blocks.end());
            if (blk) {
                EXPECT_EQ(blk->key, key);
                EXPECT_EQ(blk->valid, mit->second.valid);
                EXPECT_EQ(blk->dirty, mit->second.dirty);
                EXPECT_EQ(blk->flushing, mit->second.flushing);
                EXPECT_EQ(blk->owner, mit->second.owner);
            }

            switch (rng.uniformInt(8)) {
            case 0:
            case 1: { // insert on miss, touch on hit
                if (!blk) {
                    const SpuId owner =
                        kSpus[rng.uniformInt(std::size(kSpus))];
                    const bool valid = rng.chance(0.8);
                    CacheBlock &nb = cache.insert(key, owner, valid);
                    EXPECT_EQ(nb.key, key);
                    EXPECT_EQ(nb.owner, owner);
                    EXPECT_EQ(nb.valid, valid);
                    EXPECT_FALSE(nb.dirty);
                    model.blocks[key] =
                        ModelBlock{valid, false, false, owner};
                    model.lru.push_front(key);
                } else {
                    cache.touch(*blk);
                    model.touch(key);
                }
                break;
            }
            case 2: { // dirty a valid block
                if (blk && blk->valid) {
                    cache.markDirty(*blk);
                    model.blocks[key].dirty = true;
                }
                break;
            }
            case 3: { // clean (also ends any flush)
                if (blk) {
                    cache.markClean(*blk);
                    model.blocks[key].dirty = false;
                    model.blocks[key].flushing = false;
                }
                break;
            }
            case 4: { // start or finish a flush; validate reads
                if (blk && rng.chance(0.5)) {
                    blk->flushing = !blk->flushing;
                    model.blocks[key].flushing = blk->flushing;
                } else if (blk && !blk->valid) {
                    cache.markValid(*blk);
                    model.blocks[key].valid = true;
                }
                break;
            }
            case 5: { // remove
                if (blk) {
                    cache.remove(key);
                    model.remove(key);
                }
                break;
            }
            case 6: { // reown (shared-page reclassification)
                if (blk) {
                    const SpuId owner =
                        kSpus[rng.uniformInt(std::size(kSpus))];
                    cache.setOwner(*blk, owner);
                    model.blocks[key].owner = owner;
                }
                break;
            }
            default: { // stealClean, sometimes victim-filtered
                const SpuId victim =
                    rng.chance(0.5)
                        ? kNoSpu
                        : kSpus[rng.uniformInt(std::size(kSpus))];
                const BlockKey *want = model.stealCandidate(victim);
                SpuId owner = kNoSpu;
                const bool stole = cache.stealClean(victim, owner);
                ASSERT_EQ(stole, want != nullptr);
                if (stole) {
                    EXPECT_EQ(owner, model.blocks.at(*want).owner);
                    EXPECT_EQ(cache.find(*want), nullptr);
                    model.remove(*want);
                }
                break;
            }
            }

            // Aggregate observables agree after every operation.
            ASSERT_EQ(cache.size(), model.blocks.size());
            ASSERT_EQ(cache.dirtyCount(), model.dirtyCount());
            for (SpuId spu : kSpus)
                ASSERT_EQ(cache.pagesOf(spu), model.pagesOf(spu));

            // forEachDirty: ascending key order over exactly the
            // valid, dirty, non-flushing set.
            if ((op & 63) == 0) {
                std::vector<BlockKey> got;
                cache.forEachDirty([&](CacheBlock &b) {
                    EXPECT_TRUE(b.valid && b.dirty && !b.flushing);
                    got.push_back(b.key);
                });
                std::vector<BlockKey> want;
                for (const auto &[k, b] : model.blocks) {
                    if (b.valid && b.dirty && !b.flushing)
                        want.push_back(k);  // map order == ascending
                }
                ASSERT_EQ(got, want);
            }
        }

        // Drain with steals: eviction must proceed in exact LRU order
        // over the clean blocks, then stall on the dirty remainder.
        for (;;) {
            const BlockKey *want = model.stealCandidate(kNoSpu);
            SpuId owner = kNoSpu;
            const bool stole = cache.stealClean(kNoSpu, owner);
            ASSERT_EQ(stole, want != nullptr);
            if (!stole)
                break;
            model.remove(*want);
        }
        ASSERT_EQ(cache.size(), model.blocks.size());
    }
}

TEST(BufferCacheProperty, StealOrderIsExactLru)
{
    // Deterministic check: insert A..E, touch two of them, steal
    // everything — the eviction order must be the reverse touch order.
    BufferCache cache;
    std::vector<BlockKey> keys;
    for (std::uint64_t i = 0; i < 5; ++i) {
        keys.push_back(BlockKey{1, i});
        cache.insert(keys.back(), 0, true);
    }
    cache.touch(*cache.find(keys[1]));  // LRU now: 0,2,3,4,1 (old->new)
    cache.touch(*cache.find(keys[0]));  // LRU now: 2,3,4,1,0

    const std::uint64_t wantOrder[] = {2, 3, 4, 1, 0};
    for (std::uint64_t want : wantOrder) {
        SpuId owner = kNoSpu;
        ASSERT_TRUE(cache.stealClean(kNoSpu, owner));
        EXPECT_EQ(cache.find(BlockKey{1, want}), nullptr)
            << "expected block " << want << " stolen";
        // All later keys must still be resident.
        std::size_t resident = 0;
        for (const BlockKey &k : keys)
            resident += cache.find(k) != nullptr ? 1 : 0;
        EXPECT_EQ(resident, cache.size());
    }
    EXPECT_EQ(cache.size(), 0u);
}

TEST(BufferCacheProperty, PerSpuOccupancyTracksOwnershipChanges)
{
    BufferCache cache;
    for (std::uint64_t i = 0; i < 6; ++i)
        cache.insert(BlockKey{2, i}, static_cast<SpuId>(i % 2), true);
    EXPECT_EQ(cache.pagesOf(0), 3u);
    EXPECT_EQ(cache.pagesOf(1), 3u);
    EXPECT_EQ(cache.pagesOf(7), 0u);  // never-seen SPU

    cache.setOwner(*cache.find(BlockKey{2, 0}), 1);
    EXPECT_EQ(cache.pagesOf(0), 2u);
    EXPECT_EQ(cache.pagesOf(1), 4u);

    // Victim-filtered steal only ever takes the victim's blocks.
    SpuId owner = kNoSpu;
    ASSERT_TRUE(cache.stealClean(0, owner));
    EXPECT_EQ(owner, 0);
    EXPECT_EQ(cache.pagesOf(0), 1u);
    EXPECT_EQ(cache.pagesOf(1), 4u);
}
