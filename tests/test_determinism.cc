/**
 * @file
 * Determinism regression battery for the parallel sweep engine.
 *
 * The contract (docs/sweeps.md): a simulation is a pure function of
 * its spec and seed, and a sweep's JSONL output is a pure function of
 * its plan — never of the worker count or thread scheduling. These
 * tests pin that contract so a future "optimisation" that leaks
 * shared mutable state into the sim core fails loudly here (and under
 * TSan in CI) rather than corrupting published experiment data.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/config/workload_spec.hh"
#include "src/exp/runner.hh"
#include "src/metrics/report.hh"
#include "src/piso.hh"
#include "src/sim/trace.hh"

using namespace piso;

namespace {

const char *kSpec = R"(
machine cpus=4 memory_mb=32 disks=2 scheme=piso seed=5
spu alice share=1 disk=0
spu bob share=2 disk=1
job alice pmake   name=build workers=2 files=6
job bob   compute name=hog cpu_ms=2000 ws_pages=300
job bob   copy    name=cp bytes_kb=2048
)";

/** A small 3-scheme x 2-seed plan used by the jobs-invariance tests. */
exp::ExperimentPlan
smallPlan()
{
    exp::ExperimentPlan plan;
    plan.base = parseWorkloadSpec(kSpec);
    plan.axes.push_back(exp::parseGridAxis("scheme=smp,quota,piso"));
    plan.seeds = {1, 2};
    return plan;
}

std::string
sweepJsonl(const exp::ExperimentPlan &plan, int jobs)
{
    return exp::formatSweepJsonl(exp::runPlan(plan, {.jobs = jobs}));
}

} // namespace

// ---------------------------------------------------------------------
// Same spec + seed twice -> byte-identical JSON
// ---------------------------------------------------------------------

TEST(Determinism, RepeatedRunIsByteIdentical)
{
    const WorkloadSpec spec = parseWorkloadSpec(kSpec);
    const std::string a = formatResultsJson(runWorkloadSpec(spec));
    const std::string b = formatResultsJson(runWorkloadSpec(spec));
    EXPECT_EQ(a, b);
}

TEST(Determinism, SeedChangesTheRun)
{
    WorkloadSpec spec = parseWorkloadSpec(kSpec);
    const std::string a = formatResultsJson(runWorkloadSpec(spec));
    spec.config.seed = 6;
    const std::string b = formatResultsJson(runWorkloadSpec(spec));
    EXPECT_NE(a, b);
}

// ---------------------------------------------------------------------
// Sweep output is independent of the worker count
// ---------------------------------------------------------------------

TEST(Determinism, SweepJsonlInvariantUnderJobs)
{
    const exp::ExperimentPlan plan = smallPlan();
    const std::string serial = sweepJsonl(plan, 1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, sweepJsonl(plan, 2));
    EXPECT_EQ(serial, sweepJsonl(plan, 8));
}

TEST(Determinism, TaskOrderIsExpansionOrder)
{
    const exp::ExperimentPlan plan = smallPlan();
    const exp::SweepOutcome out = exp::runPlan(plan, {.jobs = 8});
    ASSERT_EQ(out.runs.size(), 6u); // 3 schemes x 2 seeds
    for (std::size_t i = 0; i < out.runs.size(); ++i)
        EXPECT_EQ(out.runs[i].task.index, i);
    // Seeds vary fastest (innermost).
    EXPECT_EQ(out.runs[0].task.seed, 1u);
    EXPECT_EQ(out.runs[1].task.seed, 2u);
    EXPECT_EQ(out.runs[0].task.params.front().second, "smp");
    EXPECT_EQ(out.runs[2].task.params.front().second, "quota");
    EXPECT_EQ(out.runs[4].task.params.front().second, "piso");
}

TEST(Determinism, SummaryTableInvariantUnderJobs)
{
    const exp::ExperimentPlan plan = smallPlan();
    const exp::SweepOutcome a = exp::runPlan(plan, {.jobs = 1});
    const exp::SweepOutcome b = exp::runPlan(plan, {.jobs = 4});
    EXPECT_EQ(exp::formatSweepSummary(a), exp::formatSweepSummary(b));
}

// ---------------------------------------------------------------------
// Warm start is a pure wall-clock optimisation: a sweep whose grid
// points share a checkpointable prefix produces byte-identical JSONL
// warm or cold, serial or parallel (docs/checkpoint.md).
// ---------------------------------------------------------------------

namespace {

/** A fault-axis plan: one digest, eight late-fault variants, the
 *  shape the warm-start engine folds into a single template group. */
exp::ExperimentPlan
faultAxisPlan()
{
    exp::ExperimentPlan plan;
    plan.base = parseWorkloadSpec(kSpec);
    plan.axes.push_back(exp::parseGridAxis(
        "fault_disk_slow=none,1.5:0.3:0:4,1.5:0.3:0:8,1.8:0.3:1:4"));
    plan.axes.push_back(
        exp::parseGridAxis("fault_disk_error=none,1.6:0.2:0:0.5"));
    return plan;
}

std::string
sweepJsonlWarm(const exp::ExperimentPlan &plan, int jobs, bool warm)
{
    return exp::formatSweepJsonl(
        exp::runPlan(plan, {.jobs = jobs, .warmStart = warm}));
}

} // namespace

TEST(Determinism, WarmStartSweepMatchesColdAtAnyJobs)
{
    const exp::ExperimentPlan plan = faultAxisPlan();
    const std::string coldSerial = sweepJsonlWarm(plan, 1, false);
    EXPECT_FALSE(coldSerial.empty());
    // No hidden failure records: every grid point must actually run.
    EXPECT_EQ(coldSerial.find("\"status\""), std::string::npos);

    EXPECT_EQ(coldSerial, sweepJsonlWarm(plan, 1, true));
    EXPECT_EQ(coldSerial, sweepJsonlWarm(plan, 4, true));
    EXPECT_EQ(coldSerial, sweepJsonlWarm(plan, 8, true));
    EXPECT_EQ(coldSerial, sweepJsonlWarm(plan, 4, false));
}

TEST(Determinism, WarmStartHandlesMixedDigestGroups)
{
    // A scheme axis on top of the fault axis: three digest groups,
    // each warm-started independently; bytes still match cold/serial.
    exp::ExperimentPlan plan = faultAxisPlan();
    plan.axes.insert(plan.axes.begin(),
                     exp::parseGridAxis("scheme=smp,quota,piso"));
    const std::string coldSerial = sweepJsonlWarm(plan, 1, false);
    EXPECT_EQ(coldSerial, sweepJsonlWarm(plan, 4, true));
}

TEST(Determinism, WarmStartOnSchemeOnlyPlanIsInert)
{
    // Singleton digest groups (nothing shares a prefix): warm start
    // must quietly change nothing.
    const exp::ExperimentPlan plan = smallPlan();
    EXPECT_EQ(sweepJsonlWarm(plan, 2, true),
              sweepJsonlWarm(plan, 2, false));
}

// ---------------------------------------------------------------------
// Simulator perf counters (events, wall-clock) are host-side noise and
// must never reach deterministic outputs: the JSONL stream and the
// default-format JSON/summary stay perf-free, perf is strictly opt-in.
// ---------------------------------------------------------------------

TEST(Determinism, PerfCountersStayOutOfJsonl)
{
    const exp::ExperimentPlan plan = smallPlan();
    const std::string jsonl = sweepJsonl(plan, 4);
    EXPECT_EQ(jsonl.find("\"perf\""), std::string::npos);
    EXPECT_EQ(jsonl.find("wall_ms"), std::string::npos);
    EXPECT_EQ(jsonl.find("events_per_sec"), std::string::npos);
}

TEST(Determinism, PerfJsonIsOptIn)
{
    const WorkloadSpec spec = parseWorkloadSpec(kSpec);
    const SimResults r = runWorkloadSpec(spec);

    const std::string plain = formatResultsJson(r);
    EXPECT_EQ(plain.find("\"perf\""), std::string::npos);

    const std::string withPerf = formatResultsJson(r, true);
    EXPECT_NE(withPerf.find("\"perf\""), std::string::npos);
    EXPECT_NE(withPerf.find("\"wall_ms\""), std::string::npos);
    EXPECT_NE(withPerf.find("\"events_per_sec\""), std::string::npos);

    // The counters themselves are real: the run executed events and
    // took measurable time.
    EXPECT_GT(r.perf.events, 0u);
    EXPECT_GT(r.perf.wallSec, 0.0);
    EXPECT_GT(r.perf.eventsPerSec(), 0.0);
}

TEST(Determinism, SummaryPerfColumnsAreOptIn)
{
    const exp::ExperimentPlan plan = smallPlan();
    const exp::SweepOutcome out = exp::runPlan(plan, {.jobs = 2});
    EXPECT_EQ(exp::formatSweepSummary(out).find("M ev/s"),
              std::string::npos);
    EXPECT_NE(exp::formatSweepSummary(out, true).find("M ev/s"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Rng::fork() stream independence (the property the parallel engine
// leans on: one task's draw count cannot perturb a sibling's stream)
// ---------------------------------------------------------------------

TEST(Determinism, ForkStreamsInsensitiveToSiblingDraws)
{
    Rng parent1(42);
    Rng a1 = parent1.fork();
    for (int i = 0; i < 1000; ++i)
        a1.next(); // drain the first child heavily
    Rng b1 = parent1.fork();

    Rng parent2(42);
    Rng a2 = parent2.fork();
    (void)a2; // never drawn from
    Rng b2 = parent2.fork();

    for (int i = 0; i < 256; ++i)
        EXPECT_EQ(b1.next(), b2.next()) << "draw " << i;
}

// ---------------------------------------------------------------------
// Per-thread trace/log contexts do not bleed across threads
// ---------------------------------------------------------------------

TEST(Determinism, TraceContextIsPerThread)
{
    TraceContext loud;
    loud.mask = TraceCat::All;
    TraceContextScope scope(loud);
    ASSERT_TRUE(traceActive(TraceCat::Sched));

    // A freshly spawned thread starts from the quiet default context,
    // not this thread's installed one.
    bool childActive = true;
    std::thread([&] { childActive = traceActive(TraceCat::Sched); })
        .join();
    EXPECT_FALSE(childActive);

    // And a context installed in a child is invisible here.
    std::thread([] {
        TraceContext ctx;
        ctx.mask = TraceCat::Disk;
        TraceContextScope inner(ctx);
        EXPECT_TRUE(traceActive(TraceCat::Disk));
    }).join();
    EXPECT_TRUE(traceActive(TraceCat::Sched));
    EXPECT_EQ(traceContext().mask, TraceCat::All);
}

TEST(Determinism, ParallelTraceCapturesDoNotInterleave)
{
    // Two threads run traced simulations concurrently, each capturing
    // into its own sink; every captured line must belong to the
    // capturing thread's simulation.
    auto traced = [](const char *spuName, std::vector<std::string> *out) {
        TraceContext ctx;
        ctx.mask = TraceCat::Sched;
        ctx.sink = [out](Time, TraceCat, const std::string &msg) {
            out->push_back(msg);
        };
        TraceContextScope scope(ctx);

        SystemConfig cfg;
        cfg.cpus = 2;
        cfg.memoryBytes = 16 * kMiB;
        cfg.diskCount = 1;
        cfg.scheme = Scheme::PIso;
        cfg.seed = 3;
        Simulation sim(cfg);
        const SpuId s = sim.addSpu({.name = spuName, .homeDisk = 0});
        ComputeSpec spec;
        spec.totalCpu = 200 * kMs;
        sim.addJob(s, makeComputeJob(std::string(spuName) + "-job", spec));
        sim.run();
    };

    std::vector<std::string> left, right;
    std::thread t1(traced, "left", &left);
    std::thread t2(traced, "right", &right);
    t1.join();
    t2.join();

    ASSERT_FALSE(left.empty());
    ASSERT_FALSE(right.empty());
    for (const std::string &msg : left)
        EXPECT_EQ(msg.find("right"), std::string::npos) << msg;
    for (const std::string &msg : right)
        EXPECT_EQ(msg.find("left"), std::string::npos) << msg;
}

// ---------------------------------------------------------------------
// The engine surfaces worker exceptions deterministically
// ---------------------------------------------------------------------

TEST(Determinism, UnknownGridKeyThrows)
{
    EXPECT_THROW(exp::parseGridAxis("nonsense"), std::runtime_error);
    SystemConfig cfg;
    EXPECT_THROW(exp::applyGridKey(cfg, "warp_factor", "9"),
                 std::runtime_error);
    EXPECT_THROW(exp::applyGridKey(cfg, "cpus", "many"),
                 std::runtime_error);
}
