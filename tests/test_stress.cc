/**
 * @file
 * Full-system stress: every workload kind, every resource, every
 * scheme in one machine — the integration safety net. Asserts global
 * invariants rather than specific numbers.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "src/piso.hh"

using namespace piso;

namespace {

SimResults
runKitchenSink(Scheme scheme, std::uint64_t seed, Simulation **simOut)
{
    SystemConfig cfg;
    cfg.cpus = 6;
    cfg.memoryBytes = 40 * kMiB;
    cfg.diskCount = 3;
    cfg.scheme = scheme;
    cfg.networkBitsPerSec = 50e6;
    cfg.seed = seed;
    cfg.maxTime = 300 * kSec;

    static std::unique_ptr<Simulation> sim;
    sim = std::make_unique<Simulation>(cfg);
    if (simOut)
        *simOut = sim.get();

    const SpuId dev = sim->addSpu({.name = "dev", .homeDisk = 0});
    const SpuId db = sim->addSpu(
        {.name = "db", .share = 2.0, .homeDisk = 1});
    const SpuId sci = sim->addSpu({.name = "sci", .homeDisk = 2});

    const int inode = sim->kernel().createLock(true);

    PmakeConfig pm;
    pm.parallelism = 2;
    pm.filesPerWorker = 6;
    pm.inodeLock = inode;
    sim->addJob(dev, makePmake("build", pm));
    FileCopyConfig cc;
    cc.bytes = 6 * kMiB;
    sim->addJob(dev, makeFileCopy("backup", cc));

    OltpConfig oc;
    oc.servers = 3;
    oc.transactionsPerServer = 50;
    oc.indexLock = sim->kernel().createLock(true);
    sim->addJob(db, makeOltp("oltp", oc));
    WebServerConfig wc;
    wc.workers = 2;
    wc.requestsPerWorker = 60;
    sim->addJob(db, makeWebServer("www", wc));

    OceanConfig ocn;
    ocn.processes = 3;
    ocn.iterations = 30;
    ocn.grain = 20 * kMs;
    sim->addJob(sci, makeOcean("ocean", ocn));
    ComputeSpec hog;
    hog.totalCpu = 2 * kSec;
    hog.wsPages = 1500; // memory pressure in sci's third
    sim->addJob(sci, makeComputeJob("bighog", hog));

    return sim->run();
}

} // namespace

class KitchenSink
    : public ::testing::TestWithParam<std::tuple<Scheme, std::uint64_t>>
{
};

TEST_P(KitchenSink, EverythingCompletesAndConserves)
{
    const auto [scheme, seed] = GetParam();
    Simulation *sim = nullptr;
    const SimResults r = runKitchenSink(scheme, seed, &sim);
    ASSERT_TRUE(r.completed) << "jobs stuck under "
                             << schemeName(scheme);

    // Every job finished with a positive response.
    for (const JobResult &j : r.jobs) {
        EXPECT_TRUE(j.completed) << j.name;
        EXPECT_GT(j.response(), 0u) << j.name;
    }

    // Memory fully conserved at the end: only the pinned kernel pages
    // and any surviving cache pages remain charged.
    std::uint64_t used = 0;
    for (SpuId spu : sim->vm().spus())
        used += sim->vm().levels(spu).used;
    EXPECT_EQ(used + sim->vm().freePages(), sim->vm().totalPages());

    // Disk accounting conserved per device.
    for (const DiskResult &d : r.disks) {
        std::uint64_t perSpu = 0;
        for (const auto &[spu, sd] : d.perSpu)
            perSpu += sd.sectors;
        EXPECT_EQ(perSpu, d.sectors) << d.name;
    }

    // CPU time within machine capacity.
    Time cpu = 0;
    for (const auto &[id, s] : r.spus)
        cpu += s.cpuTime;
    EXPECT_LE(cpu, static_cast<Time>(6) * r.simulatedTime);

    // All the subsystems actually fired.
    EXPECT_GT(r.kernel.zeroFills.value(), 0u);
    EXPECT_GT(r.kernel.readRequests.value(), 0u);
    EXPECT_GT(r.kernel.syncWriteRequests.value(), 0u);
    EXPECT_GT(r.kernel.bdflushRequests.value(), 0u);
    EXPECT_GT(sim->network()->totalMessages(), 0u);
    EXPECT_EQ(sim->kernel().cache().dirtyCount(), 0u); // drained
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSeeds, KitchenSink,
    ::testing::Combine(::testing::Values(Scheme::Smp, Scheme::Quota,
                                         Scheme::PIso),
                       ::testing::Values(1u, 7u, 42u)),
    [](const auto &info) {
        return std::string(schemeName(std::get<0>(info.param))) +
               "_seed" + std::to_string(std::get<1>(info.param));
    });

TEST(KitchenSinkDeterminism, SameSeedSameOutcome)
{
    const SimResults a = runKitchenSink(Scheme::PIso, 99, nullptr);
    const SimResults b = runKitchenSink(Scheme::PIso, 99, nullptr);
    EXPECT_EQ(a.simulatedTime, b.simulatedTime);
    for (std::size_t i = 0; i < a.jobs.size(); ++i)
        EXPECT_EQ(a.jobs[i].end, b.jobs[i].end) << a.jobs[i].name;
}
