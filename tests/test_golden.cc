/**
 * @file
 * Golden-file regression fixtures for the paper's figure/table
 * workloads (Section 4). Each fixture runs one seed of a figure
 * workload under one uniform scheme and byte-compares the JSON
 * results against tests/golden/<fixture>.json.
 *
 * The goldens pin the *numbers*, not just the shapes the bench
 * programs assert, so an accidental behaviour change anywhere in the
 * sim core (scheduler tie-break, RNG draw order, disk model rounding)
 * is caught at ctest time instead of surfacing as a silently shifted
 * figure.
 *
 * Every fixture is also replayed through the checkpoint layer: the
 * run is checkpointed at its first quiescent boundary (t ~= 0), a
 * fresh Simulation is populated identically, restored, and run to
 * completion — and must reproduce the golden bytes exactly
 * (docs/checkpoint.md). That pins serialisation coverage to the same
 * fixtures that pin the numbers: a subsystem whose state is dropped
 * by the image shows up here as a golden mismatch.
 *
 * To regenerate after an intentional change:
 *     PISO_UPDATE_GOLDEN=1 ctest -R test_golden
 * then review the diff like any other source change.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>

#include "bench/pmake8.hh"
#include "src/metrics/report.hh"
#include "src/piso.hh"

using namespace piso;

namespace {

#ifndef PISO_GOLDEN_DIR
#error "PISO_GOLDEN_DIR must point at tests/golden"
#endif

constexpr std::uint64_t kGoldenSeed = 1;

/** One figure/table machine: the config plus the setup calls, kept
 *  separate so the restore path can replay the setup on a second
 *  Simulation before rebinding the checkpointed state onto it. */
struct Fixture
{
    SystemConfig cfg;
    std::function<void(Simulation &)> populate;
};

/** Figure 2 machine: Pmake8, unbalanced (SPUs 5-8 run two jobs). */
Fixture
fig2(Scheme scheme)
{
    return {bench::pmake8Config(scheme, kGoldenSeed),
            [](Simulation &sim) {
                bench::populatePmake8(sim, /*unbalanced=*/true);
            }};
}

/** Figure 5 machine: Ocean vs six engineering hogs (CPU dimension). */
Fixture
fig5(Scheme scheme)
{
    SystemConfig cfg;
    cfg.cpus = 8;
    cfg.memoryBytes = 64 * kMiB;
    cfg.diskCount = 2;
    cfg.scheme = scheme;
    cfg.seed = kGoldenSeed;

    return {cfg, [](Simulation &sim) {
                const SpuId spu1 =
                    sim.addSpu({.name = "ocean", .homeDisk = 0});
                const SpuId spu2 =
                    sim.addSpu({.name = "eng", .homeDisk = 1});

                OceanConfig ocean;
                ocean.processes = 4;
                ocean.iterations = 80;
                ocean.grain = 100 * kMs;
                ocean.wsPagesPerProc = 700;
                sim.addJob(spu1, makeOcean("Ocean", ocean));

                for (int i = 0; i < 3; ++i) {
                    sim.addJob(spu2,
                               makeFlashlite("Flashlite" +
                                                 std::to_string(i),
                                             12 * kSec, 500));
                    sim.addJob(spu2,
                               makeVcs("VCS" + std::to_string(i),
                                       14 * kSec, 700));
                }
            }};
}

/** Figure 7 machine: two pmakes on a small machine, unbalanced. */
Fixture
fig7(Scheme scheme)
{
    SystemConfig cfg;
    cfg.cpus = 4;
    cfg.memoryBytes = 16 * kMiB;
    cfg.diskCount = 2;
    cfg.scheme = scheme;
    cfg.seed = kGoldenSeed;

    return {cfg, [](Simulation &sim) {
                const SpuId spu1 =
                    sim.addSpu({.name = "user1", .homeDisk = 0});
                const SpuId spu2 =
                    sim.addSpu({.name = "user2", .homeDisk = 1});

                PmakeConfig pmake;
                pmake.parallelism = 4;
                pmake.filesPerWorker = 5;
                pmake.compileCpu = 240 * kMs;
                pmake.workerWsPages = 340;
                pmake.touchInterval = 10 * kMs;
                pmake.inodeLock = sim.kernel().createLock(true);

                sim.addJob(spu1, makePmake("pm-u1-j0", pmake));
                sim.addJob(spu2, makePmake("pm-u2-j0", pmake));
                sim.addJob(spu2, makePmake("pm-u2-j1", pmake));
            }};
}

/** Table 3 machine: pmake vs 20 MB copy on one shared disk. The
 *  scheme is fixed (PIso) and the disk policy varies per fixture, so
 *  "smp"/"quota"/"piso" map onto Pos/Iso/PIso here. */
Fixture
table3(DiskPolicy policy)
{
    SystemConfig cfg;
    cfg.cpus = 2;
    cfg.memoryBytes = 44 * kMiB;
    cfg.diskCount = 1;
    cfg.scheme = Scheme::PIso;
    cfg.diskPolicy = policy;
    cfg.diskParams.seekScale = 0.5;
    cfg.bwThresholdSectors = 1024.0;
    cfg.seed = kGoldenSeed;

    return {cfg, [](Simulation &sim) {
                const SpuId pmk =
                    sim.addSpu({.name = "pmk", .homeDisk = 0});
                const SpuId cpy =
                    sim.addSpu({.name = "cpy", .homeDisk = 0});

                PmakeConfig pm;
                pm.parallelism = 2;
                pm.filesPerWorker = 40;
                pm.compileCpu = 25 * kMs;
                pm.workerWsPages = 200;
                sim.addJob(pmk, makePmake("pmake", pm));

                FileCopyConfig cc;
                cc.bytes = 20 * kMiB;
                sim.addJob(cpy, makeFileCopy("copy", cc));
            }};
}

SimResults
runCold(const Fixture &fx)
{
    Simulation sim(fx.cfg);
    fx.populate(sim);
    return sim.run();
}

/** Checkpoint @p fx at its first quiescent boundary, replay the setup
 *  on a fresh Simulation, restore the image onto it, and run that
 *  restored instance to completion. */
SimResults
runRestored(const Fixture &fx)
{
    std::string image;
    SystemConfig ckpt = fx.cfg;
    ckpt.checkpointAt = 1;  // first quiescent boundary after t=0
    ckpt.checkpointStop = true;
    ckpt.checkpointSink = [&image](std::string img) {
        image = std::move(img);
    };
    {
        Simulation sim(ckpt);
        fx.populate(sim);
        sim.run();
    }

    Simulation sim(fx.cfg);
    fx.populate(sim);
    std::istringstream in(image);
    sim.restore(in);
    return sim.run();
}

std::string
goldenPath(const std::string &fixture)
{
    return std::string(PISO_GOLDEN_DIR) + "/" + fixture + ".json";
}

void
checkGolden(const std::string &fixture, const Fixture &fx,
            bool quiesces = true)
{
    const std::string current = formatResultsJson(runCold(fx));
    const std::string path = goldenPath(fixture);

    if (std::getenv("PISO_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << current;
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "missing golden " << path
        << " — regenerate with PISO_UPDATE_GOLDEN=1";
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), current)
        << "results drifted from " << path
        << "; if the change is intentional, regenerate with "
           "PISO_UPDATE_GOLDEN=1 and review the diff";

    if (!quiesces) {
        // The documented counter-example (docs/checkpoint.md): a
        // blind-fair disk under a long copy is busy from the first
        // request to the end of the run, so no quiescent boundary
        // ever exists and the checkpoint request must fail loudly
        // rather than silently produce nothing.
        EXPECT_THROW(runRestored(fx), InvariantError);
        return;
    }
    EXPECT_EQ(current, formatResultsJson(runRestored(fx)))
        << "checkpoint/restore replay of " << fixture
        << " diverged from the cold run — some subsystem's state is "
           "not round-tripping through the image (docs/checkpoint.md)";
}

} // namespace

// One fixture per (workload, scheme): 12 golden files, each checked
// cold and via a t~=0 checkpoint/restore replay.

TEST(Golden, Fig2Smp) { checkGolden("fig2_smp", fig2(Scheme::Smp)); }
TEST(Golden, Fig2Quota)
{
    checkGolden("fig2_quota", fig2(Scheme::Quota));
}
TEST(Golden, Fig2PIso)
{
    checkGolden("fig2_piso", fig2(Scheme::PIso));
}

TEST(Golden, Fig5Smp) { checkGolden("fig5_smp", fig5(Scheme::Smp)); }
TEST(Golden, Fig5Quota)
{
    checkGolden("fig5_quota", fig5(Scheme::Quota));
}
TEST(Golden, Fig5PIso)
{
    checkGolden("fig5_piso", fig5(Scheme::PIso));
}

TEST(Golden, Fig7Smp) { checkGolden("fig7_smp", fig7(Scheme::Smp)); }
TEST(Golden, Fig7Quota)
{
    checkGolden("fig7_quota", fig7(Scheme::Quota));
}
TEST(Golden, Fig7PIso)
{
    checkGolden("fig7_piso", fig7(Scheme::PIso));
}

TEST(Golden, Table3Pos)
{
    checkGolden("table3_pos", table3(DiskPolicy::HeadPosition));
}
TEST(Golden, Table3Iso)
{
    // quiesces=false: blind-fair keeps the shared disk saturated for
    // the whole run, so this fixture has no checkpoint boundary.
    checkGolden("table3_iso", table3(DiskPolicy::BlindFair),
                /*quiesces=*/false);
}
TEST(Golden, Table3PIso)
{
    checkGolden("table3_piso", table3(DiskPolicy::FairPosition));
}
