/**
 * @file
 * Unit tests for the HP 97560 disk service-time model.
 */

#include <gtest/gtest.h>

#include "src/machine/disk_model.hh"

using namespace piso;

namespace {

DiskModel
defaultModel()
{
    return DiskModel(DiskParams{});
}

} // namespace

TEST(DiskModel, GeometryMatchesHp97560)
{
    DiskModel m = defaultModel();
    // 1962 cyl x 19 surfaces x 72 sectors = 2,684,016 sectors (~1.3 GB)
    EXPECT_EQ(m.totalSectors(), 1962ull * 19 * 72);
}

TEST(DiskModel, CylinderOfFirstAndLastSector)
{
    DiskModel m = defaultModel();
    EXPECT_EQ(m.cylinderOf(0), 0u);
    EXPECT_EQ(m.cylinderOf(m.totalSectors() - 1), 1961u);
}

TEST(DiskModel, ZeroSeekWithinCylinder)
{
    DiskModel m = defaultModel();
    EXPECT_EQ(m.seekTime(100, 100), 0u);
}

TEST(DiskModel, SeekIsSymmetric)
{
    DiskModel m = defaultModel();
    EXPECT_EQ(m.seekTime(10, 400), m.seekTime(400, 10));
}

TEST(DiskModel, SeekMonotonicInDistance)
{
    DiskModel m = defaultModel();
    Time prev = 0;
    for (std::uint32_t d = 1; d < 1900; d += 37) {
        const Time t = m.seekTime(0, d);
        EXPECT_GE(t, prev) << "distance " << d;
        prev = t;
    }
}

TEST(DiskModel, ShortSeekMatchesCurve)
{
    DiskModel m = defaultModel();
    // d = 100: 3.24 + 0.400 * 10 = 7.24 ms
    EXPECT_NEAR(toMillis(m.seekTime(0, 100)), 7.24, 0.01);
}

TEST(DiskModel, LongSeekMatchesCurve)
{
    DiskModel m = defaultModel();
    // d = 1000: 8.00 + 0.008 * 1000 = 16.0 ms
    EXPECT_NEAR(toMillis(m.seekTime(0, 1000)), 16.0, 0.01);
}

TEST(DiskModel, SeekScaleHalvesSeeks)
{
    DiskParams p;
    p.seekScale = 0.5;
    DiskModel half(p);
    DiskModel full = defaultModel();
    EXPECT_NEAR(toMillis(half.seekTime(0, 500)),
                toMillis(full.seekTime(0, 500)) / 2.0, 0.01);
}

TEST(DiskModel, RotationTimeFromRpm)
{
    DiskModel m = defaultModel();
    // 4002 RPM -> 14.99 ms per revolution.
    EXPECT_NEAR(toMillis(m.rotationTime()), 60000.0 / 4002.0, 0.01);
}

TEST(DiskModel, RotationalLatencyBounded)
{
    DiskModel m = defaultModel();
    Rng rng(3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(m.rotationalLatency(rng), m.rotationTime());
}

TEST(DiskModel, TransferTimeLinearInSectors)
{
    DiskModel m = defaultModel();
    const Time one = m.transferTime(1);
    // 72 sectors = one track = one rotation of media time.
    EXPECT_NEAR(toMillis(m.transferTime(72)), toMillis(m.rotationTime()),
                0.02);
    EXPECT_GT(one, 0u);
    EXPECT_EQ(m.transferTime(0), 0u);
}

TEST(DiskModel, TransferAddsHeadSwitchAcrossTracks)
{
    DiskModel m = defaultModel();
    // 73 sectors crosses one track boundary: media + one head switch.
    const Time t73 = m.transferTime(73);
    const Time t72 = m.transferTime(72);
    EXPECT_NEAR(toMillis(t73 - t72),
                toMillis(m.transferTime(1)) + 1.6, 0.02);
}

TEST(DiskModel, ServiceBreakdownSums)
{
    DiskModel m = defaultModel();
    Rng rng(5);
    const DiskServiceTime st = m.service(0, 500000, 16, rng);
    EXPECT_EQ(st.total(),
              st.seek + st.rotational + st.transfer + st.overhead);
    EXPECT_GT(st.seek, 0u);
    EXPECT_NEAR(toMillis(st.overhead), 1.1, 0.001);
}

TEST(DiskModel, SequentialContinuationSkipsRotation)
{
    DiskModel m = defaultModel();
    Rng rng(7);
    // Head sits exactly where the request starts: no seek, no
    // rotational delay (streaming).
    const DiskServiceTime st = m.service(1000, 1000, 8, rng);
    EXPECT_EQ(st.seek, 0u);
    EXPECT_EQ(st.rotational, 0u);
}

TEST(DiskModel, SameCylinderDifferentSectorPaysRotation)
{
    DiskModel m = defaultModel();
    bool anyRotation = false;
    Rng rng(11);
    for (int i = 0; i < 20; ++i) {
        const DiskServiceTime st = m.service(0, 8, 8, rng);
        anyRotation = anyRotation || st.rotational > 0;
        EXPECT_EQ(st.seek, 0u);
    }
    EXPECT_TRUE(anyRotation);
}

TEST(DiskModel, RejectsBadGeometry)
{
    DiskParams p;
    p.cylinders = 0;
    EXPECT_THROW(DiskModel{p}, std::runtime_error);

    DiskParams q;
    q.rpm = -1;
    EXPECT_THROW(DiskModel{q}, std::runtime_error);

    DiskParams s;
    s.seekScale = 0.0;
    EXPECT_THROW(DiskModel{s}, std::runtime_error);
}

TEST(DiskModel, CustomGeometrySectorCount)
{
    DiskParams p;
    p.cylinders = 10;
    p.surfaces = 2;
    p.sectorsPerTrack = 8;
    DiskModel m(p);
    EXPECT_EQ(m.totalSectors(), 160u);
    EXPECT_EQ(m.cylinderOf(15), 0u);
    EXPECT_EQ(m.cylinderOf(16), 1u);
}
