/**
 * @file
 * Unit tests for the kernel lock table (Section 3.4 model).
 */

#include <gtest/gtest.h>

#include "src/os/locks.hh"
#include "src/os/process.hh"
#include "src/workload/synthetic.hh"

using namespace piso;

namespace {

std::unique_ptr<Process>
proc(Pid pid)
{
    return std::make_unique<Process>(
        pid, 2, kNoJob, "p" + std::to_string(pid),
        std::make_unique<ScriptBehavior>(std::vector<Action>{}),
        Rng(static_cast<std::uint64_t>(pid)));
}

} // namespace

TEST(LockTable, MutexBasicAcquireRelease)
{
    LockTable t;
    const int id = t.create(false);
    auto p1 = proc(1);
    EXPECT_TRUE(t.acquire(id, p1.get(), true));
    EXPECT_TRUE(t.holds(id, p1.get()));
    EXPECT_TRUE(t.release(id, p1.get()).empty());
    EXPECT_FALSE(t.holds(id, p1.get()));
}

TEST(LockTable, MutexBlocksSecondHolder)
{
    LockTable t;
    const int id = t.create(false);
    auto p1 = proc(1), p2 = proc(2);
    EXPECT_TRUE(t.acquire(id, p1.get(), true));
    EXPECT_FALSE(t.acquire(id, p2.get(), true));
    auto granted = t.release(id, p1.get());
    ASSERT_EQ(granted.size(), 1u);
    EXPECT_EQ(granted[0], p2.get());
    EXPECT_TRUE(t.holds(id, p2.get()));
}

TEST(LockTable, MutexIgnoresSharedRequests)
{
    // A mutex-mode lock treats shared acquisitions as exclusive —
    // the pre-fix IRIX inode semaphore.
    LockTable t;
    const int id = t.create(false);
    auto p1 = proc(1), p2 = proc(2);
    EXPECT_TRUE(t.acquire(id, p1.get(), false));
    EXPECT_FALSE(t.acquire(id, p2.get(), false));
}

TEST(LockTable, RwAllowsConcurrentReaders)
{
    LockTable t;
    const int id = t.create(true);
    auto p1 = proc(1), p2 = proc(2), p3 = proc(3);
    EXPECT_TRUE(t.acquire(id, p1.get(), false));
    EXPECT_TRUE(t.acquire(id, p2.get(), false));
    EXPECT_TRUE(t.acquire(id, p3.get(), false));
    EXPECT_TRUE(t.holds(id, p2.get()));
}

TEST(LockTable, RwWriterExcludesReaders)
{
    LockTable t;
    const int id = t.create(true);
    auto w = proc(1), r = proc(2);
    EXPECT_TRUE(t.acquire(id, w.get(), true));
    EXPECT_FALSE(t.acquire(id, r.get(), false));
}

TEST(LockTable, RwReaderBlocksWriter)
{
    LockTable t;
    const int id = t.create(true);
    auto r = proc(1), w = proc(2);
    EXPECT_TRUE(t.acquire(id, r.get(), false));
    EXPECT_FALSE(t.acquire(id, w.get(), true));
    auto granted = t.release(id, r.get());
    ASSERT_EQ(granted.size(), 1u);
    EXPECT_EQ(granted[0], w.get());
}

TEST(LockTable, QueuedWriterBlocksNewReaders)
{
    // FIFO fairness: once a writer waits, later readers queue behind
    // it instead of starving it.
    LockTable t;
    const int id = t.create(true);
    auto r1 = proc(1), w = proc(2), r2 = proc(3);
    EXPECT_TRUE(t.acquire(id, r1.get(), false));
    EXPECT_FALSE(t.acquire(id, w.get(), true));
    EXPECT_FALSE(t.acquire(id, r2.get(), false));
    auto granted = t.release(id, r1.get());
    ASSERT_EQ(granted.size(), 1u);
    EXPECT_EQ(granted[0], w.get());
    granted = t.release(id, w.get());
    ASSERT_EQ(granted.size(), 1u);
    EXPECT_EQ(granted[0], r2.get());
}

TEST(LockTable, ReadersGrantedInBatch)
{
    LockTable t;
    const int id = t.create(true);
    auto w = proc(1), r1 = proc(2), r2 = proc(3);
    EXPECT_TRUE(t.acquire(id, w.get(), true));
    EXPECT_FALSE(t.acquire(id, r1.get(), false));
    EXPECT_FALSE(t.acquire(id, r2.get(), false));
    auto granted = t.release(id, w.get());
    EXPECT_EQ(granted.size(), 2u); // both readers wake together
}

TEST(LockTable, ContentionStats)
{
    LockTable t;
    const int id = t.create(false);
    auto p1 = proc(1), p2 = proc(2);
    t.acquire(id, p1.get(), true);
    t.acquire(id, p2.get(), true);
    EXPECT_EQ(t.stats(id).acquisitions.value(), 2u);
    EXPECT_EQ(t.stats(id).contended.value(), 1u);
}

TEST(LockTable, ReleaseWithoutHoldPanics)
{
    LockTable t;
    const int id = t.create(false);
    auto p1 = proc(1);
    EXPECT_DEATH(t.release(id, p1.get()), "does not hold");
}

TEST(LockTable, MultipleLocksIndependent)
{
    LockTable t;
    const int a = t.create(false);
    const int b = t.create(false);
    auto p1 = proc(1), p2 = proc(2);
    EXPECT_TRUE(t.acquire(a, p1.get(), true));
    EXPECT_TRUE(t.acquire(b, p2.get(), true));
    EXPECT_EQ(t.count(), 2u);
}
