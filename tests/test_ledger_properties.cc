/**
 * @file
 * Property tests for ResourceLedger: randomized operation sequences
 * and adversarial share vectors, checked against a trivial reference
 * model. The ledger is the accounting substrate every resource policy
 * (CPU loans, memory lending, bandwidth shares) stands on, so its
 * invariants — conservation under transfer, used <= allowed after
 * tryUse, entitlements summing exactly to the divisible amount — are
 * the isolation guarantees in miniature.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "src/core/ledger.hh"
#include "src/core/spu.hh"
#include "src/sim/random.hh"
#include "src/util/error.hh"

using namespace piso;

namespace {

/** Entitlements must sum exactly to the divisible for any shares. */
void
expectExactSum(const std::vector<double> &shares,
               std::uint64_t divisible)
{
    ResourceLedger l("test");
    double total = 0.0;
    for (std::size_t i = 0; i < shares.size(); ++i) {
        l.setShare(static_cast<SpuId>(i), shares[i]);
        total += shares[i];
    }
    l.entitleByShare(divisible);

    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < shares.size(); ++i) {
        const std::uint64_t e =
            l.levels(static_cast<SpuId>(i)).entitled;
        sum += e;
        if (shares[i] == 0.0) {
            EXPECT_EQ(e, 0u) << "zero-share SPU " << i << " got units";
        }
    }
    EXPECT_EQ(sum, total == 0.0 ? 0u : divisible)
        << shares.size() << " spus, divisible " << divisible;
}

} // namespace

// ---------------------------------------------------------------------
// entitleByShare: adversarial share vectors
// ---------------------------------------------------------------------

TEST(LedgerProperties, EntitleExactSumAdversarialShares)
{
    const std::vector<std::vector<double>> vectors = {
        {1.0},
        {1.0, 1.0, 1.0},
        {1.0, 2.0, 3.0},
        {0.0, 0.0, 0.0},            // zero total -> all zero
        {0.0, 1.0, 0.0},
        {1e-9, 1.0, 1e-9},          // tiny vs large
        {1e12, 1.0, 1e12},          // huge shares
        {1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0},
        {0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1},
        {7.0, 11.0, 13.0, 17.0, 19.0, 23.0},
    };
    const std::uint64_t divisibles[] = {0,  1,   2,    3,    7,
                                        8,  97,  100,  1024, 4096,
                                        1u << 20, (1u << 20) + 1};
    for (const auto &shares : vectors)
        for (std::uint64_t d : divisibles)
            expectExactSum(shares, d);
}

TEST(LedgerProperties, EntitleExactSumRandomShares)
{
    Rng rng(2026);
    for (int iter = 0; iter < 200; ++iter) {
        const std::size_t n = 1 + rng.uniformInt(12);
        std::vector<double> shares;
        for (std::size_t i = 0; i < n; ++i) {
            switch (rng.uniformInt(4)) {
            case 0: shares.push_back(0.0); break;
            case 1: shares.push_back(rng.uniform() * 1e-6); break;
            case 2: shares.push_back(rng.uniform() * 1e6); break;
            default: shares.push_back(rng.uniform()); break;
            }
        }
        expectExactSum(shares, rng.uniformInt(1u << 22));
    }
}

TEST(LedgerProperties, EntitleTiesGoToLowerSpuId)
{
    // Equal shares, indivisible amount: the remainder units must land
    // on the lowest SPU ids, deterministically.
    ResourceLedger l("test");
    for (SpuId s = 0; s < 4; ++s)
        l.setShare(s, 1.0);
    l.entitleByShare(6); // floor = 1 each, remainder 2
    EXPECT_EQ(l.levels(0).entitled, 2u);
    EXPECT_EQ(l.levels(1).entitled, 2u);
    EXPECT_EQ(l.levels(2).entitled, 1u);
    EXPECT_EQ(l.levels(3).entitled, 1u);
}

TEST(LedgerProperties, EntitleIsIdempotent)
{
    ResourceLedger l("test");
    l.setShare(0, 0.3);
    l.setShare(1, 0.7);
    l.entitleByShare(1000);
    const std::uint64_t a0 = l.levels(0).entitled;
    const std::uint64_t a1 = l.levels(1).entitled;
    l.entitleByShare(1000);
    EXPECT_EQ(l.levels(0).entitled, a0);
    EXPECT_EQ(l.levels(1).entitled, a1);
}

// ---------------------------------------------------------------------
// Randomized op sequences against a reference model
// ---------------------------------------------------------------------

TEST(LedgerProperties, RandomOpSequencesMatchModel)
{
    Rng rng(7);
    for (int trial = 0; trial < 50; ++trial) {
        ResourceLedger l("test");
        std::map<SpuId, ResourceLevels> model;
        std::map<SpuId, double> modelShare;
        const SpuId nSpus = 1 + static_cast<SpuId>(rng.uniformInt(6));
        for (SpuId s = 0; s < nSpus; ++s) {
            l.registerSpu(s);
            model[s]; // zero levels, like registerSpu
            modelShare[s] = 1.0;
        }

        for (int op = 0; op < 400; ++op) {
            const SpuId s = static_cast<SpuId>(rng.uniformInt(nSpus));
            switch (rng.uniformInt(6)) {
            case 0: { // setShare
                const double sh = rng.uniform() * 4.0;
                l.setShare(s, sh);
                modelShare[s] = sh;
                break;
            }
            case 1: { // setAllowed
                const std::uint64_t a = rng.uniformInt(64);
                l.setAllowed(s, a);
                model[s].allowed = a;
                break;
            }
            case 2: { // tryUse: succeeds iff used < allowed
                const bool expect =
                    model[s].used < model[s].allowed;
                EXPECT_EQ(l.tryUse(s), expect);
                if (expect)
                    ++model[s].used;
                break;
            }
            case 3: { // release (only what the model holds)
                if (model[s].used > 0) {
                    const std::uint64_t u =
                        1 + rng.uniformInt(model[s].used);
                    l.release(s, u);
                    model[s].used -= u;
                }
                break;
            }
            case 4: { // transfer to a random other SPU
                const SpuId to =
                    static_cast<SpuId>(rng.uniformInt(nSpus));
                if (model[s].used > 0) {
                    const std::uint64_t u =
                        1 + rng.uniformInt(model[s].used);
                    const std::uint64_t before = l.usedTotal();
                    l.transfer(s, to, u);
                    model[s].used -= u;
                    model[to].used += u;
                    // Conservation: transfer moves, never mints.
                    EXPECT_EQ(l.usedTotal(), before);
                }
                break;
            }
            default: { // unconditional use (caller holds the units)
                const std::uint64_t u = rng.uniformInt(8);
                l.use(s, u);
                model[s].used += u;
                break;
            }
            }

            // The ledger agrees with the model at every step.
            std::uint64_t usedSum = 0;
            for (SpuId q = 0; q < nSpus; ++q) {
                EXPECT_EQ(l.levels(q).used, model[q].used);
                EXPECT_EQ(l.levels(q).allowed, model[q].allowed);
                EXPECT_EQ(l.share(q), modelShare[q]);
                usedSum += model[q].used;
                // tryUse can never push past allowed; only use() can.
                EXPECT_EQ(l.atLimit(q),
                          model[q].used >= model[q].allowed);
            }
            EXPECT_EQ(l.usedTotal(), usedSum);
        }
    }
}

TEST(LedgerProperties, TryUseNeverExceedsAllowed)
{
    // Hammer tryUse alone: used must saturate at allowed exactly.
    Rng rng(11);
    for (int trial = 0; trial < 20; ++trial) {
        ResourceLedger l("test");
        l.registerSpu(0);
        const std::uint64_t allowed = rng.uniformInt(100);
        l.setAllowed(0, allowed);
        std::uint64_t granted = 0;
        for (int i = 0; i < 200; ++i)
            if (l.tryUse(0))
                ++granted;
        EXPECT_EQ(granted, allowed);
        EXPECT_EQ(l.levels(0).used, allowed);
        EXPECT_TRUE(l.atLimit(0));
        EXPECT_EQ(l.overAllowed(0), 0u);
    }
}

// ---------------------------------------------------------------------
// Zero-active-SPU edge (regression): when every user SPU is suspended,
// all shares are 0 and the entitlement path must not divide by zero.
// ---------------------------------------------------------------------

TEST(LedgerProperties, AllZeroSharesNeverDivideByZero)
{
    for (std::size_t n = 0; n <= 8; ++n) {
        const std::vector<double> shares(n, 0.0);
        for (std::uint64_t d : {0u, 1u, 4096u}) {
            const auto parts = ResourceLedger::apportion(shares, d);
            ASSERT_EQ(parts.size(), n);
            for (std::uint64_t p : parts)
                EXPECT_EQ(p, 0u);
        }
        expectExactSum(shares, 4096);
    }
}

TEST(LedgerProperties, AllSuspendedRegistryEntitlesToZero)
{
    // The full scenario: every user SPU suspended. shareOf and the
    // entitlement paths must all return zero, not NaN or a crash.
    SpuManager mgr;
    const SpuId a = mgr.create({.name = "a", .share = 2.0});
    const SpuId b = mgr.create({.name = "b", .share = 1.0});
    mgr.suspend(a);
    mgr.suspend(b);

    EXPECT_EQ(mgr.userSpus().size(), 0u);
    EXPECT_EQ(mgr.leafSpus().size(), 0u);
    EXPECT_EQ(mgr.shareOf(a), 0.0);
    EXPECT_EQ(mgr.shareOf(b), 0.0);
    EXPECT_TRUE(mgr.cpuShares().empty());
    EXPECT_TRUE(mgr.entitleLeaves(1u << 20).empty());

    ResourceLedger l("test");
    l.entitleByShare(mgr.shareTree(), 1u << 20);
    for (SpuId s : {a, b})
        EXPECT_EQ(l.levels(s).entitled, 0u);

    // Resuming one SPU restores the whole pie to it.
    mgr.resume(a);
    EXPECT_EQ(mgr.shareOf(a), 1.0);
    const auto entitled = mgr.entitleLeaves(1u << 20);
    ASSERT_TRUE(entitled.contains(a));
    EXPECT_EQ(*entitled.find(a), 1u << 20);
}

TEST(LedgerProperties, NonFiniteSharesRejected)
{
    ResourceLedger l("test");
    EXPECT_THROW(l.setShare(0, -1.0), ConfigError);
    EXPECT_THROW(l.setShare(0, std::nan("")), ConfigError);
    EXPECT_THROW(l.setShare(0, HUGE_VAL), ConfigError);
    l.setShare(0, 1.5); // finite non-negative still fine
    EXPECT_EQ(l.share(0), 1.5);
}

TEST(LedgerProperties, ForgetRemovesFromTotals)
{
    ResourceLedger l("test");
    l.registerSpu(0);
    l.registerSpu(1);
    l.use(0, 5);
    l.use(1, 7);
    l.setEntitled(0, 3);
    l.setEntitled(1, 4);
    EXPECT_EQ(l.usedTotal(), 12u);
    EXPECT_EQ(l.entitledTotal(), 7u);
    l.forget(1);
    EXPECT_FALSE(l.knows(1));
    EXPECT_EQ(l.usedTotal(), 5u);
    EXPECT_EQ(l.entitledTotal(), 3u);
    EXPECT_EQ(l.spus(), std::vector<SpuId>{0});
}
