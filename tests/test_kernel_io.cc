/**
 * @file
 * Kernel I/O-path details: where paging traffic lands, how delayed
 * writes are batched and charged, and end-of-run draining.
 */

#include <gtest/gtest.h>

#include "src/piso.hh"

using namespace piso;

namespace {

/** Wraps C-SCAN and records every completed request. */
class SpyScheduler : public DiskScheduler
{
  public:
    struct Seen
    {
        SpuId spu;
        bool write;
        std::uint32_t sectors;
        std::vector<std::pair<SpuId, std::uint32_t>> charges;
    };

    std::size_t
    pick(const std::deque<DiskRequest> &queue, std::uint64_t headSector,
         Time now) override
    {
        return inner_.pick(queue, headSector, now);
    }

    void
    onComplete(const DiskRequest &req, Time) override
    {
        seen_.push_back(Seen{req.spu, req.write, req.sectors,
                             req.charges});
    }

    const std::vector<Seen> &seen() const { return seen_; }

  private:
    CScanScheduler inner_;
    std::vector<Seen> seen_;
};

} // namespace

TEST(KernelIo, SwapTrafficLandsOnTheSpusHomeDisk)
{
    SystemConfig cfg;
    cfg.cpus = 2;
    cfg.memoryBytes = 8 * kMiB;
    cfg.diskCount = 3;
    cfg.scheme = Scheme::Quota;
    cfg.seed = 3;
    Simulation sim(cfg);
    sim.addSpu({.name = "other", .homeDisk = 0});
    const SpuId u = sim.addSpu({.name = "u", .homeDisk = 2});
    // Thrash against the quota: swap I/O must hit disk 2 only.
    ComputeSpec job;
    job.totalCpu = 500 * kMs;
    job.wsPages = 1500; // quota is ~(2048-512)/2 = 768
    sim.addJob(u, makeComputeJob("thrash", job));
    const SimResults r = sim.run();
    EXPECT_GT(r.kernel.refaults.value(), 0u);
    EXPECT_GT(r.disks[2].requests, 0u);
    EXPECT_EQ(r.disks[0].requests, 0u);
    EXPECT_EQ(r.disks[1].requests, 0u);
}

TEST(KernelIo, BdflushChargesPagesToOwningSpus)
{
    // Two SPUs write dirty data; the shared-SPU flush requests must
    // carry per-owner charge breakdowns (Section 3.3).
    EventQueue events;
    PhysicalMemory phys{4096 * 4096};
    VirtualMemory vm{phys};
    BufferCache cache;
    FileSystem fs;
    SmpScheduler sched{events, 2};
    DiskModel model{DiskParams{}};
    auto spy = std::make_unique<SpyScheduler>();
    SpyScheduler *spyPtr = spy.get();
    DiskDevice disk(events, model, std::move(spy), Rng(7));
    fs.addDisk(0, model.totalSectors());
    Kernel kernel(events, vm, cache, fs, sched, {&disk}, Rng(11));
    for (SpuId s : {SpuId{2}, SpuId{3}}) {
        vm.registerSpu(s);
        vm.setEntitled(s, 4096);
        vm.setAllowed(s, 4096);
    }
    vm.setAllowed(kKernelSpu, 4096);
    vm.setAllowed(kSharedSpu, 4096);

    const FileId fa = fs.createFile("a", 0, 64 * 1024);
    const FileId fb = fs.createFile("b", 0, 64 * 1024);
    kernel.createProcess(2, kNoJob, "wa",
                         std::make_unique<ScriptBehavior>(
                             std::vector<Action>{
                                 WriteAction{fa, 0, 64 * 1024, false},
                                 SleepAction{3 * kSec}}),
                         0);
    kernel.createProcess(3, kNoJob, "wb",
                         std::make_unique<ScriptBehavior>(
                             std::vector<Action>{
                                 WriteAction{fb, 0, 64 * 1024, false},
                                 SleepAction{3 * kSec}}),
                         0);
    kernel.start();
    while (kernel.liveProcesses() > 0 && events.now() < 60 * kSec) {
        if (!events.runOne())
            break;
    }

    std::uint32_t charged2 = 0, charged3 = 0;
    for (const auto &s : spyPtr->seen()) {
        if (!s.write)
            continue;
        EXPECT_EQ(s.spu, kSharedSpu); // flushes run as the shared SPU
        for (const auto &[spu, sectors] : s.charges) {
            if (spu == 2)
                charged2 += sectors;
            if (spu == 3)
                charged3 += sectors;
        }
    }
    // 64 KiB each = 128 sectors charged to each owner.
    EXPECT_EQ(charged2, 128u);
    EXPECT_EQ(charged3, 128u);
}

TEST(KernelIo, DrainFlushesEverythingAtRunEnd)
{
    SystemConfig cfg;
    cfg.cpus = 2;
    cfg.memoryBytes = 32 * kMiB;
    cfg.scheme = Scheme::Smp;
    cfg.seed = 5;
    Simulation sim(cfg);
    const SpuId u = sim.addSpu({.name = "u"});
    // The job exits immediately after a delayed write: only the drain
    // can push the data out.
    const std::uint64_t bytes = 2 * kMiB;
    JobSpec j;
    j.name = "w";
    j.build = [bytes](Kernel &, WorkloadEnv &env) {
        const FileId f = env.fs.createFile("out", env.disk, bytes);
        std::vector<ProcessSpec> procs;
        procs.push_back(ProcessSpec{
            "w", std::make_unique<ScriptBehavior>(std::vector<Action>{
                     WriteAction{f, 0, bytes, false}})});
        return procs;
    };
    sim.addJob(u, std::move(j));
    const SimResults r = sim.run();
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(sim.kernel().cache().dirtyCount(), 0u);
    EXPECT_GE(r.disks[0].sectors, bytes / 512);
}

TEST(KernelIo, NonSequentialReadsDontPrefetch)
{
    SystemConfig cfg;
    cfg.cpus = 2;
    cfg.memoryBytes = 32 * kMiB;
    cfg.scheme = Scheme::Smp;
    cfg.seed = 5;
    Simulation sim(cfg);
    const SpuId u = sim.addSpu({.name = "u"});
    JobSpec j;
    j.name = "rand";
    j.build = [](Kernel &, WorkloadEnv &env) {
        const FileId f = env.fs.createFile("data", env.disk, 4 * kMiB);
        std::vector<Action> script;
        // Stride access pattern: never sequential.
        for (int i = 0; i < 32; ++i) {
            const std::uint64_t off =
                (static_cast<std::uint64_t>(i) * 37 % 64) * 64 * 1024;
            script.push_back(ReadAction{f, off, 4096});
        }
        std::vector<ProcessSpec> procs;
        procs.push_back(ProcessSpec{
            "rand",
            std::make_unique<ScriptBehavior>(std::move(script))});
        return procs;
    };
    sim.addJob(u, std::move(j));
    const SimResults r = sim.run();
    EXPECT_EQ(r.kernel.readAheadRequests.value(), 0u);
}

TEST(KernelIo, SharedPageReclassificationOnWrite)
{
    SystemConfig cfg;
    cfg.cpus = 2;
    cfg.memoryBytes = 32 * kMiB;
    cfg.scheme = Scheme::Smp;
    cfg.seed = 5;
    Simulation sim(cfg);
    const SpuId a = sim.addSpu({.name = "a"});
    const SpuId b = sim.addSpu({.name = "b"});

    FileId shared = kNoFile;
    JobSpec writerA;
    writerA.name = "wa";
    writerA.build = [&shared](Kernel &, WorkloadEnv &env) {
        shared = env.fs.createFile("log", env.disk, 32 * 1024);
        std::vector<ProcessSpec> procs;
        procs.push_back(ProcessSpec{
            "wa", std::make_unique<ScriptBehavior>(std::vector<Action>{
                      WriteAction{shared, 0, 32 * 1024, false}})});
        return procs;
    };
    sim.addJob(a, std::move(writerA));

    JobSpec writerB;
    writerB.name = "wb";
    writerB.startAt = 500 * kMs;
    writerB.build = [&shared](Kernel &, WorkloadEnv &) {
        std::vector<ProcessSpec> procs;
        procs.push_back(ProcessSpec{
            "wb", std::make_unique<ScriptBehavior>(std::vector<Action>{
                      WriteAction{shared, 0, 32 * 1024, false}})});
        return procs;
    };
    sim.addJob(b, std::move(writerB));

    sim.run();
    // The log's pages were touched by both SPUs: charged to `shared`.
    EXPECT_GT(sim.vm().levels(kSharedSpu).used, 0u);
}

TEST(KernelIo, CacheAffinityCostChargesMigrations)
{
    // Two processes ping-pong across two CPUs (SMP global queue with
    // slice round-robin migrates them); with the affinity model on,
    // they accumulate penalty compute.
    auto totalCpu = [](Time affinityCost) {
        SystemConfig cfg;
        cfg.cpus = 2;
        cfg.memoryBytes = 16 * kMiB;
        cfg.scheme = Scheme::Smp;
        cfg.kernel.cacheAffinityCost = affinityCost;
        cfg.seed = 9;
        Simulation sim(cfg);
        const SpuId u = sim.addSpu({.name = "u"});
        for (int i = 0; i < 3; ++i) {
            ComputeSpec spec;
            spec.totalCpu = kSec;
            spec.wsPages = 0;
            sim.addJob(u, makeComputeJob("j" + std::to_string(i),
                                         spec));
        }
        const SimResults r = sim.run();
        return std::pair{r.spus.at(u).cpuTime,
                         r.kernel.affinityPenalties.value()};
    };

    const auto [cheap, none] = totalCpu(0);
    const auto [costly, penalties] = totalCpu(kMs);
    EXPECT_EQ(none, 0u);
    EXPECT_GT(penalties, 10u);
    EXPECT_GT(costly, cheap + penalties * 900 * kUs);
}

TEST(KernelIo, CopyCostMakesCachedReadsNonFree)
{
    SystemConfig cfg;
    cfg.cpus = 1;
    cfg.memoryBytes = 32 * kMiB;
    cfg.scheme = Scheme::Smp;
    cfg.seed = 5;
    Simulation sim(cfg);
    const SpuId u = sim.addSpu({.name = "u"});
    JobSpec j;
    j.name = "reread";
    j.build = [](Kernel &, WorkloadEnv &env) {
        const FileId f = env.fs.createFile("data", env.disk, 256 * 1024);
        std::vector<Action> script;
        script.push_back(ReadAction{f, 0, 256 * 1024}); // cold
        for (int i = 0; i < 100; ++i)
            script.push_back(ReadAction{f, 0, 256 * 1024}); // warm
        std::vector<ProcessSpec> procs;
        procs.push_back(ProcessSpec{
            "r", std::make_unique<ScriptBehavior>(std::move(script))});
        return procs;
    };
    sim.addJob(u, std::move(j));
    const SimResults r = sim.run();
    // 100 warm re-reads of 64 blocks at 10 us/block = 64 ms of CPU.
    EXPECT_GT(r.spus.at(u).cpuTime, 60 * kMs);
}
