/**
 * @file
 * Quantitative tests of weighted sharing contracts: an SPU with twice
 * the share must get twice the CPU, memory, and disk bandwidth when
 * both parties saturate the resource (the paper's "project A owns a
 * third, project B two thirds" made measurable).
 */

#include <gtest/gtest.h>

#include "src/piso.hh"

using namespace piso;

TEST(WeightedShares, CpuTimeFollowsContract)
{
    SystemConfig cfg;
    cfg.cpus = 3;
    cfg.memoryBytes = 32 * kMiB;
    cfg.diskCount = 2;
    cfg.scheme = Scheme::PIso;
    cfg.maxTime = 5 * kSec; // fixed measurement window
    cfg.seed = 3;
    Simulation sim(cfg);
    const SpuId a = sim.addSpu({.name = "a", .share = 1.0, .homeDisk = 0});
    const SpuId b = sim.addSpu({.name = "b", .share = 2.0, .homeDisk = 1});

    // Both sides saturate their partitions with endless hogs; measure
    // CPU delivered over the window.
    for (int i = 0; i < 4; ++i) {
        ComputeSpec hog;
        hog.totalCpu = 100 * kSec;
        hog.wsPages = 16;
        sim.addJob(a, makeComputeJob("a" + std::to_string(i), hog));
        sim.addJob(b, makeComputeJob("b" + std::to_string(i), hog));
    }
    const SimResults r = sim.run();
    EXPECT_FALSE(r.completed); // window expired, hogs still running

    const double ta = toSeconds(r.spus.at(a).cpuTime);
    const double tb = toSeconds(r.spus.at(b).cpuTime);
    EXPECT_NEAR(tb / ta, 2.0, 0.15);
}

TEST(WeightedShares, MemoryEntitlementFollowsContract)
{
    SystemConfig cfg;
    cfg.cpus = 2;
    cfg.memoryBytes = 32 * kMiB;
    cfg.diskCount = 2;
    cfg.scheme = Scheme::PIso;
    cfg.seed = 3;
    Simulation sim(cfg);
    const SpuId a = sim.addSpu({.name = "a", .share = 1.0, .homeDisk = 0});
    const SpuId b = sim.addSpu({.name = "b", .share = 2.0, .homeDisk = 1});
    ComputeSpec j;
    j.totalCpu = 200 * kMs;
    sim.addJob(a, makeComputeJob("ja", j));
    sim.addJob(b, makeComputeJob("jb", j));
    sim.run();
    const double ea =
        static_cast<double>(sim.vm().levels(a).entitled);
    const double eb =
        static_cast<double>(sim.vm().levels(b).entitled);
    EXPECT_NEAR(eb / ea, 2.0, 0.05);
}

TEST(WeightedShares, DiskBandwidthFollowsContract)
{
    // Two endless copy streams on one disk with shares 1:2 under the
    // blind fair policy (pure bandwidth fairness, no head-position
    // noise): sectors served follow the contract.
    SystemConfig cfg;
    cfg.cpus = 2;
    cfg.memoryBytes = 48 * kMiB;
    cfg.diskCount = 1;
    cfg.scheme = Scheme::PIso;
    cfg.diskPolicy = DiskPolicy::BlindFair;
    cfg.seed = 3;
    Simulation sim(cfg);
    const SpuId a = sim.addSpu({.name = "a", .share = 1.0, .homeDisk = 0});
    const SpuId b = sim.addSpu({.name = "b", .share = 2.0, .homeDisk = 0});
    FileCopyConfig cc;
    cc.bytes = 16 * kMiB;
    sim.addJob(a, makeFileCopy("cpA", cc));
    sim.addJob(b, makeFileCopy("cpB", cc));

    // Sample mid-run, while both streams still contend.
    std::uint64_t sectorsA = 0, sectorsB = 0;
    sim.events().schedule(4 * kSec, [&] {
        sectorsA = sim.kernel().disk(0).spuStats(a).sectors.value();
        sectorsB = sim.kernel().disk(0).spuStats(b).sectors.value();
    });
    sim.run();
    ASSERT_GT(sectorsA, 0u);
    const double ratio = static_cast<double>(sectorsB) /
                         static_cast<double>(sectorsA);
    EXPECT_NEAR(ratio, 2.0, 0.5);
}

TEST(WeightedShares, NetworkBandwidthFollowsContract)
{
    SystemConfig cfg;
    cfg.cpus = 2;
    cfg.memoryBytes = 16 * kMiB;
    cfg.scheme = Scheme::PIso;
    cfg.networkBitsPerSec = 10e6;
    cfg.seed = 3;
    Simulation sim(cfg);
    const SpuId a = sim.addSpu({.name = "a", .share = 1.0});
    const SpuId b = sim.addSpu({.name = "b", .share = 2.0});
    for (int j = 0; j < 2; ++j) {
        std::vector<Action> sendsA, sendsB;
        for (int i = 0; i < 40; ++i) {
            sendsA.push_back(SendAction{64 * 1024});
            sendsB.push_back(SendAction{64 * 1024});
        }
        sim.addJob(a, makeScriptJob("sa" + std::to_string(j),
                                    std::move(sendsA)));
        sim.addJob(b, makeScriptJob("sb" + std::to_string(j),
                                    std::move(sendsB)));
    }
    std::uint64_t bytesA = 0, bytesB = 0;
    sim.events().schedule(3 * kSec, [&] {
        bytesA = sim.network()->spuStats(a).bytes.value();
        bytesB = sim.network()->spuStats(b).bytes.value();
    });
    sim.run();
    ASSERT_GT(bytesA, 0u);
    EXPECT_NEAR(static_cast<double>(bytesB) /
                    static_cast<double>(bytesA),
                2.0, 0.4);
}

TEST(WeightedShares, MoreSpusThanCpusStillShareFairly)
{
    // Footnote 2's edge case: the hybrid partition assumes fewer
    // active SPUs than CPUs; when that fails, the fractional packer
    // time-multiplexes CPUs between SPUs. Six SPUs on two CPUs, each
    // saturating: CPU delivered must stay near 1/6 each.
    SystemConfig cfg;
    cfg.cpus = 2;
    cfg.memoryBytes = 32 * kMiB;
    cfg.diskCount = 2;
    cfg.scheme = Scheme::PIso;
    cfg.maxTime = 6 * kSec;
    cfg.seed = 5;
    Simulation sim(cfg);
    std::vector<SpuId> spus;
    for (int i = 0; i < 6; ++i) {
        spus.push_back(sim.addSpu(
            {.name = "u" + std::to_string(i), .homeDisk = 0}));
        ComputeSpec hog;
        hog.totalCpu = 100 * kSec;
        hog.wsPages = 16;
        sim.addJob(spus.back(),
                   makeComputeJob("hog" + std::to_string(i), hog));
    }
    const SimResults r = sim.run();
    EXPECT_FALSE(r.completed);
    double total = 0.0;
    for (SpuId spu : spus)
        total += toSeconds(r.spus.at(spu).cpuTime);
    for (SpuId spu : spus) {
        const double frac = toSeconds(r.spus.at(spu).cpuTime) / total;
        EXPECT_NEAR(frac, 1.0 / 6.0, 0.05)
            << "SPU " << spu << " got an unfair CPU share";
    }
    // Both CPUs were kept busy (time partitioning is work-conserving
    // here: every owner always has work).
    EXPECT_GT(total, 0.9 * 2 * toSeconds(r.simulatedTime));
}

TEST(WeightedShares, CpuPartitionCountsFollowShares)
{
    SystemConfig cfg;
    cfg.cpus = 6;
    cfg.memoryBytes = 16 * kMiB;
    cfg.scheme = Scheme::Quota;
    cfg.seed = 3;
    Simulation sim(cfg);
    const SpuId a = sim.addSpu({.name = "a", .share = 1.0});
    const SpuId b = sim.addSpu({.name = "b", .share = 2.0});
    sim.addJob(a, makeScriptJob("j", {ComputeAction{kMs}}));
    sim.run();
    int na = 0, nb = 0;
    for (int i = 0; i < 6; ++i) {
        na += sim.scheduler().cpu(i).homeSpu == a;
        nb += sim.scheduler().cpu(i).homeSpu == b;
    }
    EXPECT_EQ(na, 2);
    EXPECT_EQ(nb, 4);
}
