/**
 * @file
 * The lint engine linted: every rule run against known-bad fixtures
 * under tests/lint_fixtures/ (which mirror project paths so the rule
 * scoping applies), plus the suppression machinery and the exit-code
 * contract. Each expected violation must be reported exactly once.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/lint/engine.hh"
#include "src/lint/lexer.hh"
#include "src/lint/rules.hh"

using namespace piso::lint;

namespace {

std::string
fixture(const std::string &rel)
{
    return std::string(PISO_LINT_FIXTURE_DIR) + "/" + rel;
}

/** Lint one or more fixture files; hard-fails the test on I/O
 *  errors. */
LintResult
lintFixtures(const std::vector<std::string> &rels)
{
    std::vector<std::string> paths;
    for (const std::string &rel : rels)
        paths.push_back(fixture(rel));
    LintResult result;
    std::string error;
    if (!lintFiles(paths, result, error))
        ADD_FAILURE() << "cannot lint fixtures: " << error;
    return result;
}

LintResult
lintFixture(const std::string &rel)
{
    return lintFixtures({rel});
}

/** (rule, line) pairs, sorted — the shape the expectations use. */
std::vector<std::pair<std::string, int>>
hits(const LintResult &result)
{
    std::vector<std::pair<std::string, int>> out;
    for (const Finding &f : result.findings)
        out.emplace_back(f.rule, f.line);
    std::sort(out.begin(), out.end());
    return out;
}

using Hits = std::vector<std::pair<std::string, int>>;

} // namespace

// ---------------------------------------------------------------------
// One fixture per rule: exact findings, each reported exactly once.
// ---------------------------------------------------------------------

TEST(LintRules, WallclockFlagsEveryHostTimeSource)
{
    const LintResult r = lintFixture("src/sim/wallclock.cc");
    EXPECT_EQ(hits(r), (Hits{{"determinism-wallclock", 11},
                             {"determinism-wallclock", 13},
                             {"determinism-wallclock", 20},
                             {"determinism-wallclock", 20}}));
    EXPECT_EQ(r.exitCode(), 1);
}

TEST(LintRules, UnorderedContainerInEmissionPath)
{
    const LintResult r = lintFixture("src/metrics/unordered.cc");
    EXPECT_EQ(hits(r), (Hits{{"determinism-unordered", 7}}));
}

TEST(LintRules, MutableGlobalsAndStaticLocals)
{
    // const / constexpr / thread_local / plain locals stay clean; the
    // bare namespace-scope int and the static local are flagged.
    const LintResult r = lintFixture("src/core/global_state.cc");
    EXPECT_EQ(hits(r), (Hits{{"thread-global-state", 5},
                             {"thread-global-state", 13}}));
}

TEST(LintRules, MapKeyedByDenseIdAndRawNewDelete)
{
    const LintResult r = lintFixture("src/os/tables.cc");
    EXPECT_EQ(hits(r), (Hits{{"memory-raw-new", 18},
                             {"memory-raw-new", 24},
                             {"table-map-key", 11}}));
}

TEST(LintRules, NonCanonicalIncludeGuard)
{
    const LintResult r = lintFixture("src/sim/bad_guard.hh");
    EXPECT_EQ(hits(r), (Hits{{"hygiene-include-guard", 1}}));
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_NE(r.findings[0].message.find("PISO_SIM_BAD_GUARD_HH"),
              std::string::npos);
}

TEST(LintRules, DirectIoInTheLibrary)
{
    const LintResult r = lintFixture("src/os/io.cc");
    EXPECT_EQ(hits(r), (Hits{{"hygiene-io", 10}, {"hygiene-io", 11}}));
}

TEST(LintRules, BareRuntimeErrorThrowsInQuarantinedLayers)
{
    // Qualified and unqualified spellings are both flagged; throwing a
    // SimError subclass and merely naming the type are not.
    const LintResult r = lintFixture("src/exp/bare_throw.cc");
    EXPECT_EQ(hits(r), (Hits{{"error-taxonomy", 15},
                             {"error-taxonomy", 21}}));
}

TEST(LintRules, FullTableScansOnPolicyHotPaths)
{
    // The named-table range-for and the structured-binding pair sweep
    // are flagged; the justified allow, the classic indexed loop, and
    // the initializer-list loop stay clean.
    const LintResult r = lintFixture("src/core/full_scan.cc");
    EXPECT_EQ(hits(r), (Hits{{"hot-path-full-scan", 18},
                             {"hot-path-full-scan", 27}}));
}

TEST(LintRules, BareIntegerLiteralsInTimeArithmetic)
{
    // 500 + Time, Time > 250, Time += 2 are flagged; '500 * kMs'
    // scalar products, 0/1 offsets, and floating literals stay clean.
    const LintResult r = lintFixture("src/sim/time_literal.cc");
    EXPECT_EQ(hits(r), (Hits{{"time-unit-literal", 11},
                             {"time-unit-literal", 12},
                             {"time-unit-literal", 13}}));
}

TEST(LintRules, ScheduledLambdasCapturingPerThreadContexts)
{
    // A raw pointer, a by-ref capture, and the accessor in an init
    // capture are flagged; a by-value copy and resolving the context
    // inside the body are not.
    const LintResult r = lintFixture("src/sim/ctx_capture.cc");
    EXPECT_EQ(hits(r), (Hits{{"context-capture", 14},
                             {"context-capture", 15},
                             {"context-capture", 17}}));
}

// ---------------------------------------------------------------------
// Project (cross-file) rules over the semantic index.
// ---------------------------------------------------------------------

TEST(LintProject, DeletedSaveFieldFailsWithExactlyCheckpointCoverage)
{
    // The class declares four fields; the .cc save body was edited to
    // drop dropped_, ghost_ is on neither path, cache_ is covered by a
    // justified allow. Every surviving finding must be the
    // checkpoint-field-coverage rule and nothing else.
    const LintResult r = lintFixtures(
        {"src/core/ckpt_cover.hh", "src/core/ckpt_cover.cc"});
    EXPECT_EQ(hits(r), (Hits{{kRuleCheckpointCoverage, 21},
                             {kRuleCheckpointCoverage, 22}}));
    EXPECT_EQ(r.exitCode(), 1);
    ASSERT_EQ(r.findings.size(), 2u);
    for (const Finding &f : r.findings)
        EXPECT_EQ(f.path, "src/core/ckpt_cover.hh");
    EXPECT_NE(r.findings[0].message.find(
                  "missing from the save path (load touches it)"),
              std::string::npos);
    EXPECT_NE(r.findings[1].message.find(
                  "missing from both the save and the load path"),
              std::string::npos);
}

TEST(LintProject, UpwardIncludeIsReportedWithTheEdgeNamed)
{
    const LintResult r = lintFixture("src/sim/upward.cc");
    EXPECT_EQ(hits(r), (Hits{{kRuleLayering, 3}}));
    ASSERT_EQ(r.findings.size(), 1u);
    const std::string &msg = r.findings[0].message;
    EXPECT_NE(msg.find("src/sim/upward.cc (layer sim)"),
              std::string::npos);
    EXPECT_NE(msg.find("src/os/tables.hh (layer os)"),
              std::string::npos);
}

TEST(LintProject, IncludeCycleReportedOnceAtTheBackEdge)
{
    const LintResult r =
        lintFixtures({"src/sim/cycle_a.hh", "src/sim/cycle_b.hh"});
    EXPECT_EQ(hits(r), (Hits{{kRuleLayering, 5}}));
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].path, "src/sim/cycle_b.hh");
    EXPECT_NE(r.findings[0].message.find(
                  "include cycle: src/sim/cycle_a.hh -> "
                  "src/sim/cycle_b.hh -> src/sim/cycle_a.hh"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Scoping: the same constructs are legal where the rules don't apply.
// ---------------------------------------------------------------------

TEST(LintScoping, HostTimingAndStdioAreFineInTools)
{
    const LintResult r = lintFixture("tools/scoped_ok.cc");
    EXPECT_EQ(r.findings.size(), 0u);
    EXPECT_EQ(r.exitCode(), 0);
}

TEST(LintScoping, CleanSimFileStaysClean)
{
    // Banned names inside comments and string literals must not trip.
    const LintResult r = lintFixture("src/sim/clean.cc");
    EXPECT_EQ(r.findings.size(), 0u);
    EXPECT_EQ(r.exitCode(), 0);
}

TEST(LintScoping, FixturePathsMapOntoProjectPaths)
{
    EXPECT_EQ(projectRelative(fixture("src/sim/clean.cc")),
              "src/sim/clean.cc");
    EXPECT_EQ(projectRelative(fixture("tools/scoped_ok.cc")),
              "tools/scoped_ok.cc");
    EXPECT_EQ(projectRelative("no/known/root.cc"), "no/known/root.cc");
}

// ---------------------------------------------------------------------
// Suppressions: justified allow() silences; the directive is linted too.
// ---------------------------------------------------------------------

TEST(LintSuppression, JustifiedAllowSilencesOwnLineAndTrailing)
{
    const LintResult r = lintFixture("src/sim/suppressed_ok.cc");
    EXPECT_EQ(r.findings.size(), 0u) << formatText(r);
    EXPECT_EQ(r.exitCode(), 0);
}

TEST(LintSuppression, MissingJustificationIsItselfAFinding)
{
    const LintResult r = lintFixture("src/sim/suppressed_nojust.cc");
    EXPECT_EQ(hits(r), (Hits{{kSuppressionJustification, 9}}));
}

TEST(LintSuppression, UnknownRuleNameSuppressesNothing)
{
    const LintResult r = lintFixture("src/sim/suppressed_unknown.cc");
    EXPECT_EQ(hits(r), (Hits{{"memory-raw-new", 9},
                             {kSuppressionUnknownRule, 5}}));
}

TEST(LintSuppression, StaleAllowIsReported)
{
    const LintResult r = lintFixture("src/sim/suppressed_stale.cc");
    EXPECT_EQ(hits(r), (Hits{{kSuppressionUnused, 4}}));
}

TEST(LintSuppression, AllowFileCoversEveryLine)
{
    // One whole-file grant, two printf call sites: both suppressed,
    // the directive is not stale.
    const LintResult r = lintFixture("src/sim/allow_file_ok.cc");
    EXPECT_EQ(r.findings.size(), 0u) << formatText(r);
    ASSERT_EQ(r.allows.size(), 1u);
    EXPECT_TRUE(r.allows[0].wholeFile);
    EXPECT_EQ(r.allows[0].rules,
              std::vector<std::string>{"hygiene-io"});
}

TEST(LintSuppression, StaleAllowFileIsReported)
{
    // The whole-file escape is still audited: a grant that suppresses
    // nothing anywhere in the file is a finding.
    const LintResult r = lintFixture("src/sim/allow_file_stale.cc");
    EXPECT_EQ(hits(r), (Hits{{kSuppressionUnused, 1}}));
}

TEST(LintSuppression, DocumentationMentioningTheSyntaxIsNotADirective)
{
    const SourceFile f = lexSource(
        "src/sim/x.cc",
        "// Suppress with `piso-lint: allow(rule)` on the line.\n"
        "int a;\n"
        "// piso-lint: allow(hygiene-io) -- leading marker parses\n");
    ASSERT_EQ(f.suppressions.size(), 1u);
    EXPECT_EQ(f.suppressions[0].line, 3);
    EXPECT_EQ(f.suppressions[0].rules,
              std::vector<std::string>{"hygiene-io"});
    EXPECT_EQ(f.suppressions[0].justification, "leading marker parses");
}

TEST(LintSuppression, WrappedJustificationContinuesAcrossCommentLines)
{
    const SourceFile f = lexSource(
        "src/sim/x.cc",
        "// piso-lint: allow(hygiene-io) -- the reason starts here\n"
        "// and wraps onto a second line.\n"
        "int a;\n"
        "// a later unrelated comment does not attach\n");
    ASSERT_EQ(f.suppressions.size(), 1u);
    EXPECT_EQ(f.suppressions[0].justification,
              "the reason starts here and wraps onto a second line.");
}

// ---------------------------------------------------------------------
// Lexer corners the rules depend on.
// ---------------------------------------------------------------------

TEST(LintLexer, MultiLineMacroBodiesStayPreproc)
{
    // Backslash continuations keep every token of a #define flagged as
    // preprocessor, so macro bodies can't confuse the scope tracker.
    const SourceFile f = lexSource("src/sim/x.hh",
                                   "#define LOOP(x)   \\\n"
                                   "    do {          \\\n"
                                   "    } while (0)\n"
                                   "int y;\n");
    for (const Token &t : f.tokens) {
        if (t.line < 4) {
            EXPECT_TRUE(t.preproc) << t.text << " line " << t.line;
        }
    }
    ASSERT_GE(f.tokens.size(), 3u);
    EXPECT_FALSE(f.tokens[f.tokens.size() - 3].preproc);  // 'int'
}

TEST(LintLexer, CommentsAndStringsLeaveNoTokens)
{
    const SourceFile f =
        lexSource("src/sim/x.cc",
                  "int a; // rand() here\n"
                  "/* new delete */ const char *s = \"printf(\";\n"
                  "const char *r = R\"(std::cout << rand())\";\n");
    for (const Token &t : f.tokens) {
        if (t.kind == TokKind::Ident) {
            EXPECT_NE(t.text, "rand");
            EXPECT_NE(t.text, "printf");
            EXPECT_NE(t.text, "cout");
        }
    }
}

// ---------------------------------------------------------------------
// Whole-tree run, output formats, and the exit-code contract.
// ---------------------------------------------------------------------

TEST(LintEngine, FixtureTreeTotals)
{
    LintResult r;
    std::string error;
    ASSERT_TRUE(lintFiles({std::string(PISO_LINT_FIXTURE_DIR)}, r, error))
        << error;
    EXPECT_EQ(r.filesScanned, 23);
    // 4 wallclock + 1 unordered + 2 globals + 3 tables + 1 guard +
    // 2 io + 2 taxonomy + 2 full-scan + 1 nojust + 2 unknown +
    // 2 stale + 3 time-unit + 3 context-capture + 2 checkpoint +
    // 2 layering = 32, each exactly once.
    EXPECT_EQ(r.findings.size(), 32u);
    EXPECT_EQ(r.exitCode(), 1);
    // With no cache every file is re-analyzed.
    EXPECT_EQ(r.filesReanalyzed, r.filesScanned);
}

TEST(LintEngine, MissingPathIsAUsageError)
{
    LintResult r;
    std::string error;
    EXPECT_FALSE(lintFiles({"does/not/exist"}, r, error));
    EXPECT_NE(error.find("does/not/exist"), std::string::npos);
}

TEST(LintEngine, TextAndSarifNameEveryFinding)
{
    const LintResult r = lintFixture("src/os/io.cc");
    const std::string text = formatText(r);
    EXPECT_NE(text.find("src/os/io.cc:10: [hygiene-io]"),
              std::string::npos);
    EXPECT_NE(text.find("2 finding(s)"), std::string::npos);

    const std::string sarif = formatSarif(r);
    EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find("\"ruleId\": \"hygiene-io\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"startLine\": 10"), std::string::npos);

    const LintResult clean = lintFixture("src/sim/clean.cc");
    EXPECT_NE(formatText(clean).find("piso-lint: clean"),
              std::string::npos);
}

TEST(LintEngine, SarifMatchesTheCheckedInShape)
{
    // The SARIF-lite document is pinned byte-for-byte against
    // tests/lint_fixtures/expected/io_sarif.json. Regenerate with
    //   build/piso_lint --json tests/lint_fixtures/src/os/io.cc
    // whenever the rule registry or the format changes — the diff is
    // the review artifact.
    const LintResult r = lintFixture("src/os/io.cc");
    std::ifstream in(fixture("expected/io_sarif.json"),
                     std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing expected/io_sarif.json";
    std::ostringstream os;
    os << in.rdbuf();
    EXPECT_EQ(formatSarif(r), os.str());
}

TEST(LintEngine, ListAllowsNamesEveryDirective)
{
    LintResult r;
    std::string error;
    ASSERT_TRUE(lintFiles({fixture("src/sim/allow_file_ok.cc"),
                           fixture("src/core/ckpt_cover.hh"),
                           fixture("src/core/ckpt_cover.cc")},
                          r, error))
        << error;
    const std::string text = formatAllows(r);
    EXPECT_NE(
        text.find("src/core/ckpt_cover.hh:23: "
                  "allow(checkpoint-field-coverage) -- fixture: derived"),
        std::string::npos)
        << text;
    EXPECT_NE(text.find("src/sim/allow_file_ok.cc:1: "
                        "allow-file(hygiene-io) -- fixture: a demo "
                        "reporter that"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("2 suppression(s) in 3 files"),
              std::string::npos)
        << text;
}

TEST(LintEngine, DiffFilterKeepsTreeWideFamilies)
{
    LintResult r = lintFixtures({"src/sim/upward.cc", "src/os/io.cc"});
    ASSERT_EQ(r.findings.size(), 3u) << formatText(r);

    // The diff touches only io.cc line 10: the second hygiene-io
    // finding is dropped, but the layering finding gates tree-wide and
    // survives a diff that never touched its line.
    DiffLines diff;
    diff.byPath["src/os/io.cc"].push_back({10, 10});
    filterToDiff(r, diff);
    EXPECT_EQ(hits(r), (Hits{{"hygiene-io", 10}, {kRuleLayering, 3}}));
}

// ---------------------------------------------------------------------
// Incremental cache: warm runs skip per-file work, report identically.
// ---------------------------------------------------------------------

TEST(LintCache, WarmRunReanalyzesNothingAndReportsIdentically)
{
    const std::string cachePath =
        testing::TempDir() + "/piso_lint_warm.cache";
    std::filesystem::remove(cachePath);

    LintResult cold;
    LintResult warm;
    std::string error;
    ASSERT_TRUE(lintFilesCached({std::string(PISO_LINT_FIXTURE_DIR)},
                                cachePath, cold, error))
        << error;
    EXPECT_EQ(cold.filesReanalyzed, cold.filesScanned);
    ASSERT_TRUE(lintFilesCached({std::string(PISO_LINT_FIXTURE_DIR)},
                                cachePath, warm, error))
        << error;
    EXPECT_EQ(warm.filesReanalyzed, 0);
    EXPECT_EQ(warm.filesScanned, cold.filesScanned);
    // Identical findings and suppression inventory, not just counts.
    EXPECT_EQ(formatText(warm), formatText(cold));
    EXPECT_EQ(formatAllows(warm), formatAllows(cold));
    std::filesystem::remove(cachePath);
}

TEST(LintCache, ChangedFileReanalyzesItsReverseIncludeClosure)
{
    namespace fs = std::filesystem;
    const fs::path root =
        fs::path(testing::TempDir()) / "piso_lint_closure" / "src" /
        "sim";
    fs::create_directories(root);
    const auto write = [&](const char *name, const std::string &text) {
        std::ofstream out(root / name, std::ios::binary);
        out << text;
    };
    write("dep.hh", "#ifndef PISO_SIM_DEP_HH\n"
                    "#define PISO_SIM_DEP_HH\n"
                    "namespace piso {\n"
                    "inline int depVal() { return 4; }\n"
                    "} // namespace piso\n"
                    "#endif // PISO_SIM_DEP_HH\n");
    write("user.cc", "#include \"src/sim/dep.hh\"\n"
                     "namespace piso {\n"
                     "int useDep() { return depVal(); }\n"
                     "} // namespace piso\n");
    write("other.cc", "namespace piso {\n"
                      "int standalone() { return 5; }\n"
                      "} // namespace piso\n");

    const std::string cachePath =
        testing::TempDir() + "/piso_lint_closure.cache";
    fs::remove(cachePath);
    const std::string tree = (root.parent_path().parent_path()).string();

    LintResult cold;
    std::string error;
    ASSERT_TRUE(lintFilesCached({tree}, cachePath, cold, error))
        << error;
    EXPECT_EQ(cold.filesScanned, 3);
    EXPECT_EQ(cold.filesReanalyzed, 3);
    EXPECT_EQ(cold.findings.size(), 0u) << formatText(cold);

    // Touch the header: the warm run must re-analyze it AND user.cc
    // (its reverse include closure), but not other.cc.
    write("dep.hh", "#ifndef PISO_SIM_DEP_HH\n"
                    "#define PISO_SIM_DEP_HH\n"
                    "// edited\n"
                    "namespace piso {\n"
                    "inline int depVal() { return 4; }\n"
                    "} // namespace piso\n"
                    "#endif // PISO_SIM_DEP_HH\n");
    LintResult warm;
    ASSERT_TRUE(lintFilesCached({tree}, cachePath, warm, error))
        << error;
    EXPECT_EQ(warm.filesScanned, 3);
    EXPECT_EQ(warm.filesReanalyzed, 2);
    EXPECT_EQ(warm.findings.size(), 0u) << formatText(warm);

    fs::remove(cachePath);
    fs::remove_all(fs::path(testing::TempDir()) / "piso_lint_closure");
}

TEST(LintEngine, RegistryIsCompleteAndKnown)
{
    const std::vector<std::string> expected = {
        "determinism-wallclock", "determinism-unordered",
        "thread-global-state",   "table-map-key",
        "memory-raw-new",        "hygiene-include-guard",
        "hygiene-io",            "error-taxonomy",
        "hot-path-full-scan",    "time-unit-literal",
        "context-capture",
    };
    const auto &rules = ruleRegistry();
    ASSERT_EQ(rules.size(), expected.size());
    for (std::size_t i = 0; i < rules.size(); ++i)
        EXPECT_EQ(rules[i].name, expected[i]);
    for (const std::string &name : expected)
        EXPECT_TRUE(knownRule(name));

    const std::vector<std::string> project = {kRuleCheckpointCoverage,
                                              kRuleLayering};
    const auto &prules = projectRuleRegistry();
    ASSERT_EQ(prules.size(), project.size());
    for (std::size_t i = 0; i < prules.size(); ++i)
        EXPECT_EQ(prules[i].name, project[i]);
    for (const std::string &name : project)
        EXPECT_TRUE(knownRule(name));

    EXPECT_FALSE(knownRule("no-such-rule"));
}
