/**
 * @file
 * The lint engine linted: every rule run against known-bad fixtures
 * under tests/lint_fixtures/ (which mirror project paths so the rule
 * scoping applies), plus the suppression machinery and the exit-code
 * contract. Each expected violation must be reported exactly once.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "src/lint/engine.hh"
#include "src/lint/lexer.hh"
#include "src/lint/rules.hh"

using namespace piso::lint;

namespace {

std::string
fixture(const std::string &rel)
{
    return std::string(PISO_LINT_FIXTURE_DIR) + "/" + rel;
}

/** Lint one fixture file; hard-fails the test on I/O errors. */
LintResult
lintFixture(const std::string &rel)
{
    LintResult result;
    std::string error;
    if (!lintFiles({fixture(rel)}, result, error))
        ADD_FAILURE() << "cannot lint " << rel << ": " << error;
    return result;
}

/** (rule, line) pairs, sorted — the shape the expectations use. */
std::vector<std::pair<std::string, int>>
hits(const LintResult &result)
{
    std::vector<std::pair<std::string, int>> out;
    for (const Finding &f : result.findings)
        out.emplace_back(f.rule, f.line);
    std::sort(out.begin(), out.end());
    return out;
}

using Hits = std::vector<std::pair<std::string, int>>;

} // namespace

// ---------------------------------------------------------------------
// One fixture per rule: exact findings, each reported exactly once.
// ---------------------------------------------------------------------

TEST(LintRules, WallclockFlagsEveryHostTimeSource)
{
    const LintResult r = lintFixture("src/sim/wallclock.cc");
    EXPECT_EQ(hits(r), (Hits{{"determinism-wallclock", 11},
                             {"determinism-wallclock", 13},
                             {"determinism-wallclock", 20},
                             {"determinism-wallclock", 20}}));
    EXPECT_EQ(r.exitCode(), 1);
}

TEST(LintRules, UnorderedContainerInEmissionPath)
{
    const LintResult r = lintFixture("src/metrics/unordered.cc");
    EXPECT_EQ(hits(r), (Hits{{"determinism-unordered", 7}}));
}

TEST(LintRules, MutableGlobalsAndStaticLocals)
{
    // const / constexpr / thread_local / plain locals stay clean; the
    // bare namespace-scope int and the static local are flagged.
    const LintResult r = lintFixture("src/core/global_state.cc");
    EXPECT_EQ(hits(r), (Hits{{"thread-global-state", 5},
                             {"thread-global-state", 13}}));
}

TEST(LintRules, MapKeyedByDenseIdAndRawNewDelete)
{
    const LintResult r = lintFixture("src/os/tables.cc");
    EXPECT_EQ(hits(r), (Hits{{"memory-raw-new", 18},
                             {"memory-raw-new", 24},
                             {"table-map-key", 11}}));
}

TEST(LintRules, NonCanonicalIncludeGuard)
{
    const LintResult r = lintFixture("src/sim/bad_guard.hh");
    EXPECT_EQ(hits(r), (Hits{{"hygiene-include-guard", 1}}));
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_NE(r.findings[0].message.find("PISO_SIM_BAD_GUARD_HH"),
              std::string::npos);
}

TEST(LintRules, DirectIoInTheLibrary)
{
    const LintResult r = lintFixture("src/os/io.cc");
    EXPECT_EQ(hits(r), (Hits{{"hygiene-io", 10}, {"hygiene-io", 11}}));
}

TEST(LintRules, BareRuntimeErrorThrowsInQuarantinedLayers)
{
    // Qualified and unqualified spellings are both flagged; throwing a
    // SimError subclass and merely naming the type are not.
    const LintResult r = lintFixture("src/exp/bare_throw.cc");
    EXPECT_EQ(hits(r), (Hits{{"error-taxonomy", 15},
                             {"error-taxonomy", 21}}));
}

TEST(LintRules, FullTableScansOnPolicyHotPaths)
{
    // The named-table range-for and the structured-binding pair sweep
    // are flagged; the justified allow, the classic indexed loop, and
    // the initializer-list loop stay clean.
    const LintResult r = lintFixture("src/core/full_scan.cc");
    EXPECT_EQ(hits(r), (Hits{{"hot-path-full-scan", 18},
                             {"hot-path-full-scan", 27}}));
}

// ---------------------------------------------------------------------
// Scoping: the same constructs are legal where the rules don't apply.
// ---------------------------------------------------------------------

TEST(LintScoping, HostTimingAndStdioAreFineInTools)
{
    const LintResult r = lintFixture("tools/scoped_ok.cc");
    EXPECT_EQ(r.findings.size(), 0u);
    EXPECT_EQ(r.exitCode(), 0);
}

TEST(LintScoping, CleanSimFileStaysClean)
{
    // Banned names inside comments and string literals must not trip.
    const LintResult r = lintFixture("src/sim/clean.cc");
    EXPECT_EQ(r.findings.size(), 0u);
    EXPECT_EQ(r.exitCode(), 0);
}

TEST(LintScoping, FixturePathsMapOntoProjectPaths)
{
    EXPECT_EQ(projectRelative(fixture("src/sim/clean.cc")),
              "src/sim/clean.cc");
    EXPECT_EQ(projectRelative(fixture("tools/scoped_ok.cc")),
              "tools/scoped_ok.cc");
    EXPECT_EQ(projectRelative("no/known/root.cc"), "no/known/root.cc");
}

// ---------------------------------------------------------------------
// Suppressions: justified allow() silences; the directive is linted too.
// ---------------------------------------------------------------------

TEST(LintSuppression, JustifiedAllowSilencesOwnLineAndTrailing)
{
    const LintResult r = lintFixture("src/sim/suppressed_ok.cc");
    EXPECT_EQ(r.findings.size(), 0u) << formatText(r);
    EXPECT_EQ(r.exitCode(), 0);
}

TEST(LintSuppression, MissingJustificationIsItselfAFinding)
{
    const LintResult r = lintFixture("src/sim/suppressed_nojust.cc");
    EXPECT_EQ(hits(r), (Hits{{kSuppressionJustification, 9}}));
}

TEST(LintSuppression, UnknownRuleNameSuppressesNothing)
{
    const LintResult r = lintFixture("src/sim/suppressed_unknown.cc");
    EXPECT_EQ(hits(r), (Hits{{"memory-raw-new", 9},
                             {kSuppressionUnknownRule, 5}}));
}

TEST(LintSuppression, StaleAllowIsReported)
{
    const LintResult r = lintFixture("src/sim/suppressed_stale.cc");
    EXPECT_EQ(hits(r), (Hits{{kSuppressionUnused, 4}}));
}

TEST(LintSuppression, DocumentationMentioningTheSyntaxIsNotADirective)
{
    const SourceFile f = lexSource(
        "src/sim/x.cc",
        "// Suppress with `piso-lint: allow(rule)` on the line.\n"
        "int a;\n"
        "// piso-lint: allow(hygiene-io) -- leading marker parses\n");
    ASSERT_EQ(f.suppressions.size(), 1u);
    EXPECT_EQ(f.suppressions[0].line, 3);
    EXPECT_EQ(f.suppressions[0].rules,
              std::vector<std::string>{"hygiene-io"});
    EXPECT_EQ(f.suppressions[0].justification, "leading marker parses");
}

// ---------------------------------------------------------------------
// Lexer corners the rules depend on.
// ---------------------------------------------------------------------

TEST(LintLexer, MultiLineMacroBodiesStayPreproc)
{
    // Backslash continuations keep every token of a #define flagged as
    // preprocessor, so macro bodies can't confuse the scope tracker.
    const SourceFile f = lexSource("src/sim/x.hh",
                                   "#define LOOP(x)   \\\n"
                                   "    do {          \\\n"
                                   "    } while (0)\n"
                                   "int y;\n");
    for (const Token &t : f.tokens) {
        if (t.line < 4) {
            EXPECT_TRUE(t.preproc) << t.text << " line " << t.line;
        }
    }
    ASSERT_GE(f.tokens.size(), 3u);
    EXPECT_FALSE(f.tokens[f.tokens.size() - 3].preproc);  // 'int'
}

TEST(LintLexer, CommentsAndStringsLeaveNoTokens)
{
    const SourceFile f =
        lexSource("src/sim/x.cc",
                  "int a; // rand() here\n"
                  "/* new delete */ const char *s = \"printf(\";\n"
                  "const char *r = R\"(std::cout << rand())\";\n");
    for (const Token &t : f.tokens) {
        if (t.kind == TokKind::Ident) {
            EXPECT_NE(t.text, "rand");
            EXPECT_NE(t.text, "printf");
            EXPECT_NE(t.text, "cout");
        }
    }
}

// ---------------------------------------------------------------------
// Whole-tree run, output formats, and the exit-code contract.
// ---------------------------------------------------------------------

TEST(LintEngine, FixtureTreeTotals)
{
    LintResult r;
    std::string error;
    ASSERT_TRUE(lintFiles({std::string(PISO_LINT_FIXTURE_DIR)}, r, error))
        << error;
    EXPECT_EQ(r.filesScanned, 14);
    // 4 wallclock + 1 unordered + 2 globals + 3 tables + 1 guard +
    // 2 io + 2 taxonomy + 2 full-scan + 1 nojust + 2 unknown +
    // 1 stale = 21, each exactly once.
    EXPECT_EQ(r.findings.size(), 21u);
    EXPECT_EQ(r.exitCode(), 1);
}

TEST(LintEngine, MissingPathIsAUsageError)
{
    LintResult r;
    std::string error;
    EXPECT_FALSE(lintFiles({"does/not/exist"}, r, error));
    EXPECT_NE(error.find("does/not/exist"), std::string::npos);
}

TEST(LintEngine, TextAndSarifNameEveryFinding)
{
    const LintResult r = lintFixture("src/os/io.cc");
    const std::string text = formatText(r);
    EXPECT_NE(text.find("src/os/io.cc:10: [hygiene-io]"),
              std::string::npos);
    EXPECT_NE(text.find("2 finding(s)"), std::string::npos);

    const std::string sarif = formatSarif(r);
    EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find("\"ruleId\": \"hygiene-io\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"startLine\": 10"), std::string::npos);

    const LintResult clean = lintFixture("src/sim/clean.cc");
    EXPECT_NE(formatText(clean).find("piso-lint: clean"),
              std::string::npos);
}

TEST(LintEngine, RegistryIsCompleteAndKnown)
{
    const std::vector<std::string> expected = {
        "determinism-wallclock", "determinism-unordered",
        "thread-global-state",   "table-map-key",
        "memory-raw-new",        "hygiene-include-guard",
        "hygiene-io",            "error-taxonomy",
        "hot-path-full-scan",
    };
    const auto &rules = ruleRegistry();
    ASSERT_EQ(rules.size(), expected.size());
    for (std::size_t i = 0; i < rules.size(); ++i)
        EXPECT_EQ(rules[i].name, expected[i]);
    for (const std::string &name : expected)
        EXPECT_TRUE(knownRule(name));
    EXPECT_FALSE(knownRule("no-such-rule"));
}
