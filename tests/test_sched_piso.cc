/**
 * @file
 * Unit tests for the PIso scheduler: home preference, idle-CPU loans,
 * and bounded revocation (Section 3.1).
 */

#include <gtest/gtest.h>

#include "src/core/sched_piso.hh"
#include "tests/sched_test_util.hh"

using namespace piso;
using piso::test::FakeClient;

namespace {

struct PisoFixture : public ::testing::Test
{
    EventQueue events;
    PisoScheduler sched{events, 4};
    FakeClient client{events, sched};

    void
    partitionHalf()
    {
        sched.partitionCpus({{2, 0.5}, {3, 0.5}});
    }
};

} // namespace

TEST_F(PisoFixture, HomeCpuPreferred)
{
    partitionHalf();
    sched.start();
    Process *p = client.createProcess(2, 100 * kMs);
    client.startProcess(p);
    EXPECT_EQ(sched.cpu(p->runningOn).homeSpu, 2);
    EXPECT_FALSE(sched.cpu(p->runningOn).loaned);
}

TEST_F(PisoFixture, IdleCpuLoanedToForeignSpu)
{
    partitionHalf();
    sched.start();
    // Four SPU-2 processes: two on SPU-2 CPUs, two borrow SPU-3 CPUs.
    for (int i = 0; i < 4; ++i)
        client.startProcess(client.createProcess(2, 400 * kMs));
    EXPECT_EQ(sched.loanedCount(), 2);
    client.runToCompletion();
    // All four ran concurrently: ~400 ms total.
    EXPECT_NEAR(toMillis(events.now()), 400.0, 40.0);
}

TEST_F(PisoFixture, SharingBeatsQuota)
{
    // Identical oversubscription as the Quota test: 1.6 s of SPU-2
    // work finishes in ~400 ms here instead of ~800 ms.
    partitionHalf();
    sched.start();
    for (int i = 0; i < 4; ++i)
        client.startProcess(client.createProcess(2, 400 * kMs));
    client.runToCompletion();
    EXPECT_LT(toMillis(events.now()), 500.0);
}

TEST_F(PisoFixture, RevocationWithinTenMs)
{
    partitionHalf();
    sched.start();
    // SPU 2 floods the machine; all four CPUs run SPU-2 work.
    for (int i = 0; i < 6; ++i)
        client.startProcess(client.createProcess(2, 2 * kSec));
    EXPECT_EQ(sched.loanedCount(), 2);

    // At t = 100 ms an SPU-3 process arrives. Its CPU must be revoked
    // within one clock tick (10 ms).
    Process *owner = client.createProcess(3, 50 * kMs);
    Time dispatched = 0;
    events.schedule(100 * kMs, [&] { client.startProcess(owner); });
    while (events.runOne()) {
        if (owner->state() == ProcState::Running && dispatched == 0)
            dispatched = events.now();
        if (dispatched)
            break;
    }
    ASSERT_GT(dispatched, 0u);
    EXPECT_LE(dispatched - 100 * kMs, 10 * kMs);
    EXPECT_GE(sched.revocations(), 1u);
}

TEST_F(PisoFixture, IpiRevocationIsImmediate)
{
    partitionHalf();
    sched.setIpiRevocation(true);
    sched.start();
    for (int i = 0; i < 6; ++i)
        client.startProcess(client.createProcess(2, 2 * kSec));
    Process *owner = client.createProcess(3, 50 * kMs);
    events.schedule(105 * kMs, [&] { client.startProcess(owner); });
    events.runAll(105 * kMs);
    EXPECT_EQ(owner->state(), ProcState::Running);
    EXPECT_GE(sched.revocations(), 1u);
}

TEST_F(PisoFixture, IsolationUnderForeignFlood)
{
    // SPU 3 floods; SPU 2's light job keeps its own CPUs and is
    // unaffected (modulo one revocation tick).
    partitionHalf();
    sched.start();
    for (int i = 0; i < 10; ++i)
        client.startProcess(client.createProcess(3, 3 * kSec));
    Process *light = client.createProcess(2, 300 * kMs);
    events.schedule(50 * kMs, [&] { client.startProcess(light); });
    client.runToCompletion();
    const double resp = toMillis(light->endTime - 50 * kMs);
    EXPECT_NEAR(resp, 300.0, 25.0);
}

TEST_F(PisoFixture, LoanEndsWhenBorrowerFinishes)
{
    partitionHalf();
    sched.start();
    Process *hog = client.createProcess(2, 100 * kMs);
    client.startProcess(hog);
    for (int i = 0; i < 2; ++i)
        client.startProcess(client.createProcess(2, 100 * kMs));
    EXPECT_GE(sched.loanedCount(), 1);
    client.runToCompletion();
    EXPECT_EQ(sched.loanedCount(), 0);
}

TEST_F(PisoFixture, BorrowerPicksHighestPriority)
{
    // Between two foreign candidates, the loaned CPU takes the one
    // with the better (lower) priority value.
    partitionHalf();
    sched.start();
    // Fill all four CPUs: SPU 3's own plus SPU 2's.
    client.startProcess(client.createProcess(3, 5 * kSec));
    client.startProcess(client.createProcess(3, 5 * kSec));
    Process *shortA = client.createProcess(2, 100 * kMs);
    Process *shortB = client.createProcess(2, 100 * kMs);
    client.startProcess(shortA);
    client.startProcess(shortB);
    // Two queued SPU-3 processes with different accumulated usage.
    Process *tired = client.createProcess(3, kSec, "tired");
    Process *fresh = client.createProcess(3, kSec, "fresh");
    tired->setRecentCpu(1.0);
    fresh->setRecentCpu(0.0);
    client.startProcess(tired);
    client.startProcess(fresh);
    EXPECT_EQ(tired->state(), ProcState::Ready);
    EXPECT_EQ(fresh->state(), ProcState::Ready);
    // When an SPU-2 CPU frees, the loan goes to the better-priority
    // foreign candidate.
    events.runAll(110 * kMs);
    EXPECT_EQ(fresh->state(), ProcState::Running);
}

TEST_F(PisoFixture, LoanHoldoffBlocksImmediateRelending)
{
    partitionHalf();
    sched.setLoanHoldoff(500 * kMs);
    sched.start();

    // SPU 2 floods; its work borrows SPU 3's CPUs.
    for (int i = 0; i < 6; ++i)
        client.startProcess(client.createProcess(2, 2 * kSec));
    EXPECT_EQ(sched.loanedCount(), 2);

    // An SPU-3 process arrives and leaves quickly: the revoked CPU
    // must stay home-only for the hold-off window.
    Process *owner = client.createProcess(3, 20 * kMs);
    events.schedule(100 * kMs, [&] { client.startProcess(owner); });
    events.runAll(200 * kMs);
    EXPECT_EQ(owner->state(), ProcState::Exited);
    // Inside the hold-off: at most one CPU still loaned (the one that
    // was not revoked).
    EXPECT_LE(sched.loanedCount(), 1);

    // After the hold-off expires the CPU is lent again.
    events.runAll(800 * kMs);
    EXPECT_EQ(sched.loanedCount(), 2);
}

TEST_F(PisoFixture, ZeroHoldoffRelendsImmediately)
{
    partitionHalf();
    sched.start();
    for (int i = 0; i < 6; ++i)
        client.startProcess(client.createProcess(2, 2 * kSec));
    Process *owner = client.createProcess(3, 20 * kMs);
    events.schedule(100 * kMs, [&] { client.startProcess(owner); });
    events.runAll(200 * kMs);
    EXPECT_EQ(owner->state(), ProcState::Exited);
    EXPECT_EQ(sched.loanedCount(), 2); // re-lent right away
}

TEST_F(PisoFixture, RevocationsCountedOnce)
{
    partitionHalf();
    sched.start();
    for (int i = 0; i < 4; ++i)
        client.startProcess(client.createProcess(2, 500 * kMs));
    Process *owner = client.createProcess(3, 100 * kMs);
    events.schedule(50 * kMs, [&] { client.startProcess(owner); });
    client.runToCompletion();
    EXPECT_LE(sched.revocations(), 2u);
}
