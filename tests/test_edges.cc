/**
 * @file
 * Odds-and-ends edge coverage: tiny machines, degenerate workloads,
 * boundary configurations — the inputs a downstream user will
 * eventually feed the library.
 */

#include <gtest/gtest.h>

#include "src/piso.hh"

using namespace piso;

TEST(Edges, OneCpuOneSpuMachineWorks)
{
    SystemConfig cfg;
    cfg.cpus = 1;
    cfg.memoryBytes = 4 * kMiB;
    cfg.scheme = Scheme::PIso;
    cfg.seed = 1;
    Simulation sim(cfg);
    const SpuId u = sim.addSpu({.name = "only"});
    sim.addJob(u, makeScriptJob("j", {ComputeAction{50 * kMs}}));
    const SimResults r = sim.run();
    EXPECT_TRUE(r.completed);
    EXPECT_NEAR(r.job("j").responseSec(), 0.05, 0.01);
}

TEST(Edges, ManySpusOnTinyMachine)
{
    SystemConfig cfg;
    cfg.cpus = 2;
    cfg.memoryBytes = 16 * kMiB;
    cfg.scheme = Scheme::PIso;
    cfg.seed = 2;
    Simulation sim(cfg);
    for (int i = 0; i < 12; ++i) {
        const SpuId u = sim.addSpu({.name = "u" + std::to_string(i)});
        sim.addJob(u, makeScriptJob("j" + std::to_string(i),
                                    {ComputeAction{20 * kMs}}));
    }
    const SimResults r = sim.run();
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.jobs.size(), 12u);
}

TEST(Edges, ZeroComputeJobExitsImmediately)
{
    SystemConfig cfg;
    cfg.cpus = 1;
    cfg.memoryBytes = 4 * kMiB;
    cfg.scheme = Scheme::Smp;
    cfg.seed = 1;
    Simulation sim(cfg);
    const SpuId u = sim.addSpu({.name = "u"});
    sim.addJob(u, makeScriptJob("empty", {}));
    const SimResults r = sim.run();
    EXPECT_TRUE(r.completed);
    EXPECT_LT(r.job("empty").responseSec(), 0.001);
}

TEST(Edges, JobOfManyTinyActions)
{
    SystemConfig cfg;
    cfg.cpus = 1;
    cfg.memoryBytes = 8 * kMiB;
    cfg.scheme = Scheme::Smp;
    cfg.seed = 1;
    Simulation sim(cfg);
    const SpuId u = sim.addSpu({.name = "u"});
    std::vector<Action> script;
    for (int i = 0; i < 2000; ++i)
        script.push_back(ComputeAction{50 * kUs});
    sim.addJob(u, makeScriptJob("chatter", std::move(script)));
    const SimResults r = sim.run();
    EXPECT_TRUE(r.completed);
    EXPECT_NEAR(r.job("chatter").responseSec(), 0.1, 0.02);
}

TEST(Edges, GrowShrinkChurnConserves)
{
    SystemConfig cfg;
    cfg.cpus = 1;
    cfg.memoryBytes = 8 * kMiB;
    cfg.scheme = Scheme::PIso;
    cfg.seed = 1;
    Simulation sim(cfg);
    const SpuId u = sim.addSpu({.name = "u"});
    std::vector<Action> script;
    for (int i = 0; i < 20; ++i) {
        script.push_back(GrowMemAction{200});
        script.push_back(ComputeAction{10 * kMs});
        script.push_back(ShrinkMemAction{200});
    }
    sim.addJob(u, makeScriptJob("churn", std::move(script)));
    const SimResults r = sim.run();
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(sim.vm().levels(u).used, 0u);
}

TEST(Edges, ShrinkBeyondResidentIsSafe)
{
    SystemConfig cfg;
    cfg.cpus = 1;
    cfg.memoryBytes = 8 * kMiB;
    cfg.scheme = Scheme::Smp;
    cfg.seed = 1;
    Simulation sim(cfg);
    const SpuId u = sim.addSpu({.name = "u"});
    sim.addJob(u, makeScriptJob("over", {GrowMemAction{50},
                                         ComputeAction{20 * kMs},
                                         ShrinkMemAction{5000},
                                         ComputeAction{kMs}}));
    EXPECT_TRUE(sim.run().completed);
}

TEST(Edges, ReadOfZeroBytesIsFree)
{
    SystemConfig cfg;
    cfg.cpus = 1;
    cfg.memoryBytes = 8 * kMiB;
    cfg.scheme = Scheme::Smp;
    cfg.seed = 1;
    Simulation sim(cfg);
    const SpuId u = sim.addSpu({.name = "u"});
    JobSpec j;
    j.name = "z";
    j.build = [](Kernel &, WorkloadEnv &env) {
        const FileId f = env.fs.createFile("f", env.disk, 4096);
        std::vector<ProcessSpec> procs;
        procs.push_back(ProcessSpec{
            "z", std::make_unique<ScriptBehavior>(std::vector<Action>{
                     ReadAction{f, 100, 0}})});
        return procs;
    };
    sim.addJob(u, std::move(j));
    const SimResults r = sim.run();
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.kernel.readRequests.value(), 0u);
}

TEST(Edges, BarrierOfWidthOneNeverBlocks)
{
    SystemConfig cfg;
    cfg.cpus = 1;
    cfg.memoryBytes = 8 * kMiB;
    cfg.scheme = Scheme::Smp;
    cfg.seed = 1;
    Simulation sim(cfg);
    const SpuId u = sim.addSpu({.name = "u"});
    JobSpec j;
    j.name = "solo";
    j.build = [](Kernel &k, WorkloadEnv &) {
        const int b = k.createBarrier(1);
        std::vector<Action> script;
        for (int i = 0; i < 10; ++i) {
            script.push_back(ComputeAction{kMs});
            script.push_back(BarrierAction{b});
        }
        std::vector<ProcessSpec> procs;
        procs.push_back(ProcessSpec{
            "solo",
            std::make_unique<ScriptBehavior>(std::move(script))});
        return procs;
    };
    sim.addJob(u, std::move(j));
    const SimResults r = sim.run();
    EXPECT_TRUE(r.completed);
    EXPECT_NEAR(r.job("solo").responseSec(), 0.01, 0.005);
}

TEST(Edges, WholeMemoryWorkingSetOnSmp)
{
    // A single process wanting nearly all of RAM under SMP must
    // still converge (daemon keeps a small reserve; the process
    // steady-states just below its working set).
    SystemConfig cfg;
    cfg.cpus = 1;
    cfg.memoryBytes = 8 * kMiB; // 2048 pages
    cfg.scheme = Scheme::Smp;
    cfg.seed = 1;
    Simulation sim(cfg);
    const SpuId u = sim.addSpu({.name = "u"});
    ComputeSpec big;
    big.totalCpu = 300 * kMs;
    big.wsPages = 1400;
    sim.addJob(u, makeComputeJob("big", big));
    const SimResults r = sim.run();
    EXPECT_TRUE(r.completed);
}

TEST(Edges, SequentialJobsReuseWarmCache)
{
    // Job 2 reads the file job 1 wrote: the second job's reads mostly
    // hit the (persisting) buffer cache.
    SystemConfig cfg;
    cfg.cpus = 1;
    cfg.memoryBytes = 16 * kMiB;
    cfg.scheme = Scheme::Smp;
    cfg.seed = 1;
    Simulation sim(cfg);
    const SpuId u = sim.addSpu({.name = "u"});

    FileId shared = kNoFile;
    JobSpec writer;
    writer.name = "writer";
    writer.build = [&shared](Kernel &, WorkloadEnv &env) {
        shared = env.fs.createFile("data", env.disk, 256 * 1024);
        std::vector<ProcessSpec> procs;
        procs.push_back(ProcessSpec{
            "w", std::make_unique<ScriptBehavior>(std::vector<Action>{
                     WriteAction{shared, 0, 256 * 1024, false}})});
        return procs;
    };
    sim.addJob(u, std::move(writer));

    JobSpec reader;
    reader.name = "reader";
    reader.startAt = kSec;
    reader.build = [&shared](Kernel &, WorkloadEnv &) {
        std::vector<ProcessSpec> procs;
        procs.push_back(ProcessSpec{
            "r", std::make_unique<ScriptBehavior>(std::vector<Action>{
                     ReadAction{shared, 0, 256 * 1024}})});
        return procs;
    };
    sim.addJob(u, std::move(reader));

    const SimResults r = sim.run();
    EXPECT_TRUE(r.completed);
    // The reader found everything cached: zero demand read requests.
    EXPECT_EQ(r.kernel.readRequests.value(), 0u);
    EXPECT_GT(r.kernel.cacheHits.value(), 60u);
}

TEST(Edges, MaxTimeZeroProducesEmptyIncompleteRun)
{
    SystemConfig cfg;
    cfg.cpus = 1;
    cfg.memoryBytes = 4 * kMiB;
    cfg.scheme = Scheme::Smp;
    cfg.maxTime = 0;
    cfg.seed = 1;
    Simulation sim(cfg);
    const SpuId u = sim.addSpu({.name = "u"});
    sim.addJob(u, makeScriptJob("j", {ComputeAction{kSec}}));
    const SimResults r = sim.run();
    EXPECT_FALSE(r.completed);
}
