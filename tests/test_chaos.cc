/**
 * @file
 * Chaos battery for the fault-contained execution layer: every
 * SimError category is injected into a multi-task sweep and must be
 * quarantined into its own TaskOutcome — the other tasks run to
 * completion and their JSONL records stay byte-identical to a
 * failure-free run (docs/robustness.md). Also pins the full-drain
 * contract of the thread pool, the watchdog conversions, the retry
 * discipline, and the failure-manifest format.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/config/workload_spec.hh"
#include "src/exp/pool.hh"
#include "src/exp/runner.hh"
#include "src/piso.hh"

using namespace piso;

namespace {

/** Small and cheap: two SPUs, three schemes x two seeds = 6 tasks. */
const char *kSpec = R"(
machine cpus=2 memory_mb=16 disks=1 scheme=piso seed=7
spu a share=1 disk=0
spu b share=1 disk=0
job a compute name=spin cpu_ms=200 ws_pages=50
job b copy    name=cp bytes_kb=256
)";

exp::ExperimentPlan
plan()
{
    exp::ExperimentPlan p;
    p.base = parseWorkloadSpec(kSpec);
    p.axes.push_back(exp::parseGridAxis("scheme=smp,quota,piso"));
    p.seeds = {1, 2};
    return p;
}

std::vector<exp::ExperimentTask>
tasks()
{
    return exp::expandPlan(plan());
}

/** JSONL split into lines (each without the trailing newline). */
std::vector<std::string>
lines(const std::string &jsonl)
{
    std::vector<std::string> out;
    std::istringstream is(jsonl);
    std::string line;
    while (std::getline(is, line))
        out.push_back(line);
    return out;
}

} // namespace

// ---------------------------------------------------------------------
// Containment per failure category: the poisoned task is quarantined,
// every sibling still completes.
// ---------------------------------------------------------------------

TEST(Chaos, ConfigFailureIsQuarantined)
{
    auto ts = tasks();
    ts[2].spec.config.memoryBytes = 0; // machine that holds no pages
    const exp::SweepOutcome out = exp::runTasks(ts, {.jobs = 1});

    ASSERT_EQ(out.runs.size(), 6u);
    EXPECT_EQ(out.failures(), 1u);
    const exp::TaskOutcome &bad = out.runs[2].outcome;
    EXPECT_EQ(bad.status, exp::TaskStatus::Failed);
    EXPECT_EQ(bad.category, ErrorCategory::Config);
    EXPECT_EQ(bad.retries, 0); // config errors are never retried
    EXPECT_NE(bad.message.find("holds no pages"), std::string::npos);
    for (std::size_t i = 0; i < out.runs.size(); ++i) {
        if (i != 2) {
            EXPECT_TRUE(out.runs[i].outcome.ok()) << "task " << i;
        }
    }
}

TEST(Chaos, InvariantTripIsQuarantined)
{
    auto ts = tasks();
    ts[4].spec.config.chaos.invariantAtEvent = 50;
    const exp::SweepOutcome out = exp::runTasks(ts, {.jobs = 2});

    const exp::TaskOutcome &bad = out.runs[4].outcome;
    EXPECT_EQ(bad.status, exp::TaskStatus::Failed);
    EXPECT_EQ(bad.category, ErrorCategory::Invariant);
    EXPECT_NE(bad.message.find("injected invariant trip"),
              std::string::npos);
    EXPECT_EQ(out.failures(), 1u);
}

TEST(Chaos, AllocationCapExhaustsRetriesThenFails)
{
    auto ts = tasks();
    ts[1].spec.config.chaos.allocCapPages = 1; // trips every attempt
    const exp::SweepOptions opts{.jobs = 1, .maxRetries = 2};
    const exp::SweepOutcome out = exp::runTasks(ts, opts);

    const exp::TaskOutcome &bad = out.runs[1].outcome;
    EXPECT_EQ(bad.status, exp::TaskStatus::Failed);
    EXPECT_EQ(bad.category, ErrorCategory::Resource);
    EXPECT_EQ(bad.retries, 2); // the full budget was spent
    EXPECT_EQ(out.totalRetries(), 2);
    EXPECT_NE(bad.message.find("allocation cap exceeded"),
              std::string::npos);
}

TEST(Chaos, TransientResourcePressureRecoversViaRetry)
{
    auto ts = tasks();
    ts[3].spec.config.chaos.resourceUntilAttempt = 1; // attempt 2 wins
    const exp::SweepOutcome out = exp::runTasks(ts, {.jobs = 1});

    const exp::TaskOutcome &healed = out.runs[3].outcome;
    EXPECT_EQ(healed.status, exp::TaskStatus::Ok);
    EXPECT_EQ(healed.retries, 1);
    EXPECT_EQ(out.failures(), 0u);

    // A task that healed through retry emits the exact success record
    // of an undisturbed run: retries never leak into the manifest of
    // an Ok task.
    const exp::SweepOutcome clean = exp::runTasks(tasks(), {.jobs = 1});
    EXPECT_EQ(exp::formatTaskJsonl(out.runs[3]),
              exp::formatTaskJsonl(clean.runs[3]));
}

TEST(Chaos, WatchdogSimTimeConvertsRunawayToTimedOut)
{
    auto ts = tasks();
    ts[5].spec.config.watchdogSimTime = kMs; // far below the run length
    const exp::SweepOutcome out = exp::runTasks(ts, {.jobs = 1});

    const exp::TaskOutcome &bad = out.runs[5].outcome;
    EXPECT_EQ(bad.status, exp::TaskStatus::TimedOut);
    EXPECT_EQ(bad.category, ErrorCategory::Runaway);
    EXPECT_GT(bad.simTime, kMs);
    EXPECT_NE(bad.message.find("watchdog"), std::string::npos);
    EXPECT_EQ(out.failures(), 1u);
}

TEST(Chaos, WatchdogEventBudgetConvertsRunawayToTimedOut)
{
    auto ts = tasks();
    ts[0].spec.config.watchdogEvents = 10;
    const exp::SweepOutcome out = exp::runTasks(ts, {.jobs = 1});

    const exp::TaskOutcome &bad = out.runs[0].outcome;
    EXPECT_EQ(bad.status, exp::TaskStatus::TimedOut);
    EXPECT_EQ(bad.category, ErrorCategory::Runaway);
    EXPECT_NE(bad.message.find("events exceeded"), std::string::npos);
}

TEST(Chaos, SweepOptionWatchdogOverridesEverySpec)
{
    // The CLI-level watchdog (piso_sweep --max-sim-time) applies to
    // every task without touching the specs.
    const exp::SweepOptions opts{.jobs = 2, .watchdogSimTime = kMs};
    const exp::SweepOutcome out = exp::runTasks(tasks(), opts);
    ASSERT_EQ(out.runs.size(), 6u);
    for (const exp::TaskRun &run : out.runs)
        EXPECT_EQ(run.outcome.status, exp::TaskStatus::TimedOut);
}

// ---------------------------------------------------------------------
// The manifest: succeeding records are byte-identical to a failure-free
// run, failures appear as structured records plus one summary line, and
// none of it depends on the worker count.
// ---------------------------------------------------------------------

TEST(Chaos, SuccessRecordsAreByteIdenticalToFailureFreeRun)
{
    const std::vector<std::string> clean =
        lines(exp::formatSweepJsonl(exp::runTasks(tasks(), {.jobs = 1})));
    ASSERT_EQ(clean.size(), 6u); // no summary line on a clean run

    auto poison = [](std::vector<exp::ExperimentTask> ts) {
        ts[1].spec.config.memoryBytes = 0;
        ts[4].spec.config.watchdogSimTime = kMs;
        return ts;
    };
    const std::string j1 = exp::formatSweepJsonl(
        exp::runTasks(poison(tasks()), {.jobs = 1}));
    const std::string j8 = exp::formatSweepJsonl(
        exp::runTasks(poison(tasks()), {.jobs = 8}));
    EXPECT_EQ(j1, j8);

    const std::vector<std::string> injected = lines(j1);
    ASSERT_EQ(injected.size(), 7u); // 6 tasks + summary
    for (std::size_t i = 0; i < 6; ++i) {
        if (i == 1 || i == 4)
            continue;
        EXPECT_EQ(injected[i], clean[i]) << "task " << i;
    }
}

TEST(Chaos, FailureRecordAndSummaryFormat)
{
    auto ts = tasks();
    ts[2].spec.config.memoryBytes = 0;
    const std::string jsonl =
        exp::formatSweepJsonl(exp::runTasks(ts, {.jobs = 1}));
    const std::vector<std::string> all = lines(jsonl);
    ASSERT_EQ(all.size(), 7u);

    const std::string &bad = all[2];
    EXPECT_NE(bad.find("\"task\":2"), std::string::npos);
    EXPECT_NE(bad.find("\"status\":\"failed\""), std::string::npos);
    EXPECT_NE(bad.find("\"error\":{\"category\":\"config\""),
              std::string::npos);
    EXPECT_NE(bad.find("\"retries\":0"), std::string::npos);
    EXPECT_NE(bad.find("\"message\":\""), std::string::npos);
    EXPECT_EQ(bad.find("\"results\""), std::string::npos);

    EXPECT_NE(all[6].find("\"summary\":{\"tasks\":6,\"ok\":5,"
                          "\"failed\":1,\"timed_out\":0,\"skipped\":0,"
                          "\"retries\":0}"),
              std::string::npos);
}

TEST(Chaos, SummaryTableNamesEveryStatus)
{
    auto ts = tasks();
    ts[0].spec.config.watchdogSimTime = kMs;
    ts[3].spec.config.memoryBytes = 0;
    const std::string table =
        exp::formatSweepSummary(exp::runTasks(ts, {.jobs = 1}));
    EXPECT_NE(table.find("status"), std::string::npos);
    EXPECT_NE(table.find("timed_out"), std::string::npos);
    EXPECT_NE(table.find("failed"), std::string::npos);
    EXPECT_NE(table.find("ok"), std::string::npos);
}

TEST(Chaos, NoKeepGoingSkipsTasksAfterASerialFailure)
{
    auto ts = tasks();
    ts[1].spec.config.memoryBytes = 0;
    const exp::SweepOptions opts{.jobs = 1, .keepGoing = false};
    const exp::SweepOutcome out = exp::runTasks(ts, opts);

    EXPECT_EQ(out.runs[0].outcome.status, exp::TaskStatus::Ok);
    EXPECT_EQ(out.runs[1].outcome.status, exp::TaskStatus::Failed);
    for (std::size_t i = 2; i < out.runs.size(); ++i) {
        EXPECT_EQ(out.runs[i].outcome.status, exp::TaskStatus::Skipped)
            << "task " << i;
        EXPECT_NE(out.runs[i].outcome.message.find("earlier task"),
                  std::string::npos);
    }
    EXPECT_EQ(out.failures(), 5u);
}

// ---------------------------------------------------------------------
// The pool's full-drain contract (the engine's containment rests on
// it): a throwing task never costs siblings their run, and the error
// that surfaces is the lowest-indexed one regardless of worker count.
// ---------------------------------------------------------------------

namespace {

void
poolDrainsAroundThrows(int jobs)
{
    constexpr std::size_t kTasks = 16;
    std::vector<std::atomic<bool>> done(kTasks);
    try {
        exp::parallelFor(kTasks, jobs, [&](std::size_t i) {
            if (i == 5 || i == 11)
                throw std::runtime_error("boom " + std::to_string(i));
            done[i].store(true);
        });
        FAIL() << "parallelFor swallowed the task exceptions";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom 5"); // lowest index wins
    }
    for (std::size_t i = 0; i < kTasks; ++i) {
        if (i != 5 && i != 11) {
            EXPECT_TRUE(done[i].load()) << "task " << i << " abandoned";
        }
    }
}

} // namespace

TEST(Pool, AllTasksCompleteWhenOneThrowsSerial)
{
    poolDrainsAroundThrows(1);
}

TEST(Pool, AllTasksCompleteWhenOneThrowsParallel)
{
    poolDrainsAroundThrows(8);
}

// ---------------------------------------------------------------------
// The SimError taxonomy itself.
// ---------------------------------------------------------------------

TEST(Chaos, OnlyResourceErrorsAreRetryable)
{
    EXPECT_FALSE(ConfigError("c").retryable());
    EXPECT_FALSE(InvariantError("i").retryable());
    EXPECT_TRUE(ResourceError("r").retryable());
    EXPECT_FALSE(RunawayError("w").retryable());
}

TEST(Chaos, CategoryNamesAreStable)
{
    EXPECT_STREQ(errorCategoryName(ErrorCategory::Config), "config");
    EXPECT_STREQ(errorCategoryName(ErrorCategory::Invariant),
                 "invariant");
    EXPECT_STREQ(errorCategoryName(ErrorCategory::Resource),
                 "resource");
    EXPECT_STREQ(errorCategoryName(ErrorCategory::Runaway), "runaway");
}

TEST(Chaos, SimErrorIsCatchableAsRuntimeError)
{
    // Legacy catch sites (and tests) that expect std::runtime_error
    // keep working across the taxonomy migration.
    try {
        throw ConfigError("legacy path");
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("legacy path"),
                  std::string::npos);
    }
}

TEST(Chaos, FatalThrowsStructuredConfigError)
{
    try {
        parseWorkloadSpec("machine cpus=2\n"); // no spus, no jobs
        FAIL() << "bad spec parsed";
    } catch (const SimError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Config);
    }
}

// ---------------------------------------------------------------------
// The hardened invariant layer. PISO_CHECK is compiled out by default
// and throws a catchable InvariantError under -DPISO_HARDENED=ON (the
// CI chaos job); PISO_INVARIANT panics by default and throws when
// hardened.
// ---------------------------------------------------------------------

#ifdef PISO_HARDENED

TEST(Chaos, HardenedChecksThrowInvariantError)
{
    EXPECT_THROW(PISO_CHECK(1 == 2, "probe check"), InvariantError);
    EXPECT_THROW(PISO_INVARIANT(false, "probe invariant"),
                 InvariantError);
    try {
        PISO_INVARIANT(false, "carries ", 42);
        FAIL() << "hardened invariant did not throw";
    } catch (const InvariantError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("carries 42"), std::string::npos);
        EXPECT_NE(what.find("[check: false]"), std::string::npos);
        EXPECT_EQ(e.category(), ErrorCategory::Invariant);
    }
}

TEST(Chaos, HardenedCorruptionProbesAreCatchable)
{
    // A hot-path PISO_CHECK firing mid-simulation surfaces as a
    // quarantinable error, not a process abort: the injected trip in
    // Simulation::run goes through the same InvariantError path.
    auto ts = tasks();
    ts[0].spec.config.chaos.invariantAtEvent = 1;
    const exp::SweepOutcome out = exp::runTasks(ts, {.jobs = 1});
    EXPECT_EQ(out.runs[0].outcome.status, exp::TaskStatus::Failed);
    EXPECT_EQ(out.runs[0].outcome.category, ErrorCategory::Invariant);
}

#else

TEST(Chaos, UnhardenedCheckCompilesToNothing)
{
    // Must not evaluate its condition, let alone throw.
    bool evaluated = false;
    PISO_CHECK(([&] {
                   evaluated = true;
                   return true;
               }()),
               "never reached");
    EXPECT_FALSE(evaluated);
}

#endif // PISO_HARDENED
