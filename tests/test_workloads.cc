/**
 * @file
 * Tests for the workload models: action streams and end-to-end runs.
 */

#include <gtest/gtest.h>

#include "src/piso.hh"

using namespace piso;

namespace {

SystemConfig
smallMachine()
{
    SystemConfig cfg;
    cfg.cpus = 2;
    cfg.memoryBytes = 32 * kMiB;
    cfg.diskCount = 1;
    cfg.scheme = Scheme::Smp;
    cfg.seed = 5;
    return cfg;
}

} // namespace

TEST(ScriptBehavior, PlaysBackThenExits)
{
    ScriptBehavior b({ComputeAction{kMs}, SleepAction{kMs}});
    Process p(1, 2, kNoJob, "p",
              std::make_unique<ScriptBehavior>(std::vector<Action>{}),
              Rng(1));
    Rng rng(1);
    BehaviorContext ctx{0, rng};
    EXPECT_TRUE(std::holds_alternative<ComputeAction>(b.next(p, ctx)));
    EXPECT_TRUE(std::holds_alternative<SleepAction>(b.next(p, ctx)));
    EXPECT_TRUE(std::holds_alternative<ExitAction>(b.next(p, ctx)));
    EXPECT_TRUE(std::holds_alternative<ExitAction>(b.next(p, ctx)));
}

TEST(ComputeBehavior, EmitsGrowThenComputeChunks)
{
    ComputeSpec spec;
    spec.totalCpu = 250 * kMs;
    spec.chunk = 100 * kMs;
    spec.wsPages = 32;
    spec.jitter = 0.0;
    ComputeBehavior b(spec);
    Process p(1, 2, kNoJob, "p",
              std::make_unique<ScriptBehavior>(std::vector<Action>{}),
              Rng(1));
    Rng rng(1);
    BehaviorContext ctx{0, rng};
    EXPECT_TRUE(std::holds_alternative<GrowMemAction>(b.next(p, ctx)));
    Time total = 0;
    Action a = b.next(p, ctx);
    while (std::holds_alternative<ComputeAction>(a)) {
        total += std::get<ComputeAction>(a).duration;
        a = b.next(p, ctx);
    }
    EXPECT_TRUE(std::holds_alternative<ExitAction>(a));
    EXPECT_EQ(total, 250 * kMs);
}

TEST(Job, TracksCompletion)
{
    Job j(0, "j", 2, 100);
    j.addProcess();
    j.addProcess();
    EXPECT_FALSE(j.completed());
    EXPECT_FALSE(j.processExited(500));
    EXPECT_TRUE(j.processExited(900));
    EXPECT_TRUE(j.completed());
    EXPECT_EQ(j.endTime(), 900u);
    EXPECT_EQ(j.response(), 800u);
}

TEST(Workloads, ComputeJobRunsToCompletion)
{
    Simulation sim(smallMachine());
    const SpuId u = sim.addSpu({.name = "u"});
    ComputeSpec spec;
    spec.totalCpu = 300 * kMs;
    sim.addJob(u, makeComputeJob("hog", spec));
    const SimResults r = sim.run();
    ASSERT_TRUE(r.completed);
    EXPECT_NEAR(r.job("hog").responseSec(), 0.3, 0.05);
}

TEST(Workloads, PmakeCompletesAndDoesScatteredIo)
{
    Simulation sim(smallMachine());
    const SpuId u = sim.addSpu({.name = "u"});
    PmakeConfig cfg;
    cfg.parallelism = 2;
    cfg.filesPerWorker = 6;
    sim.addJob(u, makePmake("pm", cfg));
    const SimResults r = sim.run();
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.job("pm").responseSec(), 0.3);
    // Source reads + object writes + metadata syncs hit the disk.
    EXPECT_GT(r.disks[0].requests, 20u);
    EXPECT_GT(r.kernel.syncWriteRequests.value(), 10u);
}

TEST(Workloads, PmakeParallelismUsesBothCpus)
{
    // One worker vs two workers: two workers nearly halve the
    // response on a 2-CPU machine.
    PmakeConfig one;
    one.parallelism = 1;
    one.filesPerWorker = 12;
    Simulation sim1(smallMachine());
    sim1.addJob(sim1.addSpu({.name = "u"}), makePmake("pm", one));
    const double t1 = sim1.run().job("pm").responseSec();

    PmakeConfig two;
    two.parallelism = 2;
    two.filesPerWorker = 6;
    Simulation sim2(smallMachine());
    sim2.addJob(sim2.addSpu({.name = "u"}), makePmake("pm", two));
    const double t2 = sim2.run().job("pm").responseSec();
    EXPECT_LT(t2, 0.75 * t1);
}

TEST(Workloads, OceanBarriersKeepRanksTogether)
{
    SystemConfig cfg = smallMachine();
    cfg.cpus = 4;
    Simulation sim(cfg);
    const SpuId u = sim.addSpu({.name = "u"});
    OceanConfig oc;
    oc.processes = 4;
    oc.iterations = 50;
    oc.grain = 10 * kMs;
    sim.addJob(u, makeOcean("ocean", oc));
    const SimResults r = sim.run();
    ASSERT_TRUE(r.completed);
    // 50 iterations x ~10 ms; barrier waits make it the max of the
    // jittered ranks, so a bit over 0.5 s.
    EXPECT_GT(r.job("ocean").responseSec(), 0.5);
    EXPECT_LT(r.job("ocean").responseSec(), 0.8);
}

TEST(Workloads, OceanSuffersWhenCpuStarved)
{
    // 4 ranks on 2 CPUs: every barrier round needs two batches, so
    // response at least doubles.
    OceanConfig oc;
    oc.processes = 4;
    oc.iterations = 50;
    oc.grain = 10 * kMs;

    SystemConfig four = smallMachine();
    four.cpus = 4;
    Simulation sim4(four);
    sim4.addJob(sim4.addSpu({.name = "u"}), makeOcean("ocean", oc));
    const double t4 = sim4.run().job("ocean").responseSec();

    Simulation sim2(smallMachine()); // 2 CPUs
    sim2.addJob(sim2.addSpu({.name = "u"}), makeOcean("ocean", oc));
    const double t2 = sim2.run().job("ocean").responseSec();
    EXPECT_GT(t2, 1.8 * t4);
}

TEST(Workloads, FileCopyMovesAllData)
{
    Simulation sim(smallMachine());
    const SpuId u = sim.addSpu({.name = "u"});
    FileCopyConfig cc;
    cc.bytes = 4 * kMiB;
    sim.addJob(u, makeFileCopy("cp", cc));
    const SimResults r = sim.run();
    ASSERT_TRUE(r.completed);
    // 4 MiB read + 4 MiB written = 16384 sectors, give or take
    // read-ahead overshoot and delayed-write timing.
    EXPECT_GT(r.disks[0].sectors, 12000u);
}

TEST(Workloads, FileCopyBenefitsFromReadAhead)
{
    Simulation sim(smallMachine());
    const SpuId u = sim.addSpu({.name = "u"});
    FileCopyConfig cc;
    cc.bytes = 4 * kMiB;
    sim.addJob(u, makeFileCopy("cp", cc));
    const SimResults r = sim.run();
    EXPECT_GT(r.kernel.readAheadRequests.value(),
              r.kernel.readRequests.value());
}

TEST(Workloads, CopyRequestCountScalesWithSize)
{
    auto requests = [](std::uint64_t bytes) {
        SystemConfig cfg;
        cfg.cpus = 2;
        cfg.memoryBytes = 44 * kMiB;
        cfg.scheme = Scheme::Smp;
        cfg.seed = 5;
        Simulation sim(cfg);
        FileCopyConfig cc;
        cc.bytes = bytes;
        sim.addJob(sim.addSpu({.name = "u"}), makeFileCopy("cp", cc));
        return sim.run().disks[0].requests;
    };
    const auto small = requests(1 * kMiB);
    const auto big = requests(8 * kMiB);
    EXPECT_GT(big, 5 * small);
}

TEST(Workloads, MakeScriptJobRuns)
{
    Simulation sim(smallMachine());
    const SpuId u = sim.addSpu({.name = "u"});
    sim.addJob(u, makeScriptJob("s", {ComputeAction{50 * kMs}}));
    const SimResults r = sim.run();
    EXPECT_TRUE(r.completed);
    EXPECT_NEAR(r.job("s").responseSec(), 0.05, 0.02);
}

TEST(Workloads, JobStartAtDelaysProcesses)
{
    Simulation sim(smallMachine());
    const SpuId u = sim.addSpu({.name = "u"});
    sim.addJob(u, makeScriptJob("late", {ComputeAction{10 * kMs}},
                                2 * kSec));
    const SimResults r = sim.run();
    EXPECT_GE(r.job("late").end, 2 * kSec);
    // Response measured from the job's own start, not t=0.
    EXPECT_LT(r.job("late").responseSec(), 0.1);
}

TEST(Workloads, InvalidConfigsRejected)
{
    EXPECT_THROW(makePmake("bad", PmakeConfig{.parallelism = 0}),
                 std::runtime_error);
    OceanConfig oc;
    oc.iterations = 0;
    EXPECT_THROW(makeOcean("bad", oc), std::runtime_error);
    FileCopyConfig cc;
    cc.bytes = 0;
    EXPECT_THROW(makeFileCopy("bad", cc), std::runtime_error);
}
