/**
 * @file
 * Dynamic SPU life cycle (Section 2.1: "SPUs can be created and
 * destroyed dynamically, or could be suspended when they have no
 * active processes and awakened at a later time").
 */

#include <gtest/gtest.h>

#include "src/piso.hh"

using namespace piso;

TEST(DynamicSpu, SuspensionReleasesCpusToOthers)
{
    // Quota scheme, 2+2 CPUs. SPU A goes quiet and is suspended at
    // t=0.5 s; rebalancing hands its CPUs to B's four hogs.
    auto hogEnd = [](bool suspendA) {
        SystemConfig cfg;
        cfg.cpus = 4;
        cfg.memoryBytes = 32 * kMiB;
        cfg.diskCount = 2;
        cfg.scheme = Scheme::Quota;
        cfg.seed = 7;
        Simulation sim(cfg);
        const SpuId a = sim.addSpu({.name = "a", .homeDisk = 0});
        const SpuId b = sim.addSpu({.name = "b", .homeDisk = 1});
        sim.addJob(a, makeScriptJob("blip", {ComputeAction{50 * kMs}}));
        for (int i = 0; i < 4; ++i) {
            ComputeSpec hog;
            hog.totalCpu = 2 * kSec;
            hog.wsPages = 32;
            sim.addJob(b, makeComputeJob("hog" + std::to_string(i),
                                         hog));
        }
        if (suspendA) {
            sim.events().schedule(500 * kMs, [&sim, a] {
                sim.spus().suspend(a);
                sim.rebalanceSpus();
            });
        }
        return sim.run().meanResponseSecByPrefix("hog");
    };

    const double with = hogEnd(true);
    const double without = hogEnd(false);
    // Without: 8 s of work on 2 CPUs ~ 4 s. With: ~0.5 s on 2 CPUs
    // then 4 CPUs ~ 2.3 s.
    EXPECT_GT(without, 3.8);
    EXPECT_LT(with, 2.8);
}

TEST(DynamicSpu, SuspensionGrowsOthersMemoryEntitlement)
{
    SystemConfig cfg;
    cfg.cpus = 2;
    cfg.memoryBytes = 16 * kMiB;
    cfg.diskCount = 2;
    cfg.scheme = Scheme::PIso;
    cfg.seed = 9;
    Simulation sim(cfg);
    const SpuId a = sim.addSpu({.name = "a", .homeDisk = 0});
    const SpuId b = sim.addSpu({.name = "b", .homeDisk = 1});
    ComputeSpec job;
    job.totalCpu = 2 * kSec;
    job.wsPages = 500;
    sim.addJob(b, makeComputeJob("worker", job));

    std::uint64_t entitledBefore = 0, entitledAfter = 0;
    sim.events().schedule(300 * kMs, [&] {
        entitledBefore = sim.vm().levels(b).entitled;
        sim.spus().suspend(a);
        sim.rebalanceSpus();
    });
    sim.events().schedule(800 * kMs, [&] {
        entitledAfter = sim.vm().levels(b).entitled;
    });
    ASSERT_TRUE(sim.run().completed);
    // With A suspended, B's share of memory roughly doubles at the
    // sharing policy's next recompute.
    EXPECT_GT(entitledAfter, entitledBefore + entitledBefore / 2);
}

TEST(DynamicSpu, ResumeRestoresProtection)
{
    // A is suspended, B floods everything; A resumes and submits a
    // job — it must get its share back.
    SystemConfig cfg;
    cfg.cpus = 4;
    cfg.memoryBytes = 32 * kMiB;
    cfg.diskCount = 2;
    cfg.scheme = Scheme::PIso;
    cfg.seed = 13;
    Simulation sim(cfg);
    const SpuId a = sim.addSpu({.name = "a", .homeDisk = 0});
    const SpuId b = sim.addSpu({.name = "b", .homeDisk = 1});

    for (int i = 0; i < 8; ++i) {
        ComputeSpec hog;
        hog.totalCpu = 4 * kSec;
        hog.wsPages = 32;
        sim.addJob(b, makeComputeJob("hog" + std::to_string(i), hog));
    }
    // A's job arrives at t=1s, after a suspend/resume cycle.
    ComputeSpec late;
    late.totalCpu = 400 * kMs;
    late.wsPages = 32;
    JobSpec lateJob = makeComputeJob("late", late);
    lateJob.startAt = kSec;
    sim.addJob(a, std::move(lateJob));

    sim.events().schedule(100 * kMs, [&] {
        sim.spus().suspend(a);
        sim.rebalanceSpus();
    });
    sim.events().schedule(900 * kMs, [&] {
        sim.spus().resume(a);
        sim.rebalanceSpus();
    });

    const SimResults r = sim.run();
    ASSERT_TRUE(r.completed);
    // A's job gets its two CPUs: ~0.4 s for one process, allowing for
    // the revocation of loans at resume time.
    EXPECT_LT(r.job("late").responseSec(), 0.55);
}

TEST(DynamicSpu, RepartitionKeepsCpuStateConsistent)
{
    // Direct scheduler-level check: repartition while foreign
    // processes run must leave loaned flags coherent.
    SystemConfig cfg;
    cfg.cpus = 4;
    cfg.memoryBytes = 16 * kMiB;
    cfg.diskCount = 2;
    cfg.scheme = Scheme::PIso;
    cfg.seed = 17;
    Simulation sim(cfg);
    const SpuId a = sim.addSpu({.name = "a", .homeDisk = 0});
    const SpuId b = sim.addSpu({.name = "b", .homeDisk = 1});
    for (int i = 0; i < 6; ++i) {
        ComputeSpec hog;
        hog.totalCpu = 500 * kMs;
        hog.wsPages = 16;
        sim.addJob(i == 0 ? a : b,
                   makeComputeJob("j" + std::to_string(i), hog));
    }
    bool checked = false;
    sim.events().schedule(200 * kMs, [&] {
        sim.spus().suspend(a);
        sim.rebalanceSpus();
        for (int c = 0; c < 4; ++c) {
            const Cpu &cpu = sim.scheduler().cpu(c);
            if (cpu.running && cpu.homeSpu != kNoSpu) {
                EXPECT_EQ(cpu.loaned,
                          cpu.running->spu() != cpu.homeSpu);
            }
        }
        checked = true;
    });
    ASSERT_TRUE(sim.run().completed);
    EXPECT_TRUE(checked);
}

TEST(DynamicSpu, DestroyedSpuLeavesShares)
{
    SpuManager m;
    const SpuId a = m.create({.name = "a"});
    const SpuId b = m.create({.name = "b"});
    const SpuId c = m.create({.name = "c"});
    m.destroy(c);
    EXPECT_DOUBLE_EQ(m.shareOf(a), 0.5);
    EXPECT_DOUBLE_EQ(m.shareOf(b), 0.5);
}
