/**
 * @file
 * Unit tests for the C-SCAN ("Pos") disk scheduler.
 */

#include <gtest/gtest.h>

#include "src/os/cscan.hh"

using namespace piso;

namespace {

DiskRequest
req(std::uint64_t sector, SpuId spu = 2)
{
    DiskRequest r;
    r.spu = spu;
    r.startSector = sector;
    r.sectors = 8;
    return r;
}

} // namespace

TEST(CScan, PicksNextSectorUpward)
{
    CScanScheduler s;
    std::deque<DiskRequest> q{req(100), req(500), req(300)};
    EXPECT_EQ(s.pick(q, 200, 0), 2u); // 300 is next above head 200
}

TEST(CScan, ExactHeadPositionCounts)
{
    CScanScheduler s;
    std::deque<DiskRequest> q{req(100), req(200)};
    EXPECT_EQ(s.pick(q, 200, 0), 1u);
}

TEST(CScan, WrapsToLowestWhenPastAll)
{
    CScanScheduler s;
    std::deque<DiskRequest> q{req(100), req(50), req(80)};
    EXPECT_EQ(s.pick(q, 900, 0), 1u); // wrap to sector 50
}

TEST(CScan, FullSweepOrder)
{
    CScanScheduler s;
    std::deque<DiskRequest> q{req(400), req(100), req(700), req(250)};
    std::vector<std::uint64_t> serviced;
    std::uint64_t head = 0;
    while (!q.empty()) {
        const std::size_t i = s.pick(q, head, 0);
        serviced.push_back(q[i].startSector);
        head = q[i].startSector + q[i].sectors;
        q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
    }
    EXPECT_EQ(serviced,
              (std::vector<std::uint64_t>{100, 250, 400, 700}));
}

TEST(CScan, IgnoresSpu)
{
    CScanScheduler s;
    std::deque<DiskRequest> q{req(500, 2), req(100, 3)};
    EXPECT_EQ(s.pick(q, 0, 0), 1u); // nearest sector wins regardless
}

TEST(CScan, PickAmongRespectsEligibility)
{
    std::deque<DiskRequest> q{req(100, 2), req(300, 3), req(500, 2)};
    const std::size_t i = CScanScheduler::pickAmong(
        q, 0, [](const DiskRequest &r) { return r.spu == 3; });
    EXPECT_EQ(i, 1u);
}

TEST(CScan, PickAmongNoEligibleReturnsSize)
{
    std::deque<DiskRequest> q{req(100, 2)};
    const std::size_t i = CScanScheduler::pickAmong(
        q, 0, [](const DiskRequest &) { return false; });
    EXPECT_EQ(i, q.size());
}

TEST(CScan, ContiguousStreamLocksOutDistantRequest)
{
    // The starvation pattern of Section 3.3: a stream feeding requests
    // just ahead of the head is always "next" in the sweep, so the
    // distant request keeps losing until the stream ends.
    CScanScheduler s;
    std::deque<DiskRequest> q;
    std::uint64_t head = 1000;
    q.push_back(req(500000, 3)); // the victim, far away
    int victimServed = -1;
    for (int i = 0; i < 50; ++i) {
        q.push_back(req(head, 2)); // stream request at the head
        const std::size_t pick = s.pick(q, head, 0);
        if (q[pick].spu == 3) {
            victimServed = i;
            break;
        }
        head = q[pick].startSector + q[pick].sectors;
        q.erase(q.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    EXPECT_EQ(victimServed, -1); // never serviced while stream lives
}
