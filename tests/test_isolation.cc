/**
 * @file
 * End-to-end isolation/sharing tests: scaled-down versions of the
 * paper's claims, one per resource.
 *
 * Terminology from the paper: "isolation" means a lightly-loaded
 * SPU's response time must not degrade when other SPUs add load;
 * "sharing" means an overloaded SPU must benefit from idle resources.
 */

#include <gtest/gtest.h>

#include "src/piso.hh"

using namespace piso;

namespace {

SystemConfig
machine(Scheme scheme, int cpus = 4, std::uint64_t memMb = 32,
        int disks = 2)
{
    SystemConfig cfg;
    cfg.cpus = cpus;
    cfg.memoryBytes = memMb * kMiB;
    cfg.diskCount = disks;
    cfg.scheme = scheme;
    cfg.seed = 1234;
    return cfg;
}

/** Light job in SPU A alone vs. with a heavy SPU B: returns the pair
 *  (solo response, loaded response) for the light job. */
std::pair<double, double>
cpuIsolationProbe(Scheme scheme)
{
    ComputeSpec light;
    light.totalCpu = 400 * kMs;
    light.wsPages = 64;

    Simulation solo(machine(scheme));
    const SpuId a1 = solo.addSpu({.name = "a", .homeDisk = 0});
    solo.addSpu({.name = "b", .homeDisk = 1});
    solo.addJob(a1, makeComputeJob("light", light));
    const double soloSec = solo.run().job("light").responseSec();

    Simulation loaded(machine(scheme));
    const SpuId a2 = loaded.addSpu({.name = "a", .homeDisk = 0});
    const SpuId b2 = loaded.addSpu({.name = "b", .homeDisk = 1});
    loaded.addJob(a2, makeComputeJob("light", light));
    for (int i = 0; i < 6; ++i) {
        ComputeSpec hog;
        hog.totalCpu = 2 * kSec;
        hog.wsPages = 64;
        loaded.addJob(b2, makeComputeJob("hog" + std::to_string(i), hog));
    }
    const double loadedSec = loaded.run().job("light").responseSec();
    return {soloSec, loadedSec};
}

} // namespace

TEST(CpuIsolation, SmpDegradesLightSpuUnderLoad)
{
    const auto [solo, loaded] = cpuIsolationProbe(Scheme::Smp);
    // 7 runnable processes on 4 CPUs: the light job degrades badly.
    EXPECT_GT(loaded, 1.4 * solo);
}

TEST(CpuIsolation, QuotaIsolatesLightSpu)
{
    const auto [solo, loaded] = cpuIsolationProbe(Scheme::Quota);
    EXPECT_LT(loaded, 1.15 * solo);
}

TEST(CpuIsolation, PisoIsolatesLightSpu)
{
    const auto [solo, loaded] = cpuIsolationProbe(Scheme::PIso);
    // The paper's Isolation goal: no degradation (modulo revocation
    // ticks) regardless of others' load.
    EXPECT_LT(loaded, 1.15 * solo);
}

namespace {

/** Overloaded SPU B next to an idle SPU A: mean hog response. */
double
cpuSharingProbe(Scheme scheme)
{
    Simulation sim(machine(scheme));
    sim.addSpu({.name = "a", .homeDisk = 0}); // idle SPU
    const SpuId b = sim.addSpu({.name = "b", .homeDisk = 1});
    for (int i = 0; i < 4; ++i) {
        ComputeSpec hog;
        hog.totalCpu = kSec;
        hog.wsPages = 64;
        sim.addJob(b, makeComputeJob("hog" + std::to_string(i), hog));
    }
    const SimResults r = sim.run();
    return r.meanResponseSecByPrefix("hog");
}

} // namespace

TEST(CpuSharing, PisoUsesIdleCpusLikeSmp)
{
    const double smp = cpuSharingProbe(Scheme::Smp);
    const double piso = cpuSharingProbe(Scheme::PIso);
    EXPECT_LT(piso, 1.2 * smp);
}

TEST(CpuSharing, QuotaWastesIdleCpus)
{
    const double quota = cpuSharingProbe(Scheme::Quota);
    const double piso = cpuSharingProbe(Scheme::PIso);
    // 4 hogs on 2 quota CPUs vs 4 borrowed CPUs: ~2x.
    EXPECT_GT(quota, 1.6 * piso);
}

namespace {

/**
 * Memory probe: SPU A runs a fixed job while SPU B oversubscribes
 * memory. Returns A's job response.
 */
double
memIsolationProbe(Scheme scheme, bool heavyNeighbor)
{
    // 16 MiB machine = 4096 pages; each B hog wants 1800 pages.
    SystemConfig cfg = machine(scheme, 4, 16);
    Simulation sim(cfg);
    const SpuId a = sim.addSpu({.name = "a", .homeDisk = 0});
    const SpuId b = sim.addSpu({.name = "b", .homeDisk = 1});

    ComputeSpec lightJob;
    lightJob.totalCpu = 600 * kMs;
    lightJob.wsPages = 1200; // fits A's half (2048) comfortably
    sim.addJob(a, makeComputeJob("light", lightJob));

    if (heavyNeighbor) {
        for (int i = 0; i < 2; ++i) {
            ComputeSpec hog;
            hog.totalCpu = 2 * kSec;
            hog.wsPages = 1800;
            sim.addJob(b,
                       makeComputeJob("hog" + std::to_string(i), hog));
        }
    }
    return sim.run().job("light").responseSec();
}

} // namespace

TEST(MemoryIsolation, SmpThrashesLightSpu)
{
    const double solo = memIsolationProbe(Scheme::Smp, false);
    const double loaded = memIsolationProbe(Scheme::Smp, true);
    // Global replacement steals the light job's pages: it refaults.
    EXPECT_GT(loaded, 1.15 * solo);
}

TEST(MemoryIsolation, PisoProtectsLightSpu)
{
    const double solo = memIsolationProbe(Scheme::PIso, false);
    const double loaded = memIsolationProbe(Scheme::PIso, true);
    EXPECT_LT(loaded, 1.2 * solo);
}

TEST(MemoryIsolation, QuotaProtectsLightSpu)
{
    const double solo = memIsolationProbe(Scheme::Quota, false);
    const double loaded = memIsolationProbe(Scheme::Quota, true);
    EXPECT_LT(loaded, 1.2 * solo);
}

namespace {

/** Memory sharing probe: B needs more than its half while A idles. */
double
memSharingProbe(Scheme scheme)
{
    SystemConfig cfg = machine(scheme, 4, 16);
    Simulation sim(cfg);
    sim.addSpu({.name = "a", .homeDisk = 0}); // idle
    const SpuId b = sim.addSpu({.name = "b", .homeDisk = 1});
    ComputeSpec big;
    big.totalCpu = kSec;
    big.wsPages = 2800; // > B's half (2048), < machine
    sim.addJob(b, makeComputeJob("big", big));
    return sim.run().job("big").responseSec();
}

} // namespace

TEST(MemorySharing, PisoLendsIdleMemory)
{
    const double piso = memSharingProbe(Scheme::PIso);
    const double quota = memSharingProbe(Scheme::Quota);
    // Quota pins B at its quota: it thrashes against its own limit.
    EXPECT_GT(quota, 1.5 * piso);
}

TEST(MemorySharing, PisoCloseToSmp)
{
    const double piso = memSharingProbe(Scheme::PIso);
    const double smp = memSharingProbe(Scheme::Smp);
    EXPECT_LT(piso, 1.35 * smp);
}

namespace {

/** Disk probe: pmake and a big copy share one disk (Section 4.5). */
SimResults
diskProbe(DiskPolicy policy)
{
    SystemConfig cfg = machine(Scheme::PIso, 2, 44, 1);
    cfg.diskPolicy = policy;
    cfg.diskParams.seekScale = 0.5;
    Simulation sim(cfg);
    const SpuId a = sim.addSpu({.name = "pmk", .homeDisk = 0});
    const SpuId b = sim.addSpu({.name = "cpy", .homeDisk = 0});
    PmakeConfig pm;
    pm.parallelism = 2;
    pm.filesPerWorker = 8;
    sim.addJob(a, makePmake("pmake", pm));
    FileCopyConfig cc;
    cc.bytes = 8 * kMiB;
    sim.addJob(b, makeFileCopy("copy", cc));
    return sim.run();
}

} // namespace

TEST(DiskIsolation, FairPolicyProtectsPmakeFromCopy)
{
    const SimResults pos = diskProbe(DiskPolicy::HeadPosition);
    const SimResults piso = diskProbe(DiskPolicy::FairPosition);
    // The paper's Table 3 shape: PIso cuts the pmake's response and
    // its per-request wait substantially.
    EXPECT_LT(piso.job("pmake").responseSec(),
              0.85 * pos.job("pmake").responseSec());
}

TEST(DiskIsolation, CopyPaysModestly)
{
    const SimResults pos = diskProbe(DiskPolicy::HeadPosition);
    const SimResults piso = diskProbe(DiskPolicy::FairPosition);
    // The copy loses some throughput but is not devastated.
    EXPECT_LT(piso.job("copy").responseSec(),
              1.8 * pos.job("copy").responseSec());
}

TEST(DiskIsolation, SeekLatencyStaysNearCscan)
{
    const SimResults pos = diskProbe(DiskPolicy::HeadPosition);
    const SimResults piso = diskProbe(DiskPolicy::FairPosition);
    const SimResults iso = diskProbe(DiskPolicy::BlindFair);
    // PIso keeps head-position awareness; blind Iso pays extra seek.
    EXPECT_LT(piso.disks[0].avgPositionMs,
              2.0 * pos.disks[0].avgPositionMs);
    EXPECT_GT(iso.disks[0].avgPositionMs, piso.disks[0].avgPositionMs);
}
