/**
 * @file
 * Randomized EventQueue fuzzing against a reference model.
 *
 * The queue's (time, sequence) FIFO contract is what makes every run
 * of the simulator deterministic; these tests interleave schedule /
 * cancel / runOne operations — deliberately piling events onto equal
 * timestamps — and check the firing order, the pending bookkeeping,
 * and the lazy-cancellation corner cases against a sorted-list model.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/sim/event_queue.hh"
#include "src/sim/random.hh"

using namespace piso;

namespace {

/** Reference model entry: what the queue *should* hold. */
struct ModelEvent
{
    Time when;
    std::uint64_t order;  //!< scheduling order (the FIFO tiebreak)
    EventId id;
    int payload;          //!< which callback this is
};

} // namespace

// ---------------------------------------------------------------------
// Equal-timestamp FIFO order survives arbitrary interleavings
// ---------------------------------------------------------------------

TEST(EventQueueFuzz, InterleavedOpsPreserveFifoOrder)
{
    Rng rng(101);
    for (int trial = 0; trial < 40; ++trial) {
        EventQueue q;
        std::vector<ModelEvent> model;  // still-pending events
        std::vector<int> fired;         // payloads in firing order
        std::vector<EventId> firedIds;
        std::uint64_t order = 0;
        int nextPayload = 0;

        for (int op = 0; op < 300; ++op) {
            switch (rng.uniformInt(4)) {
            case 0:
            case 1: { // schedule, biased onto a handful of timestamps
                      // so equal-time collisions are the common case
                const Time when =
                    q.now() + static_cast<Time>(rng.uniformInt(3));
                const int payload = nextPayload++;
                const EventId id = q.schedule(
                    when, [payload, &fired] { fired.push_back(payload); },
                    "fuzz");
                EXPECT_NE(id, kNoEvent);
                EXPECT_TRUE(q.pendingEvent(id));
                model.push_back({when, order++, id, payload});
                break;
            }
            case 2: { // cancel a random known id (pending or fired)
                if (!model.empty() && rng.chance(0.7)) {
                    const std::size_t i = rng.uniformInt(model.size());
                    EXPECT_TRUE(q.cancel(model[i].id));
                    model.erase(model.begin() +
                                static_cast<std::ptrdiff_t>(i));
                } else if (!firedIds.empty()) {
                    // Cancelling an already-fired id is a no-op.
                    const std::size_t i =
                        rng.uniformInt(firedIds.size());
                    const std::size_t before = fired.size();
                    EXPECT_FALSE(q.cancel(firedIds[i]));
                    EXPECT_EQ(fired.size(), before);
                }
                break;
            }
            default: { // runOne
                const bool hadWork = !model.empty();
                const std::size_t firedBefore = fired.size();
                EXPECT_EQ(q.runOne(), hadWork);
                if (hadWork) {
                    // The model's head: min (when, order).
                    const auto head = std::min_element(
                        model.begin(), model.end(),
                        [](const ModelEvent &a, const ModelEvent &b) {
                            if (a.when != b.when)
                                return a.when < b.when;
                            return a.order < b.order;
                        });
                    ASSERT_EQ(fired.size(), firedBefore + 1);
                    EXPECT_EQ(fired.back(), head->payload);
                    EXPECT_EQ(q.now(), head->when);
                    EXPECT_FALSE(q.pendingEvent(head->id));
                    firedIds.push_back(head->id);
                    model.erase(head);
                } else {
                    EXPECT_EQ(fired.size(), firedBefore);
                }
                break;
            }
            }

            // Bookkeeping invariants hold after every operation.
            EXPECT_EQ(q.pending(), model.size());
            EXPECT_EQ(q.empty(), model.empty());
            for (const ModelEvent &e : model)
                EXPECT_TRUE(q.pendingEvent(e.id));
        }

        // Drain: the remainder fires in exact (when, order) order.
        std::stable_sort(model.begin(), model.end(),
                         [](const ModelEvent &a, const ModelEvent &b) {
                             if (a.when != b.when)
                                 return a.when < b.when;
                             return a.order < b.order;
                         });
        const std::size_t firedBefore = fired.size();
        q.runAll();
        ASSERT_EQ(fired.size(), firedBefore + model.size());
        for (std::size_t i = 0; i < model.size(); ++i)
            EXPECT_EQ(fired[firedBefore + i], model[i].payload);
        EXPECT_TRUE(q.empty());
        EXPECT_EQ(q.pending(), 0u);
    }
}

// ---------------------------------------------------------------------
// Targeted corner cases the fuzz loop hits only probabilistically
// ---------------------------------------------------------------------

TEST(EventQueueFuzz, AllEventsAtOneInstantFireInScheduleOrder)
{
    EventQueue q;
    std::vector<int> fired;
    for (int i = 0; i < 100; ++i)
        q.schedule(5, [i, &fired] { fired.push_back(i); });
    q.runAll();
    ASSERT_EQ(fired.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(q.now(), 5);
}

TEST(EventQueueFuzz, CancelledHeadRunIsSkippedNotExecuted)
{
    EventQueue q;
    std::vector<int> fired;
    const EventId a = q.schedule(1, [&] { fired.push_back(1); });
    q.schedule(1, [&] { fired.push_back(2); });
    EXPECT_TRUE(q.cancel(a));
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_TRUE(q.runOne());
    ASSERT_EQ(fired, std::vector<int>{2});
    EXPECT_FALSE(q.runOne());
    // Double-cancel and cancel-after-fire are both no-ops.
    EXPECT_FALSE(q.cancel(a));
    EXPECT_FALSE(q.cancel(kNoEvent));
}

TEST(EventQueueFuzz, ScheduleFromCallbackAtSameInstant)
{
    // An event scheduling another event at now() must run it after
    // every already-queued event at that instant (sequence order).
    EventQueue q;
    std::vector<int> fired;
    q.schedule(3, [&] {
        fired.push_back(1);
        q.schedule(3, [&] { fired.push_back(3); });
    });
    q.schedule(3, [&] { fired.push_back(2); });
    q.runAll();
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueFuzz, CancelStormThenDrain)
{
    // Schedule a burst, cancel most of it, and make sure the lazy
    // tombstones neither fire nor linger in the counts.
    Rng rng(13);
    EventQueue q;
    std::vector<EventId> ids;
    std::vector<int> fired;
    for (int i = 0; i < 500; ++i)
        ids.push_back(q.schedule(
            static_cast<Time>(i % 7), [i, &fired] { fired.push_back(i); }));
    std::size_t live = ids.size();
    for (std::size_t i = 0; i < ids.size(); ++i) {
        if (rng.chance(0.9)) {
            EXPECT_TRUE(q.cancel(ids[i]));
            --live;
            // Cancelling twice reports false and changes nothing.
            EXPECT_FALSE(q.cancel(ids[i]));
            EXPECT_EQ(q.pending(), live);
        }
    }
    q.runAll();
    EXPECT_EQ(fired.size(), live);
    EXPECT_TRUE(q.empty());
}
