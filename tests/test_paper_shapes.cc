/**
 * @file
 * Paper-shape regression tests: scaled-down versions of the Section 4
 * experiments asserting the *orderings* the paper reports. The full
 * parameterisations live in bench/; these keep the shapes from
 * silently regressing during development.
 */

#include <gtest/gtest.h>

#include "src/piso.hh"

using namespace piso;

namespace {

// -------------------------------------------------------------------
// Pmake8 at half scale: 4 SPUs on 4 CPUs, light SPUs 1-2, heavy 3-4.
// -------------------------------------------------------------------

struct Pmake4
{
    double light = 0.0;
    double heavy = 0.0;
};

Pmake4
runPmake4(Scheme scheme, bool unbalanced)
{
    SystemConfig cfg;
    cfg.cpus = 4;
    cfg.memoryBytes = 24 * kMiB;
    cfg.diskCount = 4;
    cfg.scheme = scheme;
    cfg.seed = 2;
    Simulation sim(cfg);

    PmakeConfig pm;
    pm.parallelism = 2;
    pm.filesPerWorker = 6;
    pm.compileCpu = 200 * kMs;
    pm.workerWsPages = 250;

    std::vector<SpuId> light, heavy;
    for (int u = 0; u < 4; ++u) {
        const SpuId spu =
            sim.addSpu({.name = "u" + std::to_string(u),
                        .homeDisk = static_cast<DiskId>(u)});
        (u < 2 ? light : heavy).push_back(spu);
        const int jobs = (unbalanced && u >= 2) ? 2 : 1;
        for (int j = 0; j < jobs; ++j) {
            sim.addJob(spu, makePmake("pm" + std::to_string(u) + "-" +
                                          std::to_string(j),
                                      pm));
        }
    }
    const SimResults r = sim.run();
    return Pmake4{r.meanResponseSec(light), r.meanResponseSec(heavy)};
}

} // namespace

TEST(PaperShapes, Figure2SmpLightUsersDegrade)
{
    const Pmake4 b = runPmake4(Scheme::Smp, false);
    const Pmake4 u = runPmake4(Scheme::Smp, true);
    EXPECT_GT(u.light, 1.3 * b.light); // paper: +56%
}

TEST(PaperShapes, Figure2IsolatedSchemesStayFlat)
{
    for (Scheme s : {Scheme::Quota, Scheme::PIso}) {
        const Pmake4 b = runPmake4(s, false);
        const Pmake4 u = runPmake4(s, true);
        EXPECT_LT(u.light, 1.15 * b.light) << schemeName(s);
        EXPECT_GT(u.light, 0.8 * b.light) << schemeName(s);
    }
}

TEST(PaperShapes, Figure3SharingOrdering)
{
    // Heavy SPUs, unbalanced: Quo must be clearly worst; PIso within
    // ~15% of SMP (the paper has PIso slightly *better*).
    const double smp = runPmake4(Scheme::Smp, true).heavy;
    const double quo = runPmake4(Scheme::Quota, true).heavy;
    const double piso = runPmake4(Scheme::PIso, true).heavy;
    EXPECT_GT(quo, 1.15 * smp);
    EXPECT_LT(piso, 1.15 * smp);
    EXPECT_LT(piso, 0.9 * quo);
}

namespace {

// -------------------------------------------------------------------
// Figure 5 at reduced length.
// -------------------------------------------------------------------

struct Fig5
{
    double ocean = 0.0;
    double eng = 0.0;
};

Fig5
runFig5(Scheme scheme)
{
    SystemConfig cfg;
    cfg.cpus = 8;
    cfg.memoryBytes = 64 * kMiB;
    cfg.diskCount = 2;
    cfg.scheme = scheme;
    cfg.seed = 7;
    Simulation sim(cfg);
    const SpuId s1 = sim.addSpu({.name = "ocean", .homeDisk = 0});
    const SpuId s2 = sim.addSpu({.name = "eng", .homeDisk = 1});
    OceanConfig oc;
    oc.processes = 4;
    oc.iterations = 20;
    oc.grain = 100 * kMs;
    sim.addJob(s1, makeOcean("Ocean", oc));
    for (int i = 0; i < 3; ++i) {
        sim.addJob(s2, makeFlashlite("F" + std::to_string(i), 3 * kSec,
                                     300));
        sim.addJob(s2,
                   makeVcs("V" + std::to_string(i), 3 * kSec, 300));
    }
    const SimResults r = sim.run();
    return Fig5{r.job("Ocean").responseSec(),
                (r.meanResponseSecByPrefix("F") +
                 r.meanResponseSecByPrefix("V")) /
                    2.0};
}

} // namespace

TEST(PaperShapes, Figure5OceanProtectedByPartition)
{
    const Fig5 smp = runFig5(Scheme::Smp);
    const Fig5 quo = runFig5(Scheme::Quota);
    const Fig5 piso = runFig5(Scheme::PIso);
    EXPECT_LT(quo.ocean, 0.9 * smp.ocean);
    EXPECT_LT(piso.ocean, 0.9 * smp.ocean);
}

TEST(PaperShapes, Figure5EngineeringJobsShareUnderPiso)
{
    const Fig5 smp = runFig5(Scheme::Smp);
    const Fig5 quo = runFig5(Scheme::Quota);
    const Fig5 piso = runFig5(Scheme::PIso);
    EXPECT_GT(quo.eng, 1.1 * smp.eng);  // quotas waste Ocean's CPUs
    EXPECT_LT(piso.eng, 1.1 * smp.eng); // PIso lends them
}

namespace {

// -------------------------------------------------------------------
// Table 3/4 at reduced size.
// -------------------------------------------------------------------

SimResults
runDiskPair(DiskPolicy policy)
{
    SystemConfig cfg;
    cfg.cpus = 2;
    cfg.memoryBytes = 44 * kMiB;
    cfg.diskCount = 1;
    cfg.scheme = Scheme::PIso;
    cfg.diskPolicy = policy;
    cfg.diskParams.seekScale = 0.5;
    cfg.kernel.writeThrottleSectors = 64 * 1024;
    cfg.seed = 1;
    Simulation sim(cfg);
    const SpuId sBig = sim.addSpu({.name = "big", .homeDisk = 0});
    const SpuId sSmall = sim.addSpu({.name = "small", .homeDisk = 0});
    FileCopyConfig big;
    big.bytes = 3 * kMiB;
    sim.addJob(sBig, makeFileCopy("big", big));
    FileCopyConfig small;
    small.bytes = 384 * 1024;
    sim.addJob(sSmall, makeFileCopy("small", small));
    return sim.run();
}

} // namespace

TEST(PaperShapes, Table4PosLocksOutSmallCopy)
{
    const SimResults pos = runDiskPair(DiskPolicy::HeadPosition);
    // The paper's inversion: the small copy finishes after the big.
    EXPECT_GT(pos.job("small").responseSec(),
              pos.job("big").responseSec());
}

TEST(PaperShapes, Table4FairPoliciesRescueSmallCopy)
{
    const SimResults pos = runDiskPair(DiskPolicy::HeadPosition);
    const SimResults iso = runDiskPair(DiskPolicy::BlindFair);
    const SimResults piso = runDiskPair(DiskPolicy::FairPosition);
    EXPECT_LT(iso.job("small").responseSec(),
              0.6 * pos.job("small").responseSec());
    EXPECT_LT(piso.job("small").responseSec(),
              0.6 * pos.job("small").responseSec());
    // PIso beats blind Iso for the small copy (paper: 0.28 vs 0.56).
    EXPECT_LE(piso.job("small").responseSec(),
              iso.job("small").responseSec());
}

TEST(PaperShapes, Table4IsoPaysPositioningLatency)
{
    const SimResults pos = runDiskPair(DiskPolicy::HeadPosition);
    const SimResults iso = runDiskPair(DiskPolicy::BlindFair);
    const SimResults piso = runDiskPair(DiskPolicy::FairPosition);
    EXPECT_GT(iso.disks[0].avgPositionMs, piso.disks[0].avgPositionMs);
    EXPECT_GT(iso.disks[0].avgPositionMs, pos.disks[0].avgPositionMs);
}
