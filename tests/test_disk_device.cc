/**
 * @file
 * Unit tests for the DiskDevice request lifecycle and statistics.
 */

#include <gtest/gtest.h>

#include "src/machine/disk.hh"
#include "src/os/cscan.hh"
#include "src/sim/event_queue.hh"

using namespace piso;

namespace {

/** FIFO scheduler for deterministic lifecycle tests. */
class FifoScheduler : public DiskScheduler
{
  public:
    std::size_t
    pick(const std::deque<DiskRequest> &, std::uint64_t, Time) override
    {
        return 0;
    }
};

struct DeviceFixture : public ::testing::Test
{
    EventQueue events;
    DiskDevice disk{events, DiskModel{},
                    std::make_unique<FifoScheduler>(), Rng(1)};

    DiskRequest
    request(std::uint64_t sector, std::uint32_t sectors, SpuId spu = 2)
    {
        DiskRequest r;
        r.spu = spu;
        r.startSector = sector;
        r.sectors = sectors;
        return r;
    }
};

} // namespace

TEST_F(DeviceFixture, StartsIdle)
{
    EXPECT_FALSE(disk.busy());
    EXPECT_EQ(disk.queueDepth(), 0u);
    EXPECT_EQ(disk.headSector(), 0u);
}

TEST_F(DeviceFixture, SingleRequestCompletes)
{
    bool done = false;
    DiskRequest r = request(1000, 8);
    r.onComplete = [&](const DiskRequest &) { done = true; };
    disk.submit(std::move(r));
    EXPECT_TRUE(disk.busy());
    events.runAll();
    EXPECT_TRUE(done);
    EXPECT_FALSE(disk.busy());
    EXPECT_EQ(disk.headSector(), 1008u);
    EXPECT_EQ(disk.stats().requests.value(), 1u);
    EXPECT_EQ(disk.stats().sectors.value(), 8u);
}

TEST_F(DeviceFixture, RequestsAssignedUniqueIds)
{
    const auto a = disk.submit(request(0, 8));
    const auto b = disk.submit(request(100, 8));
    EXPECT_NE(a, b);
    events.runAll();
}

TEST_F(DeviceFixture, FifoOrderWithFifoScheduler)
{
    std::vector<int> order;
    for (int i = 0; i < 3; ++i) {
        DiskRequest r = request(static_cast<std::uint64_t>(i) * 5000, 8);
        r.onComplete = [&order, i](const DiskRequest &) {
            order.push_back(i);
        };
        disk.submit(std::move(r));
    }
    events.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST_F(DeviceFixture, WaitTimeGrowsWithQueue)
{
    for (int i = 0; i < 5; ++i)
        disk.submit(request(static_cast<std::uint64_t>(i) * 100000, 64));
    events.runAll();
    // The last request waited for four service times; mean wait > 0.
    EXPECT_GT(disk.stats().waitMs.mean(), 0.0);
    EXPECT_GT(disk.stats().waitMs.max(), disk.stats().waitMs.min());
}

TEST_F(DeviceFixture, PerSpuStatsSeparate)
{
    disk.submit(request(0, 8, 2));
    disk.submit(request(100000, 16, 3));
    events.runAll();
    EXPECT_EQ(disk.spuStats(2).requests.value(), 1u);
    EXPECT_EQ(disk.spuStats(2).sectors.value(), 8u);
    EXPECT_EQ(disk.spuStats(3).sectors.value(), 16u);
    EXPECT_EQ(disk.spuStats(99).requests.value(), 0u);
}

TEST_F(DeviceFixture, BusyTimeAccumulates)
{
    disk.submit(request(50000, 8));
    events.runAll();
    EXPECT_GT(disk.stats().busyTime, 0u);
    EXPECT_LE(disk.stats().busyTime, events.now());
}

TEST_F(DeviceFixture, CompletionMaySubmitMore)
{
    int completions = 0;
    DiskRequest r = request(0, 8);
    r.onComplete = [&](const DiskRequest &) {
        ++completions;
        DiskRequest next = request(90000, 8);
        next.onComplete = [&](const DiskRequest &) { ++completions; };
        disk.submit(std::move(next));
    };
    disk.submit(std::move(r));
    events.runAll();
    EXPECT_EQ(completions, 2);
}

TEST_F(DeviceFixture, SchedulerSwapRequiresIdle)
{
    disk.submit(request(0, 8));
    EXPECT_THROW(disk.setScheduler(std::make_unique<FifoScheduler>()),
                 std::runtime_error);
    events.runAll();
    EXPECT_NO_THROW(disk.setScheduler(std::make_unique<FifoScheduler>()));
}

TEST_F(DeviceFixture, SequentialStreamIsFasterThanScattered)
{
    // Contiguous stream: each request continues at the head (no seek,
    // no rotation). Scattered requests pay positioning every time.
    EventQueue ev2;
    DiskDevice seq{ev2, DiskModel{}, std::make_unique<FifoScheduler>(),
                   Rng(2)};
    std::uint64_t pos = 0;
    for (int i = 0; i < 20; ++i) {
        DiskRequest r;
        r.spu = 2;
        r.startSector = pos;
        r.sectors = 64;
        pos += 64;
        seq.submit(std::move(r));
    }
    ev2.runAll();
    const Time seqTime = ev2.now();

    EventQueue ev3;
    DiskDevice scat{ev3, DiskModel{}, std::make_unique<FifoScheduler>(),
                    Rng(2)};
    for (int i = 0; i < 20; ++i) {
        DiskRequest r;
        r.spu = 2;
        r.startSector =
            (static_cast<std::uint64_t>(i) * 997 * 1368) % 2000000;
        r.sectors = 64;
        scat.submit(std::move(r));
    }
    ev3.runAll();
    EXPECT_LT(seqTime, ev3.now() / 2);
}

TEST(DiskDevice, RejectsZeroLengthRequest)
{
    EventQueue events;
    DiskDevice disk{events, DiskModel{},
                    std::make_unique<FifoScheduler>(), Rng(1)};
    DiskRequest r;
    r.sectors = 0;
    EXPECT_DEATH(disk.submit(std::move(r)), "zero-length");
}
