/**
 * @file
 * Property-based tests: invariants that must hold across schemes,
 * machine sizes, seeds, and loads (parameterized gtest sweeps).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "src/piso.hh"

using namespace piso;

// ---------------------------------------------------------------------
// Conservation properties across scheme x cpus
// ---------------------------------------------------------------------

class ConservationProp
    : public ::testing::TestWithParam<std::tuple<Scheme, int>>
{
};

TEST_P(ConservationProp, CpuTimeNeverExceedsCapacity)
{
    const auto [scheme, cpus] = GetParam();
    SystemConfig cfg;
    cfg.cpus = cpus;
    cfg.memoryBytes = 32 * kMiB;
    cfg.diskCount = 2;
    cfg.scheme = scheme;
    cfg.seed = 3;
    Simulation sim(cfg);
    const SpuId a = sim.addSpu({.name = "a", .homeDisk = 0});
    const SpuId b = sim.addSpu({.name = "b", .homeDisk = 1});
    for (int i = 0; i < 3; ++i) {
        ComputeSpec spec;
        spec.totalCpu = 300 * kMs;
        sim.addJob(i % 2 ? a : b,
                   makeComputeJob("j" + std::to_string(i), spec));
    }
    const SimResults r = sim.run();
    ASSERT_TRUE(r.completed);

    Time used = 0;
    for (const auto &[spu, sr] : r.spus)
        used += sr.cpuTime;
    EXPECT_LE(used, static_cast<Time>(cpus) * r.simulatedTime);
    // All requested compute was delivered (plus fault service time).
    EXPECT_GE(used, 900 * kMs);
}

TEST_P(ConservationProp, MemoryNeverOverCommitted)
{
    const auto [scheme, cpus] = GetParam();
    SystemConfig cfg;
    cfg.cpus = cpus;
    cfg.memoryBytes = 16 * kMiB;
    cfg.diskCount = 2;
    cfg.scheme = scheme;
    cfg.seed = 3;
    Simulation sim(cfg);
    const SpuId a = sim.addSpu({.name = "a", .homeDisk = 0});
    const SpuId b = sim.addSpu({.name = "b", .homeDisk = 1});
    ComputeSpec big;
    big.totalCpu = 400 * kMs;
    big.wsPages = 2500;
    sim.addJob(a, makeComputeJob("bigA", big));
    sim.addJob(b, makeComputeJob("bigB", big));

    // Sample the invariant as the run progresses.
    bool violated = false;
    std::function<void()> probe = [&] {
        std::uint64_t total = 0;
        for (SpuId spu : sim.vm().spus())
            total += sim.vm().levels(spu).used;
        if (total > sim.vm().totalPages())
            violated = true;
        sim.events().scheduleAfter(50 * kMs, probe);
    };
    sim.events().schedule(0, probe);

    sim.run();
    EXPECT_FALSE(violated);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSizes, ConservationProp,
    ::testing::Combine(::testing::Values(Scheme::Smp, Scheme::Quota,
                                         Scheme::PIso),
                       ::testing::Values(2, 4, 8)),
    [](const auto &info) {
        return std::string(schemeName(std::get<0>(info.param))) + "_" +
               std::to_string(std::get<1>(info.param)) + "cpu";
    });

// ---------------------------------------------------------------------
// Quota hard limit across seeds
// ---------------------------------------------------------------------

class QuotaLimitProp : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(QuotaLimitProp, UsageNeverExceedsQuota)
{
    SystemConfig cfg;
    cfg.cpus = 2;
    cfg.memoryBytes = 16 * kMiB;
    cfg.diskCount = 2;
    cfg.scheme = Scheme::Quota;
    cfg.seed = GetParam();
    Simulation sim(cfg);
    const SpuId a = sim.addSpu({.name = "a", .homeDisk = 0});
    sim.addSpu({.name = "b", .homeDisk = 1});
    ComputeSpec big;
    big.totalCpu = 300 * kMs;
    big.wsPages = 3000; // way over the quota
    sim.addJob(a, makeComputeJob("big", big));

    bool violated = false;
    std::function<void()> probe = [&] {
        if (sim.vm().levels(a).used > sim.vm().levels(a).allowed)
            violated = true;
        sim.events().scheduleAfter(20 * kMs, probe);
    };
    sim.events().schedule(0, probe);
    const SimResults r = sim.run();
    EXPECT_TRUE(r.completed);
    EXPECT_FALSE(violated);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuotaLimitProp,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

// ---------------------------------------------------------------------
// SMP response degrades monotonically with load
// ---------------------------------------------------------------------

class SmpLoadProp : public ::testing::TestWithParam<int>
{
  public:
    static double
    lightResponse(int hogs)
    {
        SystemConfig cfg;
        cfg.cpus = 2;
        cfg.memoryBytes = 32 * kMiB;
        cfg.scheme = Scheme::Smp;
        cfg.seed = 11;
        Simulation sim(cfg);
        const SpuId a = sim.addSpu({.name = "a"});
        ComputeSpec light;
        light.totalCpu = 200 * kMs;
        light.wsPages = 32;
        sim.addJob(a, makeComputeJob("light", light));
        for (int i = 0; i < hogs; ++i) {
            ComputeSpec hog;
            hog.totalCpu = 2 * kSec;
            hog.wsPages = 32;
            sim.addJob(a, makeComputeJob("hog" + std::to_string(i),
                                         hog));
        }
        return sim.run().job("light").responseSec();
    }
};

TEST_P(SmpLoadProp, MoreLoadMeansSlowerResponse)
{
    const int hogs = GetParam();
    const double with = lightResponse(hogs);
    const double less = lightResponse(hogs - 2);
    EXPECT_GT(with, less);
}

INSTANTIATE_TEST_SUITE_P(Loads, SmpLoadProp, ::testing::Values(4, 6, 8));

// ---------------------------------------------------------------------
// PIso isolation invariant across machine widths
// ---------------------------------------------------------------------

class PisoIsolationProp : public ::testing::TestWithParam<int>
{
};

TEST_P(PisoIsolationProp, LightSpuUnaffectedByFlood)
{
    const int cpus = GetParam();
    auto response = [&](int foreignHogs) {
        SystemConfig cfg;
        cfg.cpus = cpus;
        cfg.memoryBytes = 32 * kMiB;
        cfg.diskCount = 2;
        cfg.scheme = Scheme::PIso;
        cfg.seed = 19;
        Simulation sim(cfg);
        const SpuId a = sim.addSpu({.name = "a", .homeDisk = 0});
        const SpuId b = sim.addSpu({.name = "b", .homeDisk = 1});
        ComputeSpec light;
        light.totalCpu = 300 * kMs;
        light.wsPages = 64;
        sim.addJob(a, makeComputeJob("light", light));
        for (int i = 0; i < foreignHogs; ++i) {
            ComputeSpec hog;
            hog.totalCpu = 2 * kSec;
            hog.wsPages = 64;
            sim.addJob(b, makeComputeJob("hog" + std::to_string(i),
                                         hog));
        }
        return sim.run().job("light").responseSec();
    };
    const double solo = response(0);
    const double flooded = response(3 * cpus);
    EXPECT_LT(flooded, 1.15 * solo)
        << "isolation broken on " << cpus << " CPUs";
}

INSTANTIATE_TEST_SUITE_P(Widths, PisoIsolationProp,
                         ::testing::Values(2, 4, 8));

// ---------------------------------------------------------------------
// Disk accounting conservation across disk policies
// ---------------------------------------------------------------------

class DiskAccountingProp : public ::testing::TestWithParam<DiskPolicy>
{
};

TEST_P(DiskAccountingProp, SectorsConserved)
{
    SystemConfig cfg;
    cfg.cpus = 2;
    cfg.memoryBytes = 32 * kMiB;
    cfg.diskCount = 1;
    cfg.scheme = Scheme::PIso;
    cfg.diskPolicy = GetParam();
    cfg.seed = 23;
    Simulation sim(cfg);
    const SpuId a = sim.addSpu({.name = "a", .homeDisk = 0});
    const SpuId b = sim.addSpu({.name = "b", .homeDisk = 0});
    FileCopyConfig cc;
    cc.bytes = 2 * kMiB;
    sim.addJob(a, makeFileCopy("cpA", cc));
    PmakeConfig pm;
    pm.parallelism = 1;
    pm.filesPerWorker = 4;
    sim.addJob(b, makePmake("pm", pm));
    const SimResults r = sim.run();
    ASSERT_TRUE(r.completed);

    std::uint64_t perSpu = 0;
    for (const auto &[spu, sd] : r.disks[0].perSpu)
        perSpu += sd.sectors;
    EXPECT_EQ(perSpu, r.disks[0].sectors);
    // The copy alone moves >= 2 MiB read + write.
    EXPECT_GE(r.disks[0].sectors, 2 * (2 * kMiB / 512));
}

INSTANTIATE_TEST_SUITE_P(Policies, DiskAccountingProp,
                         ::testing::Values(DiskPolicy::HeadPosition,
                                           DiskPolicy::BlindFair,
                                           DiskPolicy::FairPosition),
                         [](const auto &info) {
                             return std::string(
                                 diskPolicyName(info.param));
                         });

// ---------------------------------------------------------------------
// BW threshold trade-off direction (Section 3.3)
// ---------------------------------------------------------------------

class BwThresholdProp : public ::testing::TestWithParam<double>
{
  public:
    static SimResults
    runWith(double threshold)
    {
        SystemConfig cfg;
        cfg.cpus = 2;
        cfg.memoryBytes = 44 * kMiB;
        cfg.diskCount = 1;
        cfg.scheme = Scheme::PIso;
        cfg.diskPolicy = DiskPolicy::FairPosition;
        cfg.bwThresholdSectors = threshold;
        cfg.diskParams.seekScale = 0.5;
        cfg.seed = 29;
        Simulation sim(cfg);
        const SpuId a = sim.addSpu({.name = "a", .homeDisk = 0});
        const SpuId b = sim.addSpu({.name = "b", .homeDisk = 0});
        PmakeConfig pm;
        pm.parallelism = 2;
        pm.filesPerWorker = 8;
        sim.addJob(a, makePmake("pmake", pm));
        FileCopyConfig cc;
        cc.bytes = 8 * kMiB;
        sim.addJob(b, makeFileCopy("copy", cc));
        return sim.run();
    }
};

TEST_P(BwThresholdProp, SmallThresholdProtectsPmake)
{
    const SimResults fair = runWith(GetParam());
    const SimResults loose = runWith(1e15); // effectively pure C-SCAN
    EXPECT_LT(fair.job("pmake").responseSec(),
              loose.job("pmake").responseSec());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, BwThresholdProp,
                         ::testing::Values(64.0, 256.0, 1024.0));

// ---------------------------------------------------------------------
// Determinism across schemes
// ---------------------------------------------------------------------

class DeterminismProp : public ::testing::TestWithParam<Scheme>
{
};

TEST_P(DeterminismProp, IdenticalSeedsIdenticalRuns)
{
    auto once = [&] {
        SystemConfig cfg;
        cfg.cpus = 4;
        cfg.memoryBytes = 24 * kMiB;
        cfg.diskCount = 2;
        cfg.scheme = GetParam();
        cfg.seed = 31;
        Simulation sim(cfg);
        const SpuId a = sim.addSpu({.name = "a", .homeDisk = 0});
        const SpuId b = sim.addSpu({.name = "b", .homeDisk = 1});
        PmakeConfig pm;
        pm.parallelism = 2;
        pm.filesPerWorker = 4;
        sim.addJob(a, makePmake("pm", pm));
        FileCopyConfig cc;
        cc.bytes = 2 * kMiB;
        sim.addJob(b, makeFileCopy("cp", cc));
        return sim.run();
    };
    const SimResults r1 = once();
    const SimResults r2 = once();
    EXPECT_EQ(r1.simulatedTime, r2.simulatedTime);
    EXPECT_EQ(r1.job("pm").end, r2.job("pm").end);
    EXPECT_EQ(r1.job("cp").end, r2.job("cp").end);
    EXPECT_EQ(r1.kernel.refaults.value(), r2.kernel.refaults.value());
}

INSTANTIATE_TEST_SUITE_P(Schemes, DeterminismProp,
                         ::testing::Values(Scheme::Smp, Scheme::Quota,
                                           Scheme::PIso),
                         [](const auto &info) {
                             return schemeName(info.param);
                         });
