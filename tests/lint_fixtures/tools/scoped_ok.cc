// Fixture: host timing is fine in tools/ -- determinism-wallclock is
// scoped to the library.
#include <chrono>
#include <cstdio>

int
main()
{
    const auto t0 = std::chrono::steady_clock::now();
    std::printf("%f\n", std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
    return 0;
}
