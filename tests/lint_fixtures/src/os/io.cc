// Fixture: direct stdio and stream output in the library.
#include <cstdio>
#include <iostream>

namespace piso {

void
dumpStats(int n)
{
    std::printf("n=%d\n", n);  // hit: hygiene-io (stdio call)
    std::cout << n << "\n";    // hit: hygiene-io (stream)
}

} // namespace piso
