// Fixture: std::map keyed by a dense id, plus raw new/delete.
#include <cstddef>
#include <map>

namespace piso {

using SpuId = int;

struct DiskPlan
{
    std::map<SpuId, double> shares;  // hit: table-map-key
    std::map<long, double> byLba;    // clean: not a dense id key
};

char *
makeScratch(std::size_t n)
{
    return new char[n];  // hit: memory-raw-new
}

void
freeScratch(char *p)
{
    delete[] p;  // hit: memory-raw-new (delete)
}

} // namespace piso
