// Known-bad fixture for the error-taxonomy rule: unstructured throws
// in the layers the sweep runner quarantines. Both the qualified and
// the unqualified spelling must be flagged; structured SimError
// subclasses must not.

#include <stdexcept>

using std::runtime_error;

namespace piso::exp {

void
failQualified()
{
    throw std::runtime_error("unclassifiable failure");
}

void
failUnqualified()
{
    throw runtime_error("also unclassifiable");
}

void
failStructured()
{
    // SimError subclasses carry a category; these are the fix.
    throw ConfigError("bad knob");
}

void
mentionOnly(runtime_error &e)
{
    // Naming the type without throwing it is fine.
    (void)e;
}

} // namespace piso::exp
