// Fixture: unordered container in an emission path (src/metrics).
#include <string>

namespace piso {

void
emitRows(const std::unordered_map<std::string, double> &cells)  // hit
{
    (void)cells;
}

} // namespace piso
