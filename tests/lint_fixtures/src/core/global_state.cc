// Fixture: mutable namespace-scope and static-local state in the sim
// core. Only the two mutable names may be flagged.
namespace piso {

int liveCounter = 0;             // hit: mutable namespace-scope state
const int kLimit = 64;           // clean: const
constexpr double kRatio = 0.5;   // clean: constexpr
thread_local int tlsDepth = 0;   // clean: sanctioned per-thread context

int
bump()
{
    static int calls = 0;        // hit: stateful static local
    return ++calls + liveCounter;
}

int
pure(int x)
{
    int local = x + 1;           // clean: plain local
    return local;
}

} // namespace piso
