// Fixture: the save path has been edited to drop dropped_ (the
// "deleted save field" scenario docs/static-analysis.md describes);
// cache_ is deliberately on neither path, covered by the justified
// allow at its declaration.
#include "src/core/ckpt_cover.hh"

namespace piso {

void
CoverDemo::save(CkptWriter &w) const
{
    w.i64(value_);
}

void
CoverDemo::load(CkptReader &r)
{
    value_ = r.i64();
    dropped_ = r.i64();
}

} // namespace piso
