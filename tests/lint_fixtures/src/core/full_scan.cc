// Fixture: full dense-table iteration in the policy layer. The named
// table scan and the structured-binding member sweep are flagged; the
// justified allow, the classic indexed loop, and the plain element
// loop stay clean.
#include "src/core/spu_table.hh"

namespace piso {

struct Fake
{
    SpuTable<double> shares_;
};

double
sumShares(const SpuTable<double> &table)
{
    double total = 0.0;
    for (const auto &entry : table)  // hit: named table in range expr
        total += 1.0;
    return total;
}

int
countPairs(const Fake &f)
{
    int n = 0;
    for (const auto &[spu, s] : f.shares_)  // hit: pair sweep idiom
        ++n;
    return n;
}

int
justified(const Fake &f)
{
    int n = 0;
    // piso-lint: allow(hot-path-full-scan) -- fixture: runs once at
    // setup, not per event.
    for (const auto &[spu, s] : f.shares_)
        ++n;
    return n;
}

int
activeSetLoop(const int *active, int count)
{
    int n = 0;
    for (int i = 0; i < count; ++i)  // clean: classic for
        n += active[i];
    for (int v : {1, 2, 3})  // clean: no table, no binding
        n += v;
    return n;
}

} // namespace piso
