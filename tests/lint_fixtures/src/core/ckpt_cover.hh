#ifndef PISO_CORE_CKPT_COVER_HH
#define PISO_CORE_CKPT_COVER_HH

// Fixture: checkpoint-field-coverage. CoverDemo's save/load bodies
// live in ckpt_cover.cc; the project rule joins them by class name
// across files and checks every non-static data member.

namespace piso {

class CkptWriter;
class CkptReader;

class CoverDemo
{
  public:
    void save(CkptWriter &w) const;
    void load(CkptReader &r);

  private:
    int value_ = 0;    // clean: serialised on both paths
    int dropped_ = 0;  // hit: load reads it, save no longer writes it
    int ghost_ = 0;    // hit: on neither path
    // piso-lint: allow(checkpoint-field-coverage) -- fixture: derived
    // cache, rebuilt on first use after restore.
    int cache_ = 0;
};

} // namespace piso

#endif // PISO_CORE_CKPT_COVER_HH
