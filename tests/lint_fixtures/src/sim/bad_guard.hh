#ifndef WRONG_GUARD_HH
#define WRONG_GUARD_HH

// Fixture: include guard not matching the canonical
// PISO_SIM_BAD_GUARD_HH name.

namespace piso {
inline int
answer()
{
    return 42;
}
} // namespace piso

#endif // WRONG_GUARD_HH
