// piso-lint: allow-file(hygiene-io) -- fixture: a demo reporter that
// prints by design; the whole-file grant covers every call site.
#include <cstdio>

namespace piso {

void
reportA(int n)
{
    std::printf("a=%d\n", n);
}

void
reportB(int n)
{
    std::printf("b=%d\n", n);
}

} // namespace piso
