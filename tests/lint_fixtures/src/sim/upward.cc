// Fixture: an upward include edge out of the sim layer; the layering
// rule names both endpoints and their layers.
#include "src/os/tables.hh"

namespace piso {

inline int
simHelper()
{
    return 3;
}

} // namespace piso
