// Fixture: idiomatic sim-core code; every rule must stay quiet. The
// comment below must NOT trip determinism-wallclock or table-map-key:
// the old code used std::map<SpuId, int> and steady_clock here.
#include <vector>

namespace piso {

int
sum(const std::vector<int> &v)
{
    int total = 0;
    for (int x : v)
        total += x;
    return total;
}

const char *kBanner = "rand() and printf(...) inside a string literal";

} // namespace piso
