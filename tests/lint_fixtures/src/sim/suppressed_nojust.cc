// Fixture: suppression without the mandatory justification. The
// violation is still suppressed, but the bare allow() is itself a
// finding.
namespace piso {

int *
makeRaw()
{
    // piso-lint: allow(memory-raw-new)
    return new int(7);
}

} // namespace piso
