// Fixture: context-capture. Lambdas handed to EventQueue schedule
// calls outlive the enclosing frame and may fire on another sweep
// worker: capturing a raw pointer/reference to a pool-owned
// per-thread context (or the accessor itself) is flagged; capturing
// a copy, or resolving the context inside the body, is not.

namespace piso {

void
demo(EventQueue &events, Time now, int *arr)
{
    TraceContext *ctx = nullptr;
    TraceContext byValue;
    events.schedule(now, [ctx] { use(ctx); });             // hit
    events.schedule(arr[0], [&byValue] { touch(); });      // hit
    events.schedule(now, [byValue] { consume(byValue); }); // clean
    events.scheduleAfter(now, [t = traceContext()] {});    // hit
    events.schedule(now, [] { traceContext(); });          // clean
}

} // namespace piso
