// Fixture: a violation covered by a justified suppression -> clean.
namespace piso {

int *
makeRaw()
{
    // piso-lint: allow(memory-raw-new) -- fixture: exercising a justified own-line suppression
    return new int(7);
}

inline void
drop(int *p)
{
    delete p;  // piso-lint: allow(memory-raw-new) -- fixture: exercising a justified trailing suppression
}

} // namespace piso
