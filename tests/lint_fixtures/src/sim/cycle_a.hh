#ifndef PISO_SIM_CYCLE_A_HH
#define PISO_SIM_CYCLE_A_HH

// Fixture: cycle_a.hh and cycle_b.hh include each other; the layering
// rule reports the cycle once, at the back edge that closes it.
#include "src/sim/cycle_b.hh"

namespace piso {
inline int cycleA() { return 1; }
} // namespace piso

#endif // PISO_SIM_CYCLE_A_HH
