// Fixture: time-unit-literal. Bare integer literals combined with
// Time-typed values via +/-/comparison are flagged; scalar products
// with a unit constant, the unit-free 0/1, and floating literals
// stay clean.

namespace piso {

Time
nextDeadline(Time now)
{
    Time deadline = now + 500;     // hit: bare 500 added to Time
    if (deadline > 250)            // hit: compared against bare 250
        deadline += 2;             // hit: bare 2 added in place
    const Time grace = 500 * kMs;  // clean: scalar * unit constant
    Time ok = now + 500 * kUs;     // clean: scaled before the add
    deadline = deadline - 1;       // clean: one-tick offset
    double frac = 0.5;             // clean: floating literal
    (void)frac;
    return deadline + ok + grace;
}

} // namespace piso
