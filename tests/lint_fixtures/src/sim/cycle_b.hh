#ifndef PISO_SIM_CYCLE_B_HH
#define PISO_SIM_CYCLE_B_HH

// Fixture: the second half of the include cycle; see cycle_a.hh.
#include "src/sim/cycle_a.hh"

namespace piso {
inline int cycleB() { return 2; }
} // namespace piso

#endif // PISO_SIM_CYCLE_B_HH
