// piso-lint: allow-file(memory-raw-new) -- fixture: nothing here
// allocates, so the whole-file grant is stale and must be reported.

namespace piso {

inline int
two()
{
    return 2;
}

} // namespace piso
