// Fixture: wall-clock sources in deterministic code. Never compiled;
// linted by test_piso_lint, which asserts the exact hits below.
#include <chrono>
#include <ctime>

namespace piso {

double
hostSeconds()
{
    const auto t0 = std::chrono::steady_clock::now();  // hit: line 11
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)  // hit: line 13
        .count();
}

long
stamp()
{
    return std::time(nullptr) + std::rand();  // hits: time, rand
}

} // namespace piso
