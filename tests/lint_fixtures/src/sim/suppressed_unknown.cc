// Fixture: allow() naming a rule that does not exist. The misspelled
// directive suppresses nothing, so the violation also surfaces.
namespace piso {

// piso-lint: allow(no-such-rule) -- fixture: unknown rule name
int *
makeRaw()
{
    return new int(7);
}

} // namespace piso
