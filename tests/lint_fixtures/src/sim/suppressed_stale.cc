// Fixture: a suppression that matches no finding -> stale allow().
namespace piso {

// piso-lint: allow(hygiene-io) -- fixture: nothing here writes to stdio
inline int
identity(int x)
{
    return x;
}

} // namespace piso
