/**
 * @file
 * Replay-equivalence battery for bit-exact checkpoint/restore
 * (docs/checkpoint.md).
 *
 * The contract under test: a run that is checkpointed at time T and
 * restored into a freshly-built, identically-configured Simulation
 * produces byte-identical output — the JSON results, the human report,
 * and the execution trace — to the run that never stopped. The battery
 * exercises mid-run checkpoints across the paper-shaped workloads under
 * all three schemes, round-trip image stability (save → load → save),
 * the t=0 pre-run image, the config-digest guard, and the fault-plan
 * prefix contract the warm-start sweep engine is built on.
 *
 * Every test here also runs under -DPISO_HARDENED=ON in CI, so a
 * restore that leaves any subsystem in a state an invariant probe can
 * distinguish from the cold run fails the hardened job even if the
 * final report happens to match.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/config/workload_spec.hh"
#include "src/metrics/report.hh"
#include "src/piso.hh"
#include "src/sim/checkpoint.hh"
#include "src/sim/trace.hh"

using namespace piso;

namespace {

/** Figure 2 shape, scaled down: four SPUs of pmakes, unbalanced. */
const char *kPmakeShape = R"(
machine cpus=4 memory_mb=24 disks=4 scheme=piso seed=7
spu user1 share=1 disk=0
spu user2 share=1 disk=1
spu user3 share=1 disk=2
spu user4 share=1 disk=3
job user1 pmake name=pm1 workers=2 files=4
job user2 pmake name=pm2 workers=2 files=4
job user3 pmake name=pm3a workers=2 files=4
job user3 pmake name=pm3b workers=2 files=4
job user4 pmake name=pm4 workers=2 files=4
)";

/** Figure 5 shape, scaled down: compute hogs against a science job. */
const char *kComputeShape = R"(
machine cpus=4 memory_mb=32 disks=2 scheme=piso seed=3
spu ocean share=1 disk=0
spu eng share=1 disk=1
job ocean ocean name=sim procs=2 iters=40 grain_ms=20 ws_pages=400
job eng compute name=hog1 cpu_ms=2500 ws_pages=300
job eng compute name=hog2 cpu_ms=2500 ws_pages=300
)";

/** Table 3 shape: pmake vs a file copy contending on one disk. */
const char *kCopyShape = R"(
machine cpus=2 memory_mb=24 disks=1 scheme=piso seed=5
spu pmk share=1 disk=0
spu cpy share=1 disk=0
job pmk pmake name=build workers=2 files=6
job cpy copy name=cp bytes_kb=4096
)";

/** Hierarchy + services shape ([spus] tree, oltp in the mix). */
const char *kTreeShape = R"(
machine cpus=4 memory_mb=32 disks=2 scheme=piso seed=11
[spus]
eng share=2
eng.build share=3 disk=0
eng.test share=1 disk=1
ops share=1
ops.db share=1 disk=1
job eng.build pmake name=build workers=2 files=4
job eng.test compute name=tst cpu_ms=1500 ws_pages=200
job ops.db oltp name=db servers=2 txns=40
)";

struct Shape
{
    const char *name;
    const char *text;

    /** Two mid-run checkpoint times per shape. Quiescent boundaries
     *  (no I/O in flight) are a property of the workload: the
     *  disk-saturating shapes only quiesce in specific phases, so the
     *  times are chosen where each shape actually breathes. */
    Time early;
    Time late;
};

const Shape kShapes[] = {
    {"pmake", kPmakeShape, 500 * kMs, 1500 * kMs},
    {"compute", kComputeShape, 500 * kMs, 2 * kSec},
    {"copy", kCopyShape, 50 * kMs, 90 * kMs},
    {"tree", kTreeShape, 500 * kMs, 1510 * kMs}};

const Scheme kSchemes[] = {Scheme::Smp, Scheme::Quota, Scheme::PIso};

WorkloadSpec
shapeSpec(const char *text, Scheme scheme)
{
    WorkloadSpec spec = parseWorkloadSpec(text);
    spec.config.scheme = scheme;
    return spec;
}

/** One observed run: checkpoint image + the run's own results. */
struct Observed
{
    std::string image;
    SimResults results;
};

/** Run @p spec to completion with a checkpoint requested at @p at. */
Observed
observe(WorkloadSpec spec, Time at, bool stop = false)
{
    Observed o;
    spec.config.checkpointAt = at;
    spec.config.checkpointStop = stop;
    spec.config.checkpointSink = [&o](std::string img) {
        o.image = std::move(img);
    };
    Simulation sim(spec.config);
    populateWorkloadSpec(sim, spec);
    o.results = sim.run();
    return o;
}

std::string
coldJson(const WorkloadSpec &spec)
{
    return formatResultsJson(runWorkloadSpec(spec));
}

/** Trace lines of one full run, captured as "t cat msg" strings. */
std::vector<std::string>
tracedRun(const WorkloadSpec &spec, const std::string *image = nullptr)
{
    std::vector<std::string> lines;
    TraceContext ctx;
    ctx.mask = TraceCat::All;
    ctx.sink = [&lines](Time t, TraceCat, const std::string &msg) {
        lines.push_back(std::to_string(t) + " " + msg);
    };
    TraceContextScope scope(ctx);

    Simulation sim(spec.config);
    populateWorkloadSpec(sim, spec);
    if (image) {
        std::istringstream in(*image);
        sim.restore(in);
    }
    sim.run();
    return lines;
}

} // namespace

// ---------------------------------------------------------------------
// Replay equivalence: restored output is byte-identical to cold
// ---------------------------------------------------------------------

TEST(Checkpoint, RestoredRunMatchesColdAcrossShapesAndSchemes)
{
    for (const Shape &shape : kShapes) {
        for (Scheme scheme : kSchemes) {
            const WorkloadSpec spec = shapeSpec(shape.text, scheme);

            // The documented counter-example (docs/checkpoint.md): the
            // copy shape under the quota scheme keeps its single disk
            // busy for the entire run, so no quiescent boundary ever
            // exists and a requested checkpoint must fail loudly
            // instead of being silently dropped.
            if (shape.text == kCopyShape && scheme == Scheme::Quota) {
                EXPECT_THROW(observe(spec, shape.early),
                             InvariantError);
                continue;
            }

            const std::string cold = coldJson(spec);

            for (Time at : {shape.early, shape.late}) {
                const Observed o = observe(spec, at);
                ASSERT_FALSE(o.image.empty())
                    << shape.name << "/" << schemeName(scheme)
                    << ": no checkpoint fired at t=" << at;

                // The observing run itself must be unperturbed ...
                EXPECT_EQ(formatResultsJson(o.results), cold)
                    << shape.name << "/" << schemeName(scheme)
                    << " t=" << at;
                // ... and the restored continuation byte-identical.
                EXPECT_EQ(formatResultsJson(
                              runWorkloadSpecFrom(spec, o.image)),
                          cold)
                    << shape.name << "/" << schemeName(scheme)
                    << " t=" << at;
            }
        }
    }
}

TEST(Checkpoint, RestoredHumanReportMatchesCold)
{
    const WorkloadSpec spec = shapeSpec(kCopyShape, Scheme::PIso);
    const std::string cold = formatResults(runWorkloadSpec(spec));
    const Observed o = observe(spec, 50 * kMs);
    ASSERT_FALSE(o.image.empty());
    EXPECT_EQ(formatResults(runWorkloadSpecFrom(spec, o.image)), cold);
}

TEST(Checkpoint, RestoredTraceIsTheColdRunsSuffix)
{
    const WorkloadSpec spec = shapeSpec(kCopyShape, Scheme::PIso);
    const Observed o = observe(spec, 50 * kMs);
    ASSERT_FALSE(o.image.empty());

    // The restored clock tells us where the cold trace should be cut:
    // everything the restored run emits happens strictly after the
    // checkpoint boundary.
    Simulation probe(spec.config);
    populateWorkloadSpec(probe, spec);
    std::istringstream in(o.image);
    probe.restore(in);
    const Time boundary = probe.events().now();

    // The same cut is applied to the warm run: rebuilding the sim for a
    // restore replays the t=0 setup, which legitimately emits its own
    // setup-time trace lines before the image is loaded.
    const auto tail = [boundary](const std::vector<std::string> &lines) {
        std::vector<std::string> out;
        for (const std::string &line : lines)
            if (std::stoull(line) > boundary)
                out.push_back(line);
        return out;
    };
    const std::vector<std::string> coldTail = tail(tracedRun(spec));
    const std::vector<std::string> warmTail =
        tail(tracedRun(spec, &o.image));
    EXPECT_FALSE(warmTail.empty());
    EXPECT_EQ(warmTail, coldTail);
}

// ---------------------------------------------------------------------
// Round trip: save -> load -> save produces identical bytes
// ---------------------------------------------------------------------

TEST(Checkpoint, RoundTripImageIsByteIdentical)
{
    for (const Shape &shape : kShapes) {
        const WorkloadSpec spec = shapeSpec(shape.text, Scheme::PIso);
        const Observed o = observe(spec, shape.early);
        ASSERT_FALSE(o.image.empty()) << shape.name;

        Simulation sim(spec.config);
        populateWorkloadSpec(sim, spec);
        std::istringstream in(o.image);
        sim.restore(in);
        std::ostringstream out;
        sim.checkpoint(out);
        EXPECT_EQ(out.str(), o.image) << shape.name;
    }
}

TEST(Checkpoint, StopAfterCheckpointProducesTheSameImage)
{
    const WorkloadSpec spec = shapeSpec(kComputeShape, Scheme::PIso);
    const Observed full = observe(spec, kSec);
    const Observed stopped = observe(spec, kSec, /*stop=*/true);
    ASSERT_FALSE(full.image.empty());
    EXPECT_EQ(stopped.image, full.image);
}

// ---------------------------------------------------------------------
// t=0 images: checkpoint before run() is a complete cold start
// ---------------------------------------------------------------------

TEST(Checkpoint, TimeZeroImageRestoresToTheColdRun)
{
    for (Scheme scheme : kSchemes) {
        const WorkloadSpec spec = shapeSpec(kPmakeShape, scheme);

        Simulation sim(spec.config);
        populateWorkloadSpec(sim, spec);
        std::ostringstream out;
        sim.checkpoint(out);
        ASSERT_FALSE(out.str().empty());

        EXPECT_EQ(formatResultsJson(
                      runWorkloadSpecFrom(spec, out.str())),
                  coldJson(spec))
            << schemeName(scheme);
    }
}

// ---------------------------------------------------------------------
// The config digest guards against mismatched configurations
// ---------------------------------------------------------------------

TEST(Checkpoint, DigestRejectsMismatchedConfig)
{
    const WorkloadSpec spec = shapeSpec(kCopyShape, Scheme::PIso);
    const Observed o = observe(spec, 50 * kMs);
    ASSERT_FALSE(o.image.empty());

    {
        WorkloadSpec other = spec;
        other.config.seed = spec.config.seed + 1;
        EXPECT_THROW(runWorkloadSpecFrom(other, o.image), ConfigError);
    }
    {
        WorkloadSpec other = spec;
        other.config.scheme = Scheme::Smp;
        EXPECT_THROW(runWorkloadSpecFrom(other, o.image), ConfigError);
    }
    {
        WorkloadSpec other = spec;
        other.config.cpus = spec.config.cpus + 2;
        EXPECT_THROW(runWorkloadSpecFrom(other, o.image), ConfigError);
    }
    {
        // SPU/job structure is part of the digest too.
        WorkloadSpec other = spec;
        other.spus[0].share = 3.0;
        EXPECT_THROW(runWorkloadSpecFrom(other, o.image), ConfigError);
    }
    {
        WorkloadSpec other = spec;
        other.jobs.pop_back();
        EXPECT_THROW(runWorkloadSpecFrom(other, o.image), ConfigError);
    }
}

TEST(Checkpoint, MaxTimeAndWatchdogsAreNotPartOfTheDigest)
{
    // Run-control knobs do not change the simulated prefix, so a
    // target may extend them relative to the template that produced
    // the image (the warm-start engine relies on this).
    const WorkloadSpec spec = shapeSpec(kCopyShape, Scheme::PIso);
    const Observed o = observe(spec, 50 * kMs);
    ASSERT_FALSE(o.image.empty());

    WorkloadSpec longer = spec;
    longer.config.maxTime = spec.config.maxTime * 2;
    longer.config.watchdogEvents = 50'000'000;
    EXPECT_EQ(formatResultsJson(runWorkloadSpecFrom(longer, o.image)),
              coldJson(longer));
}

// ---------------------------------------------------------------------
// Fault plans: the warm-start prefix contract
// ---------------------------------------------------------------------

namespace {

WorkloadSpec
faultySpec(bool withLateFaults)
{
    WorkloadSpec spec = shapeSpec(kComputeShape, Scheme::PIso);
    // One early fault (before the checkpoint) shared by template and
    // target, plus target-only faults after it.
    spec.config.faults.diskSlow(300 * kMs, 0, 200 * kMs, 4.0);
    if (withLateFaults) {
        spec.config.faults.diskSlow(1500 * kMs, 0, 300 * kMs, 8.0);
        spec.config.faults.diskError(1800 * kMs, 0, 300 * kMs, 0.2);
    }
    return spec;
}

} // namespace

TEST(Checkpoint, RestoreUnderALongerFaultPlanMatchesCold)
{
    // Template: common fault prefix only, checkpoint after the prefix
    // has fully fired. Target: full fault plan, restored from the
    // template's image. The continuation must equal the target's cold
    // run byte for byte.
    const Observed tmpl = observe(faultySpec(false), kSec);
    ASSERT_FALSE(tmpl.image.empty());

    const WorkloadSpec target = faultySpec(true);
    EXPECT_EQ(formatResultsJson(runWorkloadSpecFrom(target, tmpl.image)),
              coldJson(target));
}

TEST(Checkpoint, CheckpointWaitsOutAnActiveFaultWindow)
{
    // checkpointAt lands inside the disk-slow window; the image must
    // not be cut while the restore-to-normal event is the only thing
    // keeping the window's end alive.
    const WorkloadSpec spec = faultySpec(false);
    const std::string cold = coldJson(spec);
    const Observed o = observe(spec, 350 * kMs);
    ASSERT_FALSE(o.image.empty());
    EXPECT_EQ(formatResultsJson(runWorkloadSpecFrom(spec, o.image)),
              cold);
}

// ---------------------------------------------------------------------
// Misuse and error handling
// ---------------------------------------------------------------------

TEST(Checkpoint, CheckpointAtWithoutSinkIsAConfigError)
{
    WorkloadSpec spec = shapeSpec(kCopyShape, Scheme::PIso);
    spec.config.checkpointAt = kSec;
    EXPECT_THROW(runWorkloadSpec(spec), ConfigError);
}

TEST(Checkpoint, UnreachableDeadlineIsAnInvariantError)
{
    WorkloadSpec spec = shapeSpec(kCopyShape, Scheme::PIso);
    // Request a checkpoint beyond the end of the run: the run drains
    // before ever reaching checkpointAt, and the deadline converts the
    // silent no-checkpoint into a structured failure.
    spec.config.checkpointAt = 3000 * kSec;
    spec.config.checkpointDeadline = 3000 * kSec;
    spec.config.checkpointSink = [](std::string) {};
    EXPECT_THROW(runWorkloadSpec(spec), InvariantError);
}

TEST(Checkpoint, RestoreAfterRunIsRejected)
{
    const WorkloadSpec spec = shapeSpec(kCopyShape, Scheme::PIso);
    const Observed o = observe(spec, 50 * kMs);
    ASSERT_FALSE(o.image.empty());

    Simulation sim(spec.config);
    populateWorkloadSpec(sim, spec);
    sim.run();
    std::istringstream in(o.image);
    EXPECT_THROW(sim.restore(in), std::runtime_error);
}

TEST(Checkpoint, RestoreIntoUnpopulatedSimulationIsRejected)
{
    const WorkloadSpec spec = shapeSpec(kCopyShape, Scheme::PIso);
    const Observed o = observe(spec, 50 * kMs);
    ASSERT_FALSE(o.image.empty());

    // Same machine config, but the addSpu/addJob replay is missing:
    // the digest cannot match.
    Simulation sim(spec.config);
    std::istringstream in(o.image);
    EXPECT_THROW(sim.restore(in), ConfigError);
}

// ---------------------------------------------------------------------
// Big-machine coverage: NUMA/bus state survives the round trip
// ---------------------------------------------------------------------

// The 256-CPU x 512-SPU topology the scaling PR targets, with the NUMA
// memory domains and bus model enabled so the checkpoint image carries
// their counters. Only eight SPUs run jobs — the other 504 exist to
// put the big-machine population (SPU tables, ledger, scheduler
// registries) through serialization, which is exactly the state the
// O(active) loops index differently from the eager baseline.
TEST(Checkpoint, BigMachineNumaStateSurvivesTheRoundTrip)
{
    std::string text =
        "machine cpus=256 memory_mb=512 disks=8 scheme=piso seed=9 "
        "numa_domains=4 numa_local_us=1 numa_remote_us=3 "
        "bus_mbps=800 bus_saturation=0.7\n";
    for (int u = 0; u < 512; ++u)
        text += "spu u" + std::to_string(u) + " share=1 disk=" +
                std::to_string(u % 8) + "\n";
    // pmake workers block on disk and re-dispatch on whichever CPU is
    // free, so the touch stream crosses domains both ways; a static
    // one-job-per-CPU shape pins each SPU to one domain pairing and
    // can miss the local path entirely.
    for (int u = 0; u < 8; ++u)
        text += "job u" + std::to_string(u) + " pmake name=pm" +
                std::to_string(u) + " workers=2 files=4\n";

    const WorkloadSpec spec = parseWorkloadSpec(text);
    const SimResults cold = runWorkloadSpec(spec);
    ASSERT_TRUE(cold.numa.enabled);
    ASSERT_EQ(cold.numa.domains, 4);
    // Striped placement on a 4-domain machine: both kinds of touch
    // must actually occur, or the round trip proves nothing.
    ASSERT_GT(cold.numa.localTouches, 0u);
    ASSERT_GT(cold.numa.remoteTouches, 0u);
    ASSERT_GT(cold.numa.busBytes, 0u);

    const Observed o = observe(spec, 300 * kMs);
    ASSERT_FALSE(o.image.empty());

    const WorkloadSpec again = parseWorkloadSpec(text);
    Simulation sim(again.config);
    populateWorkloadSpec(sim, again);
    std::istringstream in(o.image);
    sim.restore(in);
    const SimResults warm = sim.run();

    EXPECT_EQ(formatResultsJson(warm), formatResultsJson(cold));
    EXPECT_EQ(warm.numa.localTouches, cold.numa.localTouches);
    EXPECT_EQ(warm.numa.remoteTouches, cold.numa.remoteTouches);
    EXPECT_EQ(warm.numa.busBytes, cold.numa.busBytes);
}
