/**
 * @file
 * Unit tests for entitled/allowed/used accounting (Section 2.3).
 */

#include <gtest/gtest.h>

#include "src/machine/memory.hh"
#include "src/os/vm.hh"

using namespace piso;

namespace {

struct VmFixture : public ::testing::Test
{
    PhysicalMemory phys{100 * 4096};
    VirtualMemory vm{phys};

    void
    SetUp() override
    {
        for (SpuId s : {kKernelSpu, kSharedSpu, SpuId{2}, SpuId{3}})
            vm.registerSpu(s);
        vm.setAllowed(kKernelSpu, 100);
        vm.setAllowed(kSharedSpu, 100);
    }

    void
    charge(SpuId spu, std::uint64_t n)
    {
        for (std::uint64_t i = 0; i < n; ++i)
            ASSERT_TRUE(vm.tryCharge(spu));
    }
};

} // namespace

TEST_F(VmFixture, RegisterIsIdempotent)
{
    vm.registerSpu(2);
    vm.registerSpu(2);
    EXPECT_EQ(vm.levels(2).used, 0u);
}

TEST_F(VmFixture, LevelsStartAtZero)
{
    const MemLevels &l = vm.levels(2);
    EXPECT_EQ(l.entitled, 0u);
    EXPECT_EQ(l.allowed, 0u);
    EXPECT_EQ(l.used, 0u);
}

TEST_F(VmFixture, ChargeRespectsAllowed)
{
    vm.setAllowed(2, 3);
    EXPECT_TRUE(vm.tryCharge(2));
    EXPECT_TRUE(vm.tryCharge(2));
    EXPECT_TRUE(vm.tryCharge(2));
    EXPECT_FALSE(vm.tryCharge(2)); // at allowed
    EXPECT_EQ(vm.levels(2).used, 3u);
    EXPECT_EQ(vm.freePages(), 97u);
}

TEST_F(VmFixture, ChargeRespectsPhysicalLimit)
{
    vm.setAllowed(2, 200);
    charge(2, 100);
    EXPECT_FALSE(vm.tryCharge(2)); // machine is out of frames
    EXPECT_EQ(vm.freePages(), 0u);
}

TEST_F(VmFixture, UnchargeReturnsFrames)
{
    vm.setAllowed(2, 10);
    charge(2, 5);
    vm.uncharge(2);
    EXPECT_EQ(vm.levels(2).used, 4u);
    EXPECT_EQ(vm.freePages(), 96u);
}

TEST_F(VmFixture, TransferChargeMovesWithoutFreePool)
{
    vm.setAllowed(2, 10);
    vm.setAllowed(3, 10);
    charge(2, 5);
    const std::uint64_t freeBefore = vm.freePages();
    vm.transferCharge(2, 3);
    EXPECT_EQ(vm.levels(2).used, 4u);
    EXPECT_EQ(vm.levels(3).used, 1u);
    EXPECT_EQ(vm.freePages(), freeBefore);
}

TEST_F(VmFixture, AtLimitAndOverAllowed)
{
    vm.setAllowed(2, 5);
    charge(2, 5);
    EXPECT_TRUE(vm.atLimit(2));
    EXPECT_EQ(vm.overAllowed(2), 0u);
    vm.setAllowed(2, 3); // revocation lowers allowed below used
    EXPECT_EQ(vm.overAllowed(2), 2u);
}

TEST_F(VmFixture, VictimIsSelfWhenAtOwnLimit)
{
    vm.setAllowed(2, 5);
    vm.setAllowed(3, 50);
    charge(2, 5);
    charge(3, 20);
    EXPECT_EQ(vm.victimSpu(2), 2);
}

TEST_F(VmFixture, VictimIsMostOverAllowed)
{
    vm.setAllowed(2, 50);
    vm.setAllowed(3, 50);
    charge(3, 30);
    vm.setAllowed(3, 10); // 3 is now 20 over
    EXPECT_EQ(vm.victimSpu(2), 3);
}

TEST_F(VmFixture, VictimFallsBackToLargestUser)
{
    vm.setAllowed(2, 90);
    vm.setAllowed(3, 90);
    charge(2, 10);
    charge(3, 30);
    // Requester 2 is under its allowed; nobody over-allowed; victim is
    // the biggest holder.
    EXPECT_EQ(vm.victimSpu(2), 3);
}

TEST_F(VmFixture, VictimNeverKernelOnFallback)
{
    charge(kKernelSpu, 40);
    vm.setAllowed(2, 90);
    charge(2, 10);
    EXPECT_EQ(vm.victimSpu(3), 2);
}

TEST_F(VmFixture, PressureCountsAndClears)
{
    vm.notePressure(2);
    vm.notePressure(2);
    EXPECT_EQ(vm.pressure(2), 2u);
    EXPECT_EQ(vm.takePressure(2), 2u);
    EXPECT_EQ(vm.pressure(2), 0u);
    EXPECT_EQ(vm.takePressure(2), 0u);
}

TEST_F(VmFixture, SpusListsRegistered)
{
    const auto spus = vm.spus();
    EXPECT_EQ(spus.size(), 4u);
    EXPECT_EQ(spus[0], kKernelSpu);
}

TEST_F(VmFixture, ReservePagesStored)
{
    vm.setReservePages(8);
    EXPECT_EQ(vm.reservePages(), 8u);
    EXPECT_EQ(vm.totalPages(), 100u);
}

TEST_F(VmFixture, UnchargeBelowZeroPanics)
{
    EXPECT_DEATH(vm.uncharge(2), "zero used");
}

TEST_F(VmFixture, UnknownSpuPanics)
{
    EXPECT_DEATH(vm.levels(42), "unknown SPU");
}
