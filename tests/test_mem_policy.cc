/**
 * @file
 * Unit tests for the memory sharing policy (Section 3.2): entitled
 * recomputation, lending of idle pages, Reserve Threshold, and
 * revocation via allowed-level reduction.
 */

#include <gtest/gtest.h>

#include "src/core/mem_policy.hh"
#include "src/machine/memory.hh"

using namespace piso;

namespace {

struct PolicyFixture : public ::testing::Test
{
    PhysicalMemory phys{1000 * 4096};
    VirtualMemory vm{phys};
    SpuManager spus;
    EventQueue events;
    SpuId a = kNoSpu, b = kNoSpu;

    void
    SetUp() override
    {
        vm.registerSpu(kKernelSpu);
        vm.registerSpu(kSharedSpu);
        vm.setAllowed(kKernelSpu, 1000);
        vm.setAllowed(kSharedSpu, 1000);
        a = spus.create({.name = "a"});
        b = spus.create({.name = "b"});
        vm.registerSpu(a);
        vm.registerSpu(b);
    }

    MemorySharingPolicy
    makePolicy(double reserveFrac = 0.08)
    {
        MemPolicyConfig cfg;
        cfg.reserveFraction = reserveFrac;
        return MemorySharingPolicy(events, vm, spus, cfg);
    }

    void
    use(SpuId spu, std::uint64_t pages)
    {
        vm.setAllowed(spu, vm.levels(spu).allowed + pages);
        for (std::uint64_t i = 0; i < pages; ++i)
            ASSERT_TRUE(vm.tryCharge(spu));
    }
};

} // namespace

TEST_F(PolicyFixture, StartSetsReserve)
{
    auto policy = makePolicy(0.08);
    policy.start();
    EXPECT_EQ(vm.reservePages(), 80u);
}

TEST_F(PolicyFixture, EntitledSplitsEqually)
{
    auto policy = makePolicy(0.08);
    policy.start();
    // 1000 total - 80 reserve = 920 divisible; 460 each.
    EXPECT_EQ(vm.levels(a).entitled, 460u);
    EXPECT_EQ(vm.levels(b).entitled, 460u);
}

TEST_F(PolicyFixture, EntitledExcludesKernelAndShared)
{
    use(kKernelSpu, 100);
    use(kSharedSpu, 20);
    auto policy = makePolicy(0.08);
    policy.start();
    // (1000 - 100 - 20 - 80) / 2 = 400 each.
    EXPECT_EQ(vm.levels(a).entitled, 400u);
}

TEST_F(PolicyFixture, NoPressureMeansAllowedEqualsEntitled)
{
    auto policy = makePolicy(0.08);
    policy.start();
    EXPECT_EQ(vm.levels(a).allowed, vm.levels(a).entitled);
    EXPECT_EQ(vm.levels(b).allowed, vm.levels(b).entitled);
}

TEST_F(PolicyFixture, PressuredSpuReceivesIdlePages)
{
    auto policy = makePolicy(0.08);
    policy.start();
    // b is idle; a is pressured at its entitlement.
    use(a, 460);
    vm.notePressure(a);
    policy.recompute();
    // lendable = free + 0 borrowed - reserve
    //          = (1000 - 460) + 0 - 80 = 460; all to a.
    EXPECT_EQ(vm.levels(a).allowed, 460u + 460u);
    EXPECT_EQ(vm.levels(b).allowed, vm.levels(b).entitled);
}

TEST_F(PolicyFixture, ReserveNeverLent)
{
    auto policy = makePolicy(0.08);
    policy.start();
    vm.notePressure(a);
    policy.recompute();
    const std::uint64_t granted =
        vm.levels(a).allowed - vm.levels(a).entitled;
    // free = 1000; grant <= free - reserve.
    EXPECT_LE(granted, 1000u - 80u);
    EXPECT_GT(granted, 0u);
}

TEST_F(PolicyFixture, LendableSplitsAmongPressured)
{
    auto policy = makePolicy(0.08);
    policy.start();
    vm.notePressure(a);
    vm.notePressure(b);
    policy.recompute();
    const std::uint64_t ga = vm.levels(a).allowed - vm.levels(a).entitled;
    const std::uint64_t gb = vm.levels(b).allowed - vm.levels(b).entitled;
    EXPECT_EQ(ga, gb);
    EXPECT_GT(ga, 0u);
}

TEST_F(PolicyFixture, RevocationLowersBorrowerAllowance)
{
    auto policy = makePolicy(0.08);
    policy.start();

    // Phase 1: b idle, a borrows heavily.
    use(a, 460);
    vm.notePressure(a);
    policy.recompute();
    const std::uint64_t borrowed = vm.levels(a).allowed - 460;
    ASSERT_GT(borrowed, 0u);
    use(a, borrowed); // a actually consumes the loan

    // Phase 2: b wants its memory: it uses its entitlement and
    // presses. a stays pressured too.
    use(b, vm.freePages());
    vm.notePressure(b);
    vm.notePressure(a);
    policy.recompute();

    // a's allowance must have fallen (lendable shrank), leaving a
    // over-allowed for the pageout daemon to reclaim.
    EXPECT_LT(vm.levels(a).allowed, 460u + borrowed);
    EXPECT_GT(vm.overAllowed(a), 0u);
}

TEST_F(PolicyFixture, BorrowerKeepsLoanWhileLenderIdle)
{
    auto policy = makePolicy(0.08);
    policy.start();
    use(a, 460);
    vm.notePressure(a);
    policy.recompute();
    const std::uint64_t allowed1 = vm.levels(a).allowed;
    use(a, allowed1 - 460); // consume the loan fully

    // Steady state: no new pressure notes, lender still idle.
    policy.recompute();
    // The borrowed-out pages count as lendable, so a's allowance must
    // not collapse back to entitled (which would thrash).
    EXPECT_GE(vm.levels(a).allowed, vm.levels(a).used);
}

TEST_F(PolicyFixture, PeriodicRecomputeRunsOnEventQueue)
{
    auto policy = makePolicy(0.08);
    policy.start();
    use(a, 460);
    vm.notePressure(a);
    // No manual recompute: let the periodic event do it.
    events.runAll(events.now() + 150 * kMs);
    EXPECT_GT(vm.levels(a).allowed, vm.levels(a).entitled);
}

TEST_F(PolicyFixture, WeightedSharesRespected)
{
    SpuManager weighted;
    const SpuId x = weighted.create({.name = "x", .share = 3.0});
    const SpuId y = weighted.create({.name = "y", .share = 1.0});
    vm.registerSpu(x);
    vm.registerSpu(y);
    MemPolicyConfig cfg;
    cfg.reserveFraction = 0.0;
    MemorySharingPolicy policy(events, vm, weighted, cfg);
    policy.start();
    EXPECT_EQ(vm.levels(x).entitled, 750u);
    EXPECT_EQ(vm.levels(y).entitled, 250u);
}

TEST_F(PolicyFixture, InvalidConfigRejected)
{
    MemPolicyConfig bad;
    bad.period = 0;
    EXPECT_THROW(MemorySharingPolicy(events, vm, spus, bad),
                 std::runtime_error);
    MemPolicyConfig bad2;
    bad2.reserveFraction = 1.5;
    EXPECT_THROW(MemorySharingPolicy(events, vm, spus, bad2),
                 std::runtime_error);
}

TEST_F(PolicyFixture, IdleMachineDrainsEventQueue)
{
    // Regression: a tick that finds zero active leaf SPUs must stop
    // rescheduling itself, or an otherwise-finished simulation spins
    // on memPolicy events forever and the run loop never drains.
    spus.destroy(a);
    spus.destroy(b);
    auto policy = makePolicy(0.08);
    policy.start();
    int executed = 0;
    while (!events.empty() && executed < 50) {
        events.runOne();
        ++executed;
    }
    EXPECT_TRUE(events.empty());
    EXPECT_LT(executed, 50);
}

TEST_F(PolicyFixture, SuspendedTenantsAlsoDrain)
{
    // Suspension empties the active leaf set just like destruction.
    spus.suspend(a);
    spus.suspend(b);
    auto policy = makePolicy(0.08);
    policy.start();
    events.runAll(events.now() + kSec);
    EXPECT_TRUE(events.empty());
}

TEST_F(PolicyFixture, ArmRestartsThePeriodicLoop)
{
    spus.destroy(a);
    spus.destroy(b);
    auto policy = makePolicy(0.08);
    policy.start();
    events.runAll(events.now() + kSec);
    ASSERT_TRUE(events.empty());

    // A new tenant arrives: arm() restarts the loop (rebalanceSpus
    // calls it) and the next period's tick computes its levels.
    const SpuId c = spus.create({.name = "c"});
    vm.registerSpu(c);
    policy.arm();
    EXPECT_FALSE(events.empty());
    events.runAll(events.now() + 150 * kMs);
    EXPECT_GT(vm.levels(c).entitled, 0u);
    EXPECT_FALSE(events.empty());  // keeps rescheduling while active
}

TEST_F(PolicyFixture, UnchangedTickSkipsTheFullPass)
{
    // The version skip: a period in which neither the VM ledger nor
    // the SPU registry changed performs no leaf iterations.
    auto policy = makePolicy(0.08);
    policy.start();
    events.runAll(events.now() + 150 * kMs);  // one settling pass
    const std::uint64_t settled = policy.policyIters();
    events.runAll(events.now() + kSec);  // ten idle periods
    EXPECT_EQ(policy.policyIters(), settled);

    use(a, 10);  // ledger change -> next tick pays one full pass
    events.runAll(events.now() + 150 * kMs);
    EXPECT_GT(policy.policyIters(), settled);
}
