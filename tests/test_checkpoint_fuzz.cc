/**
 * @file
 * Hostile-input battery for the checkpoint container and the event
 * queue's restore surface (docs/checkpoint.md).
 *
 * Two properties are under test, both meant to run under ASan in CI:
 *
 *  1. No byte stream handed to Simulation::restore() may reach
 *     undefined behaviour. Truncations at every interesting length,
 *     single-byte corruption at deterministic-random offsets, and
 *     deliberately wrong magic/version/digest headers must all be
 *     rejected with a structured SimError (ConfigError for malformed
 *     or mismatched images) — never a crash, hang, or OOB read.
 *
 *  2. EventQueue's checkpoint surface (forEachPending /
 *     clearPending / scheduleRestored / restoreClock) preserves exact
 *     firing order under arbitrary schedule/cancel/run/snapshot
 *     interleavings, checked against a sorted-(when, seq) model
 *     oracle.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/config/workload_spec.hh"
#include "src/piso.hh"
#include "src/sim/checkpoint.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/random.hh"

using namespace piso;

namespace {

/** Small workload whose image exercises every subsystem section. */
const char *kSpec = R"(
machine cpus=2 memory_mb=24 disks=1 scheme=piso seed=5
spu pmk share=1 disk=0
spu cpy share=1 disk=0
job pmk pmake name=build workers=2 files=6
job cpy copy name=cp bytes_kb=4096
)";

/** One valid checkpoint image of kSpec, built once per process. */
const std::string &
validImage()
{
    static const std::string image = [] {
        WorkloadSpec spec = parseWorkloadSpec(kSpec);
        std::string img;
        spec.config.checkpointAt = 50 * kMs;
        spec.config.checkpointStop = true;
        spec.config.checkpointSink = [&img](std::string i) {
            img = std::move(i);
        };
        Simulation sim(spec.config);
        populateWorkloadSpec(sim, spec);
        sim.run();
        return img;
    }();
    return image;
}

/**
 * Feed @p image to a fresh, correctly-populated Simulation's restore.
 * Returns normally only if restore accepted the bytes.
 */
void
tryRestore(const std::string &image)
{
    WorkloadSpec spec = parseWorkloadSpec(kSpec);
    Simulation sim(spec.config);
    populateWorkloadSpec(sim, spec);
    std::istringstream in(image);
    sim.restore(in);
}

} // namespace

// ---------------------------------------------------------------------
// Container corruption: every mutation rejects with a SimError
// ---------------------------------------------------------------------

TEST(CheckpointFuzz, TruncationsAreRejectedStructurally)
{
    const std::string &image = validImage();
    ASSERT_GT(image.size(), 48u);

    // Every length across the header and trailer, plus a stride of
    // cuts through the payload: all must fail cleanly. (A truncated
    // image can never pass — the trailing checksum is missing.)
    std::vector<std::size_t> cuts;
    for (std::size_t n = 0; n <= 64 && n < image.size(); ++n)
        cuts.push_back(n);
    for (std::size_t n = 64; n < image.size(); n += 97)
        cuts.push_back(n);
    for (std::size_t back = 1; back <= 16; ++back)
        cuts.push_back(image.size() - back);

    for (std::size_t n : cuts) {
        const std::string cut = image.substr(0, n);
        EXPECT_THROW(tryRestore(cut), SimError)
            << "truncation to " << n << " bytes accepted";
    }
}

TEST(CheckpointFuzz, SingleByteCorruptionIsRejectedStructurally)
{
    const std::string &image = validImage();
    Rng rng(0xf00du);

    // Every header byte, then a deterministic-random sample of payload
    // and trailer bytes. Any single-byte change must be caught: header
    // fields are validated individually and the payload is covered by
    // the trailing FNV checksum.
    std::vector<std::size_t> offsets;
    for (std::size_t i = 0; i < 48; ++i)
        offsets.push_back(i);
    for (int i = 0; i < 256; ++i)
        offsets.push_back(48 + rng.uniformInt(image.size() - 48));

    for (std::size_t off : offsets) {
        std::string bad = image;
        bad[off] = static_cast<char>(
            bad[off] ^ static_cast<char>(1 + rng.uniformInt(255)));
        EXPECT_THROW(tryRestore(bad), SimError)
            << "byte flip at offset " << off << " accepted";
    }
}

TEST(CheckpointFuzz, WrongMagicVersionAndDigestAreConfigErrors)
{
    const std::string &image = validImage();

    // Offsets per the container layout in src/sim/checkpoint.hh:
    // [magic 8][version u32][flags u32][digest u64]...
    std::string wrongMagic = image;
    wrongMagic[0] = 'X';
    EXPECT_THROW(tryRestore(wrongMagic), ConfigError);

    std::string wrongVersion = image;
    wrongVersion[8] = static_cast<char>(kCkptVersion + 1);
    EXPECT_THROW(tryRestore(wrongVersion), ConfigError);

    std::string wrongFlags = image;
    wrongFlags[12] = 1;
    EXPECT_THROW(tryRestore(wrongFlags), ConfigError);

    std::string wrongDigest = image;
    wrongDigest[16] = static_cast<char>(wrongDigest[16] ^ 0x5a);
    EXPECT_THROW(tryRestore(wrongDigest), ConfigError);
}

TEST(CheckpointFuzz, EmptyAndGarbageStreamsAreConfigErrors)
{
    EXPECT_THROW(tryRestore(""), SimError);
    EXPECT_THROW(tryRestore("not a checkpoint"), SimError);
    EXPECT_THROW(tryRestore(std::string(1 << 16, '\0')), SimError);

    // A valid image with trailing junk appended: the container records
    // its exact payload length, so extra bytes are a structural error.
    EXPECT_THROW(tryRestore(validImage() + "garbage"), SimError);
}

TEST(CheckpointFuzz, ReaderBoundsChecksEveryPrimitive)
{
    // Direct CkptWriter/CkptReader round trip, then over-read: each
    // primitive read past the recorded payload must throw rather than
    // touch out-of-bounds memory.
    CkptWriter w;
    w.u32(7);
    const std::string img = w.image(/*digest=*/1);

    CkptReader r(img);
    r.requireDigest(1);
    EXPECT_EQ(r.u32(), 7u);
    EXPECT_THROW(r.u64(), ConfigError);

    CkptReader r2(img);
    EXPECT_THROW(r2.requireDigest(2), ConfigError);

    CkptReader r3(img);
    r3.requireDigest(1);
    EXPECT_THROW(r3.str(), ConfigError);
}

// ---------------------------------------------------------------------
// EventQueue schedule/cancel/run/snapshot/restore interleaving fuzz
// ---------------------------------------------------------------------

namespace {

/** The model: live events as sorted (when, seq) -> tag. */
struct ModelEvent
{
    Time when;
    std::uint64_t seq;
    int tag;

    bool
    operator<(const ModelEvent &o) const
    {
        return when != o.when ? when < o.when : seq < o.seq;
    }
};

/**
 * One fuzz round: random interleavings of schedule/cancel/run against
 * both the real queue and the model; then snapshot the queue exactly
 * the way Simulation::checkpoint does, restore into a *fresh* queue,
 * and require both the restored queue and the original to drain in
 * the model's order.
 */
void
fuzzRound(std::uint64_t seed)
{
    Rng rng(seed);
    EventQueue q;
    std::vector<ModelEvent> model;
    std::vector<int> fired;            // tags, in queue firing order
    std::vector<int> modelFired;       // tags, in model order
    std::map<std::uint64_t, EventId> bySeq;
    int nextTag = 0;

    const auto scheduleOne = [&] {
        const Time when = q.now() + rng.uniformInt(50);
        const std::uint64_t seq = q.nextSeq();
        const int tag = nextTag++;
        EventId id = q.schedule(
            when, [&fired, tag] { fired.push_back(tag); }, "fuzz");
        model.push_back({when, seq, tag});
        bySeq[seq] = id;
    };

    const auto runOne = [&] {
        if (model.empty()) {
            EXPECT_FALSE(q.runOne());
            return;
        }
        const auto it = std::min_element(model.begin(), model.end());
        modelFired.push_back(it->tag);
        bySeq.erase(it->seq);
        model.erase(it);
        ASSERT_TRUE(q.runOne());
    };

    const auto cancelOne = [&] {
        if (bySeq.empty())
            return;
        auto it = bySeq.begin();
        std::advance(it, rng.uniformInt(bySeq.size()));
        ASSERT_TRUE(q.cancel(it->second));
        model.erase(std::find_if(model.begin(), model.end(),
                                 [&](const ModelEvent &e) {
                                     return e.seq == it->first;
                                 }));
        bySeq.erase(it);
    };

    for (int op = 0; op < 400; ++op) {
        switch (rng.uniformInt(4)) {
        case 0:
        case 1:
            scheduleOne();
            break;
        case 2:
            runOne();
            break;
        default:
            cancelOne();
            break;
        }
    }
    EXPECT_EQ(q.pending(), model.size());

    // Snapshot exactly as Simulation::checkpoint does: collect
    // descriptors, sort by seq for determinism.
    struct Desc
    {
        Time when;
        std::uint64_t seq;
    };
    std::vector<Desc> descs;
    q.forEachPending(
        [&](EventId, Time when, std::uint64_t seq, const char *) {
            descs.push_back({when, seq});
        });
    std::sort(descs.begin(), descs.end(),
              [](const Desc &a, const Desc &b) { return a.seq < b.seq; });
    ASSERT_EQ(descs.size(), model.size());
    const Time snapNow = q.now();
    const std::uint64_t snapSeq = q.nextSeq();
    const std::uint64_t snapExec = q.executedEvents();

    // Rebind into a fresh queue, looking each event's tag up by its
    // sequence number (the simulator uses named descriptors instead).
    std::map<std::uint64_t, int> tagBySeq;
    for (const ModelEvent &e : model)
        tagBySeq[e.seq] = e.tag;

    EventQueue r;
    std::vector<int> rFired;
    for (const Desc &d : descs) {
        const int tag = tagBySeq.at(d.seq);
        r.scheduleRestored(
            d.when, d.seq, [&rFired, tag] { rFired.push_back(tag); },
            "fuzz");
    }
    r.restoreClock(snapNow, snapSeq, snapExec);
    EXPECT_EQ(r.now(), snapNow);
    EXPECT_EQ(r.nextSeq(), snapSeq);
    EXPECT_EQ(r.executedEvents(), snapExec);
    EXPECT_EQ(r.pending(), q.pending());

    // The restored queue and the original queue must both drain in the
    // model's exact order.
    std::sort(model.begin(), model.end());
    std::vector<int> expect;
    for (const ModelEvent &e : model)
        expect.push_back(e.tag);

    while (r.runOne()) {
    }
    EXPECT_EQ(rFired, expect) << "restored drain order diverged";

    const std::size_t firedBefore = fired.size();
    while (q.runOne()) {
    }
    EXPECT_EQ(std::vector<int>(fired.begin() + firedBefore, fired.end()),
              expect)
        << "original drain order diverged";
    EXPECT_EQ(modelFired,
              std::vector<int>(fired.begin(),
                               fired.begin() + firedBefore));
}

} // namespace

TEST(CheckpointFuzz, EventQueueRestorePreservesOrderUnderInterleaving)
{
    for (std::uint64_t seed = 1; seed <= 40; ++seed)
        fuzzRound(seed);
}

TEST(CheckpointFuzz, ClearPendingDestroysEverything)
{
    EventQueue q;
    int firedCount = 0;
    for (int i = 0; i < 100; ++i)
        q.schedule(i, [&firedCount] { ++firedCount; });
    q.clearPending();
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.runOne());
    EXPECT_EQ(firedCount, 0);
}
