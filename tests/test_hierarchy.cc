/**
 * @file
 * Property tests for the hierarchical SPU tree: entitlements exact-sum
 * at *every* level of randomly generated trees (depth <= 4, <= 256
 * leaves), and depth-1 trees reproduce the flat code path bit for bit
 * — the guarantee that lets the golden fixtures stand untouched.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/core/ledger.hh"
#include "src/core/share_tree.hh"
#include "src/core/spu.hh"
#include "src/sim/random.hh"
#include "src/util/error.hh"

using namespace piso;

namespace {

constexpr std::size_t kMaxDepth = 4;
constexpr std::size_t kMaxLeaves = 256;

/** Grow a random tree under @p parent, returning next free SPU id. */
SpuId
growRandom(ShareTree &tree, Rng &rng, std::size_t parent,
           std::size_t depth, std::size_t &leaves, SpuId next)
{
    const std::size_t fanout = 1 + rng.uniformInt(5);
    for (std::size_t i = 0; i < fanout && leaves < kMaxLeaves; ++i) {
        // An occasional zero share models a suspended SPU.
        const double share =
            rng.uniformInt(8) == 0 ? 0.0 : rng.uniform() * 4.0;
        const std::size_t node = tree.add(parent, next++, share);
        if (depth + 1 < kMaxDepth && rng.uniformInt(3) == 0) {
            next = growRandom(tree, rng, node, depth + 1, leaves, next);
        } else {
            ++leaves;
        }
    }
    return next;
}

ShareTree
randomTree(Rng &rng)
{
    ShareTree tree;
    std::size_t leaves = 0;
    growRandom(tree, rng, ShareTree::kRoot, 0, leaves, kFirstUserSpu);
    return tree;
}

/** Check the exact-sum invariant at one node and recurse. */
void
checkNode(const ShareTree &tree, const ResourceLedger &l,
          std::size_t idx, std::uint64_t amount)
{
    const ShareTree::Node &node = tree.node(idx);
    if (node.spu != kNoSpu) {
        EXPECT_EQ(l.levels(node.spu).entitled, amount)
            << "node for SPU " << node.spu;
        if (node.share == 0.0)
            EXPECT_EQ(amount, 0u) << "zero-share SPU " << node.spu;
    }
    if (node.children.empty())
        return;
    bool anyPositive = false;
    std::uint64_t childSum = 0;
    for (std::size_t c : node.children) {
        anyPositive |= tree.node(c).share > 0.0;
        childSum += l.levels(tree.node(c).spu).entitled;
    }
    // The exact-sum guarantee at this level: the children partition
    // the node's amount (nothing when every child is suspended).
    EXPECT_EQ(childSum, anyPositive ? amount : 0u);
    for (std::size_t c : node.children)
        checkNode(tree, l, c, l.levels(tree.node(c).spu).entitled);
}

} // namespace

// ---------------------------------------------------------------------
// Exact-sum entitlement at every level of random trees
// ---------------------------------------------------------------------

TEST(Hierarchy, TreeEntitleExactSumAtEveryLevel)
{
    Rng rng(2026);
    for (int trial = 0; trial < 100; ++trial) {
        const ShareTree tree = randomTree(rng);
        const std::uint64_t divisible = rng.uniformInt(1u << 22);
        ResourceLedger l("test");
        l.entitleByShare(tree, divisible);

        bool anyPositive = false;
        std::uint64_t topSum = 0;
        for (std::size_t c : tree.root().children) {
            anyPositive |= tree.node(c).share > 0.0;
            topSum += l.levels(tree.node(c).spu).entitled;
        }
        ASSERT_EQ(topSum, anyPositive ? divisible : 0u)
            << "trial " << trial << " divisible " << divisible;
        for (std::size_t c : tree.root().children)
            checkNode(tree, l, c,
                      l.levels(tree.node(c).spu).entitled);
    }
}

// ---------------------------------------------------------------------
// Depth-1 trees are bit-for-bit the flat code path
// ---------------------------------------------------------------------

TEST(Hierarchy, Depth1TreeMatchesFlatEntitleBitForBit)
{
    Rng rng(7);
    for (int trial = 0; trial < 100; ++trial) {
        const std::size_t n = 1 + rng.uniformInt(32);
        std::vector<double> shares;
        for (std::size_t i = 0; i < n; ++i) {
            shares.push_back(rng.uniformInt(6) == 0
                                 ? 0.0
                                 : rng.uniform() * 1e3);
        }
        const std::uint64_t divisible = rng.uniformInt(1u << 22);

        ResourceLedger flat("flat");
        ShareTree tree;
        for (std::size_t i = 0; i < n; ++i) {
            const SpuId spu = kFirstUserSpu + static_cast<SpuId>(i);
            flat.setShare(spu, shares[i]);
            tree.add(ShareTree::kRoot, spu, shares[i]);
        }
        flat.entitleByShare(divisible);

        ResourceLedger viaTree("tree");
        viaTree.entitleByShare(tree, divisible);

        for (std::size_t i = 0; i < n; ++i) {
            const SpuId spu = kFirstUserSpu + static_cast<SpuId>(i);
            EXPECT_EQ(viaTree.levels(spu).entitled,
                      flat.levels(spu).entitled)
                << "trial " << trial << " spu " << spu;
        }
    }
}

TEST(Hierarchy, Depth1ManagerSharesMatchFlatRule)
{
    Rng rng(13);
    for (int trial = 0; trial < 50; ++trial) {
        SpuManager mgr;
        const std::size_t n = 1 + rng.uniformInt(16);
        std::vector<SpuId> ids;
        std::vector<double> shares;
        for (std::size_t i = 0; i < n; ++i) {
            shares.push_back(0.25 + rng.uniform() * 8.0);
            ids.push_back(mgr.create({.name = "", .share = shares[i]}));
        }
        // Sum in ascending id order — exactly the flat registry rule.
        double total = 0.0;
        for (double s : shares)
            total += s;
        const std::uint64_t divisible = rng.uniformInt(1u << 22);
        const auto entitled = mgr.entitleLeaves(divisible);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(mgr.shareOf(ids[i]), shares[i] / total);
            ASSERT_TRUE(entitled.contains(ids[i]));
            EXPECT_EQ(*entitled.find(ids[i]),
                      ResourceLedger::entitledFloor(shares[i] / total,
                                                    divisible));
        }
        EXPECT_EQ(mgr.leafSpus(), mgr.userSpus());
        EXPECT_FALSE(mgr.hierarchical());
        EXPECT_TRUE(mgr.shareTree().flat());
    }
}

// ---------------------------------------------------------------------
// Effective shares multiply down the path
// ---------------------------------------------------------------------

TEST(Hierarchy, EffectiveShareIsProductOfSiblingNormalisedShares)
{
    SpuManager mgr;
    const SpuId eng = mgr.create({.name = "eng", .share = 2.0});
    const SpuId ops = mgr.create({.name = "ops", .share = 1.0});
    const SpuId build =
        mgr.create({.name = "eng.build", .share = 3.0, .parent = eng});
    const SpuId test =
        mgr.create({.name = "eng.test", .share = 1.0, .parent = eng});
    const SpuId web =
        mgr.create({.name = "ops.web", .share = 1.0, .parent = ops});

    EXPECT_TRUE(mgr.hierarchical());
    EXPECT_TRUE(mgr.isGroup(eng));
    EXPECT_FALSE(mgr.isGroup(build));
    EXPECT_EQ(mgr.parentOf(build), eng);
    EXPECT_EQ(mgr.pathOf(build), (std::vector<SpuId>{eng, build}));

    // Groups: normalised against each other only.
    EXPECT_EQ(mgr.shareOf(eng), 2.0 / 3.0);
    EXPECT_EQ(mgr.shareOf(ops), 1.0 / 3.0);
    // Leaves: the product down the path.
    EXPECT_EQ(mgr.shareOf(build), (2.0 / 3.0) * (3.0 / 4.0));
    EXPECT_EQ(mgr.shareOf(test), (2.0 / 3.0) * (1.0 / 4.0));
    EXPECT_EQ(mgr.shareOf(web), (1.0 / 3.0) * 1.0);

    // Only leaves hold CPU shares; groups may not run jobs.
    const auto cpu = mgr.cpuShares();
    EXPECT_FALSE(cpu.contains(eng));
    EXPECT_TRUE(cpu.contains(build));
    EXPECT_EQ(mgr.leafSpus(), (std::vector<SpuId>{build, test, web}));
}

TEST(Hierarchy, SuspendedGroupZeroesItsSubtree)
{
    SpuManager mgr;
    const SpuId eng = mgr.create({.name = "eng", .share = 1.0});
    const SpuId ops = mgr.create({.name = "ops", .share = 1.0});
    const SpuId build =
        mgr.create({.name = "eng.build", .share = 1.0, .parent = eng});
    const SpuId web =
        mgr.create({.name = "ops.web", .share = 1.0, .parent = ops});

    mgr.suspend(eng);
    EXPECT_EQ(mgr.shareOf(eng), 0.0);
    EXPECT_EQ(mgr.shareOf(build), 0.0);
    EXPECT_EQ(mgr.shareOf(web), 1.0); // sibling group absorbs the pie
    EXPECT_EQ(mgr.leafSpus(), (std::vector<SpuId>{web}));

    const auto entitled = mgr.entitleLeaves(1000);
    EXPECT_FALSE(entitled.contains(build));
    ASSERT_TRUE(entitled.contains(web));
    EXPECT_EQ(*entitled.find(web), 1000u);

    mgr.resume(eng);
    EXPECT_EQ(mgr.shareOf(build), 0.5);
}

TEST(Hierarchy, EntitleLeavesAppliesPerLevelFloors)
{
    // 10 units over two groups 1:1 -> 5 each; eng splits 5 over 2:1.
    SpuManager mgr;
    const SpuId eng = mgr.create({.name = "eng", .share = 1.0});
    const SpuId ops = mgr.create({.name = "ops", .share = 1.0});
    const SpuId a =
        mgr.create({.name = "eng.a", .share = 2.0, .parent = eng});
    const SpuId b =
        mgr.create({.name = "eng.b", .share = 1.0, .parent = eng});
    const SpuId w =
        mgr.create({.name = "ops.w", .share = 1.0, .parent = ops});

    const auto entitled = mgr.entitleLeaves(10);
    // eng's level amount is floor(0.5 * 10) = 5; within eng,
    // floor(2/3 * 5) = 3 and floor(1/3 * 5) = 1 — per-level floors,
    // remainders staying unassigned exactly like the flat Quota rule.
    EXPECT_EQ(*entitled.find(a), 3u);
    EXPECT_EQ(*entitled.find(b), 1u);
    EXPECT_EQ(*entitled.find(w), 5u);
}

// ---------------------------------------------------------------------
// Structural validation
// ---------------------------------------------------------------------

TEST(Hierarchy, CreateUnderUnknownOrDefaultParentRejected)
{
    SpuManager mgr;
    EXPECT_THROW(
        mgr.create({.name = "x", .share = 1.0, .parent = 99}),
        ConfigError);
    EXPECT_THROW(
        mgr.create({.name = "x", .share = 1.0, .parent = kKernelSpu}),
        ConfigError);
}

TEST(Hierarchy, DestroyRequiresLeafAndDetachesFromParent)
{
    SpuManager mgr;
    const SpuId g = mgr.create({.name = "g", .share = 1.0});
    const SpuId c =
        mgr.create({.name = "g.c", .share = 1.0, .parent = g});
    EXPECT_THROW(mgr.destroy(g), ConfigError);
    mgr.destroy(c);
    EXPECT_FALSE(mgr.isGroup(g)); // g became a leaf again
    mgr.destroy(g);
    EXPECT_FALSE(mgr.exists(g));
}

TEST(Hierarchy, RandomManagerTreesEntitleWithinDivisible)
{
    Rng rng(99);
    for (int trial = 0; trial < 30; ++trial) {
        SpuManager mgr;
        std::vector<SpuId> groups{kNoSpu};
        std::vector<SpuId> all;
        const std::size_t n = 2 + rng.uniformInt(60);
        for (std::size_t i = 0; i < n; ++i) {
            const SpuId parent =
                groups[rng.uniformInt(groups.size())];
            const SpuId id = mgr.create({.name = "",
                                         .share = 0.5 + rng.uniform(),
                                         .parent = parent});
            all.push_back(id);
            // Keep depth <= 4: only shallow nodes may become groups.
            if (mgr.pathOf(id).size() < kMaxDepth &&
                rng.uniformInt(3) == 0) {
                groups.push_back(id);
            }
        }
        const std::uint64_t divisible = 1 + rng.uniformInt(1u << 22);
        const auto entitled = mgr.entitleLeaves(divisible);
        std::uint64_t sum = 0;
        for (const auto &[spu, amount] : entitled) {
            EXPECT_FALSE(mgr.isGroup(spu));
            sum += amount;
        }
        // Per-level floors never over-commit the machine.
        EXPECT_LE(sum, divisible);

        // And the exact-sum tree path stays exact on the same tree.
        ResourceLedger l("test");
        l.entitleByShare(mgr.shareTree(), divisible);
        std::uint64_t topSum = 0;
        for (SpuId top : mgr.childrenOf(kNoSpu))
            topSum += l.levels(top).entitled;
        EXPECT_EQ(topSum, divisible);
    }
}
