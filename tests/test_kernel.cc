/**
 * @file
 * Integration tests for the Kernel: action interpretation, paging,
 * the I/O path, daemons, barriers, and locks.
 */

#include <gtest/gtest.h>

#include "src/machine/disk.hh"
#include "src/machine/memory.hh"
#include "src/os/buffer_cache.hh"
#include "src/os/cscan.hh"
#include "src/os/filesystem.hh"
#include "src/os/kernel.hh"
#include "src/os/sched_smp.hh"
#include "src/os/vm.hh"
#include "src/workload/synthetic.hh"

using namespace piso;

namespace {

/** A small 2-CPU machine with one disk and an SMP scheduler. */
struct KernelFixture : public ::testing::Test
{
    static constexpr std::uint64_t kPages = 2048; // 8 MiB

    EventQueue events;
    PhysicalMemory phys{kPages * 4096};
    VirtualMemory vm{phys};
    BufferCache cache;
    FileSystem fs;
    SmpScheduler sched{events, 2};
    std::unique_ptr<DiskDevice> disk;
    std::unique_ptr<Kernel> kernel;

    void
    SetUp() override
    {
        DiskModel model{DiskParams{}};
        disk = std::make_unique<DiskDevice>(
            events, model, std::make_unique<CScanScheduler>(), Rng(7));
        fs.addDisk(0, model.totalSectors());
        kernel = std::make_unique<Kernel>(events, vm, cache, fs, sched,
                                          std::vector<DiskDevice *>{
                                              disk.get()},
                                          Rng(11));
        for (SpuId s : {SpuId{2}, SpuId{3}}) {
            vm.registerSpu(s);
            vm.setEntitled(s, kPages);
            vm.setAllowed(s, kPages);
        }
        vm.setAllowed(kKernelSpu, kPages);
        vm.setAllowed(kSharedSpu, kPages);
    }

    Process *
    spawn(SpuId spu, std::vector<Action> script, Time startAt = 0,
          const std::string &name = "p")
    {
        return kernel->createProcess(
            spu, kNoJob, name,
            std::make_unique<ScriptBehavior>(std::move(script)), startAt);
    }

    void
    run(Time cap = 300 * kSec)
    {
        kernel->start();
        while (kernel->liveProcesses() > 0 && events.now() <= cap) {
            if (!events.runOne())
                break;
        }
    }
};

} // namespace

TEST_F(KernelFixture, ComputeRunsToCompletion)
{
    Process *p = spawn(2, {ComputeAction{200 * kMs}});
    run();
    EXPECT_EQ(p->state(), ProcState::Exited);
    EXPECT_NEAR(toMillis(p->cpuTime), 200.0, 1.0);
    EXPECT_NEAR(toMillis(p->endTime), 200.0, 5.0);
}

TEST_F(KernelFixture, TwoComputeProcessesInParallel)
{
    spawn(2, {ComputeAction{200 * kMs}});
    spawn(3, {ComputeAction{200 * kMs}});
    run();
    EXPECT_NEAR(toMillis(events.now()), 200.0, 5.0);
}

TEST_F(KernelFixture, SleepBlocksWithoutCpu)
{
    Process *p = spawn(2, {SleepAction{500 * kMs}});
    run();
    EXPECT_NEAR(toMillis(p->endTime), 500.0, 1.0);
    EXPECT_LT(toMillis(p->cpuTime), 1.0);
}

TEST_F(KernelFixture, DelayedStart)
{
    Process *p = spawn(2, {ComputeAction{10 * kMs}}, 100 * kMs);
    run();
    EXPECT_NEAR(toMillis(p->endTime), 110.0, 2.0);
}

TEST_F(KernelFixture, GrowMemFaultsInWorkingSet)
{
    Process *p = spawn(2, {GrowMemAction{100}, ComputeAction{100 * kMs}});
    run();
    EXPECT_EQ(p->state(), ProcState::Exited);
    EXPECT_GT(kernel->stats().zeroFills.value(), 50u);
    // Memory was released at exit.
    EXPECT_EQ(vm.levels(2).used, 0u);
}

TEST_F(KernelFixture, ZeroFillFaultsCostCpu)
{
    // Two CPUs: both processes run concurrently and are measured
    // independently. The one growing a working set pays fault CPU.
    Process *a = spawn(2, {ComputeAction{100 * kMs}}, 0, "plain");
    Process *b = spawn(3, {GrowMemAction{500}, ComputeAction{100 * kMs}},
                       0, "faulting");
    run();
    EXPECT_GT(b->endTime - b->startTime, a->endTime - a->startTime);
    EXPECT_GT(b->zeroFillFaults, 100u);
}

TEST_F(KernelFixture, ShrinkMemReleasesFrames)
{
    spawn(2, {GrowMemAction{100}, ComputeAction{200 * kMs},
              ShrinkMemAction{100}, ComputeAction{10 * kMs}});
    run();
    EXPECT_EQ(vm.levels(2).used, 0u);
}

TEST_F(KernelFixture, ColdReadGoesToDisk)
{
    const FileId f = fs.createFile("data", 0, 64 * 1024);
    Process *p = spawn(2, {ReadAction{f, 0, 64 * 1024}});
    run();
    EXPECT_EQ(p->state(), ProcState::Exited);
    EXPECT_GT(kernel->stats().readRequests.value(), 0u);
    EXPECT_GT(p->diskReads, 0u);
    EXPECT_GT(toMillis(p->endTime), 1.0); // paid real disk latency
}

TEST_F(KernelFixture, WarmReadHitsCache)
{
    const FileId f = fs.createFile("data", 0, 16 * 1024);
    spawn(2, {ReadAction{f, 0, 16 * 1024}, ComputeAction{kMs},
              ReadAction{f, 0, 16 * 1024}});
    run();
    EXPECT_EQ(kernel->stats().cacheHits.value(), 4u);  // second read
    EXPECT_EQ(kernel->stats().cacheMisses.value(), 4u); // first read
}

TEST_F(KernelFixture, SequentialReadsTriggerReadAhead)
{
    const FileId f = fs.createFile("stream", 0, 1 << 20);
    std::vector<Action> script;
    for (std::uint64_t off = 0; off < (1 << 20); off += 32 * 1024)
        script.push_back(ReadAction{f, off, 32 * 1024});
    spawn(2, std::move(script));
    run();
    EXPECT_GT(kernel->stats().readAheadRequests.value(), 0u);
    // Almost all blocks arrive via prefetch: only the first few
    // demand requests ever reach the disk.
    EXPECT_LT(kernel->stats().readRequests.value(), 8u);
}

TEST_F(KernelFixture, DelayedWriteReturnsQuickly)
{
    const FileId f = fs.createFile("out", 0, 256 * 1024);
    Process *p = spawn(2, {WriteAction{f, 0, 256 * 1024, false}});
    run(10 * kSec);
    EXPECT_EQ(p->state(), ProcState::Exited);
    // The write dirtied cache only; the process never waited on disk.
    EXPECT_LT(toMillis(p->endTime), 1.0);
    EXPECT_GT(cache.dirtyCount(), 0u);
}

TEST_F(KernelFixture, BdflushCleansDirtyBlocks)
{
    const FileId f = fs.createFile("out", 0, 256 * 1024);
    spawn(2, {WriteAction{f, 0, 256 * 1024, false},
              SleepAction{3 * kSec}});
    run(20 * kSec);
    EXPECT_GT(kernel->stats().bdflushRequests.value(), 0u);
    EXPECT_EQ(cache.dirtyCount(), 0u);
}

TEST_F(KernelFixture, BdflushWritesUnderSharedSpu)
{
    const FileId f = fs.createFile("out", 0, 256 * 1024);
    spawn(2, {WriteAction{f, 0, 256 * 1024, false},
              SleepAction{3 * kSec}});
    run(20 * kSec);
    EXPECT_GT(disk->spuStats(kSharedSpu).requests.value(), 0u);
}

TEST_F(KernelFixture, SyncWriteWaitsForDisk)
{
    const FileId f = fs.createFile("meta", 0, 4096);
    Process *p = spawn(2, {WriteAction{f, 0, 512, true}});
    run();
    EXPECT_GT(kernel->stats().syncWriteRequests.value(), 0u);
    EXPECT_GT(toMillis(p->endTime), 1.0);
    // Sync writes are the process's own, not shared-SPU batched.
    EXPECT_GT(disk->spuStats(2).requests.value(), 0u);
}

TEST_F(KernelFixture, BarrierSynchronisesProcesses)
{
    const int b = kernel->createBarrier(2);
    Process *fast = spawn(2, {ComputeAction{10 * kMs}, BarrierAction{b},
                              ComputeAction{10 * kMs}});
    Process *slow = spawn(3, {ComputeAction{200 * kMs}, BarrierAction{b},
                              ComputeAction{10 * kMs}});
    run();
    // The fast process waits at the barrier for the slow one.
    EXPECT_NEAR(toMillis(fast->endTime), toMillis(slow->endTime), 15.0);
    EXPECT_GT(toMillis(fast->blockedTime), 150.0);
}

TEST_F(KernelFixture, SpinBarrierBurnsCpuWhileWaiting)
{
    const int b = kernel->createBarrier(2);
    Process *fast = spawn(2, {ComputeAction{10 * kMs},
                              BarrierAction{b, true},
                              ComputeAction{10 * kMs}});
    Process *slow = spawn(3, {ComputeAction{200 * kMs},
                              BarrierAction{b, true},
                              ComputeAction{10 * kMs}});
    run();
    // Both finish together, but unlike a blocking barrier the fast
    // rank spent the wait *running* (its CPU was never released).
    EXPECT_NEAR(toMillis(fast->endTime), toMillis(slow->endTime), 5.0);
    EXPECT_GT(toMillis(fast->cpuTime), 180.0); // 10+10 compute + spin
    EXPECT_LT(toMillis(fast->blockedTime), 5.0);
}

TEST_F(KernelFixture, SpinBarrierReleasesPreemptedWaiter)
{
    // One CPU: the spinner gets preempted by the slice round-robin
    // while waiting; releasing the barrier must still un-spin it.
    EventQueue ev2;
    SmpScheduler one{ev2, 1};
    PhysicalMemory pm{kPages * 4096};
    VirtualMemory vmem{pm};
    BufferCache bc;
    FileSystem filesys;
    DiskModel model{DiskParams{}};
    DiskDevice dd(ev2, model, std::make_unique<CScanScheduler>(),
                  Rng(7));
    filesys.addDisk(0, model.totalSectors());
    Kernel k(ev2, vmem, bc, filesys, one,
             std::vector<DiskDevice *>{&dd}, Rng(11));
    vmem.registerSpu(2);
    vmem.setEntitled(2, kPages);
    vmem.setAllowed(2, kPages);
    vmem.setAllowed(kKernelSpu, kPages);
    vmem.setAllowed(kSharedSpu, kPages);

    const int b = k.createBarrier(2);
    Process *spinner = k.createProcess(
        2, kNoJob, "spinner",
        std::make_unique<ScriptBehavior>(std::vector<Action>{
            BarrierAction{b, true}, ComputeAction{5 * kMs}}),
        0);
    Process *late = k.createProcess(
        2, kNoJob, "late",
        std::make_unique<ScriptBehavior>(std::vector<Action>{
            ComputeAction{100 * kMs}, BarrierAction{b, true}}),
        kMs);
    k.start();
    while (k.liveProcesses() > 0 && ev2.now() < 10 * kSec) {
        if (!ev2.runOne())
            break;
    }
    EXPECT_EQ(spinner->state(), ProcState::Exited);
    EXPECT_EQ(late->state(), ProcState::Exited);
    EXPECT_LT(toMillis(ev2.now()), 300.0);
}

TEST_F(KernelFixture, BarrierIsCyclic)
{
    const int b = kernel->createBarrier(2);
    std::vector<Action> scriptA, scriptB;
    for (int i = 0; i < 5; ++i) {
        scriptA.push_back(ComputeAction{5 * kMs});
        scriptA.push_back(BarrierAction{b});
        scriptB.push_back(ComputeAction{10 * kMs});
        scriptB.push_back(BarrierAction{b});
    }
    Process *pa = spawn(2, std::move(scriptA));
    Process *pb = spawn(3, std::move(scriptB));
    run();
    EXPECT_EQ(pa->state(), ProcState::Exited);
    EXPECT_EQ(pb->state(), ProcState::Exited);
    // Five rounds paced by the slower rank: ~50 ms.
    EXPECT_NEAR(toMillis(events.now()), 50.0, 10.0);
}

TEST_F(KernelFixture, LockSerializesHolders)
{
    const int l = kernel->createLock(false);
    Process *a = spawn(2, {LockAction{l, true, 100 * kMs}});
    Process *b = spawn(3, {LockAction{l, true, 100 * kMs}});
    run();
    // Total elapsed ~200 ms although two CPUs were available.
    EXPECT_GE(toMillis(events.now()), 195.0);
    EXPECT_EQ(a->state(), ProcState::Exited);
    EXPECT_EQ(b->state(), ProcState::Exited);
}

TEST_F(KernelFixture, RwLockAllowsParallelReaders)
{
    const int l = kernel->createLock(true);
    spawn(2, {LockAction{l, false, 100 * kMs}});
    spawn(3, {LockAction{l, false, 100 * kMs}});
    run();
    EXPECT_LT(toMillis(events.now()), 150.0);
}

TEST_F(KernelFixture, MemoryPressureCausesRefaults)
{
    // Two processes whose combined working sets exceed the machine.
    vm.setAllowed(2, kPages);
    spawn(2, {GrowMemAction{1500}, ComputeAction{2 * kSec}});
    spawn(2, {GrowMemAction{1500}, ComputeAction{2 * kSec}});
    run(600 * kSec);
    EXPECT_GT(kernel->stats().refaults.value(), 10u);
    EXPECT_GT(kernel->stats().pageoutWrites.value(), 0u);
}

TEST_F(KernelFixture, AllowedLimitConfinesSpu)
{
    // SPU 2 capped at 300 pages wants 600: it must thrash against its
    // own cap while the machine still has free memory.
    vm.setAllowed(2, 300);
    vm.setEntitled(2, 300);
    spawn(2, {GrowMemAction{600}, ComputeAction{kSec}});
    run(600 * kSec);
    EXPECT_LE(vm.levels(2).used, 300u);
    EXPECT_GT(kernel->stats().refaults.value(), 0u);
    EXPECT_GT(phys.freePages(), kPages / 2); // machine stayed mostly free
}

TEST_F(KernelFixture, PressureNotedWhenAtLimit)
{
    vm.setAllowed(2, 100);
    spawn(2, {GrowMemAction{200}, ComputeAction{500 * kMs}});
    kernel->start();
    // Run a little while, then check pressure was recorded.
    events.runAll(200 * kMs);
    EXPECT_GT(vm.pressure(2), 0u);
}

TEST_F(KernelFixture, SecondSpuTouchingBlockReclassifiesToShared)
{
    const FileId f = fs.createFile("lib", 0, 32 * 1024);
    spawn(2, {ReadAction{f, 0, 32 * 1024}});
    spawn(3, {SleepAction{kSec}, ReadAction{f, 0, 32 * 1024}});
    run();
    EXPECT_GT(vm.levels(kSharedSpu).used, 0u);
    EXPECT_GT(cache.pagesOf(kSharedSpu), 0u);
    EXPECT_EQ(cache.pagesOf(2), 0u); // all its blocks moved to shared
}

TEST_F(KernelFixture, ExitReleasesEverything)
{
    spawn(2, {GrowMemAction{500}, ComputeAction{300 * kMs}});
    run();
    EXPECT_EQ(vm.levels(2).used, 0u);
    EXPECT_EQ(kernel->liveProcesses(), 0u);
}

TEST_F(KernelFixture, PageoutDaemonEnforcesLoweredAllowance)
{
    spawn(2, {GrowMemAction{800}, ComputeAction{300 * kMs},
              SleepAction{2 * kSec}});
    kernel->start();
    events.runAll(400 * kMs);
    ASSERT_GT(vm.levels(2).used, 700u);
    // Revoke: lower the allowance; the daemon must shrink usage.
    vm.setAllowed(2, 200);
    events.runAll(3 * kSec);
    EXPECT_LE(vm.levels(2).used, 250u);
}

TEST_F(KernelFixture, ReadBeyondCacheBudgetStillCompletes)
{
    // A file much bigger than memory: the cache recycles itself.
    const std::uint64_t bytes = (kPages + 1000) * 4096;
    const FileId f = fs.createFile("huge", 0, bytes);
    std::vector<Action> script;
    for (std::uint64_t off = 0; off < bytes; off += 64 * 1024) {
        script.push_back(ReadAction{
            f, off, std::min<std::uint64_t>(64 * 1024, bytes - off)});
    }
    Process *p = spawn(2, std::move(script));
    run(600 * kSec);
    EXPECT_EQ(p->state(), ProcState::Exited);
    // The cache recycled itself and never outgrew physical memory.
    EXPECT_LE(cache.size(), kPages);
    EXPECT_LE(vm.levels(2).used, kPages);
}

TEST_F(KernelFixture, PriorityInheritanceShortensLockWait)
{
    // One CPU: a holder with a long critical section competes with
    // CPU hogs while a fresh waiter blocks on the lock. Inheritance
    // lets the holder finish the section without losing the CPU.
    auto waiterEnd = [&](bool inheritance) {
        EventQueue ev;
        PhysicalMemory pm{kPages * 4096};
        VirtualMemory vmem{pm};
        BufferCache bc;
        FileSystem filesys;
        SmpScheduler s1{ev, 1};
        DiskModel model{DiskParams{}};
        DiskDevice dd(ev, model, std::make_unique<CScanScheduler>(),
                      Rng(7));
        filesys.addDisk(0, model.totalSectors());
        KernelConfig kc;
        kc.lockPriorityInheritance = inheritance;
        Kernel k(ev, vmem, bc, filesys, s1,
                 std::vector<DiskDevice *>{&dd}, Rng(11), kc);
        vmem.registerSpu(2);
        vmem.setEntitled(2, kPages);
        vmem.setAllowed(2, kPages);
        vmem.setAllowed(kKernelSpu, kPages);
        vmem.setAllowed(kSharedSpu, kPages);

        const int l = k.createLock(false);
        k.createProcess(2, kNoJob, "holder",
                        std::make_unique<ScriptBehavior>(
                            std::vector<Action>{
                                LockAction{l, true, 300 * kMs}}),
                        0);
        for (int i = 0; i < 2; ++i) {
            k.createProcess(2, kNoJob, "hog" + std::to_string(i),
                            std::make_unique<ScriptBehavior>(
                                std::vector<Action>{
                                    ComputeAction{2 * kSec}}),
                            5 * kMs);
        }
        Process *w = k.createProcess(
            2, kNoJob, "waiter",
            std::make_unique<ScriptBehavior>(
                std::vector<Action>{LockAction{l, true, kMs}}),
            10 * kMs);
        k.start();
        while (k.liveProcesses() > 0 && ev.now() < 30 * kSec) {
            if (!ev.runOne())
                break;
        }
        return w->endTime;
    };

    const Time with = waiterEnd(true);
    const Time without = waiterEnd(false);
    // Without inheritance, the holder round-robins with two hogs
    // (~3x the critical section); with it, the section runs through.
    EXPECT_LT(toMillis(with), 450.0);
    EXPECT_GT(toMillis(without), 1.4 * toMillis(with));
}

TEST_F(KernelFixture, WriteThrottleEngagesOnFloods)
{
    KernelConfig kc;
    kc.writeThrottleSectors = 256; // tiny: trigger quickly
    kernel = std::make_unique<Kernel>(events, vm, cache, fs, sched,
                                      std::vector<DiskDevice *>{
                                          disk.get()},
                                      Rng(13), kc);
    const FileId f = fs.createFile("flood", 0, 8 << 20);
    std::vector<Action> script;
    for (std::uint64_t off = 0; off < (8u << 20); off += 64 * 1024)
        script.push_back(WriteAction{f, off, 64 * 1024, false});
    spawn(2, std::move(script));
    run(600 * kSec);
    EXPECT_GT(kernel->stats().throttleStalls.value(), 0u);
}
