#ifndef PISO_TESTS_SCHED_TEST_UTIL_HH
#define PISO_TESTS_SCHED_TEST_UTIL_HH

/**
 * @file
 * Test harness for CPU-scheduler policies: a fake SchedClient that
 * models pure compute-bound processes without the full Kernel.
 */

#include <map>
#include <memory>
#include <vector>

#include "src/os/scheduler.hh"
#include "src/sim/event_queue.hh"
#include "src/workload/synthetic.hh"

namespace piso::test {

/**
 * Executes processes as simple compute burners: each process has a
 * fixed amount of work; when it finishes it exits. Preemption
 * deducts partial progress, exactly like the real kernel.
 */
class FakeClient : public SchedClient
{
  public:
    FakeClient(EventQueue &events, CpuScheduler &sched)
        : events_(events), sched_(sched)
    {
        sched_.setClient(this);
    }

    /** Create a process with @p work CPU demand; does not start it. */
    Process *
    createProcess(SpuId spu, Time work, const std::string &name = "p")
    {
        const Pid pid = nextPid_++;
        auto p = std::make_unique<Process>(
            pid, spu, kNoJob, name,
            std::make_unique<ScriptBehavior>(std::vector<Action>{}),
            Rng(static_cast<std::uint64_t>(pid)));
        work_[p.get()] = work;
        sched_.processCreated(p.get());
        procs_.push_back(std::move(p));
        return procs_.back().get();
    }

    /** Make @p p runnable now. */
    void
    startProcess(Process *p)
    {
        p->startTime = events_.now();
        sched_.processReady(p);
    }

    void
    startRunning(Process &p) override
    {
        p.segmentStart = events_.now();
        const Time w = work_[&p];
        pending_[&p] = events_.scheduleAfter(
            w,
            [this, &p] {
                pending_.erase(&p);
                p.cpuTime += events_.now() - p.segmentStart;
                work_[&p] = 0;
                sched_.processExited(&p);
            },
            "fakeDone");
    }

    void
    stopRunning(Process &p) override
    {
        auto it = pending_.find(&p);
        if (it != pending_.end()) {
            events_.cancel(it->second);
            pending_.erase(it);
        }
        const Time elapsed = events_.now() - p.segmentStart;
        p.cpuTime += elapsed;
        Time &w = work_[&p];
        w -= std::min(elapsed, w);
    }

    Time remainingWork(Process *p) const { return work_.at(p); }

    /** Run until all created processes exited (with a safety cap). */
    void
    runToCompletion(Time cap = 3600 * kSec)
    {
        while (events_.now() <= cap) {
            bool anyLive = false;
            for (const auto &p : procs_)
                anyLive |= p->state() != ProcState::Exited;
            if (!anyLive)
                break;
            if (!events_.runOne())
                break;
        }
    }

  private:
    EventQueue &events_;
    CpuScheduler &sched_;
    Pid nextPid_ = 1;
    std::vector<std::unique_ptr<Process>> procs_;
    std::map<Process *, Time> work_;
    std::map<Process *, EventId> pending_;
};

} // namespace piso::test

#endif // PISO_TESTS_SCHED_TEST_UTIL_HH
