/**
 * @file
 * Unit tests for the physical frame pool.
 */

#include <gtest/gtest.h>

#include "src/machine/memory.hh"

using namespace piso;

TEST(PhysicalMemory, PageAccounting)
{
    PhysicalMemory m(16 * 4096);
    EXPECT_EQ(m.totalPages(), 16u);
    EXPECT_EQ(m.freePages(), 16u);
    EXPECT_EQ(m.usedPages(), 0u);
    EXPECT_EQ(m.pageBytes(), 4096u);
}

TEST(PhysicalMemory, AllocateAndRelease)
{
    PhysicalMemory m(16 * 4096);
    EXPECT_TRUE(m.allocate(10));
    EXPECT_EQ(m.freePages(), 6u);
    EXPECT_EQ(m.usedPages(), 10u);
    m.release(4);
    EXPECT_EQ(m.freePages(), 10u);
}

TEST(PhysicalMemory, AllocateFailsWhenShort)
{
    PhysicalMemory m(4 * 4096);
    EXPECT_TRUE(m.allocate(4));
    EXPECT_FALSE(m.allocate(1));
    EXPECT_EQ(m.freePages(), 0u); // failed alloc left state untouched
    m.release(1);
    EXPECT_TRUE(m.allocate(1));
}

TEST(PhysicalMemory, PartialFailureLeavesStateUntouched)
{
    PhysicalMemory m(8 * 4096);
    EXPECT_TRUE(m.allocate(5));
    EXPECT_FALSE(m.allocate(4)); // only 3 free
    EXPECT_EQ(m.freePages(), 3u);
}

TEST(PhysicalMemory, NonPageMultipleRoundsDown)
{
    PhysicalMemory m(4096 * 3 + 100);
    EXPECT_EQ(m.totalPages(), 3u);
}

TEST(PhysicalMemory, CustomPageSize)
{
    PhysicalMemory m(1 << 20, 8192);
    EXPECT_EQ(m.totalPages(), 128u);
}

TEST(PhysicalMemory, RejectsEmptyConfigurations)
{
    EXPECT_THROW(PhysicalMemory(100, 4096), std::runtime_error);
    EXPECT_THROW(PhysicalMemory(4096, 0), std::runtime_error);
}

TEST(PhysicalMemory, OverReleasePanics)
{
    PhysicalMemory m(4 * 4096);
    EXPECT_DEATH(m.release(1), "overflow");
}
