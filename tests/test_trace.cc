/**
 * @file
 * Tests for the category-gated trace facility.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/piso.hh"
#include "src/sim/trace.hh"

using namespace piso;

namespace {

struct CapturedLine
{
    Time when;
    TraceCat cat;
    std::string text;
};

/** RAII capture of trace output. */
class TraceCapture
{
  public:
    explicit TraceCapture(TraceCat mask)
    {
        traceEnable(mask);
        traceSetSink([this](Time when, TraceCat cat,
                            const std::string &msg) {
            lines_.push_back(CapturedLine{when, cat, msg});
        });
    }

    ~TraceCapture()
    {
        traceDisable();
        traceSetSink(nullptr);
    }

    const std::vector<CapturedLine> &lines() const { return lines_; }

    std::size_t
    count(const std::string &needle) const
    {
        std::size_t n = 0;
        for (const auto &l : lines_)
            n += l.text.find(needle) != std::string::npos ? 1 : 0;
        return n;
    }

  private:
    std::vector<CapturedLine> lines_;
};

SimResults
runSmallWorkload()
{
    SystemConfig cfg;
    cfg.cpus = 2;
    cfg.memoryBytes = 16 * kMiB;
    cfg.scheme = Scheme::PIso;
    cfg.seed = 3;
    Simulation sim(cfg);
    const SpuId a = sim.addSpu({.name = "a"});
    const SpuId b = sim.addSpu({.name = "b"});
    PmakeConfig pm;
    pm.parallelism = 2;
    pm.filesPerWorker = 3;
    sim.addJob(a, makePmake("pm", pm));
    ComputeSpec hog;
    hog.totalCpu = 300 * kMs;
    sim.addJob(b, makeComputeJob("hog", hog));
    return sim.run();
}

} // namespace

TEST(Trace, DisabledByDefault)
{
    EXPECT_EQ(traceMask(), TraceCat::None);
    EXPECT_FALSE(traceActive(TraceCat::Sched));
}

TEST(Trace, MaskGatesCategories)
{
    traceEnable(TraceCat::Sched | TraceCat::Disk);
    EXPECT_TRUE(traceActive(TraceCat::Sched));
    EXPECT_TRUE(traceActive(TraceCat::Disk));
    EXPECT_FALSE(traceActive(TraceCat::Mem));
    traceDisable();
    EXPECT_FALSE(traceActive(TraceCat::Sched));
}

TEST(Trace, CategoryNames)
{
    EXPECT_STREQ(traceCatName(TraceCat::Sched), "sched");
    EXPECT_STREQ(traceCatName(TraceCat::Mem), "mem");
    EXPECT_STREQ(traceCatName(TraceCat::Disk), "disk");
    EXPECT_STREQ(traceCatName(TraceCat::Net), "net");
    EXPECT_STREQ(traceCatName(TraceCat::Lock), "lock");
    EXPECT_STREQ(traceCatName(TraceCat::Kernel), "kernel");
}

TEST(Trace, SchedulerEventsCaptured)
{
    TraceCapture cap(TraceCat::Sched);
    runSmallWorkload();
    EXPECT_GT(cap.count("dispatch"), 5u);
    for (const auto &l : cap.lines())
        EXPECT_EQ(l.cat, TraceCat::Sched);
}

TEST(Trace, DiskAndKernelEventsCaptured)
{
    TraceCapture cap(TraceCat::Disk | TraceCat::Kernel);
    runSmallWorkload();
    EXPECT_GT(cap.count("read"), 0u);  // disk completions
    EXPECT_GT(cap.count("exit"), 0u);  // process exits
}

TEST(Trace, MemoryFaultEventsCaptured)
{
    TraceCapture cap(TraceCat::Mem);
    runSmallWorkload();
    EXPECT_GT(cap.count("zero-fill"), 10u);
    EXPECT_GT(cap.count("mem policy"), 0u);
}

TEST(Trace, TimestampsAreMonotonic)
{
    TraceCapture cap(TraceCat::Sched);
    runSmallWorkload();
    for (std::size_t i = 1; i < cap.lines().size(); ++i)
        EXPECT_GE(cap.lines()[i].when, cap.lines()[i - 1].when);
}

TEST(Trace, DisabledTracingProducesNothing)
{
    TraceCapture cap(TraceCat::None);
    runSmallWorkload();
    EXPECT_TRUE(cap.lines().empty());
}

TEST(Trace, TracingDoesNotPerturbResults)
{
    const SimResults quiet = runSmallWorkload();
    TraceCapture cap(TraceCat::All);
    const SimResults traced = runSmallWorkload();
    EXPECT_EQ(quiet.simulatedTime, traced.simulatedTime);
    EXPECT_EQ(quiet.job("pm").end, traced.job("pm").end);
}
