/**
 * @file
 * Unit tests for the fixed-quota (space/time-partitioned) scheduler.
 */

#include <gtest/gtest.h>

#include "src/core/sched_quota.hh"
#include "tests/sched_test_util.hh"

using namespace piso;
using piso::test::FakeClient;

namespace {

struct QuotaFixture : public ::testing::Test
{
    EventQueue events;
    QuotaScheduler sched{events, 4};
    FakeClient client{events, sched};

    void
    partitionHalf()
    {
        sched.partitionCpus({{2, 0.5}, {3, 0.5}});
    }
};

} // namespace

TEST_F(QuotaFixture, PartitionAssignsHomeSpus)
{
    partitionHalf();
    int a = 0, b = 0;
    for (int i = 0; i < 4; ++i) {
        if (sched.cpu(i).homeSpu == 2)
            ++a;
        if (sched.cpu(i).homeSpu == 3)
            ++b;
    }
    EXPECT_EQ(a, 2);
    EXPECT_EQ(b, 2);
}

TEST_F(QuotaFixture, ProcessRunsOnlyOnHomeCpu)
{
    partitionHalf();
    sched.start();
    Process *p = client.createProcess(2, 100 * kMs);
    client.startProcess(p);
    EXPECT_EQ(p->state(), ProcState::Running);
    EXPECT_EQ(sched.cpu(p->runningOn).homeSpu, 2);
}

TEST_F(QuotaFixture, NoSharingOfIdleCpus)
{
    // The defining Quota property: SPU 3's CPUs stay idle even while
    // SPU 2 is oversubscribed.
    partitionHalf();
    sched.start();
    for (int i = 0; i < 4; ++i)
        client.startProcess(client.createProcess(2, 400 * kMs));
    client.runToCompletion();
    // 1.6 s of work on 2 CPUs: ~800 ms despite two idle CPUs.
    EXPECT_NEAR(toMillis(events.now()), 800.0, 40.0);
    // SPU 3's CPUs were idle the whole time.
    EXPECT_EQ(sched.spuCpuTime(3), 0u);
}

TEST_F(QuotaFixture, IsolationFromForeignLoad)
{
    partitionHalf();
    sched.start();
    Process *light = client.createProcess(2, 300 * kMs);
    client.startProcess(light);
    for (int i = 0; i < 8; ++i)
        client.startProcess(client.createProcess(3, 2 * kSec));
    client.runToCompletion();
    // SPU 2's job sees a dedicated CPU: finishes in its own time.
    EXPECT_NEAR(toMillis(light->endTime - light->startTime), 300.0, 20.0);
}

TEST_F(QuotaFixture, ReadyCountPerSpu)
{
    partitionHalf();
    sched.start();
    for (int i = 0; i < 4; ++i)
        client.startProcess(client.createProcess(2, kSec));
    EXPECT_EQ(sched.readyCount(2), 2u);
    EXPECT_EQ(sched.readyCount(3), 0u);
}

TEST(QuotaScheduler, FractionalShareTimeMultiplexes)
{
    // Two SPUs share a single CPU 50/50 through time partitioning.
    EventQueue events;
    QuotaScheduler sched(events, 1);
    FakeClient client(events, sched);
    sched.partitionCpus({{2, 0.5}, {3, 0.5}});
    EXPECT_FALSE(sched.cpu(0).timeShares.empty());

    sched.start();
    Process *a = client.createProcess(2, 10 * kSec);
    Process *b = client.createProcess(3, 10 * kSec);
    client.startProcess(a);
    client.startProcess(b);
    events.runAll(2 * kSec);
    const double ta = toMillis(a->cpuTime) +
                      (a->state() == ProcState::Running
                           ? toMillis(events.now() - a->segmentStart)
                           : 0.0);
    const double tb = toMillis(b->cpuTime) +
                      (b->state() == ProcState::Running
                           ? toMillis(events.now() - b->segmentStart)
                           : 0.0);
    // Each should get about half of the 2 simulated seconds.
    EXPECT_NEAR(ta, 1000.0, 150.0);
    EXPECT_NEAR(tb, 1000.0, 150.0);
}

TEST(QuotaScheduler, UnevenSharesGiveUnevenCpus)
{
    EventQueue events;
    QuotaScheduler sched(events, 4);
    sched.partitionCpus({{2, 0.25}, {3, 0.75}});
    int a = 0, b = 0;
    for (int i = 0; i < 4; ++i) {
        if (sched.cpu(i).homeSpu == 2)
            ++a;
        if (sched.cpu(i).homeSpu == 3)
            ++b;
    }
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, 3);
}

TEST(QuotaScheduler, MixedIntegralAndFractionalShares)
{
    // 1.5 + 2.5 CPUs on a 4-CPU box: 1 and 2 dedicated CPUs plus one
    // CPU time-shared 50/50.
    EventQueue events;
    QuotaScheduler sched(events, 4);
    sched.partitionCpus({{2, 1.5 / 4.0}, {3, 2.5 / 4.0}});
    int dedicatedA = 0, dedicatedB = 0, shared = 0;
    for (int i = 0; i < 4; ++i) {
        const Cpu &c = sched.cpu(i);
        if (!c.timeShares.empty())
            ++shared;
        else if (c.homeSpu == 2)
            ++dedicatedA;
        else if (c.homeSpu == 3)
            ++dedicatedB;
    }
    EXPECT_EQ(dedicatedA, 1);
    EXPECT_EQ(dedicatedB, 2);
    EXPECT_EQ(shared, 1);
}

TEST(QuotaScheduler, EmptyPartitionIsNoop)
{
    EventQueue events;
    QuotaScheduler sched(events, 2);
    sched.partitionCpus({});
    EXPECT_EQ(sched.cpu(0).homeSpu, kNoSpu);
}

TEST(QuotaScheduler, ZeroShareSumIsFatal)
{
    EventQueue events;
    QuotaScheduler sched(events, 2);
    EXPECT_THROW(sched.partitionCpus({{2, 0.0}}), std::runtime_error);
}
