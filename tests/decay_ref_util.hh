#ifndef PISO_TESTS_DECAY_REF_UTIL_HH
#define PISO_TESTS_DECAY_REF_UTIL_HH

/**
 * @file
 * Eager periodic-sweep reference model for the decayed bandwidth
 * counters, and an ulp-distance helper.
 *
 * DiskBandwidthTracker stores (count, last-update) per SPU and folds
 * the missed exponential decay lazily on read, in one exp2. The
 * reference model here is the eager implementation it replaces: every
 * entry is swept once per half-life, each sweep multiplying by
 * exactly 0.5, with the sub-period remainder folded by exp2 on
 * observation. Multiplying by 0.5 is exact in binary floating point
 * and a correctly-rounded exp2 satisfies
 * exp2(-(k + f)) == ldexp(exp2(-f), -k), so the lazy single-fold and
 * the eager sweep agree to 1 ulp at every observation point — the
 * property test_disk_fair.cc / test_network.cc assert over
 * randomized op sequences.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>

#include "src/sim/ids.hh"
#include "src/util/time.hh"

namespace piso::testutil {

/** Eager periodic-sweep twin of DiskBandwidthTracker's decay. */
class EagerDecayRef
{
  public:
    explicit EagerDecayRef(Time halfLife) : halfLife_(halfLife) {}

    void
    add(SpuId spu, std::uint64_t amount, Time now)
    {
        Entry &e = entries_[spu];
        fold(e, now);
        e.count += static_cast<double>(amount);
    }

    double
    usage(SpuId spu, Time now) const
    {
        auto it = entries_.find(spu);
        if (it == entries_.end())
            return 0.0;
        Entry probe = it->second;  // reads don't advance the entry
        fold(probe, now);
        return probe.count;
    }

  private:
    struct Entry
    {
        double count = 0.0;
        Time last = 0;
    };

    void
    fold(Entry &e, Time now) const
    {
        if (now <= e.last)
            return;
        if (e.count == 0.0) {
            e.last = now;
            return;
        }
        // The periodic sweeps this entry missed: one exact halving
        // per full half-life elapsed.
        while (e.last + halfLife_ <= now) {
            e.count *= 0.5;
            e.last += halfLife_;
        }
        // Sub-period remainder, folded on observation.
        if (now > e.last) {
            const double frac = static_cast<double>(now - e.last) /
                                static_cast<double>(halfLife_);
            e.count *= std::exp2(-frac);
            e.last = now;
        }
    }

    Time halfLife_;
    std::map<SpuId, Entry> entries_;
};

/** Distance in representable doubles, capped at @p cap. */
inline int
ulpDistance(double a, double b, int cap = 8)
{
    if (a == b)
        return 0;
    double lo = std::min(a, b);
    const double hi = std::max(a, b);
    int n = 0;
    while (lo < hi && n < cap)
        lo = std::nextafter(lo, hi), ++n;
    return n;
}

} // namespace piso::testutil

#endif // PISO_TESTS_DECAY_REF_UTIL_HH
