# Run `clang-format --dry-run -Werror` over the .cc/.hh files the
# current branch touches relative to BASE_REF (plus anything dirty in
# the worktree). Invoked by the check-format target; variables
# CLANG_FORMAT, GIT, and BASE_REF arrive via -D.

execute_process(
    COMMAND ${GIT} merge-base HEAD ${BASE_REF}
    OUTPUT_VARIABLE MERGE_BASE
    OUTPUT_STRIP_TRAILING_WHITESPACE
    RESULT_VARIABLE MERGE_BASE_RC)
if(NOT MERGE_BASE_RC EQUAL 0)
    # No such ref (shallow clone, detached CI checkout): fall back to
    # comparing against HEAD so only uncommitted changes are checked.
    set(MERGE_BASE HEAD)
endif()

execute_process(
    COMMAND ${GIT} diff --name-only --diff-filter=d ${MERGE_BASE}
    OUTPUT_VARIABLE CHANGED
    OUTPUT_STRIP_TRAILING_WHITESPACE)

string(REPLACE "\n" ";" CHANGED "${CHANGED}")
set(TO_CHECK "")
foreach(f ${CHANGED})
    if(f MATCHES "\\.(cc|hh)$" AND EXISTS ${CMAKE_SOURCE_DIR}/${f})
        list(APPEND TO_CHECK ${f})
    endif()
endforeach()

if(NOT TO_CHECK)
    message(STATUS "check-format: no touched .cc/.hh files")
    return()
endif()

list(LENGTH TO_CHECK N)
message(STATUS "check-format: ${N} touched file(s)")
execute_process(
    COMMAND ${CLANG_FORMAT} --dry-run -Werror ${TO_CHECK}
    RESULT_VARIABLE FMT_RC)
if(NOT FMT_RC EQUAL 0)
    message(FATAL_ERROR
            "check-format: formatting differs; run clang-format -i on "
            "the files above")
endif()
