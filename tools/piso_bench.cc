/**
 * @file
 * piso_bench: microbenchmarks of the simulator's hot paths.
 *
 *   piso_bench                 # full run: eventq, cache, fig2
 *   piso_bench --quick         # smaller sizes (CI smoke)
 *   piso_bench --check         # fail (exit 1) on gross regressions
 *   piso_bench eventq cache    # run a subset
 *
 * Three benchmarks, one per hot path the engine's speed rests on:
 *
 *   eventq  schedule/cancel/run churn on the EventQueue (the cost of
 *           every simulated event, dominated by allocation and
 *           cancellation bookkeeping).
 *   cache   buffer-cache lookup/insert/touch/steal churn (the file
 *           I/O path's per-block cost).
 *   fig2    the paper's Figure 2 machine end-to-end (8 SPUs, 12 pmake
 *           jobs, PIso), warmup + repetitions + median wall time.
 *
 * Every number is wall-clock measured by this tool, so before/after
 * comparisons across revisions use the same harness (see
 * docs/performance.md for the numbers recorded for each change).
 *
 * --check applies generous absolute floors (roughly 5x below the
 * numbers measured on a developer machine in Release mode) so CI
 * catches order-of-magnitude regressions without flaking on slower
 * runners. Debug builds are exempt from --check by design: pass it
 * only to optimised builds.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/pmake8.hh"
#include "src/os/buffer_cache.hh"
#include "src/piso.hh"
#include "src/util/log.hh"

using namespace piso;

namespace {

double
nowSec()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n == 0 ? 0.0
                  : (n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]));
}

/**
 * Event-queue churn modelled on what the kernel actually does: most
 * events fire, but a large fraction (compute-segment ends, I/O
 * watchdogs) are cancelled before firing, and pendingEvent() guards
 * are probed along the way.
 * @return events processed (scheduled) per second.
 */
double
benchEventQueue(std::uint64_t totalEvents)
{
    const std::uint64_t batch = 10000;
    std::uint64_t fired = 0;
    std::uint64_t scheduled = 0;

    const double start = nowSec();
    while (scheduled < totalEvents) {
        EventQueue q;
        std::vector<EventId> ids;
        ids.reserve(batch);
        std::uint64_t x = scheduled + 12345;
        for (std::uint64_t i = 0; i < batch; ++i) {
            x = x * 6364136223846793005ULL + 1442695040888963407ULL;
            const Time when = static_cast<Time>((x >> 33) % 100000);
            ids.push_back(
                q.schedule(when, [&fired] { ++fired; }, "bench"));
        }
        // Cancel every third event (segment-end style churn), probing
        // pendingEvent() like the kernel's guards do.
        for (std::uint64_t i = 0; i < ids.size(); i += 3) {
            if (q.pendingEvent(ids[i]))
                q.cancel(ids[i]);
        }
        q.runAll();
        scheduled += batch;
    }
    const double sec = nowSec() - start;
    if (fired == 0)
        PISO_FATAL("event queue benchmark fired nothing");
    return static_cast<double>(scheduled) / sec;
}

/**
 * Buffer-cache churn: sequential-ish inserts with LRU touches, dirty
 * marking, periodic clean steals and dirty scans — the doRead/doWrite
 * /pageout mix. @return cache operations per second.
 */
double
benchBufferCache(std::uint64_t totalOps)
{
    BufferCache cache;
    const std::uint64_t files = 8;
    const std::uint64_t blocksPerFile = 4096;
    std::uint64_t ops = 0;
    std::uint64_t x = 99;

    const double start = nowSec();
    while (ops < totalOps) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        const BlockKey key{
            static_cast<FileId>((x >> 13) % files),
            (x >> 33) % blocksPerFile};
        const SpuId spu = static_cast<SpuId>(2 + (x >> 7) % 4);

        CacheBlock *blk = cache.find(key);
        if (blk) {
            cache.touch(*blk);
            if ((x & 7) == 0)
                cache.markDirty(*blk);
        } else {
            CacheBlock &nb = cache.insert(key, spu, true);
            if ((x & 15) == 0)
                cache.markDirty(nb);
        }
        ++ops;

        // Keep the cache bounded like a full machine would: steal the
        // LRU clean block once we pass 8k resident blocks.
        if (cache.size() > 8192) {
            SpuId owner = kNoSpu;
            cache.stealClean(kNoSpu, owner);
            ++ops;
        }

        // bdflush stand-in: periodically scan for dirty blocks and
        // clean a batch, so dirty blocks never swamp the LRU list.
        if ((ops & 1023) == 0) {
            std::vector<BlockKey> dirty;
            cache.forEachDirty([&](CacheBlock &b) {
                if (dirty.size() < 256)
                    dirty.push_back(b.key);
            });
            for (const BlockKey &k : dirty) {
                if (CacheBlock *b = cache.find(k))
                    cache.markClean(*b);
            }
        }
    }
    const double sec = nowSec() - start;
    return static_cast<double>(ops) / sec;
}

/**
 * One fig2 repetition: a batch of back-to-back runs of the golden
 * fixture's machine (a single run is a few milliseconds, so batching
 * keeps the clock honest). @return wall seconds per run.
 */
double
runFig2Batch(int inner)
{
    const double start = nowSec();
    for (int i = 0; i < inner; ++i) {
        const bench::Pmake8Run run =
            bench::runPmake8(Scheme::PIso, /*unbalanced=*/true, 1);
        if (!run.results.completed)
            PISO_FATAL("fig2 benchmark run did not complete");
    }
    return (nowSec() - start) / inner;
}

void
usage(std::FILE *to)
{
    std::fprintf(to,
                 "usage: piso_bench [--quick] [--check] [--reps N] "
                 "[eventq|cache|fig2]...\n"
                 "  --quick      smaller workloads (CI smoke)\n"
                 "  --check      exit 1 when a result is >5x below the "
                 "recorded Release baseline\n"
                 "  --reps N     fig2 repetitions (default 5, quick 3)\n"
                 "  -h, --help   show this help and exit\n"
                 "With no benchmark names, all three run.\n");
}

int
usageError()
{
    usage(stderr);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    bool check = false;
    int reps = 0;
    std::vector<std::string> which;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--check") == 0) {
            check = true;
        } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
            reps = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "-h") == 0 ||
                   std::strcmp(argv[i], "--help") == 0) {
            usage(stdout);
            return 0;
        } else if (argv[i][0] == '-') {
            return usageError();
        } else {
            which.emplace_back(argv[i]);
        }
    }
    if (which.empty())
        which = {"eventq", "cache", "fig2"};
    if (reps <= 0)
        reps = quick ? 3 : 5;

    const auto wants = [&](const char *name) {
        return std::find(which.begin(), which.end(), name) != which.end();
    };

    // Floors for --check: ~5x below the Release numbers recorded in
    // docs/performance.md, so only gross regressions (or accidentally
    // checking a Debug build) trip them.
    constexpr double kEventqFloor = 2.0e6; // events/s
    constexpr double kCacheFloor = 2.0e6;  // ops/s
    constexpr double kFig2Ceiling = 0.050; // seconds per run

    bool ok = true;

    if (wants("eventq")) {
        const std::uint64_t n = quick ? 300000 : 3000000;
        const double rate = benchEventQueue(n);
        std::printf("eventq: %8.2f M events/s  (%llu events, "
                    "schedule+cancel third+run)\n",
                    rate / 1e6, static_cast<unsigned long long>(n));
        std::fflush(stdout);
        if (check && rate < kEventqFloor) {
            std::fprintf(stderr,
                         "piso_bench: FAIL eventq %.2fM < floor %.2fM "
                         "events/s\n",
                         rate / 1e6, kEventqFloor / 1e6);
            ok = false;
        }
    }

    if (wants("cache")) {
        const std::uint64_t n = quick ? 400000 : 4000000;
        const double rate = benchBufferCache(n);
        std::printf("cache:  %8.2f M ops/s     (%llu ops, "
                    "find+insert+touch+steal)\n",
                    rate / 1e6, static_cast<unsigned long long>(n));
        std::fflush(stdout);
        if (check && rate < kCacheFloor) {
            std::fprintf(stderr,
                         "piso_bench: FAIL cache %.2fM < floor %.2fM "
                         "ops/s\n",
                         rate / 1e6, kCacheFloor / 1e6);
            ok = false;
        }
    }

    if (wants("fig2")) {
        const int inner = quick ? 5 : 50;
        runFig2Batch(1); // warmup (page in code, warm allocator)
        std::vector<double> times;
        times.reserve(static_cast<std::size_t>(reps));
        for (int r = 0; r < reps; ++r)
            times.push_back(runFig2Batch(inner));
        const double med = median(times);
        std::printf("fig2:   %8.3f ms/run median (%d reps x %d runs + "
                    "1 warmup, min %.3f max %.3f)\n",
                    med * 1e3, reps, inner,
                    1e3 * *std::min_element(times.begin(), times.end()),
                    1e3 * *std::max_element(times.begin(), times.end()));
        if (check && med > kFig2Ceiling) {
            std::fprintf(stderr,
                         "piso_bench: FAIL fig2 median %.3f ms/run > "
                         "ceiling %.1f ms\n",
                         med * 1e3, kFig2Ceiling * 1e3);
            ok = false;
        }
    }

    return ok ? 0 : 1;
}
