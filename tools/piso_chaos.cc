/**
 * @file
 * piso_chaos: the containment acceptance scenario as a self-checking
 * driver (docs/robustness.md).
 *
 *   piso_chaos [--jobs N] [--verbose]
 *
 * Expands a 24-point sweep (scheme=smp,quota,piso x seeds 1..8),
 * injects one failure of every SimError category into four of the
 * tasks — a broken config, an invariant trip, an allocation cap that
 * survives every retry, and a runaway caught by the simulated-time
 * watchdog — then runs the poisoned sweep serially and in parallel
 * and checks that:
 *
 *   - the 20 untouched tasks all complete, and their JSONL records
 *     are byte-identical to a failure-free baseline run;
 *   - the whole stream (failure records and trailing summary line
 *     included) is byte-identical between --jobs 1 and --jobs N;
 *   - each poisoned task ends in its expected status and category,
 *     with the resource failure spending its full retry budget.
 *
 * Exits 0 when every check passes, 1 otherwise. Run by `ctest -L
 * chaos` (the CI chaos job builds with -DPISO_HARDENED=ON first).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "src/config/workload_spec.hh"
#include "src/exp/runner.hh"
#include "src/piso.hh"

using namespace piso;

namespace {

const char *kSpec = R"(
machine cpus=2 memory_mb=16 disks=1 scheme=piso seed=7
spu a share=1 disk=0
spu b share=1 disk=0
job a compute name=spin cpu_ms=200 ws_pages=50
job b copy    name=cp bytes_kb=256
)";

struct Injection
{
    std::size_t task;
    exp::TaskStatus status;
    ErrorCategory category;
    const char *what;
};

constexpr Injection kInjections[] = {
    {2, exp::TaskStatus::Failed, ErrorCategory::Config,
     "machine whose memory holds no pages"},
    {9, exp::TaskStatus::Failed, ErrorCategory::Invariant,
     "injected invariant trip at event 100"},
    {13, exp::TaskStatus::Failed, ErrorCategory::Resource,
     "allocation cap that fails every retry"},
    {20, exp::TaskStatus::TimedOut, ErrorCategory::Runaway,
     "runaway caught by the 1 ms simulated-time watchdog"},
};

bool verbose = false;
int failures = 0;

void
check(bool ok, const std::string &what)
{
    if (!ok) {
        std::fprintf(stderr, "FAIL: %s\n", what.c_str());
        ++failures;
    } else if (verbose) {
        std::fprintf(stderr, "  ok: %s\n", what.c_str());
    }
}

std::vector<exp::ExperimentTask>
expand()
{
    exp::ExperimentPlan plan;
    plan.base = parseWorkloadSpec(kSpec);
    plan.axes.push_back(exp::parseGridAxis("scheme=smp,quota,piso"));
    plan.seeds = {1, 2, 3, 4, 5, 6, 7, 8};
    return exp::expandPlan(plan);
}

std::vector<exp::ExperimentTask>
poison(std::vector<exp::ExperimentTask> tasks)
{
    tasks[2].spec.config.memoryBytes = 0;
    tasks[9].spec.config.chaos.invariantAtEvent = 100;
    tasks[13].spec.config.chaos.allocCapPages = 1;
    tasks[20].spec.config.watchdogSimTime = kMs;
    return tasks;
}

std::vector<std::string>
lines(const std::string &jsonl)
{
    std::vector<std::string> out;
    std::istringstream is(jsonl);
    std::string line;
    while (std::getline(is, line))
        out.push_back(line);
    return out;
}

bool
isPoisoned(std::size_t task)
{
    for (const Injection &inj : kInjections) {
        if (inj.task == task)
            return true;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    int jobs = 8;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--verbose") == 0) {
            verbose = true;
        } else if (std::strcmp(argv[i], "--jobs") == 0 &&
                   i + 1 < argc) {
            jobs = std::atoi(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: piso_chaos [--jobs N] [--verbose]\n");
            return 2;
        }
    }

    const exp::SweepOptions base{.jobs = 1};

    std::fprintf(stderr,
                 "piso_chaos: 24-task sweep, 4 injected failures, "
                 "--jobs 1 vs --jobs %d\n", jobs);

    // Failure-free baseline: the bytes every untouched task must
    // reproduce exactly in the poisoned runs.
    const exp::SweepOutcome clean = exp::runTasks(expand(), base);
    const std::vector<std::string> cleanLines =
        lines(exp::formatSweepJsonl(clean));
    check(clean.runs.size() == 24, "baseline expands to 24 tasks");
    check(clean.failures() == 0, "baseline run is failure-free");
    check(cleanLines.size() == 24,
          "failure-free stream has no summary line");

    exp::SweepOptions parOpts = base;
    parOpts.jobs = jobs;
    const exp::SweepOutcome serial =
        exp::runTasks(poison(expand()), base);
    const exp::SweepOutcome parallel =
        exp::runTasks(poison(expand()), parOpts);

    for (const exp::SweepOutcome *out : {&serial, &parallel}) {
        const char *mode = out == &serial ? "serial" : "parallel";
        check(out->failures() == 4,
              std::string(mode) + ": exactly the 4 poisoned tasks fail");
        for (const Injection &inj : kInjections) {
            const exp::TaskOutcome &o = out->runs[inj.task].outcome;
            std::ostringstream what;
            what << mode << ": task " << inj.task << " ("
                 << inj.what << ") ends "
                 << exp::taskStatusName(inj.status) << "/"
                 << errorCategoryName(inj.category);
            check(o.status == inj.status &&
                      o.category == inj.category,
                  what.str());
        }
        check(out->runs[13].outcome.retries == 2,
              std::string(mode) +
                  ": resource failure spent its full retry budget");
    }

    const std::string serialJsonl = exp::formatSweepJsonl(serial);
    const std::string parallelJsonl = exp::formatSweepJsonl(parallel);
    check(serialJsonl == parallelJsonl,
          "poisoned stream is byte-identical between --jobs 1 and "
          "--jobs " + std::to_string(jobs));

    const std::vector<std::string> poisonedLines = lines(serialJsonl);
    check(poisonedLines.size() == 25,
          "poisoned stream is 24 records plus one summary line");
    std::size_t identical = 0;
    for (std::size_t i = 0; i < 24 && i < poisonedLines.size(); ++i) {
        if (isPoisoned(i))
            continue;
        if (poisonedLines[i] == cleanLines[i]) {
            ++identical;
        } else {
            check(false, "task " + std::to_string(i) +
                             " record matches the baseline bytes");
        }
    }
    check(identical == 20,
          "all 20 success records are byte-identical to the baseline");
    check(poisonedLines.back().find(
              "\"summary\":{\"tasks\":24,\"ok\":20,\"failed\":3,"
              "\"timed_out\":1,\"skipped\":0,\"retries\":2}") !=
              std::string::npos,
          "summary line counts 20 ok / 3 failed / 1 timed_out / "
          "2 retries");

    if (failures == 0) {
        std::fprintf(stderr,
                     "piso_chaos: PASS (20/24 tasks survived 4 "
                     "injected failures; manifests byte-stable)\n");
        return 0;
    }
    std::fprintf(stderr, "piso_chaos: FAIL (%d check(s))\n", failures);
    return 1;
}
