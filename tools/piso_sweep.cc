/**
 * @file
 * piso_sweep: run a grid of simulations from one workload-spec file,
 * in parallel, with deterministic JSONL output.
 *
 *   piso_sweep workload.piso
 *   piso_sweep --grid scheme=smp,quota,piso --seeds 4 --jobs 8 w.piso
 *   piso_sweep --grid cpu=piso,quota --grid memory=piso,quota w.piso
 *   piso_sweep --speedup --jobs 8 w.piso     # serial-vs-parallel check
 *
 * The expanded grid (cross product of every --grid axis, seeds
 * innermost) runs one Simulation per task on a fixed-size thread
 * pool. Output is one JSON line per task on stdout (or --out FILE),
 * ordered by task index — byte-identical for any --jobs value.
 * Progress and wall-clock go to stderr. See docs/sweeps.md.
 *
 * Failing tasks are quarantined (--keep-going, the default): they
 * appear in the JSONL stream as structured failure records, every
 * other task completes, and succeeding records stay byte-identical to
 * a failure-free run. See docs/robustness.md.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/config/workload_spec.hh"
#include "src/exp/pool.hh"
#include "src/exp/runner.hh"
#include "src/util/log.hh"

using namespace piso;

namespace {

std::string
readFile(const char *path)
{
    std::ifstream in(path);
    if (!in)
        PISO_FATAL("cannot open '", path, "'");
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
usage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: piso_sweep [--grid key=v1,v2,...]... [--seeds N] "
        "[--jobs N]\n"
        "                  [--out FILE] [--summary[=FILE]] "
        "[--speedup]\n"
        "                  [--keep-going | --no-keep-going] "
        "[--retries N]\n"
        "                  [--max-sim-time S] [--max-events N] "
        "<workload-file>\n"
        "  --grid key=v1,v2,...  sweep axis (repeatable; cross "
        "product).\n"
        "                        keys: scheme,cpu,memory,network,"
        "disk_policy,cpus,\n"
        "                        disks,memory_mb,seed,max_time_s,"
        "network_mbps,\n"
        "                        bw_threshold,bw_halflife_ms,"
        "seek_scale,ipi_revocation,\n"
        "                        loan_holdoff_ms,tick_ms,slice_ms,"
        "reserve_frac,\n"
        "                        fault_disk_slow (AT_S:FOR_S:DISK:"
        "FACTOR or none),\n"
        "                        fault_disk_error (AT_S:FOR_S:DISK:"
        "RATE), fault_disk_dead\n"
        "  --seeds N             replicate every grid point with "
        "seeds 1..N\n"
        "  --jobs N              worker threads (default 1; 0 = one "
        "per core)\n"
        "  --out FILE            write the JSONL stream there instead "
        "of stdout\n"
        "  --summary[=FILE]      also print an aligned summary table "
        "(stderr,\n"
        "                        or FILE when given)\n"
        "  --speedup             run the plan twice (--jobs 1, then "
        "--jobs N),\n"
        "                        verify byte-identical output, report "
        "the speedup\n"
        "  --keep-going          quarantine failing tasks, finish the "
        "sweep,\n"
        "                        exit 0 (default)\n"
        "  --no-keep-going       stop claiming new tasks after a "
        "failure and\n"
        "                        exit 1 when any task failed\n"
        "  --retries N           retry budget per task for retryable "
        "failures\n"
        "                        (default 2)\n"
        "  --max-sim-time S      simulated-time watchdog: a task still "
        "running\n"
        "                        after S simulated seconds ends "
        "timed_out\n"
        "  --max-events N        event-count watchdog for every task\n"
        "  --no-warm-start       disable checkpoint prefix sharing "
        "between grid\n"
        "                        points differing only in late faults "
        "(output is\n"
        "                        byte-identical either way; see "
        "docs/checkpoint.md)\n"
        "  -h, --help            show this help and exit\n"
        "\n"
        "Output: one JSON object per task "
        "({\"task\",\"seed\",\"params\",\"results\"}),\n"
        "ordered by task index — byte-identical for any --jobs "
        "value. Failed\n"
        "tasks carry {\"status\",\"error\"} instead of results, plus "
        "one trailing\n"
        "{\"summary\"} line when anything failed.\n");
}

int
usageError()
{
    usage(stderr);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    exp::ExperimentPlan plan;
    exp::SweepOptions opts;
    const char *path = nullptr;
    const char *outPath = nullptr;
    const char *summaryPath = nullptr;
    bool summary = false;
    bool speedup = false;
    int seeds = 0;

    try {
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--grid") == 0 && i + 1 < argc) {
                plan.axes.push_back(exp::parseGridAxis(argv[++i]));
            } else if (std::strncmp(argv[i], "--grid=", 7) == 0) {
                plan.axes.push_back(exp::parseGridAxis(argv[i] + 7));
            } else if (std::strcmp(argv[i], "--seeds") == 0 &&
                       i + 1 < argc) {
                seeds = std::atoi(argv[++i]);
            } else if (std::strcmp(argv[i], "--jobs") == 0 &&
                       i + 1 < argc) {
                opts.jobs = std::atoi(argv[++i]);
            } else if (std::strcmp(argv[i], "--out") == 0 &&
                       i + 1 < argc) {
                outPath = argv[++i];
            } else if (std::strcmp(argv[i], "--summary") == 0) {
                summary = true;
            } else if (std::strncmp(argv[i], "--summary=", 10) == 0) {
                summary = true;
                summaryPath = argv[i] + 10;
            } else if (std::strcmp(argv[i], "--speedup") == 0) {
                speedup = true;
            } else if (std::strcmp(argv[i], "--keep-going") == 0) {
                opts.keepGoing = true;
            } else if (std::strcmp(argv[i], "--no-keep-going") == 0) {
                opts.keepGoing = false;
            } else if (std::strcmp(argv[i], "--retries") == 0 &&
                       i + 1 < argc) {
                opts.maxRetries = std::atoi(argv[++i]);
            } else if (std::strcmp(argv[i], "--max-sim-time") == 0 &&
                       i + 1 < argc) {
                opts.watchdogSimTime = fromSeconds(std::atof(argv[++i]));
            } else if (std::strcmp(argv[i], "--no-warm-start") == 0) {
                opts.warmStart = false;
            } else if (std::strcmp(argv[i], "--max-events") == 0 &&
                       i + 1 < argc) {
                opts.watchdogEvents =
                    std::strtoull(argv[++i], nullptr, 10);
            } else if (std::strcmp(argv[i], "-h") == 0 ||
                       std::strcmp(argv[i], "--help") == 0) {
                usage(stdout);
                return 0;
            } else if (argv[i][0] == '-') {
                return usageError();
            } else if (!path) {
                path = argv[i];
            } else {
                return usageError();
            }
        }
        if (!path)
            return usageError();
        if (seeds < 0)
            PISO_FATAL("--seeds wants a count >= 0, got ", seeds);
        for (int s = 1; s <= seeds; ++s)
            plan.seeds.push_back(static_cast<std::uint64_t>(s));

        plan.base = parseWorkloadSpec(readFile(path));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "piso_sweep: %s: %s\n",
                     path ? path : "<args>", e.what());
        return 1;
    }

    try {
        // Open output files before any task runs: an unwritable path
        // must cost one error line, not the whole grid's work.
        std::ofstream outFile;
        if (outPath) {
            outFile.open(outPath);
            if (!outFile) {
                std::fprintf(stderr,
                             "piso_sweep: cannot write '%s'\n", outPath);
                return 1;
            }
        }
        std::ofstream summaryFile;
        if (summaryPath) {
            summaryFile.open(summaryPath);
            if (!summaryFile) {
                std::fprintf(stderr,
                             "piso_sweep: cannot write '%s'\n",
                             summaryPath);
                return 1;
            }
        }

        const auto tasks = exp::expandPlan(plan);
        std::fprintf(stderr, "piso_sweep: %zu task%s (jobs=%d)\n",
                     tasks.size(), tasks.size() == 1 ? "" : "s",
                     exp::effectiveJobs(opts.jobs, tasks.size()));

        const exp::SweepOutcome outcome = exp::runTasks(tasks, opts);
        const std::string jsonl = exp::formatSweepJsonl(outcome);

        if (speedup) {
            exp::SweepOptions serial = opts;
            serial.jobs = 1;
            const exp::SweepOutcome base = exp::runTasks(tasks, serial);
            const std::string serialJsonl = exp::formatSweepJsonl(base);
            if (serialJsonl != jsonl) {
                std::fprintf(stderr,
                             "piso_sweep: FAIL: --jobs %d output "
                             "differs from --jobs 1\n",
                             outcome.jobs);
                return 1;
            }
            std::fprintf(stderr,
                         "piso_sweep: speedup %.2fx (serial %.2f s / "
                         "jobs=%d %.2f s), outputs byte-identical\n",
                         outcome.wallSec > 0.0
                             ? base.wallSec / outcome.wallSec
                             : 0.0,
                         base.wallSec, outcome.jobs, outcome.wallSec);
        } else {
            std::fprintf(stderr, "piso_sweep: done in %.2f s wall\n",
                         outcome.wallSec);
        }

        const std::size_t failures = outcome.failures();
        if (failures > 0) {
            std::fprintf(stderr,
                         "piso_sweep: %zu of %zu task%s did not "
                         "complete (%d retr%s spent); see the "
                         "status/error records in the JSONL stream\n",
                         failures, outcome.runs.size(),
                         outcome.runs.size() == 1 ? "" : "s",
                         outcome.totalRetries(),
                         outcome.totalRetries() == 1 ? "y" : "ies");
        }

        if (outPath)
            outFile << jsonl;
        else
            std::fwrite(jsonl.data(), 1, jsonl.size(), stdout);
        // The summary (stderr, human-facing) carries the simulator's
        // perf columns; the JSONL stream (stdout, deterministic) never
        // does.
        if (summary) {
            const std::string table =
                exp::formatSweepSummary(outcome, true);
            if (summaryPath)
                summaryFile << table;
            else
                std::fputs(table.c_str(), stderr);
        }
        return failures > 0 && !opts.keepGoing ? 1 : 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "piso_sweep: %s\n", e.what());
        return 1;
    }
}
