/**
 * @file
 * piso_lint: the project-invariant static checker.
 *
 *   piso_lint src tools                    # lint the library + CLIs
 *   piso_lint --json src                   # SARIF-lite output
 *   piso_lint --list-rules                 # what is enforced
 *   piso_lint --list-allows src            # every suppression, audited
 *   piso_lint --cache .lint-cache src      # incremental re-analysis
 *   piso_lint --diff-base origin/main src  # PR mode: changed lines
 *                                          # only (checkpoint-coverage
 *                                          # and layering still gate
 *                                          # tree-wide)
 *
 * Exit codes: 0 clean, 1 findings, 2 usage/I-O error. Rules and the
 * suppression syntax are documented in docs/static-analysis.md.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/lint/engine.hh"
#include "src/lint/lexer.hh"

namespace {

void
printUsage(std::FILE *to)
{
    std::fprintf(to,
                 "usage: piso_lint [options] <file-or-dir>...\n"
                 "  --json             SARIF-lite JSON output instead "
                 "of text\n"
                 "  --list-rules       print the rule registry and "
                 "exit\n"
                 "  --list-allows      print every suppression "
                 "directive (with its\n"
                 "                     file, line and justification) "
                 "instead of findings\n"
                 "  --cache <file>     incremental mode: re-analyze "
                 "only files whose\n"
                 "                     content hash changed, plus "
                 "their reverse\n"
                 "                     include-graph closure\n"
                 "  --diff-base <ref>  report only findings on lines "
                 "changed since\n"
                 "                     <ref> (git diff); "
                 "checkpoint-field-coverage and\n"
                 "                     layering still gate tree-wide\n"
                 "  --time             print scan/analysis timing to "
                 "stderr\n"
                 "  -h, --help         show this help and exit\n"
                 "\n"
                 "Directories are searched recursively for .cc/.hh "
                 "files. Suppress a\n"
                 "finding with  // piso-lint: allow(<rule>) -- "
                 "<justification>  on (or\n"
                 "immediately above) the offending line — or "
                 "allow-file(<rule>) for a\n"
                 "whole file; the justification is mandatory either "
                 "way.\n"
                 "See docs/static-analysis.md.\n");
}

/**
 * Parse `git diff -U0 <ref> -- .` output into changed-line ranges per
 * project-relative path. Reads hunk headers only:
 *   +++ b/src/core/spu.cc
 *   @@ -10,2 +12,3 @@
 * Returns false when git cannot produce the diff (not a repo, unknown
 * ref) — the caller degrades to a full report with a warning.
 */
bool
gitDiffLines(const std::string &ref, piso::lint::DiffLines &out)
{
    const std::string cmd =
        "git diff -U0 --no-color " + ref + " -- . 2>/dev/null";
    std::FILE *pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr)
        return false;
    char buf[4096];
    std::string current;
    while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
        std::string line(buf);
        if (!line.empty() && line.back() == '\n')
            line.pop_back();
        if (line.rfind("+++ b/", 0) == 0) {
            current = piso::lint::projectRelative(line.substr(6));
            continue;
        }
        if (line.rfind("@@", 0) != 0 || current.empty())
            continue;
        // "@@ -a,b +start,count @@" (",count" omitted when 1).
        const std::size_t plus = line.find('+');
        if (plus == std::string::npos)
            continue;
        int start = 0;
        int count = 1;
        if (std::sscanf(line.c_str() + plus + 1, "%d,%d", &start,
                        &count) < 1)
            continue;
        if (count > 0)
            out.byPath[current].push_back(
                {start, start + count - 1});
    }
    return pclose(pipe) == 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    bool listAllows = false;
    bool timing = false;
    std::string cachePath;
    std::string diffBase;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else if (std::strcmp(argv[i], "--list-rules") == 0) {
            for (const piso::lint::Rule &r : piso::lint::ruleRegistry())
                std::printf("%-26s %s\n", r.name, r.summary);
            for (const piso::lint::ProjectRule &r :
                 piso::lint::projectRuleRegistry())
                std::printf("%-26s %s (cross-file)\n", r.name,
                            r.summary);
            return 0;
        } else if (std::strcmp(argv[i], "--list-allows") == 0) {
            listAllows = true;
        } else if (std::strcmp(argv[i], "--cache") == 0) {
            if (++i >= argc) {
                std::fprintf(stderr,
                             "piso_lint: --cache needs a file\n");
                return 2;
            }
            cachePath = argv[i];
        } else if (std::strcmp(argv[i], "--diff-base") == 0) {
            if (++i >= argc) {
                std::fprintf(stderr,
                             "piso_lint: --diff-base needs a ref\n");
                return 2;
            }
            diffBase = argv[i];
        } else if (std::strcmp(argv[i], "--time") == 0) {
            timing = true;
        } else if (std::strcmp(argv[i], "-h") == 0 ||
                   std::strcmp(argv[i], "--help") == 0) {
            printUsage(stdout);
            return 0;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "piso_lint: unknown option '%s'\n",
                         argv[i]);
            printUsage(stderr);
            return 2;
        } else {
            paths.emplace_back(argv[i]);
        }
    }
    if (paths.empty()) {
        printUsage(stderr);
        return 2;
    }

    // Wall clock here is operator-facing tooling telemetry, not
    // simulated time; the simulator's determinism rules don't apply to
    // the lint driver itself.
    const auto t0 = std::chrono::steady_clock::now();

    piso::lint::LintResult result;
    std::string error;
    if (!piso::lint::lintFilesCached(paths, cachePath, result, error)) {
        std::fprintf(stderr, "piso_lint: %s\n", error.c_str());
        return 2;
    }

    if (!diffBase.empty()) {
        piso::lint::DiffLines diff;
        if (!gitDiffLines(diffBase, diff)) {
            std::fprintf(stderr,
                         "piso_lint: warning: cannot diff against "
                         "'%s'; reporting all findings\n",
                         diffBase.c_str());
        } else {
            piso::lint::filterToDiff(result, diff);
        }
    }

    if (timing) {
        const auto dt = std::chrono::duration_cast<
                            std::chrono::milliseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
        std::fprintf(stderr,
                     "piso_lint: %d files scanned, %d re-analyzed, "
                     "%lld ms\n",
                     result.filesScanned, result.filesReanalyzed,
                     static_cast<long long>(dt));
    }

    if (listAllows) {
        std::fputs(piso::lint::formatAllows(result).c_str(), stdout);
        // Suppression-audit findings (unknown rule, missing
        // justification, stale allow) still gate the exit code so the
        // audit is actionable in CI.
        return result.exitCode();
    }
    const std::string out = json ? piso::lint::formatSarif(result)
                                 : piso::lint::formatText(result);
    std::fputs(out.c_str(), stdout);
    return result.exitCode();
}
