/**
 * @file
 * piso_lint: the project-invariant static checker.
 *
 *   piso_lint src tools           # lint the library and the CLIs
 *   piso_lint --json src          # SARIF-lite output
 *   piso_lint --list-rules        # what is enforced, one line each
 *
 * Exit codes: 0 clean, 1 findings, 2 usage/I-O error. Rules and the
 * suppression syntax are documented in docs/static-analysis.md.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/lint/engine.hh"

namespace {

void
printUsage(std::FILE *to)
{
    std::fprintf(to,
                 "usage: piso_lint [--json] [--list-rules] "
                 "<file-or-dir>...\n"
                 "  --json        SARIF-lite JSON output instead of "
                 "text\n"
                 "  --list-rules  print the rule registry and exit\n"
                 "  -h, --help    show this help and exit\n"
                 "\n"
                 "Directories are searched recursively for .cc/.hh "
                 "files. Suppress a\n"
                 "finding with  // piso-lint: allow(<rule>) -- "
                 "<justification>  on (or\n"
                 "immediately above) the offending line; the "
                 "justification is mandatory.\n"
                 "See docs/static-analysis.md.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else if (std::strcmp(argv[i], "--list-rules") == 0) {
            for (const piso::lint::Rule &r : piso::lint::ruleRegistry())
                std::printf("%-24s %s\n", r.name, r.summary);
            return 0;
        } else if (std::strcmp(argv[i], "-h") == 0 ||
                   std::strcmp(argv[i], "--help") == 0) {
            printUsage(stdout);
            return 0;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "piso_lint: unknown option '%s'\n",
                         argv[i]);
            printUsage(stderr);
            return 2;
        } else {
            paths.emplace_back(argv[i]);
        }
    }
    if (paths.empty()) {
        printUsage(stderr);
        return 2;
    }

    piso::lint::LintResult result;
    std::string error;
    if (!piso::lint::lintFiles(paths, result, error)) {
        std::fprintf(stderr, "piso_lint: %s\n", error.c_str());
        return 2;
    }
    const std::string out = json ? piso::lint::formatSarif(result)
                                 : piso::lint::formatText(result);
    std::fputs(out.c_str(), stdout);
    return result.exitCode();
}
