/**
 * @file
 * piso_run: execute a workload-spec file and print the run report.
 *
 *   piso_run workload.piso            # run and summarise
 *   piso_run --compare workload.piso  # run under SMP, Quo, and PIso
 *   piso_run --trace=sched,mem workload.piso  # with execution traces
 *   piso_run --json workload.piso     # machine-readable results
 *
 *   # checkpoint at the first quiescent boundary at/after 2s, then
 *   # later resume a byte-identical continuation (docs/checkpoint.md):
 *   piso_run --checkpoint-at=2 --checkpoint-out=run.ckpt workload.piso
 *   piso_run --restore=run.ckpt workload.piso
 *
 * See src/config/workload_spec.hh for the file format and
 * examples/specs/ for ready-made scenarios.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "src/config/workload_spec.hh"
#include "src/exp/pool.hh"
#include "src/metrics/report.hh"
#include "src/piso.hh"
#include "src/util/log.hh"
#include "src/sim/trace.hh"

using namespace piso;

namespace {

TraceCat
parseTraceList(const char *list)
{
    TraceCat mask = TraceCat::None;
    std::istringstream is(list);
    std::string item;
    while (std::getline(is, item, ',')) {
        if (item == "sched")
            mask = mask | TraceCat::Sched;
        else if (item == "mem")
            mask = mask | TraceCat::Mem;
        else if (item == "disk")
            mask = mask | TraceCat::Disk;
        else if (item == "net")
            mask = mask | TraceCat::Net;
        else if (item == "lock")
            mask = mask | TraceCat::Lock;
        else if (item == "kernel")
            mask = mask | TraceCat::Kernel;
        else if (item == "all")
            mask = TraceCat::All;
        else
            PISO_FATAL("unknown trace category '", item,
                       "' (sched,mem,disk,net,lock,kernel,all)");
    }
    return mask;
}

std::string
readFile(const char *path)
{
    std::ifstream in(path);
    if (!in)
        PISO_FATAL("cannot open '", path, "'");
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
usage(std::FILE *to)
{
    std::fprintf(to,
                 "usage: piso_run [--compare] [--json] [--trace=CATS] "
                 "[--checkpoint-at=T --checkpoint-out=F] [--restore=F] "
                 "<workload-file>\n"
                 "  --compare     run the workload under all three "
                 "schemes (SMP/Quo/PIso)\n"
                 "  --trace=CATS  comma list of sched,mem,disk,net,"
                 "lock,kernel,all\n"
                 "  --json        print machine-readable results\n"
                 "  --checkpoint-at=T   write a checkpoint at the first "
                 "quiescent boundary\n"
                 "                      at or after T seconds of "
                 "simulated time\n"
                 "  --checkpoint-out=F  checkpoint image file (required "
                 "with --checkpoint-at)\n"
                 "  --restore=F   resume from a checkpoint image taken "
                 "with the same workload\n"
                 "  -h, --help    show this help and exit\n"
                 "\n"
                 "The workload file declares SPUs either flat (`spu "
                 "alice share=2`) or as a\n"
                 "tree in a [spus] section with dotted group names "
                 "(`eng.build share=3`);\n"
                 "see docs/workload-format.md. It may end with a "
                 "[faults] section injecting\n"
                 "hardware misbehaviour (disk_slow, disk_error, "
                 "disk_dead, cpu_offline,\n"
                 "cpu_online, mem_shrink, mem_grow); see "
                 "docs/faults.md.\n");
}

int
usageError()
{
    usage(stderr);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    bool compare = false;
    bool json = false;
    double checkpointAtSec = 0;
    const char *checkpointOut = nullptr;
    const char *restorePath = nullptr;
    const char *path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--compare") == 0)
            compare = true;
        else if (std::strcmp(argv[i], "--json") == 0)
            json = true;
        else if (std::strncmp(argv[i], "--trace=", 8) == 0)
            traceEnable(parseTraceList(argv[i] + 8));
        else if (std::strncmp(argv[i], "--checkpoint-at=", 16) == 0) {
            char *end = nullptr;
            checkpointAtSec = std::strtod(argv[i] + 16, &end);
            if (!end || *end != '\0' || checkpointAtSec <= 0) {
                std::fprintf(stderr,
                             "piso_run: --checkpoint-at wants a "
                             "positive time in seconds\n");
                return 2;
            }
        } else if (std::strncmp(argv[i], "--checkpoint-out=", 17) == 0)
            checkpointOut = argv[i] + 17;
        else if (std::strncmp(argv[i], "--restore=", 10) == 0)
            restorePath = argv[i] + 10;
        else if (std::strcmp(argv[i], "-h") == 0 ||
                 std::strcmp(argv[i], "--help") == 0) {
            usage(stdout);
            return 0;
        } else if (argv[i][0] == '-')
            return usageError();
        else if (!path)
            path = argv[i];
        else
            return usageError();
    }
    if (!path)
        return usageError();
    if ((checkpointAtSec > 0) != (checkpointOut != nullptr)) {
        std::fprintf(stderr,
                     "piso_run: --checkpoint-at and --checkpoint-out "
                     "must be given together\n");
        return 2;
    }
    if (compare && (checkpointOut || restorePath)) {
        std::fprintf(stderr,
                     "piso_run: --compare cannot be combined with "
                     "checkpoint/restore (the image belongs to one "
                     "scheme's run)\n");
        return 2;
    }

    WorkloadSpec spec;
    try {
        spec = parseWorkloadSpec(readFile(path));
    } catch (const std::exception &e) {
        // One line: file, line (from the parser), reason.
        std::fprintf(stderr, "piso_run: %s: %s\n", path, e.what());
        return 1;
    }

    try {
        if (!compare) {
            if (checkpointOut) {
                spec.config.checkpointAt =
                    static_cast<Time>(checkpointAtSec * kSec);
                spec.config.checkpointSink =
                    [checkpointOut](std::string image) {
                        std::ofstream out(checkpointOut,
                                          std::ios::binary);
                        out.write(image.data(),
                                  static_cast<std::streamsize>(
                                      image.size()));
                        if (!out)
                            PISO_FATAL("cannot write checkpoint to '",
                                       checkpointOut, "'");
                    };
            }
            const SimResults r =
                restorePath
                    ? runWorkloadSpecFrom(spec, readFile(restorePath))
                    : runWorkloadSpec(spec);
            if (json) {
                // Interactive output: include the simulator's own perf
                // counters. Deterministic consumers (goldens, sweep
                // JSONL) call formatResultsJson without perf.
                std::printf("%s\n",
                            formatResultsJson(r, true).c_str());
                return 0;
            }
            const SchemeProfile profile = spec.config.resolvedProfile();
            printBanner(std::string("piso_run: ") + path + " (" +
                        (profile.mixed() ? profile.str()
                                         : schemeName(spec.config.scheme)) +
                        ")");
            std::fputs(formatResults(r, true).c_str(), stdout);
            return 0;
        }

        printBanner(std::string("piso_run --compare: ") + path);
        // A spec whose resolved profile is mixed gets its own column
        // next to the three uniform schemes. All variants run in
        // parallel on the sweep engine's pool (each Simulation is
        // self-contained; see src/exp/pool.hh).
        const SchemeProfile specProfile = spec.config.resolvedProfile();
        const bool mixedColumn = specProfile.mixed();
        std::vector<WorkloadSpec> variants;
        for (Scheme s :
             {Scheme::Smp, Scheme::Quota, Scheme::PIso}) {
            WorkloadSpec uniform = spec;
            uniform.config.scheme = s;
            uniform.config.cpuPolicy.reset();
            uniform.config.memoryPolicy.reset();
            uniform.config.netPolicy.reset();
            variants.push_back(std::move(uniform));
        }
        if (mixedColumn)
            variants.push_back(spec);
        // Carry any --trace configuration to the worker threads (each
        // gets its own copy; stderr writes are line-atomic).
        const TraceContext ambientTrace = traceContext();
        const auto all = exp::parallelMap<SimResults>(
            variants.size(), 0, [&](std::size_t i) {
                TraceContext ctx = ambientTrace;
                TraceContextScope scope(ctx);
                return runWorkloadSpec(variants[i]);
            });
        std::map<Scheme, SimResults> results;
        results.emplace(Scheme::Smp, all[0]);
        results.emplace(Scheme::Quota, all[1]);
        results.emplace(Scheme::PIso, all[2]);
        std::optional<SimResults> mixedResults;
        if (mixedColumn)
            mixedResults = all[3];
        std::vector<std::string> headers{"job", "SMP (s)", "Quo (s)",
                                         "PIso (s)"};
        if (mixedColumn) {
            std::printf("mixed profile: %s\n\n",
                        specProfile.str().c_str());
            headers.push_back("mixed (s)");
        }
        TextTable table(headers);
        for (const JobResult &j : results.at(Scheme::Smp).jobs) {
            std::vector<std::string> row{
                j.name, TextTable::num(j.responseSec(), 2),
                TextTable::num(results.at(Scheme::Quota)
                                   .job(j.name)
                                   .responseSec(),
                               2),
                TextTable::num(results.at(Scheme::PIso)
                                   .job(j.name)
                                   .responseSec(),
                               2)};
            if (mixedColumn) {
                row.push_back(TextTable::num(
                    mixedResults->job(j.name).responseSec(), 2));
            }
            table.addRow(std::move(row));
        }
        table.print();
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "piso_run: %s\n", e.what());
        return 1;
    }
}
