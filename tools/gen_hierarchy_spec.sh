#!/bin/sh
# Generate a big hierarchical workload spec on stdout:
#   gen_hierarchy_spec.sh [groups] [leaves-per-group] [cpus]
# Defaults make the CI big-machine smoke: 8 groups x 8 leaves = 64
# user SPUs on a 64-CPU machine, one compute job per leaf, mixed
# shares so the per-level normalisation is not trivially uniform.
set -eu

GROUPS=${1:-8}
LEAVES=${2:-8}
CPUS=${3:-64}

echo "machine cpus=$CPUS memory_mb=256 disks=4 scheme=piso seed=1"
echo "[spus]"
g=0
while [ "$g" -lt "$GROUPS" ]; do
    echo "g$g share=$((g % 3 + 1))"
    l=0
    while [ "$l" -lt "$LEAVES" ]; do
        echo "g$g.t$l share=$((l % 2 + 1)) disk=$((g % 4))"
        l=$((l + 1))
    done
    g=$((g + 1))
done
g=0
while [ "$g" -lt "$GROUPS" ]; do
    l=0
    while [ "$l" -lt "$LEAVES" ]; do
        echo "job g$g.t$l compute name=c${g}x${l} cpu_ms=500 ws_pages=64"
        l=$((l + 1))
    done
    g=$((g + 1))
done
