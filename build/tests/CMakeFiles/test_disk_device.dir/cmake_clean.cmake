file(REMOVE_RECURSE
  "CMakeFiles/test_disk_device.dir/test_disk_device.cc.o"
  "CMakeFiles/test_disk_device.dir/test_disk_device.cc.o.d"
  "test_disk_device"
  "test_disk_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disk_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
