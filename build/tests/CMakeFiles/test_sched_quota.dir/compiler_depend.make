# Empty compiler generated dependencies file for test_sched_quota.
# This may be replaced when dependencies are built.
