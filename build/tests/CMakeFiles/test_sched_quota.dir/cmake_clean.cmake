file(REMOVE_RECURSE
  "CMakeFiles/test_sched_quota.dir/test_sched_quota.cc.o"
  "CMakeFiles/test_sched_quota.dir/test_sched_quota.cc.o.d"
  "test_sched_quota"
  "test_sched_quota.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_quota.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
