file(REMOVE_RECURSE
  "CMakeFiles/test_mem_policy.dir/test_mem_policy.cc.o"
  "CMakeFiles/test_mem_policy.dir/test_mem_policy.cc.o.d"
  "test_mem_policy"
  "test_mem_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
