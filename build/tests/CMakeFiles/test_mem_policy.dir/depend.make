# Empty dependencies file for test_mem_policy.
# This may be replaced when dependencies are built.
