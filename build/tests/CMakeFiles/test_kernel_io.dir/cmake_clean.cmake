file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_io.dir/test_kernel_io.cc.o"
  "CMakeFiles/test_kernel_io.dir/test_kernel_io.cc.o.d"
  "test_kernel_io"
  "test_kernel_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
