# Empty dependencies file for test_kernel_io.
# This may be replaced when dependencies are built.
