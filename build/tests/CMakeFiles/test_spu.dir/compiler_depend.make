# Empty compiler generated dependencies file for test_spu.
# This may be replaced when dependencies are built.
