file(REMOVE_RECURSE
  "CMakeFiles/test_spu.dir/test_spu.cc.o"
  "CMakeFiles/test_spu.dir/test_spu.cc.o.d"
  "test_spu"
  "test_spu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
