# Empty dependencies file for test_cscan.
# This may be replaced when dependencies are built.
