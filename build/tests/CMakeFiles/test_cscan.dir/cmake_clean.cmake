file(REMOVE_RECURSE
  "CMakeFiles/test_cscan.dir/test_cscan.cc.o"
  "CMakeFiles/test_cscan.dir/test_cscan.cc.o.d"
  "test_cscan"
  "test_cscan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
