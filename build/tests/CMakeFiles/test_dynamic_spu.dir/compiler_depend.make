# Empty compiler generated dependencies file for test_dynamic_spu.
# This may be replaced when dependencies are built.
