file(REMOVE_RECURSE
  "CMakeFiles/test_dynamic_spu.dir/test_dynamic_spu.cc.o"
  "CMakeFiles/test_dynamic_spu.dir/test_dynamic_spu.cc.o.d"
  "test_dynamic_spu"
  "test_dynamic_spu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamic_spu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
