# Empty dependencies file for test_workload_spec.
# This may be replaced when dependencies are built.
