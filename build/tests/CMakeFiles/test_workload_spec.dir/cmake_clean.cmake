file(REMOVE_RECURSE
  "CMakeFiles/test_workload_spec.dir/test_workload_spec.cc.o"
  "CMakeFiles/test_workload_spec.dir/test_workload_spec.cc.o.d"
  "test_workload_spec"
  "test_workload_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
