# Empty compiler generated dependencies file for test_shares.
# This may be replaced when dependencies are built.
