file(REMOVE_RECURSE
  "CMakeFiles/test_shares.dir/test_shares.cc.o"
  "CMakeFiles/test_shares.dir/test_shares.cc.o.d"
  "test_shares"
  "test_shares.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shares.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
