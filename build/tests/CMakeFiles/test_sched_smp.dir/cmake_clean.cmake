file(REMOVE_RECURSE
  "CMakeFiles/test_sched_smp.dir/test_sched_smp.cc.o"
  "CMakeFiles/test_sched_smp.dir/test_sched_smp.cc.o.d"
  "test_sched_smp"
  "test_sched_smp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_smp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
