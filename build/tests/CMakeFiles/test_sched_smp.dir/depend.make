# Empty dependencies file for test_sched_smp.
# This may be replaced when dependencies are built.
