# Empty dependencies file for test_buffer_cache.
# This may be replaced when dependencies are built.
