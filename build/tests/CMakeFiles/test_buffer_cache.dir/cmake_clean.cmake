file(REMOVE_RECURSE
  "CMakeFiles/test_buffer_cache.dir/test_buffer_cache.cc.o"
  "CMakeFiles/test_buffer_cache.dir/test_buffer_cache.cc.o.d"
  "test_buffer_cache"
  "test_buffer_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_buffer_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
