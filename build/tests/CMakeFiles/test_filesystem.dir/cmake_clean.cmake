file(REMOVE_RECURSE
  "CMakeFiles/test_filesystem.dir/test_filesystem.cc.o"
  "CMakeFiles/test_filesystem.dir/test_filesystem.cc.o.d"
  "test_filesystem"
  "test_filesystem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_filesystem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
