file(REMOVE_RECURSE
  "CMakeFiles/test_disk_fair.dir/test_disk_fair.cc.o"
  "CMakeFiles/test_disk_fair.dir/test_disk_fair.cc.o.d"
  "test_disk_fair"
  "test_disk_fair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disk_fair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
