# Empty dependencies file for test_disk_fair.
# This may be replaced when dependencies are built.
