# Empty dependencies file for test_sched_piso.
# This may be replaced when dependencies are built.
