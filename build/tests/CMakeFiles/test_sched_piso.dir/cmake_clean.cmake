file(REMOVE_RECURSE
  "CMakeFiles/test_sched_piso.dir/test_sched_piso.cc.o"
  "CMakeFiles/test_sched_piso.dir/test_sched_piso.cc.o.d"
  "test_sched_piso"
  "test_sched_piso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_piso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
