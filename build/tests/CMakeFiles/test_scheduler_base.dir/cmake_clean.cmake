file(REMOVE_RECURSE
  "CMakeFiles/test_scheduler_base.dir/test_scheduler_base.cc.o"
  "CMakeFiles/test_scheduler_base.dir/test_scheduler_base.cc.o.d"
  "test_scheduler_base"
  "test_scheduler_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scheduler_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
