# Empty dependencies file for test_scheduler_base.
# This may be replaced when dependencies are built.
