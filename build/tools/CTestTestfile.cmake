# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_smoke "/root/repo/build/tools/piso_run" "/root/repo/examples/specs/disk_contention.piso")
set_tests_properties(tool_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;3;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_compare "/root/repo/build/tools/piso_run" "--compare" "/root/repo/examples/specs/contract.piso")
set_tests_properties(tool_compare PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;4;add_test;/root/repo/tools/CMakeLists.txt;0;")
