file(REMOVE_RECURSE
  "CMakeFiles/piso_run.dir/piso_run.cc.o"
  "CMakeFiles/piso_run.dir/piso_run.cc.o.d"
  "piso_run"
  "piso_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piso_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
