# Empty compiler generated dependencies file for piso_run.
# This may be replaced when dependencies are built.
