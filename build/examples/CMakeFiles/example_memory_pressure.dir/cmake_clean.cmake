file(REMOVE_RECURSE
  "CMakeFiles/example_memory_pressure.dir/memory_pressure.cpp.o"
  "CMakeFiles/example_memory_pressure.dir/memory_pressure.cpp.o.d"
  "example_memory_pressure"
  "example_memory_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_memory_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
