# Empty dependencies file for example_memory_pressure.
# This may be replaced when dependencies are built.
