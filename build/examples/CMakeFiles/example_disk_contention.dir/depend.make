# Empty dependencies file for example_disk_contention.
# This may be replaced when dependencies are built.
