file(REMOVE_RECURSE
  "CMakeFiles/example_disk_contention.dir/disk_contention.cpp.o"
  "CMakeFiles/example_disk_contention.dir/disk_contention.cpp.o.d"
  "example_disk_contention"
  "example_disk_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_disk_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
