# Empty compiler generated dependencies file for example_multiuser_server.
# This may be replaced when dependencies are built.
