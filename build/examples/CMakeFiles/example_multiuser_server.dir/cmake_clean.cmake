file(REMOVE_RECURSE
  "CMakeFiles/example_multiuser_server.dir/multiuser_server.cpp.o"
  "CMakeFiles/example_multiuser_server.dir/multiuser_server.cpp.o.d"
  "example_multiuser_server"
  "example_multiuser_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multiuser_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
