file(REMOVE_RECURSE
  "../bench/ablation_lock_granularity"
  "../bench/ablation_lock_granularity.pdb"
  "CMakeFiles/ablation_lock_granularity.dir/ablation_lock_granularity.cc.o"
  "CMakeFiles/ablation_lock_granularity.dir/ablation_lock_granularity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lock_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
