# Empty dependencies file for ablation_lock_granularity.
# This may be replaced when dependencies are built.
