file(REMOVE_RECURSE
  "../bench/fig2_pmake8_isolation"
  "../bench/fig2_pmake8_isolation.pdb"
  "CMakeFiles/fig2_pmake8_isolation.dir/fig2_pmake8_isolation.cc.o"
  "CMakeFiles/fig2_pmake8_isolation.dir/fig2_pmake8_isolation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_pmake8_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
