# Empty dependencies file for fig2_pmake8_isolation.
# This may be replaced when dependencies are built.
