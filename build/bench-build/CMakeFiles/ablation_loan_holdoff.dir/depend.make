# Empty dependencies file for ablation_loan_holdoff.
# This may be replaced when dependencies are built.
