file(REMOVE_RECURSE
  "../bench/ablation_loan_holdoff"
  "../bench/ablation_loan_holdoff.pdb"
  "CMakeFiles/ablation_loan_holdoff.dir/ablation_loan_holdoff.cc.o"
  "CMakeFiles/ablation_loan_holdoff.dir/ablation_loan_holdoff.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_loan_holdoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
