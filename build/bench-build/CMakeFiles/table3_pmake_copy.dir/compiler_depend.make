# Empty compiler generated dependencies file for table3_pmake_copy.
# This may be replaced when dependencies are built.
