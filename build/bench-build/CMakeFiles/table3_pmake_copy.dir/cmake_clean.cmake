file(REMOVE_RECURSE
  "../bench/table3_pmake_copy"
  "../bench/table3_pmake_copy.pdb"
  "CMakeFiles/table3_pmake_copy.dir/table3_pmake_copy.cc.o"
  "CMakeFiles/table3_pmake_copy.dir/table3_pmake_copy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_pmake_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
