file(REMOVE_RECURSE
  "../bench/table4_big_small_copy"
  "../bench/table4_big_small_copy.pdb"
  "CMakeFiles/table4_big_small_copy.dir/table4_big_small_copy.cc.o"
  "CMakeFiles/table4_big_small_copy.dir/table4_big_small_copy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_big_small_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
