# Empty compiler generated dependencies file for table4_big_small_copy.
# This may be replaced when dependencies are built.
