file(REMOVE_RECURSE
  "../bench/ablation_decay_halflife"
  "../bench/ablation_decay_halflife.pdb"
  "CMakeFiles/ablation_decay_halflife.dir/ablation_decay_halflife.cc.o"
  "CMakeFiles/ablation_decay_halflife.dir/ablation_decay_halflife.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_decay_halflife.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
