# Empty compiler generated dependencies file for ablation_decay_halflife.
# This may be replaced when dependencies are built.
