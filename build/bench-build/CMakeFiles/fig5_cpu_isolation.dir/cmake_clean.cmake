file(REMOVE_RECURSE
  "../bench/fig5_cpu_isolation"
  "../bench/fig5_cpu_isolation.pdb"
  "CMakeFiles/fig5_cpu_isolation.dir/fig5_cpu_isolation.cc.o"
  "CMakeFiles/fig5_cpu_isolation.dir/fig5_cpu_isolation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_cpu_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
