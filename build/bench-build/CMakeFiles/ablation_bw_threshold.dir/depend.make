# Empty dependencies file for ablation_bw_threshold.
# This may be replaced when dependencies are built.
