file(REMOVE_RECURSE
  "../bench/ablation_bw_threshold"
  "../bench/ablation_bw_threshold.pdb"
  "CMakeFiles/ablation_bw_threshold.dir/ablation_bw_threshold.cc.o"
  "CMakeFiles/ablation_bw_threshold.dir/ablation_bw_threshold.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bw_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
