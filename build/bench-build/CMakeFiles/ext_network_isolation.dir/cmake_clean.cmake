file(REMOVE_RECURSE
  "../bench/ext_network_isolation"
  "../bench/ext_network_isolation.pdb"
  "CMakeFiles/ext_network_isolation.dir/ext_network_isolation.cc.o"
  "CMakeFiles/ext_network_isolation.dir/ext_network_isolation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_network_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
