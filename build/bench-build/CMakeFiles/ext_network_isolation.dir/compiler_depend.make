# Empty compiler generated dependencies file for ext_network_isolation.
# This may be replaced when dependencies are built.
