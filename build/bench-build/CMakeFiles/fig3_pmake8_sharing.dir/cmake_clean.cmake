file(REMOVE_RECURSE
  "../bench/fig3_pmake8_sharing"
  "../bench/fig3_pmake8_sharing.pdb"
  "CMakeFiles/fig3_pmake8_sharing.dir/fig3_pmake8_sharing.cc.o"
  "CMakeFiles/fig3_pmake8_sharing.dir/fig3_pmake8_sharing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_pmake8_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
