# Empty dependencies file for fig3_pmake8_sharing.
# This may be replaced when dependencies are built.
