file(REMOVE_RECURSE
  "../bench/ablation_revocation"
  "../bench/ablation_revocation.pdb"
  "CMakeFiles/ablation_revocation.dir/ablation_revocation.cc.o"
  "CMakeFiles/ablation_revocation.dir/ablation_revocation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_revocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
