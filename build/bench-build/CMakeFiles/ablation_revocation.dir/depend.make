# Empty dependencies file for ablation_revocation.
# This may be replaced when dependencies are built.
