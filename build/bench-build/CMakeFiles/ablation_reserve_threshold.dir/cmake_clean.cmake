file(REMOVE_RECURSE
  "../bench/ablation_reserve_threshold"
  "../bench/ablation_reserve_threshold.pdb"
  "CMakeFiles/ablation_reserve_threshold.dir/ablation_reserve_threshold.cc.o"
  "CMakeFiles/ablation_reserve_threshold.dir/ablation_reserve_threshold.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reserve_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
