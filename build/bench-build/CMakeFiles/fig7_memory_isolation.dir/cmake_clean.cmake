file(REMOVE_RECURSE
  "../bench/fig7_memory_isolation"
  "../bench/fig7_memory_isolation.pdb"
  "CMakeFiles/fig7_memory_isolation.dir/fig7_memory_isolation.cc.o"
  "CMakeFiles/fig7_memory_isolation.dir/fig7_memory_isolation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_memory_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
