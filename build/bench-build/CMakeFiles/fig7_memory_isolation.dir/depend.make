# Empty dependencies file for fig7_memory_isolation.
# This may be replaced when dependencies are built.
