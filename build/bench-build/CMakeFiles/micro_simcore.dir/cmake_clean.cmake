file(REMOVE_RECURSE
  "../bench/micro_simcore"
  "../bench/micro_simcore.pdb"
  "CMakeFiles/micro_simcore.dir/micro_simcore.cc.o"
  "CMakeFiles/micro_simcore.dir/micro_simcore.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
