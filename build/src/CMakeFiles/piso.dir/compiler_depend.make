# Empty compiler generated dependencies file for piso.
# This may be replaced when dependencies are built.
