file(REMOVE_RECURSE
  "libpiso.a"
)
