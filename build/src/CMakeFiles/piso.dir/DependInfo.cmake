
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/config/workload_spec.cc" "src/CMakeFiles/piso.dir/config/workload_spec.cc.o" "gcc" "src/CMakeFiles/piso.dir/config/workload_spec.cc.o.d"
  "/root/repo/src/core/disk_fair.cc" "src/CMakeFiles/piso.dir/core/disk_fair.cc.o" "gcc" "src/CMakeFiles/piso.dir/core/disk_fair.cc.o.d"
  "/root/repo/src/core/mem_policy.cc" "src/CMakeFiles/piso.dir/core/mem_policy.cc.o" "gcc" "src/CMakeFiles/piso.dir/core/mem_policy.cc.o.d"
  "/root/repo/src/core/net_fair.cc" "src/CMakeFiles/piso.dir/core/net_fair.cc.o" "gcc" "src/CMakeFiles/piso.dir/core/net_fair.cc.o.d"
  "/root/repo/src/core/sched_piso.cc" "src/CMakeFiles/piso.dir/core/sched_piso.cc.o" "gcc" "src/CMakeFiles/piso.dir/core/sched_piso.cc.o.d"
  "/root/repo/src/core/sched_quota.cc" "src/CMakeFiles/piso.dir/core/sched_quota.cc.o" "gcc" "src/CMakeFiles/piso.dir/core/sched_quota.cc.o.d"
  "/root/repo/src/core/spu.cc" "src/CMakeFiles/piso.dir/core/spu.cc.o" "gcc" "src/CMakeFiles/piso.dir/core/spu.cc.o.d"
  "/root/repo/src/machine/disk.cc" "src/CMakeFiles/piso.dir/machine/disk.cc.o" "gcc" "src/CMakeFiles/piso.dir/machine/disk.cc.o.d"
  "/root/repo/src/machine/disk_model.cc" "src/CMakeFiles/piso.dir/machine/disk_model.cc.o" "gcc" "src/CMakeFiles/piso.dir/machine/disk_model.cc.o.d"
  "/root/repo/src/machine/memory.cc" "src/CMakeFiles/piso.dir/machine/memory.cc.o" "gcc" "src/CMakeFiles/piso.dir/machine/memory.cc.o.d"
  "/root/repo/src/machine/network.cc" "src/CMakeFiles/piso.dir/machine/network.cc.o" "gcc" "src/CMakeFiles/piso.dir/machine/network.cc.o.d"
  "/root/repo/src/metrics/monitor.cc" "src/CMakeFiles/piso.dir/metrics/monitor.cc.o" "gcc" "src/CMakeFiles/piso.dir/metrics/monitor.cc.o.d"
  "/root/repo/src/metrics/report.cc" "src/CMakeFiles/piso.dir/metrics/report.cc.o" "gcc" "src/CMakeFiles/piso.dir/metrics/report.cc.o.d"
  "/root/repo/src/metrics/results.cc" "src/CMakeFiles/piso.dir/metrics/results.cc.o" "gcc" "src/CMakeFiles/piso.dir/metrics/results.cc.o.d"
  "/root/repo/src/os/buffer_cache.cc" "src/CMakeFiles/piso.dir/os/buffer_cache.cc.o" "gcc" "src/CMakeFiles/piso.dir/os/buffer_cache.cc.o.d"
  "/root/repo/src/os/cscan.cc" "src/CMakeFiles/piso.dir/os/cscan.cc.o" "gcc" "src/CMakeFiles/piso.dir/os/cscan.cc.o.d"
  "/root/repo/src/os/filesystem.cc" "src/CMakeFiles/piso.dir/os/filesystem.cc.o" "gcc" "src/CMakeFiles/piso.dir/os/filesystem.cc.o.d"
  "/root/repo/src/os/kernel.cc" "src/CMakeFiles/piso.dir/os/kernel.cc.o" "gcc" "src/CMakeFiles/piso.dir/os/kernel.cc.o.d"
  "/root/repo/src/os/locks.cc" "src/CMakeFiles/piso.dir/os/locks.cc.o" "gcc" "src/CMakeFiles/piso.dir/os/locks.cc.o.d"
  "/root/repo/src/os/process.cc" "src/CMakeFiles/piso.dir/os/process.cc.o" "gcc" "src/CMakeFiles/piso.dir/os/process.cc.o.d"
  "/root/repo/src/os/sched_smp.cc" "src/CMakeFiles/piso.dir/os/sched_smp.cc.o" "gcc" "src/CMakeFiles/piso.dir/os/sched_smp.cc.o.d"
  "/root/repo/src/os/scheduler.cc" "src/CMakeFiles/piso.dir/os/scheduler.cc.o" "gcc" "src/CMakeFiles/piso.dir/os/scheduler.cc.o.d"
  "/root/repo/src/os/vm.cc" "src/CMakeFiles/piso.dir/os/vm.cc.o" "gcc" "src/CMakeFiles/piso.dir/os/vm.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/piso.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/piso.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/log.cc" "src/CMakeFiles/piso.dir/sim/log.cc.o" "gcc" "src/CMakeFiles/piso.dir/sim/log.cc.o.d"
  "/root/repo/src/sim/random.cc" "src/CMakeFiles/piso.dir/sim/random.cc.o" "gcc" "src/CMakeFiles/piso.dir/sim/random.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/piso.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/piso.dir/sim/stats.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/piso.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/piso.dir/sim/trace.cc.o.d"
  "/root/repo/src/simulation.cc" "src/CMakeFiles/piso.dir/simulation.cc.o" "gcc" "src/CMakeFiles/piso.dir/simulation.cc.o.d"
  "/root/repo/src/workload/filecopy.cc" "src/CMakeFiles/piso.dir/workload/filecopy.cc.o" "gcc" "src/CMakeFiles/piso.dir/workload/filecopy.cc.o.d"
  "/root/repo/src/workload/job.cc" "src/CMakeFiles/piso.dir/workload/job.cc.o" "gcc" "src/CMakeFiles/piso.dir/workload/job.cc.o.d"
  "/root/repo/src/workload/oltp.cc" "src/CMakeFiles/piso.dir/workload/oltp.cc.o" "gcc" "src/CMakeFiles/piso.dir/workload/oltp.cc.o.d"
  "/root/repo/src/workload/pmake.cc" "src/CMakeFiles/piso.dir/workload/pmake.cc.o" "gcc" "src/CMakeFiles/piso.dir/workload/pmake.cc.o.d"
  "/root/repo/src/workload/scientific.cc" "src/CMakeFiles/piso.dir/workload/scientific.cc.o" "gcc" "src/CMakeFiles/piso.dir/workload/scientific.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/CMakeFiles/piso.dir/workload/synthetic.cc.o" "gcc" "src/CMakeFiles/piso.dir/workload/synthetic.cc.o.d"
  "/root/repo/src/workload/webserver.cc" "src/CMakeFiles/piso.dir/workload/webserver.cc.o" "gcc" "src/CMakeFiles/piso.dir/workload/webserver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
