#ifndef PISO_CORE_SHARE_TREE_HH
#define PISO_CORE_SHARE_TREE_HH

/**
 * @file
 * A value-type description of a share hierarchy.
 *
 * Fair-share managers are hierarchical — users inside groups inside
 * departments (Solaris SRM; the UNIX Resource Managers survey) — and
 * so are cloud tenants. A ShareTree captures exactly the structure a
 * resource policy needs to entitle recursively: every node carries the
 * SPU it stands for and the raw share that is normalised against its
 * *siblings* only. Node 0 is a synthetic root that represents the
 * whole divisible resource and carries no SPU.
 *
 * The tree is deliberately dumb — plain indices, no behaviour — so the
 * accounting layer (ResourceLedger) can consume it without depending
 * on the SPU registry, and tests can build adversarial trees directly.
 * SpuManager::shareTree() is the production source.
 */

#include <cstddef>
#include <vector>

#include "src/sim/ids.hh"

namespace piso {

/** A share hierarchy rooted at a synthetic, SPU-less node 0. */
class ShareTree
{
  public:
    /** Index of the synthetic root node. */
    static constexpr std::size_t kRoot = 0;

    struct Node
    {
        /** SPU this node stands for (kNoSpu for the root only). */
        SpuId spu = kNoSpu;

        /** Raw share, normalised over the node's siblings (a
         *  suspended SPU contributes share 0, like the flat
         *  registry). */
        double share = 0.0;

        std::size_t parent = kRoot;

        /** Child indices, in the order they were added (SpuManager
         *  adds them ascending by id, which fixes tie-breaking). */
        std::vector<std::size_t> children;
    };

    ShareTree() : nodes_(1) {}

    /** Add a node under @p parent. @return the new node's index. */
    std::size_t
    add(std::size_t parent, SpuId spu, double share)
    {
        const std::size_t idx = nodes_.size();
        nodes_.push_back(Node{spu, share, parent, {}});
        nodes_[parent].children.push_back(idx);
        return idx;
    }

    const Node &node(std::size_t idx) const { return nodes_.at(idx); }
    const Node &root() const { return nodes_.front(); }

    /** Node count, including the synthetic root. */
    std::size_t size() const { return nodes_.size(); }

    /** True when no node sits below a top-level node — the degenerate
     *  tree a flat SPU set maps to. */
    bool
    flat() const
    {
        for (std::size_t i = 1; i < nodes_.size(); ++i) {
            if (nodes_[i].parent != kRoot)
                return false;
        }
        return true;
    }

  private:
    std::vector<Node> nodes_;
};

} // namespace piso

#endif // PISO_CORE_SHARE_TREE_HH
