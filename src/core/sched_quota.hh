#ifndef PISO_CORE_SCHED_QUOTA_HH
#define PISO_CORE_SCHED_QUOTA_HH

/**
 * @file
 * Fixed-quota CPU scheduling (the paper's "Quo" scheme).
 *
 * CPUs are space-partitioned to SPUs (with fractional shares
 * time-multiplexed, Section 3.1); a CPU only ever runs processes of
 * the SPU that owns it *right now*. Perfect isolation, no sharing: an
 * idle CPU stays idle even when other SPUs starve.
 *
 * Under a hierarchical SPU tree the quotas are the *effective* leaf
 * shares (the product of sibling-normalised shares down the tree, via
 * SpuManager::cpuShares); with no lending there is nothing further
 * for the hierarchy to do here — group-affine sharing is the PIso
 * scheduler's business.
 */

#include <list>
#include <set>

// piso-lint: allow(layering) -- the policy/mechanism seam: the quota
// policy implements the OS scheduler's SchedClient interface one layer
// up; see docs/static-analysis.md (layering).
#include "src/os/scheduler.hh"

namespace piso {

/** Space/time-partitioned scheduler with no lending. */
class QuotaScheduler : public CpuScheduler
{
  public:
    using CpuScheduler::CpuScheduler;

    /** Ready processes of @p spu. */
    std::size_t readyCount(SpuId spu) const;

  protected:
    Process *selectNext(Cpu &cpu) override;
    void enqueueReady(Process *p) override;
    bool eligibleIdle(const Cpu &cpu, const Process *p) const override;
    void policyTick() override;

    /** Pop the highest-priority ready process of @p spu (nullptr if
     *  none). */
    Process *popBest(SpuId spu);

    /** Best ready process across all SPUs except @p exclude. */
    Process *popBestForeign(SpuId exclude);

    /** Drop @p spu from the active set if its queue drained. */
    void
    noteQueueDrained(SpuId spu)
    {
        const auto *q = ready_.find(spu);
        if (q == nullptr || q->empty())
            nonEmpty_.erase(spu);
    }

    void saveReady(CkptWriter &w) const override
    {
        ready_.saveTable(
            w, [](CkptWriter &wr, const std::list<Process *> &q) {
                wr.u64(q.size());
                for (const Process *p : q)
                    wr.i64(p->pid());
            });
    }

    void loadReady(CkptReader &r,
                   const std::function<Process *(Pid)> &byPid) override
    {
        ready_.loadTable(
            r, [&byPid](CkptReader &rd, std::list<Process *> &q) {
                const std::uint64_t n = rd.u64();
                for (std::uint64_t i = 0; i < n; ++i)
                    q.push_back(byPid(static_cast<Pid>(rd.i64())));
            });
        nonEmpty_.clear();
        // piso-lint: allow(hot-path-full-scan) -- restore-time rebuild
        // of the active set, not an event callback.
        for (auto [spu, queue] : ready_) {
            if (!queue.empty())
                nonEmpty_.insert(spu);
        }
    }

    SpuTable<std::list<Process *>> ready_;

    /**
     * SPUs whose ready queue is currently non-empty. Cross-SPU scans
     * (popBestForeign, PIso's popBestKin) walk this set instead of the
     * whole table, making them O(SPUs with waiting work): on a
     * 512-SPU machine where a handful are runnable a dispatch stays a
     * handful of comparisons. std::set iterates in ascending SpuId
     * order — the same order DenseTable iteration yields — so pick
     * order (and with it every golden) is unchanged.
     */
    std::set<SpuId> nonEmpty_;
};

} // namespace piso

#endif // PISO_CORE_SCHED_QUOTA_HH
