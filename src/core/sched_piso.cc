#include "src/core/sched_piso.hh"

#include <algorithm>

#include "src/sim/trace.hh"

namespace piso {

void
PisoScheduler::setSpuParents(const SpuTable<SpuId> &parents)
{
    parents_ = parents;
}

std::vector<SpuId>
PisoScheduler::pathTo(SpuId spu) const
{
    std::vector<SpuId> path;
    for (SpuId n = spu; n != kNoSpu;) {
        path.push_back(n);
        const SpuId *p = parents_.find(n);
        n = p ? *p : kNoSpu;
    }
    std::reverse(path.begin(), path.end());
    return path;
}

std::size_t
PisoScheduler::kinship(SpuId a, SpuId b) const
{
    const std::vector<SpuId> pa = pathTo(a);
    const std::vector<SpuId> pb = pathTo(b);
    std::size_t n = 0;
    while (n < pa.size() && n < pb.size() && pa[n] == pb[n])
        ++n;
    return n;
}

Process *
PisoScheduler::popBestKin(SpuId owner)
{
    // Flat SPU sets take the exact popBestForeign path, pick order
    // included.
    if (parents_.empty())
        return popBestForeign(owner);

    Process *best = nullptr;
    std::size_t bestKin = 0;
    if (eagerLoops_) {
        // Pre-PR-9 reference path (bench/ext_scale baseline).
        // piso-lint: allow(hot-path-full-scan) -- eager-baseline
        // reference loop, compiled out of the default path.
        for (auto [spu, queue] : ready_) {
            ++policyIters_;
            if (spu == owner)
                continue;
            const std::size_t kin = kinship(owner, spu);
            if (best && kin < bestKin)
                continue;
            for (Process *q : queue) {
                if (!best || kin > bestKin ||
                    (kin == bestKin && higherPriority(q, best))) {
                    best = q;
                    bestKin = kin;
                }
            }
        }
    } else {
        // Empty queues never produce a candidate and never move
        // bestKin, so walking only the non-empty SPUs (in the same
        // ascending order) picks the identical process.
        for (SpuId spu : nonEmpty_) {
            ++policyIters_;
            if (spu == owner)
                continue;
            const std::size_t kin = kinship(owner, spu);
            if (best && kin < bestKin)
                continue;
            for (Process *q : ready_[spu]) {
                if (!best || kin > bestKin ||
                    (kin == bestKin && higherPriority(q, best))) {
                    best = q;
                    bestKin = kin;
                }
            }
        }
    }
    if (best) {
        ready_[best->spu()].remove(best);
        noteQueueDrained(best->spu());
    }
    return best;
}

Process *
PisoScheduler::selectNext(Cpu &cpu)
{
    const SpuId owner = currentOwner(cpu);
    if (Process *p = popBest(owner))
        return p;
    // On a time-partitioned CPU the other share-holders come before
    // strangers.
    // piso-lint: allow(hot-path-full-scan) -- bounded by the SPUs
    // sharing this one CPU, not the SPU population.
    for (const auto &[spu, frac] : cpu.timeShares) {
        if (spu == owner)
            continue;
        if (Process *p = popBest(spu))
            return p;
    }
    // No home work: lend the CPU to the best process anywhere — the
    // owner's own group first — unless a recent revocation put it on
    // loan hold-off.
    if (events_.now() < cpu.noLoanBefore)
        return nullptr;
    return popBestKin(owner);
}

bool
PisoScheduler::eligibleIdle(const Cpu &cpu, const Process *p) const
{
    // Any idle CPU may run any process (the base class still prefers
    // a home CPU when one is idle), except foreigners during a loan
    // hold-off window.
    if (currentOwner(cpu) == p->spu())
        return true;
    return events_.now() >= cpu.noLoanBefore;
}

void
PisoScheduler::onReadyNoIdle(Process *p)
{
    // All CPUs are busy. If one of this SPU's own CPUs is out on loan,
    // claim it back: immediately under the IPI model, at the next
    // clock tick (<= 10 ms) otherwise.
    for (auto &c : cpus_) {
        if (currentOwner(c) != p->spu() || !c.loaned)
            continue;
        if (ipiRevoke_) {
            revoke(c);
        } else {
            c.revokePending = true;
        }
        return;
    }
}

void
PisoScheduler::revoke(Cpu &cpu)
{
    ++revocations_;
    PISO_TRACE(TraceCat::Sched, events_.now(), "revoke loan of cpu",
               cpu.id, " from ",
               cpu.running ? cpu.running->name() : "<idle>");
    if (loanHoldoff_ > 0)
        cpu.noLoanBefore = events_.now() + loanHoldoff_;
    preemptCpu(cpu);
}

void
PisoScheduler::policyTick()
{
    QuotaScheduler::policyTick();
    for (auto &c : cpus_) {
        if (c.revokePending && c.loaned && c.running &&
            readyCount(currentOwner(c)) > 0) {
            revoke(c);
        } else if (c.revokePending && !c.loaned) {
            c.revokePending = false;
        }
    }
}

int
PisoScheduler::loanedCount() const
{
    int n = 0;
    for (const auto &c : cpus_)
        n += c.loaned ? 1 : 0;
    return n;
}

} // namespace piso
