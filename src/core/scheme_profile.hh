#ifndef PISO_CORE_SCHEME_PROFILE_HH
#define PISO_CORE_SCHEME_PROFILE_HH

/**
 * @file
 * Per-resource policy composition.
 *
 * The paper defines isolation *per resource* — CPU scheduling (§3.1),
 * memory (§3.2), disk bandwidth (§3.3 / §4.5), and the sketched
 * network extension (§5) — but Table 2's machine-wide SMP/Quo/PIso
 * schemes tie all of them together. A SchemeProfile unties them: one
 * independently selectable policy per resource, so mixed experiments
 * (PIso CPU with Quota memory, say) are expressible without new code.
 * `SchemeProfile::uniform(Scheme)` reproduces the paper's three
 * columns exactly.
 *
 * Policy names are resolved through a string-keyed PolicyRegistry so
 * the `.piso` workload format, reports, and JSON output all agree on
 * spelling (`smp | quota | piso`, plus the §4.5 disk aliases
 * `pos | iso`).
 */

#include <optional>
#include <string>
#include <vector>

#include "src/core/scheme.hh"

namespace piso {

/** CPU scheduling policy (§3.1): one value per Table 2 column. */
enum class CpuPolicy
{
    Smp,    //!< shared global run queue, no partition
    Quota,  //!< fixed CPU partition, idle CPUs never loaned
    PIso,   //!< partition + loaning of idle CPUs, revocable
};

/** Memory policy (§3.2). */
enum class MemoryPolicy
{
    Smp,    //!< global replacement, no per-SPU limits
    Quota,  //!< fixed per-SPU quotas, idle memory never lent
    PIso,   //!< entitled/allowed sharing with the Reserve Threshold
};

/** Network-link policy (§5's sketched extension). */
enum class NetPolicy
{
    Smp,    //!< FIFO link, no isolation
    Quota,  //!< fair usage-to-share scheduling (no work conservation
            //!< to give up: an idle link serves whoever is queued)
    PIso,   //!< fair usage-to-share scheduling
};

/** The resource a policy name is being looked up for. */
enum class PolicyResource
{
    Cpu,
    Memory,
    Disk,
    Net,
};

/**
 * One independently selectable policy per resource. `disk` reuses the
 * §4.5 DiskPolicy (Pos/Iso/PIso); a resolved profile never holds
 * DiskPolicy::SchemeDefault.
 */
struct SchemeProfile
{
    CpuPolicy cpu = CpuPolicy::PIso;
    MemoryPolicy memory = MemoryPolicy::PIso;
    DiskPolicy disk = DiskPolicy::FairPosition;
    NetPolicy net = NetPolicy::PIso;

    /** The profile Table 2's machine-wide @p scheme denotes. */
    static SchemeProfile uniform(Scheme scheme);

    /** The Scheme this profile is the uniform expansion of, if any. */
    std::optional<Scheme> asUniform() const;

    /** True when no single Scheme describes this profile. */
    bool mixed() const { return !asUniform().has_value(); }

    /** Machine-line form: "cpu=piso memory=quota disk_policy=piso
     *  network=piso" (paste-able into a workload spec). */
    std::string str() const;

    friend bool operator==(const SchemeProfile &,
                           const SchemeProfile &) = default;
};

/**
 * String-keyed registry of per-resource policy names: canonical names
 * plus aliases, one namespace per resource. The built-in policies are
 * registered at construction; parsing is case-sensitive and fails
 * with the list of valid names.
 */
class PolicyRegistry
{
  public:
    /** The process-wide registry (built-ins pre-registered). */
    static const PolicyRegistry &instance();

    PolicyRegistry();

    /** Register @p name for @p resource mapping onto enum value
     *  @p value. Canonical names are what printing produces. */
    void add(PolicyResource resource, const std::string &name,
             int value, bool canonical);

    /** Look up a name; std::nullopt when unknown. */
    std::optional<int> tryParse(PolicyResource resource,
                                const std::string &name) const;

    /** Canonical name of @p value ("?" when unregistered). */
    const char *canonicalName(PolicyResource resource, int value) const;

    /** Every registered name for @p resource (canonical and alias),
     *  in registration order — for error messages and tests. */
    std::vector<std::string> names(PolicyResource resource) const;

  private:
    struct Binding
    {
        PolicyResource resource;
        std::string name;
        int value;
        bool canonical;
    };

    std::vector<Binding> bindings_;
};

/** @name Canonical policy names (registry-backed)
 *  "smp" | "quota" | "piso" for CPU/memory/network, "pos" | "iso" |
 *  "piso" for disk. */
/// @{
const char *policyName(CpuPolicy p);
const char *policyName(MemoryPolicy p);
const char *policyName(NetPolicy p);
/** Lowercase spec spelling of the §4.5 disk policy (unlike
 *  diskPolicyName(), which prints the paper's "Pos"/"Iso"/"PIso"). */
const char *policySpecName(DiskPolicy p);
/// @}

/** @name Parsing (fatal on unknown names, listing the valid ones) */
/// @{
Scheme parseScheme(const std::string &name);
CpuPolicy parseCpuPolicy(const std::string &name);
MemoryPolicy parseMemoryPolicy(const std::string &name);
DiskPolicy parseDiskPolicy(const std::string &name);
NetPolicy parseNetPolicy(const std::string &name);
/// @}

} // namespace piso

#endif // PISO_CORE_SCHEME_PROFILE_HH
