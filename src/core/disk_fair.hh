#ifndef PISO_CORE_DISK_FAIR_HH
#define PISO_CORE_DISK_FAIR_HH

/**
 * @file
 * Disk-bandwidth isolation (Section 3.3).
 *
 * Bandwidth is approximated by a per-SPU count of sectors transferred
 * that decays by half every 500 ms. The PIso policy schedules by head
 * position (C-SCAN) *among the SPUs passing a fairness criterion*: an
 * SPU fails when its usage-to-share ratio exceeds the average of all
 * active SPUs by the BW difference threshold. Threshold 0 degenerates
 * to round-robin; a huge threshold degenerates to pure C-SCAN. The
 * blind "Iso" policy applies only the fairness ordering and ignores
 * the head. Shared-SPU requests (batched delayed writes) get the
 * lowest priority; their sectors are charged to the owning user SPUs
 * on completion.
 */

#include <cstdint>

#include "src/core/ledger.hh"
#include "src/core/spu_table.hh"
// piso-lint: allow(layering) -- the policy/mechanism seam: fair disk
// policies plug into the DiskDevice mechanism one layer up; inverting
// the edge would move the paper's Section 3.3 policies out of core.
#include "src/machine/disk.hh"
#include "src/util/time.hh"

namespace piso {

/** Decayed per-SPU sector counts approximating bandwidth use. */
class DiskBandwidthTracker
{
  public:
    /** @param halfLife Decay half-life (paper: 500 ms). */
    explicit DiskBandwidthTracker(Time halfLife = 500 * kMs);

    /** Relative bandwidth share of @p spu (default 1). */
    void setShare(SpuId spu, double share);

    /** Record @p spu's enclosing group (kNoSpu detaches). Usage then
     *  also accrues to the group, whose own ratio bounds its whole
     *  subtree via hierarchicalRatio(). */
    void setParent(SpuId spu, SpuId parent);

    /** Charge @p sectors transferred at @p now to @p spu and every
     *  group above it. */
    void addSectors(SpuId spu, std::uint64_t sectors, Time now);

    /** Decayed sector count of @p spu at @p now. */
    double usage(SpuId spu, Time now) const;

    /** usage / share — the fairness metric. */
    double ratio(SpuId spu, Time now) const;

    /** Worst ratio along @p spu's path to the top level: a leaf is as
     *  unfair as its most over-consuming group, so groups compete at
     *  the group boundary. Without parent links this is ratio(). */
    double hierarchicalRatio(SpuId spu, Time now) const;

    Time halfLife() const { return halfLife_; }

    /** @name Checkpoint — only the decayed counts; shares and parent
     *  links are replayed by the deterministic setup phase. */
    /// @{
    void
    save(CkptWriter &w) const
    {
        entries_.saveTable(w, [](CkptWriter &wr, const Entry &e) {
            wr.f64(e.count);
            wr.time(e.last);
        });
    }

    void
    load(CkptReader &r)
    {
        entries_.loadTable(r, [](CkptReader &rd, Entry &e) {
            e.count = rd.f64();
            e.last = rd.time();
        });
    }
    /// @}

  private:
    /** Decay state of one SPU's count; shares live in the ledger. */
    struct Entry
    {
        double count = 0.0;
        Time last = 0;
    };

    double decayed(const Entry &e, Time now) const;

    // piso-lint: allow(checkpoint-field-coverage) -- constructor
    // configuration, identical after deterministic setup replay.
    Time halfLife_;
    SpuTable<Entry> entries_;
    // piso-lint: allow(checkpoint-field-coverage) -- SPU topology is
    // replayed by the setup phase, not carried in the image.
    SpuTable<SpuId> parents_;
    // piso-lint: allow(checkpoint-field-coverage) -- shares are
    // replayed by the setup phase, not carried in the image.
    ResourceLedger shares_{"bandwidth"};
};

/**
 * Common base for the fair disk policies: owns the tracker, charges
 * completions (honouring per-SPU charge breakdowns of shared writes),
 * and evaluates the fairness criterion.
 */
class FairDiskScheduler : public DiskScheduler
{
  public:
    /**
     * @param halfLife   Decay half-life of the bandwidth counts.
     * @param sharedWait Max time a shared-SPU request may be bypassed
     *                   by user requests before it is serviced anyway
     *                   (starvation guard for delayed writes).
     */
    explicit FairDiskScheduler(Time halfLife = 500 * kMs,
                               Time sharedWait = 300 * kMs);

    void onComplete(const DiskRequest &req, Time now) override;

    DiskBandwidthTracker &tracker() { return tracker_; }
    const DiskBandwidthTracker &tracker() const { return tracker_; }

    /** Queue entries examined by pick() calls — the policy_iters_disk
     *  perf counter. Out of band: never serialised, never in JSONL. */
    std::uint64_t policyIters() const { return policyIters_; }

  protected:
    /** True when only shared-SPU requests are queued, or a shared
     *  request has waited past the starvation guard. */
    bool sharedEligible(const std::deque<DiskRequest> &queue,
                        Time now) const;

    DiskBandwidthTracker tracker_;
    Time sharedWait_;
    std::uint64_t policyIters_ = 0;
};

/**
 * The blind "Iso" policy: service the SPU with the lowest
 * usage-to-share ratio, FIFO within the SPU, head position ignored.
 */
class IsoDiskScheduler : public FairDiskScheduler
{
  public:
    using FairDiskScheduler::FairDiskScheduler;

    std::size_t pick(const std::deque<DiskRequest> &queue,
                     std::uint64_t headSector, Time now) override;
};

/**
 * The "PIso" policy: C-SCAN over the requests of SPUs that pass the
 * fairness criterion (ratio <= average + threshold).
 */
class PisoDiskScheduler : public FairDiskScheduler
{
  public:
    /**
     * @param bwThresholdSectors The BW difference threshold, in
     *        decayed sectors per unit share. 0 -> round-robin-like;
     *        very large -> pure head-position scheduling.
     */
    explicit PisoDiskScheduler(double bwThresholdSectors = 256.0,
                               Time halfLife = 500 * kMs,
                               Time sharedWait = 300 * kMs);

    std::size_t pick(const std::deque<DiskRequest> &queue,
                     std::uint64_t headSector, Time now) override;

    double threshold() const { return threshold_; }

  private:
    double threshold_;
};

} // namespace piso

#endif // PISO_CORE_DISK_FAIR_HH
