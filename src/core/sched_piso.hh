#ifndef PISO_CORE_SCHED_PISO_HH
#define PISO_CORE_SCHED_PISO_HH

/**
 * @file
 * Performance-isolation CPU scheduling (Section 3.1).
 *
 * Like QuotaScheduler, CPUs are space/time-partitioned to home SPUs
 * and always prefer home processes. The difference is sharing: an
 * idle CPU with no home work is *loaned* — it picks the highest-
 * priority process from any other SPU. When a home process becomes
 * runnable and no home CPU is free, the loan is revoked at the next
 * clock tick (<= 10 ms), or immediately when configured to model an
 * inter-processor interrupt.
 */

#include "src/core/sched_quota.hh"

namespace piso {

/** Home-SPU scheduling with idle-CPU loans and bounded revocation. */
class PisoScheduler : public QuotaScheduler
{
  public:
    using QuotaScheduler::QuotaScheduler;

    /**
     * Revoke loans immediately (IPI model) instead of waiting for the
     * next tick. The paper's default is tick-based (<= 10 ms).
     */
    void setIpiRevocation(bool on) { ipiRevoke_ = on; }

    /**
     * After a revocation, keep the CPU home-only for this long —
     * Section 3.1's suggested refinement "preventing frequent
     * reallocation of CPUs for sharing, if the algorithm detects that
     * the allocation is being revoked frequently". 0 (default)
     * re-loans immediately.
     */
    void setLoanHoldoff(Time holdoff) { loanHoldoff_ = holdoff; }

    /** Number of CPUs currently loaned out. */
    int loanedCount() const;

    /** Cumulative count of loan revocations. */
    std::uint64_t revocations() const { return revocations_; }

    /** SPU tree parent links: loans prefer the most closely related
     *  SPU (deepest common ancestor with the CPU's owner), so idle
     *  capacity circulates inside a group before leaving it. With no
     *  links (a flat tree) the pick order is exactly the priority
     *  order of popBestForeign. */
    void setSpuParents(const SpuTable<SpuId> &parents) override;

  protected:
    Process *selectNext(Cpu &cpu) override;
    bool eligibleIdle(const Cpu &cpu, const Process *p) const override;
    void onReadyNoIdle(Process *p) override;
    void policyTick() override;

    void saveReady(CkptWriter &w) const override
    {
        QuotaScheduler::saveReady(w);
        w.u64(revocations_);
    }

    void loadReady(CkptReader &r,
                   const std::function<Process *(Pid)> &byPid) override
    {
        QuotaScheduler::loadReady(r, byPid);
        revocations_ = r.u64();
    }

  private:
    void revoke(Cpu &cpu);

    /** Best foreign ready process, preferring higher kinship with
     *  @p owner; equals popBestForeign when no parent links exist. */
    Process *popBestKin(SpuId owner);

    /** Length of the common root-down path prefix of two SPUs. */
    std::size_t kinship(SpuId a, SpuId b) const;

    std::vector<SpuId> pathTo(SpuId spu) const;

    SpuTable<SpuId> parents_;
    bool ipiRevoke_ = false;
    Time loanHoldoff_ = 0;
    std::uint64_t revocations_ = 0;
};

} // namespace piso

#endif // PISO_CORE_SCHED_PISO_HH
