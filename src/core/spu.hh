#ifndef PISO_CORE_SPU_HH
#define PISO_CORE_SPU_HH

/**
 * @file
 * The Software Performance Unit (SPU) — the paper's central kernel
 * abstraction (Section 2.1).
 *
 * An SPU groups processes and associates them with a share of the
 * machine. The SpuManager maintains the registry, including the two
 * default SPUs of Section 2.2: `kernel` (kernel processes and memory;
 * unrestricted) and `shared` (resources referenced by multiple SPUs;
 * lowest disk priority).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/ledger.hh"
#include "src/core/spu_table.hh"
#include "src/sim/ids.hh"

namespace piso {

/** Life-cycle state of an SPU (Section 2.1: SPUs can be created,
 *  destroyed, suspended and awakened dynamically). */
enum class SpuState
{
    Active,
    Suspended,
};

/** Creation-time description of a user SPU. */
struct SpuSpec
{
    std::string name;

    /** Relative share of every resource (CPU, memory, disk BW);
     *  normalised over active user SPUs. */
    double share = 1.0;

    /** Disk that holds this SPU's files and swap space. */
    DiskId homeDisk = 0;
};

/** One SPU's registry entry. */
struct Spu
{
    SpuId id = kNoSpu;
    std::string name;
    double share = 1.0;
    DiskId homeDisk = 0;
    SpuState state = SpuState::Active;
};

/** Registry of SPUs and their configured shares. */
class SpuManager
{
  public:
    /** Creates the default `kernel` and `shared` SPUs. */
    SpuManager();

    /** Create a user SPU. */
    SpuId create(const SpuSpec &spec);

    /** Remove a user SPU (it must have no processes left; the caller
     *  is responsible for that invariant). */
    void destroy(SpuId spu);

    /** Suspend / resume participation in share normalisation. */
    void suspend(SpuId spu);
    void resume(SpuId spu);

    const Spu &spu(SpuId id) const;
    bool exists(SpuId id) const;

    /** Active user SPUs, ascending by id. */
    std::vector<SpuId> userSpus() const;

    /** Count of active user SPUs. */
    std::size_t userCount() const { return userSpus().size(); }

    /** @p spu's share normalised over active user SPUs (0 when
     *  suspended). */
    double shareOf(SpuId spu) const;

    /** Normalised CPU shares of active user SPUs, for
     *  CpuScheduler::partitionCpus(). */
    SpuTable<double> cpuShares() const;

  private:
    SpuTable<Spu> spus_;

    /** Raw shares of user SPUs (suspended = 0), normalised by the
     *  ledger; the single source of the `share / Σ shares` rule. */
    ResourceLedger shares_{"share"};
    SpuId next_ = kFirstUserSpu;
};

} // namespace piso

#endif // PISO_CORE_SPU_HH
