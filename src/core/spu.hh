#ifndef PISO_CORE_SPU_HH
#define PISO_CORE_SPU_HH

/**
 * @file
 * The Software Performance Unit (SPU) — the paper's central kernel
 * abstraction (Section 2.1).
 *
 * An SPU groups processes and associates them with a share of the
 * machine. The SpuManager maintains the registry, including the two
 * default SPUs of Section 2.2: `kernel` (kernel processes and memory;
 * unrestricted) and `shared` (resources referenced by multiple SPUs;
 * lowest disk priority).
 *
 * SPUs form a *tree*: a user SPU may be created under another user SPU
 * (a "group"), and its share is then normalised against its siblings
 * only — the effective machine share is the product of the
 * sibling-normalised shares along the path to the top level, the model
 * of hierarchical fair-share managers (Solaris SRM and kin). A flat
 * configuration is the degenerate depth-1 tree and behaves exactly as
 * the original flat registry did, bit for bit.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/share_tree.hh"
#include "src/core/spu_table.hh"
#include "src/sim/checkpoint.hh"
#include "src/sim/ids.hh"

namespace piso {

/** Life-cycle state of an SPU (Section 2.1: SPUs can be created,
 *  destroyed, suspended and awakened dynamically). A suspended group
 *  suspends its whole subtree for share purposes. */
enum class SpuState
{
    Active,
    Suspended,
};

/** Creation-time description of a user SPU. */
struct SpuSpec
{
    std::string name;

    /** Relative share of every resource (CPU, memory, disk BW);
     *  normalised over the SPU's *siblings* (for a top-level SPU,
     *  the other top-level SPUs). */
    double share = 1.0;

    /** Disk that holds this SPU's files and swap space. */
    DiskId homeDisk = 0;

    /** Enclosing group, or kNoSpu for a top-level SPU. */
    SpuId parent = kNoSpu;
};

/** One SPU's registry entry. */
struct Spu
{
    SpuId id = kNoSpu;
    std::string name;
    double share = 1.0;
    DiskId homeDisk = 0;
    SpuState state = SpuState::Active;

    /** Enclosing group (kNoSpu when top-level). */
    SpuId parent = kNoSpu;

    /** Child SPUs, ascending by id (ids are handed out
     *  monotonically, so creation order is id order). */
    std::vector<SpuId> children;
};

/** Registry of SPUs, their configured shares and their hierarchy. */
class SpuManager
{
  public:
    /** Creates the default `kernel` and `shared` SPUs. */
    SpuManager();

    /** Create a user SPU, optionally under spec.parent. */
    SpuId create(const SpuSpec &spec);

    /** Remove a user SPU (it must have no processes and no child
     *  SPUs left; processes are the caller's invariant, children are
     *  checked here). */
    void destroy(SpuId spu);

    /** Suspend / resume participation in share normalisation.
     *  Suspending a group zeroes the effective share of its whole
     *  subtree. */
    void suspend(SpuId spu);
    void resume(SpuId spu);

    const Spu &spu(SpuId id) const;
    bool exists(SpuId id) const;

    /** @name Hierarchy */
    /// @{
    /** Enclosing group of @p spu (kNoSpu when top-level). */
    SpuId parentOf(SpuId spu) const;

    /** Children of @p parent ascending by id; pass kNoSpu for the
     *  top-level user SPUs. */
    const std::vector<SpuId> &childrenOf(SpuId parent) const;

    /** True when @p spu has child SPUs (jobs cannot run on groups). */
    bool isGroup(SpuId spu) const;

    /** Path from the top level down to @p spu, inclusive. */
    std::vector<SpuId> pathOf(SpuId spu) const;

    /** True when any user SPU sits inside a group — i.e. the tree is
     *  deeper than the flat, depth-1 degenerate case. */
    bool hierarchical() const;

    /** The user-SPU share hierarchy as a value (suspended nodes carry
     *  share 0), for ResourceLedger::entitleByShare(tree, ...). */
    ShareTree shareTree() const;
    /// @}

    /** User SPUs whose whole path to the top level is active,
     *  ascending by id; includes groups. Cached: rebuilt only after a
     *  topology change (see version()). */
    const std::vector<SpuId> &userSpus() const;

    /** Leaf user SPUs (no children) whose whole path is active,
     *  ascending by id — the SPUs that hold processes and receive
     *  resources. Equals userSpus() for a flat configuration.
     *  Cached like userSpus(). */
    const std::vector<SpuId> &leafSpus() const;

    /** Topology version: bumped by create/destroy/suspend/resume (and
     *  checkpoint load). Keys the user/leaf caches and lets periodic
     *  policies skip recomputation when the tree is unchanged. */
    std::uint64_t version() const { return version_; }

    /** Count of active user SPUs (groups included). */
    std::size_t userCount() const { return userSpus().size(); }

    /** @p spu's effective share of the whole machine: the product of
     *  sibling-normalised shares along the path to the top level
     *  (0 when any node on the path is suspended). Depth-1 trees
     *  reproduce the flat share / Σ shares rule bit for bit. */
    double shareOf(SpuId spu) const;

    /** Normalised CPU shares of the active leaf SPUs, for
     *  CpuScheduler::partitionCpus(). */
    SpuTable<double> cpuShares() const;

    /**
     * Per-leaf entitlement by per-level floors: each node takes
     * floor(sibling-normalised share x parent amount) of its parent's
     * amount, top level from @p divisible. The remainder at every
     * level stays unassigned — the same rounding-down contract as
     * ResourceLedger::entitledFloor, which this reproduces exactly for
     * depth-1 trees. Suspended subtrees receive no entry.
     */
    SpuTable<std::uint64_t> entitleLeaves(std::uint64_t divisible) const;

    /** @name Checkpoint
     *  The tree structure itself (names, shares, parent/child edges)
     *  is replayed by the deterministic setup phase; only the mutable
     *  run-state — per-SPU life-cycle state and the id allocator — is
     *  serialised. load() validates the replayed tree covers exactly
     *  the SPUs present at save time. */
    /// @{
    void save(CkptWriter &w) const;
    void load(CkptReader &r);
    /// @}

  private:
    /** Σ shares over @p parent's children, ascending by id, counting
     *  suspended children as +0.0 — the float-sum order the flat
     *  share ledger used, preserved for bit-compatibility. */
    double siblingTotal(SpuId parent) const;

    bool pathActive(SpuId spu) const;

    void entitleUnder(SpuId parent, std::uint64_t amount,
                      SpuTable<std::uint64_t> &out) const;
    void buildSubtree(SpuId parent, std::size_t node,
                      ShareTree &tree) const;

    /** Rebuild the user/leaf caches if version_ moved. */
    void refreshCaches() const;

    SpuTable<Spu> spus_;

    /** Top-level user SPUs, ascending by id (the synthetic root's
     *  children). */
    // piso-lint: allow(checkpoint-field-coverage) -- SPU topology is
    // rebuilt by setup replay; only per-SPU state is imaged.
    std::vector<SpuId> topLevel_;

    SpuId next_ = kFirstUserSpu;

    // piso-lint: allow(checkpoint-field-coverage) -- monotonic cache
    // invalidation counter; load bumps it rather than restoring it.
    std::uint64_t version_ = 0;

    /** Cached userSpus()/leafSpus(), valid while
     *  cacheVersion_ == version_. */
    // piso-lint: allow(checkpoint-field-coverage) -- cache validity
    // tag, rebuilt lazily after the load-time version_ bump.
    mutable std::uint64_t cacheVersion_ = ~std::uint64_t{0};
    // piso-lint: allow(checkpoint-field-coverage) -- derived cache,
    // rebuilt lazily by refreshCaches().
    mutable std::vector<SpuId> userCache_;
    // piso-lint: allow(checkpoint-field-coverage) -- derived cache,
    // rebuilt lazily by refreshCaches().
    mutable std::vector<SpuId> leafCache_;
};

} // namespace piso

#endif // PISO_CORE_SPU_HH
