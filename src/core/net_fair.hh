#ifndef PISO_CORE_NET_FAIR_HH
#define PISO_CORE_NET_FAIR_HH

/**
 * @file
 * Network-bandwidth isolation — the extension the paper sketches in
 * Sections 3 and 5: "Though we do not implement performance isolation
 * for network bandwidth, the implementation would be similar to that
 * of disk bandwidth, without the complication of head position."
 *
 * Exactly that: the same decayed per-SPU byte counts (reusing
 * DiskBandwidthTracker) and the same usage-to-share fairness rule, but
 * the pick is simply the FIFO-oldest message of the fairest SPU —
 * there is no head position to respect.
 */

#include "src/core/disk_fair.hh"
// piso-lint: allow(layering) -- the policy/mechanism seam: the fair
// link policy plugs into the NetworkInterface mechanism one layer up;
// see docs/static-analysis.md (layering).
#include "src/machine/network.hh"

namespace piso {

/** Fair link scheduling: serve the SPU with the lowest decayed
 *  usage-to-share ratio; FIFO within an SPU. */
class FairNetScheduler : public NetScheduler
{
  public:
    /** @param halfLife Decay half-life of the byte counts (the same
     *  500 ms default the disk policy uses). */
    explicit FairNetScheduler(Time halfLife = 500 * kMs);

    std::size_t pick(const std::deque<NetMessage> &queue,
                     Time now) override;

    void onComplete(const NetMessage &msg, Time now) override;

    /** Per-SPU relative bandwidth shares. */
    DiskBandwidthTracker &tracker() { return tracker_; }
    const DiskBandwidthTracker &tracker() const { return tracker_; }

    /** Queue entries examined by pick() calls — the policy_iters_net
     *  perf counter. Out of band: never serialised, never in JSONL. */
    std::uint64_t policyIters() const { return policyIters_; }

  private:
    DiskBandwidthTracker tracker_;
    std::uint64_t policyIters_ = 0;
};

} // namespace piso

#endif // PISO_CORE_NET_FAIR_HH
