#include "src/core/mem_policy.hh"

#include <algorithm>

#include "src/core/ledger.hh"
#include "src/util/log.hh"
#include "src/sim/trace.hh"

namespace piso {

MemorySharingPolicy::MemorySharingPolicy(EventQueue &events,
                                         VirtualMemory &vm,
                                         SpuManager &spus,
                                         MemPolicyConfig config)
    : events_(events), vm_(vm), spus_(spus), config_(config)
{
    if (config_.period == 0)
        PISO_FATAL("memory policy period must be non-zero");
    if (config_.reserveFraction < 0.0 || config_.reserveFraction >= 1.0)
        PISO_FATAL("reserve fraction must be in [0, 1), got ",
                   config_.reserveFraction);
}

void
MemorySharingPolicy::start()
{
    const auto reserve = static_cast<std::uint64_t>(
        config_.reserveFraction *
        static_cast<double>(vm_.totalPages()));
    vm_.setReservePages(reserve);
    started_ = true;
    recompute();
    arm();
}

void
MemorySharingPolicy::arm()
{
    if (!started_ || armed_)
        return;
    armed_ = true;
    events_.scheduleAfter(config_.period, [this] { tick(); },
                          "memPolicy");
}

void
MemorySharingPolicy::tick()
{
    armed_ = false;
    // Nothing to entitle: stop rescheduling so an idle simulation's
    // event queue drains. arm() restarts the loop when SPUs return.
    if (spus_.leafSpus().empty())
        return;
    // O(1) skip: no ledger or SPU-tree change since the last full
    // pass means the pass would write back identical levels.
    if (config_.eagerRecompute || !seenValid_ ||
        vm_.version() != seenVmVersion_ ||
        spus_.version() != seenSpuVersion_) {
        recompute();
    }
    arm();
}

void
MemorySharingPolicy::recompute()
{
    const std::uint64_t total = vm_.totalPages();
    const std::uint64_t kernelUsed = vm_.levels(kKernelSpu).used;
    const std::uint64_t sharedUsed = vm_.levels(kSharedSpu).used;
    const std::uint64_t reserve = vm_.reservePages();
    const std::uint64_t overhead =
        std::min(total, kernelUsed + sharedUsed + reserve);
    const std::uint64_t divisible = total - overhead;

    const auto users = spus_.leafSpus();
    if (users.empty())
        return;
    policyIters_ += users.size();

    // 1. Recompute entitlements from the sharing contract, splitting
    //    the divisible pages down the SPU tree with per-level floors
    //    (a flat configuration reduces to share_i x divisible).
    SpuTable<std::uint64_t> entitled = spus_.entitleLeaves(divisible);
    for (SpuId spu : users) {
        vm_.registerSpu(spu);
        vm_.setEntitled(spu, entitled[spu]);
    }

    // 2. Idle resources available for lending: free frames plus pages
    //    already lent out, less the Reserve Threshold.
    std::uint64_t borrowedOut = 0;
    for (SpuId spu : users) {
        const MemLevels &l = vm_.levels(spu);
        if (l.used > entitled[spu])
            borrowedOut += l.used - entitled[spu];
    }
    const std::uint64_t free = vm_.freePages();
    const std::uint64_t lendable =
        free + borrowedOut > reserve ? free + borrowedOut - reserve : 0;

    // 3. Find SPUs that want more than their entitlement.
    std::vector<SpuId> needy;
    for (SpuId spu : users) {
        const MemLevels &l = vm_.levels(spu);
        const bool pressured = vm_.takePressure(spu) > 0;
        if (pressured || l.used >= entitled[spu])
            needy.push_back(spu);
    }

    // 4. Baseline allowed = entitled; lendable split equally among the
    //    needy. Over-allowed borrowers are reclaimed by the pageout
    //    daemon, Reserve hiding the lender's revocation latency.
    const std::uint64_t grant =
        needy.empty() ? 0 : lendable / needy.size();
    PISO_TRACE(TraceCat::Mem, events_.now(), "mem policy: lendable=",
               lendable, " needy=", needy.size(), " grant=", grant);
    for (SpuId spu : users) {
        std::uint64_t allowed = entitled[spu];
        if (grant > 0 &&
            std::find(needy.begin(), needy.end(), spu) != needy.end()) {
            allowed += grant;
        }
        vm_.setAllowed(spu, allowed);
    }

    // Capture the versions *after* the pass: the writes above bump
    // the VM version, and the skip must key off the state this pass
    // left behind, not the state it started from.
    seenVmVersion_ = vm_.version();
    seenSpuVersion_ = spus_.version();
    seenValid_ = true;
}

} // namespace piso
