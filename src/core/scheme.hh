#ifndef PISO_CORE_SCHEME_HH
#define PISO_CORE_SCHEME_HH

/**
 * @file
 * The three resource-allocation schemes of Table 2 and the three disk
 * policies of Section 4.5.
 */

namespace piso {

/** Machine-wide resource-allocation scheme (paper Table 2). */
enum class Scheme
{
    Smp,    //!< unconstrained sharing, no isolation (IRIX 5.3)
    Quota,  //!< fixed quota per SPU, no sharing ("Quo")
    PIso,   //!< performance isolation: isolation + careful sharing
};

/** Disk-request scheduling policy (Section 4.5). */
enum class DiskPolicy
{
    HeadPosition,   //!< C-SCAN only — IRIX "Pos"
    BlindFair,      //!< fairness only, ignores the head — "Iso"
    FairPosition,   //!< fairness criterion + head position — "PIso"
    SchemeDefault,  //!< pick from the Scheme (Smp->Pos, else PIso)
};

/** Short display name ("SMP", "Quo", "PIso") as used in the paper. */
inline const char *
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::Smp:
        return "SMP";
      case Scheme::Quota:
        return "Quo";
      case Scheme::PIso:
        return "PIso";
    }
    return "?";
}

/** Short display name ("Pos", "Iso", "PIso") as used in the paper. */
inline const char *
diskPolicyName(DiskPolicy p)
{
    switch (p) {
      case DiskPolicy::HeadPosition:
        return "Pos";
      case DiskPolicy::BlindFair:
        return "Iso";
      case DiskPolicy::FairPosition:
        return "PIso";
      case DiskPolicy::SchemeDefault:
        return "default";
    }
    return "?";
}

} // namespace piso

#endif // PISO_CORE_SCHEME_HH
