#include "src/core/ledger.hh"

#include <algorithm>
#include <cmath>

#include "src/util/log.hh"
#include "src/util/error.hh"

namespace piso {

ResourceLedger::ResourceLedger(std::string resource)
    : resource_(std::move(resource))
{
}

void
ResourceLedger::registerSpu(SpuId spu)
{
    spus_.tryEmplace(spu);
}

void
ResourceLedger::forget(SpuId spu)
{
    spus_.erase(spu);
}

bool
ResourceLedger::knows(SpuId spu) const
{
    return spus_.contains(spu);
}

std::vector<SpuId>
ResourceLedger::spus() const
{
    return spus_.ids();
}

const ResourceLedger::Entry &
ResourceLedger::entry(SpuId spu) const
{
    const Entry *e = spus_.find(spu);
    PISO_INVARIANT(e, resource_, " ledger: unknown SPU ", spu);
    return *e;
}

ResourceLedger::Entry &
ResourceLedger::entry(SpuId spu)
{
    return const_cast<Entry &>(
        static_cast<const ResourceLedger *>(this)->entry(spu));
}

void
ResourceLedger::setShare(SpuId spu, double share)
{
    if (!(share >= 0.0) || !std::isfinite(share))
        PISO_FATAL(resource_, " ledger: share of SPU ", spu,
                   " must be a finite non-negative number, got ",
                   share);
    registerSpu(spu);
    entry(spu).share = share;
}

double
ResourceLedger::share(SpuId spu) const
{
    const Entry *e = spus_.find(spu);
    return e ? e->share : 1.0;
}

double
ResourceLedger::totalShare() const
{
    double total = 0.0;
    // piso-lint: allow(hot-path-full-scan) -- rebalance/report-time
    // aggregation, not an event callback.
    for (const auto &[spu, e] : spus_)
        total += e.share;
    return total;
}

double
ResourceLedger::normalizedShare(SpuId spu) const
{
    const double total = totalShare();
    return total == 0.0 ? 0.0 : share(spu) / total;
}

void
ResourceLedger::setEntitled(SpuId spu, std::uint64_t units)
{
    entry(spu).levels.entitled = units;
}

void
ResourceLedger::setAllowed(SpuId spu, std::uint64_t units)
{
    entry(spu).levels.allowed = units;
}

const ResourceLevels &
ResourceLedger::levels(SpuId spu) const
{
    return entry(spu).levels;
}

bool
ResourceLedger::atLimit(SpuId spu) const
{
    const ResourceLevels &l = entry(spu).levels;
    return l.used >= l.allowed;
}

std::uint64_t
ResourceLedger::overAllowed(SpuId spu) const
{
    const ResourceLevels &l = entry(spu).levels;
    return l.used > l.allowed ? l.used - l.allowed : 0;
}

bool
ResourceLedger::tryUse(SpuId spu)
{
    ResourceLevels &l = entry(spu).levels;
    if (l.used >= l.allowed)
        return false;
    ++l.used;
    return true;
}

void
ResourceLedger::use(SpuId spu, std::uint64_t units)
{
    ResourceLevels &l = entry(spu).levels;
    PISO_CHECK(l.used + units >= l.used, resource_,
               " ledger: use of SPU ", spu, " overflows used units");
    l.used += units;
}

void
ResourceLedger::release(SpuId spu, std::uint64_t units)
{
    ResourceLevels &l = entry(spu).levels;
    PISO_INVARIANT(l.used >= units, resource_,
                   " ledger: release of SPU ", spu,
                   " below zero used units");
    l.used -= units;
}

void
ResourceLedger::transfer(SpuId from, SpuId to, std::uint64_t units)
{
    release(from, units);
    use(to, units);
}

std::uint64_t
ResourceLedger::usedTotal() const
{
    std::uint64_t total = 0;
    // piso-lint: allow(hot-path-full-scan) -- rebalance/report-time
    // aggregation, not an event callback.
    for (const auto &[spu, e] : spus_)
        total += e.levels.used;
    return total;
}

std::uint64_t
ResourceLedger::entitledTotal() const
{
    std::uint64_t total = 0;
    // piso-lint: allow(hot-path-full-scan) -- rebalance/report-time
    // aggregation, not an event callback.
    for (const auto &[spu, e] : spus_)
        total += e.levels.entitled;
    return total;
}

std::uint64_t
ResourceLedger::entitledFloor(double share, std::uint64_t divisible)
{
    return static_cast<std::uint64_t>(
        std::floor(share * static_cast<double>(divisible)));
}

std::vector<std::uint64_t>
ResourceLedger::apportion(const std::vector<double> &shares,
                          std::uint64_t divisible)
{
    std::vector<std::uint64_t> out(shares.size(), 0);
    double total = 0.0;
    for (double s : shares) {
        PISO_INVARIANT(s >= 0.0 && std::isfinite(s),
                       "apportioning a non-finite or negative share");
        total += s;
    }
    // Guard the all-suspended / all-zero level: nothing to normalise
    // against, so nobody is entitled to anything.
    if (shares.empty() || total == 0.0)
        return out;

    // Floor allocation, remembering each slot's fractional remainder.
    std::uint64_t assigned = 0;
    std::vector<std::pair<double, std::size_t>> fractions;
    for (std::size_t i = 0; i < shares.size(); ++i) {
        const double exact = shares[i] / total *
                             static_cast<double>(divisible);
        const std::uint64_t floor =
            static_cast<std::uint64_t>(std::floor(exact));
        out[i] = floor;
        assigned += floor;
        if (shares[i] > 0.0)
            fractions.emplace_back(exact - static_cast<double>(floor),
                                   i);
    }

    // Largest remainder first; ties go to the lower index (`fractions`
    // is ascending by index, stable_sort keeps it).
    std::stable_sort(fractions.begin(), fractions.end(),
                     [](const auto &a, const auto &b) {
                         return a.first > b.first;
                     });
    for (std::size_t i = 0; assigned < divisible && i < fractions.size();
         ++i, ++assigned) {
        ++out[fractions[i].second];
    }
    // Rounding noise can leave a residue even after every slot got one
    // extra unit; sweep it into the first positive-share slot so the
    // parts always sum exactly to the divisible amount.
    if (assigned < divisible && !fractions.empty())
        out[fractions.front().second] += divisible - assigned;
    return out;
}

void
ResourceLedger::entitleByShare(std::uint64_t divisible)
{
    std::vector<SpuId> ids;
    std::vector<double> shares;
    ids.reserve(spus_.size());
    shares.reserve(spus_.size());
    // piso-lint: allow(hot-path-full-scan) -- runs once per rebalance,
    // gated by the policy version skip, not per event.
    for (const auto &[spu, e] : spus_) {
        ids.push_back(spu);
        shares.push_back(e.share);
    }
    const std::vector<std::uint64_t> parts = apportion(shares, divisible);
    for (std::size_t i = 0; i < ids.size(); ++i)
        spus_[ids[i]].levels.entitled = parts[i];
}

void
ResourceLedger::entitleByShare(const ShareTree &tree,
                               std::uint64_t divisible)
{
    // Top-down: each node's amount is split exactly among its
    // children; the root's amount is the whole divisible resource.
    // Iterative over an explicit stack — config trees are shallow but
    // adversarial test trees need not be.
    std::vector<std::pair<std::size_t, std::uint64_t>> stack;
    stack.emplace_back(ShareTree::kRoot, divisible);
    while (!stack.empty()) {
        const auto [idx, amount] = stack.back();
        stack.pop_back();
        const ShareTree::Node &node = tree.node(idx);
        if (node.spu != kNoSpu) {
            registerSpu(node.spu);
            entry(node.spu).levels.entitled = amount;
        }
        if (node.children.empty())
            continue;
        std::vector<double> shares;
        shares.reserve(node.children.size());
        for (std::size_t child : node.children)
            shares.push_back(tree.node(child).share);
        const std::vector<std::uint64_t> parts =
            apportion(shares, amount);
        for (std::size_t i = 0; i < node.children.size(); ++i)
            stack.emplace_back(node.children[i], parts[i]);
    }
}

} // namespace piso
