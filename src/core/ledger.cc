#include "src/core/ledger.hh"

#include <algorithm>
#include <cmath>

#include "src/sim/log.hh"
#include "src/util/error.hh"

namespace piso {

ResourceLedger::ResourceLedger(std::string resource)
    : resource_(std::move(resource))
{
}

void
ResourceLedger::registerSpu(SpuId spu)
{
    spus_.tryEmplace(spu);
}

void
ResourceLedger::forget(SpuId spu)
{
    spus_.erase(spu);
}

bool
ResourceLedger::knows(SpuId spu) const
{
    return spus_.contains(spu);
}

std::vector<SpuId>
ResourceLedger::spus() const
{
    return spus_.ids();
}

const ResourceLedger::Entry &
ResourceLedger::entry(SpuId spu) const
{
    const Entry *e = spus_.find(spu);
    PISO_INVARIANT(e, resource_, " ledger: unknown SPU ", spu);
    return *e;
}

ResourceLedger::Entry &
ResourceLedger::entry(SpuId spu)
{
    return const_cast<Entry &>(
        static_cast<const ResourceLedger *>(this)->entry(spu));
}

void
ResourceLedger::setShare(SpuId spu, double share)
{
    if (share < 0.0)
        PISO_FATAL(resource_, " ledger: negative share ", share,
                   " for SPU ", spu);
    registerSpu(spu);
    entry(spu).share = share;
}

double
ResourceLedger::share(SpuId spu) const
{
    const Entry *e = spus_.find(spu);
    return e ? e->share : 1.0;
}

double
ResourceLedger::totalShare() const
{
    double total = 0.0;
    for (const auto &[spu, e] : spus_)
        total += e.share;
    return total;
}

double
ResourceLedger::normalizedShare(SpuId spu) const
{
    const double total = totalShare();
    return total == 0.0 ? 0.0 : share(spu) / total;
}

void
ResourceLedger::setEntitled(SpuId spu, std::uint64_t units)
{
    entry(spu).levels.entitled = units;
}

void
ResourceLedger::setAllowed(SpuId spu, std::uint64_t units)
{
    entry(spu).levels.allowed = units;
}

const ResourceLevels &
ResourceLedger::levels(SpuId spu) const
{
    return entry(spu).levels;
}

bool
ResourceLedger::atLimit(SpuId spu) const
{
    const ResourceLevels &l = entry(spu).levels;
    return l.used >= l.allowed;
}

std::uint64_t
ResourceLedger::overAllowed(SpuId spu) const
{
    const ResourceLevels &l = entry(spu).levels;
    return l.used > l.allowed ? l.used - l.allowed : 0;
}

bool
ResourceLedger::tryUse(SpuId spu)
{
    ResourceLevels &l = entry(spu).levels;
    if (l.used >= l.allowed)
        return false;
    ++l.used;
    return true;
}

void
ResourceLedger::use(SpuId spu, std::uint64_t units)
{
    ResourceLevels &l = entry(spu).levels;
    PISO_CHECK(l.used + units >= l.used, resource_,
               " ledger: use of SPU ", spu, " overflows used units");
    l.used += units;
}

void
ResourceLedger::release(SpuId spu, std::uint64_t units)
{
    ResourceLevels &l = entry(spu).levels;
    PISO_INVARIANT(l.used >= units, resource_,
                   " ledger: release of SPU ", spu,
                   " below zero used units");
    l.used -= units;
}

void
ResourceLedger::transfer(SpuId from, SpuId to, std::uint64_t units)
{
    release(from, units);
    use(to, units);
}

std::uint64_t
ResourceLedger::usedTotal() const
{
    std::uint64_t total = 0;
    for (const auto &[spu, e] : spus_)
        total += e.levels.used;
    return total;
}

std::uint64_t
ResourceLedger::entitledTotal() const
{
    std::uint64_t total = 0;
    for (const auto &[spu, e] : spus_)
        total += e.levels.entitled;
    return total;
}

std::uint64_t
ResourceLedger::entitledFloor(double share, std::uint64_t divisible)
{
    return static_cast<std::uint64_t>(
        std::floor(share * static_cast<double>(divisible)));
}

void
ResourceLedger::entitleByShare(std::uint64_t divisible)
{
    const double total = totalShare();
    if (spus_.empty() || total == 0.0) {
        for (auto [spu, e] : spus_)
            e.levels.entitled = 0;
        return;
    }

    // Floor allocation, remembering each SPU's fractional remainder.
    std::uint64_t assigned = 0;
    std::vector<std::pair<double, SpuId>> fractions;
    for (auto [spu, e] : spus_) {
        const double exact = e.share / total *
                             static_cast<double>(divisible);
        const std::uint64_t floor =
            static_cast<std::uint64_t>(std::floor(exact));
        e.levels.entitled = floor;
        assigned += floor;
        if (e.share > 0.0)
            fractions.emplace_back(exact - static_cast<double>(floor),
                                   spu);
    }

    // Largest remainder first; ties go to the lower SPU id (ascending
    // iteration made `fractions` ascending by id, stable_sort keeps
    // it).
    std::stable_sort(fractions.begin(), fractions.end(),
                     [](const auto &a, const auto &b) {
                         return a.first > b.first;
                     });
    for (std::size_t i = 0; assigned < divisible && i < fractions.size();
         ++i, ++assigned) {
        ++spus_[fractions[i].second].levels.entitled;
    }
    // Rounding noise can leave a residue even after every SPU got one
    // extra unit; sweep it into the first positive-share SPU so the
    // entitlements always sum exactly to the divisible amount.
    if (assigned < divisible && !fractions.empty()) {
        auto &e = spus_[fractions.front().second];
        e.levels.entitled += divisible - assigned;
    }
}

} // namespace piso
