#include "src/core/sched_quota.hh"

namespace piso {

std::size_t
QuotaScheduler::readyCount(SpuId spu) const
{
    const auto *queue = ready_.find(spu);
    return queue ? queue->size() : 0;
}

void
QuotaScheduler::enqueueReady(Process *p)
{
    ready_[p->spu()].push_back(p);
    nonEmpty_.insert(p->spu());
}

Process *
QuotaScheduler::popBest(SpuId spu)
{
    auto *qp = ready_.find(spu);
    if (!qp || qp->empty())
        return nullptr;
    auto &queue = *qp;
    policyIters_ += queue.size();
    auto best = queue.begin();
    for (auto q = std::next(queue.begin()); q != queue.end(); ++q) {
        if (higherPriority(*q, *best))
            best = q;
    }
    Process *p = *best;
    queue.erase(best);
    noteQueueDrained(spu);
    return p;
}

Process *
QuotaScheduler::popBestForeign(SpuId exclude)
{
    Process *best = nullptr;
    if (eagerLoops_) {
        // Pre-PR-9 reference path: visit every SPU's queue, empty or
        // not (bench/ext_scale baseline). DenseTable iteration yields
        // (id, reference) pairs by value.
        // piso-lint: allow(hot-path-full-scan) -- eager-baseline
        // reference loop, compiled out of the default path.
        for (auto [spu, queue] : ready_) {
            ++policyIters_;
            if (spu == exclude)
                continue;
            for (Process *q : queue) {
                if (!best || higherPriority(q, best))
                    best = q;
            }
        }
    } else {
        // Only SPUs with waiting work can contribute a candidate, and
        // nonEmpty_ iterates them in the same ascending-id order the
        // full table scan would: the pick is identical.
        for (SpuId spu : nonEmpty_) {
            ++policyIters_;
            if (spu == exclude)
                continue;
            for (Process *q : ready_[spu]) {
                if (!best || higherPriority(q, best))
                    best = q;
            }
        }
    }
    if (best) {
        ready_[best->spu()].remove(best);
        noteQueueDrained(best->spu());
    }
    return best;
}

Process *
QuotaScheduler::selectNext(Cpu &cpu)
{
    return popBest(currentOwner(cpu));
}

bool
QuotaScheduler::eligibleIdle(const Cpu &cpu, const Process *p) const
{
    return currentOwner(cpu) == p->spu();
}

void
QuotaScheduler::policyTick()
{
    // Time-partitioned CPUs: when ownership rotates, evict a process
    // of the previous owner if the new owner has work.
    for (auto &c : cpus_) {
        if (c.timeShares.empty() || !c.running)
            continue;
        const SpuId owner = currentOwner(c);
        if (c.running->spu() != owner && readyCount(owner) > 0)
            preemptCpu(c);
    }
}

} // namespace piso
