#include "src/core/sched_quota.hh"

namespace piso {

std::size_t
QuotaScheduler::readyCount(SpuId spu) const
{
    const auto *queue = ready_.find(spu);
    return queue ? queue->size() : 0;
}

void
QuotaScheduler::enqueueReady(Process *p)
{
    ready_[p->spu()].push_back(p);
}

Process *
QuotaScheduler::popBest(SpuId spu)
{
    auto *qp = ready_.find(spu);
    if (!qp || qp->empty())
        return nullptr;
    auto &queue = *qp;
    auto best = queue.begin();
    for (auto q = std::next(queue.begin()); q != queue.end(); ++q) {
        if (higherPriority(*q, *best))
            best = q;
    }
    Process *p = *best;
    queue.erase(best);
    return p;
}

Process *
QuotaScheduler::popBestForeign(SpuId exclude)
{
    Process *best = nullptr;
    // DenseTable iteration yields (id, reference) pairs by value.
    for (auto [spu, queue] : ready_) {
        if (spu == exclude)
            continue;
        for (Process *q : queue) {
            if (!best || higherPriority(q, best))
                best = q;
        }
    }
    if (best)
        ready_[best->spu()].remove(best);
    return best;
}

Process *
QuotaScheduler::selectNext(Cpu &cpu)
{
    return popBest(currentOwner(cpu));
}

bool
QuotaScheduler::eligibleIdle(const Cpu &cpu, const Process *p) const
{
    return currentOwner(cpu) == p->spu();
}

void
QuotaScheduler::policyTick()
{
    // Time-partitioned CPUs: when ownership rotates, evict a process
    // of the previous owner if the new owner has work.
    for (auto &c : cpus_) {
        if (c.timeShares.empty() || !c.running)
            continue;
        const SpuId owner = currentOwner(c);
        if (c.running->spu() != owner && readyCount(owner) > 0)
            preemptCpu(c);
    }
}

} // namespace piso
