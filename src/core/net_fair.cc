#include "src/core/net_fair.hh"

#include "src/util/log.hh"

namespace piso {

FairNetScheduler::FairNetScheduler(Time halfLife)
    : tracker_(halfLife)
{
}

std::size_t
FairNetScheduler::pick(const std::deque<NetMessage> &queue, Time now)
{
    if (queue.empty())
        PISO_PANIC("fair net scheduler asked to pick from empty queue");
    policyIters_ += queue.size();

    // Fairest SPU with a queued message; FIFO within the SPU (the
    // deque preserves submission order).
    SpuId best = kNoSpu;
    double bestRatio = 0.0;
    for (const NetMessage &m : queue) {
        const double ratio = tracker_.hierarchicalRatio(m.spu, now);
        if (best == kNoSpu || ratio < bestRatio) {
            best = m.spu;
            bestRatio = ratio;
        }
    }
    for (std::size_t i = 0; i < queue.size(); ++i) {
        if (queue[i].spu == best)
            return i;
    }
    PISO_PANIC("fair net scheduler lost its chosen SPU");
}

void
FairNetScheduler::onComplete(const NetMessage &msg, Time now)
{
    tracker_.addSectors(msg.spu, msg.bytes, now);
}

} // namespace piso
