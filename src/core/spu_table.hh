#ifndef PISO_CORE_SPU_TABLE_HH
#define PISO_CORE_SPU_TABLE_HH

/**
 * @file
 * Dense tables keyed by small integer ids.
 *
 * SPU ids (and disk ids, cpu ids, ...) are small and dense: a machine
 * has a handful of them and they are allocated from 0 upward. Keying
 * hot per-tick state with std::map<SpuId, T> pays a red-black-tree
 * walk and a pointer chase per access; DenseTable stores the same
 * mapping in a flat vector indexed by id, so lookup is an array probe
 * and iteration is a linear scan that still visits entries in
 * ascending id order — the same order std::map iteration produced,
 * which keeps every output byte-identical after migration.
 */

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/sim/ids.hh"
#include "src/util/log.hh"
#include "src/util/error.hh"

namespace piso {

/**
 * Flat-vector map from a dense non-negative integer id to T.
 *
 * Semantics follow the std::map subset the simulator uses:
 * operator[] default-constructs missing entries, find returns nullptr
 * when absent, erase forgets an entry, and iteration yields
 * (id, reference) pairs in ascending id order. Negative ids are a
 * programming error and panic.
 */
template <typename Id, typename T>
class DenseTable
{
    static_assert(std::is_integral_v<Id> || std::is_enum_v<Id>,
                  "DenseTable keys must be integral ids");

  public:
    DenseTable() = default;

    /** Build from explicit (id, value) pairs (tests, partition specs). */
    DenseTable(std::initializer_list<std::pair<Id, T>> init)
    {
        for (const auto &[id, value] : init)
            (*this)[id] = value;
    }

    /** Access the entry for @p id, default-constructing it if absent. */
    T &
    operator[](Id id)
    {
        const std::size_t i = checkedIndex(id);
        if (i >= slots_.size())
            slots_.resize(i + 1);
        std::optional<T> &slot = slots_[i];
        if (!slot) {
            slot.emplace();
            ++count_;
        }
        return *slot;
    }

    /** @return the entry for @p id, or nullptr when absent. */
    T *
    find(Id id)
    {
        const std::size_t i = static_cast<std::size_t>(id);
        if (static_cast<long long>(id) < 0 || i >= slots_.size() ||
            !slots_[i])
            return nullptr;
        return &*slots_[i];
    }

    const T *
    find(Id id) const
    {
        return const_cast<DenseTable *>(this)->find(id);
    }

    /** True when an entry exists for @p id. */
    bool contains(Id id) const { return find(id) != nullptr; }

    /** 1 when an entry exists for @p id, else 0 (std::map::count). */
    std::size_t count(Id id) const { return contains(id) ? 1 : 0; }

    /** The entry for @p id; fatal when absent (std::map::at). */
    T &
    at(Id id)
    {
        T *p = find(id);
        if (!p)
            PISO_FATAL("dense table has no entry for id ",
                       static_cast<long long>(id));
        return *p;
    }

    const T &
    at(Id id) const
    {
        return const_cast<DenseTable *>(this)->at(id);
    }

    /**
     * Default-construct an entry for @p id if absent.
     * @return true when a new entry was created.
     */
    bool
    tryEmplace(Id id)
    {
        const std::size_t i = checkedIndex(id);
        if (i >= slots_.size())
            slots_.resize(i + 1);
        if (slots_[i])
            return false;
        slots_[i].emplace();
        ++count_;
        return true;
    }

    /** Forget the entry for @p id (no-op when absent). */
    void
    erase(Id id)
    {
        const std::size_t i = static_cast<std::size_t>(id);
        if (static_cast<long long>(id) < 0 || i >= slots_.size() ||
            !slots_[i])
            return;
        slots_[i].reset();
        --count_;
    }

    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }

    void
    clear()
    {
        slots_.clear();
        count_ = 0;
    }

    /** All present ids, ascending. */
    std::vector<Id>
    ids() const
    {
        std::vector<Id> out;
        out.reserve(count_);
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            if (slots_[i])
                out.push_back(static_cast<Id>(i));
        }
        return out;
    }

    template <bool Const>
    class Iter
    {
        using Vec = std::conditional_t<Const,
                                       const std::vector<std::optional<T>>,
                                       std::vector<std::optional<T>>>;
        using Ref = std::conditional_t<Const, const T &, T &>;

      public:
        Iter(Vec *v, std::size_t i) : v_(v), i_(i) { skipEmpty(); }

        std::pair<Id, Ref>
        operator*() const
        {
            return {static_cast<Id>(i_), *(*v_)[i_]};
        }

        Iter &
        operator++()
        {
            ++i_;
            skipEmpty();
            return *this;
        }

        bool operator==(const Iter &o) const { return i_ == o.i_; }
        bool operator!=(const Iter &o) const { return i_ != o.i_; }

      private:
        void
        skipEmpty()
        {
            while (i_ < v_->size() && !(*v_)[i_])
                ++i_;
        }

        Vec *v_;
        std::size_t i_;
    };

    /**
     * Serialise the table: present-entry count, then (id, value) pairs
     * in ascending id order. @p saveValue is invoked as
     * saveValue(writer, const T&). Templated on the writer so this
     * header stays independent of src/sim/checkpoint.hh.
     */
    template <typename W, typename Fn>
    void
    saveTable(W &w, Fn &&saveValue) const
    {
        w.u64(count_);
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            if (slots_[i]) {
                w.u64(i);
                saveValue(w, *slots_[i]);
            }
        }
    }

    /** Rebuild from saveTable() output; @p loadValue fills each
     *  default-constructed entry as loadValue(reader, T&). */
    template <typename R, typename Fn>
    void
    loadTable(R &r, Fn &&loadValue)
    {
        clear();
        const std::uint64_t n = r.u64();
        for (std::uint64_t k = 0; k < n; ++k) {
            const auto id = static_cast<Id>(r.u64());
            loadValue(r, (*this)[id]);
        }
    }

    using iterator = Iter<false>;
    using const_iterator = Iter<true>;

    iterator begin() { return iterator(&slots_, 0); }
    iterator end() { return iterator(&slots_, slots_.size()); }
    const_iterator begin() const { return const_iterator(&slots_, 0); }
    const_iterator end() const
    {
        return const_iterator(&slots_, slots_.size());
    }

  private:
    std::size_t
    checkedIndex(Id id) const
    {
        PISO_INVARIANT(static_cast<long long>(id) >= 0,
                       "dense table id is negative: ",
                       static_cast<long long>(id));
        return static_cast<std::size_t>(id);
    }

    std::vector<std::optional<T>> slots_;
    std::size_t count_ = 0;
};

/** Per-SPU state table; the simulator's dominant map shape. */
template <typename T>
using SpuTable = DenseTable<SpuId, T>;

} // namespace piso

#endif // PISO_CORE_SPU_TABLE_HH
