#include "src/core/disk_fair.hh"

#include <algorithm>
#include <cmath>
#include <set>

// piso-lint: allow(layering) -- the PIso disk policy deliberately
// reuses the OS C-SCAN ordering helper as its within-pass order; see
// docs/static-analysis.md (layering) for the policy/mechanism seam.
#include "src/os/cscan.hh"
#include "src/util/log.hh"

namespace piso {

DiskBandwidthTracker::DiskBandwidthTracker(Time halfLife)
    : halfLife_(halfLife)
{
    if (halfLife_ == 0)
        PISO_FATAL("bandwidth decay half-life must be non-zero");
}

double
DiskBandwidthTracker::decayed(const Entry &e, Time now) const
{
    if (now <= e.last || e.count == 0.0)
        return e.count;
    const double halves = static_cast<double>(now - e.last) /
                          static_cast<double>(halfLife_);
    return e.count * std::exp2(-halves);
}

void
DiskBandwidthTracker::setShare(SpuId spu, double share)
{
    if (share <= 0.0)
        PISO_FATAL("bandwidth share must be positive, got ", share);
    entries_.tryEmplace(spu);
    shares_.setShare(spu, share);
}

void
DiskBandwidthTracker::setParent(SpuId spu, SpuId parent)
{
    if (parent == kNoSpu) {
        parents_.erase(spu);
        return;
    }
    entries_.tryEmplace(spu);
    entries_.tryEmplace(parent);
    parents_[spu] = parent;
}

void
DiskBandwidthTracker::addSectors(SpuId spu, std::uint64_t sectors,
                                 Time now)
{
    for (SpuId n = spu; n != kNoSpu;) {
        Entry &e = entries_[n];
        e.count = decayed(e, now) + static_cast<double>(sectors);
        e.last = now;
        const SpuId *p = parents_.find(n);
        n = p ? *p : kNoSpu;
    }
}

double
DiskBandwidthTracker::usage(SpuId spu, Time now) const
{
    const Entry *e = entries_.find(spu);
    return e ? decayed(*e, now) : 0.0;
}

double
DiskBandwidthTracker::ratio(SpuId spu, Time now) const
{
    const Entry *e = entries_.find(spu);
    if (!e)
        return 0.0;
    // shares_.share() defaults to 1 for SPUs never given a share.
    return decayed(*e, now) / shares_.share(spu);
}

double
DiskBandwidthTracker::hierarchicalRatio(SpuId spu, Time now) const
{
    double worst = ratio(spu, now);
    for (const SpuId *p = parents_.find(spu); p && *p != kNoSpu;
         p = parents_.find(*p)) {
        worst = std::max(worst, ratio(*p, now));
    }
    return worst;
}

FairDiskScheduler::FairDiskScheduler(Time halfLife, Time sharedWait)
    : tracker_(halfLife), sharedWait_(sharedWait)
{
}

void
FairDiskScheduler::onComplete(const DiskRequest &req, Time now)
{
    // Shared writes are charged to the user SPUs whose pages they
    // carried (Section 3.3); everything else to the request's SPU.
    if (!req.charges.empty()) {
        // piso-lint: allow(hot-path-full-scan) -- bounded by the SPUs
        // charged for this one request, not the SPU population.
        for (const auto &[spu, sectors] : req.charges)
            tracker_.addSectors(spu, sectors, now);
    } else {
        tracker_.addSectors(req.spu, req.sectors, now);
    }
}

bool
FairDiskScheduler::sharedEligible(const std::deque<DiskRequest> &queue,
                                  Time now) const
{
    bool userQueued = false;
    Time oldestShared = kTimeNever;
    for (const DiskRequest &r : queue) {
        if (r.spu == kSharedSpu || r.spu == kKernelSpu)
            oldestShared = std::min(oldestShared, r.issueTime);
        else
            userQueued = true;
    }
    if (oldestShared == kTimeNever)
        return false;
    if (!userQueued)
        return true;
    return now - oldestShared > sharedWait_;
}

std::size_t
IsoDiskScheduler::pick(const std::deque<DiskRequest> &queue,
                       std::uint64_t /* headSector */, Time now)
{
    if (queue.empty())
        PISO_PANIC("Iso disk policy asked to pick from an empty queue");
    policyIters_ += queue.size();

    const bool shared_ok = sharedEligible(queue, now);

    // Lowest usage-to-share ratio among user SPUs with queued
    // requests; FIFO within the SPU.
    SpuId bestSpu = kNoSpu;
    double bestRatio = 0.0;
    for (const DiskRequest &r : queue) {
        if (r.spu == kSharedSpu || r.spu == kKernelSpu)
            continue;
        const double ratio = tracker_.hierarchicalRatio(r.spu, now);
        if (bestSpu == kNoSpu || ratio < bestRatio) {
            bestSpu = r.spu;
            bestRatio = ratio;
        }
    }
    if (bestSpu == kNoSpu || shared_ok) {
        // Only shared requests, or shared starvation guard fired:
        // oldest shared request first.
        std::size_t pick = queue.size();
        for (std::size_t i = 0; i < queue.size(); ++i) {
            const DiskRequest &r = queue[i];
            if (r.spu != kSharedSpu && r.spu != kKernelSpu)
                continue;
            if (pick == queue.size() ||
                r.issueTime < queue[pick].issueTime)
                pick = i;
        }
        if (pick != queue.size())
            return pick;
    }

    for (std::size_t i = 0; i < queue.size(); ++i) {
        if (queue[i].spu == bestSpu)
            return i; // deque preserves FIFO order per SPU
    }
    PISO_PANIC("Iso disk policy lost its chosen SPU");
}

PisoDiskScheduler::PisoDiskScheduler(double bwThresholdSectors,
                                     Time halfLife, Time sharedWait)
    : FairDiskScheduler(halfLife, sharedWait),
      threshold_(bwThresholdSectors)
{
    if (threshold_ < 0.0)
        PISO_FATAL("BW difference threshold must be >= 0");
}

std::size_t
PisoDiskScheduler::pick(const std::deque<DiskRequest> &queue,
                        std::uint64_t headSector, Time now)
{
    if (queue.empty())
        PISO_PANIC("PIso disk policy asked to pick from an empty queue");
    policyIters_ += queue.size();

    // Ratios of the user SPUs with active requests.
    SpuTable<double> ratios;
    for (const DiskRequest &r : queue) {
        if (r.spu == kSharedSpu || r.spu == kKernelSpu)
            continue;
        if (!ratios.contains(r.spu))
            ratios[r.spu] = tracker_.hierarchicalRatio(r.spu, now);
    }

    if (ratios.empty() || sharedEligible(queue, now)) {
        // Service shared/kernel requests by head position among
        // themselves.
        const std::size_t idx = CScanScheduler::pickAmong(
            queue, headSector, [](const DiskRequest &r) {
                return r.spu == kSharedSpu || r.spu == kKernelSpu;
            });
        if (idx != queue.size())
            return idx;
    }

    double avg = 0.0;
    // piso-lint: allow(hot-path-full-scan) -- 'ratios' holds only the
    // SPUs with queued requests on this disk: already O(active).
    for (const auto &[spu, ratio] : ratios)
        avg += ratio;
    avg /= static_cast<double>(ratios.size());

    // Fairness criterion (Section 3.3): an SPU fails when its ratio
    // exceeds the average by more than the BW difference threshold.
    // The minimum-ratio SPU always passes, so a pick always exists.
    const double cutoff = avg + threshold_;
    std::size_t idx = CScanScheduler::pickAmong(
        queue, headSector, [&](const DiskRequest &r) {
            const double *ratio = ratios.find(r.spu);
            return ratio && *ratio <= cutoff;
        });
    if (idx == queue.size()) {
        // Numerical corner (all user SPUs above cutoff): fall back to
        // plain C-SCAN over user requests.
        idx = CScanScheduler::pickAmong(
            queue, headSector, [&](const DiskRequest &r) {
                return ratios.contains(r.spu);
            });
    }
    if (idx == queue.size()) {
        // Only shared requests remain.
        idx = CScanScheduler::pickAmong(queue, headSector, nullptr);
    }
    return idx;
}

} // namespace piso
