#include "src/core/spu.hh"

#include <algorithm>
#include <cmath>

#include "src/core/ledger.hh"
#include "src/util/log.hh"
#include "src/util/error.hh"

namespace piso {

SpuManager::SpuManager()
{
    Spu kernel;
    kernel.id = kKernelSpu;
    kernel.name = "kernel";
    spus_[kKernelSpu] = kernel;

    Spu shared;
    shared.id = kSharedSpu;
    shared.name = "shared";
    spus_[kSharedSpu] = shared;
}

SpuId
SpuManager::create(const SpuSpec &spec)
{
    if (!(spec.share > 0.0) || !std::isfinite(spec.share))
        PISO_FATAL("SPU '", spec.name, "' must have a positive finite ",
                   "share, got ", spec.share);
    if (spec.parent != kNoSpu) {
        const Spu *p = spus_.find(spec.parent);
        if (!p || spec.parent < kFirstUserSpu)
            PISO_FATAL("SPU '", spec.name, "' declared under unknown ",
                       "parent SPU ", spec.parent);
    }
    Spu s;
    s.id = next_++;
    s.name = spec.name.empty() ? "spu" + std::to_string(s.id) : spec.name;
    s.share = spec.share;
    s.homeDisk = spec.homeDisk;
    s.parent = spec.parent;
    spus_[s.id] = s;
    if (spec.parent == kNoSpu)
        topLevel_.push_back(s.id);
    else
        spus_[spec.parent].children.push_back(s.id);
    ++version_;
    return s.id;
}

void
SpuManager::destroy(SpuId spu)
{
    if (spu == kKernelSpu || spu == kSharedSpu)
        PISO_FATAL("the default SPUs cannot be destroyed");
    const Spu *s = spus_.find(spu);
    if (!s)
        PISO_FATAL("destroying unknown SPU ", spu);
    if (!s->children.empty())
        PISO_FATAL("destroying SPU '", s->name, "' which still has ",
                   s->children.size(), " child SPUs");
    std::vector<SpuId> &siblings =
        s->parent == kNoSpu ? topLevel_ : spus_[s->parent].children;
    siblings.erase(std::remove(siblings.begin(), siblings.end(), spu),
                   siblings.end());
    spus_.erase(spu);
    ++version_;
}

void
SpuManager::suspend(SpuId spu)
{
    Spu *s = spus_.find(spu);
    if (!s || spu < kFirstUserSpu)
        PISO_FATAL("cannot suspend SPU ", spu);
    s->state = SpuState::Suspended;
    ++version_;
}

void
SpuManager::resume(SpuId spu)
{
    Spu *s = spus_.find(spu);
    if (!s || spu < kFirstUserSpu)
        PISO_FATAL("cannot resume SPU ", spu);
    s->state = SpuState::Active;
    ++version_;
}

const Spu &
SpuManager::spu(SpuId id) const
{
    const Spu *s = spus_.find(id);
    if (!s)
        PISO_FATAL("unknown SPU ", id);
    return *s;
}

bool
SpuManager::exists(SpuId id) const
{
    return spus_.contains(id);
}

SpuId
SpuManager::parentOf(SpuId id) const
{
    return spu(id).parent;
}

const std::vector<SpuId> &
SpuManager::childrenOf(SpuId parent) const
{
    return parent == kNoSpu ? topLevel_ : spu(parent).children;
}

bool
SpuManager::isGroup(SpuId id) const
{
    return !spu(id).children.empty();
}

std::vector<SpuId>
SpuManager::pathOf(SpuId id) const
{
    std::vector<SpuId> path;
    for (SpuId n = id; n != kNoSpu; n = spu(n).parent)
        path.push_back(n);
    std::reverse(path.begin(), path.end());
    return path;
}

bool
SpuManager::hierarchical() const
{
    // piso-lint: allow(hot-path-full-scan) -- setup/report-time query,
    // not an event callback.
    for (const auto &[id, s] : spus_) {
        if (id >= kFirstUserSpu && s.parent != kNoSpu)
            return true;
    }
    return false;
}

bool
SpuManager::pathActive(SpuId id) const
{
    for (SpuId n = id; n != kNoSpu; n = spu(n).parent) {
        if (spu(n).state != SpuState::Active)
            return false;
    }
    return true;
}

void
SpuManager::refreshCaches() const
{
    if (cacheVersion_ == version_)
        return;
    userCache_.clear();
    leafCache_.clear();
    // piso-lint: allow(hot-path-full-scan) -- rebuilt once per topology
    // change and served from the cache in between.
    for (const auto &[id, s] : spus_) {
        if (id < kFirstUserSpu || !pathActive(id))
            continue;
        if (s.state == SpuState::Active)
            userCache_.push_back(id);
        if (s.children.empty())
            leafCache_.push_back(id);
    }
    cacheVersion_ = version_;
}

const std::vector<SpuId> &
SpuManager::userSpus() const
{
    refreshCaches();
    return userCache_;
}

const std::vector<SpuId> &
SpuManager::leafSpus() const
{
    refreshCaches();
    return leafCache_;
}

double
SpuManager::siblingTotal(SpuId parent) const
{
    // Suspended siblings contribute +0.0 rather than being skipped:
    // the flat registry kept suspended SPUs in its share ledger with
    // share 0, and the float sum must stay identical.
    double total = 0.0;
    for (SpuId c : childrenOf(parent)) {
        const Spu &s = spu(c);
        total += s.state == SpuState::Active ? s.share : 0.0;
    }
    return total;
}

double
SpuManager::shareOf(SpuId id) const
{
    const Spu &s = this->spu(id);
    if (s.state != SpuState::Active)
        return 0.0;
    if (id < kFirstUserSpu) {
        // The default SPUs do not participate in the user contract;
        // report their weight against the top level (callers never
        // rely on this).
        const double total = siblingTotal(kNoSpu);
        return total == 0.0 ? 0.0 : s.share / total;
    }
    // Product of sibling-normalised shares from the top level down.
    // 1.0 * x == x exactly, so a depth-1 tree yields precisely the
    // flat share / Σ shares value.
    double f = 1.0;
    for (SpuId n : pathOf(id)) {
        const Spu &node = spu(n);
        if (node.state != SpuState::Active)
            return 0.0;
        const double total = siblingTotal(node.parent);
        if (total == 0.0)
            return 0.0;
        f = f * (node.share / total);
    }
    return f;
}

SpuTable<double>
SpuManager::cpuShares() const
{
    SpuTable<double> shares;
    for (SpuId id : leafSpus())
        shares[id] = shareOf(id);
    return shares;
}

void
SpuManager::entitleUnder(SpuId parent, std::uint64_t amount,
                         SpuTable<std::uint64_t> &out) const
{
    const double total = siblingTotal(parent);
    if (total == 0.0)
        return;
    for (SpuId c : childrenOf(parent)) {
        const Spu &s = spu(c);
        if (s.state != SpuState::Active)
            continue;
        const std::uint64_t part =
            ResourceLedger::entitledFloor(s.share / total, amount);
        if (s.children.empty())
            out[c] = part;
        else
            entitleUnder(c, part, out);
    }
}

SpuTable<std::uint64_t>
SpuManager::entitleLeaves(std::uint64_t divisible) const
{
    SpuTable<std::uint64_t> out;
    entitleUnder(kNoSpu, divisible, out);
    return out;
}

void
SpuManager::buildSubtree(SpuId parent, std::size_t node,
                         ShareTree &tree) const
{
    for (SpuId c : childrenOf(parent)) {
        const Spu &s = spu(c);
        const double share =
            s.state == SpuState::Active ? s.share : 0.0;
        const std::size_t child = tree.add(node, c, share);
        buildSubtree(c, child, tree);
    }
}

ShareTree
SpuManager::shareTree() const
{
    ShareTree tree;
    buildSubtree(kNoSpu, ShareTree::kRoot, tree);
    return tree;
}

void
SpuManager::save(CkptWriter &w) const
{
    const std::vector<SpuId> all = spus_.ids();
    w.u64(all.size());
    for (SpuId id : all) {
        w.u64(static_cast<std::uint64_t>(id));
        w.u8(spu(id).state == SpuState::Suspended ? 1 : 0);
    }
    w.u64(static_cast<std::uint64_t>(next_));
}

void
SpuManager::load(CkptReader &r)
{
    const std::uint64_t n = r.u64();
    if (n != spus_.ids().size()) {
        throw ConfigError("checkpoint SPU count " + std::to_string(n) +
                          " does not match the replayed configuration");
    }
    for (std::uint64_t i = 0; i < n; ++i) {
        const SpuId id = static_cast<SpuId>(r.u64());
        const std::uint8_t suspended = r.u8();
        if (!exists(id)) {
            throw ConfigError(
                "checkpoint references unknown SPU id " +
                std::to_string(static_cast<std::uint64_t>(id)));
        }
        spus_[id].state = suspended != 0 ? SpuState::Suspended
                                         : SpuState::Active;
    }
    next_ = static_cast<SpuId>(r.u64());
    // The restored states may differ from anything observed during
    // setup replay; invalidate caches and captured versions.
    ++version_;
}

} // namespace piso
