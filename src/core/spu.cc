#include "src/core/spu.hh"

#include "src/sim/log.hh"

namespace piso {

SpuManager::SpuManager()
{
    Spu kernel;
    kernel.id = kKernelSpu;
    kernel.name = "kernel";
    spus_[kKernelSpu] = kernel;

    Spu shared;
    shared.id = kSharedSpu;
    shared.name = "shared";
    spus_[kSharedSpu] = shared;
}

SpuId
SpuManager::create(const SpuSpec &spec)
{
    if (spec.share <= 0.0)
        PISO_FATAL("SPU '", spec.name, "' has non-positive share ",
                   spec.share);
    Spu s;
    s.id = next_++;
    s.name = spec.name.empty() ? "spu" + std::to_string(s.id) : spec.name;
    s.share = spec.share;
    s.homeDisk = spec.homeDisk;
    spus_[s.id] = s;
    shares_.setShare(s.id, s.share);
    return s.id;
}

void
SpuManager::destroy(SpuId spu)
{
    if (spu == kKernelSpu || spu == kSharedSpu)
        PISO_FATAL("the default SPUs cannot be destroyed");
    if (!spus_.contains(spu))
        PISO_FATAL("destroying unknown SPU ", spu);
    spus_.erase(spu);
    shares_.forget(spu);
}

void
SpuManager::suspend(SpuId spu)
{
    Spu *s = spus_.find(spu);
    if (!s || spu < kFirstUserSpu)
        PISO_FATAL("cannot suspend SPU ", spu);
    s->state = SpuState::Suspended;
    shares_.setShare(spu, 0.0);
}

void
SpuManager::resume(SpuId spu)
{
    Spu *s = spus_.find(spu);
    if (!s || spu < kFirstUserSpu)
        PISO_FATAL("cannot resume SPU ", spu);
    s->state = SpuState::Active;
    shares_.setShare(spu, s->share);
}

const Spu &
SpuManager::spu(SpuId id) const
{
    const Spu *s = spus_.find(id);
    if (!s)
        PISO_FATAL("unknown SPU ", id);
    return *s;
}

bool
SpuManager::exists(SpuId id) const
{
    return spus_.contains(id);
}

std::vector<SpuId>
SpuManager::userSpus() const
{
    std::vector<SpuId> out;
    for (const auto &[id, s] : spus_) {
        if (id >= kFirstUserSpu && s.state == SpuState::Active)
            out.push_back(id);
    }
    return out;
}

double
SpuManager::shareOf(SpuId spu) const
{
    const Spu &s = this->spu(spu);
    if (s.state != SpuState::Active)
        return 0.0;
    if (spu < kFirstUserSpu) {
        // The default SPUs do not participate in the user contract;
        // report their weight against it (callers never rely on this).
        const double total = shares_.totalShare();
        return total == 0.0 ? 0.0 : s.share / total;
    }
    return shares_.normalizedShare(spu);
}

SpuTable<double>
SpuManager::cpuShares() const
{
    SpuTable<double> shares;
    for (SpuId id : userSpus())
        shares[id] = shareOf(id);
    return shares;
}

} // namespace piso
