#include "src/core/scheme_profile.hh"

#include <sstream>

#include "src/util/log.hh"

namespace piso {

SchemeProfile
SchemeProfile::uniform(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Smp:
        return {CpuPolicy::Smp, MemoryPolicy::Smp,
                DiskPolicy::HeadPosition, NetPolicy::Smp};
      case Scheme::Quota:
        return {CpuPolicy::Quota, MemoryPolicy::Quota,
                DiskPolicy::BlindFair, NetPolicy::Quota};
      case Scheme::PIso:
        return {CpuPolicy::PIso, MemoryPolicy::PIso,
                DiskPolicy::FairPosition, NetPolicy::PIso};
    }
    PISO_PANIC("unknown scheme ", static_cast<int>(scheme));
}

std::optional<Scheme>
SchemeProfile::asUniform() const
{
    for (Scheme s : {Scheme::Smp, Scheme::Quota, Scheme::PIso}) {
        if (*this == uniform(s))
            return s;
    }
    return std::nullopt;
}

std::string
SchemeProfile::str() const
{
    std::ostringstream os;
    os << "cpu=" << policyName(cpu) << " memory=" << policyName(memory)
       << " disk_policy=" << policySpecName(disk)
       << " network=" << policyName(net);
    return os.str();
}

const PolicyRegistry &
PolicyRegistry::instance()
{
    static const PolicyRegistry registry;
    return registry;
}

PolicyRegistry::PolicyRegistry()
{
    const auto cpu = [](CpuPolicy p) { return static_cast<int>(p); };
    add(PolicyResource::Cpu, "smp", cpu(CpuPolicy::Smp), true);
    add(PolicyResource::Cpu, "quota", cpu(CpuPolicy::Quota), true);
    add(PolicyResource::Cpu, "quo", cpu(CpuPolicy::Quota), false);
    add(PolicyResource::Cpu, "piso", cpu(CpuPolicy::PIso), true);

    const auto mem = [](MemoryPolicy p) { return static_cast<int>(p); };
    add(PolicyResource::Memory, "smp", mem(MemoryPolicy::Smp), true);
    add(PolicyResource::Memory, "quota", mem(MemoryPolicy::Quota), true);
    add(PolicyResource::Memory, "quo", mem(MemoryPolicy::Quota), false);
    add(PolicyResource::Memory, "piso", mem(MemoryPolicy::PIso), true);

    // Disk keeps the §4.5 names as canonical and accepts the generic
    // smp/quota spellings as aliases, so `scheme=`-style uniformity
    // ("everything quota") can be written per-resource too.
    const auto disk = [](DiskPolicy p) { return static_cast<int>(p); };
    add(PolicyResource::Disk, "pos", disk(DiskPolicy::HeadPosition),
        true);
    add(PolicyResource::Disk, "iso", disk(DiskPolicy::BlindFair), true);
    add(PolicyResource::Disk, "piso", disk(DiskPolicy::FairPosition),
        true);
    add(PolicyResource::Disk, "smp", disk(DiskPolicy::HeadPosition),
        false);
    add(PolicyResource::Disk, "quota", disk(DiskPolicy::BlindFair),
        false);
    add(PolicyResource::Disk, "quo", disk(DiskPolicy::BlindFair),
        false);
    add(PolicyResource::Disk, "default", disk(DiskPolicy::SchemeDefault),
        true);

    const auto net = [](NetPolicy p) { return static_cast<int>(p); };
    add(PolicyResource::Net, "smp", net(NetPolicy::Smp), true);
    add(PolicyResource::Net, "quota", net(NetPolicy::Quota), true);
    add(PolicyResource::Net, "quo", net(NetPolicy::Quota), false);
    add(PolicyResource::Net, "piso", net(NetPolicy::PIso), true);
    add(PolicyResource::Net, "fifo", net(NetPolicy::Smp), false);
}

void
PolicyRegistry::add(PolicyResource resource, const std::string &name,
                    int value, bool canonical)
{
    for (const Binding &b : bindings_) {
        if (b.resource == resource && b.name == name)
            PISO_PANIC("policy name '", name, "' registered twice");
    }
    bindings_.push_back(Binding{resource, name, value, canonical});
}

std::optional<int>
PolicyRegistry::tryParse(PolicyResource resource,
                         const std::string &name) const
{
    for (const Binding &b : bindings_) {
        if (b.resource == resource && b.name == name)
            return b.value;
    }
    return std::nullopt;
}

const char *
PolicyRegistry::canonicalName(PolicyResource resource, int value) const
{
    for (const Binding &b : bindings_) {
        if (b.resource == resource && b.value == value && b.canonical)
            return b.name.c_str();
    }
    return "?";
}

std::vector<std::string>
PolicyRegistry::names(PolicyResource resource) const
{
    std::vector<std::string> out;
    for (const Binding &b : bindings_) {
        if (b.resource == resource)
            out.push_back(b.name);
    }
    return out;
}

namespace {

std::string
joinNames(PolicyResource resource)
{
    std::string out;
    for (const std::string &n : PolicyRegistry::instance().names(resource)) {
        if (!out.empty())
            out += '|';
        out += n;
    }
    return out;
}

const char *
resourceLabel(PolicyResource resource)
{
    switch (resource) {
      case PolicyResource::Cpu:
        return "cpu";
      case PolicyResource::Memory:
        return "memory";
      case PolicyResource::Disk:
        return "disk";
      case PolicyResource::Net:
        return "network";
    }
    return "?";
}

int
parseOrDie(PolicyResource resource, const std::string &name)
{
    const auto v = PolicyRegistry::instance().tryParse(resource, name);
    if (!v) {
        PISO_FATAL("unknown ", resourceLabel(resource), " policy '",
                   name, "' (", joinNames(resource), ")");
    }
    return *v;
}

} // namespace

const char *
policyName(CpuPolicy p)
{
    return PolicyRegistry::instance().canonicalName(
        PolicyResource::Cpu, static_cast<int>(p));
}

const char *
policyName(MemoryPolicy p)
{
    return PolicyRegistry::instance().canonicalName(
        PolicyResource::Memory, static_cast<int>(p));
}

const char *
policyName(NetPolicy p)
{
    return PolicyRegistry::instance().canonicalName(
        PolicyResource::Net, static_cast<int>(p));
}

const char *
policySpecName(DiskPolicy p)
{
    return PolicyRegistry::instance().canonicalName(
        PolicyResource::Disk, static_cast<int>(p));
}

Scheme
parseScheme(const std::string &name)
{
    if (name == "smp")
        return Scheme::Smp;
    if (name == "quota" || name == "quo")
        return Scheme::Quota;
    if (name == "piso")
        return Scheme::PIso;
    PISO_FATAL("unknown scheme '", name, "' (smp|quota|piso)");
}

CpuPolicy
parseCpuPolicy(const std::string &name)
{
    return static_cast<CpuPolicy>(parseOrDie(PolicyResource::Cpu, name));
}

MemoryPolicy
parseMemoryPolicy(const std::string &name)
{
    return static_cast<MemoryPolicy>(
        parseOrDie(PolicyResource::Memory, name));
}

DiskPolicy
parseDiskPolicy(const std::string &name)
{
    return static_cast<DiskPolicy>(
        parseOrDie(PolicyResource::Disk, name));
}

NetPolicy
parseNetPolicy(const std::string &name)
{
    return static_cast<NetPolicy>(parseOrDie(PolicyResource::Net, name));
}

} // namespace piso
