#ifndef PISO_CORE_LEDGER_HH
#define PISO_CORE_LEDGER_HH

/**
 * @file
 * Per-SPU resource accounting — the entitled / allowed / used triple
 * of Section 2.3 generalised to any countable resource.
 *
 * Every resource policy in the system needs the same three pieces of
 * bookkeeping: a relative *share* per SPU (normalised over the
 * registered SPUs), integer *levels* charged against a capacity, and
 * the entitlement formula `share x divisible`. Before this class the
 * bookkeeping was duplicated in the SPU registry (share
 * normalisation), the VM layer (memory levels), and the
 * bandwidth trackers (per-SPU shares); they now all account through
 * one ResourceLedger each.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/share_tree.hh"
#include "src/core/spu_table.hh"
#include "src/sim/checkpoint.hh"
#include "src/sim/ids.hh"

namespace piso {

/** The three per-resource levels of the SPU abstraction (§2.3). */
struct ResourceLevels
{
    std::uint64_t entitled = 0;  //!< initial share from the contract
    std::uint64_t allowed = 0;   //!< current cap (moves with sharing)
    std::uint64_t used = 0;      //!< units currently held
};

/**
 * Shares and entitled/allowed/used levels of one resource, keyed by
 * SPU. Pure bookkeeping: the ledger never decides policy, it only
 * keeps the counts honest (a charge beyond `allowed` is refused, a
 * release below zero is a panic).
 */
class ResourceLedger
{
  public:
    /** @param resource Name used in panic messages ("memory", ...). */
    explicit ResourceLedger(std::string resource = "resource");

    /** @name Capacity */
    /// @{
    void setCapacity(std::uint64_t units) { capacity_ = units; }
    std::uint64_t capacity() const { return capacity_; }
    /// @}

    /** @name SPU registry */
    /// @{
    /** Make @p spu known with zero levels and share 1 (idempotent). */
    void registerSpu(SpuId spu);

    /** Drop @p spu from the ledger entirely. */
    void forget(SpuId spu);

    bool knows(SpuId spu) const;

    /** All registered SPU ids, ascending. */
    std::vector<SpuId> spus() const;
    /// @}

    /** @name Shares */
    /// @{
    /** Relative share of @p spu (>= 0; registers the SPU if new). */
    void setShare(SpuId spu, double share);

    /** Raw share of @p spu (1 if unregistered — the neutral weight). */
    double share(SpuId spu) const;

    /** Sum of raw shares over registered SPUs (ascending id order, so
     *  the floating-point sum is reproducible). */
    double totalShare() const;

    /** share / totalShare, or 0 when the total is zero. */
    double normalizedShare(SpuId spu) const;
    /// @}

    /** @name Levels */
    /// @{
    void setEntitled(SpuId spu, std::uint64_t units);
    void setAllowed(SpuId spu, std::uint64_t units);
    const ResourceLevels &levels(SpuId spu) const;

    /** True when used >= allowed. */
    bool atLimit(SpuId spu) const;

    /** Units held beyond the allowed level (0 if within). */
    std::uint64_t overAllowed(SpuId spu) const;

    /** Charge one unit iff used < allowed; false otherwise. */
    bool tryUse(SpuId spu);

    /** Unconditional charge (caller already holds the units). */
    void use(SpuId spu, std::uint64_t units = 1);

    /** Return units; panics below zero. */
    void release(SpuId spu, std::uint64_t units = 1);

    /** Move units from one SPU's account to another's. */
    void transfer(SpuId from, SpuId to, std::uint64_t units = 1);

    /** Sum of used over registered SPUs. */
    std::uint64_t usedTotal() const;

    /** Sum of entitled over registered SPUs. */
    std::uint64_t entitledTotal() const;
    /// @}

    /** @name Entitlement arithmetic */
    /// @{
    /**
     * floor(share x divisible) — the entitlement formula shared by the
     * Quota memory split and the PIso sharing policy (each SPU rounds
     * down; the remainder stays unassigned).
     */
    static std::uint64_t entitledFloor(double share,
                                       std::uint64_t divisible);

    /**
     * Split @p divisible among @p shares so the parts sum *exactly*
     * to it: floor allocation first, then the remainder distributed
     * one unit at a time by largest fractional part (ties to the
     * lower index). Zero shares receive nothing; an all-zero (or
     * empty) share vector returns all zeros — never a division by
     * zero, even when every SPU at a level is suspended.
     *
     * This is the one largest-remainder implementation in the system;
     * entitleByShare (flat and tree) and the per-level hierarchy
     * policies all stand on it.
     */
    static std::vector<std::uint64_t>
    apportion(const std::vector<double> &shares,
              std::uint64_t divisible);

    /**
     * Recompute every entitlement from the registered shares so the
     * entitlements sum *exactly* to @p divisible: floor allocation
     * first, then the remainder distributed one unit at a time by
     * largest fractional part (ties to the lower SPU id). SPUs with
     * zero share receive nothing.
     */
    void entitleByShare(std::uint64_t divisible);

    /**
     * Hierarchical entitlement: walk @p tree from the root, splitting
     * each node's amount exactly among its children by their
     * sibling-normalised shares (the same largest-remainder rule as
     * the flat overload, ties to the earlier sibling). Every SPU node
     * — internal and leaf — is registered and receives its subtree's
     * entitlement, so the exact-sum guarantee holds at *every* level:
     * a node's entitlement equals the sum of its children's whenever
     * any child has positive share. A depth-1 tree reproduces the
     * flat overload bit for bit.
     */
    void entitleByShare(const ShareTree &tree, std::uint64_t divisible);
    /// @}

    /** @name Checkpoint */
    /// @{
    void
    save(CkptWriter &w) const
    {
        w.u64(capacity_);
        spus_.saveTable(w, [](CkptWriter &wr, const Entry &e) {
            wr.u64(e.levels.entitled);
            wr.u64(e.levels.allowed);
            wr.u64(e.levels.used);
            wr.f64(e.share);
        });
    }

    void
    load(CkptReader &r)
    {
        capacity_ = r.u64();
        spus_.loadTable(r, [](CkptReader &rd, Entry &e) {
            e.levels.entitled = rd.u64();
            e.levels.allowed = rd.u64();
            e.levels.used = rd.u64();
            e.share = rd.f64();
        });
    }
    /// @}

  private:
    struct Entry
    {
        ResourceLevels levels;
        double share = 1.0;
    };

    const Entry &entry(SpuId spu) const;
    Entry &entry(SpuId spu);

    // piso-lint: allow(checkpoint-field-coverage) -- the diagnostic
    // label, fixed at construction; identical after setup replay.
    std::string resource_;
    SpuTable<Entry> spus_;
    std::uint64_t capacity_ = 0;
};

} // namespace piso

#endif // PISO_CORE_LEDGER_HH
