#ifndef PISO_CORE_MEM_POLICY_HH
#define PISO_CORE_MEM_POLICY_HH

/**
 * @file
 * The memory sharing policy of Section 3.2.
 *
 * Periodically recomputes each SPU's *entitled* level (its share of
 * memory net of kernel/shared usage and the Reserve Threshold) and
 * moves the *allowed* levels: SPUs under memory pressure receive the
 * system's idle pages, less the Reserve Threshold that hides the
 * revocation cost. When a lender wants its pages back, the borrowers'
 * allowed levels fall and the pageout daemon reclaims the excess.
 */

#include <cstdint>

#include "src/core/spu.hh"
#include "src/os/vm.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/time.hh"

namespace piso {

/** Tunables of the sharing policy. */
struct MemPolicyConfig
{
    /** How often levels are recomputed. */
    Time period = 100 * kMs;

    /** Fraction of total memory kept free (the paper picks 8%, the
     *  value IRIX uses to decide it is low on memory). */
    double reserveFraction = 0.08;
};

/** Periodic entitled/allowed level manager for the PIso scheme. */
class MemorySharingPolicy
{
  public:
    MemorySharingPolicy(EventQueue &events, VirtualMemory &vm,
                        SpuManager &spus, MemPolicyConfig config = {});

    /** Set the reserve and initial levels, and begin periodic
     *  recomputation. */
    void start();

    /**
     * One recomputation pass (public so tests and setup can invoke it
     * directly):
     *  1. entitled_i = share_i x (total - kernel - shared - reserve),
     *     with share_i resolved down the SPU tree level by level
     *     (SpuManager::entitleLeaves);
     *  2. lendable = free + sum(borrowed-out) - reserve;
     *  3. allowed_i = entitled_i, plus an equal split of lendable for
     *     SPUs under pressure.
     */
    void recompute();

    const MemPolicyConfig &config() const { return config_; }

    /** Checkpoint restore: re-schedule the periodic recomputation with
     *  its original (when, seq) ordering key. The policy itself holds
     *  no other mutable state — levels live in the VM's ledger. */
    void restoreTick(Time when, std::uint64_t seq)
    {
        events_.scheduleRestored(when, seq, [this] { tick(); },
                                 "memPolicy");
    }

  private:
    void tick();

    EventQueue &events_;
    VirtualMemory &vm_;
    SpuManager &spus_;
    MemPolicyConfig config_;
};

} // namespace piso

#endif // PISO_CORE_MEM_POLICY_HH
