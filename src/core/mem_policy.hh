#ifndef PISO_CORE_MEM_POLICY_HH
#define PISO_CORE_MEM_POLICY_HH

/**
 * @file
 * The memory sharing policy of Section 3.2.
 *
 * Periodically recomputes each SPU's *entitled* level (its share of
 * memory net of kernel/shared usage and the Reserve Threshold) and
 * moves the *allowed* levels: SPUs under memory pressure receive the
 * system's idle pages, less the Reserve Threshold that hides the
 * revocation cost. When a lender wants its pages back, the borrowers'
 * allowed levels fall and the pageout daemon reclaims the excess.
 */

#include <cstdint>

#include "src/core/spu.hh"
// piso-lint: allow(layering) -- the policy/mechanism seam: the sharing
// policy drives the OS VM ledger one layer up; see
// docs/static-analysis.md (layering).
#include "src/os/vm.hh"
#include "src/sim/event_queue.hh"
#include "src/util/time.hh"

namespace piso {

/** Tunables of the sharing policy. */
struct MemPolicyConfig
{
    /** How often levels are recomputed. */
    Time period = 100 * kMs;

    /** Fraction of total memory kept free (the paper picks 8%, the
     *  value IRIX uses to decide it is low on memory). */
    double reserveFraction = 0.08;

    /** Run every periodic pass even when no ledger or SPU-tree change
     *  occurred (the pre-PR-9 behavior). Bit-exact with the default
     *  O(1) skip; benchmark baseline only (bench/ext_scale). */
    bool eagerRecompute = false;
};

/** Periodic entitled/allowed level manager for the PIso scheme. */
class MemorySharingPolicy
{
  public:
    MemorySharingPolicy(EventQueue &events, VirtualMemory &vm,
                        SpuManager &spus, MemPolicyConfig config = {});

    /** Set the reserve and initial levels, and begin periodic
     *  recomputation. */
    void start();

    /**
     * (Re-)schedule the periodic tick. No-op before start() or while
     * a tick is already pending. A tick that finds no active leaf SPU
     * stops rescheduling itself so an idle simulation's event queue
     * can drain; call this after SPUs are created or resumed
     * (Simulation::rebalanceSpus does) to restart the loop.
     */
    void arm();

    /**
     * One recomputation pass (public so tests and setup can invoke it
     * directly):
     *  1. entitled_i = share_i x (total - kernel - shared - reserve),
     *     with share_i resolved down the SPU tree level by level
     *     (SpuManager::entitleLeaves);
     *  2. lendable = free + sum(borrowed-out) - reserve;
     *  3. allowed_i = entitled_i, plus an equal split of lendable for
     *     SPUs under pressure.
     */
    void recompute();

    const MemPolicyConfig &config() const { return config_; }

    /** Leaf-SPU iterations performed by recompute passes — the
     *  policy_iters_mem perf counter. Out of band: never serialised,
     *  never in JSONL. */
    std::uint64_t policyIters() const { return policyIters_; }

    /** Checkpoint restore: re-schedule the periodic recomputation with
     *  its original (when, seq) ordering key. The policy itself holds
     *  no other mutable state — levels live in the VM's ledger. */
    void restoreTick(Time when, std::uint64_t seq)
    {
        started_ = true;
        armed_ = true;
        events_.scheduleRestored(when, seq, [this] { tick(); },
                                 "memPolicy");
    }

    /** Checkpoint restore: the tick scheduled by the replayed start()
     *  was just wiped with the rest of the pending event queue; forget
     *  it so restoreTick() (or a drained image's absence of one) is
     *  the only source of truth. */
    void clearScheduled() { armed_ = false; }

  private:
    void tick();

    EventQueue &events_;
    VirtualMemory &vm_;
    SpuManager &spus_;
    MemPolicyConfig config_;

    /** start() has run (recompute() may schedule ticks). */
    bool started_ = false;

    /** A tick event is currently pending. */
    bool armed_ = false;

    /** Versions of the VM ledger and the SPU registry captured at the
     *  end of the last full recompute pass. A tick that finds both
     *  unchanged skips the pass in O(1): no charge, entitlement, or
     *  topology change means the pass would write back the identical
     *  levels (and pressure, which bumps the VM version when noted,
     *  is necessarily zero). */
    bool seenValid_ = false;
    std::uint64_t seenVmVersion_ = 0;
    std::uint64_t seenSpuVersion_ = 0;

    std::uint64_t policyIters_ = 0;
};

} // namespace piso

#endif // PISO_CORE_MEM_POLICY_HH
