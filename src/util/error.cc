#include "src/util/error.hh"

#include <algorithm>

namespace piso {

const char *
errorCategoryName(ErrorCategory category)
{
    switch (category) {
      case ErrorCategory::Config:
        return "config";
      case ErrorCategory::Invariant:
        return "invariant";
      case ErrorCategory::Resource:
        return "resource";
      case ErrorCategory::Runaway:
        return "runaway";
    }
    return "unknown";
}

SimError::SimError(ErrorCategory category, const std::string &detail,
                   Time simTime)
    : std::runtime_error(detail), category_(category), simTime_(simTime)
{
}

Time
retryBackoffClamped(Time base, int attempt, Time cap)
{
    if (base == 0 || cap == 0)
        return 0;
    if (base >= cap)
        return cap;
    if (attempt < 1)
        attempt = 1;
    // A shift past 63 is UB on uint64; anything >= log2(cap/base)
    // saturates anyway, so probe with a division instead of shifting.
    const int shift = std::min(attempt - 1, 63);
    if (shift > 0 && base > (cap >> shift))
        return cap;
    return base << shift;
}

namespace detail {

void
invariantFailed(const char *file, int line, const char *cond,
                const std::string &msg)
{
    throw InvariantError(concat("invariant failed at ", file, ":", line,
                                ": ", msg, " [check: ", cond, "]"));
}

} // namespace detail
} // namespace piso
