#include "src/util/log.hh"

#include <cstdio>
#include <cstdlib>

#include "src/util/time.hh"
#include "src/util/error.hh"

namespace piso {

namespace {
thread_local LogContext tlsDefaultContext;
thread_local LogContext *tlsContext = nullptr;
} // namespace

LogContext &
logContext()
{
    return tlsContext ? *tlsContext : tlsDefaultContext;
}

LogContext *
logSetContext(LogContext *ctx)
{
    LogContext *prev = tlsContext;
    tlsContext = ctx;
    return prev;
}

void
setLogLevel(LogLevel level)
{
    logContext().level = level;
}

LogLevel
logLevel()
{
    return logContext().level;
}

std::string
formatTime(Time t)
{
    char buf[64];
    if (t >= kSec) {
        std::snprintf(buf, sizeof(buf), "%.3fs", toSeconds(t));
    } else if (t >= kMs) {
        std::snprintf(buf, sizeof(buf), "%.3fms", toMillis(t));
    } else if (t >= kUs) {
        std::snprintf(buf, sizeof(buf), "%.3fus",
                      static_cast<double>(t) / static_cast<double>(kUs));
    } else {
        std::snprintf(buf, sizeof(buf), "%lluns",
                      static_cast<unsigned long long>(t));
    }
    return buf;
}

namespace detail {

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    // piso-lint: allow(hygiene-io) -- fatal diagnostics go to stderr by design; never part of deterministic report output
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    // Throwing (rather than exit()) keeps fatal conditions testable and
    // lets the sweep runner quarantine the task; ConfigError derives
    // from std::runtime_error so legacy catch sites keep working.
    throw ConfigError("fatal: " + msg);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    // piso-lint: allow(hygiene-io) -- panic diagnostics go to stderr right before abort(); nothing else may run
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
logImpl(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) <= static_cast<int>(logLevel()))
        // piso-lint: allow(hygiene-io) -- this IS the logging backend the rule points everyone at
        std::fprintf(stderr, "%s\n", msg.c_str());
}

} // namespace detail
} // namespace piso
