#ifndef PISO_UTIL_LOG_HH
#define PISO_UTIL_LOG_HH

/**
 * @file
 * Minimal logging and error-termination helpers.
 *
 * Follows the gem5 convention: fatal() is for user errors (bad
 * configuration, impossible workload parameters) and throws a
 * structured ConfigError (src/util/error.hh) the sweep runner can
 * quarantine; panic() is for internal invariant violations (simulator
 * bugs) and aborts so a core dump / debugger can capture the state.
 * For invariants that should be *catchable* in hardened builds, use
 * PISO_INVARIANT / PISO_CHECK from src/util/error.hh instead.
 *
 * The verbosity level lives in a per-thread LogContext (mirroring
 * TraceContext) so parallel sweep workers never share mutable log
 * state; setLogLevel()/logLevel() are shims over the calling thread's
 * current context.
 */

#include <cstdint>
#include <sstream>
#include <string>

namespace piso {

/** Verbosity levels for runtime logging. */
enum class LogLevel : std::uint8_t { Quiet = 0, Info = 1, Debug = 2 };

/** The mutable state of the logging facility (per thread). */
struct LogContext
{
    LogLevel level = LogLevel::Quiet;
};

/** The calling thread's current log context (never null). */
LogContext &logContext();

/**
 * Install @p ctx as the calling thread's current context (nullptr
 * restores the thread's default context).
 * @return the previously installed context pointer (maybe nullptr).
 */
LogContext *logSetContext(LogContext *ctx);

/** RAII installation of a LogContext on the current thread. */
class LogContextScope
{
  public:
    explicit LogContextScope(LogContext &ctx)
        : prev_(logSetContext(&ctx))
    {
    }

    ~LogContextScope() { logSetContext(prev_); }

    LogContextScope(const LogContextScope &) = delete;
    LogContextScope &operator=(const LogContextScope &) = delete;

  private:
    LogContext *prev_;
};

/** Set the current thread's log verbosity (default: Quiet). */
void setLogLevel(LogLevel level);

/** Current log verbosity of the calling thread. */
LogLevel logLevel();

namespace detail {
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
void logImpl(LogLevel level, const std::string &msg);

/** Fold a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}
} // namespace detail

} // namespace piso

/** Terminate: unrecoverable *user* error (bad config, bad arguments). */
#define PISO_FATAL(...)                                                     \
    ::piso::detail::fatalImpl(__FILE__, __LINE__,                           \
                              ::piso::detail::concat(__VA_ARGS__))

/** Terminate: internal invariant violation (a simulator bug). */
#define PISO_PANIC(...)                                                     \
    ::piso::detail::panicImpl(__FILE__, __LINE__,                           \
                              ::piso::detail::concat(__VA_ARGS__))

/** Informational message, shown at LogLevel::Info and above. */
#define PISO_INFO(...)                                                      \
    ::piso::detail::logImpl(::piso::LogLevel::Info,                         \
                            ::piso::detail::concat(__VA_ARGS__))

/** Debug trace, shown only at LogLevel::Debug. */
#define PISO_DEBUG(...)                                                     \
    ::piso::detail::logImpl(::piso::LogLevel::Debug,                        \
                            ::piso::detail::concat(__VA_ARGS__))

#endif // PISO_UTIL_LOG_HH
