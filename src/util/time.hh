#ifndef PISO_UTIL_TIME_HH
#define PISO_UTIL_TIME_HH

/**
 * @file
 * Simulated-time representation for the performance-isolation simulator.
 *
 * All simulated time is kept as an unsigned 64-bit count of nanoseconds.
 * At nanosecond resolution a uint64_t covers ~584 years of simulated
 * time, far beyond any workload in this repository.
 */

#include <cstdint>
#include <string>

namespace piso {

/** Simulated time, in nanoseconds since simulation start. */
using Time = std::uint64_t;

/** One nanosecond (the base unit). */
inline constexpr Time kNs = 1;
/** One microsecond in Time units. */
inline constexpr Time kUs = 1000 * kNs;
/** One millisecond in Time units. */
inline constexpr Time kMs = 1000 * kUs;
/** One second in Time units. */
inline constexpr Time kSec = 1000 * kMs;

/** Sentinel meaning "no deadline / never". */
inline constexpr Time kTimeNever = ~Time{0};

/** Convert a Time to floating-point seconds (for reporting only). */
inline double
toSeconds(Time t)
{
    return static_cast<double>(t) / static_cast<double>(kSec);
}

/** Convert a Time to floating-point milliseconds (for reporting only). */
inline double
toMillis(Time t)
{
    return static_cast<double>(t) / static_cast<double>(kMs);
}

/** Convert floating-point seconds to a Time (clamped at zero). */
inline Time
fromSeconds(double s)
{
    return s <= 0.0 ? Time{0}
                    : static_cast<Time>(s * static_cast<double>(kSec));
}

/** Convert floating-point milliseconds to a Time (clamped at zero). */
inline Time
fromMillis(double ms)
{
    return ms <= 0.0 ? Time{0}
                     : static_cast<Time>(ms * static_cast<double>(kMs));
}

/**
 * Render a Time with an auto-selected unit, e.g. "12.5ms" or "3.2s".
 * Intended for log messages and reports.
 */
std::string formatTime(Time t);

} // namespace piso

#endif // PISO_UTIL_TIME_HH
