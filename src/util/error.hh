#ifndef PISO_UTIL_ERROR_HH
#define PISO_UTIL_ERROR_HH

/**
 * @file
 * Structured simulation errors and the runtime invariant-check layer.
 *
 * The paper's thesis — one misbehaving tenant must not take down the
 * others — applies to the execution layer itself: a failing simulation
 * task has to be *quarantinable*, which means every failure the sim
 * core can raise carries enough structure for the orchestration layer
 * (src/exp/runner) to classify it, decide on retry, and emit a
 * deterministic failure record instead of dying. Four categories:
 *
 *  - Config:    bad user input (spec parse errors, impossible machine
 *               parameters). Never retried; PISO_FATAL throws this.
 *  - Invariant: internal state corruption detected by a PISO_CHECK /
 *               PISO_INVARIANT probe. Never retried.
 *  - Resource:  resource exhaustion (allocation caps, injected
 *               transient pressure). The only retryable category.
 *  - Runaway:   a task exceeded its simulated-time or event-count
 *               watchdog budget. Converted to a TimedOut outcome.
 *
 * The invariant layer has two macros:
 *
 *  - PISO_INVARIANT(cond, ...) guards conditions the tree already
 *    paid for: without PISO_HARDENED it panics (abort, debuggable
 *    core) exactly like the PISO_PANIC it replaces; with PISO_HARDENED
 *    it throws InvariantError so a corrupted task is contained while
 *    the rest of a sweep completes.
 *  - PISO_CHECK(cond, ...) is for *additional* hot-path probes: it
 *    compiles to nothing without PISO_HARDENED (zero cost in release
 *    builds) and throws InvariantError with it.
 *
 * PISO_HARDENED is a CMake option (-DPISO_HARDENED=ON), on in the CI
 * chaos job. See docs/robustness.md.
 */

#include <cstdint>
#include <stdexcept>
#include <string>

#include "src/util/log.hh"
#include "src/util/time.hh"

namespace piso {

/** Failure classification used by the containment layer. */
enum class ErrorCategory : std::uint8_t {
    Config = 0,     //!< bad user input; deterministic, never retried
    Invariant = 1,  //!< internal state corruption (a simulator bug)
    Resource = 2,   //!< resource exhaustion; the retryable category
    Runaway = 3,    //!< watchdog budget exceeded (sim time / events)
};

/** Stable lower-case name ("config", ...) used in JSONL manifests. */
const char *errorCategoryName(ErrorCategory category);

/**
 * Base of every structured simulation error. Derives from
 * std::runtime_error so legacy catch sites keep working; carries the
 * category, the simulated time of the throw (0 when unknown), the
 * owning task id once the containment layer annotates it (-1 before),
 * and a deterministic diagnostic string (what()).
 */
class SimError : public std::runtime_error
{
  public:
    SimError(ErrorCategory category, const std::string &detail,
             Time simTime = 0);

    ErrorCategory category() const { return category_; }
    Time simTime() const { return simTime_; }

    /** Task index the containment layer attributed the failure to;
     *  -1 until annotateTask() is called. */
    long taskId() const { return taskId_; }
    void annotateTask(long task) { taskId_ = task; }

    /** True when the orchestration layer may retry the task (with
     *  bounded, clamped backoff — see retryBackoffClamped()). */
    bool retryable() const
    {
        return category_ == ErrorCategory::Resource;
    }

  private:
    ErrorCategory category_;
    Time simTime_;
    long taskId_ = -1;
};

/** Bad user input: spec parse errors, impossible machine parameters. */
class ConfigError : public SimError
{
  public:
    explicit ConfigError(const std::string &detail, Time simTime = 0)
        : SimError(ErrorCategory::Config, detail, simTime)
    {
    }
};

/** Internal invariant violation detected by a hardened check. */
class InvariantError : public SimError
{
  public:
    explicit InvariantError(const std::string &detail, Time simTime = 0)
        : SimError(ErrorCategory::Invariant, detail, simTime)
    {
    }
};

/** Resource exhaustion (allocation caps, injected pressure). */
class ResourceError : public SimError
{
  public:
    explicit ResourceError(const std::string &detail, Time simTime = 0)
        : SimError(ErrorCategory::Resource, detail, simTime)
    {
    }
};

/** A task exceeded its watchdog budget (runaway / non-terminating). */
class RunawayError : public SimError
{
  public:
    explicit RunawayError(const std::string &detail, Time simTime = 0)
        : SimError(ErrorCategory::Runaway, detail, simTime)
    {
    }
};

/**
 * Exponential retry backoff, clamped: base << (attempt-1) with the
 * shift bounded and the result capped at @p cap, so high attempt
 * counts can neither overflow Time nor grow without bound. Shared by
 * Kernel::retryBackoff (simulated I/O retries) and the sweep runner
 * (orchestration-level task retries) so both layers follow the same
 * discipline.
 */
Time retryBackoffClamped(Time base, int attempt, Time cap);

namespace detail {
/** Throw InvariantError for a failed PISO_CHECK/PISO_INVARIANT. */
[[noreturn]] void invariantFailed(const char *file, int line,
                                  const char *cond,
                                  const std::string &msg);
} // namespace detail

} // namespace piso

/**
 * Invariant guard the tree always enforces: panic (abort) by default,
 * throw a catchable InvariantError under PISO_HARDENED so corruption
 * in one task is quarantined instead of killing the sweep.
 */
#ifdef PISO_HARDENED
#define PISO_INVARIANT(cond, ...)                                           \
    do {                                                                    \
        if (!(cond))                                                        \
            ::piso::detail::invariantFailed(                                \
                __FILE__, __LINE__, #cond,                                  \
                ::piso::detail::concat(__VA_ARGS__));                       \
    } while (0)
#else
#define PISO_INVARIANT(cond, ...)                                           \
    do {                                                                    \
        if (!(cond))                                                        \
            PISO_PANIC(::piso::detail::concat(__VA_ARGS__),                 \
                       " [check: " #cond "]");                              \
    } while (0)
#endif

/**
 * Extra hot-path probe: free (not even evaluated) without
 * PISO_HARDENED, throws InvariantError with it.
 */
#ifdef PISO_HARDENED
#define PISO_CHECK(cond, ...) PISO_INVARIANT(cond, __VA_ARGS__)
#else
#define PISO_CHECK(cond, ...)                                               \
    do {                                                                    \
    } while (0)
#endif

#endif // PISO_UTIL_ERROR_HH
