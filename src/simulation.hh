#ifndef PISO_SIMULATION_HH
#define PISO_SIMULATION_HH

/**
 * @file
 * Public facade of the performance-isolation simulator.
 *
 * Typical use:
 * @code
 *   SystemConfig cfg;
 *   cfg.cpus = 8;
 *   cfg.memoryBytes = 44 * piso::kMiB;
 *   cfg.diskCount = 8;
 *   cfg.scheme = Scheme::PIso;
 *
 *   Simulation sim(cfg);
 *   SpuId user = sim.addSpu({.name = "user1", .homeDisk = 0});
 *   sim.addJob(user, makePmake("pm1"));
 *   SimResults r = sim.run();
 * @endcode
 */

#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/mem_policy.hh"
#include "src/core/scheme.hh"
#include "src/core/scheme_profile.hh"
#include "src/core/spu.hh"
#include "src/machine/disk_model.hh"
#include "src/machine/numa.hh"
#include "src/metrics/results.hh"
#include "src/os/kernel.hh"
#include "src/sim/fault_plan.hh"
#include "src/workload/job.hh"

namespace piso {

/** Convenience byte units. */
inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;

/** Full description of a simulated machine + scheme. */
struct SystemConfig
{
    /** @name Hardware */
    /// @{
    int cpus = 8;
    std::uint64_t memoryBytes = 64 * kMiB;
    int diskCount = 1;
    DiskParams diskParams{};  //!< applied to every disk

    /** NUMA domains and interconnect saturation (src/machine/numa.hh);
     *  the defaults model the paper's uniform-memory machine and add
     *  zero cost. */
    NumaConfig numa{};
    /// @}

    /** @name Resource-allocation policies
     *
     * `scheme` picks one of Table 2's uniform columns for every
     * resource at once; the optional per-resource fields override it
     * individually (see docs/profiles.md). The simulation acts on
     * resolvedProfile() only.
     */
    /// @{
    Scheme scheme = Scheme::PIso;
    DiskPolicy diskPolicy = DiskPolicy::SchemeDefault;

    /** CPU policy override; unset = follow `scheme`. */
    std::optional<CpuPolicy> cpuPolicy;

    /** Memory policy override; unset = follow `scheme`. */
    std::optional<MemoryPolicy> memoryPolicy;

    /** Network policy override; unset = follow `scheme`. */
    std::optional<NetPolicy> netPolicy;

    /** Pin all four per-resource policies at once. */
    void setProfile(const SchemeProfile &p);

    /** The effective per-resource profile: `scheme` expanded via
     *  SchemeProfile::uniform(), then the overrides applied. */
    SchemeProfile resolvedProfile() const;

    /** BW difference threshold of the PIso disk policy (decayed
     *  sectors per unit share). */
    double bwThresholdSectors = 256.0;

    /** Decay half-life of disk bandwidth counts (paper: 500 ms). */
    Time bwHalfLife = 500 * kMs;

    /** Network link speed; 0 disables the interface. The link is
     *  scheduled FIFO under the Smp scheme and fairly (decayed per-SPU
     *  byte counts, Section 5's sketched extension) otherwise. */
    double networkBitsPerSec = 0.0;

    /** Revoke loaned CPUs immediately (IPI) instead of at the next
     *  10 ms tick. */
    bool ipiRevocation = false;

    /** After a revocation, keep the CPU home-only for this long (the
     *  Section 3.1 anti-churn refinement; 0 = off). */
    Time loanHoldoff = 0;

    MemPolicyConfig memPolicy{};
    /// @}

    /** @name OS substrate */
    /// @{
    KernelConfig kernel{};
    Time tickPeriod = 10 * kMs;
    Time timeSlice = 30 * kMs;

    /** Pinned kernel memory charged to the kernel SPU at boot. */
    std::uint64_t kernelResidentBytes = 2 * kMiB;
    /// @}

    /** @name Run control */
    /// @{
    std::uint64_t seed = 1;

    /** Run every periodic policy loop with the pre-PR-9 full scans
     *  (eager CPU decay sweeps, full ready-table scans, every-period
     *  memory recomputes). Bit-exact with the default O(active) paths;
     *  exists only as the bench/ext_scale wall-clock baseline and is
     *  excluded from the checkpoint config digest. */
    bool eagerPolicyLoops = false;

    /** Hard stop; a run that hits it reports completed = false. */
    Time maxTime = 600 * kSec;

    /** Hardware misbehaviour to inject, delivered through the event
     *  queue (deterministic per seed; see docs/faults.md). */
    FaultPlan faults;

    /** Simulated-time watchdog: a run still alive past this budget
     *  throws RunawayError so the sweep runner can quarantine it as
     *  TimedOut (0 = off). Distinct from maxTime, which stops the run
     *  gracefully and reports completed = false. */
    Time watchdogSimTime = 0;

    /** Event-count watchdog: throws RunawayError after this many
     *  executed events (0 = off). */
    std::uint64_t watchdogEvents = 0;

    /**
     * Deterministic failure injection for the chaos harness
     * (tests/test_chaos.cc, tools/piso_chaos). Each knob forces one
     * SimError category at a reproducible point of the run; all off by
     * default. See docs/robustness.md.
     */
    struct ChaosSpec
    {
        /** Throw InvariantError once this many events of the run have
         *  executed (0 = off). */
        std::uint64_t invariantAtEvent = 0;

        /** Throw ResourceError when the machine's in-use page count
         *  exceeds this cap (0 = off). */
        std::uint64_t allocCapPages = 0;

        /** Throw ResourceError at run start while attempt <= this
         *  (0 = off) — models transient pressure that clears after a
         *  known number of orchestration-level retries. */
        int resourceUntilAttempt = 0;

        /** Current attempt number; the sweep runner bumps it on each
         *  retry of the task. */
        int attempt = 1;
    };
    ChaosSpec chaos;
    /// @}

    /** @name Checkpoint (docs/checkpoint.md)
     *
     * With checkpointAt > 0, run() serialises the complete simulation
     * state at the first quiescent event boundary at or after that
     * time and hands the image to checkpointSink. A boundary is
     * quiescent when no I/O is in flight and every pending event is
     * one of the serialisable descriptor kinds; the run keeps
     * executing events until it finds one.
     */
    /// @{
    /** Earliest simulated time to checkpoint at (0 = off). */
    Time checkpointAt = 0;

    /** Fail with InvariantError if no quiescent boundary was found by
     *  this time (0 = keep looking until the run ends). */
    Time checkpointDeadline = 0;

    /** Stop the run right after the checkpoint is taken (used by the
     *  warm-start sweep engine's template runs). */
    bool checkpointStop = false;

    /** Receives the serialised image when the checkpoint fires. Must
     *  be set when checkpointAt > 0. */
    std::function<void(std::string)> checkpointSink;
    /// @}
};

/**
 * Owns a full simulated machine: hardware, OS, SPU policies, and
 * workloads. Configure, add SPUs and jobs, then run() once.
 */
class Simulation
{
  public:
    explicit Simulation(const SystemConfig &cfg);
    ~Simulation();

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** Create a user SPU. Must precede run(). */
    SpuId addSpu(const SpuSpec &spec);

    /** Queue a job to run in @p spu. Must precede run(). */
    JobId addJob(SpuId spu, JobSpec spec);

    /**
     * Recompute CPU partition and bandwidth shares from the current
     * SPU registry. Call (e.g. from a scheduled event) after
     * suspending, resuming, creating, or destroying SPUs mid-run;
     * PIso memory entitlements follow automatically at the sharing
     * policy's next period.
     */
    void rebalanceSpus();

    /** Execute the whole workload. Call once. After restore(), this
     *  continues the run from the checkpointed state instead of from
     *  time zero. */
    SimResults run();

    /** @name Checkpoint/restore (docs/checkpoint.md)
     *
     * checkpoint() serialises the complete state to @p out. It may be
     * called before run() (a t=0 image) or from inside a scheduled
     * event; either way the simulation must be at a quiescent
     * boundary — no I/O in flight and only serialisable events
     * pending — or InvariantError is thrown.
     *
     * restore() is the inverse: construct a Simulation with the exact
     * same SystemConfig and replay the identical addSpu()/addJob()
     * sequence, then call restore() instead of running from scratch.
     * The header's config digest guards against mismatched
     * configurations; malformed or corrupted images raise ConfigError.
     */
    /// @{
    void checkpoint(std::ostream &out);
    void restore(std::istream &in);

    /**
     * The digest a checkpoint image of this simulation would carry:
     * a hash of the machine configuration plus the declared SPU/job
     * structure. Two simulations with equal digests accept each
     * other's images; the warm-start sweep engine uses this to group
     * grid points that can share a checkpointed prefix. Fault plans,
     * maxTime, watchdogs, and chaos knobs are deliberately excluded
     * (see docs/checkpoint.md).
     */
    std::uint64_t configDigest() const;
    /// @}

    /** @name Component access (tests, examples, advanced setups) */
    /// @{
    Kernel &kernel();
    EventQueue &events();
    SpuManager &spus();
    FileSystem &fs();
    VirtualMemory &vm();
    CpuScheduler &scheduler();
    /** The machine's network interface (nullptr when disabled). */
    NetworkInterface *network();
    const SystemConfig &config() const;
    /// @}

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace piso

#endif // PISO_SIMULATION_HH
