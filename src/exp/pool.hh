#ifndef PISO_EXP_POOL_HH
#define PISO_EXP_POOL_HH

/**
 * @file
 * A small batch-parallel executor for independent simulations.
 *
 * Each Simulation is a self-contained deterministic DES, so a
 * parameter sweep is embarrassingly parallel: parallelFor() runs
 * `fn(0) .. fn(n-1)` across a fixed-size pool of worker threads,
 * claiming indices dynamically (good load balance when task runtimes
 * differ) and blocking until every task finished. Results keyed by
 * index are therefore deterministic regardless of the worker count —
 * the property the determinism test battery enforces end to end.
 */

#include <cstddef>
#include <functional>
#include <vector>

namespace piso::exp {

/**
 * Resolve a worker-count request against the task count and the host.
 * @param jobs  Requested workers; <= 0 means "one per hardware thread".
 * @param tasks Number of tasks (the pool never exceeds it).
 * @return a count in [1, max(1, tasks)].
 */
int effectiveJobs(int jobs, std::size_t tasks);

/**
 * Run @p fn(i) for every i in [0, n) on @p jobs worker threads.
 *
 * Blocks until all tasks completed. With jobs <= 1 everything runs
 * inline on the calling thread (no threads are created), which makes
 * `--jobs 1` a pure serial baseline. Throwing tasks never cost other
 * tasks their run: every index executes to completion regardless of
 * failures elsewhere, and the exception of the lowest-indexed failed
 * task is rethrown once the pool drained — so both the work done and
 * the error reported are independent of worker count.
 */
void parallelFor(std::size_t n, int jobs,
                 const std::function<void(std::size_t)> &fn);

/**
 * parallelFor() collecting one result per index. @p fn maps an index
 * to a value; the returned vector is ordered by index (deterministic
 * for any worker count). T must be default-constructible.
 */
template <typename T, typename Fn>
std::vector<T>
parallelMap(std::size_t n, int jobs, Fn fn)
{
    std::vector<T> out(n);
    parallelFor(n, jobs, [&](std::size_t i) { out[i] = fn(i); });
    return out;
}

} // namespace piso::exp

#endif // PISO_EXP_POOL_HH
