#include "src/exp/runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

#include "src/exp/pool.hh"
#include "src/metrics/report.hh"

namespace piso::exp {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Orchestration-level retry delays saturate like the kernel's I/O
 *  backoff; one minute of wall clock is far beyond any sane sweep. */
constexpr Time kMaxTaskRetryBackoff = 60 * kSec;

/**
 * Run one task with containment: every escaping exception becomes a
 * TaskOutcome, retryable (resource) failures are retried up to the
 * budget with clamped exponential backoff, and a watchdog trip ends
 * the task TimedOut instead of failing the sweep.
 */
TaskOutcome
runContained(const ExperimentTask &task, const SweepOptions &opts,
             SimResults &results)
{
    TaskOutcome outcome;
    const int maxRetries = std::max(0, opts.maxRetries);
    for (int attempt = 1;; ++attempt) {
        // Attempt-local copy: the attempt counter must not leak into
        // the shared task list, and watchdog overrides are per-run.
        WorkloadSpec spec = task.spec;
        spec.config.chaos.attempt = attempt;
        if (opts.watchdogSimTime > 0)
            spec.config.watchdogSimTime = opts.watchdogSimTime;
        if (opts.watchdogEvents > 0)
            spec.config.watchdogEvents = opts.watchdogEvents;

        try {
            results = runWorkloadSpec(spec);
            outcome.status = TaskStatus::Ok;
            return outcome;
        } catch (SimError &e) {
            e.annotateTask(static_cast<long>(task.index));
            outcome.category = e.category();
            outcome.message = e.what();
            outcome.simTime = e.simTime();
            if (e.retryable() && outcome.retries < maxRetries) {
                ++outcome.retries;
                if (opts.retryBackoff > 0) {
                    const Time delay = retryBackoffClamped(
                        opts.retryBackoff, attempt, kMaxTaskRetryBackoff);
                    std::this_thread::sleep_for(
                        std::chrono::nanoseconds(delay));
                }
                continue;
            }
            outcome.status = e.category() == ErrorCategory::Runaway
                                 ? TaskStatus::TimedOut
                                 : TaskStatus::Failed;
            return outcome;
        } catch (const std::exception &e) {
            // Anything unstructured that still escapes a task is by
            // definition an internal bug: quarantine as an invariant
            // failure rather than killing the sweep.
            outcome.category = ErrorCategory::Invariant;
            outcome.message = e.what();
            outcome.simTime = 0;
            outcome.status = TaskStatus::Failed;
            return outcome;
        }
    }
}

} // namespace

const char *
taskStatusName(TaskStatus status)
{
    switch (status) {
      case TaskStatus::Ok:
        return "ok";
      case TaskStatus::Failed:
        return "failed";
      case TaskStatus::TimedOut:
        return "timed_out";
      case TaskStatus::Skipped:
        return "skipped";
    }
    return "unknown";
}

std::size_t
SweepOutcome::failures() const
{
    std::size_t n = 0;
    for (const TaskRun &run : runs) {
        if (!run.outcome.ok())
            ++n;
    }
    return n;
}

int
SweepOutcome::totalRetries() const
{
    int n = 0;
    for (const TaskRun &run : runs)
        n += run.outcome.retries;
    return n;
}

SweepOutcome
runTasks(std::vector<ExperimentTask> tasks, const SweepOptions &opts)
{
    SweepOutcome outcome;
    outcome.jobs = effectiveJobs(opts.jobs, tasks.size());

    std::vector<SimResults> results(tasks.size());
    std::vector<TaskOutcome> outcomes(tasks.size());
    std::atomic<bool> stop{false};
    const auto start = std::chrono::steady_clock::now();
    parallelFor(tasks.size(), opts.jobs, [&](std::size_t i) {
        if (!opts.keepGoing && stop.load()) {
            outcomes[i].status = TaskStatus::Skipped;
            outcomes[i].message = "skipped: an earlier task failed";
            return;
        }
        outcomes[i] = runContained(tasks[i], opts, results[i]);
        if (!outcomes[i].ok() && !opts.keepGoing)
            stop.store(true);
    });
    const auto stopTime = std::chrono::steady_clock::now();
    outcome.wallSec =
        std::chrono::duration<double>(stopTime - start).count();

    outcome.runs.reserve(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        outcome.runs.push_back(TaskRun{std::move(tasks[i]),
                                       std::move(results[i]),
                                       std::move(outcomes[i])});
    }
    return outcome;
}

SweepOutcome
runPlan(const ExperimentPlan &plan, const SweepOptions &opts)
{
    return runTasks(expandPlan(plan), opts);
}

std::string
formatTaskJsonl(const TaskRun &run)
{
    std::ostringstream os;
    os << "{\"task\":" << run.task.index
       << ",\"seed\":" << run.task.seed << ",\"params\":{";
    bool first = true;
    for (const auto &[key, value] : run.task.params) {
        os << (first ? "" : ",") << '"' << jsonEscape(key) << "\":\""
           << jsonEscape(value) << '"';
        first = false;
    }
    os << "}";
    if (run.outcome.ok()) {
        // Exactly the bytes a failure-free sweep emits: failures
        // elsewhere must never perturb a succeeding task's record.
        os << ",\"results\":" << formatResultsJson(run.results);
    } else {
        os << ",\"status\":\"" << taskStatusName(run.outcome.status)
           << "\",\"error\":{\"category\":\""
           << errorCategoryName(run.outcome.category)
           << "\",\"retries\":" << run.outcome.retries
           << ",\"sim_time_s\":" << toSeconds(run.outcome.simTime)
           << ",\"message\":\"" << jsonEscape(run.outcome.message)
           << "\"}";
    }
    os << "}";
    return os.str();
}

std::string
formatSweepJsonl(const SweepOutcome &outcome)
{
    std::string out;
    std::size_t counts[4] = {0, 0, 0, 0};
    for (const TaskRun &run : outcome.runs) {
        out += formatTaskJsonl(run);
        out += '\n';
        ++counts[static_cast<int>(run.outcome.status)];
    }
    // The trailing summary appears only when something went wrong, so
    // a failure-free stream is bit-for-bit what it always was.
    if (outcome.failures() > 0) {
        std::ostringstream os;
        os << "{\"summary\":{\"tasks\":" << outcome.runs.size()
           << ",\"ok\":" << counts[static_cast<int>(TaskStatus::Ok)]
           << ",\"failed\":"
           << counts[static_cast<int>(TaskStatus::Failed)]
           << ",\"timed_out\":"
           << counts[static_cast<int>(TaskStatus::TimedOut)]
           << ",\"skipped\":"
           << counts[static_cast<int>(TaskStatus::Skipped)]
           << ",\"retries\":" << outcome.totalRetries() << "}}\n";
        out += os.str();
    }
    return out;
}

std::string
formatSweepSummary(const SweepOutcome &outcome, bool includePerf)
{
    std::vector<std::string> header{"task", "params", "status",
                                    "sim (s)", "jobs done",
                                    "mean resp (s)"};
    if (includePerf) {
        header.push_back("events");
        header.push_back("wall (ms)");
        header.push_back("M ev/s");
    }
    TextTable table(header);
    for (const TaskRun &run : outcome.runs) {
        const SimResults &r = run.results;
        int done = 0;
        double respSum = 0.0;
        int respCount = 0;
        for (const JobResult &j : r.jobs) {
            if (j.completed && !j.failed)
                ++done;
            if (j.completed) {
                respSum += j.responseSec();
                ++respCount;
            }
        }
        std::vector<std::string> row{
            std::to_string(run.task.index), run.task.label(),
            taskStatusName(run.outcome.status),
            TextTable::num(toSeconds(r.simulatedTime), 2),
            std::to_string(done) + "/" + std::to_string(r.jobs.size()),
            TextTable::num(respCount ? respSum / respCount : 0.0, 2)};
        if (includePerf) {
            row.push_back(std::to_string(r.perf.events));
            row.push_back(TextTable::num(r.perf.wallSec * 1e3, 1));
            row.push_back(
                TextTable::num(r.perf.eventsPerSec() / 1e6, 2));
        }
        table.addRow(std::move(row));
    }
    return table.str();
}

} // namespace piso::exp
