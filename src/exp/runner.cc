#include "src/exp/runner.hh"

#include <chrono>
#include <sstream>

#include "src/exp/pool.hh"
#include "src/metrics/report.hh"

namespace piso::exp {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

SweepOutcome
runTasks(std::vector<ExperimentTask> tasks, const SweepOptions &opts)
{
    SweepOutcome outcome;
    outcome.jobs = effectiveJobs(opts.jobs, tasks.size());

    std::vector<SimResults> results(tasks.size());
    const auto start = std::chrono::steady_clock::now();
    parallelFor(tasks.size(), opts.jobs, [&](std::size_t i) {
        results[i] = runWorkloadSpec(tasks[i].spec);
    });
    const auto stop = std::chrono::steady_clock::now();
    outcome.wallSec =
        std::chrono::duration<double>(stop - start).count();

    outcome.runs.reserve(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        outcome.runs.push_back(
            TaskRun{std::move(tasks[i]), std::move(results[i])});
    }
    return outcome;
}

SweepOutcome
runPlan(const ExperimentPlan &plan, const SweepOptions &opts)
{
    return runTasks(expandPlan(plan), opts);
}

std::string
formatTaskJsonl(const TaskRun &run)
{
    std::ostringstream os;
    os << "{\"task\":" << run.task.index
       << ",\"seed\":" << run.task.seed << ",\"params\":{";
    bool first = true;
    for (const auto &[key, value] : run.task.params) {
        os << (first ? "" : ",") << '"' << jsonEscape(key) << "\":\""
           << jsonEscape(value) << '"';
        first = false;
    }
    os << "},\"results\":" << formatResultsJson(run.results) << "}";
    return os.str();
}

std::string
formatSweepJsonl(const SweepOutcome &outcome)
{
    std::string out;
    for (const TaskRun &run : outcome.runs) {
        out += formatTaskJsonl(run);
        out += '\n';
    }
    return out;
}

std::string
formatSweepSummary(const SweepOutcome &outcome, bool includePerf)
{
    std::vector<std::string> header{"task", "params", "sim (s)",
                                    "jobs done", "mean resp (s)"};
    if (includePerf) {
        header.push_back("events");
        header.push_back("wall (ms)");
        header.push_back("M ev/s");
    }
    TextTable table(header);
    for (const TaskRun &run : outcome.runs) {
        const SimResults &r = run.results;
        int done = 0;
        double respSum = 0.0;
        int respCount = 0;
        for (const JobResult &j : r.jobs) {
            if (j.completed && !j.failed)
                ++done;
            if (j.completed) {
                respSum += j.responseSec();
                ++respCount;
            }
        }
        std::vector<std::string> row{
            std::to_string(run.task.index), run.task.label(),
            TextTable::num(toSeconds(r.simulatedTime), 2),
            std::to_string(done) + "/" + std::to_string(r.jobs.size()),
            TextTable::num(respCount ? respSum / respCount : 0.0, 2)};
        if (includePerf) {
            row.push_back(std::to_string(r.perf.events));
            row.push_back(TextTable::num(r.perf.wallSec * 1e3, 1));
            row.push_back(
                TextTable::num(r.perf.eventsPerSec() / 1e6, 2));
        }
        table.addRow(std::move(row));
    }
    return table.str();
}

} // namespace piso::exp
