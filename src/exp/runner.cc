#include "src/exp/runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

#include <map>

#include "src/exp/pool.hh"
#include "src/sim/checkpoint.hh"
#include "src/metrics/report.hh"

namespace piso::exp {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Orchestration-level retry delays saturate like the kernel's I/O
 *  backoff; one minute of wall clock is far beyond any sane sweep. */
constexpr Time kMaxTaskRetryBackoff = 60 * kSec;

/**
 * Run one task with containment: every escaping exception becomes a
 * TaskOutcome, retryable (resource) failures are retried up to the
 * budget with clamped exponential backoff, and a watchdog trip ends
 * the task TimedOut instead of failing the sweep.
 */
TaskOutcome
runContained(const ExperimentTask &task, const SweepOptions &opts,
             SimResults &results)
{
    TaskOutcome outcome;
    const int maxRetries = std::max(0, opts.maxRetries);
    for (int attempt = 1;; ++attempt) {
        // Attempt-local copy: the attempt counter must not leak into
        // the shared task list, and watchdog overrides are per-run.
        WorkloadSpec spec = task.spec;
        spec.config.chaos.attempt = attempt;
        if (opts.watchdogSimTime > 0)
            spec.config.watchdogSimTime = opts.watchdogSimTime;
        if (opts.watchdogEvents > 0)
            spec.config.watchdogEvents = opts.watchdogEvents;

        try {
            results = runWorkloadSpec(spec);
            outcome.status = TaskStatus::Ok;
            return outcome;
        } catch (SimError &e) {
            e.annotateTask(static_cast<long>(task.index));
            outcome.category = e.category();
            outcome.message = e.what();
            outcome.simTime = e.simTime();
            if (e.retryable() && outcome.retries < maxRetries) {
                ++outcome.retries;
                if (opts.retryBackoff > 0) {
                    const Time delay = retryBackoffClamped(
                        opts.retryBackoff, attempt, kMaxTaskRetryBackoff);
                    std::this_thread::sleep_for(
                        std::chrono::nanoseconds(delay));
                }
                continue;
            }
            outcome.status = e.category() == ErrorCategory::Runaway
                                 ? TaskStatus::TimedOut
                                 : TaskStatus::Failed;
            return outcome;
        } catch (const std::exception &e) {
            // Anything unstructured that still escapes a task is by
            // definition an internal bug: quarantine as an invariant
            // failure rather than killing the sweep.
            outcome.category = ErrorCategory::Invariant;
            outcome.message = e.what();
            outcome.simTime = 0;
            outcome.status = TaskStatus::Failed;
            return outcome;
        }
    }
}

// ---------------------------------------------------------------------
// Warm start: share checkpointed run prefixes within a sweep
// ---------------------------------------------------------------------

bool
sameFault(const FaultEvent &a, const FaultEvent &b)
{
    return a.kind == b.kind && a.at == b.at && a.disk == b.disk &&
           a.duration == b.duration && a.factor == b.factor &&
           a.rate == b.rate && a.cpus == b.cpus && a.pages == b.pages;
}

/** One set of tasks that can fork from a single template image. */
struct WarmGroup
{
    std::vector<std::size_t> members;   //!< task indices, ascending
    std::vector<FaultEvent> prefix;     //!< shared fault-plan prefix
    Time divergeAt = kTimeNever;        //!< first member-only fault
    std::string image;                  //!< template checkpoint; empty
                                        //!< = group runs cold
};

/**
 * Grouping key: two tasks may share a template only when a checkpoint
 * image of one is acceptable to the other (equal config digest) AND
 * everything the digest deliberately excludes — run caps, watchdogs,
 * chaos knobs — is equal too, because those shape the run before the
 * boundary just as much as the digested config does. Fault plans stay
 * out: diverging fault suffixes are exactly what the group shares a
 * prefix across. A task whose config cannot even construct gets a
 * unique key; it will fail in its own cold run with the right error.
 */
std::string
warmGroupKey(const ExperimentTask &task)
{
    std::ostringstream os;
    try {
        Simulation sim(task.spec.config);
        populateWorkloadSpec(sim, task.spec);
        const SystemConfig &c = task.spec.config;
        os << sim.configDigest() << ':' << c.maxTime << ':'
           << c.watchdogSimTime << ':' << c.watchdogEvents << ':'
           << c.chaos.invariantAtEvent << ':' << c.chaos.allocCapPages
           << ':' << c.chaos.resourceUntilAttempt;
    } catch (const std::exception &) {
        os << "unconstructible:" << task.index;
    }
    return os.str();
}

/**
 * Longest common prefix of the members' time-sorted fault schedules,
 * and the earliest time any member's schedule diverges from it
 * (kTimeNever when all schedules are identical).
 */
void
faultPrefix(const std::vector<ExperimentTask> &tasks, WarmGroup &group)
{
    std::vector<std::vector<FaultEvent>> schedules;
    schedules.reserve(group.members.size());
    for (std::size_t i : group.members)
        schedules.push_back(tasks[i].spec.config.faults.schedule());

    std::size_t p = 0;
    for (;; ++p) {
        if (schedules[0].size() <= p)
            break;
        bool common = true;
        for (const auto &s : schedules) {
            if (s.size() <= p || !sameFault(s[p], schedules[0][p])) {
                common = false;
                break;
            }
        }
        if (!common)
            break;
    }
    group.prefix.assign(schedules[0].begin(),
                        schedules[0].begin() +
                            static_cast<std::ptrdiff_t>(p));
    group.divergeAt = kTimeNever;
    for (const auto &s : schedules) {
        if (s.size() > p)
            group.divergeAt = std::min(group.divergeAt, s[p].at);
    }
}

/**
 * Run the group's shared prefix to a checkpoint. The boundary must
 * land strictly before the divergence time, and as late as possible
 * for the best sharing, so the target time steps down from 3/4 of the
 * divergence time until a run finds a quiescent boundary inside
 * [target, divergeAt). Returns an empty image when none exists — the
 * group then runs cold, which is always correct.
 */
std::string
buildTemplateImage(const ExperimentTask &first, const WarmGroup &group,
                   const SweepOptions &opts)
{
    WorkloadSpec spec = first.spec;
    FaultPlan prefixPlan;
    for (const FaultEvent &ev : group.prefix)
        prefixPlan.add(ev);
    spec.config.faults = prefixPlan;
    spec.config.chaos.attempt = 1;
    if (opts.watchdogSimTime > 0)
        spec.config.watchdogSimTime = opts.watchdogSimTime;
    if (opts.watchdogEvents > 0)
        spec.config.watchdogEvents = opts.watchdogEvents;

    for (const double fraction : {0.75, 0.5, 0.25, 0.0}) {
        const Time target = std::max<Time>(
            1, static_cast<Time>(
                   static_cast<double>(group.divergeAt) * fraction));
        std::string image;
        spec.config.checkpointAt = target;
        spec.config.checkpointDeadline = group.divergeAt;
        spec.config.checkpointStop = true;
        spec.config.checkpointSink = [&image](std::string img) {
            image = std::move(img);
        };
        try {
            runWorkloadSpec(spec);
        } catch (const std::exception &) {
            // No boundary in [target, divergeAt) — or the prefix run
            // itself failed, in which case every member will report
            // its own failure from its own cold run.
            continue;
        }
        if (image.empty())
            continue;
        // The image's first payload field is the boundary time; an
        // image taken at or past the divergence point would hand
        // members a prefix they do not share.
        if (CkptReader(image).time() < group.divergeAt)
            return image;
    }
    return std::string();
}

/**
 * Run one task forked from @p image. Any failure — or any structural
 * surprise — falls back to a plain cold contained run, so a sweep's
 * output bytes never depend on whether warm start was attempted.
 */
TaskOutcome
runContainedFrom(const ExperimentTask &task, const SweepOptions &opts,
                 const std::string &image, SimResults &results)
{
    WorkloadSpec spec = task.spec;
    spec.config.chaos.attempt = 1;
    if (opts.watchdogSimTime > 0)
        spec.config.watchdogSimTime = opts.watchdogSimTime;
    if (opts.watchdogEvents > 0)
        spec.config.watchdogEvents = opts.watchdogEvents;
    try {
        results = runWorkloadSpecFrom(spec, image);
        return TaskOutcome{};
    } catch (const std::exception &) {
        results = SimResults{};
        return runContained(task, opts, results);
    }
}

/**
 * Plan the sweep's warm-start groups: key every task, group keys with
 * two or more tasks and a finite divergence time, and build each
 * group's template image. Returns, per task, the image to fork from
 * (nullptr = run cold).
 */
std::vector<const std::string *>
planWarmStart(const std::vector<ExperimentTask> &tasks,
              const SweepOptions &opts,
              std::vector<WarmGroup> &groups)
{
    std::vector<std::string> keys(tasks.size());
    parallelFor(tasks.size(), opts.jobs, [&](std::size_t i) {
        keys[i] = warmGroupKey(tasks[i]);
    });

    std::map<std::string, std::vector<std::size_t>> byKey;
    for (std::size_t i = 0; i < tasks.size(); ++i)
        byKey[keys[i]].push_back(i);

    for (auto &[key, members] : byKey) {
        if (members.size() < 2)
            continue;
        WarmGroup group;
        group.members = std::move(members);
        faultPrefix(tasks, group);
        // No divergence means duplicate tasks (cold is fine); a
        // divergence at t<=1ns leaves no room for a boundary.
        if (group.divergeAt == kTimeNever || group.divergeAt <= 1)
            continue;
        groups.push_back(std::move(group));
    }

    parallelFor(groups.size(), opts.jobs, [&](std::size_t g) {
        groups[g].image = buildTemplateImage(
            tasks[groups[g].members.front()], groups[g], opts);
    });

    std::vector<const std::string *> imageOf(tasks.size(), nullptr);
    for (const WarmGroup &group : groups) {
        if (group.image.empty())
            continue;
        for (std::size_t i : group.members)
            imageOf[i] = &group.image;
    }
    return imageOf;
}

} // namespace

const char *
taskStatusName(TaskStatus status)
{
    switch (status) {
      case TaskStatus::Ok:
        return "ok";
      case TaskStatus::Failed:
        return "failed";
      case TaskStatus::TimedOut:
        return "timed_out";
      case TaskStatus::Skipped:
        return "skipped";
    }
    return "unknown";
}

std::size_t
SweepOutcome::failures() const
{
    std::size_t n = 0;
    for (const TaskRun &run : runs) {
        if (!run.outcome.ok())
            ++n;
    }
    return n;
}

int
SweepOutcome::totalRetries() const
{
    int n = 0;
    for (const TaskRun &run : runs)
        n += run.outcome.retries;
    return n;
}

SweepOutcome
runTasks(std::vector<ExperimentTask> tasks, const SweepOptions &opts)
{
    SweepOutcome outcome;
    outcome.jobs = effectiveJobs(opts.jobs, tasks.size());

    std::vector<SimResults> results(tasks.size());
    std::vector<TaskOutcome> outcomes(tasks.size());
    std::atomic<bool> stop{false};
    const auto start = std::chrono::steady_clock::now();

    // Warm-start planning runs inside the timed region: the template
    // runs are real work the sweep would otherwise repeat per member.
    std::vector<WarmGroup> groups;
    std::vector<const std::string *> imageOf(tasks.size(), nullptr);
    if (opts.warmStart && tasks.size() > 1)
        imageOf = planWarmStart(tasks, opts, groups);

    parallelFor(tasks.size(), opts.jobs, [&](std::size_t i) {
        if (!opts.keepGoing && stop.load()) {
            outcomes[i].status = TaskStatus::Skipped;
            outcomes[i].message = "skipped: an earlier task failed";
            return;
        }
        outcomes[i] =
            imageOf[i]
                ? runContainedFrom(tasks[i], opts, *imageOf[i],
                                   results[i])
                : runContained(tasks[i], opts, results[i]);
        if (!outcomes[i].ok() && !opts.keepGoing)
            stop.store(true);
    });
    const auto stopTime = std::chrono::steady_clock::now();
    outcome.wallSec =
        std::chrono::duration<double>(stopTime - start).count();

    outcome.runs.reserve(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        outcome.runs.push_back(TaskRun{std::move(tasks[i]),
                                       std::move(results[i]),
                                       std::move(outcomes[i])});
    }
    return outcome;
}

SweepOutcome
runPlan(const ExperimentPlan &plan, const SweepOptions &opts)
{
    return runTasks(expandPlan(plan), opts);
}

std::string
formatTaskJsonl(const TaskRun &run)
{
    std::ostringstream os;
    os << "{\"task\":" << run.task.index
       << ",\"seed\":" << run.task.seed << ",\"params\":{";
    bool first = true;
    for (const auto &[key, value] : run.task.params) {
        os << (first ? "" : ",") << '"' << jsonEscape(key) << "\":\""
           << jsonEscape(value) << '"';
        first = false;
    }
    os << "}";
    if (run.outcome.ok()) {
        // Exactly the bytes a failure-free sweep emits: failures
        // elsewhere must never perturb a succeeding task's record.
        os << ",\"results\":" << formatResultsJson(run.results);
    } else {
        os << ",\"status\":\"" << taskStatusName(run.outcome.status)
           << "\",\"error\":{\"category\":\""
           << errorCategoryName(run.outcome.category)
           << "\",\"retries\":" << run.outcome.retries
           << ",\"sim_time_s\":" << toSeconds(run.outcome.simTime)
           << ",\"message\":\"" << jsonEscape(run.outcome.message)
           << "\"}";
    }
    os << "}";
    return os.str();
}

std::string
formatSweepJsonl(const SweepOutcome &outcome)
{
    std::string out;
    std::size_t counts[4] = {0, 0, 0, 0};
    for (const TaskRun &run : outcome.runs) {
        out += formatTaskJsonl(run);
        out += '\n';
        ++counts[static_cast<int>(run.outcome.status)];
    }
    // The trailing summary appears only when something went wrong, so
    // a failure-free stream is bit-for-bit what it always was.
    if (outcome.failures() > 0) {
        std::ostringstream os;
        os << "{\"summary\":{\"tasks\":" << outcome.runs.size()
           << ",\"ok\":" << counts[static_cast<int>(TaskStatus::Ok)]
           << ",\"failed\":"
           << counts[static_cast<int>(TaskStatus::Failed)]
           << ",\"timed_out\":"
           << counts[static_cast<int>(TaskStatus::TimedOut)]
           << ",\"skipped\":"
           << counts[static_cast<int>(TaskStatus::Skipped)]
           << ",\"retries\":" << outcome.totalRetries() << "}}\n";
        out += os.str();
    }
    return out;
}

std::string
formatSweepSummary(const SweepOutcome &outcome, bool includePerf)
{
    std::vector<std::string> header{"task", "params", "status",
                                    "sim (s)", "jobs done",
                                    "mean resp (s)"};
    if (includePerf) {
        header.push_back("events");
        header.push_back("wall (ms)");
        header.push_back("M ev/s");
        header.push_back("policy iters");
    }
    TextTable table(header);
    for (const TaskRun &run : outcome.runs) {
        const SimResults &r = run.results;
        int done = 0;
        double respSum = 0.0;
        int respCount = 0;
        for (const JobResult &j : r.jobs) {
            if (j.completed && !j.failed)
                ++done;
            if (j.completed) {
                respSum += j.responseSec();
                ++respCount;
            }
        }
        std::vector<std::string> row{
            std::to_string(run.task.index), run.task.label(),
            taskStatusName(run.outcome.status),
            TextTable::num(toSeconds(r.simulatedTime), 2),
            std::to_string(done) + "/" + std::to_string(r.jobs.size()),
            TextTable::num(respCount ? respSum / respCount : 0.0, 2)};
        if (includePerf) {
            row.push_back(std::to_string(r.perf.events));
            row.push_back(TextTable::num(r.perf.wallSec * 1e3, 1));
            row.push_back(
                TextTable::num(r.perf.eventsPerSec() / 1e6, 2));
            row.push_back(std::to_string(
                r.perf.policyItersCpu + r.perf.policyItersMem +
                r.perf.policyItersDisk + r.perf.policyItersNet));
        }
        table.addRow(std::move(row));
    }
    return table.str();
}

} // namespace piso::exp
