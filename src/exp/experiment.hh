#ifndef PISO_EXP_EXPERIMENT_HH
#define PISO_EXP_EXPERIMENT_HH

/**
 * @file
 * Batch experiment plans: a base workload spec plus a grid of
 * configuration knobs and seeds, expanded into a flat, deterministic
 * task list (the unit of work of the parallel sweep engine).
 *
 * A grid axis is `key=v1,v2,...` using the machine-line spellings of
 * the `.piso` format (scheme, cpu, memory, network, disk_policy,
 * cpus, memory_mb, ...) plus a few engine-only knobs (bw_halflife_ms,
 * loan_holdoff_ms, tick_ms, slice_ms, reserve_frac). Expansion is the
 * cross product in declaration order with seeds varying fastest, so
 * task indices — and therefore JSONL output order — are a pure
 * function of the plan, never of scheduling.
 *
 * See docs/sweeps.md for the full grid-key table and JSONL schema.
 */

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/config/workload_spec.hh"

namespace piso::exp {

/** One sweep dimension: a config key and the values to try. */
struct GridAxis
{
    std::string key;
    std::vector<std::string> values;
};

/** A full batch experiment: base spec x grid axes x seeds. */
struct ExperimentPlan
{
    WorkloadSpec base;
    std::vector<GridAxis> axes;

    /** Seeds to replicate every grid point with; empty = just the
     *  base spec's seed. Applied after the axes (a `seed` axis is
     *  overridden by an explicit seed list). */
    std::vector<std::uint64_t> seeds;
};

/** One fully-resolved unit of work. */
struct ExperimentTask
{
    std::size_t index = 0;   //!< position in the expanded plan
    std::uint64_t seed = 1;
    /** Grid (key, value) pairs in axis order, then ("seed", n). */
    std::vector<std::pair<std::string, std::string>> params;
    WorkloadSpec spec;

    /** Human label, e.g. "scheme=piso seed=2". */
    std::string label() const;
};

/**
 * Apply one grid assignment to a system config.
 * @throws std::runtime_error (via PISO_FATAL) naming the valid keys
 *         on an unknown key or an unparsable value.
 */
void applyGridKey(SystemConfig &cfg, const std::string &key,
                  const std::string &value);

/**
 * Parse a `--grid` argument of the form `key=v1,v2,...`.
 * @throws std::runtime_error on a malformed axis or empty value list.
 */
GridAxis parseGridAxis(const std::string &text);

/**
 * Expand the plan into its task list: the cross product of the axes
 * (declaration order, first axis outermost) and the seeds (innermost,
 * varying fastest). Every task's spec has all assignments applied.
 */
std::vector<ExperimentTask> expandPlan(const ExperimentPlan &plan);

} // namespace piso::exp

#endif // PISO_EXP_EXPERIMENT_HH
