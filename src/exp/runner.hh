#ifndef PISO_EXP_RUNNER_HH
#define PISO_EXP_RUNNER_HH

/**
 * @file
 * The parallel sweep engine: expand an ExperimentPlan, run one
 * Simulation per task on a fixed-size thread pool, and aggregate the
 * results deterministically.
 *
 * The contract the determinism tests enforce: formatSweepJsonl() is
 * byte-identical for any `jobs` value, because tasks are keyed by
 * their expansion index and every Simulation is self-contained (its
 * Rng, trace and log contexts are per-run; see src/sim/trace.hh).
 * Wall-clock numbers are reported separately and never enter the
 * JSONL stream.
 */

#include <string>
#include <vector>

#include "src/exp/experiment.hh"
#include "src/metrics/results.hh"

namespace piso::exp {

/** Knobs of one engine invocation. */
struct SweepOptions
{
    /** Worker threads; 1 = serial, <= 0 = one per hardware thread. */
    int jobs = 1;
};

/** One task's outcome. */
struct TaskRun
{
    ExperimentTask task;
    SimResults results;
};

/** Everything a sweep produced. */
struct SweepOutcome
{
    std::vector<TaskRun> runs;  //!< ordered by task index
    int jobs = 1;               //!< resolved worker count
    double wallSec = 0.0;       //!< wall-clock of the parallel region
};

/** Expand @p plan and run every task. */
SweepOutcome runPlan(const ExperimentPlan &plan,
                     const SweepOptions &opts);

/** Run an already-expanded task list (tasks keep their indices). */
SweepOutcome runTasks(std::vector<ExperimentTask> tasks,
                      const SweepOptions &opts);

/** One task's JSONL record (no trailing newline):
 *  `{"task":N,"seed":S,"params":{...},"results":{...}}`. */
std::string formatTaskJsonl(const TaskRun &run);

/** The whole sweep as JSONL, one line per task, in task order.
 *  Deterministic: independent of opts.jobs and scheduling. */
std::string formatSweepJsonl(const SweepOutcome &outcome);

/** Aligned summary table (task, params, simulated time, jobs,
 *  mean response) for terminals. @p includePerf adds per-task
 *  simulator-performance columns (events, wall ms, M events/s); it
 *  defaults off because host timing varies run to run, and the
 *  jobs-invariance test compares the perf-free table. */
std::string formatSweepSummary(const SweepOutcome &outcome,
                               bool includePerf = false);

} // namespace piso::exp

#endif // PISO_EXP_RUNNER_HH
