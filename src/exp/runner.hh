#ifndef PISO_EXP_RUNNER_HH
#define PISO_EXP_RUNNER_HH

/**
 * @file
 * The parallel sweep engine: expand an ExperimentPlan, run one
 * Simulation per task on a fixed-size thread pool, and aggregate the
 * results deterministically.
 *
 * The contract the determinism tests enforce: formatSweepJsonl() is
 * byte-identical for any `jobs` value, because tasks are keyed by
 * their expansion index and every Simulation is self-contained (its
 * Rng, trace and log contexts are per-run; see src/sim/trace.hh).
 * Wall-clock numbers are reported separately and never enter the
 * JSONL stream.
 *
 * Failures are quarantined, not propagated: a task that throws a
 * SimError is captured into its TaskOutcome (with bounded retry for
 * retryable categories), every other task still runs, and the failed
 * task appears in the JSONL stream as a structured failure record.
 * Records of *succeeding* tasks are byte-identical to a failure-free
 * run — a failure changes only its own line plus the trailing summary
 * line. See docs/robustness.md.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "src/exp/experiment.hh"
#include "src/metrics/results.hh"
#include "src/util/error.hh"

namespace piso::exp {

/** Knobs of one engine invocation. */
struct SweepOptions
{
    /** Worker threads; 1 = serial, <= 0 = one per hardware thread. */
    int jobs = 1;

    /** Quarantine failing tasks and keep sweeping (the default).
     *  When false, a failure raises a stop flag: tasks that have not
     *  started yet finish as Skipped instead of running. */
    bool keepGoing = true;

    /** Retry budget per task for retryable (resource) failures. */
    int maxRetries = 2;

    /** Wall-clock base delay between retries of one task, growing
     *  exponentially with the kernel's clamped-backoff discipline
     *  (0 = retry immediately). Never affects simulated time. */
    Time retryBackoff = 0;

    /** Simulated-time watchdog applied to every task (0 = off);
     *  overrides the spec when set. A tripped task ends TimedOut. */
    Time watchdogSimTime = 0;

    /** Event-count watchdog applied to every task (0 = off). */
    std::uint64_t watchdogEvents = 0;

    /** Warm-start: grid points that differ only in their fault-plan
     *  suffix are grouped, each group's shared prefix is run once to a
     *  checkpoint, and every member forks from that in-memory image
     *  instead of re-simulating from time zero (docs/checkpoint.md).
     *  Purely a wall-clock optimisation: the JSONL stream is
     *  byte-identical with it on or off, at any `jobs` value — any
     *  group whose template cannot find a quiescent boundary, and any
     *  member whose warm run fails, silently falls back to a cold
     *  run. `piso_sweep --no-warm-start` clears it. */
    bool warmStart = true;
};

/** How one task ended. */
enum class TaskStatus : std::uint8_t
{
    Ok = 0,        //!< ran to completion (possibly after retries)
    Failed = 1,    //!< quarantined config/invariant/resource failure
    TimedOut = 2,  //!< watchdog converted a runaway run
    Skipped = 3,   //!< never ran: an earlier failure stopped the sweep
};

/** Stable lower-case name ("ok", "failed", ...) used in JSONL. */
const char *taskStatusName(TaskStatus status);

/** The containment layer's verdict on one task. */
struct TaskOutcome
{
    TaskStatus status = TaskStatus::Ok;

    /** Failure classification; meaningful only when !ok(). */
    ErrorCategory category = ErrorCategory::Config;

    /** Deterministic diagnostic (the SimError's what()). */
    std::string message;

    /** Simulated time of the failure (0 when unknown). */
    Time simTime = 0;

    /** Retries spent on this task (counted even when it ended Ok). */
    int retries = 0;

    bool ok() const { return status == TaskStatus::Ok; }
};

/** One task's outcome. */
struct TaskRun
{
    ExperimentTask task;
    SimResults results;  //!< valid only when outcome.ok()
    TaskOutcome outcome;
};

/** Everything a sweep produced. */
struct SweepOutcome
{
    std::vector<TaskRun> runs;  //!< ordered by task index
    int jobs = 1;               //!< resolved worker count
    double wallSec = 0.0;       //!< wall-clock of the parallel region

    /** Number of runs that did not end Ok. */
    std::size_t failures() const;

    /** Retries spent across all runs (including ones that ended Ok). */
    int totalRetries() const;
};

/** Expand @p plan and run every task. */
SweepOutcome runPlan(const ExperimentPlan &plan,
                     const SweepOptions &opts);

/** Run an already-expanded task list (tasks keep their indices). */
SweepOutcome runTasks(std::vector<ExperimentTask> tasks,
                      const SweepOptions &opts);

/** One task's JSONL record (no trailing newline). Ok tasks:
 *  `{"task":N,"seed":S,"params":{...},"results":{...}}` — the exact
 *  bytes of a failure-free run. Non-Ok tasks:
 *  `{"task":N,"seed":S,"params":{...},"status":"failed",
 *    "error":{"category":...,"retries":N,"sim_time_s":X,
 *    "message":...}}`. */
std::string formatTaskJsonl(const TaskRun &run);

/** The whole sweep as JSONL, one line per task, in task order, plus —
 *  only when at least one task did not end Ok — a final
 *  `{"summary":{...}}` line with the status counts. Deterministic:
 *  independent of opts.jobs and scheduling. */
std::string formatSweepJsonl(const SweepOutcome &outcome);

/** Aligned summary table (task, params, status, simulated time, jobs,
 *  mean response) for terminals. @p includePerf adds per-task
 *  simulator-performance columns (events, wall ms, M events/s); it
 *  defaults off because host timing varies run to run, and the
 *  jobs-invariance test compares the perf-free table. */
std::string formatSweepSummary(const SweepOutcome &outcome,
                               bool includePerf = false);

} // namespace piso::exp

#endif // PISO_EXP_RUNNER_HH
