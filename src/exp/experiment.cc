#include "src/exp/experiment.hh"

#include <sstream>

#include "src/core/scheme_profile.hh"
#include "src/util/log.hh"

namespace piso::exp {

namespace {

const char *const kGridKeys =
    "scheme|cpu|memory|network|disk_policy|cpus|disks|memory_mb|seed|"
    "max_time_s|network_mbps|bw_threshold|bw_halflife_ms|seek_scale|"
    "ipi_revocation|loan_holdoff_ms|tick_ms|slice_ms|reserve_frac|"
    "numa_domains|numa_local_us|numa_remote_us|bus_mbps|"
    "bus_saturation|bus_halflife_ms|"
    "fault_disk_slow|fault_disk_error|fault_disk_dead";

double
toNumber(const std::string &key, const std::string &value)
{
    try {
        std::size_t pos = 0;
        const double v = std::stod(value, &pos);
        if (pos != value.size())
            throw std::invalid_argument("trailing");
        return v;
    } catch (const std::exception &) {
        PISO_FATAL("grid key '", key, "' wants a number, got '", value,
                   "'");
    }
}

std::int64_t
toInteger(const std::string &key, const std::string &value)
{
    return static_cast<std::int64_t>(toNumber(key, value));
}

Scheme
toScheme(const std::string &value)
{
    if (value == "smp")
        return Scheme::Smp;
    if (value == "quota" || value == "quo")
        return Scheme::Quota;
    if (value == "piso")
        return Scheme::PIso;
    PISO_FATAL("grid key 'scheme': unknown scheme '", value,
               "' (smp|quota|piso)");
}

int
toPolicy(PolicyResource resource, const std::string &key,
         const std::string &value)
{
    const auto v = PolicyRegistry::instance().tryParse(resource, value);
    if (!v) {
        std::string valid;
        for (const std::string &n :
             PolicyRegistry::instance().names(resource)) {
            if (!valid.empty())
                valid += '|';
            valid += n;
        }
        PISO_FATAL("grid key '", key, "': unknown policy '", value,
                   "' (", valid, ")");
    }
    return *v;
}

/**
 * Split a colon-separated fault value ("AT:FOR:DISK:FACTOR") into
 * exactly @p want numeric fields.
 */
std::vector<double>
toFaultFields(const std::string &key, const std::string &value,
              std::size_t want, const char *shape)
{
    std::vector<double> fields;
    std::istringstream is(value);
    std::string item;
    while (std::getline(is, item, ':'))
        fields.push_back(toNumber(key, item));
    if (fields.size() != want)
        PISO_FATAL("grid key '", key, "' wants ", shape, ", got '",
                   value, "'");
    return fields;
}

} // namespace

std::string
ExperimentTask::label() const
{
    std::string out;
    for (const auto &[key, value] : params) {
        if (!out.empty())
            out += ' ';
        out += key + '=' + value;
    }
    return out;
}

void
applyGridKey(SystemConfig &cfg, const std::string &key,
             const std::string &value)
{
    if (key == "scheme") {
        cfg.scheme = toScheme(value);
    } else if (key == "cpu") {
        cfg.cpuPolicy = static_cast<CpuPolicy>(
            toPolicy(PolicyResource::Cpu, key, value));
    } else if (key == "memory") {
        cfg.memoryPolicy = static_cast<MemoryPolicy>(
            toPolicy(PolicyResource::Memory, key, value));
    } else if (key == "network") {
        cfg.netPolicy = static_cast<NetPolicy>(
            toPolicy(PolicyResource::Net, key, value));
    } else if (key == "disk_policy") {
        cfg.diskPolicy = static_cast<DiskPolicy>(
            toPolicy(PolicyResource::Disk, key, value));
    } else if (key == "cpus") {
        cfg.cpus = static_cast<int>(toInteger(key, value));
    } else if (key == "disks") {
        cfg.diskCount = static_cast<int>(toInteger(key, value));
    } else if (key == "memory_mb") {
        cfg.memoryBytes =
            static_cast<std::uint64_t>(toInteger(key, value)) * kMiB;
    } else if (key == "seed") {
        cfg.seed = static_cast<std::uint64_t>(toInteger(key, value));
    } else if (key == "max_time_s") {
        cfg.maxTime = fromSeconds(toNumber(key, value));
    } else if (key == "network_mbps") {
        cfg.networkBitsPerSec = toNumber(key, value) * 1e6;
    } else if (key == "bw_threshold") {
        cfg.bwThresholdSectors = toNumber(key, value);
    } else if (key == "bw_halflife_ms") {
        cfg.bwHalfLife = fromMillis(toNumber(key, value));
    } else if (key == "seek_scale") {
        cfg.diskParams.seekScale = toNumber(key, value);
    } else if (key == "ipi_revocation") {
        cfg.ipiRevocation = toInteger(key, value) != 0;
    } else if (key == "loan_holdoff_ms") {
        cfg.loanHoldoff = fromMillis(toNumber(key, value));
    } else if (key == "tick_ms") {
        cfg.tickPeriod = fromMillis(toNumber(key, value));
    } else if (key == "slice_ms") {
        cfg.timeSlice = fromMillis(toNumber(key, value));
    } else if (key == "reserve_frac") {
        cfg.memPolicy.reserveFraction = toNumber(key, value);
    } else if (key == "numa_domains") {
        cfg.numa.domains = static_cast<int>(toInteger(key, value));
    } else if (key == "numa_local_us") {
        cfg.numa.localLatency =
            static_cast<Time>(toNumber(key, value) * kUs);
    } else if (key == "numa_remote_us") {
        cfg.numa.remoteLatency =
            static_cast<Time>(toNumber(key, value) * kUs);
    } else if (key == "bus_mbps") {
        cfg.numa.busBytesPerSec = toNumber(key, value) * 1e6 / 8.0;
    } else if (key == "bus_saturation") {
        cfg.numa.busSaturation = toNumber(key, value);
    } else if (key == "bus_halflife_ms") {
        cfg.numa.busHalfLife = fromMillis(toNumber(key, value));
    } else if (key == "fault_disk_slow") {
        // Fault axes append to the plan's fault schedule, so a grid
        // can sweep what-if failure scenarios over one base workload.
        // Grid points differing only in their late faults share the
        // pre-fault prefix, which is exactly what the warm-start
        // engine checkpoints once per group. "none" = no fault, so an
        // axis can include the undisturbed baseline.
        if (value != "none") {
            const auto f = toFaultFields(key, value, 4,
                                         "AT_S:FOR_S:DISK:FACTOR");
            cfg.faults.diskSlow(fromSeconds(f[0]),
                                static_cast<int>(f[2]),
                                fromSeconds(f[1]), f[3]);
        }
    } else if (key == "fault_disk_error") {
        if (value != "none") {
            const auto f = toFaultFields(key, value, 4,
                                         "AT_S:FOR_S:DISK:RATE");
            cfg.faults.diskError(fromSeconds(f[0]),
                                 static_cast<int>(f[2]),
                                 fromSeconds(f[1]), f[3]);
        }
    } else if (key == "fault_disk_dead") {
        if (value != "none") {
            const auto f = toFaultFields(key, value, 2, "AT_S:DISK");
            cfg.faults.diskDead(fromSeconds(f[0]),
                                static_cast<int>(f[1]));
        }
    } else {
        PISO_FATAL("unknown grid key '", key, "' (", kGridKeys, ")");
    }
}

GridAxis
parseGridAxis(const std::string &text)
{
    const auto eq = text.find('=');
    if (eq == std::string::npos || eq == 0 || eq == text.size() - 1)
        PISO_FATAL("grid axis '", text, "' is not key=v1,v2,...");

    GridAxis axis;
    axis.key = text.substr(0, eq);
    std::istringstream is(text.substr(eq + 1));
    std::string value;
    while (std::getline(is, value, ',')) {
        if (value.empty())
            PISO_FATAL("grid axis '", text, "' has an empty value");
        axis.values.push_back(value);
    }
    if (axis.values.empty())
        PISO_FATAL("grid axis '", text, "' has no values");
    return axis;
}

std::vector<ExperimentTask>
expandPlan(const ExperimentPlan &plan)
{
    for (const GridAxis &axis : plan.axes) {
        if (axis.values.empty())
            PISO_FATAL("grid axis '", axis.key, "' has no values");
    }

    const std::vector<std::uint64_t> seeds =
        plan.seeds.empty() ? std::vector<std::uint64_t>{
                                 plan.base.config.seed}
                           : plan.seeds;

    std::vector<ExperimentTask> tasks;
    // Odometer over the axes (first axis outermost), seeds innermost.
    std::vector<std::size_t> at(plan.axes.size(), 0);
    for (;;) {
        for (std::uint64_t seed : seeds) {
            ExperimentTask task;
            task.index = tasks.size();
            task.seed = seed;
            task.spec = plan.base;
            for (std::size_t a = 0; a < plan.axes.size(); ++a) {
                const GridAxis &axis = plan.axes[a];
                const std::string &value = axis.values[at[a]];
                applyGridKey(task.spec.config, axis.key, value);
                task.params.emplace_back(axis.key, value);
            }
            task.spec.config.seed = seed;
            task.params.emplace_back("seed", std::to_string(seed));
            tasks.push_back(std::move(task));
        }

        // Advance the odometer; rightmost axis spins fastest.
        std::size_t a = plan.axes.size();
        while (a > 0) {
            --a;
            if (++at[a] < plan.axes[a].values.size())
                break;
            at[a] = 0;
            if (a == 0)
                return tasks;
        }
        if (plan.axes.empty())
            return tasks;
    }
}

} // namespace piso::exp
