#include "src/exp/pool.hh"

#include <atomic>
#include <exception>
#include <thread>

namespace piso::exp {

int
effectiveJobs(int jobs, std::size_t tasks)
{
    if (jobs <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        jobs = hw > 0 ? static_cast<int>(hw) : 1;
    }
    if (tasks < 1)
        tasks = 1;
    if (static_cast<std::size_t>(jobs) > tasks)
        jobs = static_cast<int>(tasks);
    return jobs;
}

void
parallelFor(std::size_t n, int jobs,
            const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    const int workers = effectiveJobs(jobs, n);
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::vector<std::exception_ptr> errors(n);

    auto worker = [&] {
        for (std::size_t i; (i = next.fetch_add(1)) < n;) {
            if (failed.load())
                break;  // abandon unclaimed work after a failure
            try {
                fn(i);
            } catch (...) {
                errors[i] = std::current_exception();
                failed.store(true);
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(workers));
    for (int t = 0; t < workers; ++t)
        threads.emplace_back(worker);
    for (std::thread &t : threads)
        t.join();

    for (const std::exception_ptr &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
}

} // namespace piso::exp
