#include "src/exp/pool.hh"

#include <atomic>
#include <exception>
#include <thread>

namespace piso::exp {

int
effectiveJobs(int jobs, std::size_t tasks)
{
    if (jobs <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        jobs = hw > 0 ? static_cast<int>(hw) : 1;
    }
    if (tasks < 1)
        tasks = 1;
    if (static_cast<std::size_t>(jobs) > tasks)
        jobs = static_cast<int>(tasks);
    return jobs;
}

void
parallelFor(std::size_t n, int jobs,
            const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;

    // Full-drain semantics: one task throwing must not cost any other
    // task its run (the execution-layer mirror of the paper's
    // isolation property). Every index executes; every exception is
    // collected; the lowest-indexed one is rethrown once the pool
    // drained, so the error a caller sees is independent of worker
    // count and scheduling.
    std::vector<std::exception_ptr> errors(n);

    const int workers = effectiveJobs(jobs, n);
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i) {
            try {
                fn(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    } else {
        std::atomic<std::size_t> next{0};
        auto worker = [&] {
            for (std::size_t i; (i = next.fetch_add(1)) < n;) {
                try {
                    fn(i);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            }
        };

        std::vector<std::thread> threads;
        threads.reserve(static_cast<std::size_t>(workers));
        for (int t = 0; t < workers; ++t)
            threads.emplace_back(worker);
        for (std::thread &t : threads)
            t.join();
    }

    for (const std::exception_ptr &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
}

} // namespace piso::exp
