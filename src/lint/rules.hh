#ifndef PISO_LINT_RULES_HH
#define PISO_LINT_RULES_HH

/**
 * @file
 * The piso-lint rule registry: every project invariant the checker
 * enforces, with its path scope and token-level matcher.
 *
 * Adding a rule is three steps (see docs/static-analysis.md):
 *   1. write a `check` function over the token stream,
 *   2. append a Rule entry to the registry in rules.cc,
 *   3. add violation + suppression fixtures under tests/lint_fixtures/.
 */

#include <string>
#include <vector>

#include "src/lint/index.hh"
#include "src/lint/lexer.hh"

namespace piso::lint {

/** One rule violation (or suppression problem) at a source line. */
struct Finding
{
    std::string rule;
    std::string path;
    int line = 0;
    std::string message;
};

/** One registered rule. */
struct Rule
{
    const char *name;     //!< stable id used by allow(...) directives
    const char *summary;  //!< one-line description for --list-rules
    /** Does the rule apply to this project-relative path? */
    bool (*applies)(const std::string &path);
    /** Scan @p file and append raw findings (suppressions are applied
     *  by the engine afterwards). */
    void (*check)(const SourceFile &file, std::vector<Finding> &out);
};

/**
 * A cross-file rule: runs once per lint run over the semantic index
 * (src/lint/index.hh) instead of once per file, so it can join class
 * field lists against out-of-line save/load bodies or walk the whole
 * include graph. Findings carry the file/line of the offending
 * declaration or include, and the normal per-line `piso-lint: allow`
 * escape applies there.
 */
struct ProjectRule
{
    const char *name;     //!< stable id used by allow(...) directives
    const char *summary;  //!< one-line description for --list-rules
    /** Scan the whole-project index and append raw findings. */
    void (*check)(const ProjectIndex &index, std::vector<Finding> &out);
};

/** All registered per-file rules, in reporting order. */
const std::vector<Rule> &ruleRegistry();

/** All registered cross-file rules, in reporting order. */
const std::vector<ProjectRule> &projectRuleRegistry();

/** True when @p name names a registered rule (either registry). */
bool knownRule(const std::string &name);

/** @name Rule families that gate tree-wide even under --diff-base.
 *  A missing checkpoint field or an upward include is a whole-tree
 *  property: a diff touching neither line can still introduce one. */
/// @{
inline constexpr const char *kRuleCheckpointCoverage =
    "checkpoint-field-coverage";
inline constexpr const char *kRuleLayering = "layering";
/// @}

/** @name Rule names used by the engine's own suppression findings.
 *  These are not in the registry (they cannot be suppressed). */
/// @{
inline constexpr const char *kSuppressionJustification =
    "suppression-justification";
inline constexpr const char *kSuppressionUnknownRule =
    "suppression-unknown-rule";
inline constexpr const char *kSuppressionUnused = "suppression-unused";
/// @}

} // namespace piso::lint

#endif // PISO_LINT_RULES_HH
