#ifndef PISO_LINT_INDEX_HH
#define PISO_LINT_INDEX_HH

/**
 * @file
 * The semantic cross-file index behind piso-lint's project rules.
 *
 * The per-file token rules see one translation unit at a time; the
 * index is what lets a rule reason *across* files: which class declares
 * which non-static data members (parsed from headers), where each
 * `Class::method` definition lives, which files a file includes, and —
 * the checkpoint-specific part — the identifier sets referenced inside
 * every `save(CkptWriter&)` / `load(CkptReader&)` body.
 *
 * Deliberately still not a C++ front end (no libclang): the index is
 * produced by a single pass over the existing lexer's token stream,
 * tracking only namespace/class/block scope, template angle brackets,
 * and statement boundaries. What it does and does not resolve is
 * documented in DESIGN.md ("semantic index"); the short version is
 * that names join by identifier text, not by symbol, which is exactly
 * right for a tree with project-unique type names and a style checker
 * that wants to stay fast and dependency-free.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "src/lint/lexer.hh"

namespace piso::lint {

/** One `#include "src/..."`-style project-relative include. */
struct IncludeEdge
{
    int line = 0;
    std::string target;  //!< as written, e.g. "src/os/vm.hh"
};

/** One non-static data member of a class. */
struct FieldDecl
{
    std::string name;
    int line = 0;
};

/** A class/struct and its non-static data members. */
struct ClassDecl
{
    std::string name;  //!< innermost name (joins across files by text)
    int line = 0;
    std::vector<FieldDecl> fields;
};

/** The body of one `Class::save(CkptWriter&)` or
 *  `Class::load(CkptReader&)` definition (inline or out-of-line). */
struct CkptBody
{
    std::string className;
    bool isSave = false;  //!< save(CkptWriter&) vs load(CkptReader&)
    int line = 0;
    std::vector<std::string> idents;  //!< sorted unique body identifiers
};

/** One function *definition* (the function-to-file map). */
struct FuncDef
{
    std::string qualified;  //!< "Class::method" or a free "name"
    int line = 0;
};

/** Everything the project rules need to know about one file. */
struct FileSummary
{
    std::string path;          //!< project-relative
    std::uint64_t hash = 0;    //!< FNV-1a of the file contents
    std::vector<IncludeEdge> includes;
    std::vector<ClassDecl> classes;
    std::vector<CkptBody> ckptBodies;
    std::vector<FuncDef> functions;
    std::vector<Suppression> suppressions;
    /** Per-suppression resolved target line: the line the directive
     *  covers (own-line comments cover the next code line). Resolved at
     *  summary time so the engine can apply suppressions to cached
     *  files without re-lexing them. Empty-by-construction only for
     *  whole-file directives' entries (target 0 = any line). */
    std::vector<int> suppressionTargets;
};

/** The whole-project index: one summary per linted file, sorted by
 *  path. Non-owning views into the engine's storage. */
struct ProjectIndex
{
    std::vector<const FileSummary *> files;
};

/** FNV-1a over @p data — the content hash the incremental cache keys
 *  on (kept separate from the simulator's ckptFnv1a: the lint library
 *  must stay independent of libpiso). */
std::uint64_t lintFnv1a(const std::string &data);

/** Build a file's summary from its token stream (everything except
 *  `hash`, which only the engine knows). */
FileSummary summarizeFile(const SourceFile &file);

/**
 * The layer rank of a project-relative path, for the layering rule:
 * util/lint 0, sim 1, core 2, machine 3, os 4, workload 5, metrics 6,
 * src root (simulation/piso) 7, exp/config 8, tools/bench/examples 9.
 * Returns -1 for paths outside the ranked tree (tests, fixtures).
 */
int layerRank(const std::string &path);

/** Human name of a layer rank ("core", "os", ...). */
const char *layerName(int rank);

} // namespace piso::lint

#endif // PISO_LINT_INDEX_HH
