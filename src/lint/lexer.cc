#include "src/lint/lexer.hh"

#include <cctype>
#include <cstddef>

namespace piso::lint {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Strip leading/trailing whitespace. */
std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/**
 * Parse a suppression directive (`piso-lint:` then `allow(rule-a,
 * rule-b)` then an optional justification) out of @p comment. The
 * marker must lead the comment — modulo whitespace and doxygen
 * decoration — so documentation that merely *mentions* the syntax
 * mid-sentence is not a directive. Returns false when the comment
 * holds no directive.
 */
bool
parseDirective(const std::string &comment, Suppression &out)
{
    const std::string kMarker = "piso-lint:";
    std::size_t mark = 0;
    while (mark < comment.size() &&
           (std::isspace(static_cast<unsigned char>(comment[mark])) ||
            comment[mark] == '*' || comment[mark] == '!' ||
            comment[mark] == '/'))
        ++mark;
    if (comment.compare(mark, kMarker.size(), kMarker) != 0)
        return false;
    std::size_t i = mark + kMarker.size();
    while (i < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[i])))
        ++i;
    const std::string kAllow = "allow";
    const std::string kAllowFile = "allow-file";
    if (comment.compare(i, kAllowFile.size(), kAllowFile) == 0) {
        out.wholeFile = true;
        i += kAllowFile.size();
    } else if (comment.compare(i, kAllow.size(), kAllow) == 0) {
        i += kAllow.size();
    } else {
        return false;
    }
    while (i < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[i])))
        ++i;
    if (i >= comment.size() || comment[i] != '(')
        return false;
    ++i;
    const std::size_t close = comment.find(')', i);
    if (close == std::string::npos)
        return false;

    // Comma-separated rule names.
    std::string names = comment.substr(i, close - i);
    std::size_t pos = 0;
    while (pos <= names.size()) {
        const std::size_t comma = names.find(',', pos);
        const std::string name = trim(
            comma == std::string::npos ? names.substr(pos)
                                       : names.substr(pos, comma - pos));
        if (!name.empty())
            out.rules.push_back(name);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }

    // Optional justification after `--`.
    const std::size_t dash = comment.find("--", close);
    if (dash != std::string::npos)
        out.justification = trim(comment.substr(dash + 2));
    return true;
}

} // namespace

std::string
projectRelative(const std::string &path)
{
    // Normalise separators, then find the last component that names a
    // project root.
    std::string p = path;
    for (char &c : p) {
        if (c == '\\')
            c = '/';
    }
    std::size_t best = std::string::npos;
    std::size_t start = 0;
    while (start <= p.size()) {
        const std::size_t slash = p.find('/', start);
        const std::string comp =
            slash == std::string::npos ? p.substr(start)
                                       : p.substr(start, slash - start);
        if (comp == "src" || comp == "tools" || comp == "tests" ||
            comp == "bench" || comp == "examples") {
            best = start;
        }
        if (slash == std::string::npos)
            break;
        start = slash + 1;
    }
    return best == std::string::npos ? p : p.substr(best);
}

SourceFile
lexSource(std::string path, const std::string &text)
{
    SourceFile out;
    out.path = std::move(path);

    int line = 1;
    bool lineHasCode = false;  //!< code token seen on the current line
    std::size_t i = 0;
    const std::size_t n = text.size();

    auto push = [&](TokKind kind, std::string tok, bool preproc) {
        out.tokens.push_back(
            {kind, std::move(tok), line, preproc});
        lineHasCode = true;
    };

    // Line of the last directive (or its continuation), so wrapped
    // justifications can chain across comment lines.
    int lastDirectiveLine = -2;

    auto addComment = [&](int startLine, bool hadCode,
                          const std::string &body) {
        Suppression s;
        s.line = startLine;
        s.ownLine = !hadCode;
        if (parseDirective(body, s)) {
            lastDirectiveLine = startLine;
            out.suppressions.push_back(std::move(s));
            return;
        }
        // An own-line comment directly below an own-line directive
        // whose justification is already open continues it —
        // justifications routinely wrap (`--list-allows` shows the
        // whole sentence, not the first line).
        if (!hadCode && startLine == lastDirectiveLine + 1 &&
            !out.suppressions.empty() &&
            out.suppressions.back().ownLine &&
            !out.suppressions.back().justification.empty()) {
            const std::string cont = trim(body);
            if (!cont.empty()) {
                out.suppressions.back().justification += " " + cont;
                lastDirectiveLine = startLine;
            }
        }
    };

    bool preprocLine = false;  //!< current logical line starts with '#'

    while (i < n) {
        const char c = text[i];

        if (c == '\n') {
            ++line;
            lineHasCode = false;
            preprocLine = false;
            ++i;
            continue;
        }
        // Backslash-newline splices the next line into this logical
        // line; multi-line #define bodies stay flagged as preproc.
        if (c == '\\' && i + 1 < n &&
            (text[i + 1] == '\n' ||
             (text[i + 1] == '\r' && i + 2 < n && text[i + 2] == '\n'))) {
            i += text[i + 1] == '\n' ? 2 : 3;
            ++line;
            lineHasCode = false;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }

        // Line comment.
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
            const int startLine = line;
            const bool hadCode = lineHasCode;
            std::size_t e = i;
            while (e < n && text[e] != '\n')
                ++e;
            addComment(startLine, hadCode, text.substr(i + 2, e - i - 2));
            i = e;
            continue;
        }

        // Block comment.
        if (c == '/' && i + 1 < n && text[i + 1] == '*') {
            const int startLine = line;
            const bool hadCode = lineHasCode;
            std::size_t e = i + 2;
            while (e + 1 < n && !(text[e] == '*' && text[e + 1] == '/')) {
                if (text[e] == '\n') {
                    ++line;
                    lineHasCode = false;
                }
                ++e;
            }
            addComment(startLine, hadCode,
                       text.substr(i + 2, e - (i + 2)));
            i = e + 1 < n ? e + 2 : n;
            continue;
        }

        // Raw string literal.
        if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
            std::size_t d = i + 2;
            while (d < n && text[d] != '(')
                ++d;
            std::string delim = ")";
            delim += text.substr(i + 2, d - i - 2);
            delim += '"';
            const std::size_t end = text.find(delim, d);
            const std::size_t stop =
                end == std::string::npos ? n : end + delim.size();
            std::string body =
                text.substr(d + 1,
                            (end == std::string::npos ? n : end) - d - 1);
            push(TokKind::String, std::move(body), preprocLine);
            for (std::size_t k = i; k < stop; ++k) {
                if (text[k] == '\n')
                    ++line;
            }
            i = stop;
            continue;
        }

        // String / char literal.
        if (c == '"' || c == '\'') {
            const char quote = c;
            std::size_t e = i + 1;
            std::string body;
            while (e < n && text[e] != quote) {
                if (text[e] == '\\' && e + 1 < n) {
                    body += text[e];
                    body += text[e + 1];
                    e += 2;
                    continue;
                }
                if (text[e] == '\n')  // unterminated; resync
                    break;
                body += text[e];
                ++e;
            }
            push(quote == '"' ? TokKind::String : TokKind::Char,
                 std::move(body), preprocLine);
            i = e < n ? e + 1 : n;
            continue;
        }

        // Identifier.
        if (isIdentStart(c)) {
            std::size_t e = i + 1;
            while (e < n && isIdentChar(text[e]))
                ++e;
            push(TokKind::Ident, text.substr(i, e - i), preprocLine);
            i = e;
            continue;
        }

        // Number.
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t e = i + 1;
            while (e < n &&
                   (isIdentChar(text[e]) || text[e] == '.' ||
                    text[e] == '\'' ||
                    ((text[e] == '+' || text[e] == '-') && e > i &&
                     (text[e - 1] == 'e' || text[e - 1] == 'E' ||
                      text[e - 1] == 'p' || text[e - 1] == 'P')))) {
                ++e;
            }
            push(TokKind::Number, text.substr(i, e - i), preprocLine);
            i = e;
            continue;
        }

        // '#' opens a preprocessor logical line (with \-continuations).
        if (c == '#' && !lineHasCode) {
            preprocLine = true;
            push(TokKind::Punct, "#", true);
            ++i;
            continue;
        }

        // Punctuation; keep '::' and '->' whole for the rule matchers.
        if (c == ':' && i + 1 < n && text[i + 1] == ':') {
            push(TokKind::Punct, "::", preprocLine);
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < n && text[i + 1] == '>') {
            push(TokKind::Punct, "->", preprocLine);
            i += 2;
            continue;
        }
        push(TokKind::Punct, std::string(1, c), preprocLine);
        ++i;
    }

    return out;
}

} // namespace piso::lint
