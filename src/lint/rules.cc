#include "src/lint/rules.hh"

#include <algorithm>
#include <cctype>

namespace piso::lint {

namespace {

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/** Token text at @p i, or "" when out of range. */
const std::string &
at(const SourceFile &f, std::size_t i)
{
    static const std::string kEmpty;
    return i < f.tokens.size() ? f.tokens[i].text : kEmpty;
}

void
report(const SourceFile &f, std::vector<Finding> &out, const char *rule,
       int line, std::string message)
{
    out.push_back({rule, f.path, line, std::move(message)});
}

// ---------------------------------------------------------------------
// determinism-wallclock
// ---------------------------------------------------------------------

bool
wallclockApplies(const std::string &p)
{
    // The whole library is deterministic except the experiment layer,
    // where host-side timing (thread pools, sweep wall-clock) lives.
    return startsWith(p, "src/") && !startsWith(p, "src/exp/");
}

void
wallclockCheck(const SourceFile &f, std::vector<Finding> &out)
{
    static const char *kBannedIdents[] = {
        "system_clock",   "steady_clock", "high_resolution_clock",
        "random_device",  "gettimeofday", "clock_gettime",
        "localtime",      "gmtime",       "mktime",
        "timespec_get",
    };
    static const char *kBannedCalls[] = {"time", "rand", "srand",
                                         "clock"};
    for (std::size_t i = 0; i < f.tokens.size(); ++i) {
        const Token &t = f.tokens[i];
        if (t.kind != TokKind::Ident)
            continue;
        const bool banned =
            std::any_of(std::begin(kBannedIdents), std::end(kBannedIdents),
                        [&](const char *b) { return t.text == b; });
        if (banned) {
            report(f, out, "determinism-wallclock", t.line,
                   "wall-clock source '" + t.text +
                       "' in deterministic code (use the EventQueue "
                       "clock or piso::Rng; host timing belongs in "
                       "src/exp or tools/)");
            continue;
        }
        const bool call =
            std::any_of(std::begin(kBannedCalls), std::end(kBannedCalls),
                        [&](const char *b) { return t.text == b; });
        if (!call || at(f, i + 1) != "(")
            continue;
        const std::string &prev = at(f, i - 1);
        if (prev == "." || prev == "->")
            continue;  // member function of some simulator type
        if (prev == "::" && at(f, i - 2) != "std")
            continue;  // Foo::time(...) is not the libc call
        report(f, out, "determinism-wallclock", t.line,
               "call to '" + t.text +
                   "()' in deterministic code (use the EventQueue "
                   "clock or piso::Rng)");
    }
}

// ---------------------------------------------------------------------
// determinism-unordered
// ---------------------------------------------------------------------

bool
unorderedApplies(const std::string &p)
{
    // Everything that renders reports, JSON, or sweep output: iteration
    // order there is bytes on the wire.
    return startsWith(p, "src/metrics/") || startsWith(p, "src/exp/") ||
           p == "tools/piso_sweep.cc";
}

void
unorderedCheck(const SourceFile &f, std::vector<Finding> &out)
{
    static const char *kBanned[] = {"unordered_map", "unordered_set",
                                    "unordered_multimap",
                                    "unordered_multiset"};
    for (const Token &t : f.tokens) {
        if (t.kind != TokKind::Ident)
            continue;
        if (std::any_of(std::begin(kBanned), std::end(kBanned),
                        [&](const char *b) { return t.text == b; })) {
            report(f, out, "determinism-unordered", t.line,
                   "'" + t.text +
                       "' in an output/emission path (iteration order "
                       "is unspecified; use std::map, a sorted vector, "
                       "or a DenseTable)");
        }
    }
}

// ---------------------------------------------------------------------
// thread-global-state
// ---------------------------------------------------------------------

bool
globalStateApplies(const std::string &p)
{
    return startsWith(p, "src/sim/") || startsWith(p, "src/os/") ||
           startsWith(p, "src/core/") || startsWith(p, "src/machine/") ||
           p == "src/simulation.cc" || p == "src/simulation.hh" ||
           p == "src/piso.hh";
}

bool
isConstQual(const std::string &t)
{
    return t == "const" || t == "constexpr" || t == "constinit" ||
           t == "thread_local";
}

void
globalStateCheck(const SourceFile &f, std::vector<Finding> &out)
{
    enum class Scope { Namespace, Class, Block };

    // Non-preprocessor tokens only: #include / #define lines would
    // otherwise confuse statement boundaries.
    std::vector<std::size_t> code;
    code.reserve(f.tokens.size());
    for (std::size_t i = 0; i < f.tokens.size(); ++i) {
        if (!f.tokens[i].preproc)
            code.push_back(i);
    }

    // Classify the statement starting at code index k. Returns a
    // Finding when it declares a mutable variable.
    auto classify = [&](std::size_t k, bool staticLocal) {
        static const char *kSkip[] = {
            "using",  "typedef", "template", "friend", "static_assert",
            "namespace", "class", "struct",  "enum",   "union",
            "concept", "extern", "asm",      "public", "private",
            "protected"};
        const Token &t0 = f.tokens[code[k]];
        if (t0.kind != TokKind::Ident)
            return;
        if (std::any_of(std::begin(kSkip), std::end(kSkip),
                        [&](const char *s) { return t0.text == s; }))
            return;

        bool constish = false;
        int angle = 0;
        std::string name;
        int nameLine = t0.line;
        for (std::size_t j = k; j < code.size(); ++j) {
            const Token &t = f.tokens[code[j]];
            if (t.kind == TokKind::Ident) {
                if (isConstQual(t.text)) {
                    constish = true;
                } else if (t.text == "operator") {
                    return;  // operator overload: a function
                } else if (angle == 0) {
                    name = t.text;
                    nameLine = t.line;
                }
                continue;
            }
            if (t.text == "<") {
                ++angle;
                continue;
            }
            if (t.text == ">") {
                if (angle > 0)
                    --angle;
                continue;
            }
            if (angle > 0)
                continue;
            if (t.text == "(")
                return;  // function declaration or definition
            if (t.text == "=" || t.text == ";" || t.text == "{") {
                if (constish || name.empty())
                    return;
                report(f, out, "thread-global-state", nameLine,
                       staticLocal
                           ? "static local '" + name +
                                 "' holds mutable state (sweep workers "
                                 "share it; use a member or a "
                                 "per-thread context)"
                           : "mutable namespace-scope state '" + name +
                                 "' in the sim core (sweep workers "
                                 "share it; use Simulation members or "
                                 "a thread_local context)");
                return;
            }
            if (t.text == "}")
                return;  // lost track; bail out quietly
        }
    };

    std::vector<Scope> stack;
    int pending = 0;  // 0 none, 1 namespace, 2 class
    int paren = 0;
    bool stmtStart = true;
    for (std::size_t k = 0; k < code.size(); ++k) {
        const Token &t = f.tokens[code[k]];
        if (t.kind == TokKind::Punct) {
            if (t.text == "(") {
                ++paren;
            } else if (t.text == ")") {
                if (paren > 0)
                    --paren;
            } else if (t.text == "{") {
                stack.push_back(paren == 0 && pending == 1
                                    ? Scope::Namespace
                                    : (paren == 0 && pending == 2
                                           ? Scope::Class
                                           : Scope::Block));
                pending = 0;
                stmtStart = true;
                continue;
            } else if (t.text == "}") {
                if (!stack.empty())
                    stack.pop_back();
                stmtStart = true;
                continue;
            } else if (t.text == ";" && paren == 0) {
                pending = 0;
                stmtStart = true;
                continue;
            }
        } else if (t.kind == TokKind::Ident && paren == 0) {
            if (t.text == "namespace")
                pending = 1;
            else if (t.text == "class" || t.text == "struct" ||
                     t.text == "union" || t.text == "enum")
                pending = 2;
        }

        if (stmtStart && paren == 0) {
            stmtStart = false;
            const bool nsScope =
                std::all_of(stack.begin(), stack.end(), [](Scope s) {
                    return s == Scope::Namespace;
                });
            if (nsScope)
                classify(k, false);
            else if (stack.back() == Scope::Block &&
                     t.kind == TokKind::Ident && t.text == "static")
                classify(k, true);
        }
    }
}

// ---------------------------------------------------------------------
// table-map-key
// ---------------------------------------------------------------------

bool
tableApplies(const std::string &p)
{
    return startsWith(p, "src/") || startsWith(p, "tools/");
}

void
tableCheck(const SourceFile &f, std::vector<Finding> &out)
{
    for (std::size_t i = 0; i + 2 < f.tokens.size(); ++i) {
        const Token &t = f.tokens[i];
        if (t.kind != TokKind::Ident ||
            (t.text != "map" && t.text != "multimap"))
            continue;
        if (at(f, i + 1) != "<")
            continue;
        const std::string &key = at(f, i + 2);
        if (key != "SpuId" && key != "Pid")
            continue;
        report(f, out, "table-map-key", t.line,
               "std::" + t.text + "<" + key +
                   ", ...> declaration (ids are small and dense; use "
                   "SpuTable/DenseTable from src/core/spu_table.hh)");
    }
}

// ---------------------------------------------------------------------
// memory-raw-new
// ---------------------------------------------------------------------

bool
rawNewApplies(const std::string &p)
{
    return startsWith(p, "src/") || startsWith(p, "tools/");
}

void
rawNewCheck(const SourceFile &f, std::vector<Finding> &out)
{
    for (std::size_t i = 0; i < f.tokens.size(); ++i) {
        const Token &t = f.tokens[i];
        if (t.kind != TokKind::Ident || t.preproc)
            continue;  // '#include <new>' is not an allocation
        const std::string &prev = at(f, i - 1);
        if (t.text == "new") {
            if (prev == "operator")
                continue;
            // Placement new ('new (buf) T') constructs into storage
            // someone else owns — the slab pattern itself — so only
            // allocating new is flagged.
            if (at(f, i + 1) == "(")
                continue;
            report(f, out, "memory-raw-new", t.line,
                   "raw 'new' outside the slab allocators (use "
                   "containers, std::unique_ptr, or the event/buffer "
                   "slabs)");
        } else if (t.text == "delete") {
            if (prev == "operator" || prev == "=")
                continue;  // operator delete / deleted function
            report(f, out, "memory-raw-new", t.line,
                   "raw 'delete' outside the slab allocators (owning "
                   "types should hold containers or std::unique_ptr)");
        }
    }
}

// ---------------------------------------------------------------------
// hygiene-include-guard
// ---------------------------------------------------------------------

bool
guardApplies(const std::string &p)
{
    return endsWith(p, ".hh") &&
           (startsWith(p, "src/") || startsWith(p, "tools/"));
}

/** Canonical guard: src/sim/event_queue.hh -> PISO_SIM_EVENT_QUEUE_HH. */
std::string
expectedGuard(const std::string &path)
{
    std::string p = path;
    if (startsWith(p, "src/"))
        p = p.substr(4);
    std::string guard = "PISO_";
    for (char c : p) {
        if (c == '/' || c == '.')
            guard += '_';
        else
            guard += static_cast<char>(
                std::toupper(static_cast<unsigned char>(c)));
    }
    return guard;
}

void
guardCheck(const SourceFile &f, std::vector<Finding> &out)
{
    const std::string want = expectedGuard(f.path);
    const auto &ts = f.tokens;
    if (ts.size() >= 2 && ts[0].text == "#" && ts[1].text == "pragma") {
        report(f, out, "hygiene-include-guard", ts[0].line,
               "#pragma once (this tree uses #ifndef " + want +
                   " guards; keep the convention consistent)");
        return;
    }
    if (ts.size() < 6 || ts[0].text != "#" || ts[1].text != "ifndef" ||
        ts[3].text != "#" || ts[4].text != "define") {
        report(f, out, "hygiene-include-guard", 1,
               "missing include guard (expected #ifndef " + want +
                   " / #define " + want + " as the first directives)");
        return;
    }
    if (ts[2].text != want || ts[5].text != ts[2].text) {
        report(f, out, "hygiene-include-guard", ts[2].line,
               "include guard '" + ts[2].text + "' does not match the "
               "canonical name '" + want + "'");
    }
}

// ---------------------------------------------------------------------
// hygiene-io
// ---------------------------------------------------------------------

bool
ioApplies(const std::string &p)
{
    // src/metrics *is* the reporting layer; everything else in the
    // library must stay quiet.
    return startsWith(p, "src/") && !startsWith(p, "src/metrics/");
}

void
ioCheck(const SourceFile &f, std::vector<Finding> &out)
{
    static const char *kCalls[] = {"printf", "fprintf", "vprintf",
                                   "vfprintf", "puts", "fputs",
                                   "putchar", "fwrite"};
    static const char *kStreams[] = {"cout", "cerr", "clog"};
    for (std::size_t i = 0; i < f.tokens.size(); ++i) {
        const Token &t = f.tokens[i];
        if (t.kind != TokKind::Ident)
            continue;
        const bool call =
            std::any_of(std::begin(kCalls), std::end(kCalls),
                        [&](const char *b) { return t.text == b; });
        if (call && at(f, i + 1) == "(") {
            report(f, out, "hygiene-io", t.line,
                   "direct stdio ('" + t.text +
                       "') in the library (reports go through "
                       "src/metrics; diagnostics through PISO_INFO/"
                       "PISO_TRACE)");
            continue;
        }
        const bool stream =
            std::any_of(std::begin(kStreams), std::end(kStreams),
                        [&](const char *b) { return t.text == b; });
        if (stream && (at(f, i + 1) == "<<" ||
                       (at(f, i - 1) == "::" && at(f, i - 2) == "std"))) {
            report(f, out, "hygiene-io", t.line,
                   "direct stream output ('std::" + t.text +
                       "') in the library (reports go through "
                       "src/metrics)");
        }
    }
}

// ---------------------------------------------------------------------
// error-taxonomy
// ---------------------------------------------------------------------

bool
errorTaxonomyApplies(const std::string &p)
{
    // The layers the sweep runner quarantines: every failure escaping
    // a task must carry a SimError category it can act on.
    return startsWith(p, "src/exp/") || startsWith(p, "src/sim/");
}

void
errorTaxonomyCheck(const SourceFile &f, std::vector<Finding> &out)
{
    for (std::size_t i = 0; i < f.tokens.size(); ++i) {
        const Token &t = f.tokens[i];
        if (t.kind != TokKind::Ident || t.text != "throw")
            continue;
        std::size_t j = i + 1;
        if (at(f, j) == "std" && at(f, j + 1) == "::")
            j += 2;
        if (at(f, j) == "runtime_error" && at(f, j + 1) == "(") {
            report(f, out, "error-taxonomy", t.line,
                   "bare 'throw std::runtime_error' (throw a SimError "
                   "subclass from src/util/error.hh so the sweep "
                   "runner can classify and quarantine the failure)");
        }
    }
}

// ---------------------------------------------------------------------
// hot-path-full-scan
// ---------------------------------------------------------------------

bool
fullScanApplies(const std::string &p)
{
    // The policy layer: its periodic loops must stay O(active SPUs) on
    // big machines (bench/ext_scale asserts the scaling). The table
    // container itself is the one place allowed to sweep its storage.
    return startsWith(p, "src/core/") && p != "src/core/spu_table.hh";
}

void
fullScanCheck(const SourceFile &f, std::vector<Finding> &out)
{
    // Pass 1: names declared in this file with a SpuTable/DenseTable
    // type — members, locals, and by-reference parameters alike.
    std::vector<std::string> tables;
    for (std::size_t i = 0; i + 1 < f.tokens.size(); ++i) {
        const Token &t = f.tokens[i];
        if (t.kind != TokKind::Ident ||
            (t.text != "SpuTable" && t.text != "DenseTable"))
            continue;
        if (at(f, i + 1) != "<")
            continue;
        std::size_t j = i + 1;
        int angle = 0;
        for (; j < f.tokens.size(); ++j) {
            if (at(f, j) == "<") {
                ++angle;
            } else if (at(f, j) == ">") {
                if (--angle == 0) {
                    ++j;
                    break;
                }
            }
        }
        while (j < f.tokens.size() &&
               (at(f, j) == "&" || at(f, j) == "*" || at(f, j) == "const"))
            ++j;
        if (j >= f.tokens.size() || f.tokens[j].kind != TokKind::Ident)
            continue;
        // 'SpuTable<T> name(' is a function returning a table and
        // 'SpuTable<T> Class::member(' a qualified definition — only
        // variable declarations name something iterable.
        if (at(f, j + 1) == "(" || at(f, j + 1) == "::")
            continue;
        tables.push_back(f.tokens[j].text);
    }

    // Pass 2: range-for statements. Two signals mark a full table
    // scan: the sequence expression names a table declared above, or
    // the loop variable is a structured binding — the (id, value) pair
    // iteration only the dense tables yield in this layer (members are
    // often declared in the header, invisible to this file).
    for (std::size_t i = 0; i + 2 < f.tokens.size(); ++i) {
        const Token &t = f.tokens[i];
        if (t.kind != TokKind::Ident || t.text != "for" ||
            at(f, i + 1) != "(")
            continue;
        int depth = 1;
        bool binding = false;
        std::size_t colon = 0;
        for (std::size_t j = i + 2; j < f.tokens.size() && depth > 0;
             ++j) {
            const std::string &x = at(f, j);
            if (x == "(") {
                ++depth;
            } else if (x == ")") {
                --depth;
            } else if (depth == 1 && x == ";") {
                break;  // classic for (init; cond; step)
            } else if (depth == 1 && x == ":") {
                colon = j;
                break;
            } else if (x == "[") {
                binding = true;
            }
        }
        if (colon == 0)
            continue;
        std::string table;
        int depth2 = 1;
        for (std::size_t j = colon + 1; j < f.tokens.size() && depth2 > 0;
             ++j) {
            const std::string &x = at(f, j);
            if (x == "(") {
                ++depth2;
            } else if (x == ")") {
                --depth2;
            } else if (f.tokens[j].kind == TokKind::Ident &&
                       std::find(tables.begin(), tables.end(), x) !=
                           tables.end()) {
                table = x;
            }
        }
        if (!table.empty()) {
            report(f, out, "hot-path-full-scan", t.line,
                   "range-for over the whole table '" + table +
                       "' in src/core (policy loops must stay O(active "
                       "SPUs); iterate an active-set index, or justify "
                       "with piso-lint: allow)");
        } else if (binding) {
            report(f, out, "hot-path-full-scan", t.line,
                   "structured-binding sweep of a dense table in "
                   "src/core (policy loops must stay O(active SPUs); "
                   "iterate an active-set index, or justify with "
                   "piso-lint: allow)");
        }
    }
}

} // namespace

const std::vector<Rule> &
ruleRegistry()
{
    static const std::vector<Rule> kRules = {
        {"determinism-wallclock",
         "wall-clock/time-of-day sources outside src/exp and tools/",
         wallclockApplies, wallclockCheck},
        {"determinism-unordered",
         "unordered containers in report/JSON/sweep emission paths",
         unorderedApplies, unorderedCheck},
        {"thread-global-state",
         "mutable namespace-scope or static-local state in the sim core",
         globalStateApplies, globalStateCheck},
        {"table-map-key",
         "std::map keyed by SpuId/Pid (use SpuTable/DenseTable)",
         tableApplies, tableCheck},
        {"memory-raw-new",
         "raw new/delete outside the slab allocators",
         rawNewApplies, rawNewCheck},
        {"hygiene-include-guard",
         "headers carry the canonical #ifndef PISO_..._HH guard",
         guardApplies, guardCheck},
        {"hygiene-io",
         "direct stdio/stream output outside src/metrics",
         ioApplies, ioCheck},
        {"error-taxonomy",
         "bare throw std::runtime_error in src/exp and src/sim "
         "(use SimError)",
         errorTaxonomyApplies, errorTaxonomyCheck},
        {"hot-path-full-scan",
         "full SpuTable/DenseTable iteration on src/core policy paths",
         fullScanApplies, fullScanCheck},
    };
    return kRules;
}

bool
knownRule(const std::string &name)
{
    const auto &rules = ruleRegistry();
    return std::any_of(rules.begin(), rules.end(), [&](const Rule &r) {
        return name == r.name;
    });
}

} // namespace piso::lint
