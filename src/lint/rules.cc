#include "src/lint/rules.hh"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>

namespace piso::lint {

namespace {

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/** Token text at @p i, or "" when out of range. */
const std::string &
at(const SourceFile &f, std::size_t i)
{
    static const std::string kEmpty;
    return i < f.tokens.size() ? f.tokens[i].text : kEmpty;
}

void
report(const SourceFile &f, std::vector<Finding> &out, const char *rule,
       int line, std::string message)
{
    out.push_back({rule, f.path, line, std::move(message)});
}

// ---------------------------------------------------------------------
// determinism-wallclock
// ---------------------------------------------------------------------

bool
wallclockApplies(const std::string &p)
{
    // The whole library is deterministic except the experiment layer,
    // where host-side timing (thread pools, sweep wall-clock) lives.
    // Benchmarks and examples are covered too: measuring wall time
    // there is legitimate but must say so with an allow-file().
    return (startsWith(p, "src/") && !startsWith(p, "src/exp/")) ||
           startsWith(p, "bench/") || startsWith(p, "examples/");
}

void
wallclockCheck(const SourceFile &f, std::vector<Finding> &out)
{
    static const char *kBannedIdents[] = {
        "system_clock",   "steady_clock", "high_resolution_clock",
        "random_device",  "gettimeofday", "clock_gettime",
        "localtime",      "gmtime",       "mktime",
        "timespec_get",
    };
    static const char *kBannedCalls[] = {"time", "rand", "srand",
                                         "clock"};
    for (std::size_t i = 0; i < f.tokens.size(); ++i) {
        const Token &t = f.tokens[i];
        if (t.kind != TokKind::Ident)
            continue;
        const bool banned =
            std::any_of(std::begin(kBannedIdents), std::end(kBannedIdents),
                        [&](const char *b) { return t.text == b; });
        if (banned) {
            report(f, out, "determinism-wallclock", t.line,
                   "wall-clock source '" + t.text +
                       "' in deterministic code (use the EventQueue "
                       "clock or piso::Rng; host timing belongs in "
                       "src/exp or tools/)");
            continue;
        }
        const bool call =
            std::any_of(std::begin(kBannedCalls), std::end(kBannedCalls),
                        [&](const char *b) { return t.text == b; });
        if (!call || at(f, i + 1) != "(")
            continue;
        const std::string &prev = at(f, i - 1);
        if (prev == "." || prev == "->")
            continue;  // member function of some simulator type
        if (prev == "::" && at(f, i - 2) != "std")
            continue;  // Foo::time(...) is not the libc call
        report(f, out, "determinism-wallclock", t.line,
               "call to '" + t.text +
                   "()' in deterministic code (use the EventQueue "
                   "clock or piso::Rng)");
    }
}

// ---------------------------------------------------------------------
// determinism-unordered
// ---------------------------------------------------------------------

bool
unorderedApplies(const std::string &p)
{
    // Everything that renders reports, JSON, or sweep output: iteration
    // order there is bytes on the wire. Benchmarks and examples print
    // results too, so they are held to the same bar.
    return startsWith(p, "src/metrics/") || startsWith(p, "src/exp/") ||
           p == "tools/piso_sweep.cc" || startsWith(p, "bench/") ||
           startsWith(p, "examples/");
}

void
unorderedCheck(const SourceFile &f, std::vector<Finding> &out)
{
    static const char *kBanned[] = {"unordered_map", "unordered_set",
                                    "unordered_multimap",
                                    "unordered_multiset"};
    for (const Token &t : f.tokens) {
        if (t.kind != TokKind::Ident)
            continue;
        if (std::any_of(std::begin(kBanned), std::end(kBanned),
                        [&](const char *b) { return t.text == b; })) {
            report(f, out, "determinism-unordered", t.line,
                   "'" + t.text +
                       "' in an output/emission path (iteration order "
                       "is unspecified; use std::map, a sorted vector, "
                       "or a DenseTable)");
        }
    }
}

// ---------------------------------------------------------------------
// thread-global-state
// ---------------------------------------------------------------------

bool
globalStateApplies(const std::string &p)
{
    return startsWith(p, "src/sim/") || startsWith(p, "src/os/") ||
           startsWith(p, "src/core/") || startsWith(p, "src/machine/") ||
           p == "src/simulation.cc" || p == "src/simulation.hh" ||
           p == "src/piso.hh";
}

bool
isConstQual(const std::string &t)
{
    return t == "const" || t == "constexpr" || t == "constinit" ||
           t == "thread_local";
}

void
globalStateCheck(const SourceFile &f, std::vector<Finding> &out)
{
    enum class Scope { Namespace, Class, Block };

    // Non-preprocessor tokens only: #include / #define lines would
    // otherwise confuse statement boundaries.
    std::vector<std::size_t> code;
    code.reserve(f.tokens.size());
    for (std::size_t i = 0; i < f.tokens.size(); ++i) {
        if (!f.tokens[i].preproc)
            code.push_back(i);
    }

    // Classify the statement starting at code index k. Returns a
    // Finding when it declares a mutable variable.
    auto classify = [&](std::size_t k, bool staticLocal) {
        static const char *kSkip[] = {
            "using",  "typedef", "template", "friend", "static_assert",
            "namespace", "class", "struct",  "enum",   "union",
            "concept", "extern", "asm",      "public", "private",
            "protected"};
        const Token &t0 = f.tokens[code[k]];
        if (t0.kind != TokKind::Ident)
            return;
        if (std::any_of(std::begin(kSkip), std::end(kSkip),
                        [&](const char *s) { return t0.text == s; }))
            return;

        bool constish = false;
        int angle = 0;
        std::string name;
        int nameLine = t0.line;
        for (std::size_t j = k; j < code.size(); ++j) {
            const Token &t = f.tokens[code[j]];
            if (t.kind == TokKind::Ident) {
                if (isConstQual(t.text)) {
                    constish = true;
                } else if (t.text == "operator") {
                    return;  // operator overload: a function
                } else if (angle == 0) {
                    name = t.text;
                    nameLine = t.line;
                }
                continue;
            }
            if (t.text == "<") {
                ++angle;
                continue;
            }
            if (t.text == ">") {
                if (angle > 0)
                    --angle;
                continue;
            }
            if (angle > 0)
                continue;
            if (t.text == "(")
                return;  // function declaration or definition
            if (t.text == "=" || t.text == ";" || t.text == "{") {
                if (constish || name.empty())
                    return;
                report(f, out, "thread-global-state", nameLine,
                       staticLocal
                           ? "static local '" + name +
                                 "' holds mutable state (sweep workers "
                                 "share it; use a member or a "
                                 "per-thread context)"
                           : "mutable namespace-scope state '" + name +
                                 "' in the sim core (sweep workers "
                                 "share it; use Simulation members or "
                                 "a thread_local context)");
                return;
            }
            if (t.text == "}")
                return;  // lost track; bail out quietly
        }
    };

    std::vector<Scope> stack;
    int pending = 0;  // 0 none, 1 namespace, 2 class
    int paren = 0;
    bool stmtStart = true;
    for (std::size_t k = 0; k < code.size(); ++k) {
        const Token &t = f.tokens[code[k]];
        if (t.kind == TokKind::Punct) {
            if (t.text == "(") {
                ++paren;
            } else if (t.text == ")") {
                if (paren > 0)
                    --paren;
            } else if (t.text == "{") {
                stack.push_back(paren == 0 && pending == 1
                                    ? Scope::Namespace
                                    : (paren == 0 && pending == 2
                                           ? Scope::Class
                                           : Scope::Block));
                pending = 0;
                stmtStart = true;
                continue;
            } else if (t.text == "}") {
                if (!stack.empty())
                    stack.pop_back();
                stmtStart = true;
                continue;
            } else if (t.text == ";" && paren == 0) {
                pending = 0;
                stmtStart = true;
                continue;
            }
        } else if (t.kind == TokKind::Ident && paren == 0) {
            if (t.text == "namespace")
                pending = 1;
            else if (t.text == "class" || t.text == "struct" ||
                     t.text == "union" || t.text == "enum")
                pending = 2;
        }

        if (stmtStart && paren == 0) {
            stmtStart = false;
            const bool nsScope =
                std::all_of(stack.begin(), stack.end(), [](Scope s) {
                    return s == Scope::Namespace;
                });
            if (nsScope)
                classify(k, false);
            else if (stack.back() == Scope::Block &&
                     t.kind == TokKind::Ident && t.text == "static")
                classify(k, true);
        }
    }
}

// ---------------------------------------------------------------------
// table-map-key
// ---------------------------------------------------------------------

bool
tableApplies(const std::string &p)
{
    return startsWith(p, "src/") || startsWith(p, "tools/");
}

void
tableCheck(const SourceFile &f, std::vector<Finding> &out)
{
    for (std::size_t i = 0; i + 2 < f.tokens.size(); ++i) {
        const Token &t = f.tokens[i];
        if (t.kind != TokKind::Ident ||
            (t.text != "map" && t.text != "multimap"))
            continue;
        if (at(f, i + 1) != "<")
            continue;
        const std::string &key = at(f, i + 2);
        if (key != "SpuId" && key != "Pid")
            continue;
        report(f, out, "table-map-key", t.line,
               "std::" + t.text + "<" + key +
                   ", ...> declaration (ids are small and dense; use "
                   "SpuTable/DenseTable from src/core/spu_table.hh)");
    }
}

// ---------------------------------------------------------------------
// memory-raw-new
// ---------------------------------------------------------------------

bool
rawNewApplies(const std::string &p)
{
    return startsWith(p, "src/") || startsWith(p, "tools/");
}

void
rawNewCheck(const SourceFile &f, std::vector<Finding> &out)
{
    for (std::size_t i = 0; i < f.tokens.size(); ++i) {
        const Token &t = f.tokens[i];
        if (t.kind != TokKind::Ident || t.preproc)
            continue;  // '#include <new>' is not an allocation
        const std::string &prev = at(f, i - 1);
        if (t.text == "new") {
            if (prev == "operator")
                continue;
            // Placement new ('new (buf) T') constructs into storage
            // someone else owns — the slab pattern itself — so only
            // allocating new is flagged.
            if (at(f, i + 1) == "(")
                continue;
            report(f, out, "memory-raw-new", t.line,
                   "raw 'new' outside the slab allocators (use "
                   "containers, std::unique_ptr, or the event/buffer "
                   "slabs)");
        } else if (t.text == "delete") {
            if (prev == "operator" || prev == "=")
                continue;  // operator delete / deleted function
            report(f, out, "memory-raw-new", t.line,
                   "raw 'delete' outside the slab allocators (owning "
                   "types should hold containers or std::unique_ptr)");
        }
    }
}

// ---------------------------------------------------------------------
// hygiene-include-guard
// ---------------------------------------------------------------------

bool
guardApplies(const std::string &p)
{
    return endsWith(p, ".hh") &&
           (startsWith(p, "src/") || startsWith(p, "tools/") ||
            startsWith(p, "bench/") || startsWith(p, "examples/"));
}

/** Canonical guard: src/sim/event_queue.hh -> PISO_SIM_EVENT_QUEUE_HH. */
std::string
expectedGuard(const std::string &path)
{
    std::string p = path;
    if (startsWith(p, "src/"))
        p = p.substr(4);
    std::string guard = "PISO_";
    for (char c : p) {
        if (c == '/' || c == '.')
            guard += '_';
        else
            guard += static_cast<char>(
                std::toupper(static_cast<unsigned char>(c)));
    }
    return guard;
}

void
guardCheck(const SourceFile &f, std::vector<Finding> &out)
{
    const std::string want = expectedGuard(f.path);
    const auto &ts = f.tokens;
    if (ts.size() >= 2 && ts[0].text == "#" && ts[1].text == "pragma") {
        report(f, out, "hygiene-include-guard", ts[0].line,
               "#pragma once (this tree uses #ifndef " + want +
                   " guards; keep the convention consistent)");
        return;
    }
    if (ts.size() < 6 || ts[0].text != "#" || ts[1].text != "ifndef" ||
        ts[3].text != "#" || ts[4].text != "define") {
        report(f, out, "hygiene-include-guard", 1,
               "missing include guard (expected #ifndef " + want +
                   " / #define " + want + " as the first directives)");
        return;
    }
    if (ts[2].text != want || ts[5].text != ts[2].text) {
        report(f, out, "hygiene-include-guard", ts[2].line,
               "include guard '" + ts[2].text + "' does not match the "
               "canonical name '" + want + "'");
    }
}

// ---------------------------------------------------------------------
// hygiene-io
// ---------------------------------------------------------------------

bool
ioApplies(const std::string &p)
{
    // src/metrics *is* the reporting layer; everything else in the
    // library must stay quiet.
    return startsWith(p, "src/") && !startsWith(p, "src/metrics/");
}

void
ioCheck(const SourceFile &f, std::vector<Finding> &out)
{
    static const char *kCalls[] = {"printf", "fprintf", "vprintf",
                                   "vfprintf", "puts", "fputs",
                                   "putchar", "fwrite"};
    static const char *kStreams[] = {"cout", "cerr", "clog"};
    for (std::size_t i = 0; i < f.tokens.size(); ++i) {
        const Token &t = f.tokens[i];
        if (t.kind != TokKind::Ident)
            continue;
        const bool call =
            std::any_of(std::begin(kCalls), std::end(kCalls),
                        [&](const char *b) { return t.text == b; });
        if (call && at(f, i + 1) == "(") {
            report(f, out, "hygiene-io", t.line,
                   "direct stdio ('" + t.text +
                       "') in the library (reports go through "
                       "src/metrics; diagnostics through PISO_INFO/"
                       "PISO_TRACE)");
            continue;
        }
        const bool stream =
            std::any_of(std::begin(kStreams), std::end(kStreams),
                        [&](const char *b) { return t.text == b; });
        if (stream && (at(f, i + 1) == "<<" ||
                       (at(f, i - 1) == "::" && at(f, i - 2) == "std"))) {
            report(f, out, "hygiene-io", t.line,
                   "direct stream output ('std::" + t.text +
                       "') in the library (reports go through "
                       "src/metrics)");
        }
    }
}

// ---------------------------------------------------------------------
// error-taxonomy
// ---------------------------------------------------------------------

bool
errorTaxonomyApplies(const std::string &p)
{
    // The layers the sweep runner quarantines: every failure escaping
    // a task must carry a SimError category it can act on.
    return startsWith(p, "src/exp/") || startsWith(p, "src/sim/");
}

void
errorTaxonomyCheck(const SourceFile &f, std::vector<Finding> &out)
{
    for (std::size_t i = 0; i < f.tokens.size(); ++i) {
        const Token &t = f.tokens[i];
        if (t.kind != TokKind::Ident || t.text != "throw")
            continue;
        std::size_t j = i + 1;
        if (at(f, j) == "std" && at(f, j + 1) == "::")
            j += 2;
        if (at(f, j) == "runtime_error" && at(f, j + 1) == "(") {
            report(f, out, "error-taxonomy", t.line,
                   "bare 'throw std::runtime_error' (throw a SimError "
                   "subclass from src/util/error.hh so the sweep "
                   "runner can classify and quarantine the failure)");
        }
    }
}

// ---------------------------------------------------------------------
// hot-path-full-scan
// ---------------------------------------------------------------------

bool
fullScanApplies(const std::string &p)
{
    // The policy layer: its periodic loops must stay O(active SPUs) on
    // big machines (bench/ext_scale asserts the scaling). The table
    // container itself is the one place allowed to sweep its storage.
    return startsWith(p, "src/core/") && p != "src/core/spu_table.hh";
}

void
fullScanCheck(const SourceFile &f, std::vector<Finding> &out)
{
    // Pass 1: names declared in this file with a SpuTable/DenseTable
    // type — members, locals, and by-reference parameters alike.
    std::vector<std::string> tables;
    for (std::size_t i = 0; i + 1 < f.tokens.size(); ++i) {
        const Token &t = f.tokens[i];
        if (t.kind != TokKind::Ident ||
            (t.text != "SpuTable" && t.text != "DenseTable"))
            continue;
        if (at(f, i + 1) != "<")
            continue;
        std::size_t j = i + 1;
        int angle = 0;
        for (; j < f.tokens.size(); ++j) {
            if (at(f, j) == "<") {
                ++angle;
            } else if (at(f, j) == ">") {
                if (--angle == 0) {
                    ++j;
                    break;
                }
            }
        }
        while (j < f.tokens.size() &&
               (at(f, j) == "&" || at(f, j) == "*" || at(f, j) == "const"))
            ++j;
        if (j >= f.tokens.size() || f.tokens[j].kind != TokKind::Ident)
            continue;
        // 'SpuTable<T> name(' is a function returning a table and
        // 'SpuTable<T> Class::member(' a qualified definition — only
        // variable declarations name something iterable.
        if (at(f, j + 1) == "(" || at(f, j + 1) == "::")
            continue;
        tables.push_back(f.tokens[j].text);
    }

    // Pass 2: range-for statements. Two signals mark a full table
    // scan: the sequence expression names a table declared above, or
    // the loop variable is a structured binding — the (id, value) pair
    // iteration only the dense tables yield in this layer (members are
    // often declared in the header, invisible to this file).
    for (std::size_t i = 0; i + 2 < f.tokens.size(); ++i) {
        const Token &t = f.tokens[i];
        if (t.kind != TokKind::Ident || t.text != "for" ||
            at(f, i + 1) != "(")
            continue;
        int depth = 1;
        bool binding = false;
        std::size_t colon = 0;
        for (std::size_t j = i + 2; j < f.tokens.size() && depth > 0;
             ++j) {
            const std::string &x = at(f, j);
            if (x == "(") {
                ++depth;
            } else if (x == ")") {
                --depth;
            } else if (depth == 1 && x == ";") {
                break;  // classic for (init; cond; step)
            } else if (depth == 1 && x == ":") {
                colon = j;
                break;
            } else if (x == "[") {
                binding = true;
            }
        }
        if (colon == 0)
            continue;
        std::string table;
        int depth2 = 1;
        for (std::size_t j = colon + 1; j < f.tokens.size() && depth2 > 0;
             ++j) {
            const std::string &x = at(f, j);
            if (x == "(") {
                ++depth2;
            } else if (x == ")") {
                --depth2;
            } else if (f.tokens[j].kind == TokKind::Ident &&
                       std::find(tables.begin(), tables.end(), x) !=
                           tables.end()) {
                table = x;
            }
        }
        if (!table.empty()) {
            report(f, out, "hot-path-full-scan", t.line,
                   "range-for over the whole table '" + table +
                       "' in src/core (policy loops must stay O(active "
                       "SPUs); iterate an active-set index, or justify "
                       "with piso-lint: allow)");
        } else if (binding) {
            report(f, out, "hot-path-full-scan", t.line,
                   "structured-binding sweep of a dense table in "
                   "src/core (policy loops must stay O(active SPUs); "
                   "iterate an active-set index, or justify with "
                   "piso-lint: allow)");
        }
    }
}

// ---------------------------------------------------------------------
// time-unit-literal
// ---------------------------------------------------------------------

bool
timeUnitApplies(const std::string &p)
{
    // The deterministic core, where Time arithmetic is simulated
    // semantics. src/exp is host-side; src/lint has no Time at all.
    return startsWith(p, "src/") && !startsWith(p, "src/exp/") &&
           !startsWith(p, "src/lint/");
}

void
timeUnitCheck(const SourceFile &f, std::vector<Finding> &out)
{
    // Pass 1: identifiers declared with type Time in this file —
    // locals, parameters and data members alike ('Time t', 'Time &t',
    // 'const Time t').
    std::vector<std::string> timeIdents;
    for (std::size_t i = 0; i + 1 < f.tokens.size(); ++i) {
        if (f.tokens[i].kind != TokKind::Ident ||
            f.tokens[i].text != "Time")
            continue;
        std::size_t j = i + 1;
        while (j < f.tokens.size() &&
               (at(f, j) == "&" || at(f, j) == "*" ||
                at(f, j) == "const"))
            ++j;
        if (j < f.tokens.size() && f.tokens[j].kind == TokKind::Ident)
            timeIdents.push_back(f.tokens[j].text);
    }
    std::sort(timeIdents.begin(), timeIdents.end());
    timeIdents.erase(
        std::unique(timeIdents.begin(), timeIdents.end()),
        timeIdents.end());

    const auto isTimeIdent = [&](std::size_t i, bool &unitConst) {
        if (i >= f.tokens.size() ||
            f.tokens[i].kind != TokKind::Ident)
            return false;
        const std::string &t = f.tokens[i].text;
        unitConst = t == "kNs" || t == "kUs" || t == "kMs" ||
                    t == "kSec" || t == "kTimeNever";
        return unitConst ||
               std::binary_search(timeIdents.begin(), timeIdents.end(),
                                  t);
    };

    // The operator cluster between a literal and its neighbour, read
    // outward from the literal; empty when the neighbour isn't reached
    // over plain operator punctuation.
    const auto clusterLeft = [&](std::size_t i, std::size_t &ident) {
        std::string op;
        std::size_t j = i;
        while (j > 0) {
            const Token &t = f.tokens[j - 1];
            if (t.kind != TokKind::Punct ||
                std::string("+-*/%<>=!").find(t.text[0]) ==
                    std::string::npos)
                break;
            op.insert(0, t.text);
            --j;
        }
        ident = j > 0 ? j - 1 : 0;
        return j == i ? std::string() : op;
    };
    const auto clusterRight = [&](std::size_t i, std::size_t &ident) {
        std::string op;
        std::size_t j = i + 1;
        while (j < f.tokens.size()) {
            const Token &t = f.tokens[j];
            if (t.kind != TokKind::Punct ||
                std::string("+-*/%<>=!").find(t.text[0]) ==
                    std::string::npos)
                break;
            op += t.text;
            ++j;
        }
        ident = j;
        return j == i + 1 ? std::string() : op;
    };

    static const char *kFlagged[] = {"+",  "-",  "<",  ">",  "<=",
                                     ">=", "==", "!=", "+=", "-="};
    static const char *kScaling[] = {"*", "/", "%", "*=", "/=", "%="};
    const auto in = [](const std::string &op, const char *const *set,
                       std::size_t n) {
        for (std::size_t k = 0; k < n; ++k) {
            if (op == set[k])
                return true;
        }
        return false;
    };

    for (std::size_t i = 0; i < f.tokens.size(); ++i) {
        const Token &t = f.tokens[i];
        if (t.kind != TokKind::Number || t.preproc)
            continue;
        // Integer literals only; 0 and 1 are unit-free (comparisons
        // with zero, one-tick offsets).
        if (t.text.find('.') != std::string::npos || t.text == "0" ||
            t.text == "1")
            continue;
        std::size_t li = 0;
        std::size_t ri = 0;
        const std::string lop = clusterLeft(i, li);
        const std::string rop = clusterRight(i, ri);
        // A literal inside a product is a dimensionless scale factor
        // (the '500 * kUs' idiom and 'period / 2' both live here).
        if (in(lop, kScaling, std::size(kScaling)) ||
            in(rop, kScaling, std::size(kScaling)))
            continue;
        bool unitL = false;
        bool unitR = false;
        const bool timeL = in(lop, kFlagged, std::size(kFlagged)) &&
                           isTimeIdent(li, unitL);
        const bool timeR = in(rop, kFlagged, std::size(kFlagged)) &&
                           isTimeIdent(ri, unitR);
        if ((timeL && !unitL) || (timeR && !unitR)) {
            const std::string other =
                timeL && !unitL ? f.tokens[li].text : f.tokens[ri].text;
            report(f, out, "time-unit-literal", t.line,
                   "bare integer literal " + t.text +
                       " in arithmetic with Time-typed '" + other +
                       "' (write " + t.text +
                       " * kNs/kUs/kMs/kSec, or name the constant)");
        }
    }
}

// ---------------------------------------------------------------------
// context-capture
// ---------------------------------------------------------------------

bool
contextCaptureApplies(const std::string &p)
{
    return startsWith(p, "src/");
}

void
contextCaptureCheck(const SourceFile &f, std::vector<Finding> &out)
{
    // Pass 1: names declared in this file as a TraceContext/LogContext
    // (value, pointer or reference).
    struct CtxVar
    {
        std::string name;
        bool pointer;
    };
    std::vector<CtxVar> vars;
    for (std::size_t i = 0; i + 1 < f.tokens.size(); ++i) {
        const Token &t = f.tokens[i];
        if (t.kind != TokKind::Ident ||
            (t.text != "TraceContext" && t.text != "LogContext"))
            continue;
        std::size_t j = i + 1;
        bool pointer = false;
        while (j < f.tokens.size() &&
               (at(f, j) == "*" || at(f, j) == "&" ||
                at(f, j) == "const")) {
            pointer = pointer || at(f, j) == "*";
            ++j;
        }
        if (j < f.tokens.size() && f.tokens[j].kind == TokKind::Ident)
            vars.push_back({f.tokens[j].text, pointer});
    }
    const auto findVar = [&](const std::string &name) -> const CtxVar * {
        for (const CtxVar &v : vars) {
            if (v.name == name)
                return &v;
        }
        return nullptr;
    };

    // Pass 2: lambdas inside EventQueue schedule calls. Their closure
    // outlives the current stack frame and may fire on another sweep
    // worker, so a captured per-thread context is a use-after-scope in
    // waiting.
    static const char *kScheduleCalls[] = {"schedule", "scheduleAfter",
                                           "scheduleRestored"};
    for (std::size_t i = 0; i + 1 < f.tokens.size(); ++i) {
        const Token &t = f.tokens[i];
        if (t.kind != TokKind::Ident ||
            !std::any_of(std::begin(kScheduleCalls),
                         std::end(kScheduleCalls),
                         [&](const char *c) { return t.text == c; }) ||
            at(f, i + 1) != "(")
            continue;
        int depth = 0;
        for (std::size_t j = i + 1; j < f.tokens.size(); ++j) {
            const std::string &x = at(f, j);
            if (x == "(") {
                ++depth;
            } else if (x == ")") {
                if (--depth == 0)
                    break;
            } else if (x == "[" && j > 0) {
                // Lambda introducer vs subscript: a subscript follows
                // a value (identifier, ')', ']'); an introducer does
                // not.
                const Token &prev = f.tokens[j - 1];
                if (prev.kind == TokKind::Ident || prev.text == ")" ||
                    prev.text == "]")
                    continue;
                // Scan the capture list entries.
                std::size_t k = j + 1;
                int sub = 0;
                std::vector<std::size_t> entry;  // token indices
                const auto flush = [&]() {
                    bool byRef = false;
                    for (std::size_t e : entry) {
                        const Token &et = f.tokens[e];
                        if (et.kind == TokKind::Punct &&
                            et.text == "&")
                            byRef = true;
                        if (et.kind != TokKind::Ident)
                            continue;
                        if (et.text == "traceContext" ||
                            et.text == "logContext") {
                            report(f, out, "context-capture", et.line,
                                   "EventQueue lambda captures the "
                                   "per-thread context accessor '" +
                                       et.text +
                                       "()' (pool-owned; resolve it "
                                       "inside the callback instead)");
                            continue;
                        }
                        const CtxVar *v = findVar(et.text);
                        if (v != nullptr && (byRef || v->pointer)) {
                            report(
                                f, out, "context-capture", et.line,
                                "EventQueue lambda captures a raw "
                                "pointer/reference to per-thread "
                                "context '" +
                                    et.text +
                                    "' (pool-owned; the callback may "
                                    "fire on another worker — capture "
                                    "the owning object and resolve "
                                    "the context inside)");
                        }
                    }
                    entry.clear();
                };
                for (; k < f.tokens.size(); ++k) {
                    const std::string &y = at(f, k);
                    if (y == "[") {
                        ++sub;
                    } else if (y == "]") {
                        if (sub-- == 0)
                            break;
                    } else if (y == "," && sub == 0) {
                        flush();
                        continue;
                    }
                    entry.push_back(k);
                }
                flush();
                j = k;
            }
        }
    }
}

// ---------------------------------------------------------------------
// checkpoint-field-coverage (cross-file)
// ---------------------------------------------------------------------

void
checkpointCoverageCheck(const ProjectIndex &index,
                        std::vector<Finding> &out)
{
    // Join every save/load body by class name, across all files.
    struct Bodies
    {
        std::vector<std::string> save;  // sorted unique idents
        std::vector<std::string> load;
        bool hasSave = false;
        bool hasLoad = false;
    };
    std::map<std::string, Bodies> byClass;
    for (const FileSummary *file : index.files) {
        for (const CkptBody &b : file->ckptBodies) {
            Bodies &dst = byClass[b.className];
            auto &set = b.isSave ? dst.save : dst.load;
            set.insert(set.end(), b.idents.begin(), b.idents.end());
            (b.isSave ? dst.hasSave : dst.hasLoad) = true;
        }
    }
    for (auto &[name, bodies] : byClass) {
        std::sort(bodies.save.begin(), bodies.save.end());
        std::sort(bodies.load.begin(), bodies.load.end());
    }

    // Every non-static data member of a participating type must be
    // referenced on both paths: an unreferenced field is state the
    // image silently drops (restore would resurrect a stale value).
    for (const FileSummary *file : index.files) {
        if (!startsWith(file->path, "src/"))
            continue;
        for (const ClassDecl &cls : file->classes) {
            const auto it = byClass.find(cls.name);
            if (it == byClass.end() || !it->second.hasSave ||
                !it->second.hasLoad)
                continue;
            for (const FieldDecl &field : cls.fields) {
                const bool inSave = std::binary_search(
                    it->second.save.begin(), it->second.save.end(),
                    field.name);
                const bool inLoad = std::binary_search(
                    it->second.load.begin(), it->second.load.end(),
                    field.name);
                if (inSave && inLoad)
                    continue;
                const char *where =
                    !inSave && !inLoad
                        ? "both the save and the load path"
                        : (!inSave ? "the save path (load touches it)"
                                   : "the load path (save writes it)");
                out.push_back(
                    {kRuleCheckpointCoverage, file->path, field.line,
                     "field '" + field.name + "' of checkpointed type '" +
                         cls.name + "' is missing from " + where +
                         " of " + cls.name +
                         "::save/load (serialise it, or justify with "
                         "piso-lint: allow(checkpoint-field-coverage) "
                         "-- <why it is replay-derived/transient>)"});
            }
        }
    }
}

// ---------------------------------------------------------------------
// layering (cross-file)
// ---------------------------------------------------------------------

void
layeringCheck(const ProjectIndex &index, std::vector<Finding> &out)
{
    // Upward includes: an edge may only point at the same or a lower
    // layer (util -> sim -> core -> machine -> os -> workload ->
    // metrics -> simulation -> exp/config -> tools).
    for (const FileSummary *file : index.files) {
        const int from = layerRank(file->path);
        if (from < 0)
            continue;
        for (const IncludeEdge &inc : file->includes) {
            const int to = layerRank(inc.target);
            if (to < 0 || to <= from)
                continue;
            out.push_back(
                {kRuleLayering, file->path, inc.line,
                 "upward include: " + file->path + " (layer " +
                     layerName(from) + ") includes " + inc.target +
                     " (layer " + layerName(to) +
                     "); edges must flow util <- sim <- core <- "
                     "machine <- os <- workload <- metrics <- "
                     "simulation <- exp/config <- tools"});
        }
    }

    // Cycles in the file-level include graph (same-layer cycles are
    // invisible to the rank check above). Reported once, at the back
    // edge that closes the cycle.
    std::map<std::string, const FileSummary *> byPath;
    for (const FileSummary *file : index.files)
        byPath[file->path] = file;
    std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
    std::vector<std::string> stack;
    const std::function<void(const FileSummary *)> visit =
        [&](const FileSummary *file) {
            color[file->path] = 1;
            stack.push_back(file->path);
            for (const IncludeEdge &inc : file->includes) {
                const auto target = byPath.find(inc.target);
                if (target == byPath.end())
                    continue;
                const int c = color[inc.target];
                if (c == 1) {
                    std::string cycle = inc.target;
                    auto at = std::find(stack.begin(), stack.end(),
                                        inc.target);
                    for (auto it = at; it != stack.end(); ++it) {
                        if (*it != inc.target)
                            cycle += " -> " + *it;
                    }
                    cycle += " -> " + inc.target;
                    out.push_back({kRuleLayering, file->path, inc.line,
                                   "include cycle: " + cycle});
                } else if (c == 0) {
                    visit(target->second);
                }
            }
            stack.pop_back();
            color[file->path] = 2;
        };
    for (const FileSummary *file : index.files) {
        if (color[file->path] == 0)
            visit(file);
    }
}

} // namespace

const std::vector<Rule> &
ruleRegistry()
{
    static const std::vector<Rule> kRules = {
        {"determinism-wallclock",
         "wall-clock/time-of-day sources outside src/exp and tools/",
         wallclockApplies, wallclockCheck},
        {"determinism-unordered",
         "unordered containers in report/JSON/sweep emission paths",
         unorderedApplies, unorderedCheck},
        {"thread-global-state",
         "mutable namespace-scope or static-local state in the sim core",
         globalStateApplies, globalStateCheck},
        {"table-map-key",
         "std::map keyed by SpuId/Pid (use SpuTable/DenseTable)",
         tableApplies, tableCheck},
        {"memory-raw-new",
         "raw new/delete outside the slab allocators",
         rawNewApplies, rawNewCheck},
        {"hygiene-include-guard",
         "headers carry the canonical #ifndef PISO_..._HH guard",
         guardApplies, guardCheck},
        {"hygiene-io",
         "direct stdio/stream output outside src/metrics",
         ioApplies, ioCheck},
        {"error-taxonomy",
         "bare throw std::runtime_error in src/exp and src/sim "
         "(use SimError)",
         errorTaxonomyApplies, errorTaxonomyCheck},
        {"hot-path-full-scan",
         "full SpuTable/DenseTable iteration on src/core policy paths",
         fullScanApplies, fullScanCheck},
        {"time-unit-literal",
         "bare integer literals in arithmetic with Time-typed values",
         timeUnitApplies, timeUnitCheck},
        {"context-capture",
         "EventQueue lambdas capturing pool-owned per-thread contexts",
         contextCaptureApplies, contextCaptureCheck},
    };
    return kRules;
}

const std::vector<ProjectRule> &
projectRuleRegistry()
{
    static const std::vector<ProjectRule> kRules = {
        {kRuleCheckpointCoverage,
         "every field of a save/load type serialized on both paths",
         checkpointCoverageCheck},
        {kRuleLayering,
         "include edges respect the layer order; no include cycles",
         layeringCheck},
    };
    return kRules;
}

bool
knownRule(const std::string &name)
{
    const auto &rules = ruleRegistry();
    if (std::any_of(rules.begin(), rules.end(),
                    [&](const Rule &r) { return name == r.name; }))
        return true;
    const auto &project = projectRuleRegistry();
    return std::any_of(project.begin(), project.end(),
                       [&](const ProjectRule &r) {
                           return name == r.name;
                       });
}

} // namespace piso::lint
