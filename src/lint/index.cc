#include "src/lint/index.hh"

#include <algorithm>

namespace piso::lint {

namespace {

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

/**
 * A cursor over the non-preprocessor tokens of a file, with the small
 * amount of structure the index needs: statement boundaries, balanced
 * (), {}, <> groups, and the namespace/class scope stack.
 */
class Parser
{
  public:
    Parser(const SourceFile &file, FileSummary &out) : out_(out)
    {
        code_.reserve(file.tokens.size());
        for (const Token &t : file.tokens) {
            if (!t.preproc)
                code_.push_back(&t);
        }
    }

    /** Parse the whole file (namespace scope). */
    void
    run()
    {
        parseScope(/*inClass=*/false, /*classIdx=*/0);
    }

  private:
    const Token &tok(std::size_t i) const { return *code_[i]; }

    const std::string &
    text(std::size_t i) const
    {
        static const std::string kEmpty;
        return i < code_.size() ? code_[i]->text : kEmpty;
    }

    bool
    isIdent(std::size_t i, const char *s) const
    {
        return i < code_.size() && code_[i]->kind == TokKind::Ident &&
               code_[i]->text == s;
    }

    /** Skip a balanced <...> group starting at pos_ == '<'. Gives up
     *  (restores pos_) if the group doesn't close — then it was a
     *  comparison, not template arguments. */
    void
    skipAngles()
    {
        const std::size_t start = pos_;
        int depth = 0;
        while (pos_ < code_.size()) {
            const std::string &x = text(pos_);
            if (x == "<") {
                ++depth;
            } else if (x == ">") {
                if (--depth == 0) {
                    ++pos_;
                    return;
                }
            } else if (x == ";" || x == "{" || x == "}") {
                break;  // never closed: not a template head
            }
            ++pos_;
        }
        pos_ = start + 1;
    }

    /** Skip a balanced group opened by the bracket at pos_. */
    void
    skipBalanced(const char *open, const char *close)
    {
        int depth = 0;
        while (pos_ < code_.size()) {
            const std::string &x = text(pos_);
            if (x == open) {
                ++depth;
            } else if (x == close) {
                if (--depth == 0) {
                    ++pos_;
                    return;
                }
            }
            ++pos_;
        }
    }

    /** Consume a function body (pos_ at '{'), collecting the unique
     *  identifiers referenced inside it. */
    std::vector<std::string>
    collectBody()
    {
        std::vector<std::string> idents;
        int depth = 0;
        while (pos_ < code_.size()) {
            const Token &t = tok(pos_);
            if (t.text == "{") {
                ++depth;
            } else if (t.text == "}") {
                if (--depth == 0) {
                    ++pos_;
                    break;
                }
            } else if (t.kind == TokKind::Ident) {
                idents.push_back(t.text);
            }
            ++pos_;
        }
        std::sort(idents.begin(), idents.end());
        idents.erase(std::unique(idents.begin(), idents.end()),
                     idents.end());
        return idents;
    }

    /** Parse one class/struct head (pos_ just past the keyword) and,
     *  if a definition follows, its body. */
    void
    parseClassHead()
    {
        // Name: the last identifier before '{', ':' (base clause), or
        // ';' (forward declaration). Skips attributes and macros.
        std::string name;
        int nameLine = 0;
        while (pos_ < code_.size()) {
            const Token &t = tok(pos_);
            if (t.kind == TokKind::Ident && t.text != "final" &&
                t.text != "alignas") {
                name = t.text;
                nameLine = t.line;
                ++pos_;
                continue;
            }
            if (t.text == "<") {  // explicit specialisation head
                skipAngles();
                continue;
            }
            break;
        }
        // Base clause: skip to '{' or ';'.
        while (pos_ < code_.size() && text(pos_) != "{" &&
               text(pos_) != ";") {
            if (text(pos_) == "<")
                skipAngles();
            else
                ++pos_;
        }
        if (pos_ >= code_.size() || text(pos_) == ";") {
            if (pos_ < code_.size())
                ++pos_;  // forward declaration
            return;
        }
        ++pos_;  // '{'
        out_.classes.push_back({name, nameLine, {}});
        const std::size_t idx = out_.classes.size() - 1;
        parseScope(/*inClass=*/true, idx);
        // Optional declarator list after the body ('} instance;').
        while (pos_ < code_.size() && text(pos_) != ";" &&
               text(pos_) != "}")
            ++pos_;
        if (pos_ < code_.size() && text(pos_) == ";")
            ++pos_;
    }

    /**
     * Parse one generic statement at namespace or class scope: a
     * declaration, a function definition (body consumed, FuncDef and
     * CkptBody recorded), or — in a class — a data-member declaration
     * (FieldDecl recorded).
     */
    void
    parseStatement(bool inClass, std::size_t classIdx)
    {
        const std::size_t start = pos_;
        bool sawEquals = false;       // top-level '=' before any '{'
        bool sawColon = false;        // top-level ':' (bitfield / ctor)
        bool sawSemi = false;         // statement ended with ';'
        bool isOperator = false;      // 'operator' anywhere: a function
        std::size_t parenOpen = 0;    // first top-level '(' index
        std::size_t parenClose = 0;
        std::string lastIdent;        // last top-level identifier
        int lastIdentLine = 0;
        std::string nameBeforeParen;  // identifier preceding the '('
        std::string qualBeforeParen;  // 'Class' in Class::name(

        while (pos_ < code_.size()) {
            const Token &t = tok(pos_);
            const std::string &x = t.text;
            if (x == ";") {
                sawSemi = true;
                ++pos_;
                break;
            }
            if (x == "}")
                break;  // enclosing scope closes; don't consume
            if (x == "{") {
                // Function body vs brace initializer.
                const bool function = parenOpen != 0 && !sawEquals;
                if (function) {
                    std::string qual = qualBeforeParen;
                    if (qual.empty() && inClass)
                        qual = out_.classes[classIdx].name;
                    const std::string &fname = nameBeforeParen;
                    const int line = tok(start).line;
                    if (!fname.empty()) {
                        out_.functions.push_back(
                            {qual.empty() ? fname : qual + "::" + fname,
                             line});
                    }
                    const bool isSave = fname == "save";
                    const bool isLoad = fname == "load";
                    bool ckptParam = false;
                    for (std::size_t j = parenOpen;
                         j <= parenClose && j < code_.size(); ++j) {
                        if (text(j) ==
                            (isSave ? "CkptWriter" : "CkptReader"))
                            ckptParam = true;
                    }
                    std::vector<std::string> idents = collectBody();
                    if ((isSave || isLoad) && ckptParam &&
                        !qual.empty()) {
                        out_.ckptBodies.push_back(
                            {qual, isSave, line, std::move(idents)});
                    }
                    return;
                }
                skipBalanced("{", "}");
                continue;
            }
            if (x == "(") {
                if (parenOpen == 0 && !sawEquals && !sawColon) {
                    parenOpen = pos_;
                    nameBeforeParen = lastIdent;
                    if (pos_ >= 2 && text(pos_ - 2) == "::" &&
                        pos_ >= 3 &&
                        code_[pos_ - 3]->kind == TokKind::Ident)
                        qualBeforeParen = text(pos_ - 3);
                    skipBalanced("(", ")");
                    parenClose = pos_ - 1;
                } else {
                    skipBalanced("(", ")");
                }
                continue;
            }
            if (x == "[") {
                skipBalanced("[", "]");
                continue;
            }
            if (x == "<" && pos_ > start &&
                code_[pos_ - 1]->kind == TokKind::Ident) {
                skipAngles();
                continue;
            }
            if (x == "=")
                sawEquals = true;
            else if (x == ":" && parenOpen == 0)
                sawColon = true;  // bitfield width follows
            else if (t.kind == TokKind::Ident) {
                if (x == "operator")
                    isOperator = true;
                if (!sawEquals && !sawColon && parenOpen == 0) {
                    lastIdent = x;
                    lastIdentLine = t.line;
                }
            }
            ++pos_;
        }

        if (!inClass || parenOpen != 0 || lastIdent.empty() ||
            isOperator || !sawSemi)
            return;
        // A class-scope declaration with no parameter list: a data
        // member, unless the statement opened with a non-member
        // keyword (those were filtered in parseScope).
        out_.classes[classIdx].fields.push_back(
            {lastIdent, lastIdentLine});
    }

    /** Parse declarations until the matching '}' (or EOF). */
    void
    parseScope(bool inClass, std::size_t classIdx)
    {
        while (pos_ < code_.size()) {
            const Token &t = tok(pos_);
            const std::string &x = t.text;

            if (x == "}") {
                ++pos_;
                return;
            }
            if (x == ";" || x == ":") {
                ++pos_;
                continue;
            }
            if (t.kind == TokKind::Ident) {
                if (x == "namespace") {
                    ++pos_;
                    while (pos_ < code_.size() && text(pos_) != "{" &&
                           text(pos_) != ";" && text(pos_) != "=")
                        ++pos_;
                    if (pos_ < code_.size() && text(pos_) == "{") {
                        ++pos_;
                        parseScope(false, 0);
                    } else {
                        // alias or declaration: skip to ';'
                        while (pos_ < code_.size() && text(pos_) != ";")
                            ++pos_;
                    }
                    continue;
                }
                if (x == "template") {
                    ++pos_;
                    if (pos_ < code_.size() && text(pos_) == "<")
                        skipAngles();
                    continue;
                }
                if (x == "class" || x == "struct") {
                    ++pos_;
                    parseClassHead();
                    continue;
                }
                if (x == "enum") {
                    ++pos_;
                    if (isIdent(pos_, "class") ||
                        isIdent(pos_, "struct"))
                        ++pos_;
                    while (pos_ < code_.size() && text(pos_) != "{" &&
                           text(pos_) != ";")
                        ++pos_;
                    if (pos_ < code_.size() && text(pos_) == "{")
                        skipBalanced("{", "}");
                    while (pos_ < code_.size() && text(pos_) != ";")
                        ++pos_;
                    continue;
                }
                if (x == "union") {
                    ++pos_;
                    while (pos_ < code_.size() && text(pos_) != "{" &&
                           text(pos_) != ";")
                        ++pos_;
                    if (pos_ < code_.size() && text(pos_) == "{")
                        skipBalanced("{", "}");
                    continue;
                }
                if (x == "using" || x == "typedef" ||
                    x == "static_assert" || x == "friend" ||
                    x == "extern" || x == "asm") {
                    while (pos_ < code_.size() && text(pos_) != ";" &&
                           text(pos_) != "}")
                        ++pos_;
                    continue;
                }
                if (inClass && (x == "public" || x == "private" ||
                                x == "protected")) {
                    ++pos_;  // ':' consumed by the loop above
                    continue;
                }
                if (x == "static" || x == "constexpr" ||
                    x == "constinit" || x == "inline" ||
                    x == "thread_local" || x == "mutable") {
                    // Not serialisable state (static/constexpr) or a
                    // qualifier; 'mutable'/'inline' members still count
                    // as fields, so only the storage keywords skip the
                    // whole statement.
                    if (x == "static" || x == "constexpr" ||
                        x == "constinit" || x == "thread_local") {
                        while (pos_ < code_.size() &&
                               text(pos_) != ";" && text(pos_) != "}") {
                            if (text(pos_) == "{")
                                skipBalanced("{", "}");
                            else if (text(pos_) == "(")
                                skipBalanced("(", ")");
                            else
                                ++pos_;
                        }
                        continue;
                    }
                    ++pos_;  // 'inline' / 'mutable': qualifier only
                    continue;
                }
            }
            parseStatement(inClass, classIdx);
        }
    }

    FileSummary &out_;
    std::vector<const Token *> code_;
    std::size_t pos_ = 0;
};

} // namespace

std::uint64_t
lintFnv1a(const std::string &data)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : data) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

FileSummary
summarizeFile(const SourceFile &file)
{
    FileSummary out;
    out.path = file.path;
    out.suppressions = file.suppressions;

    // Resolve each directive's covered line now, while we still have
    // the token stream: a suppression on its own line covers the next
    // line that carries code; one trailing a code line covers that
    // line; allow-file covers the whole file (target 0).
    out.suppressionTargets.reserve(out.suppressions.size());
    for (const Suppression &sup : out.suppressions) {
        int target = sup.line;
        if (sup.wholeFile) {
            target = 0;
        } else if (sup.ownLine) {
            int next = 0;
            for (const Token &tok : file.tokens) {
                if (tok.line > sup.line && (next == 0 || tok.line < next))
                    next = tok.line;
            }
            target = next == 0 ? sup.line : next;
        }
        out.suppressionTargets.push_back(target);
    }

    // Project includes come from the raw (preprocessor) token stream.
    for (std::size_t i = 0; i + 2 < file.tokens.size(); ++i) {
        const Token &hash = file.tokens[i];
        if (hash.text != "#" || !hash.preproc)
            continue;
        if (file.tokens[i + 1].text != "include")
            continue;
        const Token &target = file.tokens[i + 2];
        if (target.kind != TokKind::String)
            continue;
        if (startsWith(target.text, "src/") ||
            startsWith(target.text, "tools/") ||
            startsWith(target.text, "bench/") ||
            startsWith(target.text, "examples/"))
            out.includes.push_back({hash.line, target.text});
    }

    Parser(file, out).run();

    // Classes with no fields carry no coverage obligations; drop them
    // to keep summaries (and the cache) small.
    out.classes.erase(
        std::remove_if(out.classes.begin(), out.classes.end(),
                       [](const ClassDecl &c) {
                           return c.fields.empty() || c.name.empty();
                       }),
        out.classes.end());
    return out;
}

int
layerRank(const std::string &path)
{
    static const struct
    {
        const char *prefix;
        int rank;
    } kLayers[] = {
        {"src/util/", 0},    {"src/lint/", 0},   {"src/sim/", 1},
        {"src/core/", 2},    {"src/machine/", 3}, {"src/os/", 4},
        {"src/workload/", 5}, {"src/metrics/", 6}, {"src/exp/", 8},
        {"src/config/", 8},  {"tools/", 9},      {"bench/", 9},
        {"examples/", 9},
    };
    for (const auto &l : kLayers) {
        if (startsWith(path, l.prefix))
            return l.rank;
    }
    // Files directly under src/ (simulation.hh/.cc, piso.hh) are the
    // facade layer between the library and the exp/config layer.
    if (startsWith(path, "src/") &&
        path.find('/', 4) == std::string::npos)
        return 7;
    return -1;
}

const char *
layerName(int rank)
{
    switch (rank) {
    case 0: return "util";
    case 1: return "sim";
    case 2: return "core";
    case 3: return "machine";
    case 4: return "os";
    case 5: return "workload";
    case 6: return "metrics";
    case 7: return "simulation";
    case 8: return "exp/config";
    case 9: return "tools";
    default: return "unranked";
    }
}

} // namespace piso::lint
