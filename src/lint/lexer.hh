#ifndef PISO_LINT_LEXER_HH
#define PISO_LINT_LEXER_HH

/**
 * @file
 * Comment- and string-aware C++ tokenizer for piso-lint.
 *
 * Deliberately not a real C++ front end: the project rules only need
 * identifier/punctuation sequences with line numbers, with comments and
 * literals kept out of the token stream so `// old std::map<SpuId` in a
 * comment can never trigger a rule. Suppression directives
 * (`// piso-lint: allow(<rule>) -- <why>`) are recognised while the
 * comments are consumed.
 */

#include <string>
#include <vector>

namespace piso::lint {

/** Lexical class of one token. */
enum class TokKind
{
    Ident,   //!< identifier or keyword
    Number,  //!< numeric literal
    String,  //!< string literal (text is the literal *contents*)
    Char,    //!< character literal
    Punct,   //!< punctuation; `::` and `->` arrive as single tokens
};

/** One token of a source file. */
struct Token
{
    TokKind kind = TokKind::Punct;
    std::string text;
    int line = 0;       //!< 1-based
    bool preproc = false;  //!< token belongs to a preprocessor line
};

/** One `piso-lint: allow(...)` or `piso-lint: allow-file(...)`
 *  directive found in a comment. */
struct Suppression
{
    int line = 0;                     //!< line the comment starts on
    std::vector<std::string> rules;   //!< rule names inside allow(...)
    std::string justification;        //!< text after `--` (maybe empty)
    bool ownLine = false;  //!< comment-only line: applies to the next
                           //!< code line instead of its own
    bool wholeFile = false;  //!< allow-file(...): covers every line of
                             //!< the file; still stale-checked
};

/** A tokenized source file. */
struct SourceFile
{
    std::string path;  //!< project-relative, forward slashes
    std::vector<Token> tokens;
    std::vector<Suppression> suppressions;
};

/**
 * Tokenize @p text.
 * @param path Stored verbatim in the result (used for rule scoping).
 */
SourceFile lexSource(std::string path, const std::string &text);

/**
 * Map an arbitrary file path onto the project-relative form the rules
 * are scoped by: the suffix starting at the last path component named
 * `src`, `tools`, `tests`, `bench`, or `examples`. Returns @p path
 * unchanged when no such component exists. Taking the *last* match
 * lets test fixtures mirror the tree (tests/lint_fixtures/src/... is
 * scoped as src/...).
 */
std::string projectRelative(const std::string &path);

} // namespace piso::lint

#endif // PISO_LINT_LEXER_HH
