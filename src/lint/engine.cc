#include "src/lint/engine.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "src/lint/index.hh"

namespace piso::lint {

namespace {

/** Everything the engine knows about one analyzed file: its summary
 *  (for the project rules and the cache) and the raw per-file-rule
 *  findings, *before* suppressions. */
struct Analyzed
{
    FileSummary summary;
    std::vector<Finding> raw;
};

Analyzed
analyzeOne(const std::string &relPath, const std::string &text)
{
    const SourceFile file = lexSource(relPath, text);
    Analyzed a;
    a.summary = summarizeFile(file);
    a.summary.hash = lintFnv1a(text);
    for (const Rule &rule : ruleRegistry()) {
        if (rule.applies(file.path))
            rule.check(file, a.raw);
    }
    return a;
}

/**
 * Apply @p summary's suppressions to the merged (per-file + project)
 * findings for that file, then audit the suppressions themselves:
 * every directive must name known rules, carry a justification, and
 * actually suppress something. Surviving findings and the audit go to
 * @p result.
 */
void
applyAndAudit(const FileSummary &summary, std::vector<Finding> &merged,
              LintResult &result)
{
    const auto &sups = summary.suppressions;
    std::vector<bool> used(sups.size(), false);

    for (Finding &fnd : merged) {
        bool suppressed = false;
        for (std::size_t s = 0; s < sups.size(); ++s) {
            const int target = s < summary.suppressionTargets.size()
                                   ? summary.suppressionTargets[s]
                                   : sups[s].line;
            if (target != 0 && target != fnd.line)
                continue;
            if (std::find(sups[s].rules.begin(), sups[s].rules.end(),
                          fnd.rule) == sups[s].rules.end())
                continue;
            suppressed = true;
            used[s] = true;
        }
        if (!suppressed)
            result.findings.push_back(std::move(fnd));
    }

    for (std::size_t s = 0; s < sups.size(); ++s) {
        const Suppression &sup = sups[s];
        bool allKnown = true;
        for (const std::string &name : sup.rules) {
            if (!knownRule(name)) {
                allKnown = false;
                result.findings.push_back(
                    {kSuppressionUnknownRule, summary.path, sup.line,
                     "allow() names unknown rule '" + name +
                         "' (see piso_lint --list-rules)"});
            }
        }
        if (sup.justification.empty()) {
            result.findings.push_back(
                {kSuppressionJustification, summary.path, sup.line,
                 "suppression lacks a justification (write "
                 "// piso-lint: allow(<rule>) -- <why this is safe>)"});
        }
        if (!used[s] && allKnown) {
            result.findings.push_back(
                {kSuppressionUnused, summary.path, sup.line,
                 "suppression matched no finding (stale "
                 "allow(); delete it)"});
        }
        result.allows.push_back({summary.path, sup.line, sup.rules,
                                 sup.justification, sup.wholeFile});
    }
}

/**
 * The project pass: build the index over every summary, run the
 * cross-file rules, merge their findings with the per-file raw
 * findings, apply suppressions, sort. Runs in full on every lint run —
 * cached or cold — which is what makes warm results identical to cold
 * ones: only the per-file lex+check work is ever skipped.
 */
LintResult
finish(std::vector<Analyzed> &files, int reanalyzed)
{
    std::sort(files.begin(), files.end(),
              [](const Analyzed &a, const Analyzed &b) {
                  return a.summary.path < b.summary.path;
              });

    ProjectIndex index;
    index.files.reserve(files.size());
    for (const Analyzed &a : files)
        index.files.push_back(&a.summary);

    std::vector<Finding> project;
    for (const ProjectRule &rule : projectRuleRegistry())
        rule.check(index, project);

    LintResult result;
    result.filesScanned = static_cast<int>(files.size());
    result.filesReanalyzed = reanalyzed;
    for (Analyzed &a : files) {
        std::vector<Finding> merged = std::move(a.raw);
        for (Finding &p : project) {
            if (p.path == a.summary.path)
                merged.push_back(p);
        }
        applyAndAudit(a.summary, merged, result);
    }

    const auto order = [](const Finding &a, const Finding &b) {
        if (a.path != b.path)
            return a.path < b.path;
        if (a.line != b.line)
            return a.line < b.line;
        return a.rule < b.rule;
    };
    std::sort(result.findings.begin(), result.findings.end(), order);
    std::sort(result.allows.begin(), result.allows.end(),
              [](const AllowEntry &a, const AllowEntry &b) {
                  return a.path != b.path ? a.path < b.path
                                          : a.line < b.line;
              });
    return result;
}

// ---------------------------------------------------------------------
// Incremental cache
//
// A line-oriented, tab-separated text file. The header carries a
// fingerprint over the rule registries and schema version, so a cache
// written by a different piso_lint is discarded wholesale; any parse
// mismatch likewise discards the cache (it is only ever an
// optimisation). Free-form trailing fields (messages, justifications)
// have tabs/newlines flattened to spaces on write.
// ---------------------------------------------------------------------

constexpr const char *kCacheMagic = "piso-lint-cache";
constexpr int kCacheSchema = 1;

std::uint64_t
registryFingerprint()
{
    std::string all = "schema" + std::to_string(kCacheSchema);
    for (const Rule &r : ruleRegistry()) {
        all += '|';
        all += r.name;
    }
    for (const ProjectRule &r : projectRuleRegistry()) {
        all += '|';
        all += r.name;
    }
    return lintFnv1a(all);
}

std::string
flatten(std::string s)
{
    for (char &c : s) {
        if (c == '\t' || c == '\n' || c == '\r')
            c = ' ';
    }
    return s;
}

void
splitTabs(const std::string &line, std::size_t maxFields,
          std::vector<std::string> &out)
{
    out.clear();
    std::size_t start = 0;
    while (out.size() + 1 < maxFields) {
        const std::size_t tab = line.find('\t', start);
        if (tab == std::string::npos)
            break;
        out.push_back(line.substr(start, tab - start));
        start = tab + 1;
    }
    out.push_back(line.substr(start));
}

void
writeCache(const std::string &path,
           const std::vector<Analyzed> &files)
{
    std::ostringstream os;
    os << kCacheMagic << '\t' << kCacheSchema << '\t' << std::hex
       << registryFingerprint() << std::dec << '\n';
    for (const Analyzed &a : files) {
        const FileSummary &s = a.summary;
        os << "F\t" << std::hex << s.hash << std::dec << '\t' << s.path
           << '\n';
        for (const IncludeEdge &e : s.includes)
            os << "i\t" << e.line << '\t' << e.target << '\n';
        for (const ClassDecl &c : s.classes) {
            os << "c\t" << c.line << '\t' << c.name << '\n';
            for (const FieldDecl &f : c.fields)
                os << "f\t" << f.line << '\t' << f.name << '\n';
        }
        for (const CkptBody &b : s.ckptBodies) {
            os << "b\t" << b.line << '\t' << (b.isSave ? 1 : 0) << '\t'
               << b.className << '\t';
            for (std::size_t i = 0; i < b.idents.size(); ++i)
                os << (i ? " " : "") << b.idents[i];
            os << '\n';
        }
        for (const FuncDef &d : s.functions)
            os << "d\t" << d.line << '\t' << d.qualified << '\n';
        for (std::size_t i = 0; i < s.suppressions.size(); ++i) {
            const Suppression &sup = s.suppressions[i];
            const int target = i < s.suppressionTargets.size()
                                   ? s.suppressionTargets[i]
                                   : sup.line;
            os << "s\t" << sup.line << '\t' << (sup.ownLine ? 1 : 0)
               << '\t' << (sup.wholeFile ? 1 : 0) << '\t' << target
               << '\t';
            for (std::size_t r = 0; r < sup.rules.size(); ++r)
                os << (r ? "," : "") << sup.rules[r];
            os << '\t' << flatten(sup.justification) << '\n';
        }
        for (const Finding &f : a.raw) {
            os << "r\t" << f.line << '\t' << f.rule << '\t'
               << flatten(f.message) << '\n';
        }
        os << ".\n";
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << os.str();
}

/** Parse @p path into per-file entries. Returns false (and an empty
 *  map) when the cache is missing, stale, or malformed. */
bool
readCache(const std::string &path, std::map<std::string, Analyzed> &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::string line;
    std::vector<std::string> f;
    if (!std::getline(in, line))
        return false;
    splitTabs(line, 3, f);
    std::ostringstream want;
    want << std::hex << registryFingerprint();
    if (f.size() != 3 || f[0] != kCacheMagic ||
        f[1] != std::to_string(kCacheSchema) || f[2] != want.str())
        return false;

    Analyzed cur;
    bool open = false;
    const auto toInt = [](const std::string &s, int &v) {
        try {
            v = std::stoi(s);
        } catch (...) {
            return false;
        }
        return true;
    };
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        const char kind = line[0];
        if (kind == 'F') {
            if (open)
                return false;  // previous record not closed
            splitTabs(line, 3, f);
            if (f.size() != 3)
                return false;
            cur = Analyzed{};
            cur.summary.path = f[2];
            try {
                cur.summary.hash = std::stoull(f[1], nullptr, 16);
            } catch (...) {
                return false;
            }
            open = true;
            continue;
        }
        if (kind == '.') {
            if (!open)
                return false;
            out[cur.summary.path] = std::move(cur);
            cur = Analyzed{};
            open = false;
            continue;
        }
        if (!open)
            return false;
        int n = 0;
        switch (kind) {
        case 'i':
            splitTabs(line, 3, f);
            if (f.size() != 3 || !toInt(f[1], n))
                return false;
            cur.summary.includes.push_back({n, f[2]});
            break;
        case 'c':
            splitTabs(line, 3, f);
            if (f.size() != 3 || !toInt(f[1], n))
                return false;
            cur.summary.classes.push_back({f[2], n, {}});
            break;
        case 'f':
            splitTabs(line, 3, f);
            if (f.size() != 3 || !toInt(f[1], n) ||
                cur.summary.classes.empty())
                return false;
            cur.summary.classes.back().fields.push_back({f[2], n});
            break;
        case 'b': {
            splitTabs(line, 5, f);
            if (f.size() != 5 || !toInt(f[1], n))
                return false;
            CkptBody body;
            body.line = n;
            body.isSave = f[2] == "1";
            body.className = f[3];
            std::istringstream is(f[4]);
            std::string ident;
            while (is >> ident)
                body.idents.push_back(ident);
            cur.summary.ckptBodies.push_back(std::move(body));
            break;
        }
        case 'd':
            splitTabs(line, 3, f);
            if (f.size() != 3 || !toInt(f[1], n))
                return false;
            cur.summary.functions.push_back({f[2], n});
            break;
        case 's': {
            splitTabs(line, 7, f);
            int target = 0;
            if (f.size() != 7 || !toInt(f[1], n) || !toInt(f[4], target))
                return false;
            Suppression sup;
            sup.line = n;
            sup.ownLine = f[2] == "1";
            sup.wholeFile = f[3] == "1";
            std::size_t pos = 0;
            while (pos <= f[5].size() && !f[5].empty()) {
                const std::size_t comma = f[5].find(',', pos);
                sup.rules.push_back(
                    comma == std::string::npos
                        ? f[5].substr(pos)
                        : f[5].substr(pos, comma - pos));
                if (comma == std::string::npos)
                    break;
                pos = comma + 1;
            }
            sup.justification = f[6];
            cur.summary.suppressions.push_back(std::move(sup));
            cur.summary.suppressionTargets.push_back(target);
            break;
        }
        case 'r':
            splitTabs(line, 4, f);
            if (f.size() != 4 || !toInt(f[1], n))
                return false;
            cur.raw.push_back({f[2], cur.summary.path, n, f[3]});
            break;
        default:
            return false;
        }
    }
    return !open;
}

bool
readContents(const std::string &file, std::string &text,
             std::string &error)
{
    std::ifstream in(file, std::ios::binary);
    if (!in) {
        error = "cannot read: " + file;
        return false;
    }
    std::ostringstream os;
    os << in.rdbuf();
    text = os.str();
    return true;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

LintResult
lintSources(
    const std::vector<std::pair<std::string, std::string>> &sources)
{
    std::vector<Analyzed> files;
    files.reserve(sources.size());
    for (const auto &[path, text] : sources)
        files.push_back(analyzeOne(projectRelative(path), text));
    return finish(files, static_cast<int>(files.size()));
}

bool
collectFiles(const std::vector<std::string> &paths,
             std::vector<std::string> &files, std::string &error)
{
    namespace fs = std::filesystem;
    for (const std::string &p : paths) {
        std::error_code ec;
        if (fs::is_directory(p, ec)) {
            for (auto it = fs::recursive_directory_iterator(p, ec);
                 !ec && it != fs::recursive_directory_iterator(); ++it) {
                if (!it->is_regular_file())
                    continue;
                const std::string ext = it->path().extension().string();
                if (ext == ".cc" || ext == ".hh")
                    files.push_back(it->path().generic_string());
            }
        } else if (fs::is_regular_file(p, ec)) {
            files.push_back(p);
        } else {
            error = "no such file or directory: " + p;
            return false;
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    return true;
}

bool
lintFiles(const std::vector<std::string> &paths, LintResult &result,
          std::string &error)
{
    return lintFilesCached(paths, std::string(), result, error);
}

bool
lintFilesCached(const std::vector<std::string> &paths,
                const std::string &cachePath, LintResult &result,
                std::string &error)
{
    std::vector<std::string> diskFiles;
    if (!collectFiles(paths, diskFiles, error))
        return false;

    std::map<std::string, Analyzed> cache;
    if (!cachePath.empty())
        readCache(cachePath, cache);

    std::vector<Analyzed> files;
    files.reserve(diskFiles.size());
    std::map<std::string, std::string> contentsByRel;
    std::set<std::string> changed;
    std::set<std::string> analyzed;
    for (const std::string &f : diskFiles) {
        std::string text;
        if (!readContents(f, text, error))
            return false;
        const std::string rel = projectRelative(f);
        const std::uint64_t hash = lintFnv1a(text);
        const auto it = cache.find(rel);
        if (it != cache.end() && it->second.summary.hash == hash) {
            files.push_back(std::move(it->second));
            contentsByRel[rel] = std::move(text);
        } else {
            files.push_back(analyzeOne(rel, text));
            changed.insert(rel);
            analyzed.insert(rel);
        }
    }

    // Reverse include-graph closure: a file whose (transitive) include
    // changed is re-analyzed too — its per-file findings cannot change
    // (its own bytes did not), but the conservative closure keeps the
    // incremental mode honest about what "re-analyzed" means and robust
    // against future rules that peek across the edge.
    if (!changed.empty() && changed.size() < files.size()) {
        std::map<std::string, std::vector<std::string>> includers;
        for (const Analyzed &a : files) {
            for (const IncludeEdge &e : a.summary.includes)
                includers[e.target].push_back(a.summary.path);
        }
        std::vector<std::string> queue(changed.begin(), changed.end());
        std::set<std::string> reached = changed;
        while (!queue.empty()) {
            const std::string cur = std::move(queue.back());
            queue.pop_back();
            const auto it = includers.find(cur);
            if (it == includers.end())
                continue;
            for (const std::string &up : it->second) {
                if (reached.insert(up).second)
                    queue.push_back(up);
            }
        }
        for (Analyzed &a : files) {
            const std::string &rel = a.summary.path;
            if (!reached.count(rel) || analyzed.count(rel))
                continue;
            a = analyzeOne(rel, contentsByRel[rel]);
            analyzed.insert(rel);
        }
    }

    // Persist before finish(): finish() consumes the raw per-file
    // findings (it moves them into the merged result), and the cache
    // must keep them for the next warm run.
    if (!cachePath.empty())
        writeCache(cachePath, files);
    result = finish(files, static_cast<int>(analyzed.size()));
    return true;
}

void
filterToDiff(LintResult &result, const DiffLines &diff)
{
    const auto keep = [&](const Finding &f) {
        if (f.rule == kRuleCheckpointCoverage || f.rule == kRuleLayering)
            return true;  // whole-tree properties gate regardless
        const auto it = diff.byPath.find(f.path);
        if (it == diff.byPath.end())
            return false;
        for (const auto &[first, last] : it->second) {
            if (f.line >= first && f.line <= last)
                return true;
        }
        return false;
    };
    result.findings.erase(
        std::remove_if(result.findings.begin(), result.findings.end(),
                       [&](const Finding &f) { return !keep(f); }),
        result.findings.end());
}

std::string
formatText(const LintResult &result)
{
    std::ostringstream os;
    for (const Finding &f : result.findings) {
        os << f.path << ":" << f.line << ": [" << f.rule << "] "
           << f.message << "\n";
    }
    if (result.findings.empty()) {
        os << "piso-lint: clean (" << result.filesScanned
           << " files scanned)\n";
    } else {
        os << "piso-lint: " << result.findings.size() << " finding(s) ("
           << result.filesScanned << " files scanned)\n";
    }
    return os.str();
}

std::string
formatSarif(const LintResult &result)
{
    std::ostringstream os;
    os << "{\n  \"version\": \"2.1.0\",\n  \"runs\": [{\n"
       << "    \"tool\": {\"driver\": {\"name\": \"piso-lint\",\n"
       << "      \"informationUri\": \"docs/static-analysis.md\",\n"
       << "      \"rules\": [\n";
    const auto &rules = ruleRegistry();
    const auto &project = projectRuleRegistry();
    const std::size_t total = rules.size() + project.size();
    for (std::size_t i = 0; i < total; ++i) {
        const char *name = i < rules.size()
                               ? rules[i].name
                               : project[i - rules.size()].name;
        const char *summary = i < rules.size()
                                  ? rules[i].summary
                                  : project[i - rules.size()].summary;
        os << "        {\"id\": \"" << name
           << "\", \"shortDescription\": {\"text\": \""
           << jsonEscape(summary) << "\"}}"
           << (i + 1 < total ? "," : "") << "\n";
    }
    os << "      ]}},\n    \"results\": [\n";
    for (std::size_t i = 0; i < result.findings.size(); ++i) {
        const Finding &f = result.findings[i];
        os << "      {\"ruleId\": \"" << f.rule
           << "\", \"level\": \"error\", \"message\": {\"text\": \""
           << jsonEscape(f.message)
           << "\"}, \"locations\": [{\"physicalLocation\": "
           << "{\"artifactLocation\": {\"uri\": \"" << jsonEscape(f.path)
           << "\"}, \"region\": {\"startLine\": " << f.line
           << "}}}]}" << (i + 1 < result.findings.size() ? "," : "")
           << "\n";
    }
    os << "    ]\n  }]\n}\n";
    return os.str();
}

std::string
formatAllows(const LintResult &result)
{
    std::ostringstream os;
    for (const AllowEntry &a : result.allows) {
        os << a.path << ":" << a.line << ": "
           << (a.wholeFile ? "allow-file(" : "allow(");
        for (std::size_t i = 0; i < a.rules.size(); ++i)
            os << (i ? ", " : "") << a.rules[i];
        os << ") -- "
           << (a.justification.empty() ? "(no justification)"
                                       : a.justification)
           << "\n";
    }
    os << "piso-lint: " << result.allows.size()
       << " suppression(s) in " << result.filesScanned << " files\n";
    return os.str();
}

} // namespace piso::lint
