#include "src/lint/engine.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace piso::lint {

namespace {

/** Raw findings for one tokenized file, suppressions applied. */
void
lintOne(const SourceFile &file, std::vector<Finding> &out)
{
    std::vector<Finding> raw;
    for (const Rule &rule : ruleRegistry()) {
        if (rule.applies(file.path))
            rule.check(file, raw);
    }

    // A suppression on its own line covers the next line that carries
    // code; one trailing a code line covers that line.
    std::vector<int> target(file.suppressions.size(), 0);
    std::vector<bool> used(file.suppressions.size(), false);
    for (std::size_t s = 0; s < file.suppressions.size(); ++s) {
        const Suppression &sup = file.suppressions[s];
        int t = sup.line;
        if (sup.ownLine) {
            int next = 0;
            for (const Token &tok : file.tokens) {
                if (tok.line > sup.line &&
                    (next == 0 || tok.line < next))
                    next = tok.line;
            }
            t = next == 0 ? sup.line : next;
        }
        target[s] = t;
    }

    for (Finding &fnd : raw) {
        bool suppressed = false;
        for (std::size_t s = 0; s < file.suppressions.size(); ++s) {
            const Suppression &sup = file.suppressions[s];
            if (target[s] != fnd.line)
                continue;
            if (std::find(sup.rules.begin(), sup.rules.end(),
                          fnd.rule) == sup.rules.end())
                continue;
            suppressed = true;
            used[s] = true;
        }
        if (!suppressed)
            out.push_back(std::move(fnd));
    }

    // The suppressions themselves are linted: every directive must
    // name known rules, carry a justification, and actually suppress
    // something.
    for (std::size_t s = 0; s < file.suppressions.size(); ++s) {
        const Suppression &sup = file.suppressions[s];
        bool allKnown = true;
        for (const std::string &name : sup.rules) {
            if (!knownRule(name)) {
                allKnown = false;
                out.push_back(
                    {kSuppressionUnknownRule, file.path, sup.line,
                     "allow() names unknown rule '" + name +
                         "' (see piso_lint --list-rules)"});
            }
        }
        if (sup.justification.empty()) {
            out.push_back(
                {kSuppressionJustification, file.path, sup.line,
                 "suppression lacks a justification (write "
                 "// piso-lint: allow(<rule>) -- <why this is safe>)"});
        }
        if (!used[s] && allKnown) {
            out.push_back({kSuppressionUnused, file.path, sup.line,
                           "suppression matched no finding (stale "
                           "allow(); delete it)"});
        }
    }
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

LintResult
lintSources(
    const std::vector<std::pair<std::string, std::string>> &sources)
{
    LintResult result;
    result.filesScanned = static_cast<int>(sources.size());
    for (const auto &[path, text] : sources) {
        const SourceFile file = lexSource(projectRelative(path), text);
        lintOne(file, result.findings);
    }
    std::sort(result.findings.begin(), result.findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.path != b.path)
                      return a.path < b.path;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return result;
}

bool
collectFiles(const std::vector<std::string> &paths,
             std::vector<std::string> &files, std::string &error)
{
    namespace fs = std::filesystem;
    for (const std::string &p : paths) {
        std::error_code ec;
        if (fs::is_directory(p, ec)) {
            for (auto it = fs::recursive_directory_iterator(p, ec);
                 !ec && it != fs::recursive_directory_iterator(); ++it) {
                if (!it->is_regular_file())
                    continue;
                const std::string ext = it->path().extension().string();
                if (ext == ".cc" || ext == ".hh")
                    files.push_back(it->path().generic_string());
            }
        } else if (fs::is_regular_file(p, ec)) {
            files.push_back(p);
        } else {
            error = "no such file or directory: " + p;
            return false;
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    return true;
}

bool
lintFiles(const std::vector<std::string> &paths, LintResult &result,
          std::string &error)
{
    std::vector<std::string> files;
    if (!collectFiles(paths, files, error))
        return false;
    std::vector<std::pair<std::string, std::string>> sources;
    sources.reserve(files.size());
    for (const std::string &f : files) {
        std::ifstream in(f, std::ios::binary);
        if (!in) {
            error = "cannot read: " + f;
            return false;
        }
        std::ostringstream os;
        os << in.rdbuf();
        sources.emplace_back(f, os.str());
    }
    result = lintSources(sources);
    return true;
}

std::string
formatText(const LintResult &result)
{
    std::ostringstream os;
    for (const Finding &f : result.findings) {
        os << f.path << ":" << f.line << ": [" << f.rule << "] "
           << f.message << "\n";
    }
    if (result.findings.empty()) {
        os << "piso-lint: clean (" << result.filesScanned
           << " files scanned)\n";
    } else {
        os << "piso-lint: " << result.findings.size() << " finding(s) ("
           << result.filesScanned << " files scanned)\n";
    }
    return os.str();
}

std::string
formatSarif(const LintResult &result)
{
    std::ostringstream os;
    os << "{\n  \"version\": \"2.1.0\",\n  \"runs\": [{\n"
       << "    \"tool\": {\"driver\": {\"name\": \"piso-lint\",\n"
       << "      \"informationUri\": \"docs/static-analysis.md\",\n"
       << "      \"rules\": [\n";
    const auto &rules = ruleRegistry();
    for (std::size_t i = 0; i < rules.size(); ++i) {
        os << "        {\"id\": \"" << rules[i].name
           << "\", \"shortDescription\": {\"text\": \""
           << jsonEscape(rules[i].summary) << "\"}}"
           << (i + 1 < rules.size() ? "," : "") << "\n";
    }
    os << "      ]}},\n    \"results\": [\n";
    for (std::size_t i = 0; i < result.findings.size(); ++i) {
        const Finding &f = result.findings[i];
        os << "      {\"ruleId\": \"" << f.rule
           << "\", \"level\": \"error\", \"message\": {\"text\": \""
           << jsonEscape(f.message)
           << "\"}, \"locations\": [{\"physicalLocation\": "
           << "{\"artifactLocation\": {\"uri\": \"" << jsonEscape(f.path)
           << "\"}, \"region\": {\"startLine\": " << f.line
           << "}}}]}" << (i + 1 < result.findings.size() ? "," : "")
           << "\n";
    }
    os << "    ]\n  }]\n}\n";
    return os.str();
}

} // namespace piso::lint
