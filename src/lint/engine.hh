#ifndef PISO_LINT_ENGINE_HH
#define PISO_LINT_ENGINE_HH

/**
 * @file
 * The piso-lint driver: runs every applicable per-file rule over a set
 * of sources, builds the semantic index (src/lint/index.hh) and runs
 * the cross-file project rules over it, applies
 * `// piso-lint: allow(<rule>) -- <why>` suppressions (a justification
 * is mandatory), and renders text or SARIF-lite output.
 *
 * Two incremental features sit on top:
 *
 *  - A content-hash cache (`--cache <file>`): per-file summaries and
 *    raw per-file findings are persisted keyed by FNV-1a of the file
 *    contents. On a warm run only changed files — plus their reverse
 *    include-graph closure — are re-lexed and re-analyzed; project
 *    rules and suppression auditing always rerun from the summaries,
 *    so cached and cold runs report identical findings by
 *    construction.
 *
 *  - A diff filter (`--diff-base <ref>`): findings are restricted to
 *    changed lines, except the checkpoint-field-coverage and layering
 *    families, which gate tree-wide (a diff touching neither line can
 *    still break a whole-tree property).
 *
 * Exit-code contract (stable; CI keys off it):
 *   0  clean
 *   1  findings (including suppression problems)
 *   2  usage or I/O error
 */

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/lint/rules.hh"

namespace piso::lint {

/** One suppression directive, for `--list-allows`. */
struct AllowEntry
{
    std::string path;
    int line = 0;
    std::vector<std::string> rules;
    std::string justification;
    bool wholeFile = false;
};

/** Outcome of one lint run. */
struct LintResult
{
    std::vector<Finding> findings;  //!< sorted by (path, line, rule)
    std::vector<AllowEntry> allows;  //!< every directive seen, sorted
    int filesScanned = 0;
    int filesReanalyzed = 0;  //!< files actually re-lexed (== scanned
                              //!< when no cache was used)

    /** 0 when clean, 1 when any finding survived. */
    int exitCode() const { return findings.empty() ? 0 : 1; }
};

/** Changed lines per project-relative path (from `git diff -U0`). */
struct DiffLines
{
    /** Half-open is overkill at this size: inclusive [first, last]. */
    std::map<std::string, std::vector<std::pair<int, int>>> byPath;
};

/**
 * Lint in-memory sources (the test entry point). Each pair is
 * (path, contents); paths are mapped through projectRelative() for
 * rule scoping.
 */
LintResult lintSources(
    const std::vector<std::pair<std::string, std::string>> &sources);

/**
 * Expand @p paths (files, or directories searched recursively for
 * .cc/.hh) into a sorted file list. Returns false and sets @p error on
 * a nonexistent path.
 */
bool collectFiles(const std::vector<std::string> &paths,
                  std::vector<std::string> &files, std::string &error);

/**
 * Lint files on disk (the CLI entry point). Returns false and sets
 * @p error when a path does not exist or cannot be read.
 */
bool lintFiles(const std::vector<std::string> &paths, LintResult &result,
               std::string &error);

/**
 * Like lintFiles, but incremental: summaries and per-file findings are
 * read from / written back to @p cachePath (created on first run; a
 * stale or corrupt cache is silently ignored and rebuilt). An empty
 * @p cachePath degrades to lintFiles.
 */
bool lintFilesCached(const std::vector<std::string> &paths,
                     const std::string &cachePath, LintResult &result,
                     std::string &error);

/**
 * Drop findings outside @p diff's changed lines — except the
 * tree-wide-gating families (kRuleCheckpointCoverage, kRuleLayering),
 * which are always kept.
 */
void filterToDiff(LintResult &result, const DiffLines &diff);

/** Render findings as `path:line: [rule] message` lines + summary. */
std::string formatText(const LintResult &result);

/** Render findings as a SARIF-lite 2.1.0 JSON document. */
std::string formatSarif(const LintResult &result);

/** Render every suppression directive for `--list-allows`. */
std::string formatAllows(const LintResult &result);

} // namespace piso::lint

#endif // PISO_LINT_ENGINE_HH
