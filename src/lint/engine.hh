#ifndef PISO_LINT_ENGINE_HH
#define PISO_LINT_ENGINE_HH

/**
 * @file
 * The piso-lint driver: runs every applicable rule over a set of
 * sources, applies `// piso-lint: allow(<rule>) -- <why>` suppressions
 * (a justification is mandatory), and renders text or SARIF-lite
 * output.
 *
 * Exit-code contract (stable; CI keys off it):
 *   0  clean
 *   1  findings (including suppression problems)
 *   2  usage or I/O error
 */

#include <string>
#include <utility>
#include <vector>

#include "src/lint/rules.hh"

namespace piso::lint {

/** Outcome of one lint run. */
struct LintResult
{
    std::vector<Finding> findings;  //!< sorted by (path, line, rule)
    int filesScanned = 0;

    /** 0 when clean, 1 when any finding survived. */
    int exitCode() const { return findings.empty() ? 0 : 1; }
};

/**
 * Lint in-memory sources (the test entry point). Each pair is
 * (path, contents); paths are mapped through projectRelative() for
 * rule scoping.
 */
LintResult lintSources(
    const std::vector<std::pair<std::string, std::string>> &sources);

/**
 * Expand @p paths (files, or directories searched recursively for
 * .cc/.hh) into a sorted file list. Returns false and sets @p error on
 * a nonexistent path.
 */
bool collectFiles(const std::vector<std::string> &paths,
                  std::vector<std::string> &files, std::string &error);

/**
 * Lint files on disk (the CLI entry point). Returns false and sets
 * @p error when a path does not exist or cannot be read.
 */
bool lintFiles(const std::vector<std::string> &paths, LintResult &result,
               std::string &error);

/** Render findings as `path:line: [rule] message` lines + summary. */
std::string formatText(const LintResult &result);

/** Render findings as a SARIF-lite 2.1.0 JSON document. */
std::string formatSarif(const LintResult &result);

} // namespace piso::lint

#endif // PISO_LINT_ENGINE_HH
