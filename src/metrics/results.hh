#ifndef PISO_METRICS_RESULTS_HH
#define PISO_METRICS_RESULTS_HH

/**
 * @file
 * Results of one simulation run, shaped for the paper's evaluation:
 * per-job response times, per-SPU resource usage, per-disk request
 * statistics.
 */

#include <string>
#include <vector>

#include "src/core/scheme_profile.hh"
#include "src/core/spu_table.hh"
#include "src/os/kernel.hh"
#include "src/sim/ids.hh"
#include "src/util/time.hh"

namespace piso {

/** One job's outcome. */
struct JobResult
{
    JobId id = kNoJob;
    std::string name;
    SpuId spu = kNoSpu;
    Time start = 0;
    Time end = 0;
    bool completed = false;

    /** A constituent process was killed by a permanent I/O failure;
     *  the job finished but did not do its work. */
    bool failed = false;

    /** Response time (start of job to last process exit). */
    Time response() const { return completed ? end - start : 0; }
    double responseSec() const { return toSeconds(response()); }
};

/** One SPU's aggregate usage. */
struct SpuResult
{
    SpuId id = kNoSpu;
    std::string name;

    /** Enclosing group in the SPU tree (kNoSpu when top-level — the
     *  only case in a flat configuration). */
    SpuId parent = kNoSpu;
    Time cpuTime = 0;
    std::uint64_t memUsedPages = 0;  //!< at end of run
    std::uint64_t memEntitledPages = 0;

    /** @name Fault/recovery counters (I/O path) */
    /// @{
    std::uint64_t diskErrors = 0;  //!< failed completions observed
    std::uint64_t ioRetries = 0;   //!< requests reissued
    std::uint64_t ioTimeouts = 0;  //!< requests declared lost
    std::uint64_t failedOps = 0;   //!< I/Os abandoned after retries
    /// @}
};

/** One SPU's view of one disk. */
struct SpuDiskResult
{
    std::uint64_t requests = 0;
    std::uint64_t sectors = 0;
    std::uint64_t errors = 0;   //!< requests completed failed
    double avgWaitMs = 0.0;     //!< mean queue wait per request
    double avgServiceMs = 0.0;  //!< mean service time per request
};

/** One disk's aggregate behaviour. */
struct DiskResult
{
    std::string name;
    std::uint64_t requests = 0;
    std::uint64_t sectors = 0;
    std::uint64_t errors = 0;    //!< requests completed failed
    double avgWaitMs = 0.0;
    double avgPositionMs = 0.0;  //!< mean seek+rotation ("disk latency")
    double avgSeekMs = 0.0;
    double busyFraction = 0.0;
    SpuTable<SpuDiskResult> perSpu;
};

/**
 * Host-side performance of the simulator itself for one run: how many
 * events the queue executed and how long the host took. This measures
 * the *simulator*, not the simulated machine, so it is reported out of
 * band (never in deterministic outputs such as sweep JSONL streams or
 * golden fixtures).
 */
struct RunPerf
{
    std::uint64_t events = 0;  //!< events executed by the run loop
    double wallSec = 0.0;      //!< host wall-clock for run()

    /** @name Policy-loop iteration counters
     *  Work performed by the periodic resource policies: entries
     *  examined by CPU scheduler scans, leaf SPUs visited by memory
     *  recomputes, and queue entries examined by disk/network picks.
     *  The O(active) loops of this layer keep these near-flat as the
     *  configured SPU count grows; bench/ext_scale asserts that. */
    /// @{
    std::uint64_t policyItersCpu = 0;
    std::uint64_t policyItersMem = 0;
    std::uint64_t policyItersDisk = 0;
    std::uint64_t policyItersNet = 0;
    /// @}

    double eventsPerSec() const
    {
        return wallSec > 0.0 ? static_cast<double>(events) / wallSec : 0.0;
    }
};

/** NUMA/bus behaviour of one run (absent unless the machine model is
 *  configured with memory domains; see src/machine/numa.hh). */
struct NumaResult
{
    bool enabled = false;
    int domains = 1;
    std::uint64_t localTouches = 0;
    std::uint64_t remoteTouches = 0;
    std::uint64_t busBytes = 0;

    /** Bus utilisation estimate at end of run, in [0, 1]. */
    double busUtilization = 0.0;
};

/** Everything measured in one run. */
struct SimResults
{
    /** The per-resource policies the run executed under. */
    SchemeProfile profile{};

    Time simulatedTime = 0;
    bool completed = false;  //!< all jobs finished before maxTime
    std::vector<JobResult> jobs;
    SpuTable<SpuResult> spus;
    std::vector<DiskResult> disks;
    KernelStats kernel;

    /** Simulator (host) performance; see RunPerf for the out-of-band
     *  reporting contract. */
    RunPerf perf;

    /** NUMA/bus counters (enabled = false on uniform machines, which
     *  keeps every small-machine report byte-identical). */
    NumaResult numa;

    /** Result of the job named @p name (fatal if absent). */
    const JobResult &job(const std::string &name) const;

    /** Mean response (seconds) over jobs belonging to @p spuIds. */
    double meanResponseSec(const std::vector<SpuId> &spuIds) const;

    /** Mean response (seconds) over jobs whose name starts with
     *  @p prefix. */
    double meanResponseSecByPrefix(const std::string &prefix) const;
};

} // namespace piso

#endif // PISO_METRICS_RESULTS_HH
