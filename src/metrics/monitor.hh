#ifndef PISO_METRICS_MONITOR_HH
#define PISO_METRICS_MONITOR_HH

/**
 * @file
 * SpuMonitor: periodic sampling of per-SPU resource state during a
 * run — the time-series view of the entitled/allowed/used dance that
 * single end-of-run numbers cannot show (see
 * examples/memory_pressure.cpp for the rendered form).
 */

#include <vector>

#include "src/core/spu_table.hh"
#include "src/os/scheduler.hh"
#include "src/os/vm.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/ids.hh"
#include "src/util/time.hh"

namespace piso {

/** One SPU's state at one sample instant. */
struct SpuSample
{
    std::uint64_t entitled = 0;
    std::uint64_t allowed = 0;
    std::uint64_t used = 0;
    Time cpuTime = 0;  //!< cumulative CPU time at the sample
};

/** One sample instant across all monitored SPUs. */
struct MonitorSample
{
    Time when = 0;
    std::uint64_t freePages = 0;
    SpuTable<SpuSample> spus;
};

/**
 * Samples per-SPU memory levels and CPU usage on a fixed period.
 * Attach before Simulation::run(); read the series afterwards.
 */
class SpuMonitor
{
  public:
    /**
     * @param events Event queue of the simulation to monitor.
     * @param vm     Its memory accounting.
     * @param sched  Its CPU scheduler.
     * @param spus   SPUs to record.
     * @param period Sampling period.
     */
    SpuMonitor(EventQueue &events, VirtualMemory &vm, CpuScheduler &sched,
               std::vector<SpuId> spus, Time period = 100 * kMs);

    /** Begin sampling (first sample at the current time). */
    void start();

    /** Recorded samples, oldest first. */
    const std::vector<MonitorSample> &samples() const { return samples_; }

    /** CPU time consumed by @p spu between consecutive samples @p i-1
     *  and @p i, as a fraction of the sample period (0 for i == 0). */
    double cpuShareAt(std::size_t i, SpuId spu) const;

    /** Peak used pages observed for @p spu. */
    std::uint64_t peakUsed(SpuId spu) const;

  private:
    void sample();

    EventQueue &events_;
    VirtualMemory &vm_;
    CpuScheduler &sched_;
    std::vector<SpuId> spus_;
    Time period_;
    std::vector<MonitorSample> samples_;
};

} // namespace piso

#endif // PISO_METRICS_MONITOR_HH
