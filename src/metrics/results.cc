#include "src/metrics/results.hh"

#include <algorithm>

#include "src/util/log.hh"

namespace piso {

const JobResult &
SimResults::job(const std::string &name) const
{
    for (const JobResult &j : jobs) {
        if (j.name == name)
            return j;
    }
    PISO_FATAL("no job named '", name, "' in the results");
}

double
SimResults::meanResponseSec(const std::vector<SpuId> &spuIds) const
{
    double sum = 0.0;
    int n = 0;
    for (const JobResult &j : jobs) {
        if (std::find(spuIds.begin(), spuIds.end(), j.spu) ==
            spuIds.end())
            continue;
        sum += j.responseSec();
        ++n;
    }
    return n == 0 ? 0.0 : sum / n;
}

double
SimResults::meanResponseSecByPrefix(const std::string &prefix) const
{
    double sum = 0.0;
    int n = 0;
    for (const JobResult &j : jobs) {
        if (j.name.rfind(prefix, 0) != 0)
            continue;
        sum += j.responseSec();
        ++n;
    }
    return n == 0 ? 0.0 : sum / n;
}

} // namespace piso
