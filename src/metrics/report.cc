#include "src/metrics/report.hh"

#include <cstdio>
#include <sstream>

#include "src/metrics/results.hh"
#include "src/util/log.hh"

namespace piso {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    if (header_.empty())
        PISO_FATAL("table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size())
        PISO_FATAL("row width ", row.size(), " != header width ",
                   header_.size());
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
TextTable::str() const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "" : "  ");
            // Left-align the first column, right-align the rest.
            if (c == 0) {
                os << row[c]
                   << std::string(width[c] - row[c].size(), ' ');
            } else {
                os << std::string(width[c] - row[c].size(), ' ')
                   << row[c];
            }
        }
        os << '\n';
    };

    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c == 0 ? 0 : 2);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

void
TextTable::print() const
{
    std::fputs(str().c_str(), stdout);
}

double
normalize(double value, double base)
{
    return base == 0.0 ? 0.0 : value / base * 100.0;
}

void
printBanner(const std::string &title)
{
    std::printf("\n== %s ==\n", title.c_str());
}

std::string
formatResults(const SimResults &r, bool withPerf)
{
    std::ostringstream os;
    os << "simulated time: " << formatTime(r.simulatedTime)
       << (r.completed ? "" : "  [INCOMPLETE: hit maxTime]") << '\n';
    os << "policies: " << r.profile.str() << "\n\n";

    TextTable jobs({"job", "spu", "start (s)", "response (s)", "done"});
    for (const JobResult &j : r.jobs) {
        jobs.addRow({j.name, std::to_string(j.spu),
                     TextTable::num(toSeconds(j.start), 2),
                     TextTable::num(j.responseSec(), 3),
                     j.failed ? "FAILED" : (j.completed ? "yes" : "no")});
    }
    os << jobs.str() << '\n';

    // Fault columns appear only when something actually went wrong,
    // and the group column only when the SPUs form a tree, so flat
    // fault-free reports look exactly as before.
    bool anyFaults = false;
    bool anyTree = false;
    for (const auto &[id, s] : r.spus) {
        if (s.diskErrors || s.ioRetries || s.ioTimeouts || s.failedOps)
            anyFaults = true;
        if (s.parent != kNoSpu)
            anyTree = true;
    }
    std::vector<std::string> header{"spu", "name"};
    if (anyTree)
        header.emplace_back("group");
    header.insert(header.end(), {"cpu (s)", "mem used", "entitled"});
    if (anyFaults) {
        header.insert(header.end(),
                      {"io errs", "retries", "timeouts", "failed"});
    }
    TextTable spus(std::move(header));
    for (const auto &[id, s] : r.spus) {
        std::vector<std::string> row{std::to_string(id), s.name};
        if (anyTree) {
            const SpuResult *parent = r.spus.find(s.parent);
            row.push_back(s.parent == kNoSpu ? "-"
                          : parent ? parent->name
                                   : std::to_string(s.parent));
        }
        row.insert(row.end(),
                   {TextTable::num(toSeconds(s.cpuTime), 2),
                    std::to_string(s.memUsedPages),
                    std::to_string(s.memEntitledPages)});
        if (anyFaults) {
            row.insert(row.end(), {std::to_string(s.diskErrors),
                                   std::to_string(s.ioRetries),
                                   std::to_string(s.ioTimeouts),
                                   std::to_string(s.failedOps)});
        }
        spus.addRow(std::move(row));
    }
    os << spus.str() << '\n';

    TextTable disks({"disk", "requests", "sectors", "wait (ms)",
                     "position (ms)", "busy"});
    for (const DiskResult &d : r.disks) {
        disks.addRow({d.name, std::to_string(d.requests),
                      std::to_string(d.sectors),
                      TextTable::num(d.avgWaitMs, 1),
                      TextTable::num(d.avgPositionMs, 2),
                      TextTable::num(100.0 * d.busyFraction, 0) + "%"});
    }
    os << disks.str() << '\n';

    os << "kernel: " << r.kernel.zeroFills.value() << " zero-fills, "
       << r.kernel.refaults.value() << " refaults, "
       << r.kernel.pageoutWrites.value() << " pageouts, "
       << r.kernel.readRequests.value() << "+"
       << r.kernel.readAheadRequests.value() << " reads(+ahead), "
       << r.kernel.bdflushRequests.value() << " flush batches, "
       << r.kernel.syncWriteRequests.value() << " sync writes\n";
    if (r.kernel.diskErrors.value() || r.kernel.ioRetries.value() ||
        r.kernel.ioTimeouts.value() || r.kernel.failedIos.value() ||
        r.kernel.lostWrites.value()) {
        os << "faults: " << r.kernel.diskErrors.value()
           << " disk errors, " << r.kernel.ioRetries.value()
           << " retries, " << r.kernel.ioTimeouts.value()
           << " timeouts, " << r.kernel.failedIos.value()
           << " failed I/Os, " << r.kernel.lostWrites.value()
           << " lost writes\n";
    }
    if (r.numa.enabled) {
        os << "numa: " << r.numa.domains << " domains, "
           << r.numa.localTouches << " local + " << r.numa.remoteTouches
           << " remote touches, " << r.numa.busBytes << " bus bytes ("
           << TextTable::num(100.0 * r.numa.busUtilization, 0)
           << "% bus)\n";
    }
    if (withPerf) {
        os << "perf: " << r.perf.events << " events in "
           << TextTable::num(r.perf.wallSec * 1e3, 1) << " ms ("
           << TextTable::num(r.perf.eventsPerSec() / 1e6, 2)
           << " M events/s); policy iters cpu=" << r.perf.policyItersCpu
           << " mem=" << r.perf.policyItersMem
           << " disk=" << r.perf.policyItersDisk
           << " net=" << r.perf.policyItersNet << "\n";
    }
    return os.str();
}

void
printResults(const SimResults &r)
{
    std::fputs(formatResults(r).c_str(), stdout);
}

namespace {

/** Minimal JSON string escaping (quotes, backslashes, control). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
formatResultsJson(const SimResults &r, bool withPerf)
{
    std::ostringstream os;
    os << "{\"simulated_time_s\":" << toSeconds(r.simulatedTime)
       << ",\"completed\":" << (r.completed ? "true" : "false")
       << ",\"profile\":{\"cpu\":\"" << policyName(r.profile.cpu)
       << "\",\"memory\":\"" << policyName(r.profile.memory)
       << "\",\"disk_policy\":\"" << policySpecName(r.profile.disk)
       << "\",\"network\":\"" << policyName(r.profile.net) << "\"}";

    os << ",\"jobs\":[";
    for (std::size_t i = 0; i < r.jobs.size(); ++i) {
        const JobResult &j = r.jobs[i];
        os << (i ? "," : "") << "{\"name\":\"" << jsonEscape(j.name)
           << "\",\"spu\":" << j.spu
           << ",\"start_s\":" << toSeconds(j.start)
           << ",\"response_s\":" << j.responseSec()
           << ",\"completed\":" << (j.completed ? "true" : "false")
           << ",\"failed\":" << (j.failed ? "true" : "false")
           << "}";
    }
    os << "]";

    // The parent field appears only for hierarchical runs, keeping
    // flat JSON output byte-identical to the pre-tree format.
    bool anyTree = false;
    for (const auto &[id, s] : r.spus) {
        if (s.parent != kNoSpu)
            anyTree = true;
    }

    os << ",\"spus\":[";
    bool first = true;
    for (const auto &[id, s] : r.spus) {
        os << (first ? "" : ",") << "{\"id\":" << id << ",\"name\":\""
           << jsonEscape(s.name);
        if (anyTree)
            os << "\",\"parent\":" << s.parent << ",\"cpu_s\":";
        else
            os << "\",\"cpu_s\":";
        os << toSeconds(s.cpuTime)
           << ",\"mem_used_pages\":" << s.memUsedPages
           << ",\"mem_entitled_pages\":" << s.memEntitledPages
           << ",\"disk_errors\":" << s.diskErrors
           << ",\"io_retries\":" << s.ioRetries
           << ",\"io_timeouts\":" << s.ioTimeouts
           << ",\"failed_ios\":" << s.failedOps << "}";
        first = false;
    }
    os << "]";

    os << ",\"disks\":[";
    for (std::size_t i = 0; i < r.disks.size(); ++i) {
        const DiskResult &d = r.disks[i];
        os << (i ? "," : "") << "{\"name\":\"" << jsonEscape(d.name)
           << "\",\"requests\":" << d.requests
           << ",\"sectors\":" << d.sectors
           << ",\"errors\":" << d.errors
           << ",\"avg_wait_ms\":" << d.avgWaitMs
           << ",\"avg_position_ms\":" << d.avgPositionMs
           << ",\"busy_fraction\":" << d.busyFraction << "}";
    }
    os << "]";

    os << ",\"kernel\":{\"zero_fills\":" << r.kernel.zeroFills.value()
       << ",\"refaults\":" << r.kernel.refaults.value()
       << ",\"pageout_writes\":" << r.kernel.pageoutWrites.value()
       << ",\"read_requests\":" << r.kernel.readRequests.value()
       << ",\"readahead_requests\":"
       << r.kernel.readAheadRequests.value()
       << ",\"bdflush_requests\":" << r.kernel.bdflushRequests.value()
       << ",\"sync_writes\":" << r.kernel.syncWriteRequests.value()
       << ",\"throttle_stalls\":" << r.kernel.throttleStalls.value()
       << ",\"cache_hits\":" << r.kernel.cacheHits.value()
       << ",\"cache_misses\":" << r.kernel.cacheMisses.value()
       << ",\"disk_errors\":" << r.kernel.diskErrors.value()
       << ",\"io_retries\":" << r.kernel.ioRetries.value()
       << ",\"io_timeouts\":" << r.kernel.ioTimeouts.value()
       << ",\"failed_ios\":" << r.kernel.failedIos.value()
       << ",\"lost_writes\":" << r.kernel.lostWrites.value() << "}";

    if (r.numa.enabled) {
        os << ",\"numa\":{\"domains\":" << r.numa.domains
           << ",\"local_touches\":" << r.numa.localTouches
           << ",\"remote_touches\":" << r.numa.remoteTouches
           << ",\"bus_bytes\":" << r.numa.busBytes
           << ",\"bus_utilization\":" << r.numa.busUtilization << "}";
    }
    if (withPerf) {
        // Everything inside this one "perf" object is host-side and
        // out of band; deterministic consumers strip the whole object.
        os << ",\"perf\":{\"events\":" << r.perf.events
           << ",\"wall_ms\":" << r.perf.wallSec * 1e3
           << ",\"events_per_sec\":" << r.perf.eventsPerSec()
           << ",\"policy_iters_cpu\":" << r.perf.policyItersCpu
           << ",\"policy_iters_mem\":" << r.perf.policyItersMem
           << ",\"policy_iters_disk\":" << r.perf.policyItersDisk
           << ",\"policy_iters_net\":" << r.perf.policyItersNet << "}";
    }

    os << "}";
    return os.str();
}

} // namespace piso
