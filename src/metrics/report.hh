#ifndef PISO_METRICS_REPORT_HH
#define PISO_METRICS_REPORT_HH

/**
 * @file
 * Plain-text table/figure formatting for the benchmark harnesses.
 *
 * The paper's figures are bars of response time normalised to the
 * SMP balanced case (= 100); TextTable renders aligned rows, and
 * normalize() applies the paper's convention.
 */

#include <string>
#include <vector>

namespace piso {

/** Simple aligned text table. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append a row (must match the header width). */
    void addRow(std::vector<std::string> row);

    /** Render with column alignment and a separator under the
     *  header. */
    std::string str() const;

    /** Render to stdout. */
    void print() const;

    /** Format a double with @p decimals places. */
    static std::string num(double v, int decimals = 1);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** value / base * 100 (the paper's normalised response time). */
double normalize(double value, double base);

/** A banner line for bench output, e.g. "== Figure 2: ... ==". */
void printBanner(const std::string &title);

struct SimResults;

/** Render a full run summary (jobs, SPUs, disks, kernel counters) as
 *  aligned tables — a one-call report for examples and debugging.
 *  @p withPerf adds a simulator-performance line (events executed,
 *  host wall-clock, events/sec); it defaults off because host timing
 *  is nondeterministic and must stay out of golden comparisons. */
std::string formatResults(const SimResults &results,
                          bool withPerf = false);

/** formatResults() to stdout. */
void printResults(const SimResults &results);

/**
 * Render a run's results as a JSON object (jobs, SPUs, disks, kernel
 * counters) for scripting and plotting. Stable key names; numbers in
 * seconds/milliseconds as named.
 *
 * @p withPerf appends a "perf" object (events, wall_ms,
 * events_per_sec) describing the *simulator's* host-side speed. It
 * defaults off — and must stay off wherever byte-identical output is
 * required (golden fixtures, sweep JSONL streams) — because wall-clock
 * varies run to run.
 */
std::string formatResultsJson(const SimResults &results,
                              bool withPerf = false);

} // namespace piso

#endif // PISO_METRICS_REPORT_HH
