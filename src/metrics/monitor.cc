#include "src/metrics/monitor.hh"

#include "src/util/log.hh"

namespace piso {

SpuMonitor::SpuMonitor(EventQueue &events, VirtualMemory &vm,
                       CpuScheduler &sched, std::vector<SpuId> spus,
                       Time period)
    : events_(events), vm_(vm), sched_(sched), spus_(std::move(spus)),
      period_(period)
{
    if (period_ == 0)
        PISO_FATAL("monitor period must be non-zero");
    if (spus_.empty())
        PISO_FATAL("monitor needs at least one SPU");
}

void
SpuMonitor::start()
{
    sample();
}

void
SpuMonitor::sample()
{
    MonitorSample s;
    s.when = events_.now();
    s.freePages = vm_.freePages();
    for (SpuId spu : spus_) {
        const MemLevels &l = vm_.levels(spu);
        SpuSample ss;
        ss.entitled = l.entitled;
        ss.allowed = l.allowed;
        ss.used = l.used;
        ss.cpuTime = sched_.spuCpuTime(spu);
        s.spus[spu] = ss;
    }
    samples_.push_back(std::move(s));
    events_.scheduleAfter(period_, [this] { sample(); }, "spuMonitor");
}

double
SpuMonitor::cpuShareAt(std::size_t i, SpuId spu) const
{
    if (i == 0 || i >= samples_.size())
        return 0.0;
    const Time prev = samples_[i - 1].spus.at(spu).cpuTime;
    const Time cur = samples_[i].spus.at(spu).cpuTime;
    const Time span = samples_[i].when - samples_[i - 1].when;
    if (span == 0)
        return 0.0;
    return toSeconds(cur - prev) / toSeconds(span);
}

std::uint64_t
SpuMonitor::peakUsed(SpuId spu) const
{
    std::uint64_t peak = 0;
    for (const MonitorSample &s : samples_) {
        if (const SpuSample *ss = s.spus.find(spu))
            peak = std::max(peak, ss->used);
    }
    return peak;
}

} // namespace piso
