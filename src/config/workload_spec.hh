#ifndef PISO_CONFIG_WORKLOAD_SPEC_HH
#define PISO_CONFIG_WORKLOAD_SPEC_HH

/**
 * @file
 * A small text format describing a machine, its SPUs, and their jobs,
 * so experiments can be run from a file (tools/piso_run) without
 * writing C++. Line-based, `#` comments, `key=value` options:
 *
 * @code
 *   machine cpus=8 memory_mb=44 disks=8 scheme=piso seed=1
 *   # or mixed, overriding the scheme per resource (all optional):
 *   #   machine cpus=8 memory_mb=44 cpu=piso memory=quota network=smp
 *   spu alice share=1 disk=0
 *   spu bob share=2 disk=1
 *   job alice pmake   name=build workers=2 files=8
 *   job bob   copy    name=cp bytes_kb=20480
 *   job bob   compute name=hog cpu_ms=5000 ws_pages=400
 *   job alice ocean   name=sim procs=4 iters=100 grain_ms=20
 *   job bob   oltp    name=db servers=4 txns=100
 *   job bob   web     name=www workers=4 requests=200
 *
 *   [spus]                      # hierarchical alternative to `spu`
 *   eng            share=2      # a group: normalised against `ops`
 *   eng.build      share=3 disk=0
 *   eng.test       share=1 disk=1
 *   ops            share=1
 *   ops.web        share=1
 *
 * Inside a `[spus]` section each line declares one tree node by its
 * dotted path; a parent must be declared before its children, shares
 * are normalised among siblings only, and jobs may only name *leaf*
 * SPUs (here `job eng.build pmake ...`). The section ends at the next
 * directive or section header. Flat `spu` lines remain the depth-1
 * degenerate tree and may not contain dots.
 *
 *   [faults]                    # optional, last section of the file
 *   disk_slow  at_s=2 for_s=4 disk=0 factor=4
 *   disk_error at_s=1 for_s=1 disk=0 rate=0.5
 *   disk_dead  at_s=8 disk=1
 *   cpu_offline at_s=3 count=2
 *   cpu_online  at_s=6 count=2
 *   mem_shrink at_s=2 mb=8
 *   mem_grow   at_s=5 mb=8
 * @endcode
 *
 * Unknown keys are errors (typos must not silently change an
 * experiment); all values have the library's defaults. Fault
 * semantics are described in docs/faults.md.
 */

#include <map>
#include <string>
#include <vector>

#include "src/metrics/results.hh"
#include "src/simulation.hh"

namespace piso {

/** One `spu` line or `[spus]` node. */
struct SpuDecl
{
    /** Full dotted path for `[spus]` nodes ("eng.build"). */
    std::string name;

    /** Dotted path of the enclosing group; empty when top-level. */
    std::string parent;

    double share = 1.0;
    DiskId disk = 0;
};

/** One `job` line. */
struct JobDecl
{
    std::string spu;
    std::string kind;   //!< pmake | copy | compute | ocean | oltp | web
    std::string name;
    std::map<std::string, std::string> options;
    int line = 0;       //!< source line (for error messages)
};

/** A parsed workload file. */
struct WorkloadSpec
{
    SystemConfig config;
    std::vector<SpuDecl> spus;
    std::vector<JobDecl> jobs;
};

/**
 * Parse the text format.
 * @throws std::runtime_error (via PISO_FATAL) with the offending line
 *         number on any syntax or semantic error.
 */
WorkloadSpec parseWorkloadSpec(const std::string &text);

/** Construct the described Simulation's jobs and run it. */
SimResults runWorkloadSpec(const WorkloadSpec &spec);

/**
 * Declare the spec's SPUs and jobs on @p sim. Exposed so callers that
 * need the same Simulation more than once (the warm-start sweep
 * engine, the checkpoint tests) can replay an identical setup; @p sim
 * must have been constructed from spec.config.
 */
void populateWorkloadSpec(Simulation &sim, const WorkloadSpec &spec);

/**
 * Like runWorkloadSpec, but resume from a checkpoint @p image (as
 * produced by SystemConfig::checkpointSink or Simulation::checkpoint)
 * instead of starting at time zero. The image must come from an
 * equivalently-configured run; see docs/checkpoint.md.
 */
SimResults runWorkloadSpecFrom(const WorkloadSpec &spec,
                               const std::string &image);

/** Build the JobSpec described by @p decl (exposed for testing). */
JobSpec buildJob(const JobDecl &decl);

} // namespace piso

#endif // PISO_CONFIG_WORKLOAD_SPEC_HH
