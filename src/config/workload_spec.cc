#include "src/config/workload_spec.hh"

#include <algorithm>
#include <sstream>

#include "src/util/log.hh"
#include "src/workload/filecopy.hh"
#include "src/workload/oltp.hh"
#include "src/workload/pmake.hh"
#include "src/workload/scientific.hh"
#include "src/workload/synthetic.hh"
#include "src/workload/webserver.hh"

namespace piso {

namespace {

using Options = std::map<std::string, std::string>;

/** Split a line into whitespace-separated tokens. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> out;
    std::istringstream is(line);
    std::string tok;
    while (is >> tok)
        out.push_back(tok);
    return out;
}

/** Parse trailing `key=value` tokens into a map. */
Options
parseOptions(const std::vector<std::string> &tokens, std::size_t first,
             int line)
{
    Options opts;
    for (std::size_t i = first; i < tokens.size(); ++i) {
        const std::string &tok = tokens[i];
        const auto eq = tok.find('=');
        if (eq == std::string::npos || eq == 0 ||
            eq == tok.size() - 1) {
            PISO_FATAL("line ", line, ": expected key=value, got '",
                       tok, "'");
        }
        const std::string key = tok.substr(0, eq);
        if (opts.count(key))
            PISO_FATAL("line ", line, ": duplicate option '", key, "'");
        opts[key] = tok.substr(eq + 1);
    }
    return opts;
}

/** Typed accessors that consume keys (leftovers are typos). */
class OptionReader
{
  public:
    OptionReader(Options opts, int line)
        : opts_(std::move(opts)), line_(line)
    {
    }

    std::string
    str(const std::string &key, const std::string &def)
    {
        auto it = opts_.find(key);
        if (it == opts_.end())
            return def;
        std::string v = it->second;
        opts_.erase(it);
        return v;
    }

    double
    num(const std::string &key, double def)
    {
        auto it = opts_.find(key);
        if (it == opts_.end())
            return def;
        try {
            std::size_t pos = 0;
            const double v = std::stod(it->second, &pos);
            if (pos != it->second.size())
                throw std::invalid_argument("trailing");
            opts_.erase(it);
            return v;
        } catch (const std::exception &) {
            PISO_FATAL("line ", line_, ": option '", key,
                       "' wants a number, got '", it->second, "'");
        }
    }

    std::int64_t
    integer(const std::string &key, std::int64_t def)
    {
        const double v = num(key, static_cast<double>(def));
        return static_cast<std::int64_t>(v);
    }

    /** All options must have been consumed. */
    void
    finish() const
    {
        if (!opts_.empty()) {
            PISO_FATAL("line ", line_, ": unknown option '",
                       opts_.begin()->first, "'");
        }
    }

  private:
    Options opts_;
    int line_;
};

/**
 * Resolve a policy name for @p resource through the PolicyRegistry,
 * reporting unknown names with the offending line and the full list
 * of accepted spellings.
 */
int
parsePolicyKey(PolicyResource resource, const char *key,
               const std::string &s, int line)
{
    const auto v = PolicyRegistry::instance().tryParse(resource, s);
    if (!v) {
        std::string valid;
        for (const std::string &n :
             PolicyRegistry::instance().names(resource)) {
            if (!valid.empty())
                valid += '|';
            valid += n;
        }
        PISO_FATAL("line ", line, ": unknown ", key, " policy '", s,
                   "' (", valid, ")");
    }
    return *v;
}

Scheme
parseSchemeKey(const std::string &s, int line)
{
    if (s == "smp")
        return Scheme::Smp;
    if (s == "quota" || s == "quo")
        return Scheme::Quota;
    if (s == "piso")
        return Scheme::PIso;
    PISO_FATAL("line ", line, ": unknown scheme '", s,
               "' (smp|quota|piso)");
}

/**
 * One directive inside a `[faults]` section. Times are seconds
 * (`at_s`, and `for_s` for windowed faults); memory sizes are MiB.
 */
void
parseFaultLine(const std::vector<std::string> &tokens, int lineNo,
               FaultPlan &plan)
{
    const std::string &kind = tokens[0];
    OptionReader r(parseOptions(tokens, 1, lineNo), lineNo);
    const double atSec = r.num("at_s", -1.0);
    if (atSec < 0.0)
        PISO_FATAL("line ", lineNo, ": fault '", kind,
                   "' needs at_s=<seconds>");
    const Time at = fromSeconds(atSec);

    if (kind == "disk_slow") {
        const int disk = static_cast<int>(r.integer("disk", 0));
        const Time dur = fromSeconds(r.num("for_s", 0.0));
        const double factor = r.num("factor", 4.0);
        if (factor < 1.0)
            PISO_FATAL("line ", lineNo, ": disk_slow factor must be "
                       ">= 1, got ", factor);
        plan.diskSlow(at, disk, dur, factor);
    } else if (kind == "disk_error") {
        const int disk = static_cast<int>(r.integer("disk", 0));
        const Time dur = fromSeconds(r.num("for_s", 0.0));
        const double rate = r.num("rate", 0.5);
        if (rate < 0.0 || rate > 1.0)
            PISO_FATAL("line ", lineNo, ": disk_error rate must be in "
                       "[0,1], got ", rate);
        plan.diskError(at, disk, dur, rate);
    } else if (kind == "disk_dead") {
        plan.diskDead(at, static_cast<int>(r.integer("disk", 0)));
    } else if (kind == "cpu_offline") {
        const int count = static_cast<int>(r.integer("count", 1));
        if (count < 1)
            PISO_FATAL("line ", lineNo,
                       ": cpu_offline count must be >= 1");
        plan.cpuOffline(at, count);
    } else if (kind == "cpu_online") {
        const int count = static_cast<int>(r.integer("count", 1));
        if (count < 1)
            PISO_FATAL("line ", lineNo,
                       ": cpu_online count must be >= 1");
        plan.cpuOnline(at, count);
    } else if (kind == "mem_shrink" || kind == "mem_grow") {
        const std::int64_t mb = r.integer("mb", 0);
        if (mb <= 0)
            PISO_FATAL("line ", lineNo, ": ", kind,
                       " needs mb=<MiB> > 0");
        const std::uint64_t pages =
            static_cast<std::uint64_t>(mb) * kMiB / 4096;
        if (kind == "mem_shrink")
            plan.memShrink(at, pages);
        else
            plan.memGrow(at, pages);
    } else {
        PISO_FATAL("line ", lineNo, ": unknown fault '", kind,
                   "' (disk_slow|disk_error|disk_dead|cpu_offline|"
                   "cpu_online|mem_shrink|mem_grow)");
    }
    r.finish();
}

/**
 * One node line inside a `[spus]` section: a dotted path plus options.
 * Parents must be declared before their children so the tree is
 * well-formed by construction.
 */
void
parseSpuTreeLine(const std::vector<std::string> &tokens, int lineNo,
                 WorkloadSpec &spec)
{
    SpuDecl s;
    s.name = tokens[0];
    if (s.name == "machine" || s.name == "spu" || s.name == "job")
        PISO_FATAL("line ", lineNo, ": '", s.name, "' is a directive ",
                   "and cannot name an SPU");
    // Every dot-separated segment must be non-empty.
    for (std::size_t pos = 0;;) {
        const auto dot = s.name.find('.', pos);
        if ((dot == std::string::npos ? s.name.size() : dot) == pos)
            PISO_FATAL("line ", lineNo, ": bad SPU name '", s.name,
                       "' (empty path segment)");
        if (dot == std::string::npos)
            break;
        pos = dot + 1;
    }
    OptionReader r(parseOptions(tokens, 1, lineNo), lineNo);
    s.share = r.num("share", 1.0);
    s.disk = static_cast<DiskId>(r.integer("disk", 0));
    r.finish();

    const auto dot = s.name.rfind('.');
    if (dot != std::string::npos) {
        s.parent = s.name.substr(0, dot);
        bool parentKnown = false;
        for (const SpuDecl &other : spec.spus)
            parentKnown |= other.name == s.parent;
        if (!parentKnown)
            PISO_FATAL("line ", lineNo, ": SPU '", s.name,
                       "' declared before its group '", s.parent, "'");
    }
    for (const SpuDecl &other : spec.spus) {
        if (other.name == s.name)
            PISO_FATAL("line ", lineNo, ": duplicate spu '", s.name,
                       "'");
    }
    spec.spus.push_back(std::move(s));
}

} // namespace

WorkloadSpec
parseWorkloadSpec(const std::string &text)
{
    WorkloadSpec spec;
    bool sawMachine = false;
    bool inFaults = false;
    bool inSpus = false;
    std::istringstream is(text);
    std::string line;
    int lineNo = 0;
    int autoJob = 0;

    while (std::getline(is, line)) {
        ++lineNo;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        const auto tokens = tokenize(line);
        if (tokens.empty())
            continue;

        const std::string &kind = tokens[0];
        if (kind == "[faults]") {
            inFaults = true;
            inSpus = false;
            if (tokens.size() > 1)
                PISO_FATAL("line ", lineNo,
                           ": [faults] takes no options");
            continue;
        }
        if (inFaults) {
            parseFaultLine(tokens, lineNo, spec.config.faults);
            continue;
        }
        if (kind == "[spus]") {
            inSpus = true;
            if (tokens.size() > 1)
                PISO_FATAL("line ", lineNo, ": [spus] takes no options");
            continue;
        }
        // A directive ends a [spus] section; anything else inside one
        // is a tree-node declaration.
        if (inSpus &&
            kind != "machine" && kind != "spu" && kind != "job") {
            parseSpuTreeLine(tokens, lineNo, spec);
            continue;
        }
        inSpus = false;
        if (kind == "machine") {
            if (sawMachine)
                PISO_FATAL("line ", lineNo, ": duplicate machine line");
            sawMachine = true;
            OptionReader r(parseOptions(tokens, 1, lineNo), lineNo);
            spec.config.cpus =
                static_cast<int>(r.integer("cpus", 8));
            spec.config.memoryBytes = static_cast<std::uint64_t>(
                                          r.integer("memory_mb", 64)) *
                                      kMiB;
            spec.config.diskCount =
                static_cast<int>(r.integer("disks", 1));
            spec.config.scheme =
                parseSchemeKey(r.str("scheme", "piso"), lineNo);
            spec.config.diskPolicy = static_cast<DiskPolicy>(
                parsePolicyKey(PolicyResource::Disk, "disk",
                               r.str("disk_policy", "default"),
                               lineNo));
            // Per-resource overrides on top of the uniform scheme.
            if (const std::string v = r.str("cpu", ""); !v.empty()) {
                spec.config.cpuPolicy = static_cast<CpuPolicy>(
                    parsePolicyKey(PolicyResource::Cpu, "cpu", v,
                                   lineNo));
            }
            if (const std::string v = r.str("memory", ""); !v.empty()) {
                spec.config.memoryPolicy = static_cast<MemoryPolicy>(
                    parsePolicyKey(PolicyResource::Memory, "memory", v,
                                   lineNo));
            }
            if (const std::string v = r.str("network", "");
                !v.empty()) {
                spec.config.netPolicy = static_cast<NetPolicy>(
                    parsePolicyKey(PolicyResource::Net, "network", v,
                                   lineNo));
            }
            spec.config.seed =
                static_cast<std::uint64_t>(r.integer("seed", 1));
            spec.config.maxTime = fromSeconds(
                r.num("max_time_s", toSeconds(spec.config.maxTime)));
            spec.config.networkBitsPerSec =
                r.num("network_mbps", 0.0) * 1e6;
            spec.config.bwThresholdSectors =
                r.num("bw_threshold", spec.config.bwThresholdSectors);
            spec.config.diskParams.seekScale =
                r.num("seek_scale", 1.0);
            spec.config.ipiRevocation =
                r.integer("ipi_revocation", 0) != 0;
            // NUMA/bus machine model (src/machine/numa.hh). The
            // defaults describe a uniform-memory machine and add zero
            // cost, so omitting every key keeps runs byte-identical.
            spec.config.numa.domains =
                static_cast<int>(r.integer("numa_domains", 1));
            spec.config.numa.localLatency =
                static_cast<Time>(r.num("numa_local_us", 0.0) * kUs);
            spec.config.numa.remoteLatency =
                static_cast<Time>(r.num("numa_remote_us", 0.0) * kUs);
            spec.config.numa.busBytesPerSec =
                r.num("bus_mbps", 0.0) * 1e6 / 8.0;
            spec.config.numa.busSaturation =
                r.num("bus_saturation", 0.0);
            spec.config.numa.busHalfLife = fromMillis(r.num(
                "bus_halflife_ms",
                toSeconds(spec.config.numa.busHalfLife) * 1e3));
            r.finish();
        } else if (kind == "spu") {
            if (tokens.size() < 2)
                PISO_FATAL("line ", lineNo, ": spu needs a name");
            SpuDecl s;
            s.name = tokens[1];
            if (s.name.find('.') != std::string::npos)
                PISO_FATAL("line ", lineNo, ": dotted SPU names ",
                           "declare a hierarchy and belong in a ",
                           "[spus] section");
            OptionReader r(parseOptions(tokens, 2, lineNo), lineNo);
            s.share = r.num("share", 1.0);
            s.disk = static_cast<DiskId>(r.integer("disk", 0));
            r.finish();
            for (const SpuDecl &other : spec.spus) {
                if (other.name == s.name)
                    PISO_FATAL("line ", lineNo, ": duplicate spu '",
                               s.name, "'");
            }
            spec.spus.push_back(std::move(s));
        } else if (kind == "job") {
            if (tokens.size() < 3)
                PISO_FATAL("line ", lineNo,
                           ": job needs <spu> <kind> [options]");
            JobDecl j;
            j.spu = tokens[1];
            j.kind = tokens[2];
            j.options = parseOptions(tokens, 3, lineNo);
            j.line = lineNo;
            auto it = j.options.find("name");
            if (it != j.options.end()) {
                j.name = it->second;
                j.options.erase(it);
            } else {
                j.name = j.kind + std::to_string(autoJob++);
            }
            const bool known =
                j.kind == "pmake" || j.kind == "copy" ||
                j.kind == "compute" || j.kind == "ocean" ||
                j.kind == "oltp" || j.kind == "web";
            if (!known)
                PISO_FATAL("line ", lineNo, ": unknown job kind '",
                           j.kind, "'");
            bool spuKnown = false;
            for (const SpuDecl &s : spec.spus)
                spuKnown |= s.name == j.spu;
            if (!spuKnown)
                PISO_FATAL("line ", lineNo, ": job references unknown "
                           "spu '", j.spu, "'");
            spec.jobs.push_back(std::move(j));
        } else {
            PISO_FATAL("line ", lineNo, ": unknown directive '", kind,
                       "' (machine|spu|job|[faults])");
        }
    }

    if (spec.spus.empty())
        PISO_FATAL("workload spec declares no SPUs");
    if (spec.jobs.empty())
        PISO_FATAL("workload spec declares no jobs");
    // Jobs run on leaves only; a group's share is divided among its
    // children, so a process directly on a group has no level to be
    // accounted at.
    for (const JobDecl &j : spec.jobs) {
        for (const SpuDecl &s : spec.spus) {
            if (s.parent == j.spu)
                PISO_FATAL("line ", j.line, ": job '", j.name,
                           "' runs on '", j.spu,
                           "', which is a group, not a leaf SPU");
        }
    }
    return spec;
}

JobSpec
buildJob(const JobDecl &decl)
{
    OptionReader r(decl.options, decl.line);
    const Time startAt = fromSeconds(r.num("start_s", 0.0));
    JobSpec job;

    if (decl.kind == "pmake") {
        PmakeConfig c;
        c.parallelism = static_cast<int>(r.integer("workers", 2));
        c.filesPerWorker = static_cast<int>(r.integer("files", 12));
        c.compileCpu = fromMillis(r.num("compile_ms", 120.0));
        c.workerWsPages = static_cast<std::uint64_t>(
            r.integer("ws_pages", 600));
        job = makePmake(decl.name, c);
    } else if (decl.kind == "copy") {
        FileCopyConfig c;
        c.bytes = static_cast<std::uint64_t>(
                      r.integer("bytes_kb", 20 * 1024)) *
                  1024;
        job = makeFileCopy(decl.name, c);
    } else if (decl.kind == "compute") {
        ComputeSpec c;
        c.totalCpu = fromMillis(r.num("cpu_ms", 1000.0));
        c.wsPages = static_cast<std::uint64_t>(
            r.integer("ws_pages", 256));
        job = makeComputeJob(decl.name, c);
    } else if (decl.kind == "ocean") {
        OceanConfig c;
        c.processes = static_cast<int>(r.integer("procs", 4));
        c.iterations = static_cast<int>(r.integer("iters", 400));
        c.grain = fromMillis(r.num("grain_ms", 20.0));
        c.wsPagesPerProc = static_cast<std::uint64_t>(
            r.integer("ws_pages", 512));
        job = makeOcean(decl.name, c);
    } else if (decl.kind == "oltp") {
        OltpConfig c;
        c.servers = static_cast<int>(r.integer("servers", 4));
        c.transactionsPerServer =
            static_cast<int>(r.integer("txns", 100));
        c.txnCpu = fromMillis(r.num("txn_ms", 2.0));
        c.updateFraction = r.num("update_frac", 0.3);
        c.tableBytes = static_cast<std::uint64_t>(
                           r.integer("table_mb", 64)) *
                       kMiB;
        job = makeOltp(decl.name, c);
    } else if (decl.kind == "web") {
        WebServerConfig c;
        c.workers = static_cast<int>(r.integer("workers", 4));
        c.requestsPerWorker =
            static_cast<int>(r.integer("requests", 200));
        c.requestCpu = fromMillis(r.num("request_ms", 0.5));
        c.responseBytes = static_cast<std::uint64_t>(
                              r.integer("response_kb", 16)) *
                          1024;
        c.documents = static_cast<int>(r.integer("documents", 200));
        job = makeWebServer(decl.name, c);
    } else {
        PISO_FATAL("line ", decl.line, ": unknown job kind '",
                   decl.kind, "'");
    }

    job.startAt = startAt;
    r.finish();
    return job;
}

void
populateWorkloadSpec(Simulation &sim, const WorkloadSpec &spec)
{
    std::map<std::string, SpuId> ids;
    for (const SpuDecl &s : spec.spus) {
        SpuSpec ss{.name = s.name, .share = s.share, .homeDisk = s.disk,
                   .parent = kNoSpu};
        if (!s.parent.empty())
            ss.parent = ids.at(s.parent);
        ids[s.name] = sim.addSpu(ss);
    }
    for (const JobDecl &j : spec.jobs)
        sim.addJob(ids.at(j.spu), buildJob(j));
}

SimResults
runWorkloadSpec(const WorkloadSpec &spec)
{
    Simulation sim(spec.config);
    populateWorkloadSpec(sim, spec);
    return sim.run();
}

SimResults
runWorkloadSpecFrom(const WorkloadSpec &spec, const std::string &image)
{
    Simulation sim(spec.config);
    populateWorkloadSpec(sim, spec);
    std::istringstream in(image);
    sim.restore(in);
    return sim.run();
}

} // namespace piso
