#ifndef PISO_SIM_STATS_HH
#define PISO_SIM_STATS_HH

/**
 * @file
 * Lightweight statistics primitives for the simulator.
 *
 * Three shapes cover everything the evaluation needs:
 *  - Counter:     monotonically increasing event/byte/sector counts.
 *  - Accumulator: streaming mean / min / max / stddev of samples
 *                 (request wait times, seek latencies, ...).
 *  - Histogram:   fixed-width buckets for distribution shape.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/checkpoint.hh"

namespace piso {

/** A monotonically increasing count. */
class Counter
{
  public:
    /** Add @p n to the count. */
    void add(std::uint64_t n = 1) { value_ += n; }

    /** Current count. */
    std::uint64_t value() const { return value_; }

    /** Reset to zero. */
    void reset() { value_ = 0; }

    void save(CkptWriter &w) const { w.u64(value_); }
    void load(CkptReader &r) { value_ = r.u64(); }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Streaming sample statistics using Welford's algorithm (numerically
 * stable single-pass mean and variance).
 */
class Accumulator
{
  public:
    /** Record one sample. */
    void sample(double v);

    /** Number of samples recorded. */
    std::uint64_t count() const { return count_; }

    /** Mean of samples (0 when empty). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Smallest sample (0 when empty). */
    double min() const { return count_ ? min_ : 0.0; }

    /** Largest sample (0 when empty). */
    double max() const { return count_ ? max_ : 0.0; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Population standard deviation (0 with < 2 samples). */
    double stddev() const;

    /** Discard all samples. */
    void reset();

    void
    save(CkptWriter &w) const
    {
        w.u64(count_);
        w.f64(mean_);
        w.f64(m2_);
        w.f64(sum_);
        w.f64(min_);
        w.f64(max_);
    }

    void
    load(CkptReader &r)
    {
        count_ = r.u64();
        mean_ = r.f64();
        m2_ = r.f64();
        sum_ = r.f64();
        min_ = r.f64();
        max_ = r.f64();
    }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-width-bucket histogram over [lo, hi); out-of-range samples land
 * in saturating underflow/overflow buckets.
 */
class Histogram
{
  public:
    /**
     * @param lo      Lower bound of the tracked range.
     * @param hi      Upper bound (exclusive); must be > lo.
     * @param buckets Number of equal-width buckets; must be >= 1.
     */
    Histogram(double lo, double hi, std::size_t buckets);

    /** Record one sample. */
    void sample(double v);

    /** Count in bucket @p i (0-based). */
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }

    /** Number of in-range buckets. */
    std::size_t buckets() const { return counts_.size(); }

    /** Samples below lo. */
    std::uint64_t underflow() const { return underflow_; }

    /** Samples at or above hi. */
    std::uint64_t overflow() const { return overflow_; }

    /** Total samples recorded, including under/overflow. */
    std::uint64_t total() const { return total_; }

    /**
     * Value below which @p fraction of samples fall (linear
     * interpolation inside the winning bucket). @p fraction in [0, 1].
     */
    double percentile(double fraction) const;

  private:
    double lo_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace piso

#endif // PISO_SIM_STATS_HH
