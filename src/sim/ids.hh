#ifndef PISO_SIM_IDS_HH
#define PISO_SIM_IDS_HH

/**
 * @file
 * Shared identifier types used across the machine, OS, and SPU layers.
 *
 * Kept in one header so low layers (e.g. the disk device, which tags
 * requests with the owning SPU for bandwidth accounting) do not need to
 * include the full SPU machinery.
 */

#include <cstdint>

namespace piso {

/** Identifies a Software Performance Unit (the paper's SPU). */
using SpuId = std::int32_t;

/** SpuId of the default "kernel" SPU (Section 2.2): kernel processes
 *  and kernel memory; unrestricted access to all resources. */
inline constexpr SpuId kKernelSpu = 0;

/** SpuId of the default "shared" SPU (Section 2.2): pages referenced by
 *  multiple SPUs and batched delayed disk writes; lowest disk priority. */
inline constexpr SpuId kSharedSpu = 1;

/** First SpuId handed out to user SPUs. */
inline constexpr SpuId kFirstUserSpu = 2;

/** Sentinel for "no SPU". */
inline constexpr SpuId kNoSpu = -1;

/** Process identifier. */
using Pid = std::int32_t;
inline constexpr Pid kNoPid = -1;

/** CPU index within the machine. */
using CpuId = std::int32_t;
inline constexpr CpuId kNoCpu = -1;

/** Disk index within the machine. */
using DiskId = std::int32_t;

/** File identifier within the simulated file system. */
using FileId = std::int32_t;
inline constexpr FileId kNoFile = -1;

/** Workload job identifier. */
using JobId = std::int32_t;
inline constexpr JobId kNoJob = -1;

} // namespace piso

#endif // PISO_SIM_IDS_HH
