#ifndef PISO_SIM_FAULT_PLAN_HH
#define PISO_SIM_FAULT_PLAN_HH

/**
 * @file
 * Deterministic fault-injection schedule.
 *
 * A FaultPlan is a time-ordered list of hardware misbehaviour events —
 * transient disk errors, disk slowdown windows, permanent disk death,
 * CPU offline/online, and memory shrink/grow — that the Simulation
 * delivers through the event queue. The plan is pure data: given the
 * same seed and the same plan, a run replays bit-identically, which is
 * what makes fault scenarios debuggable and testable.
 *
 * The layers above react: the kernel I/O path retries transient errors
 * with bounded exponential backoff and propagates permanent failures
 * to the issuing process; the CPU scheduler and memory policy
 * recompute entitlements over the remaining capacity so isolation
 * degrades proportionally instead of collapsing (see docs/faults.md).
 */

#include <cstdint>
#include <vector>

#include "src/util/time.hh"

namespace piso {

/** What kind of hardware misbehaviour a FaultEvent injects. */
enum class FaultKind
{
    DiskSlow,    //!< service-time multiplier for a window
    DiskError,   //!< requests fail with probability `rate` for a window
    DiskDead,    //!< permanent: every request fails from `at` on
    CpuOffline,  //!< take `cpus` CPUs out of service
    CpuOnline,   //!< bring `cpus` CPUs back
    MemShrink,   //!< retire `pages` frames from the pool
    MemGrow,     //!< add `pages` frames back
};

/** Human-readable kind name (logs, reports, spec errors). */
const char *faultKindName(FaultKind kind);

/** One scheduled misbehaviour. Fields beyond `kind`/`at` apply only
 *  to the kinds documented on each member. */
struct FaultEvent
{
    FaultKind kind = FaultKind::DiskSlow;
    Time at = 0;  //!< absolute injection time

    /** Disk faults: target device index. */
    int disk = 0;

    /** DiskSlow / DiskError: window length; 0 = until end of run. */
    Time duration = 0;

    /** DiskSlow: service-time multiplier (>= 1). */
    double factor = 1.0;

    /** DiskError: per-request failure probability in [0, 1]. */
    double rate = 1.0;

    /** CpuOffline / CpuOnline: number of CPUs affected. */
    int cpus = 1;

    /** MemShrink / MemGrow: number of page frames. */
    std::uint64_t pages = 0;
};

/**
 * A validated, seedable fault schedule. Events are kept in insertion
 * order; schedule() yields them sorted by time (stable, so same-time
 * events fire in insertion order — deterministic).
 */
class FaultPlan
{
  public:
    /** @name Builders (chainable) */
    /// @{
    /** Multiply disk @p disk's service time by @p factor during
     *  [@p at, @p at + @p duration); duration 0 = until end. */
    FaultPlan &diskSlow(Time at, int disk, Time duration, double factor);

    /** Fail disk @p disk's requests with probability @p rate during
     *  [@p at, @p at + @p duration); duration 0 = until end. */
    FaultPlan &diskError(Time at, int disk, Time duration,
                         double rate = 1.0);

    /** Permanently kill disk @p disk at @p at. */
    FaultPlan &diskDead(Time at, int disk);

    /** Take @p count CPUs offline at @p at (highest-index first). */
    FaultPlan &cpuOffline(Time at, int count = 1);

    /** Bring @p count CPUs back online at @p at. */
    FaultPlan &cpuOnline(Time at, int count = 1);

    /** Retire @p pages frames from the physical pool at @p at. */
    FaultPlan &memShrink(Time at, std::uint64_t pages);

    /** Grow the physical pool by @p pages frames at @p at. */
    FaultPlan &memGrow(Time at, std::uint64_t pages);
    /// @}

    /** Append a fully-specified event (validates; fatal on nonsense
     *  such as factor < 1 or rate outside [0, 1]). */
    void add(const FaultEvent &ev);

    bool empty() const { return events_.empty(); }
    std::size_t size() const { return events_.size(); }

    /** Events in insertion order. */
    const std::vector<FaultEvent> &events() const { return events_; }

    /** Events sorted by time (stable on ties). */
    std::vector<FaultEvent> schedule() const;

    /** Largest disk index referenced, or -1 if no disk faults. */
    int maxDiskIndex() const;

  private:
    std::vector<FaultEvent> events_;
};

} // namespace piso

#endif // PISO_SIM_FAULT_PLAN_HH
