#include "src/sim/random.hh"

#include <cmath>

#include "src/util/log.hh"

namespace piso {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &word : s_)
        word = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniformRange(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    if (n == 0)
        PISO_PANIC("uniformInt(0)");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % n;
}

double
Rng::exponential(double mean)
{
    // Inverse CDF; 1 - uniform() is in (0, 1] so log() is finite.
    return -mean * std::log(1.0 - uniform());
}

Time
Rng::exponentialTime(Time mean)
{
    double v = exponential(static_cast<double>(mean));
    return static_cast<Time>(v);
}

Time
Rng::uniformTime(Time span)
{
    return span == 0 ? Time{0} : uniformInt(span);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace piso
