#ifndef PISO_SIM_EVENT_QUEUE_HH
#define PISO_SIM_EVENT_QUEUE_HH

/**
 * @file
 * Discrete-event simulation engine.
 *
 * The EventQueue is the heart of the simulator: every hardware and OS
 * activity (clock ticks, disk completions, compute-slice expiries,
 * policy daemons) is an event. Events scheduled for the same instant
 * fire in scheduling order, which keeps runs fully deterministic.
 *
 * Internally the queue is a generation-counted slab: each scheduled
 * event occupies a reusable slot, and an EventId encodes
 * (slot, generation) so cancel() and pendingEvent() are O(1) array
 * probes with no hashing. The binary heap holds small POD entries;
 * callbacks live in the slab behind a small-buffer wrapper so the
 * common capture sizes ([this], [this, ptr], [this, id, time]) never
 * touch the allocator.
 */

#include <cstddef>
#include <cstdint>
#include <deque>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/util/time.hh"

namespace piso {

/**
 * Opaque handle identifying a scheduled event; used for cancellation.
 * Encodes (slot generation << 32) | (slot index + 1), so a handle is
 * never 0 and a reused slot invalidates stale handles automatically.
 */
using EventId = std::uint64_t;

/** EventId value meaning "no event". */
inline constexpr EventId kNoEvent = 0;

/**
 * Move-only callable wrapper with a small-buffer optimisation sized
 * for event-loop lambdas. Captures up to kInlineSize bytes are stored
 * in place; larger ones fall back to the heap.
 */
class EventCallback
{
  public:
    EventCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventCallback(F &&f) // NOLINT: implicit like std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineSize &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            new (buf_) Fn(std::forward<F>(f));
            vt_ = &vtableFor<Fn, /*OnHeap=*/false>;
        } else {
            // piso-lint: allow(memory-raw-new) -- small-buffer wrapper's heap fallback; ownership sits in vt_, freed by destroyHeap/invokeDestroyHeap
            heap_ = new Fn(std::forward<F>(f));
            vt_ = &vtableFor<Fn, /*OnHeap=*/true>;
        }
    }

    EventCallback(EventCallback &&other) noexcept { moveFrom(other); }

    EventCallback &
    operator=(EventCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    ~EventCallback() { reset(); }

    /** True when a callable is held. */
    explicit operator bool() const { return vt_ != nullptr; }

    /** Invoke the held callable. Undefined when empty. */
    void operator()() { vt_->invoke(target()); }

    /**
     * Invoke the held callable, then destroy it, leaving the wrapper
     * empty — one indirect call instead of two on the fire path.
     * Undefined when empty.
     */
    void
    invokeAndReset()
    {
        const VTable *vt = vt_;
        vt_ = nullptr;
        vt->invokeDestroy(vt->onHeap ? heap_
                                     : static_cast<void *>(buf_));
    }

    /** Destroy the held callable, leaving the wrapper empty. */
    void
    reset()
    {
        if (vt_) {
            vt_->destroy(target());
            vt_ = nullptr;
        }
    }

    /** Inline storage size; tuned to the kernel's largest hot capture. */
    static constexpr std::size_t kInlineSize = 48;

  private:
    struct VTable
    {
        void (*invoke)(void *obj);
        void (*destroy)(void *obj);
        void (*invokeDestroy)(void *obj);
        /** Move src's inline object into dstBuf and destroy src. */
        void (*relocate)(void *dstBuf, void *src);
        bool onHeap;
    };

    template <typename Fn>
    static void
    invokeImpl(void *obj)
    {
        (*static_cast<Fn *>(obj))();
    }

    template <typename Fn>
    static void
    destroyInline(void *obj)
    {
        static_cast<Fn *>(obj)->~Fn();
    }

    template <typename Fn>
    static void
    destroyHeap(void *obj)
    {
        // piso-lint: allow(memory-raw-new) -- matching release for the wrapper's heap-fallback new above
        delete static_cast<Fn *>(obj);
    }

    template <typename Fn>
    static void
    relocateInline(void *dstBuf, void *src)
    {
        new (dstBuf) Fn(std::move(*static_cast<Fn *>(src)));
        static_cast<Fn *>(src)->~Fn();
    }

    template <typename Fn>
    static void
    invokeDestroyInline(void *obj)
    {
        Fn *fn = static_cast<Fn *>(obj);
        (*fn)();
        fn->~Fn();
    }

    template <typename Fn>
    static void
    invokeDestroyHeap(void *obj)
    {
        Fn *fn = static_cast<Fn *>(obj);
        (*fn)();
        // piso-lint: allow(memory-raw-new) -- matching release for the wrapper's heap-fallback new above
        delete fn;
    }

    template <typename Fn, bool OnHeap>
    static constexpr VTable vtableFor{
        &invokeImpl<Fn>,
        OnHeap ? &destroyHeap<Fn> : &destroyInline<Fn>,
        OnHeap ? &invokeDestroyHeap<Fn> : &invokeDestroyInline<Fn>,
        OnHeap ? nullptr : &relocateInline<Fn>, OnHeap};

    void *
    target()
    {
        return vt_->onHeap ? heap_ : static_cast<void *>(buf_);
    }

    void
    moveFrom(EventCallback &other) noexcept
    {
        vt_ = other.vt_;
        if (!vt_)
            return;
        if (vt_->onHeap)
            heap_ = other.heap_;
        else
            vt_->relocate(buf_, other.buf_);
        other.vt_ = nullptr;
    }

    union
    {
        alignas(std::max_align_t) unsigned char buf_[kInlineSize];
        void *heap_;
    };
    const VTable *vt_ = nullptr;
};

/**
 * A deterministic, cancellable discrete-event queue.
 *
 * Ordering is (time, scheduling sequence number). Cancellation frees
 * the slab slot immediately (destroying the callback) and bumps the
 * slot's generation; the matching heap entry becomes stale and is
 * discarded when it reaches the head, keeping cancel() O(1) and pop()
 * amortised O(log n).
 */
class EventQueue
{
  public:
    using Callback = EventCallback;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     * @param when Absolute firing time; must be >= now().
     * @param cb   Callback executed when the event fires.
     * @param name Optional label used in debug traces; must point at
     *             storage outliving the event (string literals do).
     * @return Handle usable with cancel().
     */
    EventId schedule(Time when, Callback cb, const char *name = "");

    /** Schedule @p cb to run @p delay after the current time. */
    EventId
    scheduleAfter(Time delay, Callback cb, const char *name = "")
    {
        return schedule(now_ + delay, std::move(cb), name);
    }

    /**
     * Cancel a previously scheduled event. Cancelling an event that has
     * already fired (or kNoEvent) is a harmless no-op.
     * @return true if the event was still pending.
     */
    bool cancel(EventId id);

    /** True if a given event is still pending (scheduled, not fired). */
    bool
    pendingEvent(EventId id) const
    {
        const std::uint32_t idx = slotOf(id);
        return idx < state_.size() &&
               state_[idx] == packState(genOf(id), true);
    }

    /** Number of live (non-cancelled) events still queued. */
    std::size_t pending() const { return live_; }

    /** True when no live events remain. */
    bool empty() const { return live_ == 0; }

    /** Total number of events executed (fired) so far. */
    std::uint64_t executedEvents() const { return executed_; }

    /**
     * Pop and execute the next event, advancing now().
     * @return false if the queue was empty.
     */
    bool runOne();

    /**
     * Run events until the queue drains or @p limit is reached, whichever
     * comes first. Time advances to each event as it fires.
     * @return number of events executed.
     */
    std::size_t runAll(Time limit = kTimeNever);

    /** Firing time of the next live event, or kTimeNever if none. */
    Time nextEventTime() const;

    /**
     * @name Checkpoint/restore support
     *
     * Callbacks are closures and cannot be serialised; instead the
     * Simulation snapshots every live event's (id, when, seq, name)
     * with forEachPending(), re-creates the callbacks from named
     * descriptors on restore, and re-binds them at the *exact* heap
     * coordinates with scheduleRestored() so ties keep firing in the
     * original order. See src/sim/checkpoint.hh and docs/checkpoint.md.
     */
    /// @{

    /**
     * Visit every live (pending) event in unspecified order.
     * @param fn Invoked as fn(EventId, Time when, std::uint64_t seq,
     *           const char *name); callers sort by seq for
     *           deterministic output.
     */
    template <typename Fn>
    void
    forEachPending(Fn &&fn) const
    {
        for (const HeapEntry &e : heap_.entries()) {
            if (state_[e.slot] == packState(e.gen, true))
                fn(makeId(e.slot, e.gen), e.when, e.seq,
                   slots_[e.slot].name);
        }
    }

    /** Next sequence number to be handed out (image clock header). */
    std::uint64_t nextSeq() const { return nextSeq_; }

    /**
     * Re-schedule a restored event at an explicit sequence number
     * (instead of drawing the next one), preserving its tie-break
     * position among equal-time events. Does not advance nextSeq_;
     * restoreClock() sets the sequence counter afterwards.
     */
    EventId scheduleRestored(Time when, std::uint64_t seq, Callback cb,
                             const char *name = "");

    /** Cancel every live event (restore wipes before re-binding). */
    void clearPending();

    /**
     * Overwrite the clock state from a checkpoint: current time, the
     * next sequence number to hand out, and the executed-event count.
     * Called after every scheduleRestored(); the sequence counter must
     * not move backwards.
     */
    void restoreClock(Time now, std::uint64_t nextSeq,
                      std::uint64_t executed);

    /**
     * Advance now() to @p t without running anything. Used to deliver
     * out-of-band work (the fault-plan cursor) at its exact timestamp;
     * must not skip past the next pending event.
     */
    void advanceTo(Time t);

    /// @}

  private:
    struct Slot
    {
        Callback cb;
        const char *name = "";
    };

    // Per-slot (generation << 1) | live, kept in a dense side array so
    // the stale-entry checks in the pop loop (and cancel/pendingEvent
    // probes) stay within a few cache lines instead of striding across
    // the fat callback slots.
    static std::uint32_t
    packState(std::uint32_t gen, bool live)
    {
        return (gen << 1) | static_cast<std::uint32_t>(live);
    }

    /** POD heap entry; slot+gen resolve the callback at pop time. */
    struct HeapEntry
    {
        Time when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t gen;
    };

    /**
     * 4-ary min-heap of HeapEntry ordered by (when, seq). Shallower
     * than a binary heap and with children sharing cache lines, so the
     * pop-heavy event loop touches fewer lines per operation.
     */
    class EventHeap
    {
      public:
        bool empty() const { return v_.empty(); }
        const HeapEntry &top() const { return v_.front(); }
        const std::vector<HeapEntry> &entries() const { return v_; }

        void
        push(const HeapEntry &e)
        {
            v_.push_back(e);
            siftUp(v_.size() - 1);
        }

        void
        pop()
        {
            v_.front() = v_.back();
            v_.pop_back();
            if (!v_.empty())
                siftDown(0);
        }

      private:
        static bool
        before(const HeapEntry &a, const HeapEntry &b)
        {
            if (a.when != b.when)
                return a.when < b.when;
            return a.seq < b.seq;
        }

        void
        siftUp(std::size_t i)
        {
            const HeapEntry e = v_[i];
            while (i > 0) {
                const std::size_t parent = (i - 1) / 4;
                if (!before(e, v_[parent]))
                    break;
                v_[i] = v_[parent];
                i = parent;
            }
            v_[i] = e;
        }

        void
        siftDown(std::size_t i)
        {
            const HeapEntry e = v_[i];
            const std::size_t n = v_.size();
            for (;;) {
                const std::size_t first = 4 * i + 1;
                if (first >= n)
                    break;
                const std::size_t last =
                    first + 4 < n ? first + 4 : n;
                std::size_t best = first;
                for (std::size_t c = first + 1; c < last; ++c) {
                    if (before(v_[c], v_[best]))
                        best = c;
                }
                if (!before(v_[best], e))
                    break;
                v_[i] = v_[best];
                i = best;
            }
            v_[i] = e;
        }

        std::vector<HeapEntry> v_;
    };

    static std::uint32_t
    slotOf(EventId id)
    {
        return static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
    }

    static std::uint32_t
    genOf(EventId id)
    {
        return static_cast<std::uint32_t>(id >> 32);
    }

    static EventId
    makeId(std::uint32_t slot, std::uint32_t gen)
    {
        return (static_cast<EventId>(gen) << 32) |
               (static_cast<EventId>(slot) + 1);
    }

    /** Drop stale (cancelled-and-reused-slot) heap heads. */
    void skipStale() const;

    /** Pop the (live) head and run its callback. */
    void popAndRun();

    // Slots live in a deque so references stay valid while a callback
    // executes in place even if the callback schedules new events and
    // grows the slab.
    mutable EventHeap heap_;
    std::deque<Slot> slots_;
    std::vector<std::uint32_t> state_;
    std::vector<std::uint32_t> freeSlots_;
    Time now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::size_t live_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace piso

#endif // PISO_SIM_EVENT_QUEUE_HH
