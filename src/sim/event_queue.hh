#ifndef PISO_SIM_EVENT_QUEUE_HH
#define PISO_SIM_EVENT_QUEUE_HH

/**
 * @file
 * Discrete-event simulation engine.
 *
 * The EventQueue is the heart of the simulator: every hardware and OS
 * activity (clock ticks, disk completions, compute-slice expiries,
 * policy daemons) is an event. Events scheduled for the same instant
 * fire in scheduling order, which keeps runs fully deterministic.
 */

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/sim/time.hh"

namespace piso {

/** Opaque handle identifying a scheduled event; used for cancellation. */
using EventId = std::uint64_t;

/** EventId value meaning "no event". */
inline constexpr EventId kNoEvent = 0;

/**
 * A deterministic, cancellable discrete-event queue.
 *
 * Ordering is (time, scheduling sequence number); cancellation is lazy
 * (cancelled entries are discarded when they reach the head), which
 * makes cancel() O(1) while keeping pop() amortised O(log n).
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     * @param when Absolute firing time; must be >= now().
     * @param cb   Callback executed when the event fires.
     * @param name Optional label used in debug traces.
     * @return Handle usable with cancel().
     */
    EventId schedule(Time when, Callback cb, const char *name = "");

    /** Schedule @p cb to run @p delay after the current time. */
    EventId
    scheduleAfter(Time delay, Callback cb, const char *name = "")
    {
        return schedule(now_ + delay, std::move(cb), name);
    }

    /**
     * Cancel a previously scheduled event. Cancelling an event that has
     * already fired (or kNoEvent) is a harmless no-op.
     * @return true if the event was still pending.
     */
    bool cancel(EventId id);

    /** True if a given event is still pending (scheduled, not fired). */
    bool pendingEvent(EventId id) const;

    /** Number of live (non-cancelled) events still queued. */
    std::size_t pending() const { return live_; }

    /** True when no live events remain. */
    bool empty() const { return live_ == 0; }

    /**
     * Pop and execute the next event, advancing now().
     * @return false if the queue was empty.
     */
    bool runOne();

    /**
     * Run events until the queue drains or @p limit is reached, whichever
     * comes first. Time advances to each event as it fires.
     * @return number of events executed.
     */
    std::size_t runAll(Time limit = kTimeNever);

    /** Firing time of the next live event, or kTimeNever if none. */
    Time nextEventTime() const;

  private:
    struct Entry
    {
        Time when;
        std::uint64_t seq;
        EventId id;
        Callback cb;
        std::string name;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Drop cancelled entries sitting at the head of the heap. */
    void skipCancelled() const;

    mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    mutable std::unordered_set<EventId> cancelled_;
    std::unordered_set<EventId> liveIds_;
    Time now_ = 0;
    std::uint64_t nextSeq_ = 0;
    EventId nextId_ = 1;
    std::size_t live_ = 0;
};

} // namespace piso

#endif // PISO_SIM_EVENT_QUEUE_HH
