#include "src/sim/stats.hh"

#include <algorithm>
#include <cmath>

#include "src/util/log.hh"

namespace piso {

void
Accumulator::sample(double v)
{
    ++count_;
    sum_ += v;
    if (count_ == 1) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (v - mean_);
}

double
Accumulator::stddev() const
{
    if (count_ < 2)
        return 0.0;
    return std::sqrt(m2_ / static_cast<double>(count_));
}

void
Accumulator::reset()
{
    *this = Accumulator{};
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    if (buckets < 1)
        PISO_FATAL("Histogram needs at least one bucket");
    if (hi <= lo)
        PISO_FATAL("Histogram range is empty: [", lo, ", ", hi, ")");
}

void
Histogram::sample(double v)
{
    ++total_;
    if (v < lo_) {
        ++underflow_;
        return;
    }
    const auto idx = static_cast<std::size_t>((v - lo_) / width_);
    if (idx >= counts_.size()) {
        ++overflow_;
        return;
    }
    ++counts_[idx];
}

double
Histogram::percentile(double fraction) const
{
    if (total_ == 0)
        return lo_;
    fraction = std::clamp(fraction, 0.0, 1.0);
    const double target = fraction * static_cast<double>(total_);
    double running = static_cast<double>(underflow_);
    if (running >= target && underflow_ > 0)
        return lo_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double in_bucket = static_cast<double>(counts_[i]);
        if (running + in_bucket >= target && in_bucket > 0) {
            const double frac_in = (target - running) / in_bucket;
            return lo_ + width_ * (static_cast<double>(i) + frac_in);
        }
        running += in_bucket;
    }
    return lo_ + width_ * static_cast<double>(counts_.size());
}

} // namespace piso
