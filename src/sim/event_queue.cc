#include "src/sim/event_queue.hh"

#include "src/util/log.hh"
#include "src/util/error.hh"

namespace piso {

EventId
EventQueue::schedule(Time when, Callback cb, const char *name)
{
    PISO_INVARIANT(when >= now_, "event '", name,
                   "' scheduled in the past (", formatTime(when),
                   " < now=", formatTime(now_), ")");
    PISO_INVARIANT(cb, "event '", name,
                   "' scheduled with empty callback");

    std::uint32_t idx;
    if (!freeSlots_.empty()) {
        idx = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        idx = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
        state_.push_back(packState(0, false));
    }
    Slot &slot = slots_[idx];
    slot.cb = std::move(cb);
    slot.name = name;
    const std::uint32_t gen = state_[idx] >> 1;
    state_[idx] = packState(gen, true);

    heap_.push(HeapEntry{when, nextSeq_++, idx, gen});
    ++live_;
    return makeId(idx, gen);
}

EventId
EventQueue::scheduleRestored(Time when, std::uint64_t seq, Callback cb,
                             const char *name)
{
    PISO_INVARIANT(cb, "restored event '", name,
                   "' re-bound with empty callback");

    std::uint32_t idx;
    if (!freeSlots_.empty()) {
        idx = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        idx = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
        state_.push_back(packState(0, false));
    }
    Slot &slot = slots_[idx];
    slot.cb = std::move(cb);
    slot.name = name;
    const std::uint32_t gen = state_[idx] >> 1;
    state_[idx] = packState(gen, true);

    heap_.push(HeapEntry{when, seq, idx, gen});
    ++live_;
    return makeId(idx, gen);
}

void
EventQueue::clearPending()
{
    for (std::uint32_t idx = 0; idx < state_.size(); ++idx) {
        if (state_[idx] & 1u) {
            slots_[idx].cb.reset();
            state_[idx] = packState((state_[idx] >> 1) + 1, false);
            freeSlots_.push_back(idx);
        }
    }
    live_ = 0;
}

void
EventQueue::restoreClock(Time now, std::uint64_t nextSeq,
                         std::uint64_t executed)
{
    PISO_INVARIANT(nextSeq >= nextSeq_,
                   "restored sequence counter moves backwards (",
                   nextSeq, " < ", nextSeq_, ")");
    now_ = now;
    nextSeq_ = nextSeq;
    executed_ = executed;
}

void
EventQueue::advanceTo(Time t)
{
    PISO_INVARIANT(t >= now_, "clock advance into the past (",
                   formatTime(t), " < now=", formatTime(now_), ")");
    PISO_INVARIANT(t <= nextEventTime(),
                   "clock advance past the next pending event");
    now_ = t;
}

bool
EventQueue::cancel(EventId id)
{
    if (id == kNoEvent)
        return false;
    const std::uint32_t idx = slotOf(id);
    if (idx >= state_.size() ||
        state_[idx] != packState(genOf(id), true))
        return false;

    // Free the slot now; the heap entry goes stale (its generation no
    // longer matches) and is discarded when it reaches the head.
    slots_[idx].cb.reset();
    state_[idx] = packState(genOf(id) + 1, false);
    freeSlots_.push_back(idx);
    --live_;
    return true;
}

void
EventQueue::skipStale() const
{
    while (!heap_.empty()) {
        const HeapEntry &top = heap_.top();
        if (state_[top.slot] == packState(top.gen, true))
            break;
        heap_.pop();
    }
}

Time
EventQueue::nextEventTime() const
{
    skipStale();
    return heap_.empty() ? kTimeNever : heap_.top().when;
}

void
EventQueue::popAndRun()
{
    const HeapEntry entry = heap_.top();
    heap_.pop();
    PISO_CHECK(entry.slot < slots_.size(),
               "event heap entry points past the slab (slot ",
               entry.slot, " of ", slots_.size(), ")");
    PISO_CHECK(state_[entry.slot] == packState(entry.gen, true),
               "live heap entry with a stale slot generation");

    // Retire the event before invoking so the callback may freely
    // schedule and cancel other events: the state bump makes cancel()
    // on the firing id a no-op, and the slot joins the free list only
    // after the callback finishes, so it cannot be reused (and the
    // deque keeps the in-place callable stable) while it runs.
    Slot &slot = slots_[entry.slot];
    state_[entry.slot] = packState(entry.gen + 1, false);
    --live_;
    ++executed_;

    now_ = entry.when;
    slot.cb.invokeAndReset();
    freeSlots_.push_back(entry.slot);
}

bool
EventQueue::runOne()
{
    skipStale();
    if (heap_.empty())
        return false;
    popAndRun();
    return true;
}

std::size_t
EventQueue::runAll(Time limit)
{
    std::size_t count = 0;
    for (;;) {
        skipStale();
        if (heap_.empty() || heap_.top().when > limit)
            break;
        popAndRun();
        ++count;
    }
    return count;
}

} // namespace piso
