#include "src/sim/event_queue.hh"

#include "src/sim/log.hh"

namespace piso {

EventId
EventQueue::schedule(Time when, Callback cb, const char *name)
{
    if (when < now_) {
        PISO_PANIC("event '", name, "' scheduled in the past (",
                   formatTime(when), " < now=", formatTime(now_), ")");
    }
    if (!cb)
        PISO_PANIC("event '", name, "' scheduled with empty callback");

    EventId id = nextId_++;
    heap_.push(Entry{when, nextSeq_++, id, std::move(cb), name});
    liveIds_.insert(id);
    ++live_;
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    if (id == kNoEvent || liveIds_.find(id) == liveIds_.end())
        return false;
    liveIds_.erase(id);
    cancelled_.insert(id);
    --live_;
    return true;
}

bool
EventQueue::pendingEvent(EventId id) const
{
    return id != kNoEvent && liveIds_.find(id) != liveIds_.end();
}

void
EventQueue::skipCancelled() const
{
    while (!heap_.empty()) {
        auto it = cancelled_.find(heap_.top().id);
        if (it == cancelled_.end())
            break;
        cancelled_.erase(it);
        heap_.pop();
    }
}

Time
EventQueue::nextEventTime() const
{
    skipCancelled();
    return heap_.empty() ? kTimeNever : heap_.top().when;
}

bool
EventQueue::runOne()
{
    skipCancelled();
    if (heap_.empty())
        return false;

    // Move the entry out before popping so the callback may freely
    // schedule (and even cancel) other events.
    Entry entry = std::move(const_cast<Entry &>(heap_.top()));
    heap_.pop();
    liveIds_.erase(entry.id);
    --live_;

    now_ = entry.when;
    entry.cb();
    return true;
}

std::size_t
EventQueue::runAll(Time limit)
{
    std::size_t count = 0;
    while (nextEventTime() <= limit && runOne())
        ++count;
    return count;
}

} // namespace piso
